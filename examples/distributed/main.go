// Distributed example: build a capacitated-clustering coreset over data
// partitioned across s machines with a coordinator (Theorem 4.7),
// metering every bit of communication.
//
// Scenario: user activity logs sharded across 8 regional servers; the
// coordinator wants k balanced user segments without shipping raw logs.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	const (
		k        = 4
		delta    = 1 << 11
		n        = 20000
		machines = 8
	)
	rng := rand.New(rand.NewSource(21))
	points, trueCenters := workload.Mixture{
		N: n, D: 2, Delta: delta, K: k, Spread: 12, Skew: 3, NoiseFrac: 0.03,
	}.Generate(rng)

	// Shard unevenly (machine 0 holds ~30% of the data), as real
	// deployments do.
	shards := make([][]streambalance.Point, machines)
	for _, p := range points {
		j := rng.Intn(machines + 2)
		if j >= machines {
			j = 0
		}
		shards[j] = append(shards[j], p)
	}

	rep, err := streambalance.DistributedCoreset(shards, streambalance.DistConfig{
		Dim: 2, Delta: delta, Params: streambalance.Params{K: k, Seed: 5},
	})
	if err != nil {
		panic(err)
	}

	rawBits := int64(n) * 2 * 11 // shipping every point: n × d × log2Δ bits
	fmt.Printf("machines: %d (shard sizes: %v)\n", machines, sizes(shards))
	fmt.Printf("coreset at coordinator: %d weighted points (weight %.0f ≈ n=%d)\n",
		rep.Coreset.Size(), rep.Coreset.TotalWeight(), n)
	fmt.Printf("communication: %d bits total (%.1f bits/point) in %d rounds\n",
		rep.Bits, float64(rep.Bits)/float64(n), rep.Rounds)
	fmt.Printf("raw shipping costs %d bits and grows linearly with n;\n", rawBits)
	fmt.Printf("the protocol's bits are ≈ n-independent (Theorem 4.7: s·poly(kd logΔ)) — the\n")
	fmt.Printf("crossover sits around n ≈ %d at these sketch budgets\n\n", rep.Bits/(2*11))

	fmt.Println("communication by phase:")
	var phases []string
	for ph := range rep.ByPhase {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		fmt.Printf("  %-18s %10d bits\n", ph, rep.ByPhase[ph])
	}

	// The coordinator solves balanced clustering on its coreset.
	t := 1.1 * float64(n) / k
	sol, ok := streambalance.SolveCapacitated(rep.Coreset.Points, k, t*1.3, streambalance.SolveOptions{Seed: 6})
	if !ok {
		panic("infeasible")
	}
	full := make([]streambalance.Weighted, n)
	for i, p := range points {
		full[i] = streambalance.Weighted{P: p, W: 1}
	}
	cost := streambalance.CapacitatedCost(full[:4000], sol.Centers, t*1.3*4000/float64(n), 2)
	ref := streambalance.CapacitatedCost(full[:4000], trueCenters, t*1.3*4000/float64(n), 2)
	fmt.Printf("\nsegment plan cost (4000-point audit sample): %.3g, reference at true centers: %.3g (ratio %.3f)\n",
		cost, ref, cost/ref)
}

func sizes(shards [][]streambalance.Point) []int {
	out := make([]int, len(shards))
	for i, s := range shards {
		out[i] = len(s)
	}
	return out
}
