// Quickstart: build a strong coreset for capacitated k-means offline
// (Theorem 3.19), solve balanced clustering on the coreset, and verify
// the solution against the full data (Fact 2.3).
package main

import (
	"fmt"
	"math/rand"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	// A skewed mixture: three components with 4:2:1 mass, 5% noise. Under
	// a balanced capacity, mass from the big component must migrate —
	// this is the regime where capacitated clustering differs from plain
	// k-means.
	const (
		n     = 6000
		k     = 3
		delta = 1 << 12
	)
	rng := rand.New(rand.NewSource(7))
	points, trueCenters := workload.Mixture{
		N: n, D: 2, Delta: delta, K: k, Spread: 25, Skew: 2, NoiseFrac: 0.05,
	}.Generate(rng)

	// 1. Build the coreset.
	cs, err := streambalance.BuildCoreset(points, streambalance.Params{
		K: k, Eps: 0.25, Eta: 0.25, Seed: 1, SamplesPerPart: 96,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("input: %d points  →  coreset: %d weighted points (%.1f× compression)\n",
		n, cs.Size(), float64(n)/float64(cs.Size()))
	fmt.Printf("coreset total weight: %.1f (estimates |Q| = %d)\n\n", cs.TotalWeight(), n)

	// 2. Solve capacitated k-means ON THE CORESET with per-center
	//    capacity t = 1.1·n/k (the coreset side gets the (1+η) slack the
	//    guarantee grants it).
	t := 1.1 * float64(n) / k
	sol, ok := streambalance.SolveCapacitated(cs.Points, k, t*1.25, streambalance.SolveOptions{Seed: 2})
	if !ok {
		panic("infeasible")
	}
	fmt.Printf("solved capacitated %d-means on the coreset (capacity %.0f per center)\n", k, t)
	for i, z := range sol.Centers {
		fmt.Printf("  center %d at %v, assigned coreset weight %.1f\n", i, z, sol.Sizes[i])
	}

	// 3. Assign the FULL data with the Section 3.3 rule: derived from the
	//    coreset alone in poly(|Q'|) time, then applied to each original
	//    point independently — no flow solve over all n points.
	rule, err := cs.BuildAssignmentRule(sol.Centers, t*1.25)
	if err != nil {
		panic(err)
	}
	_, cost, sizes := rule.Apply(points)
	fmt.Printf("\non the full data (§3.3 rule, no full-data flow): cost %.3g, loads %v (capacity %.0f×1.25)\n",
		cost, sizes, t)

	full := make([]streambalance.Weighted, n)
	for i, p := range points {
		full[i] = streambalance.Weighted{P: p, W: 1}
	}

	// Reference: the true generative centers, same capacity.
	ref := streambalance.CapacitatedCost(full, trueCenters, t*1.25, 2)
	fmt.Printf("reference cost at the true generative centers: %.3g (ratio %.3f)\n", ref, cost/ref)

	// Contrast: plain (uncapacitated) k-means would leave the loads as
	// imbalanced as the data.
	unc := streambalance.UnconstrainedCost(full, sol.Centers, 2)
	fmt.Printf("\nuncapacitated cost at the same centers: %.3g — the gap to %.3g is the price of balance\n",
		unc, cost)
}
