// Dynamic stream example: maintain a capacitated-clustering coreset over
// a stream with heavy insertions AND deletions (Theorem 4.5) — the
// capability no prior streaming algorithm for capacitated clustering had
// (the only previous one needed three passes and was insertion-only).
//
// Scenario: a live fleet of delivery couriers. Couriers come online
// (insert) and go offline (delete) continuously; at any moment we want k
// balanced dispatch zones over the couriers currently online.
package main

import (
	"fmt"
	"math/rand"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	const (
		k     = 3
		delta = 1 << 10
		nBase = 4000
	)
	rng := rand.New(rand.NewSource(11))

	// The "daytime" fleet: three districts with skewed density.
	day, _ := workload.Mixture{
		N: nBase, D: 2, Delta: delta, K: k, Spread: 9, Skew: 2,
	}.Generate(rng)
	// A "surge" that appears downtown and later dissolves completely.
	surge, _ := workload.TwoBlobs(rng, nBase/2, delta, 1.0, 6)

	// One-pass instance: the guess o comes from a cheap upstream estimate
	// (in production, the parallel 2-approximation of Theorem 4.5).
	est, err := streambalance.EstimateOPT(day, k, 2, 1)
	if err != nil {
		panic(err)
	}
	s, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: delta,
		O:      streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: k, Seed: 3},
	})
	if err != nil {
		panic(err)
	}

	// Morning: the day fleet comes online.
	for _, p := range day {
		s.Insert(p)
	}
	fmt.Printf("after morning ramp-up: %d couriers online, sketch %s\n", s.N(), mib(s.Bytes()))

	// Midday: the surge arrives…
	for _, p := range surge {
		s.Insert(p)
	}
	fmt.Printf("surge peak: %d couriers online (same sketch: %s — space never grows)\n", s.N(), mib(s.Bytes()))

	// …and dissolves, courier by courier, in arbitrary order.
	for _, i := range rng.Perm(len(surge)) {
		s.Delete(surge[i])
	}
	fmt.Printf("surge over: %d couriers online\n\n", s.N())

	// Evening query: balanced dispatch zones over the CURRENT fleet.
	cs, err := s.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("coreset of the live fleet: %d weighted points (weight %.1f ≈ %d online)\n",
		cs.Size(), cs.TotalWeight(), s.N())

	t := 1.15 * float64(s.N()) / k
	sol, ok := streambalance.SolveCapacitated(cs.Points, k, t*1.3, streambalance.SolveOptions{Seed: 4})
	if !ok {
		panic("infeasible")
	}
	fmt.Printf("balanced dispatch zones (capacity %.0f couriers each):\n", t)
	for i, z := range sol.Centers {
		fmt.Printf("  zone %d centered at %v, weight %.0f\n", i, z, sol.Sizes[i])
	}

	// Sanity: the deleted surge left no trace — evaluate the zone centers
	// against the surviving fleet directly.
	fleet := make([]streambalance.Weighted, len(day))
	for i, p := range day {
		fleet[i] = streambalance.Weighted{P: p, W: 1}
	}
	cost := streambalance.CapacitatedCost(fleet, sol.Centers, t*1.3, 2)
	fmt.Printf("\nzone plan cost on the actual surviving fleet: %.3g\n", cost)
	fmt.Println("(deletions cancelled exactly in the linear sketch — the surge is gone)")
}

func mib(b int64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }
