// Load-balancing example: the motivating application of balanced
// clustering from the paper's introduction. Place k service replicas and
// assign clients to them so that (a) network distance is small and (b) no
// replica exceeds its capacity — capacitated k-median (r = 1).
//
// Plain k-median puts a replica in each metro and lets the big metro's
// replica melt down; capacitated k-median routes exactly the overflow to
// the other replica. The whole optimization runs on a coreset, never on
// the full client population.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	const (
		k     = 2
		delta = 1 << 12
		n     = 12000
	)
	rng := rand.New(rand.NewSource(31))
	// Two metro areas: 80% of clients in one, 20% in the other.
	clients, _ := workload.TwoBlobs(rng, n, delta, 0.8, 60)

	capacity := 0.55 * float64(n) // each replica serves at most 55% of clients

	// Coreset under ℓ_1 (k-median): R = 1.
	cs, err := streambalance.BuildCoreset(clients, streambalance.Params{
		K: k, R: 1, Eps: 0.25, Eta: 0.2, Seed: 9, SamplesPerPart: 48,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clients: %d  →  coreset: %d (%.1f×)\n", n, cs.Size(), float64(n)/float64(cs.Size()))

	// Balanced placement on the coreset (capacity gets the (1+η) slack
	// the coreset guarantee grants).
	bal, ok := streambalance.SolveCapacitated(cs.Points, k, capacity*1.2,
		streambalance.SolveOptions{R: 1, Seed: 10})
	if !ok {
		panic("infeasible")
	}
	// Unbalanced placement for contrast (capacity = everything).
	unbal, _ := streambalance.SolveCapacitated(cs.Points, k, float64(n),
		streambalance.SolveOptions{R: 1, Seed: 10})

	full := make([]streambalance.Weighted, n)
	for i, p := range clients {
		full[i] = streambalance.Weighted{P: p, W: 1}
	}

	fmt.Printf("\nreplica capacity: %.0f clients each (n/k = %d)\n\n", capacity, n/k)

	// Balanced plan: capacity-respecting assignment on the full data.
	asg, cost, ok := streambalance.AssignCapacitated(full, bal.Centers, capacity*1.05, 1)
	if !ok {
		panic("balanced plan infeasible on full data")
	}
	printPlan("balanced placement:", asg, cost, k, capacity, n)

	// Unbalanced plan: clients go to the nearest replica, capacity be
	// damned.
	asgU := make([]int, n)
	var costU float64
	for i, w := range full {
		best := -1.0
		for j, z := range unbal.Centers {
			if d := euclid(w.P, z); best < 0 || d < best {
				best, asgU[i] = d, j
			}
		}
		costU += best
	}
	printPlan("unbalanced k-median:", asgU, costU, k, capacity, n)

	fmt.Println("\nthe unbalanced plan overloads the big metro's replica by ~45%;")
	fmt.Println("the balanced plan reroutes exactly the overflow, at a modest distance cost.")
}

func printPlan(name string, asg []int, cost float64, k int, capacity float64, n int) {
	loads := make([]int, k)
	for _, a := range asg {
		loads[a]++
	}
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	status := "OK (within the (1+η) slack)"
	if float64(maxLoad) > capacity*1.1 {
		status = "OVERLOADED"
	}
	fmt.Printf("%-22s avg distance %7.1f   loads %v   peak %3.0f%% of capacity  %s\n",
		name, cost/float64(n), loads, 100*float64(maxLoad)/capacity, status)
}

func euclid(a, b streambalance.Point) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s)
}
