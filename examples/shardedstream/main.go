// Sharded-stream example: every sketch in the streaming algorithm is
// LINEAR, so a logical stream can be split across workers — goroutines
// here, machines in production — each feeding its own fork, and the
// forks merged at query time into a state bit-identical to a single
// sequential pass (Lemma 4.2's mergability, the same property Theorem 4.7
// builds the distributed protocol on).
//
// The ShardedStream front-end packages that pattern: callers Apply ops
// on one goroutine; the front-end hash-routes them to a pool of ingest
// workers with private sketch clones and recombines lazily at query
// time (DESIGN.md §10). The second half of this example re-runs the
// same feed by hand with Fork/Merge to show what the front-end
// automates — and that both roads end at the identical state digest.
//
// Scenario: a sensor feed with churn (readings are retracted when a
// sensor is recalibrated) is ingested through a 4-worker front-end; a
// query thread extracts the coreset mid-stream and again at the end.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	const (
		k       = 3
		delta   = 1 << 10
		n       = 8000
		workers = 4
	)
	rng := rand.New(rand.NewSource(17))
	readings, _ := workload.Mixture{
		N: n, D: 2, Delta: delta, K: k, Spread: 9, Skew: 2, NoiseFrac: 0.04,
	}.Generate(rng)
	// 10% of readings are later retracted (sensor recalibration).
	retracted := readings[:n/10]
	ops := make([]streambalance.Op, 0, n+n/10)
	for _, p := range readings {
		ops = append(ops, streambalance.Op{P: p})
	}
	for _, p := range retracted {
		ops = append(ops, streambalance.Op{P: p, Delete: true})
	}

	est, err := streambalance.EstimateOPT(readings, k, 2, 1)
	if err != nil {
		panic(err)
	}
	cfg := streambalance.StreamConfig{
		Dim: 2, Delta: delta,
		O:      streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: k, Seed: 9},
		// Sized for ~10k survivors: at a couple of levels every surviving
		// point is sampled (φ_i = 1), so the point sketches must hold them.
		CellSparsity: 4096, PointSparsity: 16384,
		Shards: workers,
	}

	// — The front-end road: Apply batches, extract whenever. —
	s, err := streambalance.NewStream(cfg)
	if err != nil {
		panic(err)
	}
	sh := streambalance.ShardStream(s, workers)
	defer sh.Close()

	t0 := time.Now()
	const batch = 512
	for i := 0; i < len(ops); i += batch {
		end := i + batch
		if end > len(ops) {
			end = len(ops)
		}
		sh.Apply(ops[i:end])
	}
	ingestMS := time.Since(t0).Milliseconds()
	cs, err := sh.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d updates through a %d-worker front-end in %d ms (imbalance %.2f)\n",
		len(ops), sh.Shards(), ingestMS, sh.Imbalance())
	fmt.Printf("surviving readings: %d; coreset: %d weighted points (weight %.0f)\n",
		sh.N(), cs.Size(), cs.TotalWeight())

	// — The manual road the front-end automates: Fork, ingest, Merge. —
	manual, err := streambalance.NewStream(cfg)
	if err != nil {
		panic(err)
	}
	forks := make([]*streambalance.Stream, workers)
	for i := range forks {
		forks[i] = manual.Fork()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Worker w ingests every op the front-end's hash routing would
			// NOT necessarily give it — an arbitrary round-robin split.
			// Linearity makes the partition irrelevant to the merged state.
			for i := w; i < len(ops); i += workers {
				if ops[i].Delete {
					forks[w].Delete(ops[i].P)
				} else {
					forks[w].Insert(ops[i].P)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, f := range forks {
		manual.Merge(f)
	}
	if manual.StateDigest() != s.StateDigest() {
		panic("front-end and manual fork/merge disagree — linearity violated")
	}
	fmt.Println("\nmanual round-robin fork/merge reproduced the front-end's state digest:")
	fmt.Println("any partition of the ops recombines to the same sketches — linearity.")

	// Balanced segmentation of the surviving readings.
	t := 1.15 * float64(sh.N()) / k
	sol, ok := streambalance.SolveCapacitated(cs.Points, k, t*1.3, streambalance.SolveOptions{Seed: 4})
	if !ok {
		panic("infeasible")
	}
	fmt.Printf("\nbalanced segments (capacity %.0f readings each):\n", t)
	for i, z := range sol.Centers {
		fmt.Printf("  segment %d at %v, weight %.0f\n", i, z, sol.Sizes[i])
	}
}
