// Sharded-stream example: every sketch in the streaming algorithm is
// LINEAR, so a logical stream can be split across workers — goroutines
// here, machines in production — each feeding its own fork, and the
// forks merged at query time into a state bit-identical to a single
// sequential pass (Lemma 4.2's mergability, the same property Theorem 4.7
// builds the distributed protocol on).
//
// Scenario: four ingestion workers consume partitions of a sensor feed
// (with sensor churn: readings are retracted when a sensor is
// recalibrated); a query thread merges and extracts the coreset.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"streambalance"
	"streambalance/internal/workload"
)

func main() {
	const (
		k       = 3
		delta   = 1 << 10
		n       = 8000
		workers = 4
	)
	rng := rand.New(rand.NewSource(17))
	readings, _ := workload.Mixture{
		N: n, D: 2, Delta: delta, K: k, Spread: 9, Skew: 2, NoiseFrac: 0.04,
	}.Generate(rng)
	// 10% of readings are later retracted (sensor recalibration).
	retracted := readings[:n/10]

	est, err := streambalance.EstimateOPT(readings, k, 2, 1)
	if err != nil {
		panic(err)
	}
	main_, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: delta,
		O:      streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: k, Seed: 9},
		// Sized for ~10k survivors: at a couple of levels every surviving
		// point is sampled (φ_i = 1), so the point sketches must hold them.
		CellSparsity: 4096, PointSparsity: 16384,
	})
	if err != nil {
		panic(err)
	}

	forks := make([]*streambalance.Stream, workers)
	for i := range forks {
		forks[i] = main_.Fork()
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Worker w ingests its partition of the feed…
			for i := w; i < len(readings); i += workers {
				forks[w].Insert(readings[i])
			}
			// …and the retractions that route to it.
			for i := w; i < len(retracted); i += workers {
				forks[w].Delete(retracted[i])
			}
		}(w)
	}
	wg.Wait()
	ingestMS := time.Since(t0).Milliseconds()

	for _, f := range forks {
		main_.Merge(f)
	}
	cs, err := main_.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d updates on %d workers in %d ms\n",
		len(readings)+len(retracted), workers, ingestMS)
	fmt.Printf("surviving readings: %d; coreset: %d weighted points (weight %.0f)\n",
		main_.N(), cs.Size(), cs.TotalWeight())

	// Balanced segmentation of the surviving readings.
	t := 1.15 * float64(main_.N()) / k
	sol, ok := streambalance.SolveCapacitated(cs.Points, k, t*1.3, streambalance.SolveOptions{Seed: 4})
	if !ok {
		panic("infeasible")
	}
	fmt.Printf("\nbalanced segments (capacity %.0f readings each):\n", t)
	for i, z := range sol.Centers {
		fmt.Printf("  segment %d at %v, weight %.0f\n", i, z, sol.Sizes[i])
	}
	fmt.Println("\nmerged fork state is bit-identical to a sequential pass — linearity")
	fmt.Println("is what makes both the sharding here and the deletions above exact.")
}
