package streambalance_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"streambalance"
	"streambalance/internal/workload"
)

func mixture(seed int64, n int) ([]streambalance.Point, []streambalance.Point) {
	rng := rand.New(rand.NewSource(seed))
	m := workload.Mixture{N: n, D: 2, Delta: 1 << 10, K: 3, Spread: 8, Skew: 2, NoiseFrac: 0.05}
	ps, truec := m.Generate(rng)
	return ps, truec
}

func unit(ps []streambalance.Point) []streambalance.Weighted {
	ws := make([]streambalance.Weighted, len(ps))
	for i, p := range ps {
		ws[i] = streambalance.Weighted{P: p, W: 1}
	}
	return ws
}

func TestPublicOfflinePipeline(t *testing.T) {
	ps, truec := mixture(1, 3000)
	cs, err := streambalance.BuildCoreset(ps, streambalance.Params{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() == 0 {
		t.Fatal("empty coreset")
	}
	full := streambalance.UnconstrainedCost(unit(ps), truec, 2)
	core := streambalance.UnconstrainedCost(cs.Points, truec, 2)
	if r := core / full; r < 0.8 || r > 1.2 {
		t.Fatalf("cost ratio %v", r)
	}
	// Solve on the coreset, evaluate on the full data.
	tcap := 1.2 * float64(len(ps)) / 3
	sol, ok := streambalance.SolveCapacitated(cs.Points, 3, tcap*1.3, streambalance.SolveOptions{Seed: 1})
	if !ok {
		t.Fatal("solve infeasible")
	}
	fullCapAtSol := streambalance.CapacitatedCost(unit(ps), sol.Centers, tcap*1.6, 2)
	if math.IsInf(fullCapAtSol, 1) {
		t.Fatal("solution infeasible on full data at relaxed capacity")
	}
	ref := streambalance.CapacitatedCost(unit(ps), truec, tcap, 2)
	if fullCapAtSol > 3*ref {
		t.Fatalf("coreset-derived solution cost %v far above reference %v", fullCapAtSol, ref)
	}
}

func TestPublicStreamingPipeline(t *testing.T) {
	ps, truec := mixture(2, 2500)
	est, err := streambalance.EstimateOPT(ps, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 10, O: streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: 3, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		s.Insert(p)
		if i%5 == 0 { // churn
			s.Insert(streambalance.Point{1, 1})
			s.Delete(streambalance.Point{1, 1})
		}
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	full := streambalance.UnconstrainedCost(unit(ps), truec, 2)
	core := streambalance.UnconstrainedCost(cs.Points, truec, 2)
	if r := core / full; r < 0.7 || r > 1.3 {
		t.Fatalf("stream cost ratio %v", r)
	}
}

func TestPublicDistributedPipeline(t *testing.T) {
	ps, truec := mixture(3, 3000)
	machines := make([][]streambalance.Point, 4)
	for i, p := range ps {
		machines[i%4] = append(machines[i%4], p)
	}
	rep, err := streambalance.DistributedCoreset(machines, streambalance.DistConfig{
		Dim: 2, Delta: 1 << 10, Params: streambalance.Params{K: 3, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bits <= 0 || rep.Coreset.Size() == 0 {
		t.Fatalf("bits=%d size=%d", rep.Bits, rep.Coreset.Size())
	}
	full := streambalance.UnconstrainedCost(unit(ps), truec, 2)
	core := streambalance.UnconstrainedCost(rep.Coreset.Points, truec, 2)
	if r := core / full; r < 0.7 || r > 1.3 {
		t.Fatalf("distributed cost ratio %v", r)
	}
}

func TestAssignCapacitated(t *testing.T) {
	ws := unit([]streambalance.Point{{1, 1}, {2, 2}, {99, 99}, {98, 98}})
	centers := []streambalance.Point{{1, 1}, {99, 99}}
	asg, cost, ok := streambalance.AssignCapacitated(ws, centers, 2, 2)
	if !ok {
		t.Fatal("infeasible")
	}
	if asg[0] != 0 || asg[1] != 0 || asg[2] != 1 || asg[3] != 1 {
		t.Fatalf("assignment %v", asg)
	}
	if cost != 2+2 {
		t.Fatalf("cost %v", cost)
	}
	// Balanced constraint forces a split.
	asg2, cost2, ok := streambalance.AssignCapacitated(ws, []streambalance.Point{{1, 1}, {2, 2}}, 2, 2)
	if !ok {
		t.Fatal("infeasible 2")
	}
	if cost2 <= cost {
		t.Fatalf("forcing far assignment must cost more: %v vs %v", cost2, cost)
	}
	counts := map[int]int{}
	for _, a := range asg2 {
		counts[a]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("capacity violated: %v", counts)
	}
}

func TestCapacitatedCostInfeasible(t *testing.T) {
	ws := unit([]streambalance.Point{{1, 1}, {2, 2}, {3, 3}})
	if !math.IsInf(streambalance.CapacitatedCost(ws, []streambalance.Point{{1, 1}}, 2, 2), 1) {
		t.Fatal("want +Inf for infeasible capacity")
	}
}

func TestGuessFromEstimate(t *testing.T) {
	if streambalance.GuessFromEstimate(0.5) != 1 {
		t.Fatal("floor at 1")
	}
	if streambalance.GuessFromEstimate(4096*4+1) != 4096 {
		t.Fatalf("got %v", streambalance.GuessFromEstimate(4096*4+1))
	}
}

func TestEstimateOPTErrors(t *testing.T) {
	if _, err := streambalance.EstimateOPT(nil, 2, 2, 1); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestReduceDimensionPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := workload.Mixture{N: 800, D: 96, Delta: 1 << 10, K: 3, Spread: 8}
	ps, truec := m.Generate(rng)
	dr, red, err := streambalance.ReduceDimension(ps, 3, 0.5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dr.ReducedDim() >= 96 || dr.ReducedDim() < 4 {
		t.Fatalf("reduced dim %d", dr.ReducedDim())
	}
	if len(red) != len(ps) || len(red[0]) != dr.ReducedDim() {
		t.Fatal("reduced shape wrong")
	}
	cs, err := streambalance.BuildCoreset(red, streambalance.Params{K: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sol, ok := streambalance.SolveCapacitated(cs.Points, 3, 1.3*float64(len(ps))/3,
		streambalance.SolveOptions{Seed: 7, Delta: dr.ReducedDelta()})
	if !ok {
		t.Fatal("infeasible")
	}
	lifted := dr.LiftCenters(ps, sol.Centers)
	if len(lifted) != 3 || len(lifted[0]) != 96 {
		t.Fatal("lift shape wrong")
	}
	// The lifted centers must be competitive with the true centers in the
	// original space (uncapacitated check suffices for the pipeline).
	full := unit(ps)
	got := streambalance.UnconstrainedCost(full, lifted, 2)
	ref := streambalance.UnconstrainedCost(full, truec, 2)
	if got > 1.5*ref {
		t.Fatalf("lifted centers cost %v vs true-center cost %v", got, ref)
	}
}

func TestKCenterFacade(t *testing.T) {
	ps, _ := mixture(50, 300)
	sol, ok := streambalance.SolveCapacitatedKCenter(ps, 3, 110, 1)
	if !ok {
		t.Fatal("infeasible")
	}
	if sol.Cost <= 0 {
		t.Fatal("zero radius on spread data")
	}
	asg, radius, ok := streambalance.AssignBottleneck(ps, sol.Centers, 110)
	if !ok {
		t.Fatal("assign infeasible")
	}
	if radius > sol.Cost+1e-9 {
		t.Fatalf("oracle radius %v exceeds solver radius %v", radius, sol.Cost)
	}
	counts := map[int]int{}
	for _, a := range asg {
		counts[a]++
	}
	for j, c := range counts {
		if c > 110 {
			t.Fatalf("center %d over capacity: %d", j, c)
		}
	}
}

func TestSaveLoadCoreset(t *testing.T) {
	ps, _ := mixture(60, 1000)
	cs, err := streambalance.BuildCoreset(ps, streambalance.Params{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := streambalance.SaveCoreset(cs, &buf); err != nil {
		t.Fatal(err)
	}
	p, err := streambalance.LoadCoreset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != cs.Size() || p.K != 3 {
		t.Fatalf("round trip: %d points, k=%d", len(p.Points), p.K)
	}
	// The loaded points are directly solvable.
	if _, ok := streambalance.SolveCapacitated(p.Points, p.K, 600, streambalance.SolveOptions{Seed: 1}); !ok {
		t.Fatal("loaded coreset not solvable")
	}
}
