// Package streambalance is a Go implementation of "Streaming Balanced
// Clustering" (Esfandiari, Mirrokni, Zhong; SPAA 2023 brief announcement,
// full version arXiv:1910.00788): strong coresets for capacitated
// (balanced) k-clustering in ℓ_r — capacitated k-median (r = 1) and
// capacitated k-means (r = 2) — constructible offline in near-linear
// time, over one-pass dynamic streams (insertions AND deletions) in
// poly(ε⁻¹η⁻¹kd log Δ) space, and in the distributed coordinator model
// with s·poly(...) communication.
//
// A strong (η, ε)-coreset is a weighted subset Q′ ⊆ Q such that for EVERY
// capacity t ≥ |Q|/k and EVERY center set Z of size k,
//
//	cost_{(1+η)t}(Q, Z) ≤ (1+ε)·cost_t(Q′, Z, w′)  and
//	cost_{(1+η)t}(Q′, Z, w′) ≤ (1+ε)·cost_t(Q, Z),
//
// where cost_t is the optimal capacity-t assignment cost. Consequently,
// running any (α, β)-approximate capacitated solver on the coreset yields
// a ((1+O(ε))α, (1+O(η))β) solution on the original data (Fact 2.3).
//
// # Quick start
//
//	points := ...                             // []streambalance.Point on [1,Δ]^d
//	cs, err := streambalance.BuildCoreset(points, streambalance.Params{K: 8})
//	sol, ok := streambalance.SolveCapacitated(cs.Points, 8, capacity, streambalance.SolveOptions{})
//
// For dynamic streams use NewStream (fixed cost guess) or NewAutoStream
// (parallel guess enumeration); for partitioned data use
// DistributedCoreset. See examples/ for runnable end-to-end programs and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
package streambalance

import (
	"errors"
	"io"
	"math"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/dist"
	"streambalance/internal/geo"
	"streambalance/internal/solve"
	"streambalance/internal/stream"
)

// Point is a point of the integer grid [1, Δ]^d.
type Point = geo.Point

// Weighted is a point with a positive weight, as stored in coresets.
type Weighted = geo.Weighted

// Params configures the coreset construction (k, r, ε, η, seed, and
// practical-vs-conservative constants). The zero value of every optional
// field selects a sensible default; K is required.
type Params = coreset.Params

// Coreset is a strong (η, ε)-coreset for capacitated k-clustering.
type Coreset = coreset.Coreset

// StreamConfig configures a one-pass dynamic streaming instance.
type StreamConfig = stream.Config

// Stream is a single-guess streaming coreset builder (Theorem 4.5).
type Stream = stream.Stream

// AutoStream runs the parallel guess enumeration of Theorem 4.5.
type AutoStream = stream.Auto

// Op is a dynamic stream update.
type Op = stream.Op

// ShardedStream is the multicore sharded ingest front-end: one logical
// op stream hash-partitioned across P ingest workers, each owning a
// private clone of every sketch, recombined exactly at extraction time
// (sketch linearity makes the result bit-identical to a serial pass at
// any shard count). Close it to release the workers.
type ShardedStream = stream.Sharded

// DistConfig configures the distributed protocol (Theorem 4.7).
type DistConfig = dist.Config

// DistReport is the distributed protocol's outcome, including bit-exact
// communication accounting.
type DistReport = dist.Report

// Solution is a capacitated clustering solution.
type Solution = solve.Solution

// BuildCoreset runs the offline construction of Theorem 3.19 on the
// point set.
func BuildCoreset(points []Point, p Params) (*Coreset, error) {
	return coreset.Build(geo.PointSet(points), p)
}

// NewStream creates a one-pass dynamic streaming coreset builder for a
// fixed guess cfg.O of the optimal uncapacitated cost.
func NewStream(cfg StreamConfig) (*Stream, error) { return stream.New(cfg) }

// NewAutoStream creates the parallel guess-enumeration variant; oFactor
// is the ratio between consecutive guesses (≥ 2).
func NewAutoStream(cfg StreamConfig, oFactor float64) (*AutoStream, error) {
	return stream.NewAuto(cfg, oFactor)
}

// NewShardedStream creates the guess-enumeration ensemble of
// NewAutoStream behind a sharded multicore ingest front-end with
// cfg.Shards workers (0 sizes the pool to GOMAXPROCS).
func NewShardedStream(cfg StreamConfig, oFactor float64) (*ShardedStream, error) {
	return stream.NewSharded(cfg, oFactor)
}

// ShardStream wraps an existing single-guess Stream in a sharded ingest
// front-end with the given worker count.
func ShardStream(s *Stream, shards int) *ShardedStream { return stream.ShardStream(s, shards) }

// ShardAutoStream wraps an existing guess-enumeration ensemble in a
// sharded ingest front-end with the given worker count.
func ShardAutoStream(a *AutoStream, shards int) *ShardedStream { return stream.ShardAuto(a, shards) }

// DistributedCoreset runs the coordinator protocol of Theorem 4.7 over
// the machines' local point sets, using the concurrent pipelined driver
// (every machine in its own goroutine, bounded by cfg.Workers; framed
// wire messages over cfg.Transport, in-memory channels by default). The
// report's Bits is the measured length of the encoded frames;
// FormulaBits carries the closed-form accounting for comparison. The
// result is bit-identical at any worker count and on any transport
// (DESIGN.md §8).
func DistributedCoreset(machines [][]Point, cfg DistConfig) (*DistReport, error) {
	ms := make([]geo.PointSet, len(machines))
	for i, m := range machines {
		ms[i] = geo.PointSet(m)
	}
	return dist.Run(ms, cfg)
}

// PortableCoreset is the serializable form of a coreset (weighted points
// plus interpretation metadata).
type PortableCoreset = coreset.Portable

// SaveCoreset writes a coreset to w in the binary (gob) format.
func SaveCoreset(cs *Coreset, w io.Writer) error { return cs.Encode(w) }

// LoadCoreset reads a coreset written by SaveCoreset.
func LoadCoreset(r io.Reader) (PortableCoreset, error) { return coreset.Decode(r) }

// ComposeCoresets merges portable coresets of DISJOINT point sets into a
// coreset of their union (strong coresets compose additively — the
// property Theorem 4.7's distributed protocol exploits).
func ComposeCoresets(parts ...PortableCoreset) (PortableCoreset, error) {
	return coreset.Compose(parts...)
}

// SolveOptions tunes SolveCapacitated.
type SolveOptions struct {
	R        float64 // ℓ_r exponent (default 2)
	Seed     int64
	Iters    int   // Lloyd iterations (default 8)
	Restarts int   // k-means++ restarts (default 3)
	Delta    int64 // grid bound for recentering (default: inferred)
	// LocalSearch additionally runs single-swap local search for up to
	// this many accepted swaps (0 = off).
	LocalSearch int
}

// SolveCapacitated computes a capacitated k-clustering of the weighted
// points under per-center capacity t: k-means++ seeding, then Lloyd
// iterations whose assignment step is an optimal capacitated assignment
// by min-cost flow (the practical stand-in for the paper's black-box
// (α, β)-approximations — see DESIGN.md §1). ok is false when t·k is less
// than the total weight.
func SolveCapacitated(ws []Weighted, k int, t float64, opt SolveOptions) (Solution, bool) {
	if opt.R == 0 {
		opt.R = 2
	}
	if opt.Iters == 0 {
		opt.Iters = 8
	}
	if opt.Restarts == 0 {
		opt.Restarts = 3
	}
	if opt.Delta == 0 {
		opt.Delta = geo.MaxCoordRange(geo.Points(ws))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sol, ok := solve.CapacitatedLloyd(rng, ws, k, t, opt.R, opt.Delta, opt.Iters, opt.Restarts)
	if ok && opt.LocalSearch > 0 {
		sol = solve.LocalSearchCapacitated(rng, ws, sol, t, opt.R, opt.LocalSearch, 8)
	}
	return sol, ok
}

// CapacitatedCost computes the optimal capacity-t fractional assignment
// cost of the weighted points to the centers in ℓ_r (+Inf when
// infeasible) — the cost_t^{(r)}(Q, Z, w) of Section 2 in its LP
// relaxation, which is what both sides of the coreset guarantee are
// measured with.
func CapacitatedCost(ws []Weighted, centers []Point, t, r float64) float64 {
	c, _, ok := assign.FractionalCost(ws, centers, t, r)
	if !ok {
		return math.Inf(1)
	}
	return c
}

// AssignCapacitated computes an integral capacity-respecting assignment
// of the weighted points to the centers (Section 3.3's rounding: at most
// k−1 points exceed t, by at most (k−1)·max w in total). The returned
// slice maps each input index to a center index; ok is false when
// infeasible.
func AssignCapacitated(ws []Weighted, centers []Point, t, r float64) (assignment []int, cost float64, ok bool) {
	res, ok := assign.Weighted(ws, centers, t, r)
	if !ok {
		return nil, math.Inf(1), false
	}
	return res.Assign, res.Cost, true
}

// SolveCapacitatedKCenter solves capacitated k-center — the r = ∞ member
// of the paper's capacitated k-clustering family: place k centers and
// assign at most t points to each, minimizing the maximum point-center
// distance. Gonzalez seeding + exact bottleneck assignment + local
// search. Solution.Cost holds the bottleneck radius.
func SolveCapacitatedKCenter(points []Point, k int, t float64, seed int64) (Solution, bool) {
	rng := rand.New(rand.NewSource(seed))
	return solve.CapacitatedKCenter(rng, geo.PointSet(points), k, t, 3, 3)
}

// AssignBottleneck computes the optimal capacitated bottleneck (k-center)
// assignment of points to fixed centers: at most ⌊t⌋ points per center,
// minimizing the maximum distance. The returned radius is exact.
func AssignBottleneck(points []Point, centers []Point, t float64) (assignment []int, radius float64, ok bool) {
	res, ok := assign.OptimalBottleneck(geo.PointSet(points), centers, t)
	if !ok {
		return nil, math.Inf(1), false
	}
	return res.Assign, res.Cost, true
}

// UnconstrainedCost computes Σ w(p)·dist^r(p, Z) — the capacity-free
// clustering cost.
func UnconstrainedCost(ws []Weighted, centers []Point, r float64) float64 {
	return assign.UnconstrainedCost(ws, centers, r)
}

// EstimateOPT returns an upper bound on the optimal uncapacitated ℓ_r
// cost (k-means++ + Lloyd), the quantity the streaming guess o is derived
// from.
func EstimateOPT(points []Point, k int, r float64, seed int64) (float64, error) {
	if len(points) == 0 {
		return 0, errors.New("streambalance: empty input")
	}
	rng := rand.New(rand.NewSource(seed))
	delta := geo.MaxCoordRange(geo.PointSet(points))
	return solve.EstimateOPT(rng, geo.UnitWeights(geo.PointSet(points)), k, r, delta, 3), nil
}

// GuessFromEstimate converts an OPT upper-bound estimate into the guess o
// a single-guess Stream should be configured with (estimate/4, floored to
// a power of two, ≥ 1).
func GuessFromEstimate(estimate float64) float64 {
	o := estimate / 4
	if o < 1 {
		return 1
	}
	return math.Exp2(math.Floor(math.Log2(o)))
}
