// Benchmark harness: one benchmark per experiment table of DESIGN.md §3
// (the tables EXPERIMENTS.md records), plus micro-benchmarks of the core
// operations. The experiment benchmarks print their table on the first
// iteration; run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// to regenerate every table exactly once.
package streambalance_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"streambalance"
	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/dist"
	"streambalance/internal/experiments"
	assigngeo "streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

var printOnce sync.Map

func benchTable(b *testing.B, id string, run func(experiments.Cfg) *metrics.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb := run(experiments.Cfg{Seed: 1})
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Println()
			tb.Render(os.Stdout)
		}
	}
}

func BenchmarkE1CoresetQuality(b *testing.B)  { benchTable(b, "E1", experiments.E1CoresetQuality) }
func BenchmarkE2CoresetSize(b *testing.B)     { benchTable(b, "E2", experiments.E2CoresetSize) }
func BenchmarkE3StreamingSpace(b *testing.B)  { benchTable(b, "E3", experiments.E3StreamingSpace) }
func BenchmarkE4Deletions(b *testing.B)       { benchTable(b, "E4", experiments.E4Deletions) }
func BenchmarkE5Distributed(b *testing.B)     { benchTable(b, "E5", experiments.E5Distributed) }
func BenchmarkE6EndToEnd(b *testing.B)        { benchTable(b, "E6", experiments.E6EndToEnd) }
func BenchmarkE7Baselines(b *testing.B)       { benchTable(b, "E7", experiments.E7Baselines) }
func BenchmarkE8BuildTime(b *testing.B)       { benchTable(b, "E8", experiments.E8BuildTime) }
func BenchmarkE9Separation(b *testing.B)      { benchTable(b, "E9", experiments.E9Separation) }
func BenchmarkE10Ablation(b *testing.B)       { benchTable(b, "E10", experiments.E10Ablation) }
func BenchmarkE11HighDim(b *testing.B)        { benchTable(b, "E11", experiments.E11HighDim) }
func BenchmarkE12GuessSelection(b *testing.B) { benchTable(b, "E12", experiments.E12GuessSelection) }
func BenchmarkE13AssignmentCounting(b *testing.B) {
	benchTable(b, "E13", experiments.E13AssignmentCounting)
}

// ---- micro-benchmarks of the core operations ----

func benchPoints(n int) []streambalance.Point {
	rng := rand.New(rand.NewSource(42))
	m := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: 4, Spread: 20, Skew: 2, NoiseFrac: 0.05}
	ps, _ := m.Generate(rng)
	return ps
}

// BenchmarkCoresetBuild measures the offline construction (Theorem 3.19:
// near-linear time) end to end on 32k points.
func BenchmarkCoresetBuild(b *testing.B) {
	ps := benchPoints(32000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := streambalance.BuildCoreset(ps, streambalance.Params{K: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ps)), "points/op")
}

// BenchmarkStreamInsert measures the per-update cost of the dynamic
// streaming sketch (3(L+1) λ-wise hash evaluations + sketch updates).
func BenchmarkStreamInsert(b *testing.B) {
	ps := benchPoints(4096)
	s, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12, O: 1 << 20,
		Params: streambalance.Params{K: 4, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(ps[i%len(ps)])
	}
}

// BenchmarkStreamIngest is the ingest-throughput headline: the batched
// shared-key pipeline (Auto.Apply) over the full guess ensemble — per-op
// key columns computed once for all guesses, sketch work sharded across a
// worker pool. Compare with BenchmarkStreamIngestPerOp, the serial
// reference path.
func BenchmarkStreamIngest(b *testing.B) {
	ps := benchPoints(4096)
	a, err := streambalance.NewAutoStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12,
		Params:       streambalance.Params{K: 4, Seed: 1},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]streambalance.Op, len(ps))
	for i, p := range ps {
		ops[i] = streambalance.Op{P: p}
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += len(ops) {
		n := b.N - done
		if n > len(ops) {
			n = len(ops)
		}
		a.Apply(ops[:n])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkStreamIngestPerOp feeds the same guess ensemble one op at a
// time — the pre-batching ingest path, kept as the speedup baseline.
func BenchmarkStreamIngestPerOp(b *testing.B) {
	ps := benchPoints(4096)
	a, err := streambalance.NewAutoStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12,
		Params:       streambalance.Params{K: 4, Seed: 1},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(ps[i%len(ps)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkStreamExtract is the extraction-throughput headline: guess
// selection + decode + assembly over the full 25-guess ensemble
// (DESIGN.md §6). Cold drops the decode caches every iteration, so each
// extraction re-peels every consulted sketch (in parallel when
// GOMAXPROCS > 1); Warm re-extracts with unchanged sketches, where every
// decode is an epoch-cache hit; ColdSerial is the pre-pipeline lazy
// single-worker baseline.
func BenchmarkStreamExtract(b *testing.B) {
	ps := benchPoints(4096)
	newEnsemble := func() *streambalance.AutoStream {
		a, err := streambalance.NewAutoStream(streambalance.StreamConfig{
			Dim: 2, Delta: 1 << 12,
			Params:       streambalance.Params{K: 4, Seed: 1},
			CellSparsity: 512, PointSparsity: 4096,
		}, 4)
		if err != nil {
			b.Fatal(err)
		}
		ops := make([]streambalance.Op, len(ps))
		for i, p := range ps {
			ops[i] = streambalance.Op{P: p}
		}
		a.Apply(ops)
		if _, err := a.Result(); err != nil {
			b.Fatal(err)
		}
		return a
	}
	b.Run("Cold", func(b *testing.B) {
		a := newEnsemble()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.DropDecodeCache()
			if _, err := a.Result(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "extracts/sec")
	})
	b.Run("ColdSerial", func(b *testing.B) {
		a := newEnsemble()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.DropDecodeCache()
			if _, err := a.ResultSerial(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "extracts/sec")
	})
	b.Run("Warm", func(b *testing.B) {
		a := newEnsemble()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Result(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "extracts/sec")
	})
}

// BenchmarkStreamResult measures end-of-stream decoding on a single
// stream instance, cold: the epoch cache is dropped every iteration so
// the decode cost is actually measured (see BenchmarkStreamExtract/Warm
// for the cached path).
func BenchmarkStreamResult(b *testing.B) {
	ps := benchPoints(8000)
	est, _ := streambalance.EstimateOPT(ps, 4, 2, 1)
	s, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12, O: streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: 4, Seed: 1},
		// At a couple of levels every survivor is sampled (φ_i = 1); the
		// point sketches must hold all 8000.
		CellSparsity: 4096, PointSparsity: 16384,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DropDecodeCache()
		if _, err := s.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignSweep measures capacitated-assignment throughput on the
// E1-shaped workload (one fixed point set, 25 center sets, an ascending
// capacity sweep per set) in the three engine modes of DESIGN.md §7:
// Fresh rebuilds the flow graph and all distances per solve (the
// historical per-call path), Arena reuses one assign.Solver with
// warm-start disabled (skeleton + distance block amortized per center
// set), Warm additionally warm-starts each sweep from the previous
// capacity's potentials and residual flow.
func BenchmarkAssignSweep(b *testing.B) {
	ps := benchPoints(512)
	const k = 4
	ws := make([]assigngeo.Weighted, len(ps))
	for i, p := range ps {
		ws[i] = assigngeo.Weighted{P: p, W: 1}
	}
	rng := rand.New(rand.NewSource(7))
	zs := make([][]assigngeo.Point, 25)
	for i := range zs {
		zs[i] = solve.SeedKMeansPP(rng, ws, k, 2)
	}
	base := assigngeo.TotalWeight(ws) / k
	caps := []float64{1.02 * base, 1.05 * base, 1.1 * base, 1.2 * base, 1.4 * base, 1.8 * base, 2.5 * base, 4 * base}
	solves := len(zs) * len(caps)

	b.Run("Fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, Z := range zs {
				for _, t := range caps {
					if _, _, ok := assign.FractionalCost(ws, Z, t, 2); !ok {
						b.Fatal("infeasible")
					}
				}
			}
		}
		b.ReportMetric(float64(b.N*solves)/b.Elapsed().Seconds(), "solves/sec")
	})
	b.Run("Arena", func(b *testing.B) {
		eng := assign.NewSolver()
		eng.SetWarmStart(false)
		eng.Bind(ws, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, Z := range zs {
				eng.SetCenters(Z)
				for _, t := range caps {
					if _, ok := eng.Fractional(t); !ok {
						b.Fatal("infeasible")
					}
				}
			}
		}
		b.ReportMetric(float64(b.N*solves)/b.Elapsed().Seconds(), "solves/sec")
	})
	b.Run("Warm", func(b *testing.B) {
		eng := assign.NewSolver()
		eng.Bind(ws, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, Z := range zs {
				eng.SetCenters(Z)
				for _, t := range caps {
					if _, ok := eng.Fractional(t); !ok {
						b.Fatal("infeasible")
					}
				}
			}
		}
		b.ReportMetric(float64(b.N*solves)/b.Elapsed().Seconds(), "solves/sec")
	})
}

// BenchmarkDistProtocol measures the distributed coreset protocol on a
// fixed 8-machine split: the serial reference driver against the
// pipelined concurrent driver at 1, 4 and 8 workers. Wire bytes are
// reported per op; on multi-core hosts the pipelined modes overlap the
// machines' per-level scans and should approach a workers-fold speedup.
func BenchmarkDistProtocol(b *testing.B) {
	ps := benchPoints(16384)
	const s = 8
	machines := make([]assigngeo.PointSet, s)
	for i, p := range ps {
		machines[i%s] = append(machines[i%s], p)
	}
	cfg := dist.Config{Dim: 2, Delta: 1 << 12, Params: coreset.Params{K: 4, Seed: 1}}
	report := func(b *testing.B, rep *dist.Report) {
		b.ReportMetric(float64(rep.Bits)/8, "wire-bytes/op")
		b.ReportMetric(float64(rep.FormulaBits)/8, "formula-bytes/op")
	}
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := dist.RunSerial(machines, cfg)
			if err != nil {
				b.Fatal(err)
			}
			report(b, rep)
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("Workers%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			for i := 0; i < b.N; i++ {
				rep, err := dist.Run(machines, c)
				if err != nil {
					b.Fatal(err)
				}
				report(b, rep)
			}
		})
	}
}

// BenchmarkCapacitatedAssign measures the min-cost-flow assignment oracle
// (500 points × 4 centers).
func BenchmarkCapacitatedAssign(b *testing.B) {
	ps := benchPoints(500)
	ws := make([]streambalance.Weighted, len(ps))
	for i, p := range ps {
		ws[i] = streambalance.Weighted{P: p, W: 1}
	}
	centers := []streambalance.Point{{512, 512}, {3500, 3500}, {512, 3500}, {3500, 512}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := streambalance.AssignCapacitated(ws, centers, 140, 2); !ok {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSolveCapacitated measures the full solver on a coreset-sized
// input.
func BenchmarkSolveCapacitated(b *testing.B) {
	ps := benchPoints(400)
	ws := make([]streambalance.Weighted, len(ps))
	for i, p := range ps {
		ws[i] = streambalance.Weighted{P: p, W: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := streambalance.SolveCapacitated(ws, 4, 130, streambalance.SolveOptions{Seed: int64(i), Iters: 4, Restarts: 1}); !ok {
			b.Fatal("infeasible")
		}
	}
}
