package experiments

import (
	"reflect"
	"testing"

	"streambalance/internal/metrics"
)

// tableEqual asserts two tables are deeply identical — every header,
// note, and rendered cell byte.
func tableEqual(t *testing.T, a, b *metrics.Table, what string) {
	t.Helper()
	if a.ID != b.ID || a.Title != b.Title || a.Note != b.Note {
		t.Fatalf("%s: table metadata differs:\n%q %q\nvs\n%q %q", what, a.ID, a.Note, b.ID, b.Note)
	}
	if !reflect.DeepEqual(a.Header, b.Header) {
		t.Fatalf("%s: headers differ: %v vs %v", what, a.Header, b.Header)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row counts differ: %d vs %d", what, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			t.Fatalf("%s: row %d differs:\n%v\nvs\n%v", what, i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestE1AssignParallelMatchesSerial mirrors the extraction pipeline's
// TestExtractParallelMatchesSerial for the assignment engine harness:
// the parallel (center set × capacity) evaluation with per-worker solver
// arenas and warm-started sweeps must reproduce the one-worker tables
// byte-identically. E9/E13 cover the integral engine on their own pools.
func TestE1AssignParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-heavy")
	}
	c := Cfg{Seed: 2, Scale: 0.3}
	serial := E1CoresetQuality(Cfg{Seed: c.Seed, Scale: c.Scale, Workers: 1})
	parallel := E1CoresetQuality(Cfg{Seed: c.Seed, Scale: c.Scale, Workers: 4})
	tableEqual(t, serial, parallel, "E1 workers=1 vs workers=4")
}

// TestAssignParallelExperimentsMatchSerial pins the other converted
// solve loops (E5's protocol sweep, E9's per-worker integral engines,
// E12's stream replays, E13's combo sweep) to their one-worker output.
func TestAssignParallelExperimentsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-heavy")
	}
	for _, tc := range []struct {
		name  string
		f     func(Cfg) *metrics.Table
		scale float64
	}{
		{"E5", E5Distributed, 0.1},
		{"E9", E9Separation, 0.3},
		{"E12", E12GuessSelection, 0.1},
		{"E13", E13AssignmentCounting, 1},
	} {
		serial := tc.f(Cfg{Seed: 2, Scale: tc.scale, Workers: 1})
		parallel := tc.f(Cfg{Seed: 2, Scale: tc.scale, Workers: 4})
		tableEqual(t, serial, parallel, tc.name+" workers=1 vs workers=4")
	}
}
