package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/stream"
)

const e3Delta = 1 << 10

// E3StreamingSpace validates Theorem 4.5's space claim: the sketch state
// of the one-pass dynamic streaming algorithm is poly(kd log Δ) bytes,
// independent of the stream length, while storing the stream itself grows
// linearly. Both the single-guess instance and the full guess-enumeration
// (Auto) are measured.
func E3StreamingSpace(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 3
	tb := metrics.New("E3", "streaming space vs stream length (Theorem 4.5)",
		"n", "sketch bytes (1 guess)", "sketch bytes (all guesses)", "raw stream bytes", "|Q'|", "cost ratio @true Z")
	tb.Note = "sketch columns must stay flat as n grows; raw column grows linearly"

	for _, base := range []int{2000, 8000, 32000} {
		n := c.n(base)
		rng := rand.New(rand.NewSource(c.Seed))
		ps, truec := mixtureAt(rng, n, k, e3Delta)
		o := streamGuessAt(ps, k, c.Seed, e3Delta)

		single, err := stream.New(stream.Config{
			Dim: 2, Delta: e3Delta, O: o,
			Params:       coreset.Params{K: k, Seed: c.Seed, HashIndependence: 8},
			CellSparsity: 2048, PointSparsity: 4096,
		})
		if err != nil {
			panic(err)
		}
		auto, err := stream.NewAuto(stream.Config{
			Dim: 2, Delta: e3Delta,
			Params:       coreset.Params{K: k, Seed: c.Seed, HashIndependence: 8},
			CellSparsity: 512, PointSparsity: 2048,
		}, 4)
		if err != nil {
			panic(err)
		}
		ops := make([]stream.Op, len(ps))
		for i, p := range ps {
			ops[i] = stream.Op{P: p}
		}
		single.Apply(ops)
		auto.Apply(ops) // parallel across guess instances
		cs, err := single.Result()
		if err != nil {
			panic(err)
		}
		full := assign.UnconstrainedCost(geo.UnitWeights(ps), truec, 2)
		core := assign.UnconstrainedCost(cs.Points, truec, 2)
		raw := int64(n) * int64(2*8) // n points × d coords × 8 bytes
		tb.Add(metrics.I(int64(n)), metrics.Bytes(single.Bytes()), metrics.Bytes(auto.Bytes()),
			metrics.Bytes(raw), metrics.I(int64(cs.Size())),
			fmt.Sprintf("%.3f", core/full))
	}
	return tb
}

func mixtureAt(rng *rand.Rand, n, k int, delta int64) (geo.PointSet, []geo.Point) {
	return workloadMixture(n, k, delta).Generate(rng)
}
