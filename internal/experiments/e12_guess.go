package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/metrics"
	"streambalance/internal/obs"
	"streambalance/internal/stream"
)

// E12GuessSelection compares the three guess-selection mechanisms the
// repository implements for Theorem 4.5's o (the paper assumes a
// streaming 2-approximation of OPT as a black box):
//
//	offline:    k-means++ + Lloyd on the full data (the reference),
//	reservoir:  the same estimator on a 1000-point reservoir sample
//	            (exact for insertion-only streams),
//	cell-count: the deletion-proof F₀ cell-counting upper bound.
//
// For each selected o the table reports the resulting coreset size and
// cost fidelity — showing how guess quality trades coreset size for
// nothing until o approaches OPT from below, and why the cell-count
// bound is used only as a pruning cap.
func E12GuessSelection(c Cfg) *metrics.Table {
	sp := obs.StartSpan("exp.E12")
	c = c.withDefaults()
	const k, delta = 3, int64(1 << 10)
	n := c.n(4000)
	rng := rand.New(rand.NewSource(c.Seed))
	ps, truec := mixtureAt(rng, n, k, delta)
	ws := geo.UnitWeights(ps)
	fullCost := assign.UnconstrainedCost(ws, truec, 2)

	tb := metrics.New("E12", "guess-selection mechanisms for o (Theorem 4.5's 2-approx slot)",
		"selector", "selected o", "o / offline o", "|Q'|", "Σw'/n", "cost ratio @true Z")
	tb.Note = fmt.Sprintf("n=%d; smaller o only enlarges the coreset; o ≫ OPT undersamples (the cell-count row is why that bound is only a pruning cap)", n)

	offline := streamGuessAt(ps, k, c.Seed, delta)

	// Reservoir estimate (as Auto computes it on an insert-only stream).
	rv := stream.NewReservoir(1000, c.Seed)
	for _, p := range ps {
		rv.Insert(p)
	}
	// The sample's clustering cost is ≈ (sample/n)·OPT; rescale.
	resEst := streamGuessAt(rv.Sample(), k, c.Seed, delta) * float64(n) / float64(len(rv.Sample()))

	// Cell-count bound.
	gcb := grid.New(delta, 2, rand.New(rand.NewSource(c.Seed+3)))
	cb := stream.NewCostBound(rand.New(rand.NewSource(c.Seed+4)), gcb, 2, 256)
	for _, p := range ps {
		cb.Insert(p)
	}
	cbGuess := cb.Guess(k)

	// Every row replays the whole stream into its own internally-seeded
	// sketch — the expensive part — and the rows share no state, so they
	// go over the worker pool and are added in row order afterwards.
	rows := []struct {
		name string
		o    float64
	}{
		{"offline estimate", offline},
		{"reservoir (1000)", resEst},
		{"cell-count bound", cbGuess},
		{"offline / 16", offline / 16},
		{"offline × 16", offline * 16},
	}
	type e12Row struct{ cells [6]string }
	outs := make([]e12Row, len(rows))
	forEachWorker(c.Workers, len(rows), func(_, ri int) {
		row := rows[ri]
		s, err := stream.New(stream.Config{
			Dim: 2, Delta: delta, O: row.o,
			Params: coreset.Params{K: k, Seed: c.Seed + 9},
		})
		if err != nil {
			// A selector can hand back an unusable guess (e.g. NaN/0 on a
			// degenerate sample); report it as a FAIL row, don't kill the
			// whole worker pool.
			outs[ri] = e12Row{[6]string{row.name, metrics.F(row.o), fmt.Sprintf("%.2f", row.o/offline),
				"FAIL", "-", "-"}}
			return
		}
		for _, p := range ps {
			s.Insert(p)
		}
		cs, err := s.Result()
		if err != nil {
			outs[ri] = e12Row{[6]string{row.name, metrics.F(row.o), fmt.Sprintf("%.2f", row.o/offline),
				"FAIL", "-", "-"}}
			return
		}
		core := assign.UnconstrainedCost(cs.Points, truec, 2)
		outs[ri] = e12Row{[6]string{row.name, metrics.F(row.o), fmt.Sprintf("%.2f", row.o/offline),
			metrics.I(int64(cs.Size())),
			fmt.Sprintf("%.3f", cs.TotalWeight()/float64(n)),
			fmt.Sprintf("%.3f", core/fullCost)}}
	})
	sp.AttrInt("rows", int64(len(outs)))
	var fails int64
	for _, row := range outs {
		if row.cells[3] == "FAIL" {
			fails++
		}
		tb.Add(row.cells[:]...)
	}
	if fails > 0 {
		vFailRows.Add(fails, "E12")
	}
	sp.AttrInt("fail_rows", fails)
	sp.End()
	return tb
}
