package experiments

import (
	"strconv"
	"strings"
	"testing"

	"streambalance/internal/metrics"
)

// The experiments are the deliverable that regenerates every table; the
// smoke tests below run each at reduced scale and assert the structural
// claims each table exists to demonstrate.

const smokeScale = 0.25

func run(t *testing.T, f func(Cfg) *metrics.Table, scale float64) *metrics.Table {
	t.Helper()
	tb := f(Cfg{Seed: 2, Scale: scale})
	if tb.ID == "" || tb.Title == "" || len(tb.Header) == 0 {
		t.Fatal("malformed table")
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	return tb
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestE1RatiosBounded(t *testing.T) {
	tb := run(t, E1CoresetQuality, 0.2)
	for _, row := range tb.Rows {
		up := cellFloat(t, row[4])
		down := cellFloat(t, row[6])
		// ε = 0.25 plus sampling noise headroom at small scale.
		if up > 1.5 || down > 1.5 {
			t.Fatalf("coreset inequality violated: up=%v down=%v (row %v)", up, down, row)
		}
	}
}

func TestE2SizeFlattens(t *testing.T) {
	tb := run(t, E2CoresetSize, 0.1)
	first := cellFloat(t, tb.Rows[0][1])
	last := cellFloat(t, tb.Rows[len(tb.Rows)-1][1])
	nFirst := cellFloat(t, tb.Rows[0][0])
	nLast := cellFloat(t, tb.Rows[len(tb.Rows)-1][0])
	if last/first >= nLast/nFirst {
		t.Fatalf("coreset grew as fast as n: sizes %v → %v for n %v → %v",
			first, last, nFirst, nLast)
	}
}

func TestE3SpaceFlat(t *testing.T) {
	tb := run(t, E3StreamingSpace, smokeScale)
	for _, row := range tb.Rows {
		if row[1] != tb.Rows[0][1] {
			t.Fatalf("single-guess sketch bytes vary with n: %v vs %v", row[1], tb.Rows[0][1])
		}
	}
}

func TestE4DeletionsExact(t *testing.T) {
	tb := run(t, E4Deletions, smokeScale)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 patterns, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[6])
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("pattern %s: cost ratio %v", row[0], ratio)
		}
	}
	// All three patterns leave the same survivors, hence identical
	// coresets (linearity).
	for _, row := range tb.Rows[1:] {
		if row[4] != tb.Rows[0][4] {
			t.Fatalf("coreset size differs across patterns: %v vs %v", row[4], tb.Rows[0][4])
		}
	}
}

func TestE5BitsGrowWithS(t *testing.T) {
	tb := run(t, E5Distributed, smokeScale)
	prev := 0.0
	for _, row := range tb.Rows {
		bits := cellFloat(t, row[1])
		if bits <= prev {
			t.Fatalf("bits must grow with s: %v after %v", bits, prev)
		}
		prev = bits
	}
}

func TestE8NearLinear(t *testing.T) {
	// Full scale: at tiny n, fixed overheads and timer noise dominate and
	// the fitted exponent is meaningless.
	tb := run(t, E8BuildTime, 1)
	for _, row := range tb.Rows[1:] {
		if row[3] == "-" {
			continue
		}
		if exp := cellFloat(t, row[3]); exp > 1.6 {
			t.Fatalf("scaling exponent %v far above linear", exp)
		}
	}
}

func TestE9AllOptimalSeparable(t *testing.T) {
	tb := run(t, E9Separation, 0.5)
	for _, row := range tb.Rows {
		parts := strings.Split(row[2], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("r=%s: not all optimal assignments separable: %s", row[0], row[2])
		}
		// Perturbed assignments must NOT all be separable.
		pparts := strings.Split(row[3], "/")
		if pparts[1] != "0" && pparts[0] == pparts[1] {
			t.Fatalf("r=%s: perturbed column vacuous: %s", row[0], row[3])
		}
	}
}

func TestE7HasAllThreeMethods(t *testing.T) {
	tb := run(t, E7Baselines, 0.25)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 methods, got %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "1" || tb.Rows[0][2] != "yes" {
		t.Fatalf("this paper's row must be 1-pass with deletions: %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "3" || tb.Rows[1][2] != "no" {
		t.Fatalf("BBLM14 row must be 3-pass insertion-only: %v", tb.Rows[1])
	}
}

func TestE10UniformLosesUnconstrained(t *testing.T) {
	tb := run(t, E10Ablation, 0.3)
	var fullUnc, uniUnc float64
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "full algorithm") {
			fullUnc = cellFloat(t, row[4])
		}
		if strings.HasPrefix(row[0], "uniform") {
			uniUnc = cellFloat(t, row[4])
		}
	}
	if fullUnc == 0 || uniUnc == 0 {
		t.Fatal("missing rows")
	}
	// The partition's variance control must beat structure-free sampling
	// on the unconstrained cost.
	if absErr(fullUnc) > absErr(uniUnc) {
		t.Fatalf("partitioned sampling (err %v) worse than uniform (err %v)",
			absErr(fullUnc), absErr(uniUnc))
	}
}

func absErr(ratio float64) float64 {
	if ratio > 1 {
		return ratio - 1
	}
	return 1 - ratio
}

func TestE6AndE11RunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-heavy")
	}
	tb6 := run(t, E6EndToEnd, 0.15)
	if len(tb6.Rows) != 3 {
		t.Fatalf("E6: want 3 rows, got %d", len(tb6.Rows))
	}
	tb11 := run(t, E11HighDim, 0.15)
	if len(tb11.Rows) != 2 {
		t.Fatalf("E11: want 2 rows, got %d", len(tb11.Rows))
	}
}
