package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/baseline"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
)

// E10Ablation probes the design choices DESIGN.md calls out: the
// heavy-cell partition (vs. structure-free uniform sampling at equal
// size), the per-part sampling budget, and the sensitivity to the guess o
// (the analysis requires o ≤ OPT; o far below only wastes samples, o far
// above loses coverage). Quality is measured by the capacitated cost
// ratio at the true centers (coreset side evaluated at the η-relaxed
// capacity 1.1t, per the coreset definition with η = 0.1) and by the
// unconstrained cost ratio.
func E10Ablation(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 4
	const eta = 0.1
	n := c.n(1800)
	ps, truec := stdMixture(c.Seed, n, k)
	ws := geo.UnitWeights(ps)
	tcap := 1.3 * float64(n) / k
	// One engine serves every variant: the centers are fixed (truec), so
	// each variant only rebinds its point set; cold engine solves are
	// bit-identical to the per-call FractionalCost/UnconstrainedCost.
	eng := assign.NewSolver()
	eng.Bind(ws, 2)
	eng.SetCenters(truec)
	fullCap, okF := eng.Fractional(tcap)
	if !okF {
		panic("E10: full instance infeasible")
	}
	fullUnc := eng.Unconstrained()

	tb := metrics.New("E10", "ablations: partition, sampling budget, guess sensitivity",
		"variant", "size", "Σw'/n", "cap. cost ratio", "unc. cost ratio")
	tb.Note = fmt.Sprintf("n=%d, t=1.3·n/k, η=0.1; ratios vs exact full-data costs at true centers", n)

	addRow := func(name string, core []geo.Weighted) {
		eng.Bind(core, 2)
		eng.SetCenters(truec)
		capCost, ok := eng.Fractional(tcap * (1 + eta))
		capStr := "inf"
		if ok {
			capStr = fmt.Sprintf("%.3f", capCost/fullCap)
		}
		unc := eng.Unconstrained()
		tb.Add(name, metrics.I(int64(len(core))),
			fmt.Sprintf("%.3f", geo.TotalWeight(core)/float64(n)),
			capStr, fmt.Sprintf("%.3f", unc/fullUnc))
	}

	// Reference: compressing configuration (SamplesPerPart 96).
	base := coreset.Params{K: k, Eps: 0.2, Eta: eta, Seed: c.Seed, SamplesPerPart: 96}
	cs, err := coreset.Build(ps, base)
	if err != nil {
		panic(err)
	}
	addRow("full algorithm (spp=96)", cs.Points)

	// Ablation 1: no partition structure — uniform sample of equal size.
	rng := rand.New(rand.NewSource(c.Seed + 50))
	addRow("uniform @ same size", baseline.Uniform(rng, ps, cs.Size()))

	// Ablation 2: sampling budget sweep.
	for _, spp := range []float64{32, 512} {
		p := base
		p.SamplesPerPart = spp
		v, err := coreset.Build(ps, p)
		if err != nil {
			panic(err)
		}
		addRow(fmt.Sprintf("SamplesPerPart=%d", int(spp)), v.Points)
	}

	// Ablation 3: guess sensitivity around the accepted o.
	for _, mul := range []float64{1.0 / 16, 16} {
		v, _, err := coreset.BuildForO(ps, base, cs.O*mul)
		if err != nil {
			panic(err)
		}
		name := fmt.Sprintf("o × %s", metrics.F(mul))
		if v == nil {
			tb.Add(name, "0", "0.000", "FAIL", "FAIL")
			continue
		}
		addRow(name, v.Points)
	}
	return tb
}
