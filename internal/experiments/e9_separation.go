package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
)

// E9Separation reproduces the structural content of the paper's
// Figures 1–3 and Lemma 3.8: for every optimal capacitated assignment and
// every pair of its clusters there is a curved ℓ_r hyperplane
// {x : dist^r(x,z_i) − dist^r(x,z_j) = a} separating them — a genuine
// hyperplane for r = 2 (Figure 1), a hyperbola branch for r = 1
// (Figure 3). The experiment solves many random instances to optimality
// by min-cost flow and verifies the separation for r ∈ {1, 2, 3}, and
// also confirms that deliberately perturbed (suboptimal) assignments
// violate it — i.e. the test has teeth.
func E9Separation(c Cfg) *metrics.Table {
	c = c.withDefaults()
	tb := metrics.New("E9", "curved-hyperplane separation of optimal capacitated clusters (Figs 1–3, Lemma 3.8)",
		"r", "instances", "optimal separable", "perturbed separable", "max violation (optimal)")
	tb.Note = "Lemma 3.8 predicts 100% in column 3; column 4 shows the property is non-trivial"

	rng := rand.New(rand.NewSource(c.Seed))
	trials := c.n(40)
	for _, r := range []float64{1, 2, 3} {
		// Draw every instance serially first — the rng is consumed in
		// exactly the order of the serial code, so the table is unchanged —
		// then solve the trials across the worker pool and reduce in trial
		// order (each trial only writes its own out slot).
		type e9Trial struct {
			ps   geo.PointSet
			Z    []geo.Point
			tcap float64
		}
		type e9Out struct {
			solved       bool
			sepOpt       bool
			violation    float64 // worst violation when not separable
			perturbed    bool    // a strictly worse feasible swap existed
			sepPerturbed bool
		}
		ts := make([]e9Trial, trials)
		for trial := range ts {
			n := 12 + rng.Intn(8)
			k := 2 + rng.Intn(2)
			ps := make(geo.PointSet, n)
			for i := range ps {
				ps[i] = geo.Point{1 + rng.Int63n(1<<12), 1 + rng.Int63n(1<<12)}
			}
			Z := make([]geo.Point, k)
			for i := range Z {
				Z[i] = geo.Point{1 + rng.Int63n(1<<12), 1 + rng.Int63n(1<<12)}
			}
			ts[trial] = e9Trial{ps: ps, Z: Z, tcap: math.Ceil(float64(n)/float64(k)) + 1}
		}
		outs := make([]e9Out, trials)
		// Per-worker engines: the graph arena and solver workspace carry
		// over between trials (point sets differ, so each trial rebinds,
		// but the backing storage is reused); cold engine solves are
		// bit-identical to the fresh-graph assign.Optimal.
		engines := make([]*assign.Solver, c.Workers)
		forEachWorker(c.Workers, trials, func(w, trial int) {
			if engines[w] == nil {
				engines[w] = assign.NewSolver()
			}
			eng := engines[w]
			tr := ts[trial]
			eng.BindPoints(tr.ps, r)
			eng.SetCenters(tr.Z)
			res, ok := eng.Optimal(tr.tcap)
			if !ok {
				return
			}
			out := e9Out{solved: true}
			rep := assign.VerifySeparation(tr.ps, res.Assign, tr.Z, r, 1e-6)
			if rep.Separable {
				out.sepOpt = true
			} else {
				out.violation = rep.WorstViolation
			}
			// Perturb: swap two points across clusters (if possible) and
			// re-verify. Swapping equal-count clusters keeps sizes legal,
			// so the perturbed assignment is feasible but suboptimal.
			pi := append([]int(nil), res.Assign...)
			a, b := -1, -1
			for i := range pi {
				for j := i + 1; j < len(pi); j++ {
					if pi[i] != pi[j] {
						a, b = i, j
					}
				}
			}
			if a >= 0 {
				pi[a], pi[b] = pi[b], pi[a]
				costBefore := assign.CostOfAssignment(geo.UnitWeights(tr.ps), tr.Z, res.Assign, r)
				costAfter := assign.CostOfAssignment(geo.UnitWeights(tr.ps), tr.Z, pi, r)
				if costAfter > costBefore*(1+1e-9) { // strictly worse swaps only
					out.perturbed = true
					out.sepPerturbed = assign.VerifySeparation(tr.ps, pi, tr.Z, r, 1e-6).Separable
				}
			}
			outs[trial] = out
		})
		sepOpt, sepPerturbed, total, perturbedTotal := 0, 0, 0, 0
		worst := 0.0
		for _, out := range outs {
			if !out.solved {
				continue
			}
			total++
			if out.sepOpt {
				sepOpt++
			} else if out.violation > worst {
				worst = out.violation
			}
			if out.perturbed {
				perturbedTotal++
				if out.sepPerturbed {
					sepPerturbed++
				}
			}
		}
		tb.Add(metrics.F(r), metrics.I(int64(total)),
			fmt.Sprintf("%d/%d", sepOpt, total),
			fmt.Sprintf("%d/%d", sepPerturbed, perturbedTotal),
			metrics.F(worst))
	}
	return tb
}
