package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/baseline"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/stream"
)

// E7Baselines reproduces the paper's positioning against prior art
// (Section 1): the only previously known streaming algorithm for
// capacitated clustering is the three-pass, insertion-only mapping
// coreset of [BBLM14]; plain uniform sampling is the naive alternative.
// The table compares passes, deletion support, subset property, size and
// cost fidelity on the standard mixture.
func E7Baselines(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k, delta = 3, int64(1 << 10)
	n := c.n(4000)
	rng := rand.New(rand.NewSource(c.Seed))
	ps, truec := mixtureAt(rng, n, k, delta)
	ws := geo.UnitWeights(ps)
	fullCost := assign.UnconstrainedCost(ws, truec, 2)
	tcap := 1.1 * float64(n) / k
	fullCap, _, _ := assign.FractionalCost(sub(ws, 1500), truec, tcap*1500/float64(n), 2)

	tb := metrics.New("E7", "vs prior art ([BBLM14] 3-pass, uniform sampling)",
		"method", "passes", "deletions", "subset Q'⊆Q", "size", "cost ratio", "cap. cost ratio")
	tb.Note = "cost ratios at true centers (capacitated column on a 1500-point subsample (coreset side at 1.1t) for tractability)"

	addRow := func(name, passes, del, subset string, size int, core []geo.Weighted) {
		ratio := assign.UnconstrainedCost(core, truec, 2) / fullCost
		// Capacitated comparison on the subsample scale.
		scaled := rescale(core, 1500/float64(n))
		capCost, _, ok := assign.FractionalCost(scaled, truec, tcap*1500/float64(n)*1.1, 2)
		capStr := "-"
		if ok && fullCap > 0 {
			capStr = fmt.Sprintf("%.3f", capCost/fullCap)
		}
		tb.Add(name, passes, del, subset, metrics.I(int64(size)),
			fmt.Sprintf("%.3f", ratio), capStr)
	}

	// This paper: one pass, dynamic.
	o := streamGuessAt(ps, k, c.Seed, delta)
	s, err := stream.New(stream.Config{Dim: 2, Delta: delta, O: o, Params: coreset.Params{K: k, Seed: c.Seed}})
	if err != nil {
		panic(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	cs, err := s.Result()
	if err != nil {
		panic(err)
	}
	addRow("this paper (stream)", "1", "yes", "yes", cs.Size(), cs.Points)

	// [BBLM14]-style mapping coreset.
	tp, err := baseline.ThreePass(ps, k, 2, delta, cs.Size(), c.Seed)
	if err != nil {
		panic(err)
	}
	addRow("BBLM14 mapping", "3", "no", "no", tp.Pivots, tp.Coreset)

	// Uniform sample of the same size.
	uni := baseline.Uniform(rng, ps, cs.Size())
	addRow("uniform sample", "1", "no", "yes", len(uni), uni)
	return tb
}

// sub truncates a weighted set (the deterministic prefix; inputs are
// pre-shuffled by the generators).
func sub(ws []geo.Weighted, m int) []geo.Weighted {
	if m >= len(ws) {
		return ws
	}
	return ws[:m]
}

// rescale scales all weights by f (to compare against a subsampled
// reference instance at the same capacity fraction).
func rescale(ws []geo.Weighted, f float64) []geo.Weighted {
	out := make([]geo.Weighted, len(ws))
	for i, w := range ws {
		out[i] = geo.Weighted{P: w.P, W: w.W * f}
	}
	return out
}
