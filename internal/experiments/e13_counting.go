package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
)

// E13AssignmentCounting validates the paper's central counting insight
// (Section 1.2): although k^n assignments exist, only those representable
// by curved-hyperplane half-spaces can be optimal for ANY capacity —
// at most Δ^{O(dk²)} of them, and far fewer in practice. On enumerable
// instances the experiment computes the optimal capacitated assignment
// for EVERY center set and EVERY capacity, counts the distinct
// assignments observed, and verifies each is half-space representable
// (the property the coreset's union bound quantifies over).
func E13AssignmentCounting(c Cfg) *metrics.Table {
	c = c.withDefaults()
	tb := metrics.New("E13", "how many assignments can be optimal? (§1.2 union-bound structure)",
		"instance", "k^n", "(Z,t) pairs solved", "distinct optimal π", "max π per Z", "all separable")
	tb.Note = "the coreset's union bound works because column 4 ≪ column 2"

	rng := rand.New(rand.NewSource(c.Seed))
	type inst struct {
		name  string
		d     int
		delta int64
		n     int
		k     int
	}
	for _, in := range []inst{
		{"d=1, Δ=32, n=10, k=2", 1, 32, 10, 2},
		{"d=2, Δ=8, n=8, k=2", 2, 8, 8, 2},
		{"d=1, Δ=16, n=8, k=3", 1, 16, 8, 3},
	} {
		ps := make(geo.PointSet, in.n)
		for i := range ps {
			ps[i] = make(geo.Point, in.d)
			for j := range ps[i] {
				ps[i][j] = 1 + rng.Int63n(in.delta)
			}
		}
		// Enumerate all center sets of size k over [Δ]^d.
		var domain geo.PointSet
		var walk func(prefix geo.Point)
		walk = func(prefix geo.Point) {
			if len(prefix) == in.d {
				domain = append(domain, prefix.Clone())
				return
			}
			for v := int64(1); v <= in.delta; v++ {
				walk(append(prefix, v))
			}
		}
		walk(geo.Point{})

		// Enumerate the center-set combinations serially (the recursion
		// reuses its Z buffer, so each leaf is cloned), then solve every
		// (Z, t) sweep across the worker pool — each combo's sweep is
		// independent — and reduce in combo order.
		var combos []geo.PointSet
		var chooseZ func(start int, Z []geo.Point)
		chooseZ = func(start int, Z []geo.Point) {
			if len(Z) == in.k {
				combos = append(combos, append(geo.PointSet(nil), Z...))
				return
			}
			for i := start; i < len(domain); i++ {
				chooseZ(i+1, append(Z, domain[i]))
			}
		}
		chooseZ(0, nil)

		type e13Out struct {
			keys   []string // one per solved (Z, t), in t order
			allSep bool
		}
		outs := make([]e13Out, len(combos))
		// Per-worker engines bound to the instance's fixed point set: the
		// flow skeleton is built once per worker and survives the whole
		// combo sweep (every combo has the same n and k — only arc costs
		// change), which is the arena's best case. Integral solves stay
		// cold, so each is bit-identical to the fresh-graph assign.Optimal.
		engines := make([]*assign.Solver, c.Workers)
		forEachWorker(c.Workers, len(combos), func(w, ci int) {
			if engines[w] == nil {
				engines[w] = assign.NewSolver()
				engines[w].BindPoints(ps, 2)
			}
			eng := engines[w]
			Z := combos[ci]
			eng.SetCenters(Z)
			out := e13Out{allSep: true}
			for t := int(math.Ceil(float64(in.n) / float64(in.k))); t <= in.n; t++ {
				res, ok := eng.Optimal(float64(t))
				if !ok {
					continue
				}
				out.keys = append(out.keys, assignKey(res.Assign))
				if !assign.VerifySeparation(ps, res.Assign, Z, 2, 1e-6).Separable {
					out.allSep = false
				}
			}
			outs[ci] = out
		})
		distinct := map[string]bool{}
		solved := 0
		maxPerZ := 0
		allSep := true
		for _, out := range outs {
			perZ := map[string]bool{}
			for _, key := range out.keys {
				solved++
				distinct[key] = true
				perZ[key] = true
			}
			if len(perZ) > maxPerZ {
				maxPerZ = len(perZ)
			}
			if !out.allSep {
				allSep = false
			}
		}

		kn := math.Pow(float64(in.k), float64(in.n))
		sep := "yes"
		if !allSep {
			sep = "NO"
		}
		tb.Add(in.name, metrics.F(kn), metrics.I(int64(solved)),
			metrics.I(int64(len(distinct))), metrics.I(int64(maxPerZ)), sep)
	}
	return tb
}

func assignKey(pi []int) string {
	var sb strings.Builder
	for _, a := range pi {
		fmt.Fprintf(&sb, "%d,", a)
	}
	return sb.String()
}
