package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/jl"
	"streambalance/internal/metrics"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

// E11HighDim validates the paper's dimension-reduction remark (Section 1,
// via [MMR19]): when d ≫ k/ε, project to m = poly(k/ε) dimensions first;
// the coreset machinery then works in the reduced space and the final
// centers are lifted back. The table compares the reduced pipeline with
// building the coreset directly in the original dimension, measuring the
// capacitated cost of the resulting centers in the ORIGINAL space.
func E11HighDim(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const (
		k     = 3
		dHigh = 256
		delta = int64(1 << 10)
	)
	n := c.n(2000)
	rng := rand.New(rand.NewSource(c.Seed))
	ps, truec := workload.Mixture{
		N: n, D: dHigh, Delta: delta, K: k, Spread: 10, Skew: 2,
	}.Generate(rng)
	ws := geo.UnitWeights(ps)
	tcap := 1.2 * float64(n) / k

	// Evaluation on a subsample for flow tractability.
	evalN := 1000
	if evalN > n {
		evalN = n
	}
	scale := float64(evalN) / float64(n)
	evalWS := ws[:evalN]
	// The audit evaluates three center sets on the same 256-dimensional
	// point set; one engine keeps the skeleton and reuses the blocked
	// distance kernel per center set (cold solves, bit-identical).
	eng := assign.NewSolver()
	eng.Bind(evalWS, 2)
	eng.SetCenters(truec)
	ref, okRef := eng.Fractional(tcap * scale * 1.3)
	if !okRef {
		panic("E11: reference infeasible")
	}

	tb := metrics.New("E11", "high-dimensional inputs via [MMR19] dimension reduction",
		"pipeline", "dim", "|Q'|", "build ms", "cost in original space", "vs true centers")
	tb.Note = fmt.Sprintf("d=%d, n=%d, k=%d; costs are capacitated (t=1.2n/k, ×1.3 relaxed) on a %d-point audit",
		dHigh, n, k, evalN)

	evalCenters := func(Z []geo.Point) float64 {
		eng.SetCenters(Z)
		cost, ok := eng.Fractional(tcap * scale * 1.3)
		if !ok {
			return -1
		}
		return cost
	}

	solveOn := func(core []geo.Weighted, dim int64) []geo.Point {
		sol, ok := solve.CapacitatedLloyd(rng, core, k, tcap*1.3, 2, dim, 6, 2)
		if !ok {
			panic("E11: solve infeasible")
		}
		return sol.Centers
	}

	// Pipeline A: direct, in the full dimension.
	t0 := time.Now()
	csDirect, err := coreset.Build(ps, coreset.Params{K: k, Seed: c.Seed, SamplesPerPart: 48})
	if err != nil {
		panic(err)
	}
	directMS := time.Since(t0).Milliseconds()
	zDirect := solveOn(csDirect.Points, delta)
	costDirect := evalCenters(zDirect)
	tb.Add("direct (no reduction)", metrics.I(int64(dHigh)), metrics.I(int64(csDirect.Size())),
		metrics.I(directMS), metrics.F(costDirect), fmt.Sprintf("%.3f", costDirect/ref))

	// Pipeline B: JL → coreset → solve → lift.
	t0 = time.Now()
	m := jl.TargetDim(k, 0.5, dHigh)
	tr, err := jl.Fit(rng, ps, m, 1<<12)
	if err != nil {
		panic(err)
	}
	red := tr.ApplyAll(ps)
	csRed, err := coreset.Build(red, coreset.Params{K: k, Seed: c.Seed, SamplesPerPart: 48})
	if err != nil {
		panic(err)
	}
	redMS := time.Since(t0).Milliseconds()
	zRed := solveOn(csRed.Points, 1<<12)
	lifted := jl.LiftCenters(tr, ps, zRed, delta)
	costRed := evalCenters(lifted)
	tb.Add(fmt.Sprintf("JL to m=%d + lift", m), metrics.I(int64(m)), metrics.I(int64(csRed.Size())),
		metrics.I(redMS), metrics.F(costRed), fmt.Sprintf("%.3f", costRed/ref))

	return tb
}
