package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"streambalance/internal/assign"
	"streambalance/internal/baseline"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

// E6EndToEnd validates Fact 2.3 — the coreset's raison d'être: running a
// capacitated (α, β)-approximate solver on the coreset yields a solution
// whose cost on the ORIGINAL data is within (1+O(ε))α of solving there
// directly, while violating capacities by at most (1+O(η))β. The workload
// is the canonical imbalanced two-blob instance where balanced and
// ordinary clustering genuinely differ (80% of mass in one blob,
// per-center capacity 55% of n).
func E6EndToEnd(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k, delta = 2, int64(1 << 12)
	n := c.n(1600)
	eta := 0.25
	rng := rand.New(rand.NewSource(c.Seed))
	ps, _ := workload.TwoBlobs(rng, n, delta, 0.8, float64(delta)/100)
	ws := geo.UnitWeights(ps)
	tcap := 0.55 * float64(n)

	tb := metrics.New("E6", "end-to-end capacitated k-means via coreset (Fact 2.3)",
		"method", "solve on", "solve ms", "cost on full data", "max size/t", "cost vs direct")
	tb.Note = fmt.Sprintf("two blobs 80/20, n=%d, k=%d, t=0.55n; capacity forces ~25%% of mass to migrate", n, k)

	evalOnFull := func(Z []geo.Point) (float64, float64) {
		res, ok := assign.Weighted(ws, Z, tcap*(1+eta), 2)
		if !ok {
			return -1, -1
		}
		maxSize := 0.0
		for _, s := range res.Sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		return res.Cost, maxSize / tcap
	}

	// Direct solve on the full data (the expensive reference).
	t0 := time.Now()
	direct, ok := solve.CapacitatedLloyd(rng, ws, k, tcap, 2, delta, 6, 2)
	directMS := time.Since(t0).Milliseconds()
	if !ok {
		panic("E6: direct solve infeasible")
	}
	directCost, directViol := evalOnFull(direct.Centers)
	tb.Add("direct", fmt.Sprintf("full n=%d", n), metrics.I(directMS),
		metrics.F(directCost), fmt.Sprintf("%.3f", directViol), "1.000")

	// Coreset solve.
	cs, err := coreset.Build(ps, coreset.Params{K: k, Eps: 0.25, Eta: eta, Seed: c.Seed, SamplesPerPart: 24})
	if err != nil {
		panic(err)
	}
	t0 = time.Now()
	onCore, ok := solve.CapacitatedLloyd(rng, cs.Points, k, tcap*(1+eta), 2, delta, 6, 2)
	coreMS := time.Since(t0).Milliseconds()
	if !ok {
		panic("E6: coreset solve infeasible")
	}
	coreCost, coreViol := evalOnFull(onCore.Centers)
	tb.Add("paper coreset", fmt.Sprintf("|Q'|=%d", cs.Size()), metrics.I(coreMS),
		metrics.F(coreCost), fmt.Sprintf("%.3f", coreViol),
		fmt.Sprintf("%.3f", coreCost/directCost))

	// Uniform-sample coreset of the same size.
	uni := baseline.Uniform(rng, ps, cs.Size())
	t0 = time.Now()
	onUni, ok := solve.CapacitatedLloyd(rng, uni, k, tcap*(1+eta), 2, delta, 6, 2)
	uniMS := time.Since(t0).Milliseconds()
	if !ok {
		panic("E6: uniform solve infeasible")
	}
	uniCost, uniViol := evalOnFull(onUni.Centers)
	tb.Add("uniform sample", fmt.Sprintf("m=%d", len(uni)), metrics.I(uniMS),
		metrics.F(uniCost), fmt.Sprintf("%.3f", uniViol),
		fmt.Sprintf("%.3f", uniCost/directCost))
	return tb
}
