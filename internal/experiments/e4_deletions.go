package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/stream"
	"streambalance/internal/workload"
)

// E4Deletions validates the dynamic half of Theorem 4.5: the streaming
// coreset handles deletions exactly. Three adversarial patterns insert
// extra mass and then delete it; the resulting coreset must describe the
// survivors as well as an insert-only run over the survivors alone does.
func E4Deletions(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k, delta = 3, int64(1 << 10)
	n := c.n(2500)
	tb := metrics.New("E4", "deletion patterns (Theorem 4.5: dynamic streams)",
		"pattern", "inserts", "deletes", "survivors", "|Q'|", "Σw'/surv", "cost ratio @true Z")
	tb.Note = "cost ratio compares the coreset against the survivor set; ≈1 means deletions cancelled exactly"

	rng := rand.New(rand.NewSource(c.Seed))
	base, truec := mixtureAt(rng, n, k, delta)
	ws := geo.UnitWeights(base)
	fullCost := assign.UnconstrainedCost(ws, truec, 2)
	o := streamGuessAt(base, k, c.Seed, delta)

	type pattern struct {
		name string
		ops  []stream.Op
	}
	var patterns []pattern

	// Pattern 1: churn — junk inserted and deleted, interleaved.
	{
		junk := workload.UniformBox(rng, n, 2, delta)
		var ops []stream.Op
		for i := 0; i < n; i++ {
			ops = append(ops, stream.Op{P: base[i]}, stream.Op{P: junk[i]})
		}
		for _, j := range rng.Perm(n) {
			ops = append(ops, stream.Op{P: junk[j], Delete: true})
		}
		patterns = append(patterns, pattern{"churn", ops})
	}
	// Pattern 2: cluster retraction — a whole extra cluster appears then
	// vanishes (the sketch must forget its heavy cells entirely).
	{
		ghost, _ := workload.TwoBlobs(rng, n, delta, 1.0, 5)
		var ops []stream.Op
		for _, p := range base {
			ops = append(ops, stream.Op{P: p})
		}
		for _, p := range ghost {
			ops = append(ops, stream.Op{P: p})
		}
		for _, p := range ghost {
			ops = append(ops, stream.Op{P: p, Delete: true})
		}
		patterns = append(patterns, pattern{"cluster-retraction", ops})
	}
	// Pattern 3: rebuild — everything deleted, then reinserted.
	{
		var ops []stream.Op
		for _, p := range base {
			ops = append(ops, stream.Op{P: p})
		}
		for _, p := range base {
			ops = append(ops, stream.Op{P: p, Delete: true})
		}
		for _, p := range base {
			ops = append(ops, stream.Op{P: p})
		}
		patterns = append(patterns, pattern{"delete-all-rebuild", ops})
	}

	for _, pat := range patterns {
		s, err := stream.New(stream.Config{
			Dim: 2, Delta: delta, O: o,
			Params: coreset.Params{K: k, Seed: c.Seed + 7},
		})
		if err != nil {
			panic(err)
		}
		ins, del := 0, 0
		for _, op := range pat.ops {
			if op.Delete {
				del++
			} else {
				ins++
			}
		}
		s.Apply(pat.ops)
		cs, err := s.Result()
		if err != nil {
			panic(fmt.Sprintf("%s: %v", pat.name, err))
		}
		core := assign.UnconstrainedCost(cs.Points, truec, 2)
		tb.Add(pat.name, metrics.I(int64(ins)), metrics.I(int64(del)),
			metrics.I(s.N()), metrics.I(int64(cs.Size())),
			fmt.Sprintf("%.3f", cs.TotalWeight()/float64(s.N())),
			fmt.Sprintf("%.3f", core/fullCost))
	}
	return tb
}

func streamGuessAt(ps geo.PointSet, k int, seed int64, delta int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	est := estimateOPTFor(rng, ps, k, delta)
	o := est / 4
	if o < 1 {
		o = 1
	}
	return o
}
