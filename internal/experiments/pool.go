package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) across a GOMAXPROCS-sized
// worker pool (the shard-pool shape of internal/stream). Experiments use
// it for their solve loops: instances are drawn serially first — so the
// rng consumption order, and hence every table, is identical to the
// serial code — then solved concurrently, then reduced in index order.
// fn must therefore only touch state owned by index i.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
