package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) across a GOMAXPROCS-sized
// worker pool (the shard-pool shape of internal/stream). Experiments use
// it for their solve loops: instances are drawn serially first — so the
// rng consumption order, and hence every table, is identical to the
// serial code — then solved concurrently, then reduced in index order.
// fn must therefore only touch state owned by index i.
func forEach(n int, fn func(i int)) {
	forEachWorker(runtime.GOMAXPROCS(0), n, func(_, i int) { fn(i) })
}

// forEachWorker is forEach with an explicit worker count and a worker
// index passed to fn, so callers can keep per-worker scratch state (the
// assignment engines of E1/E9/E13 keep one solver arena per worker).
// Work is handed out by an atomic counter: which worker solves which
// index is nondeterministic, so fn(w, i) must produce results that
// depend only on i, never on w or on what worker w solved before —
// exactly the property the per-worker engines guarantee by binding all
// instance state before each solve.
func forEachWorker(workers, n int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
