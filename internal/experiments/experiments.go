// Package experiments implements the evaluation suite of DESIGN.md §3:
// one runner per experiment E1–E10, each returning a metrics.Table that
// cmd/bcbench and the root bench harness (bench_test.go) render. The
// paper itself is a theory paper with no measured tables or figures, so
// this suite is the empirical validation of its theorems (the
// substitution is documented in DESIGN.md §1); EXPERIMENTS.md records the
// expected shape vs. the measured numbers for every row.
package experiments

import (
	"math"
	"math/rand"
	"runtime"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/obs"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

// vFailRows counts FAIL rows per experiment table (DESIGN.md §9): the
// paper's guarantees are probabilistic, so FAILs are an expected,
// observable outcome, not an error path.
var vFailRows = obs.CV("exp_fail_rows_total", "exp")

// Cfg scales and seeds an experiment run. Scale 1 is the quick
// configuration used by `go test -bench`; cmd/bcbench -full uses larger
// scales. Workers bounds the solve-loop pool of the parallel experiments
// (0 = GOMAXPROCS); every table is byte-identical at any worker count.
type Cfg struct {
	Seed    int64
	Scale   float64
	Workers int
}

func (c Cfg) withDefaults() Cfg {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// n scales a base instance size.
func (c Cfg) n(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// All runs every experiment and returns the tables in order.
func All(c Cfg) []*metrics.Table {
	return []*metrics.Table{
		E1CoresetQuality(c),
		E2CoresetSize(c),
		E3StreamingSpace(c),
		E4Deletions(c),
		E5Distributed(c),
		E6EndToEnd(c),
		E7Baselines(c),
		E8BuildTime(c),
		E9Separation(c),
		E10Ablation(c),
		E11HighDim(c),
		E12GuessSelection(c),
		E13AssignmentCounting(c),
	}
}

// workloadMixture is the shared mixture spec at an explicit domain size.
func workloadMixture(n, k int, delta int64) workload.Mixture {
	spread := float64(delta) / 270 // ≈30 at Δ=2^13, scales with the domain
	if spread < 3 {
		spread = 3
	}
	return workload.Mixture{N: n, D: 2, Delta: delta, K: k, Spread: spread, Skew: 2, NoiseFrac: 0.05}
}

// stdMixture is the default evaluation workload: a skewed Gaussian
// mixture with background noise, quantized to [1, 2^13]².
func stdMixture(seed int64, n, k int) (geo.PointSet, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	return workloadMixture(n, k, 1<<13).Generate(rng)
}

// capRatio compares the capacitated fractional cost on the full data at
// capacity t with the coreset's at (1+η)t — the directed inequality of
// the strong coreset definition.
func capRatio(ws []geo.Weighted, core []geo.Weighted, Z []geo.Point, t float64, eta, r float64) (full, coreCost float64) {
	full, _, okF := assign.FractionalCost(ws, Z, t, r)
	coreCost, _, okC := assign.FractionalCost(core, Z, (1+eta)*t, r)
	if !okF {
		full = math.Inf(1)
	}
	if !okC {
		coreCost = math.Inf(1)
	}
	return full, coreCost
}

// estimateOPTFor is the shared uncapacitated OPT upper-bound estimator.
func estimateOPTFor(rng *rand.Rand, ps geo.PointSet, k int, delta int64) float64 {
	return solve.EstimateOPT(rng, geo.UnitWeights(ps), k, 2, delta, 2)
}

// centersFor returns evaluation center sets: the generative truth plus
// k-means++ draws.
func centersFor(rng *rand.Rand, ws []geo.Weighted, truec []geo.Point, k, extra int) [][]geo.Point {
	out := [][]geo.Point{truec}
	for i := 0; i < extra; i++ {
		out = append(out, solve.SeedKMeansPP(rng, ws, k, 2))
	}
	return out
}
