package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
)

// E1CoresetQuality validates the strong (η, ε)-coreset inequality of
// Theorem 3.19 directly. The definition is a two-sided sandwich:
//
//	up:   cost_{(1+η)t}(Q′, Z, w′) ≤ (1+ε)·cost_t(Q, Z)
//	down: cost_{(1+η)²t}(Q, Z)     ≤ (1+ε)·cost_{(1+η)t}(Q′, Z, w′)
//
// For several center sets Z and capacities t the table reports both
// ratios; the theorem bounds each by 1+ε (up to sampling noise beyond
// the configured ε). Costs are optimal fractional capacitated
// assignments computed by min-cost flow on both sides.
func E1CoresetQuality(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 4
	const eta = 0.25
	n := c.n(2000)
	ps, truec := stdMixture(c.Seed, n, k)
	ws := geo.UnitWeights(ps)
	// SamplesPerPart is lowered so that even at this flow-tractable n the
	// coreset genuinely subsamples (≈3–4× compression) and the inequality
	// is non-trivial.
	cs, err := coreset.Build(ps, coreset.Params{K: k, Eps: 0.25, Eta: eta, Seed: c.Seed, SamplesPerPart: 96})
	if err != nil {
		panic(err)
	}
	tb := metrics.New("E1", "strong coreset inequality (Theorem 3.19)",
		"centers", "t/(n/k)", "cost_t(Q)", "cost_(1+η)t(Q')", "up ratio", "cost_(1+η)²t(Q)", "down ratio")
	tb.Note = fmt.Sprintf("n=%d, k=%d, ε=η=0.25, |Q'|=%d; both ratio columns must stay ≲ 1+ε", n, k, cs.Size())

	rng := rand.New(rand.NewSource(c.Seed + 100))
	for zi, Z := range centersFor(rng, ws, truec, k, 2) {
		name := "true"
		if zi > 0 {
			name = fmt.Sprintf("kpp-%d", zi)
		}
		for _, tf := range []float64{1.05, 1.5, 4.0} {
			t := tf * float64(n) / k
			full, _, _ := assign.FractionalCost(ws, Z, t, 2)
			core, _, _ := assign.FractionalCost(cs.Points, Z, (1+eta)*t, 2)
			fullRelaxed, _, _ := assign.FractionalCost(ws, Z, (1+eta)*(1+eta)*t, 2)
			tb.Add(name, metrics.F(tf),
				metrics.F(full), metrics.F(core), fmt.Sprintf("%.3f", core/full),
				metrics.F(fullRelaxed), fmt.Sprintf("%.3f", fullRelaxed/core))
		}
		// t = ∞ (unconstrained): the classic coreset check, both ratios
		// collapse to plain cost ratio.
		full := assign.UnconstrainedCost(ws, Z, 2)
		core := assign.UnconstrainedCost(cs.Points, Z, 2)
		tb.Add(name, "inf", metrics.F(full), metrics.F(core),
			fmt.Sprintf("%.3f", core/full), metrics.F(full), fmt.Sprintf("%.3f", full/core))
	}
	return tb
}
