package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
)

// E1CoresetQuality validates the strong (η, ε)-coreset inequality of
// Theorem 3.19 directly. The definition is a two-sided sandwich:
//
//	up:   cost_{(1+η)t}(Q′, Z, w′) ≤ (1+ε)·cost_t(Q, Z)
//	down: cost_{(1+η)²t}(Q, Z)     ≤ (1+ε)·cost_{(1+η)t}(Q′, Z, w′)
//
// For several center sets Z and capacities t the table reports both
// ratios; the theorem bounds each by 1+ε (up to sampling noise beyond
// the configured ε). Costs are optimal fractional capacitated
// assignments computed by min-cost flow on both sides.
//
// This is the flagship workload of the assignment engine (DESIGN.md §7):
// each center set needs seven capacitated solves over the same two point
// sets, so every worker keeps one engine per side — skeleton and
// distance block built once per (worker, Z) — and the ascending
// capacities within a side warm-start from the previous solve. Center
// sets are evaluated across the worker pool; rows are assembled in
// center-set order, byte-identical at any worker count.
func E1CoresetQuality(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 4
	const eta = 0.25
	n := c.n(2000)
	ps, truec := stdMixture(c.Seed, n, k)
	ws := geo.UnitWeights(ps)
	// SamplesPerPart is lowered so that even at this flow-tractable n the
	// coreset genuinely subsamples (≈3–4× compression) and the inequality
	// is non-trivial.
	cs, err := coreset.Build(ps, coreset.Params{K: k, Eps: 0.25, Eta: eta, Seed: c.Seed, SamplesPerPart: 96})
	if err != nil {
		panic(err)
	}
	tb := metrics.New("E1", "strong coreset inequality (Theorem 3.19)",
		"centers", "t/(n/k)", "cost_t(Q)", "cost_(1+η)t(Q')", "up ratio", "cost_(1+η)²t(Q)", "down ratio")
	tb.Note = fmt.Sprintf("n=%d, k=%d, ε=η=0.25, |Q'|=%d; both ratio columns must stay ≲ 1+ε", n, k, cs.Size())

	// Draw every center set first (the rng is consumed in exactly the
	// serial order), then sweep them across the pool.
	rng := rand.New(rand.NewSource(c.Seed + 100))
	zs := centersFor(rng, ws, truec, k, 2)
	tfs := []float64{1.05, 1.5, 4.0}

	type e1Row struct{ cells [7]string }
	outs := make([][]e1Row, len(zs))
	type e1Engines struct{ full, core *assign.Solver }
	engines := make([]e1Engines, c.Workers)
	forEachWorker(c.Workers, len(zs), func(w, zi int) {
		eng := &engines[w]
		if eng.full == nil {
			eng.full = assign.NewSolver()
			eng.core = assign.NewSolver()
			eng.full.Bind(ws, 2)
			eng.core.Bind(cs.Points, 2)
		}
		Z := zs[zi]
		eng.full.SetCenters(Z)
		eng.core.SetCenters(Z)
		name := "true"
		if zi > 0 {
			name = fmt.Sprintf("kpp-%d", zi)
		}
		rows := make([]e1Row, 0, len(tfs)+1)
		for _, tf := range tfs {
			t := tf * float64(n) / k
			// Full-set capacities interleave t and (1+η)²t, so only the
			// cross-tf steps warm-start; the coreset side is a clean
			// ascending sweep and stays warm throughout.
			full, _ := eng.full.Fractional(t)
			core, _ := eng.core.Fractional((1 + eta) * t)
			fullRelaxed, _ := eng.full.Fractional((1 + eta) * (1 + eta) * t)
			rows = append(rows, e1Row{[7]string{name, metrics.F(tf),
				metrics.F(full), metrics.F(core), fmt.Sprintf("%.3f", core/full),
				metrics.F(fullRelaxed), fmt.Sprintf("%.3f", fullRelaxed/core)}})
		}
		// t = ∞ (unconstrained): the classic coreset check, both ratios
		// collapse to plain cost ratio.
		full := eng.full.Unconstrained()
		core := eng.core.Unconstrained()
		rows = append(rows, e1Row{[7]string{name, "inf", metrics.F(full), metrics.F(core),
			fmt.Sprintf("%.3f", core/full), metrics.F(full), fmt.Sprintf("%.3f", full/core)}})
		outs[zi] = rows
	})
	for _, rows := range outs {
		for _, row := range rows {
			tb.Add(row.cells[:]...)
		}
	}
	return tb
}
