package experiments

import (
	"fmt"
	"math"
	"time"

	"streambalance/internal/coreset"
	"streambalance/internal/metrics"
)

// E8BuildTime validates the running-time claim of Theorem 3.19: the
// offline construction runs in O(n·d·log²(ndΔ)) — near-linear in n. The
// table sweeps n and reports wall time, ns/point, and the local scaling
// exponent log(t_i/t_{i-1})/log(n_i/n_{i-1}), which must stay near 1.
func E8BuildTime(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 4
	tb := metrics.New("E8", "construction time vs n (Theorem 3.19: near-linear)",
		"n", "build ms", "ns/point", "scaling exponent")
	tb.Note = "exponent ≈ 1 ⇒ near-linear; >1.3 would contradict the theorem's shape"

	prevN, prevT := 0.0, 0.0
	for _, base := range []int{4000, 16000, 64000} {
		n := c.n(base)
		ps, _ := stdMixture(c.Seed, n, k)
		t0 := time.Now()
		_, err := coreset.Build(ps, coreset.Params{K: k, Seed: c.Seed})
		if err != nil {
			panic(err)
		}
		el := time.Since(t0)
		exp := "-"
		if prevN > 0 {
			e := math.Log(el.Seconds()/prevT) / math.Log(float64(n)/prevN)
			exp = fmt.Sprintf("%.2f", e)
		}
		tb.Add(metrics.I(int64(n)), metrics.I(el.Milliseconds()),
			metrics.F(float64(el.Nanoseconds())/float64(n)), exp)
		prevN, prevT = float64(n), el.Seconds()
	}
	return tb
}
