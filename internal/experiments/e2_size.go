package experiments

import (
	"fmt"

	"streambalance/internal/coreset"
	"streambalance/internal/metrics"
)

// E2CoresetSize validates the size bound of Theorem 3.19: the coreset is
// poly(ε⁻¹η⁻¹kd log Δ) — in particular independent of n — so growing n
// must leave the size nearly flat while the compression ratio n/|Q′|
// grows linearly.
func E2CoresetSize(c Cfg) *metrics.Table {
	c = c.withDefaults()
	const k = 4
	tb := metrics.New("E2", "coreset size vs n (Theorem 3.19: size independent of n)",
		"n", "|Q'|", "n/|Q'|", "Σw'", "accepted o")
	tb.Note = "size must flatten as n grows; theoretical ceiling is n-independent"
	for _, base := range []int{2000, 8000, 32000, 128000} {
		n := c.n(base)
		ps, _ := stdMixture(c.Seed, n, k)
		cs, err := coreset.Build(ps, coreset.Params{K: k, Seed: c.Seed})
		if err != nil {
			panic(err)
		}
		tb.Add(metrics.I(int64(n)), metrics.I(int64(cs.Size())),
			metrics.F(float64(n)/float64(cs.Size())),
			metrics.F(cs.TotalWeight()), fmt.Sprintf("%.3g", cs.O))
	}
	return tb
}
