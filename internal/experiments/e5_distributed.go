package experiments

import (
	"fmt"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/dist"
	"streambalance/internal/geo"
	"streambalance/internal/metrics"
	"streambalance/internal/obs"
)

// E5Distributed validates Theorem 4.7: the coordinator protocol leaves a
// strong coreset at the coordinator with total communication
// s·poly(kd log Δ) bits. The table sweeps the machine count s on fixed
// data and reports measured bits (total and per point) and the coreset's
// quality.
func E5Distributed(c Cfg) *metrics.Table {
	sp := obs.StartSpan("exp.E5")
	c = c.withDefaults()
	const k, delta = 3, int64(1 << 10)
	n := c.n(4000)
	rng := rand.New(rand.NewSource(c.Seed))
	ps, truec := mixtureAt(rng, n, k, delta)
	ws := geo.UnitWeights(ps)
	fullCost := assign.UnconstrainedCost(ws, truec, 2)

	tb := metrics.New("E5", "distributed protocol (Theorem 4.7)",
		"s", "wire bits", "formula bits", "wire/formula", "bits/point", "rounds", "|Q'|", "cost ratio @true Z")
	tb.Note = fmt.Sprintf("n=%d fixed; wire bits are measured frame lengths, formula bits the closed-form accounting; both must grow ≈ linearly in s and be sublinear in n", n)

	// Each machine count is an independent, internally-seeded protocol
	// run, so the sweep goes over the worker pool; rows are added in
	// sweep order afterwards (byte-identical at any worker count).
	svals := []int{2, 4, 8, 16}
	type e5Row struct{ cells [8]string }
	outs := make([]e5Row, len(svals))
	forEachWorker(c.Workers, len(svals), func(_, si int) {
		s := svals[si]
		machines := make([]geo.PointSet, s)
		for i, p := range ps {
			machines[i%s] = append(machines[i%s], p)
		}
		rep, err := dist.Run(machines, dist.Config{
			Dim: 2, Delta: delta, Params: coreset.Params{K: k, Seed: c.Seed},
			Workers: c.Workers,
		})
		if err != nil {
			outs[si] = e5Row{[8]string{metrics.I(int64(s)), "FAIL", "-", "-", "-", "-", "-", err.Error()}}
			return
		}
		core := assign.UnconstrainedCost(rep.Coreset.Points, truec, 2)
		outs[si] = e5Row{[8]string{metrics.I(int64(s)),
			metrics.I(rep.Bits), metrics.I(rep.FormulaBits),
			fmt.Sprintf("%.3f", float64(rep.Bits)/float64(rep.FormulaBits)),
			metrics.F(float64(rep.Bits) / float64(n)), metrics.I(int64(rep.Rounds)),
			metrics.I(int64(rep.Coreset.Size())), fmt.Sprintf("%.3f", core/fullCost)}}
	})
	sp.AttrInt("rows", int64(len(outs)))
	var fails int64
	for _, row := range outs {
		if row.cells[1] == "FAIL" {
			fails++
		}
		tb.Add(row.cells[:]...)
	}
	if fails > 0 {
		vFailRows.Add(fails, "E5")
	}
	sp.AttrInt("fail_rows", fails)
	sp.End()
	return tb
}
