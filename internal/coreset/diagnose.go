package coreset

import (
	"fmt"
	"strings"
)

// LevelDiag summarizes one grid level of a built coreset: how the
// heavy-cell partition, the part-inclusion rule and the sampling rate
// played out there. These are the quantities to look at when a sketch
// budget FAILs or a coreset is larger than expected.
type LevelDiag struct {
	Level         int
	ThresholdT    float64 // T_i(o)
	Parts         int     // parts Q_{i,j} at this level
	IncludedParts int     // parts with τ ≥ γ·T_i(o)
	Mass          float64 // Σ τ(Q_{i,j}) at this level
	Phi           float64 // sampling rate φ_i
	Samples       int     // coreset points drawn from this level
	Weight        float64 // total coreset weight carried by this level
}

// Diagnostics is the per-level breakdown of a construction.
type Diagnostics struct {
	O          float64
	Gamma      float64
	HeavyCells int
	Levels     []LevelDiag
}

// Diagnostics computes the breakdown. It requires the partition metadata
// (present on coresets built by this package; absent on decoded Portable
// forms).
func (c *Coreset) Diagnostics() (Diagnostics, error) {
	if c.Part == nil || c.Plan == nil {
		return Diagnostics{}, fmt.Errorf("coreset: no partition metadata to diagnose")
	}
	d := Diagnostics{O: c.O, Gamma: c.Plan.Gamma, HeavyCells: c.Part.HeavyCount()}
	L := c.Grid.L
	d.Levels = make([]LevelDiag, L+1)
	for i := 0; i <= L; i++ {
		d.Levels[i] = LevelDiag{
			Level:      i,
			ThresholdT: c.Part.ThresholdT(i),
			Phi:        c.Plan.Phi[i],
		}
	}
	for id, pt := range c.Part.Parts {
		ld := &d.Levels[id.Level]
		ld.Parts++
		ld.Mass += pt.Tau
		if c.Plan.Included[id] {
			ld.IncludedParts++
		}
	}
	for i, lv := range c.Levels {
		d.Levels[lv].Samples++
		d.Levels[lv].Weight += c.Points[i].W
	}
	return d, nil
}

// String renders the diagnostics as an aligned table (levels with no
// parts and no samples are elided).
func (d Diagnostics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "accepted o = %.4g, γ = %.4g, heavy cells = %d\n", d.O, d.Gamma, d.HeavyCells)
	fmt.Fprintf(&sb, "%5s %12s %7s %9s %12s %8s %9s %12s\n",
		"level", "T_i(o)", "parts", "included", "mass", "φ_i", "samples", "weight")
	for _, ld := range d.Levels {
		if ld.Parts == 0 && ld.Samples == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%5d %12.4g %7d %9d %12.4g %8.3g %9d %12.4g\n",
			ld.Level, ld.ThresholdT, ld.Parts, ld.IncludedParts, ld.Mass, ld.Phi, ld.Samples, ld.Weight)
	}
	return sb.String()
}
