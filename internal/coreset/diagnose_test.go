package coreset

import (
	"strings"
	"testing"
)

func TestDiagnostics(t *testing.T) {
	ps, _ := mixture(91, 3000)
	cs, err := Build(ps, Params{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cs.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if d.O != cs.O || d.HeavyCells <= 0 {
		t.Fatalf("diag header: %+v", d)
	}
	var parts, included, samples int
	var weight float64
	for _, ld := range d.Levels {
		parts += ld.Parts
		included += ld.IncludedParts
		samples += ld.Samples
		weight += ld.Weight
		if ld.Phi < 0 || ld.Phi > 1 {
			t.Fatalf("level %d: φ=%v", ld.Level, ld.Phi)
		}
		if ld.IncludedParts > ld.Parts {
			t.Fatalf("level %d: included %d > parts %d", ld.Level, ld.IncludedParts, ld.Parts)
		}
	}
	if parts != len(cs.Part.Parts) {
		t.Fatalf("parts %d vs %d", parts, len(cs.Part.Parts))
	}
	if samples != cs.Size() {
		t.Fatalf("samples %d vs size %d", samples, cs.Size())
	}
	if diff := weight - cs.TotalWeight(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("weight %v vs %v", weight, cs.TotalWeight())
	}
	s := d.String()
	for _, want := range []string{"accepted o", "level", "φ_i"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDiagnosticsNoMetadata(t *testing.T) {
	cs := &Coreset{}
	if _, err := cs.Diagnostics(); err == nil {
		t.Fatal("expected error without partition metadata")
	}
}
