package coreset

import (
	"math"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
)

// The coreset theorems hold for every constant r ≥ 1; the default tests
// exercise r = 2 (capacitated k-means). This sweep checks r = 1
// (capacitated k-median, the hyperbola-separation regime of Figure 3)
// and r = 3.
func TestCoresetQualityAcrossR(t *testing.T) {
	ps, truec := mixture(71, 6000)
	ws := geo.UnitWeights(ps)
	for _, r := range []float64{1, 3} {
		cs, err := Build(ps, Params{K: 4, R: r, Seed: 8})
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 0.1*float64(len(ps)) {
			t.Fatalf("r=%v: weight %v", r, w)
		}
		full := assign.UnconstrainedCost(ws, truec, r)
		core := assign.UnconstrainedCost(cs.Points, truec, r)
		if ratio := core / full; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("r=%v: unconstrained cost ratio %v", r, ratio)
		}
	}
}

func TestCoresetCapacitatedKMedian(t *testing.T) {
	// Capacitated cost fidelity under r = 1 on a flow-tractable instance.
	ps, truec := mixture(72, 1500)
	ws := geo.UnitWeights(ps)
	cs, err := Build(ps, Params{K: 4, R: 1, Eta: 0.25, Eps: 0.25, Seed: 9, SamplesPerPart: 128})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(ps))
	for _, tf := range []float64{1.1, 2.0} {
		tcap := tf * n / 4
		full, _, ok1 := assign.FractionalCost(ws, truec, tcap, 1)
		core, _, ok2 := assign.FractionalCost(cs.Points, truec, 1.25*tcap, 1)
		if !ok1 || !ok2 {
			t.Fatalf("infeasible at tf=%v", tf)
		}
		if core > 1.35*full {
			t.Fatalf("tf=%v: k-median coreset cost %v ≫ full %v", tf, core, full)
		}
		fullRelaxed, _, _ := assign.FractionalCost(ws, truec, 1.25*1.25*tcap, 1)
		if fullRelaxed > 1.35*core {
			t.Fatalf("tf=%v: reverse direction %v ≫ %v", tf, fullRelaxed, core)
		}
	}
}

func TestThresholdScalingAcrossR(t *testing.T) {
	// T_i(o) = 0.01·o/(√d·g_i)^r doubles per level for r=1 and quadruples
	// for r=2 — the level geometry the sampling rates key off.
	ps, _ := mixture(73, 200)
	cs1, err := Build(ps, Params{K: 3, R: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	part := cs1.Part
	for i := 0; i+1 <= part.Grid.L; i++ {
		ratio := part.ThresholdT(i+1) / part.ThresholdT(i)
		if math.Abs(ratio-2) > 1e-9 {
			t.Fatalf("r=1 threshold ratio at level %d: %v, want 2", i, ratio)
		}
	}
}
