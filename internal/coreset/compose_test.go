package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func TestComposePreservesCosts(t *testing.T) {
	// Two disjoint regional datasets, coreset each, compose; the result
	// must track costs of the union.
	rngA := rand.New(rand.NewSource(81))
	rngB := rand.New(rand.NewSource(82))
	// Region A occupies the left half of the domain, region B the right
	// (disjoint supports).
	psA, _ := workload.Mixture{N: 4000, D: 2, Delta: 1 << 11, K: 2, Spread: 12}.Generate(rngA)
	psB, _ := workload.Mixture{N: 4000, D: 2, Delta: 1 << 11, K: 2, Spread: 12}.Generate(rngB)
	for i := range psA {
		psA[i][0] = 1 + psA[i][0]/2 // squeeze into [1, Δ/2]
	}
	for i := range psB {
		psB[i][0] = 1<<10 + psB[i][0]/2 // squeeze into [Δ/2, Δ]
	}
	csA, err := Build(psA, Params{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	csB, err := Build(psB, Params{K: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Compose(csA.Export(), csB.Export())
	if err != nil {
		t.Fatal(err)
	}
	union := append(append(geo.PointSet{}, psA...), psB...)
	if w := geo.TotalWeight(merged.Points); math.Abs(w-float64(len(union))) > 0.1*float64(len(union)) {
		t.Fatalf("merged weight %v vs union n=%d", w, len(union))
	}
	// Cost fidelity at centers spanning both regions.
	Z := []geo.Point{{400, 800}, {900, 1200}, {1300, 700}, {1800, 1300}}
	full := assign.UnconstrainedCost(geo.UnitWeights(union), Z, 2)
	core := assign.UnconstrainedCost(merged.Points, Z, 2)
	if r := core / full; r < 0.85 || r > 1.15 {
		t.Fatalf("composed coreset cost ratio %v", r)
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(); err == nil {
		t.Fatal("empty compose must error")
	}
	a := Portable{Version: 1, K: 2, R: 2, Dim: 2, Delta: 16,
		Points: []geo.Weighted{{P: geo.Point{1, 1}, W: 1}}}
	b := a
	b.K = 3
	if _, err := Compose(a, b); err == nil {
		t.Fatal("mismatched K must error")
	}
	c := a
	c.Points = []geo.Weighted{{P: geo.Point{1, 1}, W: -1}}
	if _, err := Compose(a, c); err == nil {
		t.Fatal("invalid part must error")
	}
	// Compatible parts merge, taking the worst ε/η and largest Δ.
	d := a
	d.Eps, d.Eta, d.Delta = 0.4, 0.1, 32
	out, err := Compose(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Eps != 0.4 || out.Delta != 32 || len(out.Points) != 2 {
		t.Fatalf("merged metadata: %+v", out)
	}
}
