package coreset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/partition"
	"streambalance/internal/solve"
)

// Coreset is a strong (η, ε)-coreset for capacitated k-clustering in ℓ_r:
// a weighted subset Q' ⊆ Q such that for every capacity t ≥ |Q|/k and
// every center set Z of size k,
//
//	cost_{(1+η)t}(Q, Z) ≤ (1+ε)·cost_t(Q', Z, w')   and
//	cost_{(1+η)t}(Q', Z, w') ≤ (1+ε)·cost_t(Q, Z).
type Coreset struct {
	Points []geo.Weighted // the coreset Q' with weights w'

	O      float64              // the accepted guess of OPT^{(r)}_{k-clus}
	Grid   *grid.Grid           // the shifted grid hierarchy used
	Part   *partition.Partition // the heavy-cell partition for the accepted o
	Plan   *Plan                // per-level sampling rates and inclusion decisions
	Params Params               // the resolved parameters
	Levels []int                // Levels[i] = grid level of Points[i]'s part
}

// Size returns |Q'|.
func (c *Coreset) Size() int { return len(c.Points) }

// TotalWeight returns Σ w'(p) ≈ |Q| (each sampled point carries weight
// 1/φ_i times its multiplicity).
func (c *Coreset) TotalWeight() float64 { return geo.TotalWeight(c.Points) }

// Plan captures the per-level decisions of Algorithm 2 for one guess o:
// whether the guess FAILs, which parts are included (τ(Q_{i,j}) ≥
// γ·T_i(o)), and the per-level sampling probability φ_i. The streaming
// and distributed constructions reuse the same planner.
type Plan struct {
	O        float64
	Gamma    float64
	Phi      []float64 // φ_i per level 0..L
	Included map[partition.PartID]bool
	FailWhy  string // non-empty if the guess FAILs
}

// Failed reports whether Algorithm 2 returns FAIL for this guess.
func (pl *Plan) Failed() bool { return pl.FailWhy != "" }

// BuildPlan evaluates the FAIL conditions of Algorithm 2 (lines 5–6) and
// computes φ_i and the included-part set PI_i (lines 8–9) for the
// partition produced with guess o.
func BuildPlan(part *partition.Partition, p Params) *Plan {
	g := part.Grid
	d, L := g.Dim, g.L
	pl := &Plan{
		O:        part.O,
		Gamma:    p.Gamma(d, L),
		Phi:      make([]float64, L+1),
		Included: make(map[partition.PartID]bool),
	}
	// Line 5: too many heavy cells.
	if hc := float64(part.HeavyCount()); hc > p.HeavyBudget(d, L) {
		pl.FailWhy = fmt.Sprintf("heavy cells %v exceed budget %v", hc, p.HeavyBudget(d, L))
		return pl
	}
	// Line 6: per-level mass τ(∪_j Q_{i,j}) too large. Parts are summed in
	// sorted-ID order — float addition in map-iteration order would let a
	// borderline level budget pass on one run and FAIL on the next.
	ids := make([]partition.PartID, 0, len(part.Parts))
	for id := range part.Parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Level != ids[b].Level {
			return ids[a].Level < ids[b].Level
		}
		return ids[a].Parent < ids[b].Parent
	})
	levelTau := make([]float64, L+1)
	for _, id := range ids {
		levelTau[id.Level] += part.Parts[id].Tau
	}
	for i := 0; i <= L; i++ {
		T := part.ThresholdT(i)
		if levelTau[i] > p.LevelBudget(d, L, T) {
			pl.FailWhy = fmt.Sprintf("level %d mass %v exceeds budget %v", i, levelTau[i], p.LevelBudget(d, L, T))
			return pl
		}
		pl.Phi[i] = p.Phi(T, d, L)
	}
	// Line 9: include parts with τ(Q_{i,j}) ≥ γ·T_i(o).
	for id, pt := range part.Parts {
		if pt.Tau >= pl.Gamma*part.ThresholdT(id.Level) {
			pl.Included[id] = true
		}
	}
	return pl
}

// SamplerSet is the family ĥ_0, ..., ĥ_L of λ-wise independent Bernoulli
// samplers of Algorithm 2 line 10 (one per level, rate φ_i), keyed by
// point fingerprints. The streaming algorithm creates the identical
// family before the stream starts.
type SamplerSet struct {
	fp  *hashing.Fingerprint
	hs  []*hashing.Bernoulli
	phi []float64
}

// NewSamplerSet draws the per-level samplers for the given plan.
func NewSamplerSet(rng *rand.Rand, pl *Plan, lambda int) *SamplerSet {
	ss := &SamplerSet{fp: hashing.NewFingerprint(rng), phi: pl.Phi}
	ss.hs = make([]*hashing.Bernoulli, len(pl.Phi))
	for i, phi := range pl.Phi {
		ss.hs[i] = hashing.NewBernoulli(rng, lambda, phi)
	}
	return ss
}

// Sampled reports whether point p is selected at level i (ĥ_i(p) = 1).
func (ss *SamplerSet) Sampled(p geo.Point, level int) bool {
	return ss.hs[level].Sample(ss.fp.Key(p))
}

// PhiAt returns φ_i.
func (ss *SamplerSet) PhiAt(level int) float64 { return ss.phi[level] }

// ErrAllGuessesFailed is returned when no guess o in the enumeration
// passes Algorithm 2's FAIL checks (possible only on pathological inputs
// or absurdly tight budgets).
var ErrAllGuessesFailed = errors.New("coreset: every guess o FAILed")

// GuessO selects the guess of OPT^{(r)}_{k-clus} the way Theorem 4.5
// does: obtain a constant-factor estimate Ê ≥ OPT (here k-means++ + Lloyd
// on a uniform subsample, giving a feasible-solution upper bound) and
// take o = Ê/4 rounded down to a power of two, so that o ≤ OPT whenever
// the estimate is within 4× of optimal (k-means++ + Lloyd restarts are
// comfortably inside that on non-adversarial data; a smaller o only
// enlarges the coreset, never breaks it). The result is clamped to ≥ 1.
func GuessO(ps geo.PointSet, p Params, rng *rand.Rand, delta int64) float64 {
	sample := ps
	const maxSample = 4000
	scale := 1.0
	if len(ps) > maxSample {
		sample = make(geo.PointSet, maxSample)
		perm := rng.Perm(len(ps))
		for i := 0; i < maxSample; i++ {
			sample[i] = ps[perm[i]]
		}
		scale = float64(len(ps)) / float64(maxSample)
	}
	est := solve.EstimateOPT(rng, geo.UnitWeights(sample), p.K, p.R, delta, 2) * scale
	o := est / 4
	if o < 1 {
		return 1
	}
	return math.Exp2(math.Floor(math.Log2(o)))
}

// Build runs the offline algorithm of Theorem 3.19 on point set ps.
//
// In practical mode the guess o is chosen from a constant-factor OPT
// estimate (GuessO), doubling while Algorithm 2 FAILs — the guess
// selection Theorem 4.5 prescribes. In conservative mode the paper's
// literal enumeration is used: o ∈ {1, 2, 4, ...} up to the trivial bound
// n·(√d·Δ)^r, returning the smallest non-FAILing guess.
func Build(ps geo.PointSet, p Params) (*Coreset, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(ps) == 0 {
		return nil, errors.New("coreset: empty input")
	}
	d := ps.Dim()
	rng := rand.New(rand.NewSource(p.Seed))
	g := grid.New(geo.MaxCoordRange(ps), d, rng)
	counts := partition.ExactCounts(g, ps)
	upper := partition.TrivialUpperBoundO(len(ps), g, p.R)

	start := 1.0
	if !p.Conservative {
		start = GuessO(ps, p, rng, g.Delta)
	}
	for o := start; o <= 2*upper; o *= 2 {
		part := partition.Build(partition.Input{Grid: g, R: p.R, O: o, Counts: counts})
		pl := BuildPlan(part, p)
		if pl.Failed() {
			continue
		}
		cs := sampleOffline(ps, g, part, pl, p, rng)
		if cs == nil {
			continue // no parts covered any point (guess absurdly large)
		}
		return cs, nil
	}
	return nil, ErrAllGuessesFailed
}

// sampleOffline executes lines 7–12 of Algorithm 2 given a non-FAILing
// plan: every point of an included part is kept with probability
// φ_{level} (λ-wise independently) and weight multiplicity/φ_{level}.
// Points sharing a location are folded into a single weighted point
// (footnote 4: duplicate points are equivalent to unique tags; sampling
// the location and scaling the weight by the multiplicity preserves
// every cost estimator).
func sampleOffline(ps geo.PointSet, g *grid.Grid, part *partition.Partition,
	pl *Plan, p Params, rng *rand.Rand) *Coreset {

	ss := NewSamplerSet(rng, pl, p.Lambda(g.Dim, g.L))

	// Deduplicate locations, tracking multiplicities.
	type entry struct {
		p geo.Point
		m int64
	}
	seen := make(map[string]int, len(ps))
	var uniq []entry
	for _, q := range ps {
		k := q.String()
		if i, ok := seen[k]; ok {
			uniq[i].m++
			continue
		}
		seen[k] = len(uniq)
		uniq = append(uniq, entry{p: q, m: 1})
	}

	cs := &Coreset{O: pl.O, Grid: g, Part: part, Plan: pl, Params: p}
	covered := false
	for _, e := range uniq {
		id, ok := part.PartOf(e.p)
		if !ok {
			continue
		}
		covered = true
		if !pl.Included[id] {
			continue
		}
		if !ss.Sampled(e.p, id.Level) {
			continue
		}
		w := float64(e.m) / ss.PhiAt(id.Level)
		cs.Points = append(cs.Points, geo.Weighted{P: e.p, W: w})
		cs.Levels = append(cs.Levels, id.Level)
	}
	if !covered {
		return nil
	}
	return cs
}

// BuildForO runs Algorithm 2 offline for one fixed guess o (used by
// experiments that sweep the guess). The returned coreset is nil when the
// guess FAILs.
func BuildForO(ps geo.PointSet, p Params, o float64) (*Coreset, *Plan, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(ps) == 0 {
		return nil, nil, errors.New("coreset: empty input")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := grid.New(geo.MaxCoordRange(ps), ps.Dim(), rng)
	counts := partition.ExactCounts(g, ps)
	part := partition.Build(partition.Input{Grid: g, R: p.R, O: o, Counts: counts})
	pl := BuildPlan(part, p)
	if pl.Failed() {
		return nil, pl, nil
	}
	cs := sampleOffline(ps, g, part, pl, p, rng)
	return cs, pl, nil
}

// TheoreticalSizeBound evaluates the poly(ε⁻¹η⁻¹kd log Δ) size bound of
// Lemma 3.18 (up to its constant): k⁶·d·(k+d^{1.5r})⁵·L¹⁰·log(kdL) /
// min(ε,η)⁴ — exposed so experiments can report measured size against the
// theory's n-independent ceiling.
func (p Params) TheoreticalSizeBound(d, L int) float64 {
	k := float64(p.K)
	m := math.Min(p.Eps, p.Eta)
	return k * k * k * k * k * k * float64(d) * math.Pow(k+d15r(d, p.R), 5) *
		math.Pow(float64(L), 10) * math.Log(float64(p.K*d*L)+1) / (m * m * m * m)
}
