package coreset

import (
	"bytes"
	"reflect"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/streamfmt"
)

// FuzzPortableRoundTrip drives Encode/Decode both ways: a valid Portable
// derived from the fuzz bytes must survive the round trip exactly, and
// the raw bytes themselves must never panic the decoder.
func FuzzPortableRoundTrip(f *testing.F) {
	good := &bytes.Buffer{}
	encodeRaw(good, Portable{
		Version: portableVersion, K: 2, R: 2, Eps: 0.5, Eta: 0.5, Delta: 16, Dim: 2,
		Points: []geo.Weighted{{P: geo.Point{1, 2}, W: 3}},
		Levels: []int{0},
	})
	f.Add(good.Bytes())
	f.Add([]byte{0xff, 0x00, 0x13, 0x37})

	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) structured round trip: build a valid Portable from the bytes.
		const delta, dim = int64(1 << 10), 2
		p := Portable{Version: portableVersion, K: 1, R: 2, Eps: 0.5, Eta: 0.5, Delta: delta, Dim: dim}
		off := 0
		next := func() (int64, bool) {
			v, n := streamfmt.Uvarint(data[off:])
			if n <= 0 {
				return 0, false
			}
			off += n
			return int64(v % uint64(delta)), true
		}
		for len(p.Points) < 64 {
			x, ok := next()
			if !ok {
				break
			}
			y, ok := next()
			if !ok {
				break
			}
			p.Points = append(p.Points, geo.Weighted{P: geo.Point{x, y}, W: float64(x%7) + 1})
			p.Levels = append(p.Levels, int(y%5))
		}
		if len(p.Points) == 0 {
			p.Points, p.Levels = nil, nil
		}
		var buf bytes.Buffer
		cs := &Coreset{Points: p.Points, Levels: p.Levels, O: p.O,
			Params: Params{K: p.K, R: p.R, Eps: p.Eps, Eta: p.Eta}}
		if err := cs.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of valid coreset: %v", err)
		}
		// Encode goes through Export, which has no grid attached here.
		p.Delta, p.Dim = 0, 0
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}

		// (b) raw decode: arbitrary bytes must error or validate, not panic.
		if p, err := Decode(bytes.NewReader(data)); err == nil {
			if err := p.Validate(); err != nil {
				t.Fatalf("Decode accepted a Portable failing Validate: %v", err)
			}
		}
	})
}
