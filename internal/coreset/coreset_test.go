package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

func mixture(seed int64, n int) (geo.PointSet, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	m := workload.Mixture{N: n, D: 2, Delta: 1 << 13, K: 4, Spread: 30, Skew: 2, NoiseFrac: 0.05}
	return m.Generate(rng)
}

func TestParamsValidation(t *testing.T) {
	if _, err := Build(geo.PointSet{{1, 1}}, Params{K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := Build(geo.PointSet{{1, 1}}, Params{K: 2, Eps: 0.9}); err == nil {
		t.Fatal("Eps=0.9 must error")
	}
	if _, err := Build(geo.PointSet{{1, 1}}, Params{K: 2, Eta: -0.1}); err == nil {
		t.Fatal("Eta<0 must error")
	}
	if _, err := Build(geo.PointSet{{1, 1}}, Params{K: 2, R: 0.5}); err == nil {
		t.Fatal("R<1 must error")
	}
	if _, err := Build(nil, Params{K: 2}); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestCoresetCompressesAndPreservesWeight(t *testing.T) {
	ps, _ := mixture(1, 20000)
	cs, err := Build(ps, Params{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() == 0 {
		t.Fatal("empty coreset")
	}
	if cs.Size() >= len(ps)/2 {
		t.Fatalf("coreset %d barely compresses n=%d", cs.Size(), len(ps))
	}
	// Total weight is an unbiased estimator of n (up to excluded tiny
	// parts); demand 5%.
	if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 0.05*float64(len(ps)) {
		t.Fatalf("total weight %v vs n=%d", w, len(ps))
	}
	for i, wp := range cs.Points {
		if wp.W <= 0 {
			t.Fatalf("nonpositive weight at %d", i)
		}
		if !wp.P.InRange(cs.Grid.Delta) {
			t.Fatalf("point out of range: %v", wp.P)
		}
	}
	// Coreset points must be input points (subset property Q' ⊆ Q).
	in := make(map[string]bool, len(ps))
	for _, p := range ps {
		in[p.String()] = true
	}
	for _, wp := range cs.Points {
		if !in[wp.P.String()] {
			t.Fatalf("coreset point %v is not an input point", wp.P)
		}
	}
}

func TestCoresetDeterministicGivenSeed(t *testing.T) {
	ps, _ := mixture(2, 5000)
	a, err := Build(ps, Params{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ps, Params{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() || a.O != b.O {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v", a.Size(), a.O, b.Size(), b.O)
	}
	for i := range a.Points {
		if !a.Points[i].P.Equal(b.Points[i].P) || a.Points[i].W != b.Points[i].W {
			t.Fatalf("point %d differs", i)
		}
	}
	c, err := Build(ps, Params{K: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() == a.Size() {
		same := true
		for i := range c.Points {
			if !c.Points[i].P.Equal(a.Points[i].P) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical coresets")
		}
	}
}

func TestUnconstrainedCostPreserved(t *testing.T) {
	// cost^{(r)}(Q, Z) vs cost^{(r)}(Q', Z, w') over several center sets —
	// the t = ∞ specialization of the strong coreset property.
	ps, truec := mixture(3, 12000)
	ws := geo.UnitWeights(ps)
	cs, err := Build(ps, Params{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		var Z []geo.Point
		switch trial {
		case 0:
			Z = truec
		case 1: // perturbed true centers
			Z = make([]geo.Point, len(truec))
			for i, c := range truec {
				Z[i] = geo.Point{c[0] + rng.Int63n(101) - 50, c[1] + rng.Int63n(101) - 50}
			}
		default: // k-means++ draws
			Z = solve.SeedKMeansPP(rng, ws, 4, 2)
		}
		full := assign.UnconstrainedCost(ws, Z, 2)
		core := assign.UnconstrainedCost(cs.Points, Z, 2)
		if ratio := core / full; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("trial %d: unconstrained cost ratio %v outside [0.8, 1.2] (full %v, core %v)",
				trial, ratio, full, core)
		}
	}
}

func TestCapacitatedCostPreserved(t *testing.T) {
	// The headline property (Theorem 3.19): capacitated cost on the
	// coreset tracks the capacitated cost on the input, with an η-relaxed
	// capacity on the coreset side.
	ps, truec := mixture(4, 2500)
	ws := geo.UnitWeights(ps)
	cs, err := Build(ps, Params{K: 4, Seed: 13, Eps: 0.25, Eta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(ps))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		var Z []geo.Point
		if trial == 0 {
			Z = truec
		} else {
			Z = solve.SeedKMeansPP(rng, ws, 4, 2)
		}
		for _, tFactor := range []float64{1.05, 1.5} {
			tcap := tFactor * n / 4
			full, _, ok := assign.FractionalCost(ws, Z, tcap, 2)
			if !ok {
				t.Fatalf("full instance infeasible at t=%v", tcap)
			}
			core, _, ok := assign.FractionalCost(cs.Points, Z, (1+0.25)*tcap, 2)
			if !ok {
				t.Fatalf("coreset infeasible at (1+η)t")
			}
			// cost_{(1+η)t}(Q',Z,w') ≤ (1+ε)cost_t(Q,Z): check with slack
			// 1.35 for sampling noise beyond the configured ε.
			if core > 1.35*full {
				t.Fatalf("trial %d t=%v: coreset capacitated cost %v ≫ full %v",
					trial, tcap, core, full)
			}
			// Reverse direction: cost on Q at (1+η)²t is below (1+ε)·coreset cost.
			fullRelaxed, _, _ := assign.FractionalCost(ws, Z, (1+0.25)*(1+0.25)*tcap, 2)
			if fullRelaxed > 1.35*core {
				t.Fatalf("trial %d t=%v: full relaxed cost %v ≫ coreset %v",
					trial, tcap, fullRelaxed, core)
			}
		}
	}
}

func TestSizeIndependentOfN(t *testing.T) {
	// Theorem 3.19: |Q'| = poly(kd log Δ), not poly(n). Growing n by 8×
	// must grow the coreset by far less.
	small, _ := mixture(5, 4000)
	big, _ := mixture(5, 32000)
	csSmall, err := Build(small, Params{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	csBig, err := Build(big, Params{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(csBig.Size()) / float64(csSmall.Size())
	if growth > 3 {
		t.Fatalf("coreset grew %.1f× for an 8× larger input (%d → %d)",
			growth, csSmall.Size(), csBig.Size())
	}
}

func TestDegenerateAllPointsIdentical(t *testing.T) {
	ps := make(geo.PointSet, 500)
	for i := range ps {
		ps[i] = geo.Point{7, 7}
	}
	cs, err := Build(ps, Params{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 1 {
		t.Fatalf("identical points must collapse to one weighted point, got %d", cs.Size())
	}
	if cs.Points[0].W != 500 {
		t.Fatalf("weight = %v, want 500 (multiplicity folding)", cs.Points[0].W)
	}
}

func TestKLocationsExactCoreset(t *testing.T) {
	// Points on exactly k locations: OPT = 0; the coreset must be the k
	// distinct weighted locations, exactly.
	ps := geo.PointSet{}
	locs := []geo.Point{{10, 10}, {1000, 1000}, {10, 1000}}
	counts := []int{100, 50, 25}
	for j, l := range locs {
		for i := 0; i < counts[j]; i++ {
			ps = append(ps, l.Clone())
		}
	}
	cs, err := Build(ps, Params{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 3 {
		t.Fatalf("size = %d, want 3", cs.Size())
	}
	got := map[string]float64{}
	for _, wp := range cs.Points {
		got[wp.P.String()] = wp.W
	}
	for j, l := range locs {
		if got[l.String()] != float64(counts[j]) {
			t.Fatalf("location %v weight %v, want %d", l, got[l.String()], counts[j])
		}
	}
}

func TestBuildForOFailsOnTinyBudgetGuess(t *testing.T) {
	// With conservative=false but an o so large the root cell is not
	// heavy, no part covers anything: BuildForO reports a nil coreset or
	// plan failure rather than a bogus result.
	ps, _ := mixture(6, 2000)
	cs, pl, err := BuildForO(ps, Params{K: 4, Seed: 1}, 1e30)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Failed() {
		return // acceptable: budgets rejected it
	}
	if cs != nil && cs.Size() > 0 {
		t.Fatal("absurd guess produced a non-empty coreset")
	}
}

func TestPlanPhiMonotoneInLevel(t *testing.T) {
	ps, _ := mixture(7, 3000)
	cs, err := Build(ps, Params{K: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(cs.Plan.Phi); i++ {
		if cs.Plan.Phi[i+1] > cs.Plan.Phi[i]+1e-12 {
			t.Fatalf("φ must be nonincreasing in level (T_i grows): φ[%d]=%v < φ[%d]=%v",
				i, cs.Plan.Phi[i], i+1, cs.Plan.Phi[i+1])
		}
	}
}

func TestGammaXiLambdaFormulas(t *testing.T) {
	p, err := Params{K: 3, R: 2, Eps: 0.2, Eta: 0.4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	d, L := 2, 10
	// practical γ = min(0.4/(3·10), 0.2/((3+8)·10)) = min(0.01333, 0.00182)
	if g := p.Gamma(d, L); math.Abs(g-0.2/(11*10)) > 1e-12 {
		t.Fatalf("Gamma = %v", g)
	}
	pc := p
	pc.Conservative = true
	if gc := pc.Gamma(d, L); math.Abs(gc-p.Gamma(d, L)*math.Exp2(-24)) > 1e-18 {
		t.Fatalf("conservative Gamma = %v", gc)
	}
	if p.Lambda(d, L) != 16 {
		t.Fatalf("practical Lambda = %d", p.Lambda(d, L))
	}
	if pc.Lambda(d, L) <= 1000 {
		t.Fatalf("conservative Lambda suspiciously small: %d", pc.Lambda(d, L))
	}
	if p.Phi(1e12, d, L) >= 1e-6 {
		t.Fatalf("Phi must shrink with T: %v", p.Phi(1e12, d, L))
	}
	if p.Phi(0, d, L) != 1 {
		t.Fatal("Phi(T=0) must be 1")
	}
	if pc.Phi(10, d, L) != 1 {
		t.Fatal("conservative Phi at small T must saturate at 1")
	}
}

func TestHeavyAndLevelBudgets(t *testing.T) {
	p, _ := Params{K: 2, R: 2}.withDefaults()
	d, L := 2, 8
	// 20000·(2+8)·8
	if got := p.HeavyBudget(d, L); got != 20000*10*8 {
		t.Fatalf("HeavyBudget = %v", got)
	}
	// 10000·(2·8+8)·T
	if got := p.LevelBudget(d, L, 2); got != 10000*24*2 {
		t.Fatalf("LevelBudget = %v", got)
	}
}

func TestTheoreticalSizeBoundPositiveAndMonotone(t *testing.T) {
	p, _ := Params{K: 3, Eps: 0.3, Eta: 0.3}.withDefaults()
	b1 := p.TheoreticalSizeBound(2, 10)
	p2, _ := Params{K: 3, Eps: 0.1, Eta: 0.1}.withDefaults()
	b2 := p2.TheoreticalSizeBound(2, 10)
	if b1 <= 0 || b2 <= b1 {
		t.Fatalf("bounds: %v, %v (tighter ε must give larger bound)", b1, b2)
	}
}
