package coreset

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"streambalance/internal/geo"
)

// Portable is the serializable subset of a Coreset: the weighted points
// plus the metadata a downstream consumer needs to interpret them
// (domain bounds, clustering parameters, the accepted guess). The
// partition/plan metadata backing BuildAssignmentRule is deliberately
// NOT serialized — it is bound to the in-process hash functions; a
// consumer that needs the Section 3.3 rule rebuilds it next to the
// construction.
type Portable struct {
	Version int
	Points  []geo.Weighted
	Levels  []int
	O       float64
	K       int
	R       float64
	Eps     float64
	Eta     float64
	Delta   int64
	Dim     int
}

const portableVersion = 1

// Export extracts the portable form.
func (c *Coreset) Export() Portable {
	p := Portable{
		Version: portableVersion,
		Points:  c.Points,
		Levels:  c.Levels,
		O:       c.O,
		K:       c.Params.K,
		R:       c.Params.R,
		Eps:     c.Params.Eps,
		Eta:     c.Params.Eta,
	}
	if c.Grid != nil {
		p.Delta = c.Grid.Delta
		p.Dim = c.Grid.Dim
	}
	return p
}

// Encode writes the coreset's portable form to w (gob-encoded).
func (c *Coreset) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c.Export())
}

// Decode reads a portable coreset written by Encode.
func Decode(r io.Reader) (Portable, error) {
	var p Portable
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return Portable{}, err
	}
	if p.Version != portableVersion {
		return Portable{}, fmt.Errorf("coreset: unsupported version %d", p.Version)
	}
	if err := p.Validate(); err != nil {
		return Portable{}, err
	}
	return p, nil
}

// Validate checks internal consistency of a decoded coreset.
func (p Portable) Validate() error {
	if p.K < 1 {
		return errors.New("coreset: portable form has K < 1")
	}
	if len(p.Levels) != 0 && len(p.Levels) != len(p.Points) {
		return errors.New("coreset: levels/points length mismatch")
	}
	for i, wp := range p.Points {
		if wp.W <= 0 {
			return fmt.Errorf("coreset: nonpositive weight at index %d", i)
		}
		if p.Dim > 0 && len(wp.P) != p.Dim {
			return fmt.Errorf("coreset: point %d has dimension %d, want %d", i, len(wp.P), p.Dim)
		}
		if p.Delta > 0 && !wp.P.InRange(p.Delta) {
			return fmt.Errorf("coreset: point %d out of range", i)
		}
	}
	return nil
}

// encodeRaw gob-encodes a Portable without version stamping — used only
// by tests that need to craft invalid payloads.
func encodeRaw(w io.Writer, p Portable) error {
	return gob.NewEncoder(w).Encode(p)
}
