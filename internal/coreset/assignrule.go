package coreset

import (
	"errors"
	"math"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/partition"
)

// AssignmentRule is the output of Section 3.3: given k centers Z and a
// capacity t′, a rule — computed from the coreset alone, in
// poly(|Q′|) time — that assigns ANY point of the original set Q to a
// center, such that the induced assignment costs at most
// (1+O(ε))·cost_{t′}(Q′, Z, w′) and has size vector bounded by
// (1+O(η))·t′. The rule is built from:
//
//  1. an integral capacitated assignment π′ of the coreset (fractional
//     min-cost flow + cycle elimination, ≤ k−1 split points),
//  2. the switching canonicalization (step 1c of §3.3) making each
//     per-level assignment consistent with a set of assignment
//     half-spaces H_i,
//  3. per part Q_{i,j}, the transferred assignment (Definition 3.11) of
//     the half-space regions, with region weights estimated from the
//     coreset samples,
//  4. nearest-center fallback for points outside every included part
//     (the small parts Lemma 3.4 bounds).
type AssignmentRule struct {
	Z []geo.Point
	R float64

	// CoresetAssign is π′′ restricted to the coreset points (same order
	// as Coreset.Points).
	CoresetAssign []int
	// CoresetCost is Σ w′(p)·dist^r(p, π′′(p)).
	CoresetCost float64

	part     *partition.Partition
	level    map[partition.PartID]*partRule
	fallback bool
}

// partRule holds the transferred-assignment data for one part.
type partRule struct {
	hs    *assign.HalfSpaceSet
	b     []float64 // region weight estimates from the coreset samples
	xi    float64
	t     float64
	iStar int
}

// ErrInfeasible is returned when t′·k cannot hold the coreset weight.
var ErrInfeasible = errors.New("coreset: assignment infeasible at this capacity")

// BuildAssignmentRule runs Section 3.3 for the given centers and
// capacity t′ ≥ max(Σw′, |Q|)/k.
func (c *Coreset) BuildAssignmentRule(Z []geo.Point, tPrime float64) (*AssignmentRule, error) {
	if c.Part == nil || c.Plan == nil {
		return nil, errors.New("coreset: missing partition metadata (not built by this package?)")
	}
	k := len(Z)
	if k == 0 {
		return nil, errors.New("coreset: no centers")
	}
	r := c.Params.R

	// Step 1: integral capacitated assignment of the weighted coreset
	// (fractional optimum + cycle elimination + nearest-center for the
	// ≤ k−1 split points).
	res, ok := assign.Weighted(c.Points, Z, tPrime, r)
	if !ok {
		return nil, ErrInfeasible
	}
	pi := res.Assign

	// Step 2: canonicalize ties per level group (points of one level
	// share a weight 1/φ_i, the "same weight class" of Lemma 3.8; the
	// switching keeps cost and sizes and makes the assignment half-space
	// representable).
	byLevel := map[int][]int{} // level → coreset indices
	for idx, lv := range c.Levels {
		byLevel[lv] = append(byLevel[lv], idx)
	}
	rule := &AssignmentRule{
		Z: Z, R: r,
		CoresetAssign: pi,
		part:          c.Part,
		level:         map[partition.PartID]*partRule{},
	}
	gamma := c.Plan.Gamma
	xi := c.Params.Xi(c.Grid.Dim, c.Grid.L)
	// The conservative ξ underflows to ~1e-12; the transfer threshold
	// 2ξT only needs to be a small fraction of the part threshold.
	if xi < 1e-6 {
		xi = 1e-6
	}

	for lv, idxs := range byLevel {
		pts := make(geo.PointSet, len(idxs))
		sub := make([]int, len(idxs))
		for i, idx := range idxs {
			pts[i] = c.Points[idx].P
			sub[i] = pi[idx]
		}
		assign.CanonicalizeTies(pts, sub, Z, r)
		for i, idx := range idxs {
			pi[idx] = sub[i]
		}
		// Step 3: per part at this level, derive half-spaces from the
		// canonicalized assignment restricted to the part, and set up the
		// transferred assignment.
		byPart := map[partition.PartID][]int{} // part → positions in idxs
		for i, idx := range idxs {
			id, ok := c.Part.PartOf(c.Points[idx].P)
			if !ok {
				continue
			}
			byPart[id] = append(byPart[id], i)
		}
		T := 0.5 * gamma * c.Part.ThresholdT(lv)
		for id, members := range byPart {
			ppts := make(geo.PointSet, len(members))
			ppi := make([]int, len(members))
			ws := make([]geo.Weighted, len(members))
			for j, i := range members {
				ppts[j] = pts[i]
				ppi[j] = sub[i]
				ws[j] = c.Points[idxs[i]]
			}
			hs, _ := assign.FromAssignment(ppts, ppi, Z, r)
			b := hs.RegionCounts(ws)
			iStar := 0
			for i := 1; i < k; i++ {
				if b[1+i] > b[1+iStar] {
					iStar = i
				}
			}
			rule.level[id] = &partRule{hs: hs, b: b, xi: xi, t: T, iStar: iStar}
		}
	}
	rule.CoresetCost = assign.CostOfAssignment(c.Points, Z, pi, r)
	rule.fallback = true
	return rule, nil
}

// Assign maps an arbitrary original point to its center index under the
// rule: the transferred assignment of its part if the part carries
// coreset samples, otherwise the nearest center (the Lemma 3.4 fallback
// for excluded small parts).
func (ar *AssignmentRule) Assign(p geo.Point) int {
	if id, ok := ar.part.PartOf(p); ok {
		if pr := ar.level[id]; pr != nil {
			reg := pr.hs.Region(p)
			if reg >= 0 && pr.b[1+reg] >= 2*pr.xi*pr.t {
				return reg
			}
			return pr.iStar
		}
	}
	_, j := geo.DistToSet(p, ar.Z)
	return j
}

// Apply assigns every point of ps and reports the assignment, its ℓ_r
// cost and the size vector.
func (ar *AssignmentRule) Apply(ps geo.PointSet) (pi []int, cost float64, sizes []float64) {
	pi = make([]int, len(ps))
	sizes = make([]float64, len(ar.Z))
	for i, p := range ps {
		j := ar.Assign(p)
		pi[i] = j
		sizes[j]++
		cost += geo.DistR(p, ar.Z[j], ar.R)
	}
	return pi, cost, sizes
}

// MaxSize returns ‖s(π)‖_∞ of an Apply result.
func MaxSize(sizes []float64) float64 {
	m := math.Inf(-1)
	for _, s := range sizes {
		if s > m {
			m = s
		}
	}
	return m
}
