package coreset

import (
	"errors"
	"fmt"
)

// Compose merges coresets of DISJOINT point sets into a coreset of the
// union: strong coresets compose additively — for every Z and capacity t,
// each part's capacitated cost estimator is preserved, so their union
// preserves the union's (this is the composability the distributed
// protocol of Theorem 4.7 exploits, exposed here for offline pipelines
// such as merging per-shard or per-day coresets).
//
// All inputs must agree on K, R and dimension; ε/η of the result are the
// worst of the inputs (recorded in the output). The merged object is
// Portable (no partition metadata: the inputs were built over different
// grids, so the §3.3 assignment rule does not transfer — rebuild it from
// a fresh construction when needed).
func Compose(parts ...Portable) (Portable, error) {
	if len(parts) == 0 {
		return Portable{}, errors.New("coreset: nothing to compose")
	}
	out := Portable{
		Version: portableVersion,
		K:       parts[0].K,
		R:       parts[0].R,
		Dim:     parts[0].Dim,
		Eps:     parts[0].Eps,
		Eta:     parts[0].Eta,
	}
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return Portable{}, fmt.Errorf("coreset: part %d invalid: %w", i, err)
		}
		if p.K != out.K || p.R != out.R || p.Dim != out.Dim {
			return Portable{}, fmt.Errorf("coreset: part %d has incompatible (K, R, dim) = (%d, %g, %d)",
				i, p.K, p.R, p.Dim)
		}
		if p.Eps > out.Eps {
			out.Eps = p.Eps
		}
		if p.Eta > out.Eta {
			out.Eta = p.Eta
		}
		if p.Delta > out.Delta {
			out.Delta = p.Delta
		}
		if p.O > out.O {
			out.O = p.O
		}
		out.Points = append(out.Points, p.Points...)
	}
	return out, nil
}
