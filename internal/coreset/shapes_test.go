package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/baseline"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func TestCoresetOnRing(t *testing.T) {
	// Non-convex cluster shape: heavy cells form a band. The coreset must
	// still track costs.
	rng := rand.New(rand.NewSource(1))
	ps := workload.Ring(rng, 6000, 2048, 600, 40)
	cs, err := Build(ps, Params{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cs.TotalWeight()-6000) > 0.1*6000 {
		t.Fatalf("weight %v", cs.TotalWeight())
	}
	ws := geo.UnitWeights(ps)
	Z := []geo.Point{{1024, 424}, {1024, 1624}, {424, 1024}, {1624, 1024}}
	full := assign.UnconstrainedCost(ws, Z, 2)
	core := assign.UnconstrainedCost(cs.Points, Z, 2)
	if r := core / full; r < 0.85 || r > 1.15 {
		t.Fatalf("ring cost ratio %v", r)
	}
}

func TestCoresetOnLatticeExact(t *testing.T) {
	// Duplicate-heavy lattice: 36 sites × 50 copies. Multiplicity folding
	// (footnote 4) must make the coreset both tiny and exact.
	rng := rand.New(rand.NewSource(2))
	ps := workload.Lattice(rng, 36, 1024, 50)
	cs, err := Build(ps, Params{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() > 36 {
		t.Fatalf("coreset %d > 36 distinct sites", cs.Size())
	}
	if w := cs.TotalWeight(); math.Abs(w-1800) > 0.15*1800 {
		t.Fatalf("weight %v, want ≈ 1800", w)
	}
}

func TestCoresetKeepsAdversarialOutliers(t *testing.T) {
	// The instance uniform sampling fails on: 8 far outliers carry much
	// of the cost. The partition gives outliers their own parts at
	// coarse levels with φ = 1, so the coreset keeps them; a uniform
	// sample of the same size almost surely misses most.
	rng := rand.New(rand.NewSource(3))
	ps := workload.Adversarial(rng, 8000, 4096, 8)
	cs, err := Build(ps, Params{K: 2, Seed: 4, SamplesPerPart: 64})
	if err != nil {
		t.Fatal(err)
	}
	blobCenter := geo.Point{1024, 1024}
	countFar := func(ws []geo.Weighted) int {
		far := 0
		for _, w := range ws {
			if geo.Dist(w.P, blobCenter) > 1000 {
				far++
			}
		}
		return far
	}
	if got := countFar(cs.Points); got < 6 {
		t.Fatalf("coreset kept only %d of ≈8 outliers", got)
	}
	// Cost fidelity at a center set that leaves outliers expensive.
	Z := []geo.Point{{1024, 1024}, {1100, 1100}}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, Z, 2)
	core := assign.UnconstrainedCost(cs.Points, Z, 2)
	if r := core / full; r < 0.8 || r > 1.2 {
		t.Fatalf("adversarial cost ratio %v", r)
	}
	// Contrast: a same-size uniform sample distorts this cost badly in
	// most draws. (Not a hard guarantee per draw — check the median over
	// a few.)
	bad := 0
	for trial := 0; trial < 5; trial++ {
		uni := baseline.Uniform(rng, ps, cs.Size())
		ur := assign.UnconstrainedCost(uni, Z, 2) / full
		if ur < 0.8 || ur > 1.2 {
			bad++
		}
	}
	if bad < 2 {
		t.Logf("note: uniform sampling survived %d/5 draws on the adversarial instance", 5-bad)
	}
}
