package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/solve"
)

func buildRuleFixture(t *testing.T, n int) (geo.PointSet, []geo.Point, *Coreset) {
	t.Helper()
	ps, truec := mixture(21, n)
	cs, err := Build(ps, Params{K: 4, Seed: 3, Eta: 0.2, Eps: 0.2, SamplesPerPart: 128})
	if err != nil {
		t.Fatal(err)
	}
	return ps, truec, cs
}

func TestAssignmentRuleCoversAllPointsAndRespectsCapacity(t *testing.T) {
	ps, truec, cs := buildRuleFixture(t, 2500)
	n := float64(len(ps))
	tPrime := 1.2 * math.Max(cs.TotalWeight(), n) / 4

	rule, err := cs.BuildAssignmentRule(truec, tPrime)
	if err != nil {
		t.Fatal(err)
	}
	pi, cost, sizes := rule.Apply(ps)
	for i, a := range pi {
		if a < 0 || a >= 4 {
			t.Fatalf("point %d unassigned: %d", i, a)
		}
	}
	if cost <= 0 {
		t.Fatal("zero cost on non-degenerate data")
	}
	// Capacity: ‖s(π)‖_∞ ≤ (1+O(η))·t′. η = 0.2; allow the O(·) constant
	// up to 2η plus rounding slack.
	if maxS := MaxSize(sizes); maxS > (1+0.5)*tPrime {
		t.Fatalf("size vector %v exceeds (1+O(η))t' = %v", sizes, (1+0.5)*tPrime)
	}
	var tot float64
	for _, s := range sizes {
		tot += s
	}
	if tot != n {
		t.Fatalf("sizes sum %v, want %v", tot, n)
	}
}

func TestAssignmentRuleCostNearOptimal(t *testing.T) {
	ps, truec, cs := buildRuleFixture(t, 2000)
	n := float64(len(ps))
	tPrime := 1.3 * math.Max(cs.TotalWeight(), n) / 4

	rule, err := cs.BuildAssignmentRule(truec, tPrime)
	if err != nil {
		t.Fatal(err)
	}
	_, cost, sizes := rule.Apply(ps)

	// Reference: the optimal capacitated assignment of the FULL data at
	// the relaxed capacity the rule is allowed.
	ref, ok := assign.Optimal(ps, truec, MaxSize(sizes)+1, 2)
	if !ok {
		t.Fatal("reference infeasible")
	}
	if cost > 1.5*ref.Cost {
		t.Fatalf("rule cost %v vs optimal-at-same-capacity %v (>1.5×)", cost, ref.Cost)
	}
	// And the rule cost must track the coreset's own assignment cost
	// (§3.3: within (1+O(ε))).
	if rule.CoresetCost <= 0 {
		t.Fatal("coreset assignment cost not recorded")
	}
	if cost > 2*rule.CoresetCost+1e-9 || rule.CoresetCost > 2*cost {
		t.Fatalf("rule cost %v and coreset cost %v diverge", cost, rule.CoresetCost)
	}
}

func TestAssignmentRuleInfeasibleCapacity(t *testing.T) {
	_, truec, cs := buildRuleFixture(t, 1200)
	if _, err := cs.BuildAssignmentRule(truec, 1); err == nil {
		t.Fatal("capacity 1 must be infeasible")
	}
}

func TestAssignmentRuleBeatsNearestUnderTightCapacity(t *testing.T) {
	// On an imbalanced instance with tight capacity, the rule must
	// produce a MORE balanced size vector than nearest-center assignment.
	ps, _ := mixture(22, 2200)
	cs, err := Build(ps, Params{K: 4, Seed: 5, SamplesPerPart: 128})
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	rng := rand.New(rand.NewSource(9))
	Z := solve.SeedKMeansPP(rng, ws, 4, 2)

	n := float64(len(ps))
	tPrime := 1.1 * math.Max(cs.TotalWeight(), n) / 4
	rule, err := cs.BuildAssignmentRule(Z, tPrime)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sizes := rule.Apply(ps)

	nearest := make([]float64, 4)
	for _, p := range ps {
		_, j := geo.DistToSet(p, Z)
		nearest[j]++
	}
	if MaxSize(sizes) > MaxSize(nearest)+1e-9 {
		t.Fatalf("rule peak load %v not better than nearest-center %v under tight capacity",
			MaxSize(sizes), MaxSize(nearest))
	}
}

func TestAssignmentRuleErrors(t *testing.T) {
	cs := &Coreset{} // no partition metadata
	if _, err := cs.BuildAssignmentRule([]geo.Point{{1, 1}}, 10); err == nil {
		t.Fatal("missing metadata must error")
	}
	_, _, full := buildRuleFixture(t, 800)
	if _, err := full.BuildAssignmentRule(nil, 10); err == nil {
		t.Fatal("no centers must error")
	}
}
