package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/partition"
	"streambalance/internal/solve"
)

// TestLemma34SmallPartRemoval verifies the conclusion of Lemma 3.4 on
// real partitions: let QN be the union of all parts with
// τ(Q_{i,j}) ≤ 2γ·T_i(o). Then for every capacity t and center set Z,
//
//	cost_t(Q \ QN, Z)       ≤ cost_t(Q, Z)               (monotonicity)
//	cost_{(1+η)t}(Q, Z)     ≤ (1+ε)·cost_t(Q \ QN, Z)    (small loss)
//
// with ε, η the parameters γ was derived from. The second inequality is
// the one the coreset construction leans on when it drops small parts.
func TestLemma34SmallPartRemoval(t *testing.T) {
	ps, truec := mixture(61, 1600)
	p, err := Params{K: 4, Eps: 0.3, Eta: 0.3, Seed: 5}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := grid.New(geo.MaxCoordRange(ps), 2, rng)
	o := GuessO(ps, p, rng, g.Delta)
	counts := partition.ExactCounts(g, ps)
	part := partition.Build(partition.Input{Grid: g, R: 2, O: o, Counts: counts})
	// With the real γ, 2γ·T_i(o) sits below one point at every level for
	// instances of this scale, so the construction removes nothing (the
	// lemma is vacuously safe). To exercise the lemma's MECHANISM — parts
	// small relative to their heavy parent can be dropped because enough
	// survivors remain within the parent cell's diameter — we remove
	// every part holding at most 30% of its parent's mass, capped at
	// η·n/k points total (the |QN| bound of Claim A.2).
	// A part's parent is a heavy CELL; its mass (from the exact counts at
	// the parent's level) includes the mass that continues into heavy
	// children — the survivors that make removal cheap.
	parentMass := func(id partition.PartID) float64 {
		return counts[id.Level-1+1][id.Parent].Tau
	}
	budget := p.Eta * float64(len(ps)) / float64(p.K)
	removable := map[partition.PartID]bool{}
	for id, pt := range part.Parts {
		if pt.Tau <= 0.3*parentMass(id) && pt.Tau <= budget {
			removable[id] = true
			budget -= pt.Tau
		}
	}
	var kept geo.PointSet
	removed := 0
	for _, q := range ps {
		id, ok := part.PartOf(q)
		if ok && !removable[id] {
			kept = append(kept, q)
		} else {
			removed++
		}
	}
	if removed == 0 {
		t.Skip("no removable small parts on this draw — nothing to verify")
	}
	if float64(removed) > p.Eta*float64(len(ps))/float64(p.K)+1 {
		t.Fatalf("removed %d of %d points — beyond the Claim A.2 budget", removed, len(ps))
	}

	n := float64(len(ps))
	wsAll := geo.UnitWeights(ps)
	wsKept := geo.UnitWeights(kept)
	for trial := 0; trial < 2; trial++ {
		Z := truec
		if trial == 1 {
			Z = solve.SeedKMeansPP(rng, wsAll, 4, 2)
		}
		for _, tf := range []float64{1.1, 2.0} {
			tcap := tf * n / 4
			full, _, ok1 := assign.FractionalCost(wsAll, Z, tcap, 2)
			keptCost, _, ok2 := assign.FractionalCost(wsKept, Z, tcap, 2)
			if !ok1 || !ok2 {
				t.Fatalf("infeasible at t=%v", tcap)
			}
			if keptCost > full+1e-6*(1+full) {
				t.Fatalf("monotonicity violated: removing points increased cost_t (%v > %v)",
					keptCost, full)
			}
			fullRelaxed, _, ok3 := assign.FractionalCost(wsAll, Z, (1+p.Eta)*tcap, 2)
			if !ok3 {
				t.Fatal("relaxed infeasible")
			}
			if fullRelaxed > (1+p.Eps)*keptCost+1e-6 {
				t.Fatalf("Lemma 3.4 bound violated at t=%v: cost_{(1+η)t}(Q)=%v > (1+ε)·cost_t(Q\\QN)=%v",
					tcap, fullRelaxed, (1+p.Eps)*keptCost)
			}
		}
	}
	// The removed parts' movement mass (points × parent-cell diameter^r,
	// the quantity the lemma's proof charges) must stay comparable to o.
	var movedMass float64
	for id := range removable {
		pt := part.Parts[id]
		diam := part.Grid.Diameter(id.Level - 1)
		movedMass += pt.Tau * geo.PowR(diam, 2)
	}
	if movedMass > 100*o {
		t.Fatalf("removed parts carry movement mass %v ≫ o=%v", movedMass, o)
	}
}

func TestLemma33HeavyCellBoundScalesWithO(t *testing.T) {
	// Lemma 3.3: heavy cells ≤ C·(k + d^{1.5r})·L·(OPT/o): halving o can
	// only increase the count, and the growth from o to o/8 is bounded by
	// ≈ 8× (up to the partition's integrality effects).
	ps, _ := mixture(62, 3000)
	rng := rand.New(rand.NewSource(3))
	g := grid.New(geo.MaxCoordRange(ps), 2, rng)
	counts := partition.ExactCounts(g, ps)
	p, _ := Params{K: 4, Seed: 3}.Resolve()
	o := GuessO(ps, p, rng, g.Delta)

	hc := func(oo float64) int {
		return partition.Build(partition.Input{Grid: g, R: 2, O: oo, Counts: counts}).HeavyCount()
	}
	base := hc(o)
	eighth := hc(o / 8)
	if eighth < base {
		t.Fatalf("smaller o must not decrease heavy cells: %d vs %d", eighth, base)
	}
	if base > 0 && float64(eighth) > 40*float64(base)+40 {
		t.Fatalf("heavy cells grew %d → %d for o/8 — far beyond the Lemma 3.3 scaling", base, eighth)
	}
}

func TestFactA1RootHeavyWhenOBelowOPT(t *testing.T) {
	// Fact A.1: o ≤ OPT ⇒ the G_{-1} root cell is heavy.
	ps, _ := mixture(63, 1000)
	rng := rand.New(rand.NewSource(4))
	g := grid.New(geo.MaxCoordRange(ps), 2, rng)
	counts := partition.ExactCounts(g, ps)
	// A certified lower bound stand-in: any o below n·(min spacing)… use
	// a tiny o, trivially ≤ OPT for non-degenerate data.
	part := partition.Build(partition.Input{Grid: g, R: 2, O: 16, Counts: counts})
	if !part.IsHeavy(grid.MinLevel, g.CellKey(ps[0], grid.MinLevel)) {
		t.Fatal("root not heavy despite o ≪ OPT")
	}
	if _, ok := part.PartOf(ps[0]); !ok {
		t.Fatal("point uncovered despite heavy root")
	}
	_ = math.Inf // keep math import meaningful if edits drop other uses
}
