package coreset

import (
	"bytes"
	"testing"

	"streambalance/internal/geo"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ps, _ := mixture(41, 1500)
	cs, err := Build(ps, Params{K: 3, Seed: 4, SamplesPerPart: 128})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != cs.Size() || p.O != cs.O || p.K != 3 {
		t.Fatalf("round trip lost data: %d/%v/%d", len(p.Points), p.O, p.K)
	}
	for i := range p.Points {
		if !p.Points[i].P.Equal(cs.Points[i].P) || p.Points[i].W != cs.Points[i].W {
			t.Fatalf("point %d differs", i)
		}
	}
	if p.Delta != cs.Grid.Delta || p.Dim != 2 {
		t.Fatalf("metadata lost: Δ=%d dim=%d", p.Delta, p.Dim)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestPortableValidate(t *testing.T) {
	good := Portable{Version: 1, K: 2, Dim: 2, Delta: 16,
		Points: []geo.Weighted{{P: geo.Point{1, 2}, W: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Points = []geo.Weighted{{P: geo.Point{1, 2}, W: -1}}
	if bad.Validate() == nil {
		t.Fatal("negative weight must fail")
	}
	bad = good
	bad.Points = []geo.Weighted{{P: geo.Point{1}, W: 1}}
	if bad.Validate() == nil {
		t.Fatal("dimension mismatch must fail")
	}
	bad = good
	bad.Points = []geo.Weighted{{P: geo.Point{1, 99}, W: 1}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range must fail")
	}
	bad = good
	bad.K = 0
	if bad.Validate() == nil {
		t.Fatal("K=0 must fail")
	}
	bad = good
	bad.Levels = []int{1, 2, 3}
	if bad.Validate() == nil {
		t.Fatal("levels mismatch must fail")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	p := Portable{Version: 99, K: 1}
	if err := encodeRaw(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Fatal("wrong version must error")
	}
}
