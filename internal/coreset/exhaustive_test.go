package coreset

import (
	"math"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
)

// TestStrongCoresetExhaustiveTinyDomain verifies the strong (η, ε)-coreset
// definition EXACTLY — quantifying over every center set Z ⊂ [Δ]^d with
// |Z| = k and every capacity t ≥ n/k — on a domain small enough to
// enumerate. This is the literal Theorem 3.19 statement, not a sampled
// check: on [16]¹ with k = 2 there are 120 center sets and a handful of
// capacities, and the optimal capacitated assignments are computed by
// min-cost flow on both sides.
func TestStrongCoresetExhaustiveTinyDomain(t *testing.T) {
	const delta = 16
	// A 1-d input with duplicated mass (so the coreset genuinely
	// compresses via multiplicity folding) plus spread.
	var ps geo.PointSet
	for _, site := range []struct {
		x int64
		m int
	}{{2, 14}, {3, 8}, {5, 4}, {9, 10}, {10, 12}, {14, 6}, {15, 2}} {
		for i := 0; i < site.m; i++ {
			ps = append(ps, geo.Point{site.x})
		}
	}
	n := len(ps)
	const eps, eta = 0.3, 0.3
	cs, err := Build(ps, Params{K: 2, Eps: eps, Eta: eta, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() > 7 {
		t.Fatalf("coreset %d > 7 distinct sites", cs.Size())
	}
	ws := geo.UnitWeights(ps)

	worstUp, worstDown := 0.0, 0.0
	for a := int64(1); a <= delta; a++ {
		for b := a + 1; b <= delta; b++ {
			Z := []geo.Point{{a}, {b}}
			for _, t0 := range []float64{float64(n)/2 + 1, float64(n) * 0.6, float64(n) * 0.8, float64(n)} {
				full, _, ok1 := assign.FractionalCost(ws, Z, t0, 2)
				core, _, ok2 := assign.FractionalCost(cs.Points, Z, (1+eta)*t0, 2)
				fullRelaxed, _, ok3 := assign.FractionalCost(ws, Z, (1+eta)*(1+eta)*t0, 2)
				if !ok1 || !ok2 || !ok3 {
					t.Fatalf("infeasible at Z=%v t=%v", Z, t0)
				}
				if full > 0 {
					if r := core / full; r > worstUp {
						worstUp = r
					}
				} else if core > 1e-9 {
					t.Fatalf("zero-cost instance mis-estimated: Z=%v core=%v", Z, core)
				}
				if core > 0 {
					if r := fullRelaxed / core; r > worstDown {
						worstDown = r
					}
				}
			}
		}
	}
	// The exact Theorem 3.19 bounds with ε = 0.3.
	if worstUp > 1+eps {
		t.Fatalf("up direction violated: worst ratio %v > 1+ε", worstUp)
	}
	if worstDown > 1+eps {
		t.Fatalf("down direction violated: worst ratio %v > 1+ε", worstDown)
	}
	t.Logf("exhaustive check over 120 center sets × 4 capacities: worst up %.4f, worst down %.4f",
		worstUp, worstDown)
}

// TestStrongCoresetExhaustive2D repeats the exhaustive check on a tiny
// 2-d domain ([6]²: 630 center pairs), with a genuinely sampled coreset.
func TestStrongCoresetExhaustive2D(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive flow sweep")
	}
	const delta = 6
	var ps geo.PointSet
	// Two corners with mass, a sprinkle elsewhere.
	for i := 0; i < 30; i++ {
		ps = append(ps, geo.Point{1 + int64(i%2), 1 + int64(i%3)})
	}
	for i := 0; i < 30; i++ {
		ps = append(ps, geo.Point{5 + int64(i%2), 5 - int64(i%2)})
	}
	ps = append(ps, geo.Point{3, 3}, geo.Point{4, 2}, geo.Point{2, 5})
	n := len(ps)
	const eps, eta = 0.3, 0.3
	cs, err := Build(ps, Params{K: 2, Eps: eps, Eta: eta, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	var all geo.PointSet
	for x := int64(1); x <= delta; x++ {
		for y := int64(1); y <= delta; y++ {
			all = append(all, geo.Point{x, y})
		}
	}
	worst := 0.0
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			Z := []geo.Point{all[i], all[j]}
			t0 := math.Ceil(float64(n) * 0.6)
			full, _, ok1 := assign.FractionalCost(ws, Z, t0, 2)
			core, _, ok2 := assign.FractionalCost(cs.Points, Z, (1+eta)*t0, 2)
			if !ok1 || !ok2 {
				t.Fatalf("infeasible at Z=%v", Z)
			}
			if full > 0 {
				if r := core / full; r > worst {
					worst = r
				}
			}
		}
	}
	if worst > 1+eps {
		t.Fatalf("exhaustive 2-d up direction violated: worst %v", worst)
	}
}
