package coreset

import (
	"math"
	"testing"

	"streambalance/internal/geo"
)

// Conservative mode instantiates the paper's printed constants. Their
// union-bound magnitudes drive every sampling rate to 1 for any input
// that fits in memory, so the "coreset" must be the (deduplicated,
// multiplicity-weighted) input itself — a trivially valid strong coreset.
func TestConservativeModeKeepsEverything(t *testing.T) {
	ps, _ := mixture(31, 300)
	cs, err := Build(ps, Params{K: 3, Seed: 2, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]int{}
	for _, p := range ps {
		distinct[p.String()]++
	}
	if cs.Size() != len(distinct) {
		t.Fatalf("conservative coreset has %d points, want all %d distinct locations",
			cs.Size(), len(distinct))
	}
	if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 1e-9 {
		t.Fatalf("total weight %v, want exactly %d", w, len(ps))
	}
	for _, wp := range cs.Points {
		if wp.W != float64(distinct[wp.P.String()]) {
			t.Fatalf("weight of %v is %v, want multiplicity %d",
				wp.P, wp.W, distinct[wp.P.String()])
		}
	}
}

func TestConservativePhiSaturates(t *testing.T) {
	p, err := Params{K: 3, Conservative: true}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Even at enormous thresholds the conservative rate formula stays at
	// 1 for every physically storable T.
	for _, T := range []float64{1, 1e6, 1e12, 1e18} {
		if phi := p.Phi(T, 2, 16); phi != 1 {
			t.Fatalf("conservative Phi(T=%g) = %v, want 1", T, phi)
		}
	}
}

func TestConservativeLambdaCapped(t *testing.T) {
	p, err := Params{K: 8, Conservative: true}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if l := p.Lambda(10, 20); l != 1<<12 {
		t.Fatalf("Lambda = %d, want the 2^12 cap", l)
	}
}

func TestConservativeEnumerationFromOne(t *testing.T) {
	// Conservative Build uses the paper's literal smallest-non-FAIL
	// enumeration starting at o = 1, and must still terminate with a
	// valid (if uncompressed) coreset.
	ps := geo.PointSet{{1, 1}, {5, 5}, {9, 9}, {1, 9}, {9, 1}}
	cs, err := Build(ps, Params{K: 2, Seed: 1, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 5 || cs.TotalWeight() != 5 {
		t.Fatalf("size=%d weight=%v", cs.Size(), cs.TotalWeight())
	}
}
