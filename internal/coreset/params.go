// Package coreset implements the strong coreset construction for
// capacitated k-clustering in ℓ_r: Algorithm 2 of the paper, together
// with the o-guess enumeration that turns it into the offline algorithm
// of Theorem 3.19. The streaming (Theorem 4.5) and distributed
// (Theorem 4.7) constructions in internal/stream and internal/dist reuse
// the planning logic here.
package coreset

import (
	"errors"
	"math"
)

// Params configures the coreset construction.
//
// Two regimes are supported. Conservative mode instantiates every
// constant exactly as printed in Algorithm 2 (γ, ξ, λ and the sampling
// rate φ_i with their 2^{2(r+10)} and 10^6 factors). Those constants are
// worst-case union-bound artifacts: for any input that fits in memory
// they drive φ_i to 1, i.e. the "coreset" is the entire input. The
// default practical mode keeps the full structure of the algorithm —
// hierarchical heavy-cell partition, per-part inclusion threshold
// γ·T_i(o), per-level uniform sampling rate φ_i ∝ 1/T_i(o), λ-wise
// independent sampling, FAIL-driven guess selection — and only calibrates
// the absolute constants, which is how every implementation in this line
// of work (Chen'09, BFL+17, HSYZ18) is run in practice. DESIGN.md §1
// records this substitution.
type Params struct {
	K   int     // number of clusters (k ≥ 1)
	R   float64 // ℓ_r exponent (default 2, i.e. capacitated k-means)
	Eps float64 // ε ∈ (0, 0.5): cost approximation (default 0.3)
	Eta float64 // η ∈ (0, 0.5): capacity violation (default 0.3)

	Seed int64 // seed for all randomness (grids, hashes)

	Conservative bool // paper-exact constants (coreset ≈ input for laptop n)

	// Practical-mode knobs (ignored when Conservative).
	//
	// SamplesPerPart sets the expected number of samples drawn from a
	// part of size T_i(o) (crucial cells hold < T_i(o) points each, so
	// T_i(o) is the natural part scale; smaller parts get proportionally
	// fewer samples and contribute only the additive error Lemma 3.4
	// bounds). Default 512.
	SamplesPerPart   float64
	HashIndependence int // λ of the sampling hash family (default 16)
}

var (
	errK   = errors.New("coreset: K must be >= 1")
	errEps = errors.New("coreset: Eps must be in (0, 0.5)")
	errEta = errors.New("coreset: Eta must be in (0, 0.5)")
	errR   = errors.New("coreset: R must be >= 1")
)

// Resolve fills zero fields with defaults and validates — the exported
// form of the resolution Build performs, for packages (streaming,
// distributed) that need the concrete parameter values up front.
func (p Params) Resolve() (Params, error) { return p.withDefaults() }

// withDefaults fills zero fields with defaults and validates.
func (p Params) withDefaults() (Params, error) {
	if p.R == 0 {
		p.R = 2
	}
	if p.Eps == 0 {
		p.Eps = 0.3
	}
	if p.Eta == 0 {
		p.Eta = 0.3
	}
	if p.SamplesPerPart == 0 {
		p.SamplesPerPart = 512
	}
	if p.HashIndependence == 0 {
		p.HashIndependence = 16
	}
	if p.K < 1 {
		return p, errK
	}
	if p.Eps <= 0 || p.Eps >= 0.5 {
		return p, errEps
	}
	if p.Eta <= 0 || p.Eta >= 0.5 {
		return p, errEta
	}
	if p.R < 1 {
		return p, errR
	}
	return p, nil
}

// d15r computes d^{1.5r}, the dimension factor in all of Algorithm 2's
// budgets.
func d15r(d int, r float64) float64 { return math.Pow(float64(d), 1.5*r) }

// Gamma returns γ: parts with τ(Q_{i,j}) < γ·T_i(o) are excluded (line 9
// of Algorithm 2; Lemma 3.4 shows removing them barely changes any
// capacitated cost). In conservative mode this is
// 2^{−2(r+10)}·min(η/(kL), ε/((k+d^{1.5r})L)); practical mode drops the
// 2^{−2(r+10)}.
func (p Params) Gamma(d, L int) float64 {
	k, l := float64(p.K), float64(L)
	g := math.Min(p.Eta/(k*l), p.Eps/((k+d15r(d, p.R))*l))
	if p.Conservative {
		g *= math.Exp2(-2 * (p.R + 10))
	}
	return g
}

// Xi returns ξ, the estimation accuracy parameter fed to the transferred
// assignment machinery (line 3 of Algorithm 2).
func (p Params) Xi(d, L int) float64 {
	k, l := float64(p.K), float64(L)
	x := math.Min(p.Eps, p.Eta) / (k * (k + d15r(d, p.R)) * l * l)
	if p.Conservative {
		x *= math.Exp2(-2 * (p.R + 10))
	}
	return x
}

// Lambda returns λ, the independence of the sampling hash family (line 3:
// 10^6·r·k³·d·L·⌈log(kdL)⌉ in conservative mode).
func (p Params) Lambda(d, L int) int {
	if p.Conservative {
		k := float64(p.K)
		v := 1e6 * p.R * k * k * k * float64(d) * float64(L) *
			math.Ceil(math.Log(float64(p.K*d*L)+1))
		// Evaluating a degree-λ polynomial per point per level is O(λ);
		// beyond a few thousand the independence buys nothing measurable
		// while the evaluation cost explodes, so conservative mode caps
		// the degree (the only concession it makes).
		if v > 1<<12 {
			v = 1 << 12
		}
		return int(v)
	}
	return p.HashIndependence
}

// Phi returns the level-i sampling probability φ_i given T = T_i(o)
// (line 8 of Algorithm 2). In conservative mode
// φ_i = min(1, 2^{2(r+10)}·λ/(ξ³·γ·T)) exactly as printed; practical mode
// keeps the same 1/T_i(o) shape but calibrates the numerator so a part of
// size T_i(o) yields SamplesPerPart expected samples:
// φ_i = min(1, SamplesPerPart/T).
func (p Params) Phi(T float64, d, L int) float64 {
	if T <= 0 {
		return 1
	}
	if p.Conservative {
		gamma := p.Gamma(d, L)
		xi := p.Xi(d, L)
		return math.Min(1, math.Exp2(2*(p.R+10))*float64(p.Lambda(d, L))/(xi*xi*xi*gamma*T))
	}
	return math.Min(1, p.SamplesPerPart/T)
}

// HeavyBudget is the FAIL threshold on the total number of heavy cells
// (line 5): 20000·(k + d^{1.5r})·L.
func (p Params) HeavyBudget(d, L int) float64 {
	return 20000 * (float64(p.K) + d15r(d, p.R)) * float64(L)
}

// LevelBudget is the FAIL threshold on τ(∪_j Q_{i,j}) for one level
// (line 6): 10000·(kL + d^{1.5r})·T_i(o).
func (p Params) LevelBudget(d, L int, T float64) float64 {
	return 10000 * (float64(p.K)*float64(L) + d15r(d, p.R)) * T
}
