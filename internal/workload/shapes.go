package workload

import (
	"math"
	"math/rand"

	"streambalance/internal/geo"
)

// Ring draws n points on an annulus centered mid-domain — a workload
// with no density peak, where grid-based heavy cells form a band rather
// than blobs. Exercises the partition on non-convex cluster shapes.
func Ring(rng *rand.Rand, n int, delta int64, radius, width float64) geo.PointSet {
	cx := float64(delta) / 2
	ps := make(geo.PointSet, n)
	for i := range ps {
		theta := rng.Float64() * 2 * math.Pi
		r := radius + (rng.Float64()-0.5)*width
		ps[i] = geo.Point{
			clampRound(cx+r*math.Cos(theta), delta),
			clampRound(cx+r*math.Sin(theta), delta),
		}
	}
	return ps
}

// Lattice places points on a regular sub-grid with per-site multiplicity
// — the degenerate duplicate-heavy workload that stresses the
// multiplicity folding (footnote 4) and exact weights.
func Lattice(rng *rand.Rand, sites int, delta int64, multiplicity int) geo.PointSet {
	side := int64(math.Ceil(math.Sqrt(float64(sites))))
	if side < 1 {
		side = 1
	}
	step := delta / (side + 1)
	if step < 1 {
		step = 1
	}
	ps := make(geo.PointSet, 0, sites*multiplicity)
	count := 0
	for x := int64(1); x <= side && count < sites; x++ {
		for y := int64(1); y <= side && count < sites; y++ {
			p := geo.Point{clamp(x*step, delta), clamp(y*step, delta)}
			for m := 0; m < multiplicity; m++ {
				ps = append(ps, p.Clone())
			}
			count++
		}
	}
	rng.Shuffle(len(ps), func(a, b int) { ps[a], ps[b] = ps[b], ps[a] })
	return ps
}

// Adversarial builds the "expensive sparse mass" instance that defeats
// uniform sampling: nearly all points in one tight blob, plus a handful
// of far-away singletons that dominate the clustering cost when k is
// too small to give each its own center.
func Adversarial(rng *rand.Rand, n int, delta int64, outliers int) geo.PointSet {
	blob, _ := TwoBlobs(rng, n-outliers, delta, 1.0, float64(delta)/200)
	ps := blob
	for i := 0; i < outliers; i++ {
		// Corners and edges, far from the blob.
		p := geo.Point{
			clamp(int64(rng.Intn(2))*(delta-1)+1, delta),
			clamp(rng.Int63n(delta)+1, delta),
		}
		ps = append(ps, p)
	}
	rng.Shuffle(len(ps), func(a, b int) { ps[a], ps[b] = ps[b], ps[a] })
	return ps
}

func clamp(v, delta int64) int64 {
	if v < 1 {
		return 1
	}
	if v > delta {
		return delta
	}
	return v
}
