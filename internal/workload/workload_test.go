package workload

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func TestMixtureBasics(t *testing.T) {
	m := Mixture{N: 1000, D: 3, Delta: 1024, K: 4, Spread: 10}
	ps, centers := m.Generate(rand.New(rand.NewSource(1)))
	if len(ps) != 1000 || len(centers) != 4 {
		t.Fatalf("n=%d k=%d", len(ps), len(centers))
	}
	for _, p := range ps {
		if !p.InRange(1024) {
			t.Fatalf("point out of range: %v", p)
		}
		if len(p) != 3 {
			t.Fatalf("wrong dimension: %v", p)
		}
	}
}

func TestMixtureDeterministic(t *testing.T) {
	m := Mixture{N: 100, D: 2, Delta: 256, K: 3, Spread: 5}
	a, _ := m.Generate(rand.New(rand.NewSource(7)))
	b, _ := m.Generate(rand.New(rand.NewSource(7)))
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed must reproduce the workload")
		}
	}
}

func TestMixtureClusters(t *testing.T) {
	// Points should be near their component means: average distance to
	// the nearest true center ≪ the domain scale.
	m := Mixture{N: 2000, D: 2, Delta: 4096, K: 3, Spread: 8}
	ps, centers := m.Generate(rand.New(rand.NewSource(2)))
	var sum float64
	for _, p := range ps {
		d, _ := geo.DistToSet(p, centers)
		sum += d
	}
	avg := sum / float64(len(ps))
	if avg > 8*4 { // a few standard deviations
		t.Fatalf("average distance to true center %v too large for spread 8", avg)
	}
}

func TestMixtureSkew(t *testing.T) {
	m := Mixture{N: 5000, D: 2, Delta: 4096, K: 3, Spread: 5, Skew: 3}
	ps, centers := m.Generate(rand.New(rand.NewSource(3)))
	sizes := make([]int, 3)
	for _, p := range ps {
		_, j := geo.DistToSet(p, centers)
		sizes[j]++
	}
	// Component 0 has relative mass 1/(1+1/3+1/9) ≈ 0.69.
	if sizes[0] < len(ps)/2 {
		t.Fatalf("skewed mixture not skewed: sizes %v", sizes)
	}
}

func TestMixtureNoise(t *testing.T) {
	m := Mixture{N: 4000, D: 2, Delta: 8192, K: 2, Spread: 4, NoiseFrac: 0.3}
	ps, centers := m.Generate(rand.New(rand.NewSource(4)))
	far := 0
	for _, p := range ps {
		d, _ := geo.DistToSet(p, centers)
		if d > 100 {
			far++
		}
	}
	frac := float64(far) / float64(len(ps))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("noise fraction ≈ %v, want ≈ 0.3", frac)
	}
}

func TestUniformBox(t *testing.T) {
	ps := UniformBox(rand.New(rand.NewSource(5)), 500, 4, 64)
	if len(ps) != 500 {
		t.Fatal("wrong n")
	}
	lo, hi := geo.BoundingBox(ps)
	for c := 0; c < 4; c++ {
		if lo[c] < 1 || hi[c] > 64 {
			t.Fatalf("out of range: %v %v", lo, hi)
		}
	}
	// Spread sanity: with 500 uniform samples the bounding box should
	// nearly fill the domain.
	if hi[0]-lo[0] < 32 {
		t.Fatalf("suspiciously tight box: %v %v", lo, hi)
	}
}

func TestTwoBlobsImbalance(t *testing.T) {
	ps, centers := TwoBlobs(rand.New(rand.NewSource(6)), 3000, 1024, 0.8, 6)
	na := 0
	for _, p := range ps {
		_, j := geo.DistToSet(p, centers)
		if j == 0 {
			na++
		}
	}
	frac := float64(na) / float64(len(ps))
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("blob A fraction %v, want ≈ 0.8", frac)
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mixture{N: 0, D: 2, Delta: 16, K: 1}.Generate(rand.New(rand.NewSource(1)))
}
