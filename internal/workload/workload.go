// Package workload generates the synthetic point sets used by the test
// suite, the examples and the experiment harness: Gaussian mixtures
// (balanced and skewed), uniform boxes, and clustered data with
// background noise. All generators quantize onto the integer grid
// [1, Δ]^d the paper's algorithms operate on, and are deterministic given
// the provided rng.
package workload

import (
	"math"
	"math/rand"

	"streambalance/internal/geo"
)

// Mixture describes a Gaussian mixture workload.
type Mixture struct {
	N      int     // number of points
	D      int     // dimension
	Delta  int64   // coordinate range [1, Delta]
	K      int     // number of mixture components
	Spread float64 // per-coordinate standard deviation of each component
	// Skew controls component sizes: 0 (or 1) = balanced; larger values
	// make sizes geometric with ratio 1/Skew (component j has relative
	// mass Skew^{−j}), producing the imbalanced inputs that make balanced
	// clustering differ from ordinary clustering.
	Skew float64
	// NoiseFrac ∈ [0,1): this fraction of the points is uniform background
	// noise instead of cluster mass.
	NoiseFrac float64
}

// Generate draws the mixture. The returned centers are the true component
// means (useful as a reference solution); the point set is shuffled.
func (m Mixture) Generate(rng *rand.Rand) (geo.PointSet, []geo.Point) {
	if m.N <= 0 || m.D <= 0 || m.K <= 0 || m.Delta < 2 {
		panic("workload: invalid mixture spec")
	}
	centers := make([]geo.Point, m.K)
	for j := range centers {
		centers[j] = make(geo.Point, m.D)
		for c := 0; c < m.D; c++ {
			// Keep centers away from the boundary so the spread is not
			// clipped asymmetrically.
			lo := m.Delta / 8
			centers[j][c] = 1 + lo + rng.Int63n(m.Delta-2*lo)
		}
	}
	// Component masses.
	weights := make([]float64, m.K)
	tot := 0.0
	for j := range weights {
		if m.Skew > 1 {
			weights[j] = math.Pow(m.Skew, -float64(j))
		} else {
			weights[j] = 1
		}
		tot += weights[j]
	}
	cum := make([]float64, m.K)
	acc := 0.0
	for j := range weights {
		acc += weights[j] / tot
		cum[j] = acc
	}
	ps := make(geo.PointSet, 0, m.N)
	for i := 0; i < m.N; i++ {
		if m.NoiseFrac > 0 && rng.Float64() < m.NoiseFrac {
			ps = append(ps, UniformPoint(rng, m.D, m.Delta))
			continue
		}
		u := rng.Float64()
		j := 0
		for j < m.K-1 && u > cum[j] {
			j++
		}
		p := make(geo.Point, m.D)
		for c := 0; c < m.D; c++ {
			v := float64(centers[j][c]) + rng.NormFloat64()*m.Spread
			p[c] = clampRound(v, m.Delta)
		}
		ps = append(ps, p)
	}
	rng.Shuffle(len(ps), func(a, b int) { ps[a], ps[b] = ps[b], ps[a] })
	return ps, centers
}

// UniformPoint draws a uniform point of [1, delta]^d.
func UniformPoint(rng *rand.Rand, d int, delta int64) geo.Point {
	p := make(geo.Point, d)
	for c := range p {
		p[c] = 1 + rng.Int63n(delta)
	}
	return p
}

// UniformBox draws n uniform points of [1, delta]^d.
func UniformBox(rng *rand.Rand, n, d int, delta int64) geo.PointSet {
	ps := make(geo.PointSet, n)
	for i := range ps {
		ps[i] = UniformPoint(rng, d, delta)
	}
	return ps
}

// TwoBlobs is the canonical imbalanced instance from the balanced
// clustering literature: fracA of the mass in one tight blob, the rest in
// another — under a capacity of n/2 per center, roughly fracA−1/2 of the
// mass must migrate, so capacitated and ordinary clustering genuinely
// differ.
func TwoBlobs(rng *rand.Rand, n int, delta int64, fracA, spread float64) (geo.PointSet, []geo.Point) {
	ca := geo.Point{delta / 4, delta / 4}
	cb := geo.Point{3 * delta / 4, 3 * delta / 4}
	ps := make(geo.PointSet, 0, n)
	for i := 0; i < n; i++ {
		c := cb
		if rng.Float64() < fracA {
			c = ca
		}
		p := geo.Point{
			clampRound(float64(c[0])+rng.NormFloat64()*spread, delta),
			clampRound(float64(c[1])+rng.NormFloat64()*spread, delta),
		}
		ps = append(ps, p)
	}
	return ps, []geo.Point{ca, cb}
}

func clampRound(v float64, delta int64) int64 {
	r := int64(math.Round(v))
	if r < 1 {
		return 1
	}
	if r > delta {
		return delta
	}
	return r
}
