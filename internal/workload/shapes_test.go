package workload

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func TestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := Ring(rng, 1000, 1024, 300, 20)
	if len(ps) != 1000 {
		t.Fatal("wrong n")
	}
	center := geo.Point{512, 512}
	for _, p := range ps {
		if !p.InRange(1024) {
			t.Fatalf("out of range: %v", p)
		}
		r := geo.Dist(p, center)
		if r < 300-15 || r > 300+15 {
			t.Fatalf("point %v at radius %v, want ≈ 300±10", p, r)
		}
	}
}

func TestLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := Lattice(rng, 25, 1024, 4)
	if len(ps) != 100 {
		t.Fatalf("n = %d, want 25×4", len(ps))
	}
	counts := map[string]int{}
	for _, p := range ps {
		if !p.InRange(1024) {
			t.Fatalf("out of range: %v", p)
		}
		counts[p.String()]++
	}
	if len(counts) != 25 {
		t.Fatalf("distinct sites %d, want 25", len(counts))
	}
	for s, c := range counts {
		if c != 4 {
			t.Fatalf("site %s multiplicity %d, want 4", s, c)
		}
	}
}

func TestAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := Adversarial(rng, 2000, 4096, 10)
	if len(ps) != 2000 {
		t.Fatal("wrong n")
	}
	// The blob sits at (Δ/4, Δ/4); count points far from it.
	blobCenter := geo.Point{1024, 1024}
	far := 0
	for _, p := range ps {
		if geo.Dist(p, blobCenter) > 1000 {
			far++
		}
	}
	if far < 5 || far > 30 {
		t.Fatalf("far points = %d, want ≈ 10 outliers", far)
	}
}

func TestAdversarialDefeatsUniformIntuition(t *testing.T) {
	// Sanity that the instance does what it claims: the outliers carry a
	// macroscopic fraction of the 1-center cost.
	rng := rand.New(rand.NewSource(4))
	ps := Adversarial(rng, 3000, 4096, 8)
	blobCenter := geo.Point{1024, 1024}
	var total, outlierCost float64
	for _, p := range ps {
		c := geo.DistSq(p, blobCenter)
		total += c
		if math.Sqrt(c) > 1000 {
			outlierCost += c
		}
	}
	if outlierCost < 0.3*total {
		t.Fatalf("outliers carry only %.0f%% of the cost — instance too tame",
			100*outlierCost/total)
	}
}
