package baseline

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func TestUniformWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := workload.UniformBox(rng, 1000, 2, 256)
	cs := Uniform(rng, ps, 100)
	if len(cs) != 100 {
		t.Fatalf("size = %d", len(cs))
	}
	if w := geo.TotalWeight(cs); math.Abs(w-1000) > 1e-9 {
		t.Fatalf("total weight %v", w)
	}
	// Sampling without replacement: all distinct indices (points may
	// coincide only if the input had duplicates, which UniformBox makes
	// unlikely but possible — check weights instead).
	for _, c := range cs {
		if c.W != 10 {
			t.Fatalf("weight %v, want 10", c.W)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := geo.PointSet{{1, 1}, {2, 2}}
	cs := Uniform(rng, ps, 10)
	if len(cs) != 2 || cs[0].W != 1 {
		t.Fatal("m ≥ n must return the input with unit weights")
	}
}

func TestUniformPreservesCostOnEasyData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, truec := workload.Mixture{N: 8000, D: 2, Delta: 4096, K: 3, Spread: 10}.Generate(rng)
	cs := Uniform(rng, ps, 800)
	full := assign.UnconstrainedCost(geo.UnitWeights(ps), truec, 2)
	core := assign.UnconstrainedCost(cs, truec, 2)
	if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("uniform sampling off even on benign data: ratio %v", ratio)
	}
}

func TestThreePassBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps, _ := workload.Mixture{N: 5000, D: 2, Delta: 4096, K: 3, Spread: 8}.Generate(rng)
	res, err := ThreePass(ps, 3, 2, 4096, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 3 {
		t.Fatalf("passes = %d", res.Passes)
	}
	if res.Pivots == 0 || res.Pivots > 3000 {
		t.Fatalf("pivot count %d out of range", res.Pivots)
	}
	if w := geo.TotalWeight(res.Coreset); math.Abs(w-5000) > 1e-6 {
		t.Fatalf("mapped mass %v, want 5000 exactly", w)
	}
	if res.MaxMoveR <= 0 {
		t.Fatal("mapping radius must be positive on non-degenerate data")
	}
}

func TestThreePassQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, truec := workload.Mixture{N: 6000, D: 2, Delta: 4096, K: 3, Spread: 8}.Generate(rng)
	res, err := ThreePass(ps, 3, 2, 4096, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	full := assign.UnconstrainedCost(geo.UnitWeights(ps), truec, 2)
	core := assign.UnconstrainedCost(res.Coreset, truec, 2)
	// A mapping coreset distorts costs by the movement cost; allow a wide
	// band but require the right order of magnitude.
	if ratio := core / full; ratio < 0.3 || ratio > 3 {
		t.Fatalf("3-pass cost ratio %v", ratio)
	}
}

func TestThreePassPointsAreMovedNotSubset(t *testing.T) {
	// The structural difference from the paper's coreset: mapped weights
	// concentrate on few pivots, so generally |coreset| ≪ distinct inputs
	// and some mass sits at a location with multiplicity ≫ 1.
	rng := rand.New(rand.NewSource(6))
	ps, _ := workload.Mixture{N: 4000, D: 2, Delta: 2048, K: 2, Spread: 6}.Generate(rng)
	res, err := ThreePass(ps, 2, 2, 2048, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for _, c := range res.Coreset {
		if c.W > 5 {
			big++
		}
	}
	if big == 0 {
		t.Fatal("expected concentrated pivot weights in a mapping coreset")
	}
}

func TestThreePassEmptyInput(t *testing.T) {
	if _, err := ThreePass(nil, 2, 2, 16, 10, 1); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestThreePassDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps, _ := workload.Mixture{N: 2000, D: 2, Delta: 1024, K: 2, Spread: 5}.Generate(rng)
	a, _ := ThreePass(ps, 2, 2, 1024, 200, 42)
	b, _ := ThreePass(ps, 2, 2, 1024, 200, 42)
	if a.Pivots != b.Pivots {
		t.Fatalf("nondeterministic: %d vs %d pivots", a.Pivots, b.Pivots)
	}
}
