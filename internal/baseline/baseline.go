// Package baseline implements the comparison points for the paper's
// coreset: plain uniform sampling, and a three-pass insertion-only
// mapping coreset in the style of [BBLM14] ("Distributed balanced
// clustering via mapping coresets") — the only previously known streaming
// approach to capacitated clustering, which the paper's introduction
// contrasts against (three passes, insertion-only, large hidden
// constants). The [BBLM14] construction is described at the level of
// "compute pivots, map points to pivots"; this implementation realizes it
// with Meyerson-style online facility location for the pivot pass, the
// standard practical instantiation.
package baseline

import (
	"errors"
	"math"
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/solve"
)

// Uniform draws a uniform sample of m points (without replacement) and
// weights each by n/m — the naive coreset every sampling scheme is
// measured against. It is unbiased for uncapacitated costs but has no
// per-part variance control, so sparse-but-expensive regions are easily
// missed.
func Uniform(rng *rand.Rand, ps geo.PointSet, m int) []geo.Weighted {
	n := len(ps)
	if m >= n {
		return geo.UnitWeights(ps)
	}
	perm := rng.Perm(n)
	out := make([]geo.Weighted, m)
	w := float64(n) / float64(m)
	for i := 0; i < m; i++ {
		out[i] = geo.Weighted{P: ps[perm[i]], W: w}
	}
	return out
}

// ThreePassResult is the output of the mapping-coreset baseline.
type ThreePassResult struct {
	Coreset []geo.Weighted // pivots with mapped mass
	Passes  int            // always 3
	Pivots  int
	// MaxMoveR is max over points of dist^r(p, pivot(p)) — the mapping
	// radius that controls both the cost and the capacity distortion of a
	// mapping coreset.
	MaxMoveR float64
}

// ThreePass builds a [BBLM14]-style mapping coreset over an
// insertion-only stream, reading the input exactly three times:
//
//	pass 1: reservoir-sample, estimate OPT (the facility cost scale);
//	pass 2: Meyerson online facility location selects pivots;
//	pass 3: map every point to its nearest pivot, accumulating weights.
//
// targetPivots bounds the pivot count; when the pivot set overflows, the
// facility cost doubles (the classic guess-doubling), coarsening later
// pivots. The result is a mapping coreset: points are MOVED to pivots
// (Q′ ⊄ Q), so capacities are preserved only up to the mapping radius —
// one of the structural weaknesses relative to the paper's subset coreset.
//
// Deletions are fundamentally unsupported: passes 2 and 3 depend on the
// prefix of insertions seen so far, which is exactly the limitation
// Theorem 4.5 removes.
func ThreePass(ps geo.PointSet, k int, r float64, delta int64, targetPivots int, seed int64) (*ThreePassResult, error) {
	n := len(ps)
	if n == 0 {
		return nil, errors.New("baseline: empty input")
	}
	if targetPivots < k {
		targetPivots = k
	}
	rng := rand.New(rand.NewSource(seed))

	// ---- Pass 1: reservoir sample → OPT estimate. ----
	const reservoirSize = 1000
	reservoir := make(geo.PointSet, 0, reservoirSize)
	for i, p := range ps { // single forward pass
		if len(reservoir) < reservoirSize {
			reservoir = append(reservoir, p)
		} else if j := rng.Intn(i + 1); j < reservoirSize {
			reservoir[j] = p
		}
	}
	est := solve.EstimateOPT(rng, geo.UnitWeights(reservoir), k, r, delta, 2) *
		float64(n) / float64(len(reservoir))
	if est <= 0 {
		est = 1
	}

	// ---- Pass 2: Meyerson online facility location. ----
	// Facility cost f = OPT/(k·(1+log n)) gives O(k log n) facilities in
	// expectation when the guess is right.
	f := est / (float64(k) * (1 + math.Log(float64(n)+1)))
	var pivots geo.PointSet
	for _, p := range ps { // single forward pass
		if len(pivots) == 0 {
			pivots = append(pivots, p)
			continue
		}
		d, _ := geo.DistToSet(p, pivots)
		dr := geo.PowR(d, r)
		if rng.Float64() < math.Min(1, dr/f) {
			pivots = append(pivots, p)
			if len(pivots) > targetPivots {
				f *= 2 // guess doubling: coarsen subsequent pivots
			}
		}
	}

	// ---- Pass 3: map mass onto pivots. ----
	w := make([]float64, len(pivots))
	maxMove := 0.0
	for _, p := range ps { // single forward pass
		d, j := geo.DistToSet(p, pivots)
		w[j]++
		if dr := geo.PowR(d, r); dr > maxMove {
			maxMove = dr
		}
	}
	out := make([]geo.Weighted, 0, len(pivots))
	for j, piv := range pivots {
		if w[j] > 0 {
			out = append(out, geo.Weighted{P: piv, W: w[j]})
		}
	}
	return &ThreePassResult{Coreset: out, Passes: 3, Pivots: len(out), MaxMoveR: maxMove}, nil
}
