package estimate

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/partition"
	"streambalance/internal/workload"
)

func fixture(t *testing.T, seed int64, n int) (*grid.Grid, geo.PointSet, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps, truec := workload.Mixture{N: n, D: 2, Delta: 1 << 10, K: 3, Spread: 9, Skew: 2}.Generate(rng)
	g := grid.New(1<<10, 2, rng)
	// A legitimate o: the cost at the true centers over 4.
	var opt float64
	for _, p := range ps {
		d, _ := geo.DistToSet(p, truec)
		opt += d * d
	}
	return g, ps, opt / 4
}

func TestLemma41CellEstimatesGood(t *testing.T) {
	// Lemma 4.1 / Definition 3.1: with the prescribed rates, every cell
	// estimate is within ±0.1·T_i(o) or 1±10% (the paper's 1±1% needs
	// the 10⁶λ′ rate; the practical 256/T rate gives the 10% band, which
	// is what the heavy-marking thresholds tolerate — the same relaxation
	// internal/stream runs with).
	g, ps, o := fixture(t, 1, 6000)
	rng := rand.New(rand.NewSource(2))
	e := New(rng, g, Config{O: o, R: 2})
	for _, p := range ps {
		e.Insert(p)
	}
	exact := partition.ExactCounts(g, ps)
	bad, total := 0, 0
	for level := 0; level <= g.L; level++ {
		T := partition.ThresholdT(g, level, o, 2)
		est := e.Counts(level)
		for key, ct := range exact[level+1] {
			total++
			got := est[key].Tau // zero if never sampled
			if !GoodCell(got, ct.Tau, T, 0.35) {
				bad++
			}
		}
	}
	if total == 0 {
		t.Fatal("no cells")
	}
	// Lemma 4.1 promises goodness w.h.p. per cell; allow a small tail.
	if frac := float64(bad) / float64(total); frac > 0.02 {
		t.Fatalf("%.2f%% of %d cell estimates bad", 100*frac, total)
	}
}

func TestEstimatorDeletionsExact(t *testing.T) {
	g, ps, o := fixture(t, 3, 3000)
	rng := rand.New(rand.NewSource(4))
	e := New(rng, g, Config{O: o, R: 2})
	refRng := rand.New(rand.NewSource(4))
	ref := New(refRng, g, Config{O: o, R: 2})

	// e sees everything plus junk-then-deleted; ref sees only survivors.
	junk := workload.UniformBox(rng, 3000, 2, 1<<10)
	for i, p := range ps {
		e.Insert(p)
		ref.Insert(p)
		e.Insert(junk[i])
	}
	for _, p := range junk {
		e.Delete(p)
	}
	if e.N() != ref.N() {
		t.Fatalf("N: %d vs %d", e.N(), ref.N())
	}
	for level := 0; level <= g.L; level++ {
		got := e.Counts(level)
		want := ref.Counts(level)
		if len(got) != len(want) {
			t.Fatalf("level %d: %d vs %d cells after cancellation", level, len(got), len(want))
		}
		for k, v := range want {
			if math.Abs(got[k].Tau-v.Tau) > 1e-9 {
				t.Fatalf("level %d cell %d: %v vs %v", level, k, got[k].Tau, v.Tau)
			}
		}
	}
}

func TestEstimatorDrivesPartition(t *testing.T) {
	// The estimator's outputs must plug into BuildLazy and yield a
	// partition close to the exact one: the same coverage and similar
	// heavy-cell counts.
	g, ps, o := fixture(t, 5, 5000)
	rng := rand.New(rand.NewSource(6))
	gamma := 0.005
	e := New(rng, g, Config{O: o, R: 2, Gamma: gamma})
	for _, p := range ps {
		e.Insert(p)
	}
	est, err := partition.BuildLazy(g, 2, o,
		func(level int) (map[uint64]partition.CellTau, bool) { return e.Counts(level), true },
		func(level int) (map[uint64]partition.CellTau, bool) { return e.PartCounts(level), true },
	)
	if err != nil {
		t.Fatal(err)
	}
	exact := partition.Build(partition.Input{
		Grid: g, R: 2, O: o, Counts: partition.ExactCounts(g, ps),
	})
	covered := 0
	for _, p := range ps {
		if _, ok := est.PartOf(p); ok {
			covered++
		}
	}
	if float64(covered) < 0.98*float64(len(ps)) {
		t.Fatalf("estimated partition covers only %d/%d points", covered, len(ps))
	}
	he, hx := est.HeavyCount(), exact.HeavyCount()
	if he < hx/3 || he > hx*3 {
		t.Fatalf("estimated heavy cells %d far from exact %d", he, hx)
	}
}

func TestPartCountsDisabled(t *testing.T) {
	g, _, o := fixture(t, 7, 100)
	e := New(rand.New(rand.NewSource(8)), g, Config{O: o, R: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.PartCounts(0)
}

func TestGoodCell(t *testing.T) {
	if !GoodCell(10, 10, 100, 0.01) {
		t.Fatal("exact must be good")
	}
	if !GoodCell(15, 10, 100, 0.01) {
		t.Fatal("within 0.1T must be good")
	}
	if !GoodCell(1010, 1000, 1, 0.01) {
		t.Fatal("within 1% must be good")
	}
	if GoodCell(1200, 1000, 1, 0.01) {
		t.Fatal("12% off with tiny T must be bad")
	}
}

func TestRootCountExact(t *testing.T) {
	g, ps, o := fixture(t, 9, 500)
	e := New(rand.New(rand.NewSource(10)), g, Config{O: o, R: 2})
	for _, p := range ps {
		e.Insert(p)
	}
	root := e.Counts(-1)
	if len(root) != 1 {
		t.Fatal("root must be a single cell")
	}
	for _, ct := range root {
		if ct.Tau != 500 {
			t.Fatalf("root count %v", ct.Tau)
		}
	}
}
