// Package estimate implements Algorithm 3 of the paper — "Estimation of
// Number of Points via Sampling": λ′-wise independent subsampling of the
// point set at per-level rates
//
//	ψ_i  = min(1, C /T_i(o))       for the cell counts τ(C ∩ Q), and
//	ψ′_i = min(1, C′/(γ·T_i(o)))   for the part masses τ(Q_{i,j}),
//
// with estimates hits/ψ. Lemma 4.1 shows the estimates are "good" in the
// sense of Definitions 3.1 and 3.5: each is within ±0.1·T_i(o) (resp.
// ±0.1·γT_i(o)) or within 1±10% relative. The dynamic streaming
// algorithm (internal/stream) runs exactly this estimator through
// sparse-recovery sketches; this package is the direct map-backed form,
// usable offline when memory allows but exact counting is too slow, and
// as the reference the sketch path is tested against.
package estimate

import (
	"math"
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/partition"
)

// Config calibrates the sampler.
type Config struct {
	O     float64 // the guess of OPT^{(r)}_{k-clus}
	R     float64 // ℓ_r exponent
	Gamma float64 // the part-inclusion γ (for the ψ′ family); 0 disables it
	// Rate numerators; paper value 10⁶λ′ for both, practical defaults
	// 256 and 64 (matching internal/stream).
	CountRate float64
	PartRate  float64
	Lambda    int // hash independence (default 16)
}

// Estimator maintains per-level sampled cell counts under insertions and
// deletions.
type Estimator struct {
	g   *grid.Grid
	cfg Config

	fp    *hashing.Fingerprint
	samp  []*hashing.Bernoulli // ψ family, levels 0..L
	sampP []*hashing.Bernoulli // ψ′ family (nil when Gamma == 0)
	rate  []float64
	rateP []float64

	cells  []map[uint64]*cellAcc // hit counts per level (ψ family)
	cellsP []map[uint64]*cellAcc // hit counts per level (ψ′ family)
	n      int64
}

type cellAcc struct {
	index []int64
	hits  float64
}

// New creates an estimator over grid g.
func New(rng *rand.Rand, g *grid.Grid, cfg Config) *Estimator {
	if cfg.CountRate == 0 {
		cfg.CountRate = 256
	}
	if cfg.PartRate == 0 {
		cfg.PartRate = 64
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 16
	}
	if cfg.R == 0 {
		cfg.R = 2
	}
	L := g.L
	e := &Estimator{
		g: g, cfg: cfg,
		fp:    hashing.NewFingerprint(rng),
		samp:  make([]*hashing.Bernoulli, L+1),
		rate:  make([]float64, L+1),
		cells: make([]map[uint64]*cellAcc, L+1),
	}
	if cfg.Gamma > 0 {
		e.sampP = make([]*hashing.Bernoulli, L+1)
		e.rateP = make([]float64, L+1)
		e.cellsP = make([]map[uint64]*cellAcc, L+1)
	}
	for i := 0; i <= L; i++ {
		T := partition.ThresholdT(g, i, cfg.O, cfg.R)
		e.rate[i] = math.Min(1, cfg.CountRate/T)
		e.samp[i] = hashing.NewBernoulli(rng, cfg.Lambda, e.rate[i])
		e.cells[i] = map[uint64]*cellAcc{}
		if cfg.Gamma > 0 {
			e.rateP[i] = math.Min(1, cfg.PartRate/(cfg.Gamma*T))
			e.sampP[i] = hashing.NewBernoulli(rng, cfg.Lambda, e.rateP[i])
			e.cellsP[i] = map[uint64]*cellAcc{}
		}
	}
	return e
}

// Insert observes (p, +).
func (e *Estimator) Insert(p geo.Point) { e.update(p, 1) }

// Delete observes (p, −).
func (e *Estimator) Delete(p geo.Point) { e.update(p, -1) }

func (e *Estimator) update(p geo.Point, delta float64) {
	e.n += int64(delta)
	key := e.fp.Key(p)
	for i := 0; i <= e.g.L; i++ {
		if e.samp[i].Sample(key) {
			e.bump(e.cells[i], p, i, delta)
		}
		if e.sampP != nil && e.sampP[i].Sample(key) {
			e.bump(e.cellsP[i], p, i, delta)
		}
	}
}

func (e *Estimator) bump(m map[uint64]*cellAcc, p geo.Point, level int, delta float64) {
	ck := e.g.CellKey(p, level)
	acc := m[ck]
	if acc == nil {
		acc = &cellAcc{index: e.g.CellIndex(p, level)}
		m[ck] = acc
	}
	acc.hits += delta
	if acc.hits <= 0 {
		delete(m, ck)
	}
}

// N returns the exact net count (one counter, per Algorithm 4).
func (e *Estimator) N() int64 { return e.n }

// Counts returns the τ(C ∩ Q) estimates for one level (the ψ family),
// in the form partition.BuildLazy consumes. Level −1 is the exact root.
func (e *Estimator) Counts(level int) map[uint64]partition.CellTau {
	return e.export(level, e.cells, e.rate)
}

// PartCounts returns the τ(Q_{i,j}) estimate source (ψ′ family); it
// panics if Gamma was 0.
func (e *Estimator) PartCounts(level int) map[uint64]partition.CellTau {
	if e.cellsP == nil {
		panic("estimate: part estimates disabled (Gamma == 0)")
	}
	return e.export(level, e.cellsP, e.rateP)
}

func (e *Estimator) export(level int, maps []map[uint64]*cellAcc, rates []float64) map[uint64]partition.CellTau {
	if level == -1 {
		idx := make([]int64, e.g.Dim)
		return map[uint64]partition.CellTau{
			e.g.KeyOf(-1, idx): {Index: idx, Tau: float64(e.n)},
		}
	}
	src := maps[level]
	out := make(map[uint64]partition.CellTau, len(src))
	for k, acc := range src {
		out[k] = partition.CellTau{Index: acc.index, Tau: acc.hits / rates[level]}
	}
	return out
}

// GoodCell reports whether an estimate satisfies Definition 3.1 relative
// to the exact count and the level threshold: within ±0.1·T or within
// 1±0.1 relative (the paper uses 1±0.01 for cells; 1±0.1 for parts —
// the caller picks the slack).
func GoodCell(estimate, exact, T, relSlack float64) bool {
	if math.Abs(estimate-exact) <= 0.1*T {
		return true
	}
	return math.Abs(estimate-exact) <= relSlack*exact
}
