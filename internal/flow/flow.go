// Package flow implements min-cost max-flow via successive shortest
// paths with Johnson potentials (Dijkstra augmentation). It is the
// optimization substrate behind capacitated assignment (Section 3.3 uses
// minimum-cost flow both to solve the fractional weighted assignment and
// to canonicalize integral assignments before the half-space switching
// argument).
//
// Capacities and costs are float64. On transportation-shaped networks —
// source → points → centers → sink, which is the only shape the rest of
// the repository builds — every augmentation permanently saturates a
// source or sink arc, so the number of augmentations is at most
// #points + #centers and real-valued capacities terminate exactly like
// integral ones.
package flow

import (
	"math"
)

// Eps is the residual-capacity tolerance: arcs with residual below Eps are
// treated as saturated, absorbing float64 rounding from repeated
// augmentations.
const Eps = 1e-9

type edge struct {
	to   int
	rev  int // index of the reverse edge in adj[to]
	cap  float64
	cost float64
	flow float64
	id   int // external id; -1 for reverse edges
}

// Graph is a directed flow network.
type Graph struct {
	n     int
	adj   [][]edge
	edges int // number of external edges added
}

// NewGraph creates a network with n nodes, numbered 0..n−1.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed arc from→to with the given capacity and
// per-unit cost, returning its id for later Flow lookups. Costs must be
// ≥ 0 for the Dijkstra-based solver (all clustering costs are).
func (g *Graph) AddEdge(from, to int, capacity, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic("flow: node out of range")
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	if cost < 0 {
		panic("flow: negative cost (Dijkstra potentials require cost ≥ 0)")
	}
	id := g.edges
	g.edges++
	g.adj[from] = append(g.adj[from], edge{to: to, rev: len(g.adj[to]), cap: capacity, cost: cost, id: id})
	g.adj[to] = append(g.adj[to], edge{to: from, rev: len(g.adj[from]) - 1, cap: 0, cost: -cost, id: -1})
	return id
}

// Flow returns the flow currently routed on the external edge with the
// given id (as returned by AddEdge).
func (g *Graph) Flow(id int) float64 {
	for u := range g.adj {
		for i := range g.adj[u] {
			if g.adj[u][i].id == id {
				return g.adj[u][i].flow
			}
		}
	}
	panic("flow: unknown edge id")
}

// FlowsByID returns a slice indexed by edge id holding each edge's flow.
func (g *Graph) FlowsByID() []float64 {
	out := make([]float64, g.edges)
	for u := range g.adj {
		for i := range g.adj[u] {
			if e := &g.adj[u][i]; e.id >= 0 {
				out[e.id] = e.flow
			}
		}
	}
	return out
}

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	node int
	dist float64
}

// pqueue is a typed binary min-heap on dist. It replaces the former
// container/heap queue: no interface{} boxing on push/pop, and the
// backing array is allocated once per MinCostFlow call and reused across
// all Dijkstra rounds — the queue is the hot allocation site of the
// solver, exercised once per (point, center) arc per augmentation.
type pqueue []pqItem

func (q *pqueue) push(it pqItem) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*q = h
}

func (q *pqueue) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].dist < h[c].dist {
			c = r
		}
		if h[i].dist <= h[c].dist {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	*q = h
	return top
}

// MinCostFlow pushes up to maxFlow units from s to t along successive
// shortest paths, returning the total flow routed and its total cost.
// Pass math.Inf(1) as maxFlow for a max-flow computation.
func (g *Graph) MinCostFlow(s, t int, maxFlow float64) (flow, cost float64) {
	if s == t {
		return 0, 0
	}
	pot := make([]float64, g.n) // Johnson potentials; costs are ≥ 0 initially
	dist := make([]float64, g.n)
	visited := make([]bool, g.n)
	prevNode := make([]int, g.n)
	prevEdge := make([]int, g.n)
	q := make(pqueue, 0, g.n)

	for flow < maxFlow-Eps || maxFlow == math.Inf(1) {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			visited[i] = false
		}
		dist[s] = 0
		q = append(q[:0], pqItem{node: s, dist: 0})
		for len(q) > 0 {
			it := q.pop()
			u := it.node
			if visited[u] {
				continue
			}
			visited[u] = true
			for i := range g.adj[u] {
				e := &g.adj[u][i]
				if e.cap-e.flow <= Eps || visited[e.to] {
					continue
				}
				nd := dist[u] + e.cost + pot[u] - pot[e.to]
				if nd < dist[e.to]-1e-15 {
					dist[e.to] = nd
					prevNode[e.to] = u
					prevEdge[e.to] = i
					q.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		if !visited[t] {
			break // no augmenting path
		}
		for i := range pot {
			if visited[i] {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		if maxFlow == math.Inf(1) {
			push = math.Inf(1)
		}
		for v := t; v != s; v = prevNode[v] {
			e := &g.adj[prevNode[v]][prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
		}
		if push <= Eps {
			break
		}
		for v := t; v != s; v = prevNode[v] {
			e := &g.adj[prevNode[v]][prevEdge[v]]
			e.flow += push
			rev := &g.adj[v][e.rev]
			rev.flow -= push
			cost += push * e.cost
		}
		flow += push
	}
	return flow, cost
}
