// Package flow implements min-cost max-flow via successive shortest
// paths with Johnson potentials (Dijkstra augmentation). It is the
// optimization substrate behind capacitated assignment (Section 3.3 uses
// minimum-cost flow both to solve the fractional weighted assignment and
// to canonicalize integral assignments before the half-space switching
// argument).
//
// Capacities and costs are float64. On transportation-shaped networks —
// source → points → centers → sink, which is the only shape the rest of
// the repository builds — every augmentation permanently saturates a
// source or sink arc, so the number of augmentations is at most
// #points + #centers and real-valued capacities terminate exactly like
// integral ones.
//
// The many-solves-one-dataset pattern of the evaluation suite is served
// by two reuse mechanisms (DESIGN.md §7):
//
//   - a graph arena: Reset reshapes a Graph in place retaining all arc
//     storage, and SetCost/SetCap rewrite individual arcs, so the
//     bipartite skeleton is built once per point set and only costs
//     (new center set) or sink capacities (new capacity) change between
//     solves;
//   - a Solver workspace holding the potentials, Dijkstra arrays and the
//     heap backing array across solves, including a warm restart
//     (ReoptimizeGrownCaps) for sweeps that only ever raise capacities.
package flow

import (
	"fmt"
	"math"

	"streambalance/internal/obs"
)

// Telemetry handles (internal/obs). Pivot and round counts are
// accumulated locally inside each solve and published with one atomic
// Add at the end, so the augmentation loop itself stays untouched.
var (
	mFlowSolves  = obs.C("flow_solves_total")
	mFlowPivots  = obs.C("flow_pivots_total")
	mFlowReopts  = obs.C("flow_reopt_total")
	mFlowRounds  = obs.C("flow_cancel_rounds_total")
	mFlowExhaust = obs.C("flow_reopt_exhausted_total")
	mFlowSolveNS = obs.H("flow_solve_ns")
)

// Eps is the residual-capacity tolerance: arcs with residual below Eps are
// treated as saturated, absorbing float64 rounding from repeated
// augmentations.
const Eps = 1e-9

type edge struct {
	to   int
	rev  int // index of the reverse edge in adj[to]
	cap  float64
	cost float64
	flow float64
	id   int // external id; -1 for reverse edges
}

// arcLoc records where the forward half of an external edge lives, so
// Flow/SetCost/SetCap are O(1) instead of scanning the adjacency lists.
type arcLoc struct {
	from, idx int
}

// Graph is a directed flow network.
type Graph struct {
	n     int
	adj   [][]edge
	edges int      // number of external edges added
	loc   []arcLoc // loc[id] = position of edge id's forward half
}

// NewGraph creates a network with n nodes, numbered 0..n−1.
func NewGraph(n int) *Graph {
	g := &Graph{}
	g.Reset(n)
	return g
}

// Reset reshapes g to n nodes with no arcs, retaining all backing
// storage (adjacency slabs, the id→location index) so a skeleton of the
// same shape can be rebuilt without allocation. All previously returned
// arc ids become invalid; flows, capacities and costs of the old arcs
// are discarded with them.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("flow: negative node count")
	}
	if n <= cap(g.adj) {
		g.adj = g.adj[:cap(g.adj)]
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	if n <= cap(g.adj) {
		g.adj = g.adj[:n]
	} else {
		next := make([][]edge, n)
		copy(next, g.adj)
		g.adj = next
	}
	g.n = n
	g.edges = 0
	g.loc = g.loc[:0]
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Arcs returns the number of external arcs added since the last Reset.
func (g *Graph) Arcs() int { return g.edges }

// AddEdge adds a directed arc from→to with the given capacity and
// per-unit cost, returning its id for later Flow/SetCost/SetCap lookups.
// Costs must be ≥ 0 for the Dijkstra-based solver (all clustering costs
// are).
func (g *Graph) AddEdge(from, to int, capacity, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic("flow: node out of range")
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %g on arc %d→%d", capacity, from, to))
	}
	if cost < 0 {
		panic(fmt.Sprintf("flow: negative cost %g on arc %d→%d (Dijkstra potentials require cost ≥ 0)", cost, from, to))
	}
	id := g.edges
	g.edges++
	g.adj[from] = append(g.adj[from], edge{to: to, rev: len(g.adj[to]), cap: capacity, cost: cost, id: id})
	g.adj[to] = append(g.adj[to], edge{to: from, rev: len(g.adj[from]) - 1, cap: 0, cost: -cost, id: -1})
	g.loc = append(g.loc, arcLoc{from: from, idx: len(g.adj[from]) - 1})
	return id
}

// arc returns the forward half of the external edge with the given id.
func (g *Graph) arc(id int) *edge {
	if id < 0 || id >= len(g.loc) {
		panic("flow: unknown edge id")
	}
	l := g.loc[id]
	return &g.adj[l.from][l.idx]
}

// SetCost rewrites the per-unit cost of an existing arc (both residual
// directions), leaving capacity and flow untouched. Costs must stay ≥ 0.
func (g *Graph) SetCost(id int, cost float64) {
	e := g.arc(id)
	if cost < 0 {
		panic(fmt.Sprintf("flow: negative cost %g on arc %d→%d (Dijkstra potentials require cost ≥ 0)",
			cost, g.loc[id].from, e.to))
	}
	e.cost = cost
	g.adj[e.to][e.rev].cost = -cost
}

// SetCap rewrites the capacity of an existing arc. Lowering a capacity
// below the arc's current flow leaves an over-full arc; callers that
// shrink capacities must ClearFlows and re-solve (the warm-restart path
// only ever raises them).
func (g *Graph) SetCap(id int, capacity float64) {
	if capacity < 0 {
		e := g.arc(id)
		panic(fmt.Sprintf("flow: negative capacity %g on arc %d→%d", capacity, g.loc[id].from, e.to))
	}
	g.arc(id).cap = capacity
}

// ClearFlows zeroes the flow on every arc (forward and reverse halves),
// returning the graph to its unsolved state without touching the
// skeleton, capacities or costs.
func (g *Graph) ClearFlows() {
	for u := range g.adj {
		for i := range g.adj[u] {
			g.adj[u][i].flow = 0
		}
	}
}

// Flow returns the flow currently routed on the external edge with the
// given id (as returned by AddEdge).
func (g *Graph) Flow(id int) float64 {
	return g.arc(id).flow
}

// FlowsByID returns a slice indexed by edge id holding each edge's flow.
func (g *Graph) FlowsByID() []float64 {
	out := make([]float64, g.edges)
	for id := range g.loc {
		out[id] = g.adj[g.loc[id].from][g.loc[id].idx].flow
	}
	return out
}

// CostOfFlows evaluates Σ flow(a)·cost(a) over the external arcs in
// ascending id order — a deterministic function of the final flows, so
// any two solves that end in the same flows report the identical float
// regardless of the augmentation path that produced them.
func (g *Graph) CostOfFlows() float64 {
	var c float64
	for id := range g.loc {
		e := &g.adj[g.loc[id].from][g.loc[id].idx]
		c += e.flow * e.cost
	}
	return c
}

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	node int
	dist float64
}

// pqueue is a typed binary min-heap on dist. It replaces the former
// container/heap queue: no interface{} boxing on push/pop, and the
// backing array lives in the Solver workspace and is reused across all
// Dijkstra rounds of all solves — the queue is the hot allocation site
// of the solver, exercised once per (point, center) arc per
// augmentation.
type pqueue []pqItem

func (q *pqueue) push(it pqItem) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*q = h
}

func (q *pqueue) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].dist < h[c].dist {
			c = r
		}
		if h[i].dist <= h[c].dist {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	*q = h
	return top
}

// Solver is a reusable min-cost-flow workspace: Johnson potentials,
// Dijkstra arrays and the heap backing array survive across solves, so
// the many-solves-one-graph pattern allocates nothing after the first
// call. A zero Solver is ready to use. A Solver must not be shared
// between goroutines.
type Solver struct {
	pot, dist          []float64
	visited            []bool
	prevNode, prevEdge []int
	q                  pqueue
}

// grow (re)sizes the workspace for an n-node graph, reusing backing
// arrays when they are large enough.
func (s *Solver) grow(n int) {
	if cap(s.pot) < n {
		s.pot = make([]float64, n)
		s.dist = make([]float64, n)
		s.visited = make([]bool, n)
		s.prevNode = make([]int, n)
		s.prevEdge = make([]int, n)
	}
	s.pot = s.pot[:n]
	s.dist = s.dist[:n]
	s.visited = s.visited[:n]
	s.prevNode = s.prevNode[:n]
	s.prevEdge = s.prevEdge[:n]
	if s.q == nil {
		s.q = make(pqueue, 0, n)
	}
}

// MinCostFlow pushes up to maxFlow units from src to t along successive
// shortest paths, returning the total flow routed and its total cost
// (accumulated augmentation by augmentation, exactly like the historical
// per-call implementation — a cold arena solve is therefore bit-identical
// to a fresh-graph solve). Pass math.Inf(1) as maxFlow for a max-flow
// computation. Potentials are zeroed at entry; on return they are the
// shortest-path potentials of the final residual graph, which
// ReoptimizeGrownCaps relies on.
func (s *Solver) MinCostFlow(g *Graph, src, t int, maxFlow float64) (flow, cost float64) {
	if src == t {
		return 0, 0
	}
	t0 := obs.NowNano()
	s.grow(g.n)
	pot, dist, visited := s.pot, s.dist, s.visited
	prevNode, prevEdge := s.prevNode, s.prevEdge
	for i := range pot {
		pot[i] = 0 // costs are ≥ 0 initially
	}
	q := s.q

	var pivots int64
	for flow < maxFlow-Eps || maxFlow == math.Inf(1) {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			visited[i] = false
		}
		dist[src] = 0
		q = append(q[:0], pqItem{node: src, dist: 0})
		for len(q) > 0 {
			it := q.pop()
			u := it.node
			if visited[u] {
				continue
			}
			visited[u] = true
			for i := range g.adj[u] {
				e := &g.adj[u][i]
				if e.cap-e.flow <= Eps || visited[e.to] {
					continue
				}
				nd := dist[u] + e.cost + pot[u] - pot[e.to]
				if nd < dist[e.to]-1e-15 {
					dist[e.to] = nd
					prevNode[e.to] = u
					prevEdge[e.to] = i
					q.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		if !visited[t] {
			break // no augmenting path
		}
		for i := range pot {
			if visited[i] {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		if maxFlow == math.Inf(1) {
			push = math.Inf(1)
		}
		for v := t; v != src; v = prevNode[v] {
			e := &g.adj[prevNode[v]][prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
		}
		if push <= Eps {
			break
		}
		for v := t; v != src; v = prevNode[v] {
			e := &g.adj[prevNode[v]][prevEdge[v]]
			e.flow += push
			rev := &g.adj[v][e.rev]
			rev.flow -= push
			cost += push * e.cost
		}
		flow += push
		pivots++
	}
	s.q = q[:0]
	mFlowSolves.Inc()
	mFlowPivots.Add(pivots)
	mFlowSolveNS.ObserveSince(t0)
	return flow, cost
}

// ReoptimizeGrownCaps restores min-cost optimality after the capacities
// of the arcs listed in grownIDs (all pointing into sink) were raised —
// never lowered — on a graph whose previous solve with this same Solver
// completed. The flow value is unchanged: raising capacities only opens
// cheaper routings for the flow already placed, which materialize as
// negative-cost residual cycles through the relaxed arcs; each round
// runs one Dijkstra from sink (over reduced costs, which the retained
// potentials keep non-negative away from the relaxed arcs), picks the
// most negative relaxed arc, and cancels its cycle. See DESIGN.md §7 for
// the validity argument, which needs every Dijkstra round of the
// previous solve to have visited all nodes — true for the transportation
// networks the assignment layer builds.
//
// Returns the total cost change (≤ 0) and ok=false if the round budget
// was exhausted before optimality was restored (callers then fall back
// to a cold re-solve; this is a numerical-dust safety net, not an
// expected path).
func (s *Solver) ReoptimizeGrownCaps(g *Graph, sink int, grownIDs []int) (costDelta float64, ok bool) {
	s.grow(g.n)
	pot, dist, visited := s.pot, s.dist, s.visited
	prevNode, prevEdge := s.prevNode, s.prevEdge
	q := s.q
	defer func() { s.q = q[:0] }()

	mFlowReopts.Inc()
	var rounds int64
	defer func() {
		mFlowRounds.Add(rounds)
		if !ok {
			mFlowExhaust.Inc()
		}
	}()
	maxRounds := 4*g.n + 16
	for round := 0; round < maxRounds; round++ {
		rounds++
		// Dijkstra from sink on reduced costs over residual arcs,
		// skipping arcs into sink (the relaxed arcs are the only ones
		// that may carry negative reduced cost, and any negative cycle
		// must close through one of them).
		for i := range dist {
			dist[i] = math.Inf(1)
			visited[i] = false
		}
		dist[sink] = 0
		q = append(q[:0], pqItem{node: sink, dist: 0})
		for len(q) > 0 {
			it := q.pop()
			u := it.node
			if visited[u] {
				continue
			}
			visited[u] = true
			for i := range g.adj[u] {
				e := &g.adj[u][i]
				if e.to == sink || e.cap-e.flow <= Eps || visited[e.to] {
					continue
				}
				nd := dist[u] + e.cost + pot[u] - pot[e.to]
				if nd < dist[e.to]-1e-15 {
					dist[e.to] = nd
					prevNode[e.to] = u
					prevEdge[e.to] = i
					q.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		for i := range pot {
			if visited[i] {
				pot[i] += dist[i]
			}
		}
		// Most negative relaxed arc (deterministic tie-break: first in
		// grownIDs order).
		bestID := -1
		bestRed := -Eps
		for _, id := range grownIDs {
			e := g.arc(id)
			u := g.loc[id].from
			if e.cap-e.flow <= Eps || !visited[u] {
				continue
			}
			if red := e.cost + pot[u] - pot[sink]; red < bestRed {
				bestRed = red
				bestID = id
			}
		}
		if bestID < 0 {
			return costDelta, true // optimal: no negative residual cycle left
		}
		// Cancel the cycle sink ⇝ u → sink.
		e := g.arc(bestID)
		u := g.loc[bestID].from
		push := e.cap - e.flow
		for v := u; v != sink; v = prevNode[v] {
			pe := &g.adj[prevNode[v]][prevEdge[v]]
			if r := pe.cap - pe.flow; r < push {
				push = r
			}
		}
		if push <= Eps {
			return costDelta, true // numerically saturated cycle: nothing cancellable
		}
		for v := u; v != sink; v = prevNode[v] {
			pe := &g.adj[prevNode[v]][prevEdge[v]]
			pe.flow += push
			g.adj[pe.to][pe.rev].flow -= push
		}
		e.flow += push
		g.adj[e.to][e.rev].flow -= push
		costDelta += push * bestRed
	}
	return costDelta, false
}

// MinCostFlow pushes up to maxFlow units from s to t along successive
// shortest paths, returning the total flow routed and its total cost.
// Pass math.Inf(1) as maxFlow for a max-flow computation. A fresh
// workspace is allocated per call; reuse a Solver to amortize it.
func (g *Graph) MinCostFlow(s, t int, maxFlow float64) (flow, cost float64) {
	var sv Solver
	return sv.MinCostFlow(g, s, t, maxFlow)
}
