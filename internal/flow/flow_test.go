package flow

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleEdge(t *testing.T) {
	g := NewGraph(2)
	id := g.AddEdge(0, 1, 5, 2)
	f, c := g.MinCostFlow(0, 1, math.Inf(1))
	if f != 5 || c != 10 {
		t.Fatalf("flow=%v cost=%v, want 5, 10", f, c)
	}
	if g.Flow(id) != 5 {
		t.Fatalf("edge flow = %v", g.Flow(id))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 2-hop paths, costs 1+1 vs 5+5, capacity 1 each.
	g := NewGraph(4)
	cheap1 := g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	exp1 := g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 5)
	f, c := g.MinCostFlow(0, 3, 1)
	if f != 1 || c != 2 {
		t.Fatalf("flow=%v cost=%v, want 1, 2", f, c)
	}
	if g.Flow(cheap1) != 1 || g.Flow(exp1) != 0 {
		t.Fatal("flow must use the cheap path")
	}
	// Second unit must take the expensive path.
	f, c = g.MinCostFlow(0, 3, 1)
	if f != 1 || c != 10 {
		t.Fatalf("second unit: flow=%v cost=%v, want 1, 10", f, c)
	}
}

func TestResidualRerouting(t *testing.T) {
	// Classic instance where min-cost max-flow must push flow "back"
	// along a residual arc to reach the optimum.
	//
	//   0 → 1 (cap 1, cost 1),  0 → 2 (cap 1, cost 10)
	//   1 → 2 (cap 1, cost 1),  1 → 3 (cap 1, cost 10)
	//   2 → 3 (cap 1, cost 1)
	//
	// Max flow is 2; optimal cost routes 0→1→2→3 (3) and 0→2... cap of
	// 2→3 is 1, so the optimum is 0→1→2→3 + 0→2? No: 2→3 saturates, so
	// second path is 0→1→3? 0→1 saturates too. Optimal pair:
	// 0→1→2→3 (cost 3) and 0→2 + 2→3 blocked → 0→2 →(residual 2→1)→1→3:
	// cost 10 − 1 + 10 = 19? Let the solver decide; verify against the
	// known optimum 0→1→3 (11) + 0→2→3 (11) = 22 vs 3+19=22. Equal: 22.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 10)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(2, 3, 1, 1)
	f, c := g.MinCostFlow(0, 3, math.Inf(1))
	if f != 2 {
		t.Fatalf("max flow = %v, want 2", f)
	}
	if math.Abs(c-22) > 1e-9 {
		t.Fatalf("cost = %v, want 22", c)
	}
}

func TestRespectsMaxFlowBudget(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 100, 1)
	f, c := g.MinCostFlow(0, 1, 7)
	if f != 7 || c != 7 {
		t.Fatalf("flow=%v cost=%v", f, c)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1, 1)
	f, c := g.MinCostFlow(0, 2, math.Inf(1))
	if f != 0 || c != 0 {
		t.Fatalf("flow=%v cost=%v, want 0, 0", f, c)
	}
}

func TestFractionalCapacities(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 0.5, 1)
	g.AddEdge(0, 1, 0.25, 3)
	g.AddEdge(1, 2, 1, 0)
	f, c := g.MinCostFlow(0, 2, math.Inf(1))
	if math.Abs(f-0.75) > 1e-9 {
		t.Fatalf("flow = %v, want 0.75", f)
	}
	if math.Abs(c-(0.5+0.75)) > 1e-9 {
		t.Fatalf("cost = %v, want 1.25", c)
	}
}

func TestTransportationMatchesBruteForce(t *testing.T) {
	// Random 3-source, 2-sink transportation problems: compare against
	// exhaustive enumeration of integral assignments.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		const nSrc, nSink = 3, 2
		capSink := float64(2) // each sink takes at most 2 units
		costs := make([][]float64, nSrc)
		for i := range costs {
			costs[i] = []float64{float64(rng.Intn(20)), float64(rng.Intn(20))}
		}
		// Flow network: 0 = S, 1..3 = sources, 4..5 = sinks, 6 = T.
		g := NewGraph(7)
		for i := 0; i < nSrc; i++ {
			g.AddEdge(0, 1+i, 1, 0)
			for j := 0; j < nSink; j++ {
				g.AddEdge(1+i, 4+j, 1, costs[i][j])
			}
		}
		for j := 0; j < nSink; j++ {
			g.AddEdge(4+j, 6, capSink, 0)
		}
		f, c := g.MinCostFlow(0, 6, math.Inf(1))
		if f != nSrc {
			t.Fatalf("trial %d: flow %v, want %d", trial, f, nSrc)
		}
		best := math.Inf(1)
		for mask := 0; mask < 8; mask++ { // assignment of each source to sink 0/1
			cnt := [2]int{}
			tot := 0.0
			for i := 0; i < nSrc; i++ {
				j := (mask >> i) & 1
				cnt[j]++
				tot += costs[i][j]
			}
			if cnt[0] <= int(capSink) && cnt[1] <= int(capSink) && tot < best {
				best = tot
			}
		}
		if math.Abs(c-best) > 1e-9 {
			t.Fatalf("trial %d: cost %v, brute-force optimum %v", trial, c, best)
		}
	}
}

func TestFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph(10)
	type e struct{ id, from, to int }
	var es []e
	for i := 0; i < 30; i++ {
		from, to := rng.Intn(9), 1+rng.Intn(9)
		if from == to {
			continue
		}
		id := g.AddEdge(from, to, float64(1+rng.Intn(5)), float64(rng.Intn(10)))
		es = append(es, e{id, from, to})
	}
	g.MinCostFlow(0, 9, math.Inf(1))
	flows := g.FlowsByID()
	net := make([]float64, 10)
	for _, ed := range es {
		f := flows[ed.id]
		if f < -Eps {
			t.Fatalf("negative flow on edge %d", ed.id)
		}
		net[ed.from] -= f
		net[ed.to] += f
	}
	for v := 1; v < 9; v++ {
		if math.Abs(net[v]) > 1e-6 {
			t.Fatalf("conservation violated at node %d: %v", v, net[v])
		}
	}
}

func TestValidationPanics(t *testing.T) {
	g := NewGraph(2)
	mustPanic(t, func() { g.AddEdge(-1, 0, 1, 1) })
	mustPanic(t, func() { g.AddEdge(0, 5, 1, 1) })
	mustPanic(t, func() { g.AddEdge(0, 1, -1, 1) })
	mustPanic(t, func() { g.AddEdge(0, 1, 1, -1) })
	mustPanic(t, func() { g.Flow(99) })
}

func TestSelfSourceSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1, 1)
	f, c := g.MinCostFlow(0, 0, math.Inf(1))
	if f != 0 || c != 0 {
		t.Fatal("s==t must be a no-op")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestPqueueOrdering drives the typed Dijkstra heap directly: any
// interleaving of pushes and pops must always pop the minimum dist first.
func TestPqueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q pqueue
	var ref []float64
	for step := 0; step < 5000; step++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			d := rng.Float64()
			q.push(pqItem{node: step, dist: d})
			ref = append(ref, d)
			continue
		}
		it := q.pop()
		mi := 0
		for i, d := range ref {
			if d < ref[mi] {
				mi = i
			}
		}
		if it.dist != ref[mi] {
			t.Fatalf("step %d: popped %v, want min %v", step, it.dist, ref[mi])
		}
		ref[mi] = ref[len(ref)-1]
		ref = ref[:len(ref)-1]
	}
	for len(ref) > 0 {
		it := q.pop()
		mi := 0
		for i, d := range ref {
			if d < ref[mi] {
				mi = i
			}
		}
		if it.dist != ref[mi] {
			t.Fatalf("drain: popped %v, want min %v", it.dist, ref[mi])
		}
		ref[mi] = ref[len(ref)-1]
		ref = ref[:len(ref)-1]
	}
	if len(q) != 0 {
		t.Fatalf("queue not drained: %d left", len(q))
	}
}
