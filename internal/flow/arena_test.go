package flow

import (
	"math"
	"strings"
	"testing"
)

// buildTransport wires a tiny source→points→centers→sink network onto g
// (which may be a reused arena) and returns the sink arc ids.
func buildTransport(g *Graph, costs [][]float64, t float64) (src, sink int, sinkIDs []int) {
	n, k := len(costs), len(costs[0])
	g.Reset(n + k + 2)
	src, sink = 0, n+k+1
	for i := 0; i < n; i++ {
		g.AddEdge(src, 1+i, 1, 0)
		for j := 0; j < k; j++ {
			g.AddEdge(1+i, n+1+j, 1, costs[i][j])
		}
	}
	for j := 0; j < k; j++ {
		sinkIDs = append(sinkIDs, g.AddEdge(n+1+j, sink, t, 0))
	}
	return src, sink, sinkIDs
}

// TestAssignArenaResetClearsState exercises the reuse hazards of the
// arena: after solving on a graph, Reset + rebuild followed by a solve
// with the same (also reused) Solver must be bit-identical to a fresh
// graph and a fresh workspace — i.e. Reset discards old arcs and flows,
// MinCostFlow re-zeroes the potentials it retained from the previous
// solve, and the Dijkstra heap backing array is emptied between solves.
func TestAssignArenaResetClearsState(t *testing.T) {
	a := [][]float64{{1, 9}, {9, 1}, {4, 5}}
	b := [][]float64{{7, 2, 3}, {1, 8, 2}, {3, 3, 0}, {5, 1, 6}}

	// Dirty the arena and the workspace on instance a.
	g := NewGraph(0)
	var s Solver
	src, sink, _ := buildTransport(g, a, 2)
	s.MinCostFlow(g, src, sink, 3)
	if len(s.q) != 0 {
		t.Fatalf("heap backing array not emptied after solve: len %d", len(s.q))
	}
	dirtyPot := false
	for _, p := range s.pot {
		if p != 0 {
			dirtyPot = true
		}
	}
	if !dirtyPot {
		t.Fatal("test vacuous: first solve left all potentials zero")
	}

	// Rebuild instance b on the dirty arena; solve with the dirty Solver.
	src, sink, _ = buildTransport(g, b, 2)
	if g.Arcs() != 4+4*3+3 {
		t.Fatalf("Reset retained stale arcs: %d", g.Arcs())
	}
	for id := 0; id < g.Arcs(); id++ {
		if g.Flow(id) != 0 {
			t.Fatalf("Reset retained stale flow on arc %d: %g", id, g.Flow(id))
		}
	}
	gotF, gotC := s.MinCostFlow(g, src, sink, 4)

	// Reference: everything fresh.
	fg := NewGraph(0)
	fsrc, fsink, _ := buildTransport(fg, b, 2)
	var fs Solver
	wantF, wantC := fs.MinCostFlow(fg, fsrc, fsink, 4)

	if gotF != wantF || gotC != wantC {
		t.Fatalf("reused arena+solver: flow/cost (%v, %v) != fresh (%v, %v)", gotF, gotC, wantF, wantC)
	}
	got, want := g.FlowsByID(), fg.FlowsByID()
	for id := range want {
		if got[id] != want[id] {
			t.Fatalf("reused arena: flow on arc %d is %v, fresh %v", id, got[id], want[id])
		}
	}
}

// TestAssignArenaRetainsStorage pins the point of the arena: a Reset to
// the same shape must not allocate new adjacency slabs.
func TestAssignArenaRetainsStorage(t *testing.T) {
	costs := [][]float64{{1, 2}, {3, 4}}
	g := NewGraph(0)
	buildTransport(g, costs, 1)
	p0 := &g.adj[0][:1][0]
	buildTransport(g, costs, 1)
	if p0 != &g.adj[0][:1][0] {
		t.Fatal("Reset to the same shape reallocated adjacency storage")
	}
}

// TestAssignNegativeCostArcNamed checks the reuse-hazard panics name the
// offending arc, on both the AddEdge and the SetCost path.
func TestAssignNegativeCostArcNamed(t *testing.T) {
	g := NewGraph(3)
	id := g.AddEdge(0, 1, 1, 5)

	check := func(what string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", what)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "0→1") {
				t.Fatalf("%s: panic does not name arc 0→1: %v", what, r)
			}
		}()
		f()
	}
	check("AddEdge negative cost", func() { g.AddEdge(0, 1, 1, -2) })
	check("SetCost negative cost", func() { g.SetCost(id, -1) })
	check("AddEdge negative capacity", func() { g.AddEdge(0, 1, -1, 0) })
	check("SetCap negative capacity", func() { g.SetCap(id, -3) })
}

// TestAssignReoptimizeGrownCaps sweeps capacities upward on one network
// and checks the warm restart tracks cold re-solves to float tolerance at
// every step, including steps that change nothing.
func TestAssignReoptimizeGrownCaps(t *testing.T) {
	costs := [][]float64{
		{0, 6, 9}, {1, 5, 8}, {2, 4, 7}, {3, 3, 6}, {4, 2, 5}, {5, 1, 4},
	}
	g := NewGraph(0)
	src, sink, sinkIDs := buildTransport(g, costs, 2.0)
	var s Solver
	f, _ := s.MinCostFlow(g, src, sink, 6)
	if f < 6-Eps {
		t.Fatalf("initial solve incomplete: f=%v", f)
	}
	for _, tc := range []float64{2.5, 2.5, 3, 4.5, 6} {
		for _, id := range sinkIDs {
			g.SetCap(id, tc)
		}
		if _, ok := s.ReoptimizeGrownCaps(g, sink, sinkIDs); !ok {
			t.Fatalf("t=%g: round budget exhausted", tc)
		}
		warm := g.CostOfFlows()

		cg := NewGraph(0)
		csrc, csink, _ := buildTransport(cg, costs, tc)
		cf, cCost := cg.MinCostFlow(csrc, csink, 6)
		if cf < 6-Eps {
			t.Fatalf("t=%g: cold solve incomplete", tc)
		}
		if math.Abs(warm-cCost) > 1e-9*(1+math.Abs(cCost)) {
			t.Fatalf("t=%g: warm cost %v != cold %v", tc, warm, cCost)
		}
	}
}
