package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// BenchmarkTransportation measures the min-cost-flow solver on the
// bipartite transportation instances the assignment layer builds.
func BenchmarkTransportation(b *testing.B) {
	for _, cfg := range []struct{ n, k int }{{100, 4}, {400, 4}, {400, 16}} {
		b.Run(fmt.Sprintf("n=%d_k=%d", cfg.n, cfg.k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			costs := make([][]float64, cfg.n)
			for i := range costs {
				costs[i] = make([]float64, cfg.k)
				for j := range costs[i] {
					costs[i][j] = rng.Float64() * 1000
				}
			}
			capPer := float64(cfg.n/cfg.k + 1)
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				g := NewGraph(cfg.n + cfg.k + 2)
				src, sink := 0, cfg.n+cfg.k+1
				for i := 0; i < cfg.n; i++ {
					g.AddEdge(src, 1+i, 1, 0)
					for j := 0; j < cfg.k; j++ {
						g.AddEdge(1+i, cfg.n+1+j, 1, costs[i][j])
					}
				}
				for j := 0; j < cfg.k; j++ {
					g.AddEdge(cfg.n+1+j, sink, capPer, 0)
				}
				f, _ := g.MinCostFlow(src, sink, math.Inf(1))
				if f != float64(cfg.n) {
					b.Fatal("flow incomplete")
				}
			}
		})
	}
}
