package geo

import (
	"math"
	"math/rand"
	"testing"
)

// TestAssignDistRMatrixMatchesScalar is the property test pinning the
// blocked kernel to the scalar DistR: over random points, centers and
// dimensions, r ∈ {1, 2} must agree to 1 ulp (they are in fact designed
// to be bit-identical) and general r within 1e-12 relative error.
func TestAssignDistRMatrixMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ulp := func(v float64) float64 {
		return math.Nextafter(math.Abs(v), math.Inf(1)) - math.Abs(v)
	}
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(5) // d=2 exercises the unrolled path
		n := rng.Intn(20)
		k := 1 + rng.Intn(8)
		ps := make(PointSet, n)
		ws := make([]Weighted, n)
		for i := range ps {
			p := make(Point, d)
			for c := range p {
				p[c] = 1 + rng.Int63n(1<<20)
			}
			ps[i] = p
			ws[i] = Weighted{P: p, W: 1}
		}
		Z := make([]Point, k)
		for j := range Z {
			p := make(Point, d)
			for c := range p {
				p[c] = 1 + rng.Int63n(1<<20)
			}
			Z[j] = p
		}
		for _, r := range []float64{1, 2, 0.5, 1.7, 3} {
			got := DistRMatrix(ps, Z, r, nil)
			gotW := DistRMatrixW(ws, Z, r, nil)
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					want := DistR(ps[i], Z[j], r)
					v := got[i*k+j]
					if gotW[i*k+j] != v {
						t.Fatalf("trial %d d=%d r=%g: W-variant %v != PointSet-variant %v at (%d,%d)", trial, d, r, gotW[i*k+j], v, i, j)
					}
					var tol float64
					if r == 1 || r == 2 {
						tol = ulp(want)
					} else {
						tol = 1e-12 * math.Abs(want)
					}
					if math.Abs(v-want) > tol {
						t.Fatalf("trial %d d=%d r=%g: kernel %v != scalar %v at (%d,%d) (Δ=%g, tol=%g)", trial, d, r, v, want, i, j, v-want, tol)
					}
				}
			}
		}
	}
}

// TestAssignDistRMatrixReusesDst pins the arena contract: a dst with
// enough capacity is reused, not reallocated, and shrinking shapes slice
// it down.
func TestAssignDistRMatrixReusesDst(t *testing.T) {
	ps := PointSet{{1, 2}, {3, 4}, {5, 6}}
	Z := []Point{{2, 2}, {9, 9}}
	buf := make([]float64, 0, 64)
	out := DistRMatrix(ps, Z, 2, buf)
	if len(out) != 6 || cap(out) != 64 {
		t.Fatalf("dst not reused: len=%d cap=%d", len(out), cap(out))
	}
	out2 := DistRMatrix(ps[:1], Z, 1, out)
	if len(out2) != 2 || cap(out2) != 64 {
		t.Fatalf("shrunk dst not reused: len=%d cap=%d", len(out2), cap(out2))
	}
}

// TestAssignDistRMatrixDimMismatch checks the hoisted dimension check
// still fires like the scalar path.
func TestAssignDistRMatrixDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched dimensions")
		}
	}()
	DistRMatrix(PointSet{{1, 2}}, []Point{{1, 2, 3}}, 2, nil)
}
