package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 6, 3}
	if got := DistSq(p, q); got != 25 {
		t.Fatalf("DistSq = %v, want 25", got)
	}
	if got := Dist(p, q); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := Dist(p, p); got != 0 {
		t.Fatalf("Dist(p,p) = %v, want 0", got)
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	DistSq(Point{1}, Point{1, 2})
}

func TestDistRFastPathsAgreeWithPow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		d := rng.Intn(6) + 1
		p := randPoint(rng, d, 1000)
		q := randPoint(rng, d, 1000)
		for _, r := range []float64{1, 2, 3, 1.5} {
			want := math.Pow(Dist(p, q), r)
			got := DistR(p, q, r)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("DistR(r=%v) = %v, want %v", r, got, want)
			}
		}
	}
}

func TestPowR(t *testing.T) {
	if PowR(3, 2) != 9 {
		t.Fatal("PowR(3,2)")
	}
	if PowR(3, 1) != 3 {
		t.Fatal("PowR(3,1)")
	}
	if PowR(0, 3) != 0 {
		t.Fatal("PowR(0,3)")
	}
	if math.Abs(PowR(2, 3)-8) > 1e-12 {
		t.Fatal("PowR(2,3)")
	}
}

func TestTriangleInequalityPowerR(t *testing.T) {
	// Fact 2.1: dist^r(x,z) ≤ 2^{r-1}(dist^r(x,y) + dist^r(y,z)).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := rng.Intn(5) + 1
		x := randPoint(rng, d, 64)
		y := randPoint(rng, d, 64)
		z := randPoint(rng, d, 64)
		for _, r := range []float64{1, 2, 3} {
			lhs := DistR(x, z, r)
			rhs := math.Pow(2, r-1) * (DistR(x, y, r) + DistR(y, z, r))
			if lhs > rhs*(1+1e-9) {
				t.Fatalf("Fact 2.1 violated: r=%v x=%v y=%v z=%v lhs=%v rhs=%v", r, x, y, z, lhs, rhs)
			}
		}
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	pts := PointSet{
		{1, 1}, {1, 2}, {2, 1}, {1, 1}, {3, 0}, {0, 9},
	}
	sorted := pts.Clone()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for i := 0; i+1 < len(sorted); i++ {
		if sorted[i+1].Less(sorted[i]) {
			t.Fatalf("sort not consistent at %d: %v > %v", i, sorted[i], sorted[i+1])
		}
	}
	// Antisymmetry + totality on random pairs.
	err := quick.Check(func(a, b []int64) bool {
		p, q := Point(a), Point(b)
		l1, l2 := p.Less(q), q.Less(p)
		if l1 && l2 {
			return false
		}
		if !l1 && !l2 {
			return p.Compare(q) == 0
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	if (Point{1, 2}).Compare(Point{1, 3}) != -1 {
		t.Fatal("want -1")
	}
	if (Point{1, 3}).Compare(Point{1, 2}) != 1 {
		t.Fatal("want 1")
	}
	if (Point{1, 3}).Compare(Point{1, 3}) != 0 {
		t.Fatal("want 0")
	}
}

func TestDistToSet(t *testing.T) {
	Z := []Point{{0, 0}, {10, 0}, {5, 5}}
	d, i := DistToSet(Point{9, 1}, Z)
	if i != 1 {
		t.Fatalf("nearest = %d, want 1", i)
	}
	if math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("d = %v", d)
	}
	// Tie broken toward smaller index.
	_, i = DistToSet(Point{5, 0}, []Point{{0, 0}, {10, 0}})
	if i != 0 {
		t.Fatalf("tie-break index = %d, want 0", i)
	}
}

func TestCentroidAndRounding(t *testing.T) {
	ws := []Weighted{
		{P: Point{1, 1}, W: 1},
		{P: Point{3, 5}, W: 1},
	}
	c := Centroid(ws)
	if c[0] != 2 || c[1] != 3 {
		t.Fatalf("centroid = %v", c)
	}
	ws[1].W = 3
	c = Centroid(ws)
	if math.Abs(c[0]-2.5) > 1e-12 || math.Abs(c[1]-4) > 1e-12 {
		t.Fatalf("weighted centroid = %v", c)
	}
	p := RoundToGrid([]float64{0.2, 9.7}, 8)
	if !p.Equal(Point{1, 8}) {
		t.Fatalf("RoundToGrid clamp = %v", p)
	}
}

func TestBoundingBoxAndMaxPairwise(t *testing.T) {
	ps := PointSet{{1, 5}, {4, 2}, {3, 3}}
	lo, hi := BoundingBox(ps)
	if !lo.Equal(Point{1, 2}) || !hi.Equal(Point{4, 5}) {
		t.Fatalf("bbox = %v %v", lo, hi)
	}
	got := MaxPairwiseDist(ps)
	want := Dist(Point{1, 5}, Point{4, 2})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxPairwiseDist = %v, want %v", got, want)
	}
}

func TestMaxCoordRangePowerOfTwo(t *testing.T) {
	cases := []struct {
		max  int64
		want int64
	}{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}}
	for _, c := range cases {
		ps := PointSet{{c.max}, {1}}
		if got := MaxCoordRange(ps); got != c.want {
			t.Fatalf("MaxCoordRange(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestUnitWeightsRoundTrip(t *testing.T) {
	ps := PointSet{{1, 2}, {3, 4}}
	ws := UnitWeights(ps)
	if TotalWeight(ws) != 2 {
		t.Fatal("total weight")
	}
	back := Points(ws)
	for i := range ps {
		if !back[i].Equal(ps[i]) {
			t.Fatal("round trip")
		}
	}
}

func TestInRange(t *testing.T) {
	if !(Point{1, 8}).InRange(8) {
		t.Fatal("in range")
	}
	if (Point{0, 8}).InRange(8) {
		t.Fatal("0 out of range")
	}
	if (Point{1, 9}).InRange(8) {
		t.Fatal("9 out of range")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("clone aliases")
	}
	ps := PointSet{{1, 2}}
	ps2 := ps.Clone()
	ps2[0][0] = 77
	if ps[0][0] != 1 {
		t.Fatal("pointset clone aliases")
	}
}

func randPoint(rng *rand.Rand, d int, delta int64) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = 1 + rng.Int63n(delta)
	}
	return p
}
