// Package geo provides the geometric substrate for streaming balanced
// clustering: integer grid points in [Δ]^d, ℓ2 and ℓ_r distances, weighted
// point sets, and the alphabetical order used by the paper's half-space
// construction (Definition 2.2).
//
// All input and output points live on the integer grid {1, ..., Δ}^d, per
// Section 1.1 of the paper; distances are Euclidean, and the ℓ_r clustering
// cost raises the Euclidean distance to the r-th power (Section 2).
package geo

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point of the integer grid [Δ]^d. The zero-length Point is
// valid only as a sentinel; all real points have dimension ≥ 1.
type Point []int64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Less reports whether p precedes q in the alphabetical (lexicographic)
// order of Section 2: p < q iff at the first differing coordinate i,
// p_i < q_i. Points of different dimension are ordered by dimension first
// so that Less remains a strict weak ordering on mixed inputs.
func (p Point) Less(q Point) bool {
	if len(p) != len(q) {
		return len(p) < len(q)
	}
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 as p is alphabetically before, equal to, or
// after q.
func (p Point) Compare(q Point) int {
	if p.Less(q) {
		return -1
	}
	if q.Less(p) {
		return 1
	}
	return 0
}

// String renders the point as "(x1,x2,...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(')')
	return b.String()
}

// InRange reports whether every coordinate of p lies in [1, delta].
func (p Point) InRange(delta int64) bool {
	for _, c := range p {
		if c < 1 || c > delta {
			return false
		}
	}
	return true
}

// DistSq returns the squared Euclidean distance between p and q.
// It panics if the dimensions differ.
func DistSq(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geo: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := float64(p[i] - q[i])
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Sqrt(DistSq(p, q))
}

// DistR returns dist(p,q)^r, the ℓ_r clustering cost of serving p from q.
// Fast paths cover the two cases the paper highlights: capacitated
// k-median (r = 1) and capacitated k-means (r = 2).
func DistR(p, q Point, r float64) float64 {
	switch r {
	case 2:
		return DistSq(p, q)
	case 1:
		return Dist(p, q)
	default:
		d := DistSq(p, q)
		if d == 0 {
			return 0
		}
		return math.Pow(d, r/2)
	}
}

// PowR returns d^r for a nonnegative Euclidean distance d, with the same
// fast paths as DistR.
func PowR(d, r float64) float64 {
	switch r {
	case 1:
		return d
	case 2:
		return d * d
	default:
		if d == 0 {
			return 0
		}
		return math.Pow(d, r)
	}
}

// DistRMatrix fills dst — row-major, len(ps)×len(Z) — with the full
// cost block dst[i*len(Z)+j] = DistR(ps[i], Z[j], r) and returns it,
// growing dst only if it is too small. This is the blocked kernel behind
// the assignment engine: the r-switch and the dimension checks are
// hoisted out of the double loop, the r ∈ {1, 2} fast paths never touch
// math.Pow, and d = 2 (the dominant experiment shape) runs an unrolled
// inner loop. Every entry is bit-identical to the scalar DistR — the
// accumulation order per pair is the same — so swapping a scalar loop
// for the kernel never perturbs downstream floats.
func DistRMatrix(ps PointSet, Z []Point, r float64, dst []float64) []float64 {
	return distRBlock(len(ps), func(i int) Point { return ps[i] }, Z, r, dst)
}

// DistRMatrixW is DistRMatrix over the points of a weighted set, without
// materializing the PointSet.
func DistRMatrixW(ws []Weighted, Z []Point, r float64, dst []float64) []float64 {
	return distRBlock(len(ws), func(i int) Point { return ws[i].P }, Z, r, dst)
}

func distRBlock(n int, point func(int) Point, Z []Point, r float64, dst []float64) []float64 {
	k := len(Z)
	need := n * k
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	if need == 0 {
		return dst
	}
	d := len(point(0))
	for i := 0; i < n; i++ {
		if len(point(i)) != d {
			panic(fmt.Sprintf("geo: dimension mismatch %d vs %d", d, len(point(i))))
		}
	}
	for _, z := range Z {
		if len(z) != d {
			panic(fmt.Sprintf("geo: dimension mismatch %d vs %d", d, len(z)))
		}
	}
	// Squared Euclidean block first (the common substrate of every r).
	if d == 2 {
		for i := 0; i < n; i++ {
			p := point(i)
			p0, p1 := p[0], p[1]
			row := dst[i*k : (i+1)*k]
			for j, z := range Z {
				dx := float64(p0 - z[0])
				dy := float64(p1 - z[1])
				s := dx * dx
				s += dy * dy
				row[j] = s
			}
		}
	} else {
		for i := 0; i < n; i++ {
			p := point(i)
			row := dst[i*k : (i+1)*k]
			for j, z := range Z {
				var s float64
				for c := range p {
					dd := float64(p[c] - z[c])
					s += dd * dd
				}
				row[j] = s
			}
		}
	}
	switch r {
	case 2:
		// dst already holds DistSq.
	case 1:
		for i, v := range dst {
			dst[i] = math.Sqrt(v)
		}
	default:
		for i, v := range dst {
			if v == 0 {
				continue
			}
			dst[i] = math.Pow(v, r/2)
		}
	}
	return dst
}

// DistToSet returns min_{z in Z} dist(p, z) and the index of the nearest
// center, breaking ties toward the smaller index. It panics if Z is empty.
func DistToSet(p Point, Z []Point) (float64, int) {
	if len(Z) == 0 {
		panic("geo: DistToSet with empty center set")
	}
	best := math.Inf(1)
	arg := 0
	for i, z := range Z {
		if d := DistSq(p, z); d < best {
			best = d
			arg = i
		}
	}
	return math.Sqrt(best), arg
}

// Weighted is a point with a positive weight, as produced by the coreset
// construction (w' : Q' → R_{>0}).
type Weighted struct {
	P Point
	W float64
}

// PointSet is an ordered multiset of points.
type PointSet []Point

// Clone deep-copies the point set.
func (ps PointSet) Clone() PointSet {
	out := make(PointSet, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// Dim returns the dimension of the points, or 0 for an empty set.
func (ps PointSet) Dim() int {
	if len(ps) == 0 {
		return 0
	}
	return len(ps[0])
}

// TotalWeight sums the weights of a weighted set.
func TotalWeight(ws []Weighted) float64 {
	var s float64
	for _, w := range ws {
		s += w.W
	}
	return s
}

// Centroid returns the (real-valued) mean of the weighted points. It
// panics on an empty or zero-weight input.
func Centroid(ws []Weighted) []float64 {
	if len(ws) == 0 {
		panic("geo: centroid of empty set")
	}
	d := len(ws[0].P)
	c := make([]float64, d)
	var tot float64
	for _, w := range ws {
		for i := range c {
			c[i] += w.W * float64(w.P[i])
		}
		tot += w.W
	}
	if tot <= 0 {
		panic("geo: centroid of zero-weight set")
	}
	for i := range c {
		c[i] /= tot
	}
	return c
}

// RoundToGrid maps a real point onto the integer grid [1, delta]^d by
// rounding each coordinate to the nearest grid value and clamping.
func RoundToGrid(c []float64, delta int64) Point {
	p := make(Point, len(c))
	for i, v := range c {
		r := int64(math.Round(v))
		if r < 1 {
			r = 1
		}
		if r > delta {
			r = delta
		}
		p[i] = r
	}
	return p
}

// MaxPairwiseDist returns max_{p,q in ps} dist(p,q) by brute force. Meant
// for tests and small parts; O(n² d).
func MaxPairwiseDist(ps PointSet) float64 {
	var m float64
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if d := DistSq(ps[i], ps[j]); d > m {
				m = d
			}
		}
	}
	return math.Sqrt(m)
}

// BoundingBox returns the per-coordinate min and max over the set. It
// panics on an empty set.
func BoundingBox(ps PointSet) (lo, hi Point) {
	if len(ps) == 0 {
		panic("geo: bounding box of empty set")
	}
	d := len(ps[0])
	lo = make(Point, d)
	hi = make(Point, d)
	copy(lo, ps[0])
	copy(hi, ps[0])
	for _, p := range ps[1:] {
		for i := range p {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return lo, hi
}

// UnitWeights wraps a plain point set as weighted points of weight 1.
func UnitWeights(ps PointSet) []Weighted {
	out := make([]Weighted, len(ps))
	for i, p := range ps {
		out[i] = Weighted{P: p, W: 1}
	}
	return out
}

// Points extracts the underlying points of a weighted set.
func Points(ws []Weighted) PointSet {
	out := make(PointSet, len(ws))
	for i, w := range ws {
		out[i] = w.P
	}
	return out
}

// MaxCoordRange returns the smallest Δ = 2^L (L ≥ 0) such that every
// coordinate of every point lies in [1, Δ]. The paper assumes Δ is a
// power of two (Section 3.1) without loss of generality.
func MaxCoordRange(ps PointSet) int64 {
	var m int64 = 1
	for _, p := range ps {
		for _, c := range p {
			if c > m {
				m = c
			}
		}
	}
	d := int64(1)
	for d < m {
		d <<= 1
	}
	return d
}
