// Package testutil holds small helpers shared by test and benchmark
// files across packages — sub-benchmark naming in particular, which was
// previously copy-pasted per package.
package testutil

// BenchName formats a sub-benchmark name like "lambda=16".
func BenchName(prefix string, v int) string {
	return prefix + "=" + Itoa(v)
}

// Itoa converts v to decimal without pulling fmt into bench hot paths.
func Itoa(v int) string {
	if v < 0 {
		return "-" + Itoa(-v)
	}
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
