package streamfmt

// Binary varint helpers shared by the wire codecs (internal/dist encodes
// protocol frames with them). Unsigned values use LEB128 (the
// encoding/binary varint format); signed values are zigzag-folded first
// so small-magnitude deltas of either sign stay short. Delta coding of
// sorted integer vectors — the codec's workhorse for cell indices and
// grid points — is provided on top.

import "encoding/binary"

// MaxVarintLen is the maximum encoded length of one varint (64-bit).
const MaxVarintLen = binary.MaxVarintLen64

// AppendUvarint appends v in LEB128 and returns the extended slice.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes a LEB128 value from the front of b, returning the value
// and the number of bytes consumed. n <= 0 signals a truncated (n == 0)
// or overlong (n < 0) encoding, exactly as encoding/binary reports it.
func Uvarint(b []byte) (uint64, int) {
	return binary.Uvarint(b)
}

// ZigzagEncode folds a signed value into an unsigned one with small
// magnitudes mapping to small codes: 0,-1,1,-2,2 → 0,1,2,3,4.
func ZigzagEncode(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// ZigzagDecode inverts ZigzagEncode.
func ZigzagDecode(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendZigzag appends the zigzag-folded varint of v.
func AppendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigzagEncode(v))
}

// Zigzag decodes a zigzag-folded varint from the front of b; n follows
// the Uvarint convention.
func Zigzag(b []byte) (int64, int) {
	u, n := binary.Uvarint(b)
	return ZigzagDecode(u), n
}

// AppendDeltaVec appends vec coordinate-wise as zigzag deltas against
// prev, then copies vec into prev so consecutive calls delta-chain.
// len(prev) must equal len(vec); the first vector of a sequence deltas
// against the zero vector (prev freshly allocated).
func AppendDeltaVec(dst []byte, prev, vec []int64) []byte {
	for j, v := range vec {
		dst = AppendZigzag(dst, v-prev[j])
		prev[j] = v
	}
	return dst
}

// DeltaVec decodes len(prev) zigzag deltas from the front of b, adding
// them into prev (which then holds the reconstructed vector), and returns
// the bytes consumed. ok is false on a truncated or overlong encoding.
func DeltaVec(b []byte, prev []int64) (n int, ok bool) {
	for j := range prev {
		d, m := Zigzag(b[n:])
		if m <= 0 {
			return n, false
		}
		prev[j] += d
		n += m
	}
	return n, true
}
