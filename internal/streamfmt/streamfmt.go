// Package streamfmt defines the text wire formats shared by the CLI
// tools (cmd/bcgen, cmd/bcstream, cmd/bcsolve):
//
//   - stream files: one update per line, "+ x,y,..." inserts and
//     "- x,y,..." deletes;
//   - coreset files: one weighted point per line, "w x,y,...".
//
// Blank lines and lines starting with '#' are ignored everywhere.
package streamfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"streambalance/internal/geo"
)

// Update is one parsed stream line.
type Update struct {
	P      geo.Point
	Delete bool
}

// ParseUpdate parses a "+ x,y,..." / "- x,y,..." line. dim > 0 enforces
// the dimension; dim == 0 accepts any.
func ParseUpdate(line string, dim int) (Update, error) {
	line = strings.TrimSpace(line)
	if len(line) < 2 || (line[0] != '+' && line[0] != '-') {
		return Update{}, fmt.Errorf("streamfmt: malformed update %q", line)
	}
	p, err := ParsePoint(line[1:], dim)
	if err != nil {
		return Update{}, err
	}
	return Update{P: p, Delete: line[0] == '-'}, nil
}

// FormatUpdate renders an update line.
func FormatUpdate(u Update) string {
	op := byte('+')
	if u.Delete {
		op = '-'
	}
	return string(op) + " " + FormatPoint(u.P)
}

// ParsePoint parses "x,y,...".
func ParsePoint(s string, dim int) (geo.Point, error) {
	fields := strings.Split(strings.TrimSpace(s), ",")
	if dim > 0 && len(fields) != dim {
		return nil, fmt.Errorf("streamfmt: expected %d coordinates, got %d in %q", dim, len(fields), s)
	}
	p := make(geo.Point, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("streamfmt: bad coordinate %q", f)
		}
		p[i] = v
	}
	return p, nil
}

// FormatPoint renders "x,y,...".
func FormatPoint(p geo.Point) string {
	cells := make([]string, len(p))
	for i, c := range p {
		cells[i] = strconv.FormatInt(c, 10)
	}
	return strings.Join(cells, ",")
}

// ParseWeighted parses a "w x,y,..." coreset line.
func ParseWeighted(line string, dim int) (geo.Weighted, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 {
		return geo.Weighted{}, fmt.Errorf("streamfmt: malformed coreset line %q (want \"w x,y,...\")", line)
	}
	w, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || w <= 0 {
		return geo.Weighted{}, fmt.Errorf("streamfmt: bad weight in %q", line)
	}
	p, err := ParsePoint(fields[1], dim)
	if err != nil {
		return geo.Weighted{}, err
	}
	return geo.Weighted{P: p, W: w}, nil
}

// FormatWeighted renders "w x,y,...".
func FormatWeighted(w geo.Weighted) string {
	return strconv.FormatFloat(w.W, 'g', -1, 64) + " " + FormatPoint(w.P)
}

// skippable reports whether a line carries no data.
func skippable(line string) bool {
	line = strings.TrimSpace(line)
	return line == "" || strings.HasPrefix(line, "#")
}

// ReadUpdates streams all updates from r to fn, stopping at the first
// error. Line numbers in errors are 1-based.
func ReadUpdates(r io.Reader, dim int, fn func(Update) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if skippable(sc.Text()) {
			continue
		}
		u, err := ParseUpdate(sc.Text(), dim)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := fn(u); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadWeighted reads a whole coreset file.
func ReadWeighted(r io.Reader, dim int) ([]geo.Weighted, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []geo.Weighted
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if skippable(sc.Text()) {
			continue
		}
		w, err := ParseWeighted(sc.Text(), dim)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, w)
	}
	return out, sc.Err()
}

// WriteWeighted writes a coreset file.
func WriteWeighted(w io.Writer, ws []geo.Weighted) error {
	bw := bufio.NewWriter(w)
	for _, wp := range ws {
		if _, err := fmt.Fprintln(bw, FormatWeighted(wp)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
