package streamfmt

import (
	"math"
	"math/rand"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -2, 63, -64, 1 << 20, -(1 << 20), math.MaxInt64, math.MinInt64}
	for _, v := range vals {
		if got := ZigzagDecode(ZigzagEncode(v)); got != v {
			t.Fatalf("zigzag(%d) round-tripped to %d", v, got)
		}
	}
	// Small magnitudes must map to small codes (the property delta coding
	// relies on).
	for _, v := range []int64{0, -1, 1, -2, 2} {
		if ZigzagEncode(v) > 4 {
			t.Fatalf("zigzag(%d) = %d, want <= 4", v, ZigzagEncode(v))
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	var want []uint64
	for i := 0; i < 1000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		want = append(want, v)
		buf = AppendUvarint(buf, v)
	}
	off := 0
	for i, w := range want {
		v, n := Uvarint(buf[off:])
		if n <= 0 || v != w {
			t.Fatalf("value %d: got %d (n=%d), want %d", i, v, n, w)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestVarintTruncated(t *testing.T) {
	buf := AppendUvarint(nil, 1<<40)
	if _, n := Uvarint(buf[:2]); n > 0 {
		t.Fatal("truncated varint must not decode")
	}
	if _, n := Zigzag(nil); n > 0 {
		t.Fatal("empty zigzag must not decode")
	}
}

func TestDeltaVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const dim = 3
	vecs := make([][]int64, 50)
	for i := range vecs {
		vecs[i] = make([]int64, dim)
		for j := range vecs[i] {
			vecs[i][j] = rng.Int63n(1<<12) - (1 << 11)
		}
	}
	var buf []byte
	prev := make([]int64, dim)
	for _, v := range vecs {
		buf = AppendDeltaVec(buf, prev, v)
	}
	got := make([]int64, dim)
	off := 0
	for i, want := range vecs {
		n, ok := DeltaVec(buf[off:], got)
		if !ok {
			t.Fatalf("vec %d: decode failed", i)
		}
		off += n
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("vec %d coord %d: got %d want %d", i, j, got[j], want[j])
			}
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
	if _, ok := DeltaVec(buf[:1], make([]int64, dim)); ok && len(buf) > 1 {
		t.Fatal("truncated delta vector must not decode")
	}
}

// Sorted inputs with small gaps must encode near one byte per coordinate —
// the compactness the dist wire codec's Report.Bits metering relies on.
func TestDeltaVecCompactOnSorted(t *testing.T) {
	const n = 1000
	prev := make([]int64, 1)
	var buf []byte
	for i := int64(0); i < n; i++ {
		buf = AppendDeltaVec(buf, prev, []int64{i * 3})
	}
	if len(buf) > n {
		t.Fatalf("sorted small-gap sequence took %d bytes for %d values", len(buf), n)
	}
}
