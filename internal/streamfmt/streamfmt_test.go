package streamfmt

import (
	"strings"
	"testing"

	"streambalance/internal/geo"
)

func TestUpdateRoundTrip(t *testing.T) {
	cases := []Update{
		{P: geo.Point{1, 2}},
		{P: geo.Point{100, 200, 300}, Delete: true},
		{P: geo.Point{7}},
	}
	for _, u := range cases {
		line := FormatUpdate(u)
		got, err := ParseUpdate(line, len(u.P))
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if !got.P.Equal(u.P) || got.Delete != u.Delete {
			t.Fatalf("round trip %q → %+v", line, got)
		}
	}
}

func TestParseUpdateErrors(t *testing.T) {
	bad := []string{"", "x 1,2", "+", "+ 1,a", "+ 1,2,3"}
	for _, line := range bad[:4] {
		if _, err := ParseUpdate(line, 2); err == nil {
			t.Fatalf("%q must error", line)
		}
	}
	// Dimension enforcement.
	if _, err := ParseUpdate("+ 1,2,3", 2); err == nil {
		t.Fatal("wrong dimension must error")
	}
	if _, err := ParseUpdate("+ 1,2,3", 0); err != nil {
		t.Fatal("dim=0 must accept any dimension")
	}
}

func TestWeightedRoundTrip(t *testing.T) {
	w := geo.Weighted{P: geo.Point{5, 6}, W: 12.5}
	got, err := ParseWeighted(FormatWeighted(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.P.Equal(w.P) || got.W != w.W {
		t.Fatalf("round trip → %+v", got)
	}
}

func TestParseWeightedErrors(t *testing.T) {
	for _, line := range []string{"", "1,2", "x 1,2", "-1 1,2", "0 1,2", "1 1,a"} {
		if _, err := ParseWeighted(line, 2); err == nil {
			t.Fatalf("%q must error", line)
		}
	}
}

func TestReadUpdatesSkipsCommentsAndCountsLines(t *testing.T) {
	in := "# header\n+ 1,2\n\n- 1,2\n+ 3,4\n"
	var ups []Update
	err := ReadUpdates(strings.NewReader(in), 2, func(u Update) error {
		ups = append(ups, u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 3 || !ups[0].P.Equal(geo.Point{1, 2}) || !ups[1].Delete {
		t.Fatalf("parsed %+v", ups)
	}
	// Error carries the 1-based line number.
	err = ReadUpdates(strings.NewReader("+ 1,2\nbogus\n"), 2, func(Update) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestReadWriteWeighted(t *testing.T) {
	ws := []geo.Weighted{
		{P: geo.Point{1, 2}, W: 3},
		{P: geo.Point{4, 5}, W: 0.5},
	}
	var sb strings.Builder
	if err := WriteWeighted(&sb, ws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeighted(strings.NewReader("# c\n"+sb.String()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].W != 0.5 || !got[0].P.Equal(geo.Point{1, 2}) {
		t.Fatalf("round trip %+v", got)
	}
}

func FuzzParseUpdate(f *testing.F) {
	f.Add("+ 1,2")
	f.Add("- 99,100")
	f.Add("+ -5,0")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, line string) {
		u, err := ParseUpdate(line, 0)
		if err != nil {
			return
		}
		// Any successfully parsed update must round-trip.
		back, err := ParseUpdate(FormatUpdate(u), 0)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", FormatUpdate(u), err)
		}
		if !back.P.Equal(u.P) || back.Delete != u.Delete {
			t.Fatalf("round trip changed %q", line)
		}
	})
}

func FuzzParseWeighted(f *testing.F) {
	f.Add("1 2,3")
	f.Add("0.25 7,8,9")
	f.Add("nope")
	f.Fuzz(func(t *testing.T, line string) {
		w, err := ParseWeighted(line, 0)
		if err != nil {
			return
		}
		if w.W <= 0 {
			t.Fatalf("accepted nonpositive weight from %q", line)
		}
		back, err := ParseWeighted(FormatWeighted(w), 0)
		if err != nil || back.W != w.W || !back.P.Equal(w.P) {
			t.Fatalf("round trip failed for %q: %v", line, err)
		}
	})
}
