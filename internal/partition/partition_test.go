package partition

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
)

func setup(t *testing.T, delta int64, dim int, seed int64) *grid.Grid {
	t.Helper()
	return grid.New(delta, dim, rand.New(rand.NewSource(seed)))
}

func clusteredPoints(rng *rand.Rand, n int, delta int64) geo.PointSet {
	// Two tight clusters plus sparse noise — a shape with genuinely heavy
	// cells at several levels.
	ps := make(geo.PointSet, 0, n)
	centers := []geo.Point{{delta / 4, delta / 4}, {3 * delta / 4, 3 * delta / 4}}
	for i := 0; i < n; i++ {
		if i%10 == 9 {
			ps = append(ps, geo.Point{1 + rng.Int63n(delta), 1 + rng.Int63n(delta)})
			continue
		}
		c := centers[i%2]
		p := geo.Point{
			clamp(c[0]+rng.Int63n(9)-4, delta),
			clamp(c[1]+rng.Int63n(9)-4, delta),
		}
		ps = append(ps, p)
	}
	return ps
}

func clamp(v, delta int64) int64 {
	if v < 1 {
		return 1
	}
	if v > delta {
		return delta
	}
	return v
}

// optUpper computes a valid uncapacitated k-clustering cost upper bound
// (k = 2 natural centers), usable as a legitimate o ≤ OPT after division.
func optUpper(ps geo.PointSet, r float64) float64 {
	Z := []geo.Point{{64, 64}, {192, 192}}
	var c float64
	for _, p := range ps {
		d, _ := geo.DistToSet(p, Z)
		c += geo.PowR(d, r)
	}
	return c
}

func TestThresholdMonotoneInLevel(t *testing.T) {
	g := setup(t, 256, 2, 1)
	for _, r := range []float64{1, 2} {
		prev := 0.0
		for level := -1; level <= g.L; level++ {
			th := ThresholdT(g, level, 1000, r)
			if th <= prev {
				t.Fatalf("T_i not increasing: level %d: %v ≤ %v", level, th, prev)
			}
			prev = th
		}
	}
}

func TestThresholdFormula(t *testing.T) {
	g := setup(t, 256, 4, 2)
	// T_i(o) = 0.01·o/(√d·g_i)^r with d=4, g_0=256, r=2: (2·256)² = 262144.
	want := 0.01 * 1e6 / (2 * 256 * 2 * 256)
	if got := ThresholdT(g, 0, 1e6, 2); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("T_0 = %v, want %v", got, want)
	}
}

func TestEveryPointInExactlyOnePart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := setup(t, 256, 2, 3)
	ps := clusteredPoints(rng, 600, 256)
	o := optUpper(ps, 2) / 4 // o ≤ OPT ⇒ root heavy (Fact A.1)
	p := Build(Input{Grid: g, R: 2, O: o, Counts: ExactCounts(g, ps)})

	// Exact per-part point counts via PartOf must match each part's Tau.
	got := map[PartID]float64{}
	for _, q := range ps {
		id, ok := p.PartOf(q)
		if !ok {
			t.Fatalf("point %v not covered by any part", q)
		}
		got[id]++
	}
	if len(got) == 0 {
		t.Fatal("no parts at all")
	}
	var sumTau float64
	for id, part := range p.Parts {
		if math.Abs(part.Tau-got[id]) > 1e-9 {
			t.Fatalf("part %+v: Tau %v but %v points map to it", id, part.Tau, got[id])
		}
		sumTau += part.Tau
	}
	if math.Abs(sumTau-float64(len(ps))) > 1e-9 {
		t.Fatalf("parts cover %v points, want %d", sumTau, len(ps))
	}
	for id := range got {
		if p.Parts[id] == nil {
			t.Fatalf("PartOf produced unknown part %+v", id)
		}
	}
}

func TestRootHeavyWithValidGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := setup(t, 256, 2, 4)
	ps := clusteredPoints(rng, 400, 256)
	o := optUpper(ps, 2) / 2
	p := Build(Input{Grid: g, R: 2, O: o, Counts: ExactCounts(g, ps)})
	rootKey := g.CellKey(ps[0], grid.MinLevel)
	if !p.IsHeavy(grid.MinLevel, rootKey) {
		t.Fatal("root cell must be heavy when o ≤ OPT (Fact A.1)")
	}
}

func TestHugeGuessFewerHeavyCells(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := setup(t, 256, 2, 5)
	ps := clusteredPoints(rng, 500, 256)
	small := Build(Input{Grid: g, R: 2, O: 100, Counts: ExactCounts(g, ps)})
	huge := Build(Input{Grid: g, R: 2, O: 1e12, Counts: ExactCounts(g, ps)})
	if huge.HeavyCount() >= small.HeavyCount() {
		t.Fatalf("heavy cells must shrink with o: %d (o huge) vs %d (o small)",
			huge.HeavyCount(), small.HeavyCount())
	}
	// With an absurdly large o the root fails the threshold: no part
	// contains anything.
	if huge.HeavyCount() == 0 {
		if _, ok := huge.PartOf(ps[0]); ok {
			t.Fatal("no heavy cells ⇒ PartOf must fail")
		}
	}
}

func TestHeavyCellBoundLemma33(t *testing.T) {
	// Lemma 3.3: with o ≈ OPT the number of heavy cells is
	// O((k + d^{1.5r})·L·OPT/o). We check the qualitative bound with a
	// generous constant.
	rng := rand.New(rand.NewSource(6))
	g := setup(t, 256, 2, 6)
	ps := clusteredPoints(rng, 800, 256)
	opt := optUpper(ps, 2) // an upper bound on OPT_2; use o = opt/10 ≤ OPT
	o := opt / 10
	p := Build(Input{Grid: g, R: 2, O: o, Counts: ExactCounts(g, ps)})
	k, d, L := 2.0, 2.0, float64(g.L)
	bound := 20000 * (k + math.Pow(d, 3)) * L // the Algorithm 2 FAIL budget
	if float64(p.HeavyCount()) > bound {
		t.Fatalf("heavy cells %d exceed the Algorithm 2 budget %v", p.HeavyCount(), bound)
	}
	if p.HeavyCount() == 0 {
		t.Fatal("expected at least the root to be heavy")
	}
}

func TestCrucialCellsHaveHeavyParentsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := setup(t, 128, 2, 7)
	ps := clusteredPoints(rng, 300, 128)
	p := Build(Input{Grid: g, R: 2, O: optUpper(ps, 2) / 5, Counts: ExactCounts(g, ps)})
	for id, part := range p.Parts {
		if !p.IsHeavy(id.Level-1, id.Parent) {
			t.Fatalf("part %+v: parent not heavy", id)
		}
		for i, key := range part.Keys {
			if id.Level <= g.L-1 && p.IsHeavy(id.Level, key) {
				t.Fatalf("part %+v contains a heavy (non-crucial) cell", id)
			}
			// Each crucial cell's parent must be the part's parent.
			if g.KeyOf(id.Level-1, grid.ParentIndex(part.Cells[i].Index)) != id.Parent {
				t.Fatalf("part %+v groups a cell with a different parent", id)
			}
		}
	}
}

func TestPartOfAgreesWithPartMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := setup(t, 128, 2, 8)
	ps := clusteredPoints(rng, 400, 128)
	p := Build(Input{Grid: g, R: 2, O: optUpper(ps, 2) / 3, Counts: ExactCounts(g, ps)})
	for _, q := range ps {
		id, ok := p.PartOf(q)
		if !ok {
			t.Fatalf("uncovered point %v", q)
		}
		// The crucial cell key of q at id.Level must be listed in the part.
		key := g.CellKey(q, id.Level)
		part := p.Parts[id]
		found := false
		for _, k := range part.Keys {
			if k == key {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %v's crucial cell missing from its part", q)
		}
	}
}

func TestSinglePointInput(t *testing.T) {
	g := setup(t, 16, 2, 9)
	ps := geo.PointSet{{5, 5}}
	// o tiny: every cell on the path is heavy (τ = 1 ≥ T for small T), so
	// the point lands in the level-L part.
	p := Build(Input{Grid: g, R: 2, O: 1e-6, Counts: ExactCounts(g, ps)})
	id, ok := p.PartOf(ps[0])
	if !ok {
		t.Fatal("point not covered")
	}
	if id.Level != g.L {
		t.Fatalf("expected the level-L part, got level %d", id.Level)
	}
}

func TestBadCountsLengthPanics(t *testing.T) {
	g := setup(t, 16, 2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(Input{Grid: g, R: 2, O: 1, Counts: make([]map[uint64]CellTau, 2)})
}

func TestTrivialUpperBoundO(t *testing.T) {
	g := setup(t, 16, 4, 11)
	// n·(√4·16)² = n·1024
	if got := TrivialUpperBoundO(10, g, 2); got != 10*1024 {
		t.Fatalf("TrivialUpperBoundO = %v", got)
	}
}
