// Package partition implements Algorithm 1 of the paper: partitioning the
// input point set via heavy cells of a randomly shifted hierarchical grid.
//
// Given a guess o of the optimal (uncapacitated) ℓ_r k-clustering cost,
// level i uses the threshold T_i(o) = 0.01·o/(√d·g_i)^r. A cell is heavy
// when its (estimated) point count reaches T_i(o) and all its ancestors
// are heavy; a cell whose ancestors are all heavy but which is not itself
// heavy is crucial. The points inside the crucial descendants of the j-th
// heavy cell of G_{i−1} form the part Q_{i,j}; Lemma 3.3 bounds the number
// of heavy cells and Lemma 3.4 shows that dropping small parts barely
// perturbs any capacitated clustering cost — the two facts the coreset
// construction (Algorithm 2) builds on.
package partition

import (
	"math"
	"sort"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
)

// CellTau is a non-empty cell together with its (estimated) point count τ.
type CellTau struct {
	Index []int64 // cell index vector at the cell's level
	Tau   float64 // estimated |C ∩ Q|
}

// Input bundles everything Algorithm 1 needs.
type Input struct {
	Grid *grid.Grid
	R    float64 // the ℓ_r exponent
	O    float64 // guess of OPT^{(r)}_{k-clus}
	// Counts[level+1] maps cell key → CellTau for grid level `level`,
	// level ∈ {−1, 0, ..., L}. Only non-empty cells need entries. These
	// estimates drive the heavy-cell marking (the h-substream of
	// Algorithm 4 / step 3 of Algorithm 3).
	Counts []map[uint64]CellTau
	// PartCounts, when non-nil, supplies the cell estimates used to
	// enumerate crucial cells and accumulate part masses τ(Q_{i,j}) — in
	// the streaming algorithm these come from the independent h′-substream
	// (Algorithm 3 steps 4–5). Nil means reuse Counts (the offline case).
	PartCounts []map[uint64]CellTau
}

// PartID identifies a part Q_{i,j} by its level i and the key of its
// parent heavy cell in G_{i−1}.
type PartID struct {
	Level  int
	Parent uint64
}

// Part is one part Q_{i,j} of the partition: the crucial cells at level
// `ID.Level` sharing the heavy parent `ID.Parent`.
type Part struct {
	ID    PartID
	Cells []CellTau // crucial cells composing the part
	Keys  []uint64  // cell keys parallel to Cells
	Tau   float64   // Σ τ over the crucial cells ≈ |Q_{i,j}|
}

// Partition is the output of Algorithm 1.
type Partition struct {
	Grid  *grid.Grid
	R     float64
	O     float64
	heavy []map[uint64]bool // heavy[level+1], levels −1..L−1
	Parts map[PartID]*Part
}

// ThresholdT returns T_i(o) = 0.01·o/(√d·g_i)^r for this partition's o.
func (p *Partition) ThresholdT(level int) float64 {
	return ThresholdT(p.Grid, level, p.O, p.R)
}

// ThresholdT computes T_i(o) = 0.01·o/(√d·g_i)^r.
func ThresholdT(g *grid.Grid, level int, o, r float64) float64 {
	diag := math.Sqrt(float64(g.Dim)) * float64(g.SideLen(level))
	return 0.01 * o / geo.PowR(diag, r)
}

// CountSource lazily supplies the (estimated) non-empty cell counts for
// one grid level. ok = false signals that the estimates for this level
// are unavailable (a FAILed sketch in the streaming setting); BuildLazy
// then aborts. A level is only ever requested if it can matter: heavy
// marking requests level i only while heavy cells still exist above it,
// and part collection only requests levels with a heavy parent level.
type CountSource func(level int) (map[uint64]CellTau, bool)

// ErrCounts is returned by BuildLazy when a consulted CountSource reports
// failure.
type ErrCounts struct{ Level int }

func (e ErrCounts) Error() string {
	return "partition: cell counts unavailable for level " + itoa(e.Level)
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// Build runs Algorithm 1 on the given (estimated) cell counts.
func Build(in Input) *Partition {
	g := in.Grid
	L := g.L
	if len(in.Counts) != L+2 {
		panic("partition: Counts must cover levels -1..L")
	}
	partCounts := in.PartCounts
	if partCounts == nil {
		partCounts = in.Counts
	}
	if len(partCounts) != L+2 {
		panic("partition: PartCounts must cover levels -1..L")
	}
	p, err := BuildLazy(g, in.R, in.O,
		func(level int) (map[uint64]CellTau, bool) { return in.Counts[level+1], true },
		func(level int) (map[uint64]CellTau, bool) { return partCounts[level+1], true },
	)
	if err != nil {
		panic("partition: map-backed sources cannot fail: " + err.Error())
	}
	return p
}

// BuildLazy runs Algorithm 1 with lazily supplied count estimates,
// consulting each level's source only if that level can still contain
// heavy or crucial cells. This is how the streaming algorithm avoids
// decoding (and hence avoids FAILing on) sketches of levels below the
// deepest heavy cell, whose contents the partition never uses.
func BuildLazy(g *grid.Grid, r, o float64, counts, partCounts CountSource) (*Partition, error) {
	L := g.L
	p := &Partition{
		Grid:  g,
		R:     r,
		O:     o,
		heavy: make([]map[uint64]bool, L+1), // levels −1..L−1
		Parts: make(map[PartID]*Part),
	}
	for i := range p.heavy {
		p.heavy[i] = map[uint64]bool{}
	}
	// Mark heavy cells top-down (lines 4–11 of Algorithm 1), stopping at
	// the first level that can no longer contain heavy cells.
	for level := -1; level <= L-1; level++ {
		if level > -1 && len(p.heavy[level]) == 0 {
			break // no heavy parents ⇒ no heavy cells below
		}
		cts, ok := counts(level)
		if !ok {
			return nil, ErrCounts{Level: level}
		}
		th := ThresholdT(g, level, o, r)
		for key, ct := range cts {
			if ct.Tau < th {
				continue
			}
			if level == -1 || p.heavy[level][g.KeyOf(level-1, grid.ParentIndex(ct.Index))] {
				p.heavy[level+1][key] = true
			}
		}
	}
	// Collect crucial cells into parts (lines 9, 12, 14). Part masses may
	// come from an independent estimate source (streaming h′-substream).
	// Cells are visited in sorted key order: τ(Q_{i,j}) is a float sum, and
	// summing in map-iteration order would make the last-ulp value — and
	// hence any borderline inclusion or FAIL threshold downstream — vary
	// between otherwise identical runs.
	for level := 0; level <= L; level++ {
		if len(p.heavy[level]) == 0 {
			continue // no heavy parent level ⇒ no crucial cells here
		}
		cts, ok := partCounts(level)
		if !ok {
			return nil, ErrCounts{Level: level}
		}
		keys := make([]uint64, 0, len(cts))
		for key := range cts {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, key := range keys {
			ct := cts[key]
			parentIdx := grid.ParentIndex(ct.Index)
			parentKey := g.KeyOf(level-1, parentIdx)
			if !p.heavy[level][parentKey] {
				continue // some ancestor is not heavy
			}
			if level <= L-1 && p.heavy[level+1][key] {
				continue // heavy itself, not crucial
			}
			id := PartID{Level: level, Parent: parentKey}
			part := p.Parts[id]
			if part == nil {
				part = &Part{ID: id}
				p.Parts[id] = part
			}
			part.Cells = append(part.Cells, ct)
			part.Keys = append(part.Keys, key)
			part.Tau += ct.Tau
		}
	}
	return p, nil
}

// HeavyCount returns Σ_i s_i, the total number of heavy cells across
// levels −1..L−1 (line 13 of Algorithm 1 counts s_i = heavy cells in
// G_{i−1} for i ∈ {0..L}, which is the same total).
func (p *Partition) HeavyCount() int {
	n := 0
	for _, m := range p.heavy {
		n += len(m)
	}
	return n
}

// IsHeavy reports whether the level-`level` cell with the given key was
// marked heavy. Valid for level ∈ {−1..L−1}.
func (p *Partition) IsHeavy(level int, key uint64) bool {
	if level < -1 || level > p.Grid.L-1 {
		return false
	}
	return p.heavy[level+1][key]
}

// PartOf locates the part containing point q: the unique level whose cell
// containing q is crucial. ok is false when q falls outside every heavy
// cell (possible only if the root was not heavy, i.e. o was far too
// large).
func (p *Partition) PartOf(q geo.Point) (PartID, bool) {
	g := p.Grid
	if !p.heavy[0][g.CellKey(q, -1)] {
		return PartID{}, false
	}
	for level := 0; level <= g.L; level++ {
		key := g.CellKey(q, level)
		if level == g.L || !p.heavy[level+1][key] {
			return PartID{Level: level, Parent: g.CellKey(q, level-1)}, true
		}
	}
	return PartID{}, false // unreachable
}

// LevelCount returns the number of parts at each level (diagnostics).
func (p *Partition) LevelCount() []int {
	out := make([]int, p.Grid.L+1)
	for id := range p.Parts {
		out[id.Level]++
	}
	return out
}

// ExactCounts computes exact per-cell point counts for all levels
// −1..L — the offline instantiation of the τ estimates (Theorem 3.19's
// "easy to compute the exact value" remark).
func ExactCounts(g *grid.Grid, ps geo.PointSet) []map[uint64]CellTau {
	counts := make([]map[uint64]CellTau, g.L+2)
	for level := -1; level <= g.L; level++ {
		counts[level+1] = make(map[uint64]CellTau)
	}
	for _, p := range ps {
		for level := -1; level <= g.L; level++ {
			key := g.CellKey(p, level)
			ct, ok := counts[level+1][key]
			if !ok {
				ct = CellTau{Index: g.CellIndex(p, level)}
			}
			ct.Tau++
			counts[level+1][key] = ct
		}
	}
	return counts
}

// TrivialUpperBoundO returns n·(√d·Δ)^r, the largest meaningful guess o
// (every point at maximal distance from its center); the o-enumeration of
// Theorem 3.19 stops here.
func TrivialUpperBoundO(n int, g *grid.Grid, r float64) float64 {
	diag := math.Sqrt(float64(g.Dim)) * float64(g.Delta)
	return float64(n) * geo.PowR(diag, r)
}
