package assign

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func randWeighted(rng *rand.Rand, n, d int, delta int64) []geo.Weighted {
	ws := make([]geo.Weighted, n)
	for i := range ws {
		p := make(geo.Point, d)
		for c := range p {
			p[c] = 1 + rng.Int63n(delta)
		}
		ws[i] = geo.Weighted{P: p, W: 0.25 + rng.Float64()*4}
	}
	return ws
}

func randCenters(rng *rand.Rand, k, d int, delta int64) []geo.Point {
	Z := make([]geo.Point, k)
	for i := range Z {
		p := make(geo.Point, d)
		for c := range p {
			p[c] = 1 + rng.Int63n(delta)
		}
		Z[i] = p
	}
	return Z
}

// TestAssignEngineColdMatchesFresh pins the arena to the per-call path:
// rebinding centers and solving cold must reproduce FractionalCost
// bit-for-bit (cost and every arc flow), across center sets of varying k
// reusing one engine.
func TestAssignEngineColdMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, r := range []float64{1, 2, 1.5} {
		ws := randWeighted(rng, 40, 2, 64)
		eng := NewSolver()
		eng.SetWarmStart(false) // cold-only: every solve must be bitwise legacy
		eng.Bind(ws, r)
		total := geo.TotalWeight(ws)
		for trial := 0; trial < 12; trial++ {
			k := 2 + rng.Intn(4)
			Z := randCenters(rng, k, 2, 64)
			eng.SetCenters(Z)
			// Include a near-tight, a loose, and an infeasible capacity.
			for _, tCap := range []float64{total / float64(k) * 0.9, total / float64(k) * 1.03, total / float64(k) * 2.5} {
				got, gotOK := eng.Fractional(tCap)
				want, x, wantOK := FractionalCost(ws, Z, tCap, r)
				if gotOK != wantOK {
					t.Fatalf("r=%g trial %d t=%g: ok %v, fresh %v", r, trial, tCap, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				if got != want {
					t.Fatalf("r=%g trial %d t=%g: cost %v != fresh %v (Δ=%g)", r, trial, tCap, got, want, got-want)
				}
				flows := eng.FlowsByID()
				for i := range ws {
					for j := range Z {
						f := flows[eng.arcID[i*k+j]]
						want := x[i][j]
						// FractionalCost zeroes sub-Eps dust in x.
						if f <= 1e-9 && want == 0 {
							continue
						}
						if f != want {
							t.Fatalf("r=%g trial %d t=%g: flow[%d][%d] %v != fresh %v", r, trial, tCap, i, j, f, want)
						}
					}
				}
			}
		}
	}
}

// TestAssignEngineWarmMatchesCold runs E1-shaped monotone capacity sweeps
// and checks the warm-started solve lands on the same optimum as a cold
// solve: identical cost through the flow-determined CostOfFlows lens, and
// identical total assigned mass per center (the optimum's cost is unique;
// individual arc flows may differ only across exactly-tied optima, which
// the random instances here avoid in cost).
func TestAssignEngineWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, r := range []float64{1, 2} {
		ws := randWeighted(rng, 36, 2, 128)
		total := geo.TotalWeight(ws)
		warm := NewSolver()
		warm.Bind(ws, r)
		cold := NewSolver()
		cold.SetWarmStart(false)
		cold.Bind(ws, r)
		for trial := 0; trial < 10; trial++ {
			k := 3 + rng.Intn(3)
			Z := randCenters(rng, k, 2, 128)
			warm.SetCenters(Z)
			cold.SetCenters(Z)
			b := total / float64(k)
			for _, mult := range []float64{1.01, 1.05, 1.3, 2, 4} { // monotone sweep
				tCap := b * mult
				wCost, wOK := warm.Fractional(tCap)
				cCost, cOK := cold.Fractional(tCap)
				if wOK != cOK {
					t.Fatalf("r=%g trial %d t=%g: warm ok %v, cold ok %v", r, trial, tCap, wOK, cOK)
				}
				if !wOK {
					continue
				}
				// Compare both through the same deterministic lens.
				cRecost := cold.CostOfFlows()
				if math.Abs(wCost-cRecost) > 1e-9*(1+math.Abs(cRecost)) {
					t.Fatalf("r=%g trial %d t=%g: warm cost %v != cold %v (Δ=%g)", r, trial, tCap, wCost, cRecost, wCost-cRecost)
				}
				if math.Abs(cCost-cRecost) > 1e-9*(1+math.Abs(cRecost)) {
					t.Fatalf("r=%g trial %d t=%g: cold incremental %v vs recost %v", r, trial, tCap, cCost, cRecost)
				}
				// Per-center assigned mass must agree to float tolerance.
				wf, cf := warm.FlowsByID(), cold.FlowsByID()
				n := len(ws)
				for j := 0; j < k; j++ {
					var wm, cm float64
					for i := 0; i < n; i++ {
						wm += wf[warm.arcID[i*k+j]]
						cm += cf[cold.arcID[i*k+j]]
					}
					if math.Abs(wm-cm) > 1e-6*(1+total) {
						t.Fatalf("r=%g trial %d t=%g: center %d mass warm %v cold %v", r, trial, tCap, j, wm, cm)
					}
				}
			}
		}
	}
}

// TestAssignEngineWarmAfterShrink checks a capacity decrease mid-sweep
// silently falls back to a cold solve and still matches the fresh path.
func TestAssignEngineWarmAfterShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ws := randWeighted(rng, 30, 2, 64)
	Z := randCenters(rng, 4, 2, 64)
	total := geo.TotalWeight(ws)
	b := total / 4
	eng := NewSolver()
	eng.Bind(ws, 2)
	eng.SetCenters(Z)
	seq := []float64{b * 1.02, b * 2, b * 1.1, b * 3, b * 1.5}
	for _, tCap := range seq {
		got, gotOK := eng.Fractional(tCap)
		want, _, wantOK := FractionalCost(ws, Z, tCap, 2)
		if gotOK != wantOK {
			t.Fatalf("t=%g: ok %v, fresh %v", tCap, gotOK, wantOK)
		}
		if !wantOK {
			continue
		}
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("t=%g: cost %v != fresh %v (Δ=%g)", tCap, got, want, got-want)
		}
	}
}

// TestAssignEngineOptimalMatchesFresh pins the integral path: the engine's
// Optimal must reproduce the package-level Optimal exactly — cost,
// assignment vector, and sizes — since downstream experiments consume the
// tie-broken assignment itself.
func TestAssignEngineOptimalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, r := range []float64{1, 2} {
		ps := make(geo.PointSet, 32)
		for i := range ps {
			ps[i] = geo.Point{1 + rng.Int63n(48), 1 + rng.Int63n(48)}
		}
		eng := NewSolver()
		eng.BindPoints(ps, r)
		for trial := 0; trial < 8; trial++ {
			k := 2 + rng.Intn(4)
			Z := randCenters(rng, k, 2, 48)
			eng.SetCenters(Z)
			for _, tCap := range []float64{float64(len(ps)) / float64(k) * 0.8, float64(len(ps))/float64(k) + 1, float64(len(ps))} {
				got, gotOK := eng.Optimal(tCap)
				want, wantOK := Optimal(ps, Z, tCap, r)
				if gotOK != wantOK {
					t.Fatalf("r=%g trial %d t=%g: ok %v, fresh %v", r, trial, tCap, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				if got.Cost != want.Cost {
					t.Fatalf("r=%g trial %d t=%g: cost %v != fresh %v", r, trial, tCap, got.Cost, want.Cost)
				}
				for i := range got.Assign {
					if got.Assign[i] != want.Assign[i] {
						t.Fatalf("r=%g trial %d t=%g: assign[%d] %d != fresh %d", r, trial, tCap, i, got.Assign[i], want.Assign[i])
					}
				}
				for j := range got.Sizes {
					if got.Sizes[j] != want.Sizes[j] {
						t.Fatalf("r=%g trial %d t=%g: sizes[%d] %v != fresh %v", r, trial, tCap, j, got.Sizes[j], want.Sizes[j])
					}
				}
			}
		}
	}
}

// TestAssignEngineUnconstrainedMatchesFresh pins the nearest-center cost
// read off the shared distance block to the scalar path.
func TestAssignEngineUnconstrainedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, r := range []float64{1, 2, 1.5} {
		ws := randWeighted(rng, 50, 3, 100)
		eng := NewSolver()
		eng.Bind(ws, r)
		for trial := 0; trial < 6; trial++ {
			Z := randCenters(rng, 5, 3, 100)
			eng.SetCenters(Z)
			got := eng.Unconstrained()
			want := UnconstrainedCost(ws, Z, r)
			if got != want {
				t.Fatalf("r=%g trial %d: %v != fresh %v (Δ=%g)", r, trial, got, want, got-want)
			}
		}
	}
}
