// Package assign implements capacitated assignment of (weighted) points
// to centers: the cost functions cost^{(r)}_t of Section 2, optimal
// assignments via min-cost flow, the fractional-to-integral rounding of
// Section 3.3 (cycle elimination leaving at most k−1 split points), the
// half-space structure of Definitions 2.2/3.7/3.10 with the curved
// ℓ_r hyperplanes of Section 1.2, and the assignment transfer of
// Definition 3.11.
package assign

import (
	"math"

	"streambalance/internal/flow"
	"streambalance/internal/geo"
)

// Result describes an assignment of points to centers.
type Result struct {
	Assign []int     // Assign[i] = index into Z of point i's center
	Cost   float64   // Σ w(p)·dist^r(p, Z[Assign[p]])
	Sizes  []float64 // total assigned weight per center (the size vector s(π))
}

// Infeasible is returned (with ok == false) when no assignment satisfies
// the capacity constraint, mirroring cost_t = ∞ in the paper.
var Infeasible = Result{Cost: math.Inf(1)}

// UnconstrainedCost computes cost^{(r)}(Q, Z, w) = Σ w(p)·dist^r(p, Z):
// every point served by its nearest center (capacity t = ∞).
func UnconstrainedCost(ws []geo.Weighted, Z []geo.Point, r float64) float64 {
	var c float64
	for _, w := range ws {
		d, _ := geo.DistToSet(w.P, Z)
		c += w.W * geo.PowR(d, r)
	}
	return c
}

// CostOfAssignment evaluates Σ w(p)·dist^r(p, Z[pi[p]]) for an explicit
// assignment pi. Entries with pi[i] < 0 are skipped.
func CostOfAssignment(ws []geo.Weighted, Z []geo.Point, pi []int, r float64) float64 {
	var c float64
	for i, w := range ws {
		if pi[i] < 0 {
			continue
		}
		c += w.W * geo.DistR(w.P, Z[pi[i]], r)
	}
	return c
}

// SizeVector computes s(π): total assigned weight per center.
func SizeVector(ws []geo.Weighted, pi []int, k int) []float64 {
	s := make([]float64, k)
	for i, w := range ws {
		if pi[i] >= 0 {
			s[pi[i]] += w.W
		}
	}
	return s
}

// Optimal computes the optimal capacitated assignment of unit-weight (or
// uniformly weighted) points to centers Z under per-center capacity t
// (in points), i.e. cost^{(r)}_t(Q, Z). By transportation integrality the
// min-cost flow solution is integral, so the result is the exact optimum.
// ok is false when ⌊t⌋·k < |ps| (no feasible partition).
func Optimal(ps geo.PointSet, Z []geo.Point, t float64, r float64) (Result, bool) {
	n, k := len(ps), len(Z)
	if n == 0 {
		return Result{Assign: nil, Sizes: make([]float64, k)}, true
	}
	capPer := math.Floor(t + 1e-9)
	if capPer*float64(k) < float64(n) {
		return Infeasible, false
	}
	// Nodes: 0 = S, 1..n = points, n+1..n+k = centers, n+k+1 = T.
	g := flow.NewGraph(n + k + 2)
	src, sink := 0, n+k+1
	edgeID := make([][]int, n)
	for i, p := range ps {
		g.AddEdge(src, 1+i, 1, 0)
		edgeID[i] = make([]int, k)
		for j, z := range Z {
			edgeID[i][j] = g.AddEdge(1+i, n+1+j, 1, geo.DistR(p, z, r))
		}
	}
	for j := 0; j < k; j++ {
		g.AddEdge(n+1+j, sink, capPer, 0)
	}
	f, cost := g.MinCostFlow(src, sink, float64(n))
	if f < float64(n)-1e-6 {
		return Infeasible, false
	}
	flows := g.FlowsByID()
	res := Result{Assign: make([]int, n), Cost: cost, Sizes: make([]float64, k)}
	for i := 0; i < n; i++ {
		res.Assign[i] = -1
		for j := 0; j < k; j++ {
			if flows[edgeID[i][j]] > 0.5 {
				res.Assign[i] = j
				res.Sizes[j]++
				break
			}
		}
		if res.Assign[i] < 0 {
			return Infeasible, false // should not happen at full flow
		}
	}
	return res, true
}

// FractionalCost computes the optimal fractional capacitated assignment
// cost of weighted points (weights may be split across centers), i.e. the
// LP relaxation of cost^{(r)}_t(Q, Z, w) that Section 3.3 solves by
// minimum-cost flow. It returns the cost and the flow matrix
// x[i][j] = weight of point i served by center j. ok is false when
// t·k < Σw (infeasible).
func FractionalCost(ws []geo.Weighted, Z []geo.Point, t float64, r float64) (float64, [][]float64, bool) {
	n, k := len(ws), len(Z)
	if n == 0 {
		return 0, nil, true
	}
	total := geo.TotalWeight(ws)
	if t*float64(k) < total-1e-9 {
		return math.Inf(1), nil, false
	}
	g := flow.NewGraph(n + k + 2)
	src, sink := 0, n+k+1
	edgeID := make([][]int, n)
	for i, w := range ws {
		g.AddEdge(src, 1+i, w.W, 0)
		edgeID[i] = make([]int, k)
		for j, z := range Z {
			edgeID[i][j] = g.AddEdge(1+i, n+1+j, w.W, geo.DistR(w.P, z, r))
		}
	}
	for j := 0; j < k; j++ {
		g.AddEdge(n+1+j, sink, t, 0)
	}
	f, cost := g.MinCostFlow(src, sink, total)
	if f < total-1e-6*math.Max(1, total) {
		return math.Inf(1), nil, false
	}
	flows := g.FlowsByID()
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if v := flows[edgeID[i][j]]; v > flow.Eps {
				x[i][j] = v
			}
		}
	}
	return cost, x, true
}

// Weighted computes an integral capacitated assignment for weighted
// points following Section 3.3: solve the fractional problem by min-cost
// flow, eliminate cycles in the bipartite support graph (each elimination
// is cost-neutral because the fractional solution is optimal), leaving at
// most k−1 points with split weight, then assign each remaining split
// point wholly to its nearest center. The returned size vector therefore
// exceeds t by at most (k−1)·max w(p), exactly the slack the paper
// absorbs into the (1+η) capacity violation.
func Weighted(ws []geo.Weighted, Z []geo.Point, t float64, r float64) (Result, bool) {
	n, k := len(ws), len(Z)
	if n == 0 {
		return Result{Sizes: make([]float64, k)}, true
	}
	_, x, ok := FractionalCost(ws, Z, t, r)
	if !ok {
		return Infeasible, false
	}
	eliminateCycles(x, ws, Z, r)
	res := Result{Assign: make([]int, n), Sizes: make([]float64, k)}
	for i := range ws {
		// Count support.
		support := -1
		split := false
		for j := 0; j < k; j++ {
			if x[i][j] > flow.Eps {
				if support >= 0 {
					split = true
					break
				}
				support = j
			}
		}
		if split || support < 0 {
			// Split (or numerically lost) point → nearest center, per §3.3.
			_, support = geo.DistToSet(ws[i].P, Z)
		}
		res.Assign[i] = support
		res.Sizes[support] += ws[i].W
	}
	res.Cost = CostOfAssignment(ws, Z, res.Assign, r)
	return res, true
}

// eliminateCycles removes cycles from the bipartite point–center support
// graph of a fractional assignment x by shifting flow around each cycle
// in its cost-nonincreasing direction until the support is a forest
// (Section 3.3 steps 1–4). x is modified in place.
func eliminateCycles(x [][]float64, ws []geo.Weighted, Z []geo.Point, r float64) {
	n, k := len(x), len(Z)
	if n == 0 {
		return
	}
	costOf := func(i, j int) float64 { return geo.DistR(ws[i].P, Z[j], r) }
	for {
		cyc := findSupportCycle(x, n, k)
		if cyc == nil {
			return
		}
		// cyc alternates point,center,point,center,... as (pt, ct) edge
		// pairs: edges are (p_0,c_0),(p_1,c_0),(p_1,c_1),...,(p_0,c_{m-1}).
		// We receive it as a list of (point, center) edges with alternating
		// +/− orientation.
		delta := 0.0
		min := math.Inf(1)
		for idx, e := range cyc {
			if idx%2 == 0 {
				delta -= costOf(e[0], e[1]) // flow decreases on even edges
				if x[e[0]][e[1]] < min {
					min = x[e[0]][e[1]]
				}
			} else {
				delta += costOf(e[0], e[1])
			}
		}
		// At a fractional optimum every cycle is cost-neutral (delta ≈ 0);
		// numerical slack can leave a tiny nonzero delta, in which case we
		// shift in the nonincreasing direction.
		if delta > 0 {
			// Reverse orientation: decrease odd edges instead.
			min = math.Inf(1)
			for idx, e := range cyc {
				if idx%2 == 1 && x[e[0]][e[1]] < min {
					min = x[e[0]][e[1]]
				}
			}
			for idx, e := range cyc {
				if idx%2 == 1 {
					x[e[0]][e[1]] -= min
				} else {
					x[e[0]][e[1]] += min
				}
			}
		} else {
			for idx, e := range cyc {
				if idx%2 == 0 {
					x[e[0]][e[1]] -= min
				} else {
					x[e[0]][e[1]] += min
				}
			}
		}
		// Clean numerical dust so the support strictly shrinks.
		for _, e := range cyc {
			if x[e[0]][e[1]] < flow.Eps {
				x[e[0]][e[1]] = 0
			}
		}
	}
}

// findSupportCycle returns a cycle in the bipartite support graph as an
// alternating edge list [(p,c),(p',c),(p',c'),...] or nil if the support
// is a forest. Even-indexed and odd-indexed edges alternate orientation
// around the cycle.
func findSupportCycle(x [][]float64, n, k int) [][2]int {
	// Nodes: 0..n−1 points, n..n+k−1 centers.
	adj := make([][]int, n+k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			if x[i][j] > flow.Eps {
				adj[i] = append(adj[i], n+j)
				adj[n+j] = append(adj[n+j], i)
			}
		}
	}
	state := make([]int, n+k) // 0 unvisited, 1 in stack, 2 done
	parent := make([]int, n+k)
	for i := range parent {
		parent[i] = -1
	}
	var cycleNodes []int
	var dfs func(u, from int) bool
	dfs = func(u, from int) bool {
		state[u] = 1
		for _, v := range adj[u] {
			if v == from {
				from = -2 // skip the immediate parent once (multi-edges impossible here)
				continue
			}
			if state[v] == 1 {
				// Found a cycle: walk back from u to v.
				cycleNodes = append(cycleNodes, v)
				for w := u; w != v; w = parent[w] {
					cycleNodes = append(cycleNodes, w)
				}
				return true
			}
			if state[v] == 0 {
				parent[v] = u
				if dfs(v, u) {
					return true
				}
			}
		}
		state[u] = 2
		return false
	}
	for s := 0; s < n+k; s++ {
		if state[s] == 0 && dfs(s, -1) {
			break
		}
	}
	if cycleNodes == nil {
		return nil
	}
	// cycleNodes is a closed walk v, u_m, ..., u_1 with u_1 adjacent to v.
	// Convert node cycle to edge list in order, normalizing each edge to
	// (point, center).
	m := len(cycleNodes)
	edges := make([][2]int, 0, m)
	for i := 0; i < m; i++ {
		a, b := cycleNodes[i], cycleNodes[(i+1)%m]
		if a < n {
			edges = append(edges, [2]int{a, b - n})
		} else {
			edges = append(edges, [2]int{b, a - n})
		}
	}
	return edges
}
