package assign

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func TestPairKeyAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := randPts(rng, 1, 3, 100)[0]
		zi := randPts(rng, 1, 3, 100)[0]
		zj := randPts(rng, 1, 3, 100)[0]
		for _, r := range []float64{1, 2, 3} {
			a := PairKey(p, zi, zj, r)
			b := PairKey(p, zj, zi, r)
			if math.Abs(a+b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("κ_ij ≠ −κ_ji: %v vs %v", a, b)
			}
		}
	}
}

func TestVerifySeparationOnOptimalAssignments(t *testing.T) {
	// The Figures 1–3 / Lemma 3.8 property: optimal capacitated
	// assignments are pairwise separable by curved ℓ_r hyperplanes.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(10)
		k := 2 + rng.Intn(3)
		ps := randPts(rng, n, 2, 1000)
		Z := randPts(rng, k, 2, 1000)
		tcap := math.Ceil(float64(n)/float64(k)) + float64(rng.Intn(3))
		for _, r := range []float64{1, 2, 3} {
			res, ok := Optimal(ps, Z, tcap, r)
			if !ok {
				continue
			}
			rep := VerifySeparation(ps, res.Assign, Z, r, 1e-6)
			if !rep.Separable {
				t.Fatalf("trial %d r=%v: optimal assignment not separable (violation %v)",
					trial, r, rep.WorstViolation)
			}
		}
	}
}

func TestVerifySeparationDetectsBadAssignment(t *testing.T) {
	// Deliberately crossed assignment must be flagged.
	ps := geo.PointSet{{1, 1}, {100, 100}}
	Z := []geo.Point{{1, 1}, {100, 100}}
	crossed := []int{1, 0} // each point to the far center
	rep := VerifySeparation(ps, crossed, Z, 2, 1e-9)
	if rep.Separable {
		t.Fatal("crossed assignment reported separable")
	}
	good := []int{0, 1}
	if rep2 := VerifySeparation(ps, good, Z, 2, 1e-9); !rep2.Separable {
		t.Fatal("natural assignment reported non-separable")
	}
}

func TestFromAssignmentRegionsReproduceAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mismatches := 0
	for trial := 0; trial < 20; trial++ {
		n, k := 14, 3
		ps := randPts(rng, n, 2, 100000)
		Z := randPts(rng, k, 2, 100000)
		tcap := 5.0
		res, ok := Optimal(ps, Z, tcap, 2)
		if !ok {
			continue
		}
		hs, sep := FromAssignment(ps, res.Assign, Z, 2)
		if !sep {
			continue // exact κ ties; the paper resolves them by switching
		}
		for i, p := range ps {
			reg := hs.Region(p)
			if reg != res.Assign[i] {
				// Allowed only if p sits exactly on a threshold.
				onBoundary := false
				for j := 0; j < k; j++ {
					if j == res.Assign[i] {
						continue
					}
					a, b := res.Assign[i], j
					var key, thr float64
					if a < b {
						key, thr = PairKey(p, Z[a], Z[b], 2), hs.A[a][b]
					} else {
						key, thr = PairKey(p, Z[b], Z[a], 2), hs.A[b][a]
					}
					if math.Abs(key-thr) < 1e-9 {
						onBoundary = true
					}
				}
				if !onBoundary {
					mismatches++
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d interior points disagree with their half-space region", mismatches)
	}
}

func TestRegionCounts(t *testing.T) {
	Z := []geo.Point{{10, 10}, {90, 90}}
	hs := NewHalfSpaceSet(Z, 2)
	// Threshold at κ = 0: the perpendicular bisector.
	hs.A[0][1] = 0
	ws := []geo.Weighted{
		{P: geo.Point{5, 5}, W: 1},   // near z0
		{P: geo.Point{20, 15}, W: 2}, // near z0
		{P: geo.Point{95, 95}, W: 4}, // near z1
	}
	b := hs.RegionCounts(ws)
	if b[0] != 0 {
		t.Fatalf("region 0 weight = %v", b[0])
	}
	if b[1] != 3 || b[2] != 4 {
		t.Fatalf("region weights = %v", b)
	}
}

func TestRegionResidual(t *testing.T) {
	// With contradictory thresholds a point can fall in no region (R_0).
	Z := []geo.Point{{10, 10}, {90, 90}}
	hs := NewHalfSpaceSet(Z, 2)
	hs.A[0][1] = math.Inf(-1) // nobody is in H_(0,1) ... every p has κ > −∞? κ finite ⇒ all fail
	p := geo.Point{5, 5}
	if reg := hs.Region(p); reg != 1 {
		// p not in H_(0,1) ⇒ not region 0; p in H_(1,0) = complement ⇒ region 1.
		t.Fatalf("region = %d, want 1", reg)
	}
}

func TestTransferredAssignmentSmallRegionsCollapse(t *testing.T) {
	// Definition 3.11: regions with b_i < 2ξT collapse into the largest
	// region's center.
	Z := []geo.Point{{10, 10}, {50, 50}, {90, 90}}
	hs := NewHalfSpaceSet(Z, 2)
	hs.A[0][1] = 0
	hs.A[0][2] = 0
	hs.A[1][2] = 0
	ws := []geo.Weighted{
		{P: geo.Point{10, 11}, W: 1},  // region 0 (tiny)
		{P: geo.Point{50, 51}, W: 50}, // region 1 (huge)
		{P: geo.Point{51, 50}, W: 50}, // region 1
		{P: geo.Point{90, 91}, W: 1},  // region 2 (tiny)
	}
	B := hs.RegionCounts(ws)
	xi, T := 0.05, 100.0 // 2ξT = 10: regions of weight 1 are "small"
	pi := TransferredAssignment(ws, hs, B, xi, T)
	if pi[1] != 1 || pi[2] != 1 {
		t.Fatalf("large region reassigned: %v", pi)
	}
	if pi[0] != 1 || pi[3] != 1 {
		t.Fatalf("small regions must collapse to i* = 1: %v", pi)
	}
	// With a low threshold nothing collapses.
	pi2 := TransferredAssignment(ws, hs, B, 0.001, T)
	if pi2[0] != 0 || pi2[3] != 2 {
		t.Fatalf("low threshold must preserve regions: %v", pi2)
	}
}

func TestTransferredAssignmentBadB(t *testing.T) {
	Z := []geo.Point{{1, 1}}
	hs := NewHalfSpaceSet(Z, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong-length B")
		}
	}()
	TransferredAssignment(nil, hs, []float64{1, 2, 3}, 0.1, 1)
}

func TestTransferPreservesCostAndSizesApproximately(t *testing.T) {
	// Lemma 3.12 shape: when H is valid for P and all regions are large,
	// the transferred assignment equals the original one.
	rng := rand.New(rand.NewSource(5))
	ps := randPts(rng, 30, 2, 1000)
	Z := randPts(rng, 3, 2, 1000)
	res, ok := Optimal(ps, Z, 12, 2)
	if !ok {
		t.Skip("infeasible draw")
	}
	hs, sep := FromAssignment(ps, res.Assign, Z, 2)
	if !sep {
		t.Skip("tied draw")
	}
	ws := geo.UnitWeights(ps)
	B := hs.RegionCounts(ws)
	pi := TransferredAssignment(ws, hs, B, 1e-9, float64(len(ps)))
	for i := range pi {
		if pi[i] != res.Assign[i] && hs.Region(ps[i]) == res.Assign[i] {
			t.Fatalf("transfer changed an interior large-region point %d", i)
		}
	}
}

func TestCanonicalizeTiesSwapsAlphabetically(t *testing.T) {
	// Two points exactly on the bisector of z0,z1, assigned "crosswise":
	// the switching of Lemma 3.8 must reorder them alphabetically without
	// changing cost or sizes.
	Z := []geo.Point{{1, 3}, {5, 3}}
	ps := geo.PointSet{{3, 1}, {3, 5}} // κ = 0 for both
	pi := []int{1, 0}                  // (3,1)→z1, (3,5)→z0
	costBefore := CostOfAssignment(geo.UnitWeights(ps), Z, pi, 2)
	swaps := CanonicalizeTies(ps, pi, Z, 2)
	if swaps != 1 {
		t.Fatalf("swaps = %d, want 1", swaps)
	}
	if pi[0] != 0 || pi[1] != 1 {
		t.Fatalf("pi = %v, want [0 1]", pi)
	}
	costAfter := CostOfAssignment(geo.UnitWeights(ps), Z, pi, 2)
	if math.Abs(costBefore-costAfter) > 1e-9 {
		t.Fatalf("switching changed cost: %v → %v", costBefore, costAfter)
	}
}

func TestCanonicalizeTiesNoOpOnSeparated(t *testing.T) {
	Z := []geo.Point{{1, 1}, {100, 100}}
	ps := geo.PointSet{{2, 2}, {99, 99}}
	pi := []int{0, 1}
	if swaps := CanonicalizeTies(ps, pi, Z, 2); swaps != 0 {
		t.Fatalf("swaps = %d on already-canonical assignment", swaps)
	}
}
