package assign

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

// bruteBottleneck enumerates all capacity-respecting assignments and
// returns the minimal max-distance.
func bruteBottleneck(ps geo.PointSet, Z []geo.Point, t float64) float64 {
	n, k := len(ps), len(Z)
	best := math.Inf(1)
	asg := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			cnt := make([]int, k)
			radius := 0.0
			for idx, c := range asg {
				cnt[c]++
				if d := geo.Dist(ps[idx], Z[c]); d > radius {
					radius = d
				}
			}
			for _, c := range cnt {
				if float64(c) > t {
					return
				}
			}
			if radius < best {
				best = radius
			}
			return
		}
		for c := 0; c < k; c++ {
			asg[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestBottleneckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		k := 2 + rng.Intn(2)
		ps := randPts(rng, n, 2, 60)
		Z := randPts(rng, k, 2, 60)
		tcap := math.Ceil(float64(n)/float64(k)) + float64(rng.Intn(2))
		want := bruteBottleneck(ps, Z, tcap)
		res, ok := OptimalBottleneck(ps, Z, tcap)
		if math.IsInf(want, 1) {
			if ok {
				t.Fatalf("trial %d: expected infeasible", trial)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: unexpectedly infeasible", trial)
		}
		if math.Abs(res.Cost-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: radius %v, brute force %v", trial, res.Cost, want)
		}
		for _, s := range res.Sizes {
			if s > tcap+1e-9 {
				t.Fatalf("trial %d: capacity violated", trial)
			}
		}
		// Reported radius must equal the actual max assigned distance.
		actual := 0.0
		for i, a := range res.Assign {
			if d := geo.Dist(ps[i], Z[a]); d > actual {
				actual = d
			}
		}
		if math.Abs(actual-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported radius %v vs actual %v", trial, res.Cost, actual)
		}
	}
}

func TestBottleneckCapacityForcesLargerRadius(t *testing.T) {
	// 3 points hug center 0; capacity 2 forces one to the far center.
	ps := geo.PointSet{{10, 10}, {11, 10}, {10, 11}, {100, 100}}
	Z := []geo.Point{{10, 10}, {100, 100}}
	loose, ok := OptimalBottleneck(ps, Z, 3)
	if !ok {
		t.Fatal("infeasible loose")
	}
	tight, ok := OptimalBottleneck(ps, Z, 2)
	if !ok {
		t.Fatal("infeasible tight")
	}
	if tight.Cost <= loose.Cost {
		t.Fatalf("tight capacity should force a larger radius: %v vs %v", tight.Cost, loose.Cost)
	}
	if tight.Sizes[0] != 2 || tight.Sizes[1] != 2 {
		t.Fatalf("tight sizes %v", tight.Sizes)
	}
}

func TestBottleneckInfeasible(t *testing.T) {
	ps := geo.PointSet{{1, 1}, {2, 2}, {3, 3}}
	if _, ok := OptimalBottleneck(ps, []geo.Point{{1, 1}}, 2); ok {
		t.Fatal("must be infeasible")
	}
}

func TestBottleneckEmpty(t *testing.T) {
	res, ok := OptimalBottleneck(nil, []geo.Point{{1, 1}}, 1)
	if !ok || res.Cost != 0 {
		t.Fatal("empty input")
	}
}

func TestBottleneckZeroRadius(t *testing.T) {
	// Points exactly on the centers, balanced: radius 0.
	ps := geo.PointSet{{5, 5}, {20, 20}}
	Z := []geo.Point{{5, 5}, {20, 20}}
	res, ok := OptimalBottleneck(ps, Z, 1)
	if !ok || res.Cost != 0 {
		t.Fatalf("ok=%v radius=%v", ok, res.Cost)
	}
}
