package assign

import (
	"math"
	"sort"

	"streambalance/internal/flow"
	"streambalance/internal/geo"
)

// OptimalBottleneck computes the optimal capacitated k-CENTER assignment
// — the r = ∞ member of the paper's capacitated k-clustering family
// (Section 1: "capacitated k-center (for r = ∞)"): assign every point to
// a center, at most ⌊t⌋ points per center, minimizing the MAXIMUM
// point-center distance. It binary-searches the candidate radii (the
// distinct point-center distances) and tests feasibility with a max-flow
// restricted to arcs within the radius. Exact; O(nk log(nk)·maxflow).
// ok is false when ⌊t⌋·k < n.
func OptimalBottleneck(ps geo.PointSet, Z []geo.Point, t float64) (Result, bool) {
	n, k := len(ps), len(Z)
	if n == 0 {
		return Result{Sizes: make([]float64, k)}, true
	}
	capPer := math.Floor(t + 1e-9)
	if capPer*float64(k) < float64(n) {
		return Infeasible, false
	}
	// Candidate radii: all point-center distances.
	d := make([][]float64, n)
	cand := make([]float64, 0, n*k)
	for i, p := range ps {
		d[i] = make([]float64, k)
		for j, z := range Z {
			d[i][j] = geo.Dist(p, z)
			cand = append(cand, d[i][j])
		}
	}
	sort.Float64s(cand)
	cand = dedupFloats(cand)

	feasible := func(radius float64) (Result, bool) {
		g := flow.NewGraph(n + k + 2)
		src, sink := 0, n+k+1
		edgeID := make([][]int, n)
		for i := 0; i < n; i++ {
			g.AddEdge(src, 1+i, 1, 0)
			edgeID[i] = make([]int, k)
			for j := 0; j < k; j++ {
				edgeID[i][j] = -1
				if d[i][j] <= radius+1e-12 {
					edgeID[i][j] = g.AddEdge(1+i, n+1+j, 1, 0)
				}
			}
		}
		for j := 0; j < k; j++ {
			g.AddEdge(n+1+j, sink, capPer, 0)
		}
		f, _ := g.MinCostFlow(src, sink, float64(n))
		if f < float64(n)-1e-6 {
			return Result{}, false
		}
		flows := g.FlowsByID()
		res := Result{Assign: make([]int, n), Sizes: make([]float64, k)}
		for i := 0; i < n; i++ {
			res.Assign[i] = -1
			for j := 0; j < k; j++ {
				if edgeID[i][j] >= 0 && flows[edgeID[i][j]] > 0.5 {
					res.Assign[i] = j
					res.Sizes[j]++
					if d[i][j] > res.Cost {
						res.Cost = d[i][j] // Cost holds the bottleneck radius
					}
					break
				}
			}
			if res.Assign[i] < 0 {
				return Result{}, false
			}
		}
		return res, true
	}

	lo, hi := 0, len(cand)-1
	if _, ok := feasible(cand[hi]); !ok {
		return Infeasible, false // capacity itself infeasible (should not happen)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasible(cand[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res, _ := feasible(cand[lo])
	return res, true
}

func dedupFloats(vs []float64) []float64 {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
