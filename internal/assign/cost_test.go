package assign

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

// bruteForceCapacitated enumerates all k^n assignments respecting the
// per-center capacity and returns the optimal cost (∞ if infeasible).
func bruteForceCapacitated(ps geo.PointSet, Z []geo.Point, t float64, r float64) float64 {
	n, k := len(ps), len(Z)
	best := math.Inf(1)
	asg := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			cnt := make([]int, k)
			cost := 0.0
			for idx, c := range asg {
				cnt[c]++
				cost += geo.DistR(ps[idx], Z[c], r)
			}
			for _, c := range cnt {
				if float64(c) > t {
					return
				}
			}
			if cost < best {
				best = cost
			}
			return
		}
		for c := 0; c < k; c++ {
			asg[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func randPts(rng *rand.Rand, n, d int, delta int64) geo.PointSet {
	ps := make(geo.PointSet, n)
	for i := range ps {
		ps[i] = make(geo.Point, d)
		for j := range ps[i] {
			ps[i][j] = 1 + rng.Int63n(delta)
		}
	}
	return ps
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4) // 4..7
		k := 2 + rng.Intn(2) // 2..3
		ps := randPts(rng, n, 2, 50)
		Z := randPts(rng, k, 2, 50)
		tcap := float64(int(math.Ceil(float64(n)/float64(k))) + rng.Intn(2))
		for _, r := range []float64{1, 2} {
			want := bruteForceCapacitated(ps, Z, tcap, r)
			res, ok := Optimal(ps, Z, tcap, r)
			if math.IsInf(want, 1) {
				if ok {
					t.Fatalf("trial %d: expected infeasible", trial)
				}
				continue
			}
			if !ok {
				t.Fatalf("trial %d r=%v: unexpectedly infeasible (t=%v)", trial, r, tcap)
			}
			if math.Abs(res.Cost-want) > 1e-6*(1+want) {
				t.Fatalf("trial %d r=%v: cost %v, brute force %v", trial, r, res.Cost, want)
			}
			// Capacity respected.
			for _, s := range res.Sizes {
				if s > tcap+1e-9 {
					t.Fatalf("trial %d: capacity violated: %v > %v", trial, s, tcap)
				}
			}
		}
	}
}

func TestOptimalInfeasible(t *testing.T) {
	ps := geo.PointSet{{1, 1}, {2, 2}, {3, 3}}
	Z := []geo.Point{{1, 1}}
	if _, ok := Optimal(ps, Z, 2, 2); ok {
		t.Fatal("3 points, 1 center, capacity 2 must be infeasible")
	}
	if _, ok := Optimal(ps, Z, 3, 2); !ok {
		t.Fatal("capacity 3 must be feasible")
	}
}

func TestOptimalUnconstrainedEqualsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := randPts(rng, 30, 3, 100)
	Z := randPts(rng, 4, 3, 100)
	res, ok := Optimal(ps, Z, float64(len(ps)), 2)
	if !ok {
		t.Fatal("infeasible")
	}
	want := UnconstrainedCost(geo.UnitWeights(ps), Z, 2)
	if math.Abs(res.Cost-want) > 1e-6*(1+want) {
		t.Fatalf("unconstrained: %v vs nearest %v", res.Cost, want)
	}
}

func TestTighterCapacityCostsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Imbalanced input: most points near one center.
	ps := geo.PointSet{}
	for i := 0; i < 12; i++ {
		ps = append(ps, geo.Point{1 + rng.Int63n(5), 1 + rng.Int63n(5)})
	}
	for i := 0; i < 4; i++ {
		ps = append(ps, geo.Point{90 + rng.Int63n(5), 90 + rng.Int63n(5)})
	}
	Z := []geo.Point{{3, 3}, {92, 92}}
	loose, _ := Optimal(ps, Z, 16, 2)
	tight, ok := Optimal(ps, Z, 8, 2)
	if !ok {
		t.Fatal("tight capacity infeasible")
	}
	if tight.Cost <= loose.Cost {
		t.Fatalf("balanced constraint should cost more: tight %v vs loose %v", tight.Cost, loose.Cost)
	}
	if tight.Sizes[0] != 8 || tight.Sizes[1] != 8 {
		t.Fatalf("tight sizes = %v, want perfectly balanced", tight.Sizes)
	}
}

func TestFractionalLowerBoundsIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n, k := 8, 3
		ps := randPts(rng, n, 2, 60)
		Z := randPts(rng, k, 2, 60)
		tcap := 3.0
		intres, ok := Optimal(ps, Z, tcap, 2)
		if !ok {
			continue
		}
		frac, _, fok := FractionalCost(geo.UnitWeights(ps), Z, tcap, 2)
		if !fok {
			t.Fatalf("trial %d: fractional infeasible but integral feasible", trial)
		}
		if frac > intres.Cost+1e-6*(1+intres.Cost) {
			t.Fatalf("trial %d: fractional %v exceeds integral %v", trial, frac, intres.Cost)
		}
		// Transportation integrality: with unit weights and integer caps
		// they must coincide.
		if math.Abs(frac-intres.Cost) > 1e-6*(1+intres.Cost) {
			t.Fatalf("trial %d: integrality gap %v vs %v", trial, frac, intres.Cost)
		}
	}
}

func TestWeightedUnitMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		ps := randPts(rng, 10, 2, 40)
		Z := randPts(rng, 3, 2, 40)
		tcap := 4.0
		want, ok := Optimal(ps, Z, tcap, 2)
		if !ok {
			continue
		}
		got, gok := Weighted(geo.UnitWeights(ps), Z, tcap, 2)
		if !gok {
			t.Fatalf("trial %d: Weighted infeasible", trial)
		}
		// Weighted may exceed t by (k−1)·max w = 2 after split rounding,
		// but with unit weights the fractional optimum is integral, so the
		// costs must match.
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+want.Cost) {
			t.Fatalf("trial %d: Weighted cost %v, Optimal %v", trial, got.Cost, want.Cost)
		}
	}
}

func TestWeightedCapacitySlackBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n, k := 12, 3
		ws := make([]geo.Weighted, n)
		var maxW, tot float64
		for i := range ws {
			w := 0.5 + rng.Float64()*3
			ws[i] = geo.Weighted{P: randPts(rng, 1, 2, 80)[0], W: w}
			if w > maxW {
				maxW = w
			}
			tot += w
		}
		tcap := tot / float64(k) * 1.2
		res, ok := Weighted(ws, nil2(randPts(rng, k, 2, 80)), tcap, 2)
		if !ok {
			continue
		}
		slack := float64(k-1) * maxW
		for j, s := range res.Sizes {
			if s > tcap+slack+1e-6 {
				t.Fatalf("trial %d: center %d size %v exceeds t+slack %v", trial, j, s, tcap+slack)
			}
		}
		// Every point assigned.
		for i, a := range res.Assign {
			if a < 0 || a >= k {
				t.Fatalf("point %d unassigned", i)
			}
		}
	}
}

func nil2(ps geo.PointSet) []geo.Point { return ps }

func TestWeightedInfeasible(t *testing.T) {
	ws := []geo.Weighted{{P: geo.Point{1, 1}, W: 10}}
	Z := []geo.Point{{2, 2}}
	if _, ok := Weighted(ws, Z, 5, 2); ok {
		t.Fatal("total weight 10 > k·t = 5 must be infeasible")
	}
}

func TestCostHelpers(t *testing.T) {
	ws := []geo.Weighted{
		{P: geo.Point{1, 1}, W: 2},
		{P: geo.Point{4, 5}, W: 1},
	}
	Z := []geo.Point{{1, 1}, {4, 1}}
	if got := UnconstrainedCost(ws, Z, 2); got != 16 {
		t.Fatalf("UnconstrainedCost = %v, want 16", got) // (4,5): nearest (4,1) dist² 16
	}
	pi := []int{1, 0}
	// (1,1)→(4,1): 9·2=18 ; (4,5)→(1,1): (9+16)·1=25
	if got := CostOfAssignment(ws, Z, pi, 2); got != 43 {
		t.Fatalf("CostOfAssignment = %v, want 43", got)
	}
	s := SizeVector(ws, pi, 2)
	if s[0] != 1 || s[1] != 2 {
		t.Fatalf("SizeVector = %v", s)
	}
	// Skipped entries.
	if got := CostOfAssignment(ws, Z, []int{-1, 0}, 2); got != 25 {
		t.Fatalf("CostOfAssignment with skip = %v, want 25", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	res, ok := Optimal(nil, []geo.Point{{1, 1}}, 1, 2)
	if !ok || res.Cost != 0 {
		t.Fatal("empty Optimal")
	}
	wres, wok := Weighted(nil, []geo.Point{{1, 1}}, 1, 2)
	if !wok || wres.Cost != 0 {
		t.Fatal("empty Weighted")
	}
	c, _, fok := FractionalCost(nil, []geo.Point{{1, 1}}, 1, 2)
	if !fok || c != 0 {
		t.Fatal("empty FractionalCost")
	}
}

func TestWeightedForcedSplit(t *testing.T) {
	// Two heavy points, two centers, capacity forces a split: weight 3
	// each, capacity 4 → fractional optimum splits one point 2/1... The
	// integral rounding must still assign each point to one center with
	// bounded violation.
	ws := []geo.Weighted{
		{P: geo.Point{1, 1}, W: 3},
		{P: geo.Point{1, 2}, W: 3},
	}
	Z := []geo.Point{{1, 1}, {50, 50}}
	res, ok := Weighted(ws, Z, 4, 2)
	if !ok {
		t.Fatal("infeasible")
	}
	// Both points are near center 0; after rounding, sizes[0] may reach
	// 6 = t + (k−1)·maxw = 4 + 3 = 7 bound.
	if res.Sizes[0] > 7+1e-9 {
		t.Fatalf("slack bound violated: %v", res.Sizes[0])
	}
	if res.Assign[0] < 0 || res.Assign[1] < 0 {
		t.Fatal("unassigned point")
	}
}
