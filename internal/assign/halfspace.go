package assign

import (
	"math"

	"streambalance/internal/geo"
)

// PairKey computes κ_{ij}(p) = dist^r(p, z_i) − dist^r(p, z_j), the
// quantity whose level sets are the paper's curved hyperplanes
// {x : dist^r(x,z_i) − dist^r(x,z_j) = a} (Section 1.2). For r = 2 the
// level sets are genuine hyperplanes perpendicular to z_i z_j (Figure 1);
// for r ≠ 2 they are curved (e.g. hyperbola branches for r = 1,
// Figure 3).
func PairKey(p, zi, zj geo.Point, r float64) float64 {
	return geo.DistR(p, zi, r) - geo.DistR(p, zj, r)
}

// HalfSpaceSet is a set of assignment half-spaces (Definition 3.7): one
// curved-hyperplane threshold A[i][j] per center pair i < j. A point
// belongs to H_{(i,j)} when κ_{ij}(p) ≤ A[i][j] (ties inside a threshold
// are resolved alphabetically by the construction that produced the
// thresholds, per Definition 2.2; thresholds derived from point data are
// placed strictly between clusters whenever possible, so membership here
// needs no tie-break).
type HalfSpaceSet struct {
	Z []geo.Point
	R float64
	A [][]float64 // upper-triangular: A[i][j] valid for i < j
}

// NewHalfSpaceSet allocates a threshold set for k centers with all
// thresholds at +∞ (every point in H_{(i,j)} for i < j).
func NewHalfSpaceSet(Z []geo.Point, r float64) *HalfSpaceSet {
	k := len(Z)
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		for j := range a[i] {
			a[i][j] = math.Inf(1)
		}
	}
	return &HalfSpaceSet{Z: Z, R: r, A: a}
}

// In reports whether p ∈ H_{(i,j)}. For i < j this tests
// κ_{ij}(p) ≤ A[i][j]; for i > j it is the complement H_{(j,i)}^c per
// Definition 3.7.
func (h *HalfSpaceSet) In(p geo.Point, i, j int) bool {
	if i < j {
		return PairKey(p, h.Z[i], h.Z[j], h.R) <= h.A[i][j]
	}
	return PairKey(p, h.Z[j], h.Z[i], h.R) > h.A[j][i]
}

// Region returns the region index of p under the induced regions of
// Definition 3.10: i ∈ [0, k) if p lies in H_{(i,j)} for every j ≠ i, or
// −1 for the residual region R_0 (no center claims p).
func (h *HalfSpaceSet) Region(p geo.Point) int {
	k := len(h.Z)
	for i := 0; i < k; i++ {
		ok := true
		for j := 0; j < k && ok; j++ {
			if j != i && !h.In(p, i, j) {
				ok = false
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// RegionCounts returns the total weight of the given points falling in
// each region: index 0 holds region R_0's weight, index i+1 region R_i's
// (matching the B = (b_0, ..., b_k) vector of Definition 3.11).
func (h *HalfSpaceSet) RegionCounts(ws []geo.Weighted) []float64 {
	b := make([]float64, len(h.Z)+1)
	for _, w := range ws {
		r := h.Region(w.P)
		b[r+1] += w.W // r == −1 → b[0]
	}
	return b
}

// FromAssignment derives a HalfSpaceSet consistent with an optimal
// assignment pi of the points ps (Lemma 3.8): for each pair i < j the
// threshold is placed between max{κ_{ij}(p) : π(p)=z_i} and
// min{κ_{ij}(p) : π(p)=z_j}. separable is false if some pair strictly
// interleaves — which contradicts optimality of pi up to ties, so a false
// return on an optimal assignment indicates exact κ ties between
// clusters (resolved by the paper with alphabetical switching; callers
// that need strict separation should call CanonicalizeTies first).
func FromAssignment(ps geo.PointSet, pi []int, Z []geo.Point, r float64) (hs *HalfSpaceSet, separable bool) {
	hs = NewHalfSpaceSet(Z, r)
	separable = true
	k := len(Z)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			maxI := math.Inf(-1)
			minJ := math.Inf(1)
			for idx, p := range ps {
				switch pi[idx] {
				case i:
					if v := PairKey(p, Z[i], Z[j], r); v > maxI {
						maxI = v
					}
				case j:
					if v := PairKey(p, Z[i], Z[j], r); v < minJ {
						minJ = v
					}
				}
			}
			switch {
			case math.IsInf(maxI, -1) && math.IsInf(minJ, 1):
				// Neither cluster populated; keep +∞ (arbitrary).
			case math.IsInf(minJ, 1):
				hs.A[i][j] = maxI
			case math.IsInf(maxI, -1):
				hs.A[i][j] = math.Nextafter(minJ, math.Inf(-1))
			case maxI < minJ:
				hs.A[i][j] = maxI + (minJ-maxI)/2
			case maxI == minJ:
				hs.A[i][j] = maxI // tie: both sides touch the hyperplane
			default:
				separable = false
				hs.A[i][j] = maxI
			}
		}
	}
	return hs, separable
}

// SeparationReport is the outcome of verifying the Lemma 3.8 structure on
// an assignment.
type SeparationReport struct {
	Separable      bool
	WorstViolation float64 // max over pairs of (maxI − minJ) when positive
	PairsChecked   int
}

// VerifySeparation checks that for every pair of clusters (i, j) of the
// assignment pi, max κ_{ij} over cluster i ≤ min κ_{ij} over cluster j
// (within tol) — the defining property of the curved-hyperplane
// separation from Figures 1–3: if it failed strictly, swapping the two
// offending points would reduce the cost without changing cluster sizes,
// contradicting optimality.
func VerifySeparation(ps geo.PointSet, pi []int, Z []geo.Point, r float64, tol float64) SeparationReport {
	rep := SeparationReport{Separable: true}
	k := len(Z)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			rep.PairsChecked++
			maxI := math.Inf(-1)
			minJ := math.Inf(1)
			for idx, p := range ps {
				switch pi[idx] {
				case i:
					if v := PairKey(p, Z[i], Z[j], r); v > maxI {
						maxI = v
					}
				case j:
					if v := PairKey(p, Z[i], Z[j], r); v < minJ {
						minJ = v
					}
				}
			}
			if viol := maxI - minJ; viol > tol {
				rep.Separable = false
				if viol > rep.WorstViolation {
					rep.WorstViolation = viol
				}
			}
		}
	}
	return rep
}

// CanonicalizeTies applies the switching argument of Lemma 3.8 /
// Section 3.3 step 1c to an optimal assignment: whenever two points in
// different clusters have exactly equal pair keys but alphabetically
// inverted order, their centers are swapped. The resulting assignment has
// the same cost and size vector and is strictly consistent with a set of
// assignment half-spaces. pi is modified in place; the number of swaps is
// returned.
func CanonicalizeTies(ps geo.PointSet, pi []int, Z []geo.Point, r float64) int {
	k := len(Z)
	swaps := 0
	for {
		changed := false
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				for a := range ps {
					if pi[a] != j {
						continue
					}
					ka := PairKey(ps[a], Z[i], Z[j], r)
					for b := range ps {
						if pi[b] != i {
							continue
						}
						kb := PairKey(ps[b], Z[i], Z[j], r)
						// π(b)=z_i must precede π(a)=z_j in (κ, alphabetical)
						// order; equal keys with b after a get switched.
						if kb == ka && ps[a].Less(ps[b]) {
							pi[a], pi[b] = pi[b], pi[a]
							swaps++
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return swaps
		}
	}
}

// TransferredAssignment computes the transferred assignment mapping of
// Definition 3.11 for a weighted part P: given a half-space set H, region
// weight estimates B = (b_0, ..., b_k) (index 0 = region R_0), a
// threshold fraction ξ and the part threshold T, each point in a region
// whose estimate is at least 2ξT keeps its region's center; everything
// else — including all of R_0 — is sent to the center of the largest
// region i* = argmax_{i∈[k]} b_i.
func TransferredAssignment(ws []geo.Weighted, hs *HalfSpaceSet, B []float64, xi, T float64) []int {
	k := len(hs.Z)
	if len(B) != k+1 {
		panic("assign: B must have k+1 entries (region 0 first)")
	}
	iStar := 0
	for i := 1; i < k; i++ {
		if B[1+i] > B[1+iStar] {
			iStar = i
		}
	}
	pi := make([]int, len(ws))
	for idx, w := range ws {
		reg := hs.Region(w.P)
		if reg >= 0 && B[1+reg] >= 2*xi*T {
			pi[idx] = reg
		} else {
			pi[idx] = iStar
		}
	}
	return pi
}
