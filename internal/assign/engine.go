package assign

import (
	"math"

	"streambalance/internal/flow"
	"streambalance/internal/geo"
	"streambalance/internal/obs"
)

// Telemetry handles (internal/obs). The warm/cold split is the
// headline number: warm ÷ (warm + cold) is the warm-restart reuse
// ratio of a capacity sweep, and E1's speedup tracks it directly.
var (
	mSolves     = obs.C("assign_solves_total")
	mWarmSolves = obs.C("assign_warm_solves_total")
	mColdSolves = obs.C("assign_cold_solves_total")
	mCenterSets = obs.C("assign_center_sets_total")
	mSkeletons  = obs.C("assign_skeleton_builds_total")
	mSolveNS    = obs.H("assign_solve_ns")
)

// Solver is a reusable capacitated-assignment engine for the
// many-solves-one-dataset pattern of the evaluation suite: hundreds of
// near-identical min-cost-flow solves over one point set with varying
// center sets and capacities. It amortizes the three per-call costs of
// FractionalCost/Optimal (DESIGN.md §7):
//
//   - the bipartite flow skeleton (source→point arcs, per-point arc
//     slabs to every center, sink arcs) is built once per bound point
//     set and kept in a graph arena; a new center set only rewrites arc
//     costs, a new capacity only rewrites sink capacities;
//   - the point×center cost block is computed by the blocked
//     geo.DistRMatrix kernel once per center set and shared by every
//     capacity solve on it;
//   - the flow.Solver workspace (potentials, Dijkstra arrays, heap
//     backing array) survives across solves, and monotone capacity
//     sweeps on a fixed center set warm-start from the previous solve's
//     potentials and residual flow instead of re-augmenting from cold.
//
// Cold solves run the exact historical algorithm over the same arc
// order, so their costs, flows and sizes are bit-identical to the
// per-call FractionalCost/Optimal path. Warm-started solves reach the
// same optimum along a different augmentation history; their cost is
// therefore reported as flow.Graph.CostOfFlows — a deterministic
// function of the final flows — rather than an accumulation whose float
// rounding depends on that history.
//
// A Solver must not be shared between goroutines; parallel harnesses
// keep one per worker.
type Solver struct {
	ws    []geo.Weighted // weighted mode (Fractional)
	ps    geo.PointSet   // unit-weight mode (Optimal)
	unit  bool
	r     float64
	total float64 // Σw in weighted mode
	n, k  int

	g         *flow.Graph
	fs        flow.Solver
	costs     []float64 // n×k DistR block for the current centers
	src, sink int
	arcID     []int // n×k point→center arc ids
	sinkID    []int // k sink arc ids

	skeleton bool        // arena holds arcs for the current (points, k)
	lastZ    []geo.Point // current centers (general-r Unconstrained fallback)
	haveZ    bool
	warmOff  bool // SetWarmStart(false): always solve cold
	canWarm  bool // last solve completed feasibly on the current centers
	lastT    float64
}

// NewSolver returns an empty engine; Bind a point set before solving.
func NewSolver() *Solver {
	return &Solver{g: flow.NewGraph(0)}
}

// SetWarmStart toggles the warm-started capacity sweep (on by default).
// With it off every solve runs cold on the arena — useful for isolating
// the arena's contribution in benchmarks.
func (s *Solver) SetWarmStart(on bool) { s.warmOff = !on }

// Bind fixes the weighted point set and cost exponent for subsequent
// Fractional solves. The skeleton is rebuilt on the next SetCenters; the
// arena retains its storage. The slice is referenced, not copied.
func (s *Solver) Bind(ws []geo.Weighted, r float64) {
	s.ws, s.ps, s.unit = ws, nil, false
	s.r = r
	s.n = len(ws)
	s.total = geo.TotalWeight(ws)
	s.skeleton, s.haveZ, s.canWarm = false, false, false
}

// BindPoints fixes a unit-weight point set for subsequent Optimal
// solves. The slice is referenced, not copied.
func (s *Solver) BindPoints(ps geo.PointSet, r float64) {
	s.ps, s.ws, s.unit = ps, nil, true
	s.r = r
	s.n = len(ps)
	s.total = float64(len(ps))
	s.skeleton, s.haveZ, s.canWarm = false, false, false
}

// SetCenters installs a center set: the cost block is recomputed with
// the blocked kernel and written onto the arena's point→center arcs.
// Flows from any previous solve are invalidated (a cost change voids
// both the optimum and the warm-start potentials).
func (s *Solver) SetCenters(Z []geo.Point) {
	if s.ws == nil && s.ps == nil {
		panic("assign: SetCenters before Bind")
	}
	mCenterSets.Inc()
	if len(Z) != s.k {
		s.skeleton = false
	}
	s.k = len(Z)
	if s.unit {
		s.costs = geo.DistRMatrix(s.ps, Z, s.r, s.costs)
	} else {
		s.costs = geo.DistRMatrixW(s.ws, Z, s.r, s.costs)
	}
	s.lastZ = Z
	s.haveZ = true
	s.canWarm = false
	if s.n == 0 {
		return
	}
	if !s.skeleton {
		s.buildSkeleton()
	} else {
		for a, c := range s.costs {
			s.g.SetCost(s.arcID[a], c)
		}
		s.g.ClearFlows()
	}
}

// buildSkeleton (re)builds the bipartite network in the arena, in the
// exact arc order of the historical per-call path: per point one source
// arc then its k center arcs, then the k sink arcs. Sink capacities are
// installed per solve.
func (s *Solver) buildSkeleton() {
	n, k := s.n, s.k
	s.g.Reset(n + k + 2)
	s.src, s.sink = 0, n+k+1
	if cap(s.arcID) < n*k {
		s.arcID = make([]int, n*k)
	}
	s.arcID = s.arcID[:n*k]
	if cap(s.sinkID) < k {
		s.sinkID = make([]int, k)
	}
	s.sinkID = s.sinkID[:k]
	for i := 0; i < n; i++ {
		w := 1.0
		if !s.unit {
			w = s.ws[i].W
		}
		s.g.AddEdge(s.src, 1+i, w, 0)
		for j := 0; j < k; j++ {
			s.arcID[i*k+j] = s.g.AddEdge(1+i, n+1+j, w, s.costs[i*k+j])
		}
	}
	for j := 0; j < k; j++ {
		s.sinkID[j] = s.g.AddEdge(n+1+j, s.sink, 0, 0)
	}
	s.skeleton = true
	mSkeletons.Inc()
}

// Fractional computes the optimal fractional capacitated assignment
// cost of the bound weighted points to the current centers under
// per-center capacity t — the same LP relaxation as FractionalCost,
// without rebuilding the graph or the distance block. ok is false when
// t·k < Σw (infeasible). Successive calls with non-decreasing t on the
// same centers warm-start from the previous solve (E1's capacity-sweep
// shape); a decreased t or a fresh center set solves cold.
func (s *Solver) Fractional(t float64) (float64, bool) {
	if !s.haveZ {
		panic("assign: Fractional before SetCenters")
	}
	if s.unit {
		panic("assign: Fractional on a BindPoints solver (use Optimal)")
	}
	if s.n == 0 {
		return 0, true
	}
	if t*float64(s.k) < s.total-1e-9 {
		return math.Inf(1), false
	}
	mSolves.Inc()
	t0 := obs.NowNano()
	defer mSolveNS.ObserveSince(t0)
	if !s.warmOff && s.canWarm && t >= s.lastT {
		for _, id := range s.sinkID {
			s.g.SetCap(id, t)
		}
		if _, ok := s.fs.ReoptimizeGrownCaps(s.g, s.sink, s.sinkID); ok {
			s.lastT = t
			mWarmSolves.Inc()
			return s.g.CostOfFlows(), true
		}
		// Round budget exhausted (numerical dust): fall through cold.
	}
	for _, id := range s.sinkID {
		s.g.SetCap(id, t)
	}
	s.g.ClearFlows()
	mColdSolves.Inc()
	f, cost := s.fs.MinCostFlow(s.g, s.src, s.sink, s.total)
	if f < s.total-1e-6*math.Max(1, s.total) {
		s.canWarm = false
		return math.Inf(1), false
	}
	s.canWarm = true
	s.lastT = t
	return cost, true
}

// Optimal computes the optimal integral capacitated assignment of the
// bound unit-weight points to the current centers under per-center
// capacity t (in points) — the same transportation solve as the
// package-level Optimal, reusing the arena and the distance block. Every
// call solves cold: warm-started flows can land on a different optimal
// vertex when the optimum is degenerate, and integral callers consume
// the assignment itself, not just its cost. ok is false when
// ⌊t⌋·k < |ps| (no feasible partition).
func (s *Solver) Optimal(t float64) (Result, bool) {
	if !s.haveZ {
		panic("assign: Optimal before SetCenters")
	}
	if !s.unit {
		panic("assign: Optimal on a Bind solver (use Fractional)")
	}
	n, k := s.n, s.k
	if n == 0 {
		return Result{Assign: nil, Sizes: make([]float64, k)}, true
	}
	capPer := math.Floor(t + 1e-9)
	if capPer*float64(k) < float64(n) {
		return Infeasible, false
	}
	mSolves.Inc()
	mColdSolves.Inc()
	t0 := obs.NowNano()
	defer mSolveNS.ObserveSince(t0)
	for _, id := range s.sinkID {
		s.g.SetCap(id, capPer)
	}
	s.g.ClearFlows()
	s.canWarm = false
	f, cost := s.fs.MinCostFlow(s.g, s.src, s.sink, float64(n))
	if f < float64(n)-1e-6 {
		return Infeasible, false
	}
	flows := s.g.FlowsByID()
	res := Result{Assign: make([]int, n), Cost: cost, Sizes: make([]float64, k)}
	for i := 0; i < n; i++ {
		res.Assign[i] = -1
		for j := 0; j < k; j++ {
			if flows[s.arcID[i*k+j]] > 0.5 {
				res.Assign[i] = j
				res.Sizes[j]++
				break
			}
		}
		if res.Assign[i] < 0 {
			return Infeasible, false // should not happen at full flow
		}
	}
	return res, true
}

// Unconstrained computes cost^{(r)}(Q, Z, w) — every point served by its
// nearest center — from the engine's distance block, sharing it with the
// capacitated solves on the same center set. For r ∈ {1, 2} the
// arithmetic mirrors UnconstrainedCost operation for operation, so the
// result is bit-identical to the per-call path; the block for a general
// r holds distsq^{r/2} while UnconstrainedCost computes (√distsq)^r —
// not the same float — so that case falls back to the scalar path.
func (s *Solver) Unconstrained() float64 {
	if !s.haveZ {
		panic("assign: Unconstrained before SetCenters")
	}
	if s.r != 1 && s.r != 2 {
		if s.unit {
			return UnconstrainedCost(geo.UnitWeights(s.ps), s.lastZ, s.r)
		}
		return UnconstrainedCost(s.ws, s.lastZ, s.r)
	}
	var c float64
	k := s.k
	for i := 0; i < s.n; i++ {
		row := s.costs[i*k : (i+1)*k]
		best := math.Inf(1)
		for _, v := range row {
			if v < best {
				best = v
			}
		}
		w := 1.0
		if !s.unit {
			w = s.ws[i].W
		}
		// Mirror UnconstrainedCost exactly: it takes d = √(min DistSq)
		// from DistToSet and applies PowR(d, r).
		switch s.r {
		case 2:
			d := math.Sqrt(best) // block holds DistSq
			c += w * (d * d)
		case 1:
			c += w * best // block holds Dist already
		}
	}
	return c
}

// FlowsByID exposes the per-arc flows of the last solve (indexed by the
// arena's arc ids, point-major then sink arcs) for equivalence tests.
func (s *Solver) FlowsByID() []float64 { return s.g.FlowsByID() }

// CostOfFlows re-evaluates the last solve's cost as a deterministic
// function of its final flows (Σ flow·cost in arc-id order).
func (s *Solver) CostOfFlows() float64 { return s.g.CostOfFlows() }
