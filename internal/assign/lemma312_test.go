package assign

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

// TestLemma312TransferBounds verifies the quantitative conclusion of
// Lemma 3.12 on random instances: when the half-spaces H are valid for a
// part P (all points within a cell of diameter √d·g) and the region
// estimates B are good to (±ξT or 1±ξ), the transferred assignment π′
// satisfies
//
//	cost(π′) ≤ (1 + 2^{r+4}k²ξ)·cost(π) + ξ·2^{r+1}·k·T·(√d·g)^r
//	‖s(π′) − s(π)‖₁ ≤ 16kξ·Σw(p).
func TestLemma312TransferBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const r = 2.0
	for trial := 0; trial < 25; trial++ {
		g := int64(64)
		n := 20 + rng.Intn(20)
		k := 2 + rng.Intn(2)
		// Part P inside one cell; centers anywhere in a larger domain.
		base := geo.Point{1 + rng.Int63n(1000), 1 + rng.Int63n(1000)}
		ps := make(geo.PointSet, n)
		for i := range ps {
			ps[i] = geo.Point{base[0] + rng.Int63n(g), base[1] + rng.Int63n(g)}
		}
		Z := make([]geo.Point, k)
		for i := range Z {
			Z[i] = geo.Point{1 + rng.Int63n(2048), 1 + rng.Int63n(2048)}
		}
		tcap := math.Ceil(float64(n)/float64(k)) + 1
		res, ok := Optimal(ps, Z, tcap, r)
		if !ok {
			continue
		}
		hs, sep := FromAssignment(ps, res.Assign, Z, r)
		if !sep {
			continue // exact ties; the lemma presumes a valid H
		}
		ws := geo.UnitWeights(ps)
		T := 0.9 * float64(n) // the lemma needs Σw ≥ 0.9T
		xi := 1.0 / (100 * float64(k) * 2)

		// Exact region counts perturbed within the allowed band.
		B := hs.RegionCounts(ws)
		for i := range B {
			B[i] += (rng.Float64()*2 - 1) * xi * T * 0.9
			if B[i] < 0 {
				B[i] = 0
			}
		}
		piT := TransferredAssignment(ws, hs, B, xi, T)

		costPi := CostOfAssignment(ws, Z, res.Assign, r)
		costPiT := CostOfAssignment(ws, Z, piT, r)
		diag := math.Sqrt(2) * float64(g)
		bound := (1+math.Exp2(r+4)*float64(k*k)*xi)*costPi +
			xi*math.Exp2(r+1)*float64(k)*T*geo.PowR(diag, r)
		if costPiT > bound+1e-6 {
			t.Fatalf("trial %d: transfer cost %v exceeds Lemma 3.12 bound %v (base cost %v)",
				trial, costPiT, bound, costPi)
		}

		s1 := SizeVector(ws, res.Assign, k)
		s2 := SizeVector(ws, piT, k)
		var l1 float64
		for i := range s1 {
			l1 += math.Abs(s1[i] - s2[i])
		}
		if l1 > 16*float64(k)*xi*float64(n)+1e-9 {
			t.Fatalf("trial %d: ‖s(π')−s(π)‖₁ = %v exceeds 16kξ·n = %v",
				trial, l1, 16*float64(k)*xi*float64(n))
		}
	}
}
