// Parallel, incrementally-cached coreset extraction (the query path
// behind Stream.Result and Auto.Result).
//
// Extraction — Theorem 4.5's query step (Algorithm 4 steps 4–6) — is a
// pile of independent sparse-recovery decodes followed by a cheap serial
// assembly: every (guess × level × substream) Storing sketch peels on its
// own state only, mirroring the sparse-recovery query structure of
// Braverman et al. (arXiv:1706.03887), which is embarrassingly parallel.
// The pipeline here exploits that twice:
//
//   - Parallel decode: before the serial assembly runs, the sketches it
//     will consult are decoded across a GOMAXPROCS-sized worker pool
//     (the shard-pool shape of ingest.go). Decoding only warms each
//     sketch's epoch-tagged cache — the assembly then executes the exact
//     serial logic against free cache hits, so results are bit-identical
//     to the serial path by construction. With one worker the pool is
//     skipped entirely and the original lazy path runs unchanged.
//
//   - Epoch cache + differential decode: each Storing tags its decode
//     with an update epoch (sketch.Storing); a repeated Result during a
//     long stream touches only levels whose state changed since the last
//     extraction, and a changed level re-peels only the residual against
//     its cached base — splicing the delta onto the cached item lists —
//     instead of the whole slab (DESIGN.md §13). Merging a fork dirties
//     only the levels the fork actually wrote (pristine levels are
//     skipped outright) and dirtied levels keep their base for the next
//     splice. Cache memory is derived state, excluded from Bytes
//     (DESIGN.md §6) and released by DropDecodeCache.
//
// Auto.Result decodes candidate guesses speculatively — the estimate
// guess first, then the ascending-scan prefix up to the cost-bound cap —
// while the selection rule itself (smallest weight-sane surviving guess)
// stays the serial one, applied in order after the decodes land.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/obs"
	"streambalance/internal/partition"
	"streambalance/internal/sketch"
	"streambalance/internal/solve"
)

// extractWorkers sizes the decode pool to the machine.
func extractWorkers() int { return runtime.GOMAXPROCS(0) }

// warmStorings decodes the given sketches across a worker pool of the
// given size, populating each one's epoch-tagged cache. Sketches whose
// cache is already fresh are skipped, so re-warming after a partial
// extraction (or a warm periodic call) spawns no goroutines at all.
// Each sketch is decoded by exactly one worker and decoding touches only
// that sketch's state, so the pool needs no locks beyond the barrier.
// Every worker owns one sketch.DecodeArena for the whole drain — the
// worklist decoder's slab/queue/mark scratch is reused across all the
// sketches that worker decodes instead of reallocated per decode.
func warmStorings(units []*sketch.Storing, workers int) {
	pending := make([]*sketch.Storing, 0, len(units))
	for _, st := range units {
		if st != nil && !st.CacheFresh() {
			pending = append(pending, st)
		}
	}
	if len(pending) == 0 {
		return
	}
	mExtractDecodes.Add(int64(len(pending)))
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		arena := sketch.NewDecodeArena()
		for _, st := range pending {
			st.ResultArena(arena)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := sketch.NewDecodeArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				pending[i].ResultArena(arena)
			}
		}()
	}
	wg.Wait()
}

// planTargets appends the h/h′ cell sketches of s — the decode units the
// partition/plan stage may consult — to dst.
func (s *Stream) planTargets(dst []*sketch.Storing) []*sketch.Storing {
	for i := 0; i <= s.g.L; i++ {
		if i <= s.g.L-1 {
			dst = append(dst, s.hStore[i])
		}
		dst = append(dst, s.hpStore[i])
	}
	return dst
}

// Result decodes the sketches and assembles the coreset (steps 4–6 of
// Algorithm 4): heavy cells from the h-substream estimates, part masses
// from the h′-substream, coreset points from the ĥ-substream. It does
// not modify sketch state (N, Bytes, StateDigest are untouched), so it
// may be called repeatedly — e.g. periodically during a long stream —
// and the epoch cache makes such warm calls cost proportional to what
// changed since the previous extraction, not to total sketch state.
func (s *Stream) Result() (*coreset.Coreset, error) { return s.resultWith(extractWorkers()) }

// ResultSerial is Result restricted to one worker: the lazy serial
// decode path, kept as the equivalence baseline for tests and benches.
// (It still reads and warms the epoch cache.)
func (s *Stream) ResultSerial() (*coreset.Coreset, error) { return s.resultWith(1) }

func (s *Stream) resultWith(workers int) (*coreset.Coreset, error) {
	if s.n < 0 {
		return nil, errors.New("stream: more deletions than insertions")
	}
	mExtracts.Inc()
	t0 := obs.NowNano()
	sp := obs.StartSpan("stream.extract")
	sp.AttrFloat("o", s.cfg.O)
	sp.AttrInt("workers", int64(workers))
	defer func() {
		mExtractNS.ObserveSince(t0)
		if obs.Enabled() {
			// Space gauges: the Theorem 4.5-accounted sketch state and the
			// derived-state decode cache, sampled once per extraction.
			mSketchBytes.SetInt(s.Bytes())
			mCacheBytes.SetInt(s.DecodeCacheBytes())
		}
		sp.End()
	}()
	// One decode arena serves every lazy (cache-miss) decode of this
	// extraction; the warm pools above and below bring their own
	// per-worker arenas.
	arena := sketch.NewDecodeArena()
	// Stage 1: decode every cell sketch the partition stage may consult,
	// in parallel. The serial assembly below decides lazily which levels
	// matter; pre-decoding the rest only wastes a bounded peel per sketch
	// (and caches its FAIL), never changes what the assembly sees.
	if workers > 1 {
		warmStorings(s.planTargets(nil), workers)
	}
	part, pl, err := s.plan(arena)
	if err != nil {
		return nil, err
	}
	// Levels that actually host included parts.
	needLevel := make([]bool, s.g.L+1)
	for id := range pl.Included {
		needLevel[id.Level] = true
	}
	// Stage 2: decode only the ĥ point sketches of needed levels — these
	// are the large sketches, and the plan has already pruned the rest.
	if workers > 1 {
		units := make([]*sketch.Storing, 0, s.g.L+1)
		for i := 0; i <= s.g.L; i++ {
			if needLevel[i] && s.phi[i] != 0 {
				units = append(units, s.hatStore[i])
			}
		}
		warmStorings(units, workers)
	}
	return s.assemble(part, pl, needLevel, arena)
}

// plan decodes the h/h′ substreams (lazily, via the epoch caches) and
// runs Algorithm 1 + Algorithm 2's inclusion plan. Cache-miss decodes
// run their scratch out of arena.
func (s *Stream) plan(arena *sketch.DecodeArena) (*partition.Partition, *coreset.Plan, error) {
	g := s.g
	p := s.cfg.Params

	rootCell := partition.CellTau{Index: make([]int64, g.Dim), Tau: float64(s.n)}
	rootKey := g.KeyOf(-1, rootCell.Index)
	root := map[uint64]partition.CellTau{rootKey: rootCell}

	// Count sources decode each level's sketch lazily: BuildLazy consults
	// a level only while it can still contain heavy or crucial cells, so
	// on the serial path sketches of levels below the deepest heavy cell
	// — which can be arbitrarily over-full — are never decoded.
	decodeCells := func(st *sketch.Storing, rate float64) (map[uint64]partition.CellTau, bool) {
		res, ok := st.ResultArena(arena)
		if !ok {
			return nil, false
		}
		m := make(map[uint64]partition.CellTau, len(res.Cells))
		for _, cc := range res.Cells {
			m[cc.Key] = partition.CellTau{Index: cc.Index, Tau: float64(cc.Count) / rate}
		}
		return m, true
	}
	counts := func(level int) (map[uint64]partition.CellTau, bool) {
		if level == -1 {
			return root, true
		}
		return decodeCells(s.hStore[level], s.psi[level])
	}
	partCounts := func(level int) (map[uint64]partition.CellTau, bool) {
		if level == -1 {
			return root, true
		}
		return decodeCells(s.hpStore[level], s.psiP[level])
	}

	part, err := partition.BuildLazy(g, p.R, s.cfg.O, counts, partCounts)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSketchFail, err)
	}
	pl := coreset.BuildPlan(part, p)
	if pl.Failed() {
		return nil, nil, fmt.Errorf("%w: %s", ErrPlanFail, pl.FailWhy)
	}
	return part, pl, nil
}

// assemble recovers the ĥ-substream points of every needed level and
// keeps those landing in included parts, weighted by 1/φ_i. Cache-miss
// decodes run their scratch out of arena.
func (s *Stream) assemble(part *partition.Partition, pl *coreset.Plan, needLevel []bool, arena *sketch.DecodeArena) (*coreset.Coreset, error) {
	g := s.g
	cs := &coreset.Coreset{O: s.cfg.O, Grid: g, Part: part, Plan: pl, Params: s.cfg.Params}
	for i := 0; i <= g.L; i++ {
		if !needLevel[i] || s.phi[i] == 0 {
			continue
		}
		res, ok := s.hatStore[i].ResultArena(arena)
		if !ok {
			return nil, fmt.Errorf("%w: ĥ-substream level %d", ErrSketchFail, i)
		}
		for _, pc := range res.Points {
			id, ok := part.PartOf(pc.P)
			if !ok || id.Level != i || !pl.Included[id] {
				continue
			}
			cs.Points = append(cs.Points, geo.Weighted{
				P: pc.P,
				W: float64(pc.Count) / s.phi[i],
			})
			cs.Levels = append(cs.Levels, i)
		}
	}
	return cs, nil
}

// DropDecodeCache discards every level's decode cache, forcing the next
// extraction to re-decode from the slabs (the cold path). Benchmarks use
// it to separate cold and warm extraction cost; it never changes any
// result, N, Bytes or StateDigest.
func (s *Stream) DropDecodeCache() {
	for i := range s.hpStore {
		if s.hStore[i] != nil {
			s.hStore[i].DropCache()
		}
		s.hpStore[i].DropCache()
		s.hatStore[i].DropCache()
	}
}

// DecodeCacheBytes reports the memory currently held by decode caches
// and differential-decode bases. This is derived state — excluded from
// Bytes, the Theorem 4.5 space accounting — see DESIGN.md §6.
func (s *Stream) DecodeCacheBytes() int64 {
	var b int64
	for i := range s.hpStore {
		if s.hStore[i] != nil {
			b += s.hStore[i].CacheBytes()
		}
		b += s.hpStore[i].CacheBytes()
		b += s.hatStore[i].CacheBytes()
	}
	return b
}

// eachStoring calls f on every decode unit of the stream — the h/h′
// cell sketches and ĥ point sketch of each level.
func (s *Stream) eachStoring(f func(*sketch.Storing)) {
	for i := range s.hpStore {
		if s.hStore[i] != nil {
			f(s.hStore[i])
		}
		f(s.hpStore[i])
		f(s.hatStore[i])
	}
}

// WarmDecodeCache decodes every unit whose cache is not fresh, across
// the worker pool — the serving pre-warm: after it returns, a query
// that consults any unit gets a cache hit, and the next dirty batch is
// answered by differential decodes against the freshly set bases. It
// never changes any result (decoding is read-only on sketch state).
func (s *Stream) WarmDecodeCache() {
	var units []*sketch.Storing
	s.eachStoring(func(st *sketch.Storing) { units = append(units, st) })
	warmStorings(units, extractWorkers())
}

// WarmDecodeCache pre-warms every guess instance (see
// Stream.WarmDecodeCache).
func (a *Auto) WarmDecodeCache() {
	var units []*sketch.Storing
	for _, s := range a.streams {
		s.eachStoring(func(st *sketch.Storing) { units = append(units, st) })
	}
	warmStorings(units, extractWorkers())
}

// CacheStats sums the per-level decode-cache counters (hits, splices,
// merge keeps/skips, …) over every decode unit of the stream.
func (s *Stream) CacheStats() sketch.CacheStats {
	var total sketch.CacheStats
	s.eachStoring(func(st *sketch.Storing) { total = addCacheStats(total, st.CacheStats()) })
	return total
}

// DirtyLevels reports how many of the stream's decode units
// (level × substream sketches) no longer have a fresh cached decode —
// the units the next extraction has to touch — against the total unit
// count. A small dirty/total ratio is exactly the regime where the
// differential decode turns a query into a handful of residual peels.
func (s *Stream) DirtyLevels() (dirty, total int) {
	s.eachStoring(func(st *sketch.Storing) {
		total++
		if !st.CacheFresh() {
			dirty++
		}
	})
	return dirty, total
}

// addCacheStats is the field-wise sum of two CacheStats.
func addCacheStats(a, b sketch.CacheStats) sketch.CacheStats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Stale += b.Stale
	a.Drops += b.Drops
	a.MergeDrops += b.MergeDrops
	a.Splices += b.Splices
	a.SpliceFallbacks += b.SpliceFallbacks
	a.MergeKeeps += b.MergeKeeps
	a.MergeSkips += b.MergeSkips
	return a
}

// Result selects a guess. On insertion-only streams the reservoir gives
// a constant-factor OPT estimate, and the largest guess ≤ estimate/4 is
// tried first — the selection rule Theorem 4.5 prescribes. If that guess
// fails (or deletions dirtied the reservoir), selection falls back to
// the smallest guess whose Result succeeds with a coreset total weight
// within 30% of the exact point count (both far-off-OPT failure modes
// break this: sketch FAIL below, lost mass above).
//
// With more than one worker the candidate guesses' cell sketches are
// decoded speculatively across the pool before the scan; the scan itself
// runs the serial selection rule against the warmed caches, so the
// selected guess and its coreset are identical to ResultSerial's.
func (a *Auto) Result() (*coreset.Coreset, error) { return a.resultWith(extractWorkers()) }

// ResultSerial is Result restricted to one worker — the fully serial
// lazy selection/extraction path (equivalence baseline).
func (a *Auto) ResultSerial() (*coreset.Coreset, error) { return a.resultWith(1) }

func (a *Auto) resultWith(workers int) (*coreset.Coreset, error) {
	if a.n < 0 {
		return nil, errors.New("stream: more deletions than insertions")
	}
	sp := obs.StartSpan("stream.select")
	sp.AttrInt("guesses", int64(len(a.streams)))
	defer func() {
		if obs.Enabled() {
			mSketchBytes.SetInt(a.Bytes())
			mCacheBytes.SetInt(a.DecodeCacheBytes())
		}
		sp.End()
	}()
	if a.reservoir.Clean() && len(a.reservoir.Sample()) >= 32 {
		if cs := a.tryEstimateGuess(workers); cs != nil {
			sp.Attr("via", "estimate")
			sp.AttrFloat("o", cs.O)
			mGuessSelected.Set(cs.O)
			markGuess(cs.O, "selected")
			return cs, nil
		}
	}
	// Fallback (deletions dirtied the reservoir, or the estimate guess
	// failed): ascending scan with weight-sanity, pruned from above by
	// the deletion-proof cell-count bound — guesses beyond UpperBound/4
	// exceed OPT by at least the bound's looseness and can only lose
	// quality, so they are never considered. The smallest surviving guess
	// wins: o ≤ OPT is the side the analysis needs (Lemma 3.17); a
	// too-small o merely enlarges the coreset.
	guessCap := math.Inf(1)
	if upper, ok := a.costBound.UpperBound(a.params.K, 0); ok && upper > 0 {
		guessCap = upper / 4
	}
	if workers > 1 {
		// Speculative decode of the whole scan prefix: the scan stops at
		// the first success, but which candidate that is cannot be known
		// without decoding, and the units are independent — so all of
		// them go through the pool at once.
		var units []*sketch.Storing
		for i, s := range a.streams {
			if a.guesses[i] > guessCap {
				break
			}
			units = s.planTargets(units)
		}
		warmStorings(units, workers)
	}
	var firstErr error
	for i, s := range a.streams {
		if a.guesses[i] > guessCap {
			break
		}
		mGuessAttempts.Inc()
		markGuess(a.guesses[i], "attempt")
		cs, err := s.resultWith(workers)
		if err != nil {
			mGuessFails.Inc()
			markGuess(a.guesses[i], "fail")
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		w := cs.TotalWeight()
		if math.Abs(w-float64(a.n)) > 0.3*float64(a.n)+1 {
			mGuessRejects.Inc()
			markGuess(a.guesses[i], "reject")
			continue
		}
		sp.Attr("via", "scan")
		sp.AttrFloat("o", cs.O)
		mGuessSelected.Set(cs.O)
		markGuess(a.guesses[i], "selected")
		return cs, nil
	}
	sp.Attr("via", "none")
	if firstErr != nil {
		return nil, fmt.Errorf("%w (first failure: %v)", ErrNoGuessSucceeded, firstErr)
	}
	return nil, ErrNoGuessSucceeded
}

// tryEstimateGuess picks the guess from the reservoir's OPT estimate and
// returns its coreset if it succeeds and is weight-sane; nil otherwise.
func (a *Auto) tryEstimateGuess(workers int) *coreset.Coreset {
	sample := a.reservoir.Sample()
	rng := rand.New(rand.NewSource(a.params.Seed ^ 0x0e57))
	est := solve.EstimateOPT(rng, geo.UnitWeights(sample), a.params.K, a.params.R, a.delta, 2) *
		float64(a.n) / float64(len(sample))
	target := est / 4
	best := -1
	for i, o := range a.guesses {
		if o <= target {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	mGuessAttempts.Inc()
	markGuess(a.guesses[best], "attempt")
	cs, err := a.streams[best].resultWith(workers)
	if err != nil {
		mGuessFails.Inc()
		markGuess(a.guesses[best], "fail")
		return nil
	}
	if w := cs.TotalWeight(); math.Abs(w-float64(a.n)) > 0.3*float64(a.n)+1 {
		mGuessRejects.Inc()
		markGuess(a.guesses[best], "reject")
		return nil
	}
	return cs
}

// DropDecodeCache discards the decode caches of every guess instance
// (see Stream.DropDecodeCache).
func (a *Auto) DropDecodeCache() {
	for _, s := range a.streams {
		s.DropDecodeCache()
	}
}

// DecodeCacheBytes sums the decode-cache memory over all guess
// instances. Deliberately not part of Bytes — caches are derived state.
func (a *Auto) DecodeCacheBytes() int64 {
	var b int64
	for _, s := range a.streams {
		b += s.DecodeCacheBytes()
	}
	return b
}

// CacheStats sums the decode-cache counters over all guess instances.
func (a *Auto) CacheStats() sketch.CacheStats {
	var total sketch.CacheStats
	for _, s := range a.streams {
		total = addCacheStats(total, s.CacheStats())
	}
	return total
}

// DirtyLevels sums Stream.DirtyLevels over all guess instances.
func (a *Auto) DirtyLevels() (dirty, total int) {
	for _, s := range a.streams {
		d, n := s.DirtyLevels()
		dirty += d
		total += n
	}
	return dirty, total
}
