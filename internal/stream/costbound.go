package stream

import (
	"math"
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/sketch"
)

// CostBound is a one-pass, deletion-proof cost estimator in the style of
// the [HSYZ18] component Theorem 4.5 cites for guess selection. It
// maintains, per grid level, an F₀ sketch of the non-empty cells. At
// query time, if all surviving points occupy at most k cells of side
// g_j, then placing one center inside each non-empty cell certifies
// OPT ≤ n·(√d·g_j)^r.
//
// The bound is CERTIFIED from above but can be loose by (g_j/σ)^r when
// clusters are much tighter than the finest qualifying cell — so it
// serves as a pruning device and scan starting point for the guess
// enumeration (Auto), not as a standalone selector; the weight-sanity
// check remains the arbiter.
type CostBound struct {
	g  *grid.Grid
	r  float64
	f0 []*sketch.F0
	n  int64
}

// NewCostBound creates the estimator. s controls each F₀ ladder's
// per-level sparsity (accuracy ≈ 1/√s; default 256 when 0).
func NewCostBound(rng *rand.Rand, g *grid.Grid, r float64, s int) *CostBound {
	if s == 0 {
		s = 256
	}
	cb := &CostBound{g: g, r: r, f0: make([]*sketch.F0, g.L+1)}
	maxCells := int64(1) << uint(min(62, g.Dim*g.L+1))
	for i := 0; i <= g.L; i++ {
		cb.f0[i] = sketch.NewF0(rng, maxCells, s, 0.01)
	}
	return cb
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Insert observes (p, +).
func (cb *CostBound) Insert(p geo.Point) { cb.update(p, 1) }

// Delete observes (p, −).
func (cb *CostBound) Delete(p geo.Point) { cb.update(p, -1) }

func (cb *CostBound) update(p geo.Point, delta int64) {
	cb.n += delta
	for i := 0; i <= cb.g.L; i++ {
		cb.f0[i].Update(cb.g.CellKey(p, i), delta)
	}
}

// UpperBound returns a certified-style upper bound on the optimal
// uncapacitated ℓ_r k-clustering cost of the surviving points: the
// finest level whose estimated non-empty cell count is at most
// slack·k (slack < 1 absorbs the F₀ estimation error) yields
// n·(√d·g_level)^r. When no level qualifies, the trivial domain-level
// bound is returned. ok is false when the sketches cannot even bound the
// cell counts (undersized F₀ ladders).
func (cb *CostBound) UpperBound(k int, slack float64) (float64, bool) {
	if cb.n <= 0 {
		return 0, true
	}
	if slack <= 0 {
		// F₀ is exact whenever the count fits the ladder's base level, and
		// the counts relevant here are O(k); no sub-1 slack needed.
		slack = 1.0
	}
	best := -1 // grid.MinLevel: the trivial bound
	for i := 0; i <= cb.g.L; i++ {
		c, ok := cb.f0[i].Estimate()
		if !ok {
			// This level is too populous to even count — finer levels are
			// denser still; stop.
			break
		}
		if c <= slack*float64(k)+0.5 {
			best = i
		} else {
			break // cell counts only grow with depth
		}
	}
	diam := math.Sqrt(float64(cb.g.Dim)) * float64(cb.g.SideLen(best))
	return float64(cb.n) * geo.PowR(diam, cb.r), true
}

// Guess converts the upper bound into the o a coreset instance should
// use: UpperBound/4 floored to a power of two, ≥ 1 (the same rule every
// other selector in this repository applies).
func (cb *CostBound) Guess(k int) float64 {
	u, ok := cb.UpperBound(k, 0)
	if !ok || u <= 4 {
		return 1
	}
	return math.Exp2(math.Floor(math.Log2(u / 4)))
}

// Bytes reports the total F₀ sketch footprint.
func (cb *CostBound) Bytes() int64 {
	var b int64
	for _, f := range cb.f0 {
		b += f.Bytes()
	}
	return b
}

// N returns the exact surviving-point count.
func (cb *CostBound) N() int64 { return cb.n }
