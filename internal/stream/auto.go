package stream

import (
	"errors"
	"math"
	"math/rand"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

// Auto runs the guess enumeration of Theorem 4.5: one Stream instance per
// guess o on a geometric grid covering [1, Δ^d·(√d·Δ)^r] (Algorithm 2
// line 1), all fed the same updates in parallel. At the end of the stream
// the smallest guess whose instance succeeds — and whose coreset carries
// approximately the right total weight — is selected.
//
// The paper selects o with a parallel streaming 2-approximation of OPT
// [HSYZ18]; the weight-sanity rule here is the practical stand-in (a
// far-too-large o loses points because the root cell is not heavy, a
// far-too-small o FAILs its sketches), documented in DESIGN.md.
type Auto struct {
	streams []*Stream
	guesses []float64
	n       int64

	// All guess instances share one grid (hence one random shift and one
	// cell-key fingerprint) and one sampling/point fingerprint, so the
	// ingestion pipeline computes each op's key column once for the whole
	// ensemble. Each instance keeps private samplers and sketch hash
	// functions; the per-instance guarantees of Theorem 4.5 are marginal
	// over those, so sharing the grid only correlates failures across
	// guesses — it never changes any single instance's distribution.
	g  *grid.Grid
	fp *hashing.Fingerprint
	b  *batch // reusable columnar buffer for Apply (not goroutine-safe)

	reservoir *Reservoir // OPT-estimate sample for guess selection (insert-only)
	costBound *CostBound // deletion-proof cell-counting bound ([HSYZ18]-style)
	params    coreset.Params
	delta     int64
}

// NewAuto creates the parallel guess grid with ratio oFactor between
// consecutive guesses (≥ 2; the paper uses 2, 4 halves the instance
// count with one extra factor of guess slack).
func NewAuto(cfg Config, oFactor float64) (*Auto, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if oFactor < 2 {
		oFactor = 2
	}
	// Upper bound of the guess range: Δ^d·(√d·Δ)^r.
	logUpper := float64(cfg.Dim)*math.Log2(float64(cfg.Delta)) +
		cfg.Params.R*math.Log2(math.Sqrt(float64(cfg.Dim))*float64(cfg.Delta))
	upper := math.Exp2(logUpper)
	rngCB := rand.New(rand.NewSource(cfg.Params.Seed ^ 0xcb))
	gCB := grid.New(cfg.Delta, cfg.Dim, rngCB)
	rngShared := rand.New(rand.NewSource(cfg.Params.Seed))
	a := &Auto{
		g:         grid.New(cfg.Delta, cfg.Dim, rngShared),
		fp:        hashing.NewFingerprint(rngShared),
		reservoir: NewReservoir(1000, cfg.Params.Seed^0x5eed),
		costBound: NewCostBound(rngCB, gCB, cfg.Params.R, 256),
		params:    cfg.Params,
		delta:     cfg.Delta,
	}
	for o, i := 1.0, 0; o <= upper; o, i = o*oFactor, i+1 {
		c := cfg
		c.O = o
		// Decorrelate instance samplers and sketches while keeping the
		// whole ensemble reproducible from one seed.
		c.Params.Seed = cfg.Params.Seed + int64(i)*1_000_003
		st := newShared(c, a.g, a.fp, rand.New(rand.NewSource(c.Params.Seed)))
		a.streams = append(a.streams, st)
		a.guesses = append(a.guesses, o)
	}
	obs.G("stream_guess_instances").SetInt(int64(len(a.streams)))
	return a, nil
}

// Guesses returns the guess grid.
func (a *Auto) Guesses() []float64 { return a.guesses }

// Insert feeds (p, +) to every guess instance.
func (a *Auto) Insert(p geo.Point) {
	mOps.Inc()
	a.n++
	a.reservoir.Insert(p)
	a.costBound.Insert(p)
	for _, s := range a.streams {
		// update, not Insert: stream_ops_total counts logical updates at
		// the public entry point, not once per guess instance.
		s.update(p, false)
	}
}

// Delete feeds (p, −) to every guess instance.
func (a *Auto) Delete(p geo.Point) {
	mOps.Inc()
	mDeletes.Inc()
	a.n--
	a.reservoir.Delete(p)
	a.costBound.Delete(p)
	for _, s := range a.streams {
		s.update(p, true)
	}
}

// Apply feeds a batch of updates to every guess instance through the
// shared-key ingestion pipeline (ingest.go): the per-op key columns are
// computed once — not once per guess — and the sketch work is sharded
// over (guess × level-range) units across a worker pool sized to the
// machine. Linearity of all sketch state makes the result bit-identical
// to feeding the ops one at a time through Insert/Delete.
func (a *Auto) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	countBatch(ops)
	var net int64
	for i := range ops {
		if ops[i].Delete {
			net--
			a.reservoir.Delete(ops[i].P)
			a.costBound.Delete(ops[i].P)
		} else {
			net++
			a.reservoir.Insert(ops[i].P)
			a.costBound.Insert(ops[i].P)
		}
	}
	a.n += net
	if a.b == nil {
		a.b = new(batch)
	}
	a.b.build(a.g, a.fp, ops)
	// Chunk each instance's L+1 levels into a few shards so the pool can
	// balance load even when the instance count is near the core count.
	chunk := (a.g.L + 4) / 4
	if chunk < 1 {
		chunk = 1
	}
	shards := make([]shard, 0, len(a.streams)*4)
	for _, s := range a.streams {
		s.n += net
		shards = levelShards(shards, s, chunk)
	}
	applyShards(a.b, shards)
}

// StateDigest folds every guess instance's sketch state into one 64-bit
// value (see Stream.StateDigest).
func (a *Auto) StateDigest() uint64 {
	d := hashing.Mix64(uint64(a.n))
	for _, s := range a.streams {
		d = hashing.Mix64(d ^ s.StateDigest())
	}
	return d
}

// Bytes sums the sketch state over all guess instances plus the guess
// selectors — the full space cost of the enumeration.
func (a *Auto) Bytes() int64 {
	b := a.costBound.Bytes()
	for _, s := range a.streams {
		b += s.Bytes()
	}
	return b
}

// ErrNoGuessSucceeded is returned when every guess instance FAILed or
// produced a weight-inconsistent coreset.
var ErrNoGuessSucceeded = errors.New("stream: no guess o succeeded")

// Result (guess selection + extraction) lives in extract.go.
