package stream

import (
	"testing"

	"streambalance/internal/coreset"
)

// Extraction benchmarks: cold decode (caches dropped every iteration)
// vs warm epoch-cached re-extraction, and the serial lazy path, all on
// the full guess ensemble. EXPERIMENTS.md records the reference numbers;
// the root-level BenchmarkStreamExtract exercises the same pipeline
// through the public API.

// benchExtractAuto builds the 25-guess ensemble the extraction benchmarks
// decode. Same geometry as benchAuto, but with ĥ point sketches sized so
// the winning guess actually decodes — the ingest benchmarks never decode,
// so their tighter sketches would make every extraction FAIL here.
func benchExtractAuto(b *testing.B) *Auto {
	b.Helper()
	a, err := NewAuto(Config{Dim: 2, Delta: 1 << 12, Params: coreset.Params{K: 4, Seed: 1},
		CellSparsity: 512, PointSparsity: 4096}, 4)
	if err != nil {
		b.Fatal(err)
	}
	a.Apply(benchIngestOps(4096))
	if _, err := a.Result(); err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkExtractAutoCold: every iteration re-decodes the whole
// ensemble from the slabs (parallel across the pool when GOMAXPROCS>1).
func BenchmarkExtractAutoCold(b *testing.B) {
	a := benchExtractAuto(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DropDecodeCache()
		if _, err := a.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractAutoColdSerial: the lazy single-worker decode path —
// the pre-pipeline baseline.
func BenchmarkExtractAutoColdSerial(b *testing.B) {
	a := benchExtractAuto(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DropDecodeCache()
		if _, err := a.ResultSerial(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractAutoWarm: periodic re-extraction with unchanged
// sketches — every decode is an epoch-cache hit; only guess selection,
// partition and assembly run.
func BenchmarkExtractAutoWarm(b *testing.B) {
	a := benchExtractAuto(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractAutoPeriodic models the ROADMAP serving scenario: a
// long stream with periodic coreset extraction — each iteration ingests
// a small batch then re-extracts, so the cache re-decodes only levels
// the batch touched. Compare with Cold for the incremental win.
func BenchmarkExtractAutoPeriodic(b *testing.B) {
	a := benchExtractAuto(b)
	ops := benchIngestOps(4096)
	const batch = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % len(ops)
		hi := lo + batch
		if hi > len(ops) {
			hi = len(ops)
		}
		a.Apply(ops[lo:hi])
		if _, err := a.Result(); err != nil {
			b.Fatal(err)
		}
	}
}
