package stream

import (
	"math/rand"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/workload"
)

// equalExtraction asserts the two extraction outcomes are identical: same
// accepted guess, and the same points, weights and levels in the same
// order. Decode is deterministic in sketch state, so equivalent paths
// must agree bitwise, not just approximately.
func equalExtraction(t *testing.T, a, b *coreset.Coreset, label string) {
	t.Helper()
	if a.O != b.O {
		t.Fatalf("%s: accepted guess %v vs %v", label, a.O, b.O)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d vs %d coreset points", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if !a.Points[i].P.Equal(b.Points[i].P) || a.Points[i].W != b.Points[i].W {
			t.Fatalf("%s: point %d differs: %v/%v vs %v/%v",
				label, i, a.Points[i].P, a.Points[i].W, b.Points[i].P, b.Points[i].W)
		}
		if a.Levels[i] != b.Levels[i] {
			t.Fatalf("%s: level %d differs: %d vs %d", label, i, a.Levels[i], b.Levels[i])
		}
	}
}

func extractTestAuto(t *testing.T, seed int64) *Auto {
	t.Helper()
	a, err := NewAuto(Config{
		Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: seed},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mixedOps(seed int64, n int) []Op {
	ps, _ := testMixture(seed, n)
	rng := rand.New(rand.NewSource(seed ^ 0x0b5))
	junk := workload.UniformBox(rng, n/4, 2, testDelta)
	ops := make([]Op, 0, n+len(junk)*2)
	for _, p := range ps {
		ops = append(ops, Op{P: p})
	}
	for _, p := range junk {
		ops = append(ops, Op{P: p})
	}
	for _, i := range rng.Perm(len(junk)) {
		ops = append(ops, Op{P: junk[i], Delete: true})
	}
	return ops
}

// TestResultIdempotent: repeated Result calls — with and without
// interleaved updates — return identical coresets and never mutate
// N, Bytes or StateDigest. Run under -race via `make check`.
func TestResultIdempotent(t *testing.T) {
	ops := mixedOps(51, 2000)
	half := len(ops) / 2

	a := extractTestAuto(t, 52)
	a.Apply(ops[:half])

	n0, bytes0, dig0 := a.n, a.Bytes(), a.StateDigest()
	cs1, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := a.Result() // warm repeat, no updates in between
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, cs1, cs2, "repeat without updates")
	if a.n != n0 || a.Bytes() != bytes0 || a.StateDigest() != dig0 {
		t.Fatalf("Result mutated sketch state: n %d→%d bytes %d→%d digest %x→%x",
			n0, a.n, bytes0, a.Bytes(), dig0, a.StateDigest())
	}

	// Apply→Result→Apply→Result: the second extraction must equal a cold
	// extraction of a fresh instance that saw the whole stream at once.
	a.Apply(ops[half:])
	cs3, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	cs4, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, cs3, cs4, "repeat after interleaved updates")

	ref := extractTestAuto(t, 52)
	ref.Apply(ops)
	if ref.StateDigest() != a.StateDigest() {
		t.Fatal("interleaved Apply/Result changed sketch state vs one-shot Apply")
	}
	csRef, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, cs3, csRef, "interleaved extraction vs one-shot cold")
}

// TestExtractParallelMatchesSerial: the pool-decoded path and the lazy
// serial path must agree bitwise on the selected guess and the coreset,
// for both cold and warm caches. The pool is driven with 4 workers
// regardless of GOMAXPROCS so the concurrent path (and its -race
// coverage) is exercised even on single-CPU machines.
func TestExtractParallelMatchesSerial(t *testing.T) {
	ops := mixedOps(61, 2000)

	par := extractTestAuto(t, 62)
	ser := extractTestAuto(t, 62)
	par.Apply(ops)
	ser.Apply(ops)
	if par.StateDigest() != ser.StateDigest() {
		t.Fatal("identically-seeded instances disagree before extraction")
	}

	csP, errP := par.resultWith(4)  // cold, parallel decode
	csS, errS := ser.ResultSerial() // cold, serial decode
	if errP != nil || errS != nil {
		t.Fatalf("results: %v / %v", errP, errS)
	}
	equalExtraction(t, csP, csS, "cold parallel vs cold serial")
	if par.StateDigest() != ser.StateDigest() {
		t.Fatal("extraction mutated sketch state")
	}

	// Warm repeats on both paths still agree.
	csP2, _ := par.resultWith(4)
	csS2, _ := ser.ResultSerial()
	equalExtraction(t, csP2, csS2, "warm parallel vs warm serial")

	// Cross-check: dropping the cache and re-extracting with the other
	// path still matches.
	par.DropDecodeCache()
	csP3, err := par.ResultSerial()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, csP, csP3, "cold serial after cache drop")
}

// TestExtractWarmMatchesCold: the epoch cache must be invisible — a warm
// re-extraction equals a cold one, and updates between extractions
// invalidate exactly what they touch.
func TestExtractWarmMatchesCold(t *testing.T) {
	ps, _ := testMixture(71, 1500)
	o := goodGuess(ps, 3)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 72}})
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, len(ps))
	for i, p := range ps {
		ops[i] = Op{P: p}
	}
	s.Apply(ops[:1000])

	warm1, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodeCacheBytes() == 0 {
		t.Fatal("extraction should have populated the decode cache")
	}
	s.DropDecodeCache()
	if s.DecodeCacheBytes() != 0 {
		t.Fatal("DropDecodeCache left cache bytes behind")
	}
	cold1, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, warm1, cold1, "warm vs cold")

	// Updates must invalidate: a warm extraction after new ops equals a
	// cold extraction of the full stream.
	s.Apply(ops[1000:])
	warm2, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	s.DropDecodeCache()
	cold2, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, warm2, cold2, "post-update warm vs cold")
}

// TestForkMergeInvalidatesDecodeCache: Merge folds new state into warm
// sketches; their caches must not survive, or the next extraction would
// report the pre-merge stream.
func TestForkMergeInvalidatesDecodeCache(t *testing.T) {
	ps, _ := testMixture(81, 2000)
	o := goodGuess(ps, 3)
	cfg := Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 82}}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps[:1000] {
		s.Insert(p)
	}
	if _, err := s.Result(); err != nil { // warm the caches pre-merge
		t.Fatal(err)
	}

	fork := s.Fork()
	for _, p := range ps[1000:] {
		fork.Insert(p)
	}
	s.Merge(fork)

	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		ref.Insert(p)
	}
	if s.StateDigest() != ref.StateDigest() {
		t.Fatal("fork/merge state diverged from single pass")
	}
	want, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}
	equalExtraction(t, got, want, "post-merge extraction vs single-pass cold")
}
