// Package stream implements the one-pass dynamic streaming coreset of
// Theorem 4.5 (Algorithm 4): over a stream of point insertions and
// deletions it maintains, in space independent of the stream length,
// enough linear-sketch state to output a strong (η, ε)-coreset for
// capacitated k-clustering in ℓ_r at the end of the stream.
//
// Per grid level i the algorithm runs three independently subsampled
// substreams through Storing sketches (Lemma 4.2):
//
//	h_i  at rate ψ_i  — cell counts for the heavy-cell marking (Algorithm 1),
//	h′_i at rate ψ′_i — cell counts for part masses τ(Q_{i,j}) (Algorithm 2 lines 6, 9),
//	ĥ_i  at rate φ_i  — the actual coreset candidate points (Algorithm 2 line 10).
//
// All state is linear, so deletions are handled by sketch subtraction; a
// deleted point cancels exactly, whatever order updates arrive in.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
	"streambalance/internal/partition"
	"streambalance/internal/sketch"
)

// Telemetry (DESIGN.md §9). Ingestion counters are bumped once per
// logical update or per batch at the public entry points (Insert,
// Delete, Apply on Stream and Auto) — never once per guess instance —
// so stream_ops_total counts what the caller fed in, and
// stream_sketch_updates_total counts the post-sampling fan-out the
// sketches absorbed (accumulated locally in applyLevels, one atomic
// add per shard).
var (
	mOps           = obs.C("stream_ops_total")
	mDeletes       = obs.C("stream_deletes_total")
	mBatches       = obs.C("stream_batches_total")
	mBatchOps      = obs.H("stream_batch_ops")
	mSketchUpdates = obs.C("stream_sketch_updates_total")

	mExtracts       = obs.C("stream_extracts_total")
	mExtractNS      = obs.H("stream_extract_ns")
	mExtractDecodes = obs.C("stream_extract_decodes_total")
	mSketchBytes    = obs.G("stream_sketch_bytes")
	mCacheBytes     = obs.G("stream_decode_cache_bytes")

	mGuessAttempts = obs.C("stream_guess_attempts_total")
	mGuessFails    = obs.C("stream_guess_fail_total")
	mGuessRejects  = obs.C("stream_guess_weight_reject_total")
	mGuessSelected = obs.G("stream_guess_selected_o")

	// Per-guess outcome breakdown of the selection scan. The scalar
	// mGuess* counters above stay as cheap aggregates; this vector says
	// which guesses the scan burned attempts on and why they lost.
	vGuessOutcome = obs.CV("stream_guess_outcome_total", "guess", "outcome")
)

// markGuess records one selection-scan outcome for guess o. Label
// interning is skipped entirely when telemetry is off.
func markGuess(o float64, outcome string) {
	if !obs.Enabled() {
		return
	}
	vGuessOutcome.Inc(strconv.FormatFloat(o, 'g', -1, 64), outcome)
}

// Op is one dynamic stream update: an insertion, or a deletion of a point
// previously inserted (the stream contract of Section 4.2).
type Op struct {
	P      geo.Point
	Delete bool
}

// Config configures a single-guess streaming coreset instance.
type Config struct {
	Delta  int64          // coordinate range; rounded up to a power of two
	Dim    int            // dimension d
	Params coreset.Params // clustering parameters (k, r, ε, η, seed)
	O      float64        // the guess of OPT^{(r)}_{k-clus}; must be > 0

	// Sketch sizing. CellSparsity is α of each cell-count Storing;
	// PointSparsity is β of each ĥ-level point sketch. Defaults 2048 and
	// 4096. Theorem 4.5's poly(ε⁻¹η⁻¹kd log Δ) bound corresponds to the
	// (much larger) paper values α_i, β̂_i of Algorithm 4 step 3; these
	// calibrated defaults keep the same FAIL-never-wrong contract.
	CellSparsity  int
	PointSparsity int

	// Sampling calibration: ψ_i = min(1, CountRate/T_i(o)) and
	// ψ′_i = min(1, PartRate/(γ·T_i(o))). Defaults 256 and 64. The paper
	// uses 10⁶λ′ for both numerators (Algorithm 3).
	CountRate float64
	PartRate  float64

	FailProb float64 // δ for the sketches (default 0.01)

	// Shards is the worker count of the sharded multicore ingest
	// front-end (shard.go): NewSharded hash-partitions each Apply batch
	// across this many ingest workers, each owning a private clone of
	// every sketch, recombined lazily at extraction time. 0 sizes the
	// pool to GOMAXPROCS. Ignored by New/NewAuto, whose Apply stays the
	// single-dispatcher batched pipeline.
	Shards int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	c.Params, err = c.Params.Resolve()
	if err != nil {
		return c, err
	}
	if c.Dim < 1 {
		return c, errors.New("stream: Dim must be >= 1")
	}
	if c.Delta < 1 {
		return c, errors.New("stream: Delta must be >= 1")
	}
	d := int64(1)
	for d < c.Delta {
		d <<= 1
	}
	c.Delta = d
	if c.CellSparsity == 0 {
		c.CellSparsity = 2048
	}
	if c.PointSparsity == 0 {
		c.PointSparsity = 4096
	}
	if c.CountRate == 0 {
		c.CountRate = 256
	}
	if c.PartRate == 0 {
		c.PartRate = 64
	}
	if c.FailProb == 0 {
		c.FailProb = 0.01
	}
	return c, nil
}

// Stream is a one-pass dynamic streaming coreset builder for one guess o.
type Stream struct {
	cfg Config
	g   *grid.Grid

	n int64 // exact net point count (one counter; trivially streamable)

	fp            *hashing.Fingerprint // keys the sampling decisions and point identities
	hSamp, hpSamp []*hashing.Bernoulli // ψ_i and ψ′_i samplers, levels 0..L
	hatSamp       []*hashing.Bernoulli // φ_i samplers, levels 0..L

	hStore   []*sketch.Storing // cell counts for heavy marking, levels 0..L−1
	hpStore  []*sketch.Storing // cell counts for part masses, levels 0..L
	hatStore []*sketch.Storing // point recovery, levels 0..L

	psi, psiP, phi []float64

	b *batch // reusable columnar buffer for Apply (not goroutine-safe)
}

// New creates a streaming coreset instance. cfg.O must be a positive
// guess of the optimal uncapacitated cost (Theorem 4.5 obtains one from a
// parallel streaming 2-approximation; Auto runs a guess grid instead).
func New(cfg Config) (*Stream, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.O <= 0 {
		return nil, errors.New("stream: cfg.O must be > 0 (use NewAuto for guess enumeration)")
	}
	rng := rand.New(rand.NewSource(cfg.Params.Seed))
	g := grid.New(cfg.Delta, cfg.Dim, rng)
	return newShared(cfg, g, hashing.NewFingerprint(rng), rng), nil
}

// newShared builds a Stream over an externally supplied grid and
// fingerprint. Auto uses it to make every guess instance share one grid
// shift and one per-op key function, so the ingestion pipeline can compute
// each op's fingerprint key and cell keys once and reuse them across all
// instances. cfg must already be defaulted and have O > 0; rng seeds the
// instance-private samplers and sketch hash functions.
func newShared(cfg Config, g *grid.Grid, fp *hashing.Fingerprint, rng *rand.Rand) *Stream {
	L := g.L
	s := &Stream{
		cfg: cfg, g: g,
		fp:       fp,
		hSamp:    make([]*hashing.Bernoulli, L+1),
		hpSamp:   make([]*hashing.Bernoulli, L+1),
		hatSamp:  make([]*hashing.Bernoulli, L+1),
		hStore:   make([]*sketch.Storing, L+1),
		hpStore:  make([]*sketch.Storing, L+1),
		hatStore: make([]*sketch.Storing, L+1),
		psi:      make([]float64, L+1),
		psiP:     make([]float64, L+1),
		phi:      make([]float64, L+1),
	}
	p := cfg.Params
	gamma := p.Gamma(g.Dim, L)
	lambda := p.Lambda(g.Dim, L)
	for i := 0; i <= L; i++ {
		T := partition.ThresholdT(g, i, cfg.O, p.R)
		s.psi[i] = math.Min(1, cfg.CountRate/T)
		s.psiP[i] = math.Min(1, cfg.PartRate/(gamma*T))
		s.phi[i] = p.Phi(T, g.Dim, L)
		s.hSamp[i] = hashing.NewBernoulli(rng, lambda, s.psi[i])
		s.hpSamp[i] = hashing.NewBernoulli(rng, lambda, s.psiP[i])
		s.hatSamp[i] = hashing.NewBernoulli(rng, lambda, s.phi[i])
		if i <= L-1 {
			s.hStore[i] = sketch.NewStoringShared(rng, g, i, cfg.CellSparsity, 0, cfg.FailProb, fp)
		}
		s.hpStore[i] = sketch.NewStoringShared(rng, g, i, cfg.CellSparsity, 0, cfg.FailProb, fp)
		s.hatStore[i] = sketch.NewStoringShared(rng, g, i, 0, cfg.PointSparsity, cfg.FailProb, fp)
	}
	return s
}

// Insert processes (p, +).
func (s *Stream) Insert(p geo.Point) {
	mOps.Inc()
	s.update(p, false)
}

// Delete processes (p, −).
func (s *Stream) Delete(p geo.Point) {
	mOps.Inc()
	mDeletes.Inc()
	s.update(p, true)
}

// Apply processes a batch of updates through the columnar ingestion
// pipeline (ingest.go): per-op keys are computed once and reused across
// the h/h′/ĥ sketches of every level. All sketch state is linear, so the
// result is bit-identical to replaying the ops through Insert/Delete.
func (s *Stream) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	countBatch(ops)
	if s.b == nil {
		s.b = new(batch)
	}
	s.b.build(s.g, s.fp, ops)
	s.applyLevels(s.b, 0, s.g.L)
	for i := range ops {
		if ops[i].Delete {
			s.n--
		} else {
			s.n++
		}
	}
}

// countBatch meters one Apply batch: a handful of atomic bumps per
// batch, nothing per op.
func countBatch(ops []Op) {
	if !obs.Enabled() {
		return
	}
	mBatches.Inc()
	mBatchOps.Observe(int64(len(ops)))
	mOps.Add(int64(len(ops)))
	var dels int64
	for i := range ops {
		if ops[i].Delete {
			dels++
		}
	}
	mDeletes.Add(dels)
}

func (s *Stream) update(p geo.Point, del bool) {
	if len(p) != s.g.Dim {
		panic(fmt.Sprintf("stream: point dim %d != %d", len(p), s.g.Dim))
	}
	if del {
		s.n--
	} else {
		s.n++
	}
	key := s.fp.Key(p)
	var nSel int64
	for i := 0; i <= s.g.L; i++ {
		if i <= s.g.L-1 && s.hSamp[i].Sample(key) {
			if del {
				s.hStore[i].Delete(p)
			} else {
				s.hStore[i].Insert(p)
			}
			nSel++
		}
		if s.hpSamp[i].Sample(key) {
			if del {
				s.hpStore[i].Delete(p)
			} else {
				s.hpStore[i].Insert(p)
			}
			nSel++
		}
		if s.hatSamp[i].Sample(key) {
			if del {
				s.hatStore[i].Delete(p)
			} else {
				s.hatStore[i].Insert(p)
			}
			nSel++
		}
	}
	mSketchUpdates.Add(nSel)
}

// N returns the exact current number of points.
func (s *Stream) N() int64 { return s.n }

// Fork returns a zeroed Stream sharing s's configuration, grid and hash
// functions. A fork can process a disjoint shard of the stream (e.g. on
// another goroutine or machine) and be merged back with Merge — the
// linearity of every sketch makes the merged state identical to one pass
// over the interleaved stream.
func (s *Stream) Fork() *Stream {
	cp := &Stream{
		cfg: s.cfg, g: s.g, fp: s.fp,
		hSamp: s.hSamp, hpSamp: s.hpSamp, hatSamp: s.hatSamp,
		hStore:   make([]*sketch.Storing, len(s.hStore)),
		hpStore:  make([]*sketch.Storing, len(s.hpStore)),
		hatStore: make([]*sketch.Storing, len(s.hatStore)),
		psi:      s.psi, psiP: s.psiP, phi: s.phi,
	}
	for i := range s.hStore {
		if s.hStore[i] != nil {
			cp.hStore[i] = s.hStore[i].CloneEmpty()
		}
		cp.hpStore[i] = s.hpStore[i].CloneEmpty()
		cp.hatStore[i] = s.hatStore[i].CloneEmpty()
	}
	return cp
}

// Merge folds a fork's state back into s. The fork must have been
// created by s.Fork() (or share its hash functions transitively);
// mismatched shapes panic.
func (s *Stream) Merge(fork *Stream) {
	for i := range s.hStore {
		if s.hStore[i] != nil {
			s.hStore[i].Merge(fork.hStore[i])
		}
		s.hpStore[i].Merge(fork.hpStore[i])
		s.hatStore[i].Merge(fork.hatStore[i])
	}
	s.n += fork.n
}

// StateDigest folds every sketch's state into one 64-bit value. Streams
// with identical configuration and seed have equal digests iff their
// sketch states are bit-identical — the equivalence check for the batched
// ingestion pipeline against per-op replay.
func (s *Stream) StateDigest() uint64 {
	d := hashing.Mix64(uint64(s.n))
	for i := 0; i <= s.g.L; i++ {
		if i <= s.g.L-1 {
			d = hashing.Mix64(d ^ s.hStore[i].Digest())
		}
		d = hashing.Mix64(d ^ s.hpStore[i].Digest())
		d = hashing.Mix64(d ^ s.hatStore[i].Digest())
	}
	return d
}

// Bytes returns the total sketch state in bytes — the streaming space
// Theorem 4.5 bounds by poly(ε⁻¹η⁻¹kd log Δ), independent of the stream
// length.
func (s *Stream) Bytes() int64 {
	var b int64
	for i := 0; i <= s.g.L; i++ {
		if i <= s.g.L-1 {
			b += s.hStore[i].Bytes()
		}
		b += s.hpStore[i].Bytes()
		b += s.hatStore[i].Bytes()
	}
	return b
}

// ErrSketchFail is returned when a Storing subroutine FAILs (too many
// non-empty cells or sampled points for the configured sketch budgets) —
// the guess o is too small for this input, or the budgets too tight.
var ErrSketchFail = errors.New("stream: sketch decode FAILed")

// ErrPlanFail is returned when Algorithm 2's FAIL conditions trigger on
// the recovered partition.
var ErrPlanFail = errors.New("stream: coreset plan FAILed")

// Result decodes the sketches and assembles the coreset — see extract.go
// for the extraction pipeline (parallel decode + epoch cache).
