package stream

import (
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/sketch"
)

// collectStorings returns the stream's decode units in eachStoring
// order, so sibling streams can be compared unit-by-unit.
func collectStorings(s *Stream) []*sketch.Storing {
	var units []*sketch.Storing
	s.eachStoring(func(st *sketch.Storing) { units = append(units, st) })
	return units
}

// TestMergeFineGrainedInvalidation: merging a fork that touched only k
// of the stream's decode units must leave the other units' cache
// entries live (pristine levels are skipped outright) and keep the
// dirtied units' bases for differential decode — no merge drops at all
// on this path. The spliced post-merge state must still be bit-identical
// to a serial stream that saw both op sequences.
func TestMergeFineGrainedInvalidation(t *testing.T) {
	ops := shuffledChurnOps(606, 400)
	// O large enough that the fine levels' sampling rates drop below 1
	// (ψ_i = min(1, CountRate/T_i), T_i ∝ O): a one-op fork then dirties
	// only the levels whose samplers keep the point.
	cfg := Config{Dim: 2, Delta: testDelta, O: 1 << 20,
		Params: coreset.Params{K: 3, Seed: 66}, CellSparsity: 256, PointSparsity: 1024}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(ops)
	// Warm every decode unit's cache (success and FAIL verdicts alike).
	// Units that decode successfully gain a differential base; FAILed
	// units cache only the verdict.
	decodeOK := make(map[*sketch.Storing]bool)
	for _, st := range collectStorings(s) {
		_, ok := st.Result()
		decodeOK[st] = ok
	}

	// Find a fork op some levels drop: sampling is a deterministic hash
	// of the point, so scan candidates until the touched set is a proper
	// subset of the units.
	fork := s.Fork()
	var forkOps []Op
	units, forkUnits := collectStorings(s), collectStorings(fork)
	touched := 0
	for _, op := range ops {
		probe := s.Fork()
		probe.Apply([]Op{{P: op.P}})
		n := 0
		for _, fu := range collectStorings(probe) {
			if fu.Epoch() > 0 {
				n++
			}
		}
		if n > 0 && n < len(forkUnits) {
			forkOps = []Op{{P: op.P}}
			fork, forkUnits, touched = probe, collectStorings(probe), n
			break
		}
	}
	if forkOps == nil {
		t.Fatalf("no candidate op touched a proper subset of the %d units", len(forkUnits))
	}

	s.Merge(fork)
	splicable := 0
	for i, fu := range forkUnits {
		st := units[i]
		stats := st.CacheStats()
		if fu.Epoch() == 0 {
			// Untouched level: the merge is skipped outright and the live
			// cache entry (success or FAIL verdict) stays fresh.
			if !st.CacheFresh() {
				t.Fatalf("unit %d: pristine fork level lost its live cache entry", i)
			}
			if stats.MergeSkips == 0 {
				t.Fatalf("unit %d: pristine fork merge not counted as a skip", i)
			}
			if stats.MergeDrops != 0 {
				t.Fatalf("unit %d: pristine fork merge dropped a cache entry", i)
			}
			continue
		}
		if st.CacheFresh() {
			t.Fatalf("unit %d: dirtied level still reports a fresh cache", i)
		}
		if decodeOK[st] {
			// A successful decode has a base: the merge keeps it for the
			// next splice instead of dropping.
			splicable++
			if stats.MergeKeeps == 0 || stats.MergeDrops != 0 {
				t.Fatalf("unit %d: dirtied level with a base: stats %+v, want a keep and no drop", i, stats)
			}
		} else if stats.MergeDrops != 1 {
			// A cached FAIL has no base to splice from; the merge discards
			// the verdict as before.
			t.Fatalf("unit %d: dirtied FAILed level: MergeDrops=%d, want 1", i, stats.MergeDrops)
		}
	}
	if splicable == 0 {
		t.Fatal("no dirtied unit had a live base; the keep path went unexercised")
	}

	// Re-warm: clean units hit, dirtied units with a base splice.
	before := s.CacheStats()
	for _, st := range units {
		st.Result()
	}
	after := s.CacheStats()
	if hits := after.Hits - before.Hits; hits != int64(len(units)-touched) {
		t.Fatalf("clean units: %d cache hits, want %d", hits, len(units)-touched)
	}
	if splices := after.Splices - before.Splices; splices != int64(splicable) {
		t.Fatalf("dirtied units: %d splices, want %d", after.Splices-before.Splices, splicable)
	}

	// The spliced state must match a serial stream bit-for-bit.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Apply(ops)
	ref.Apply(forkOps)
	if s.StateDigest() != ref.StateDigest() {
		t.Fatal("merged state diverged from serial replay")
	}
	ca, errA := s.Result()
	ref.DropDecodeCache()
	cb, errB := ref.ResultSerial()
	sameCoreset(t, ca, cb, errA, errB)
}

// TestIncrementalExtractMatchesCold: under alternating small-batch
// ingest and extraction, the incremental (spliced) results of a serial
// ensemble and of a sharded front-end must stay bit-identical — digest,
// Bytes and coreset (or matching failure) — to a sibling ensemble that
// decodes every query cold. Run under -race by check-incr.
func TestIncrementalExtractMatchesCold(t *testing.T) {
	ops := shuffledChurnOps(707, 900)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 77},
		CellSparsity: 512, PointSparsity: 2048}
	inc, err := NewAuto(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewAuto(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	shCfg := cfg
	shCfg.Shards = 4
	sh, err := NewSharded(shCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	const chunk = 128
	for i := 0; i < len(ops); i += chunk {
		end := i + chunk
		if end > len(ops) {
			end = len(ops)
		}
		inc.Apply(ops[i:end])
		cold.Apply(ops[i:end])
		sh.Apply(ops[i:end])

		ci, errI := inc.Result() // incremental: splices dirty levels
		cs, errS := sh.Result()  // sharded: drain + merge, then incremental
		cold.DropDecodeCache()   // force full peels on every unit
		cc, errC := cold.ResultSerial()
		sameCoreset(t, ci, cc, errI, errC)
		sameCoreset(t, cs, cc, errS, errC)
		if inc.StateDigest() != cold.StateDigest() || sh.StateDigest() != cold.StateDigest() {
			t.Fatalf("state digests diverged after %d ops", end)
		}
		if inc.Bytes() != cold.Bytes() {
			t.Fatalf("Bytes diverged after %d ops", end)
		}
	}
	if s := inc.CacheStats(); s.Splices == 0 {
		t.Fatal("incremental ensemble never spliced: the differential path did not run")
	}
	dirty, total := inc.DirtyLevels()
	if total == 0 || dirty > total {
		t.Fatalf("DirtyLevels = %d/%d: malformed", dirty, total)
	}
}
