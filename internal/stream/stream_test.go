package stream

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

const testDelta = 1 << 10

func testMixture(seed int64, n int) (geo.PointSet, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	m := workload.Mixture{N: n, D: 2, Delta: testDelta, K: 3, Spread: 8, Skew: 2, NoiseFrac: 0.05}
	return m.Generate(rng)
}

// goodGuess computes a legitimate o ≤ OPT from the survivor set, standing
// in for the paper's parallel streaming 2-approximation.
func goodGuess(ps geo.PointSet, k int) float64 {
	rng := rand.New(rand.NewSource(1234))
	est := solve.EstimateOPT(rng, geo.UnitWeights(ps), k, 2, testDelta, 2)
	o := est / 4
	if o < 1 {
		o = 1
	}
	return math.Exp2(math.Floor(math.Log2(o)))
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, Delta: 16, O: 1, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("Dim=0 must error")
	}
	if _, err := New(Config{Dim: 2, Delta: 0, O: 1, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("Delta=0 must error")
	}
	if _, err := New(Config{Dim: 2, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("O=0 must error on New")
	}
	if _, err := New(Config{Dim: 2, Delta: 16, O: 1, Params: coreset.Params{K: 0}}); err == nil {
		t.Fatal("bad Params must error")
	}
	// Non-power-of-two Delta is rounded up, not rejected.
	s, err := New(Config{Dim: 2, Delta: 100, O: 1, Params: coreset.Params{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.g.Delta != 128 {
		t.Fatalf("Delta rounded to %d, want 128", s.g.Delta)
	}
}

func TestInsertOnlyStreamQuality(t *testing.T) {
	ps, truec := testMixture(1, 4000)
	o := goodGuess(ps, 3)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	if s.N() != int64(len(ps)) {
		t.Fatalf("N = %d", s.N())
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() == 0 || cs.Size() >= len(ps) {
		t.Fatalf("coreset size %d of n=%d", cs.Size(), len(ps))
	}
	if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 0.15*float64(len(ps)) {
		t.Fatalf("total weight %v vs n=%d", w, len(ps))
	}
	// Unconstrained cost preserved at true and random centers.
	ws := geo.UnitWeights(ps)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		Z := truec
		if trial > 0 {
			Z = solve.SeedKMeansPP(rng, ws, 3, 2)
		}
		full := assign.UnconstrainedCost(ws, Z, 2)
		core := assign.UnconstrainedCost(cs.Points, Z, 2)
		if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("trial %d: cost ratio %v (full %v, core %v)", trial, ratio, full, core)
		}
	}
}

func TestDeletionsCancelExactly(t *testing.T) {
	// Insert mixture A and junk B, delete all of B: the result must look
	// like a coreset of A alone.
	psA, truec := testMixture(2, 3000)
	rng := rand.New(rand.NewSource(3))
	psB := workload.UniformBox(rng, 3000, 2, testDelta)

	o := goodGuess(psA, 3)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: A inserts, B inserts, B deletes (shuffled).
	for i := range psA {
		s.Insert(psA[i])
		if i < len(psB) {
			s.Insert(psB[i])
		}
	}
	perm := rng.Perm(len(psB))
	for _, i := range perm {
		s.Delete(psB[i])
	}
	if s.N() != int64(len(psA)) {
		t.Fatalf("N = %d, want %d", s.N(), len(psA))
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(psA)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("after deletions: cost ratio %v", ratio)
	}
	// Every coreset point must be a survivor (from A, or a B point that
	// shares coordinates with an A point).
	inA := map[string]bool{}
	for _, p := range psA {
		inA[p.String()] = true
	}
	for _, wp := range cs.Points {
		if !inA[wp.P.String()] {
			t.Fatalf("coreset contains deleted point %v", wp.P)
		}
	}
}

func TestStreamOrderInvariance(t *testing.T) {
	// Linear sketches: any permutation of the same multiset of updates
	// must give the identical result.
	ps, _ := testMixture(4, 1200)
	o := goodGuess(ps, 3)
	cfg := Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 7}}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s1.Insert(p)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(8)).Perm(len(ps))
	for _, i := range perm {
		s2.Insert(ps[i])
	}
	c1, err1 := s1.Result()
	c2, err2 := s2.Result()
	if err1 != nil || err2 != nil {
		t.Fatalf("results: %v %v", err1, err2)
	}
	m1 := map[string]float64{}
	for _, wp := range c1.Points {
		m1[wp.P.String()] += wp.W
	}
	m2 := map[string]float64{}
	for _, wp := range c2.Points {
		m2[wp.P.String()] += wp.W
	}
	if len(m1) != len(m2) {
		t.Fatalf("different coreset supports: %d vs %d", len(m1), len(m2))
	}
	for k, v := range m1 {
		if math.Abs(m2[k]-v) > 1e-9 {
			t.Fatalf("weight mismatch at %s: %v vs %v", k, v, m2[k])
		}
	}
}

func TestRepeatedResultIsIdempotent(t *testing.T) {
	ps, _ := testMixture(5, 800)
	o := goodGuess(ps, 3)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	a, errA := s.Result()
	b, errB := s.Result()
	if errA != nil || errB != nil {
		t.Fatalf("%v %v", errA, errB)
	}
	if a.Size() != b.Size() {
		t.Fatalf("Result mutated state: %d vs %d", a.Size(), b.Size())
	}
}

func TestBytesIndependentOfStreamLength(t *testing.T) {
	ps, _ := testMixture(6, 3000)
	o := goodGuess(ps, 3)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Bytes()
	for _, p := range ps {
		s.Insert(p)
	}
	if s.Bytes() != before {
		t.Fatalf("space grew with stream: %d → %d", before, s.Bytes())
	}
	if before <= 0 {
		t.Fatal("Bytes must be positive")
	}
}

func TestTinySketchFailsCleanly(t *testing.T) {
	ps, _ := testMixture(7, 3000)
	o := goodGuess(ps, 3)
	s, err := New(Config{
		Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 11},
		CellSparsity: 4, PointSparsity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("starved sketches must FAIL, not fabricate a coreset")
	} else if !errors.Is(err, ErrSketchFail) && !errors.Is(err, ErrPlanFail) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestFullCancellationEmptyCoreset(t *testing.T) {
	ps, _ := testMixture(8, 500)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: 1024, Params: coreset.Params{K: 3, Seed: 12}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	for _, p := range ps {
		s.Delete(p)
	}
	if s.N() != 0 {
		t.Fatalf("N = %d", s.N())
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 0 {
		t.Fatalf("empty set must give empty coreset, got %d points", cs.Size())
	}
}

func TestOverDeletionDetected(t *testing.T) {
	s, err := New(Config{Dim: 2, Delta: 16, O: 4, Params: coreset.Params{K: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s.Delete(geo.Point{3, 3})
	if _, err := s.Result(); err == nil {
		t.Fatal("negative net count must error")
	}
}

func TestApplyOps(t *testing.T) {
	s, err := New(Config{Dim: 2, Delta: 64, O: 16, Params: coreset.Params{K: 2, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{P: geo.Point{1, 1}}, {P: geo.Point{2, 2}},
		{P: geo.Point{1, 1}, Delete: true},
	}
	s.Apply(ops)
	if s.N() != 1 {
		t.Fatalf("N = %d, want 1", s.N())
	}
}

func TestDimMismatchPanics(t *testing.T) {
	s, err := New(Config{Dim: 2, Delta: 16, O: 4, Params: coreset.Params{K: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Insert(geo.Point{1, 2, 3})
}

func TestAutoSelectsWorkingGuess(t *testing.T) {
	ps, truec := testMixture(9, 2000)
	a, err := NewAuto(Config{
		Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 13},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Guesses()) < 5 {
		t.Fatalf("suspiciously few guesses: %d", len(a.Guesses()))
	}
	for _, p := range ps {
		a.Insert(p)
	}
	cs, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if ratio := core / full; ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("auto-selected guess gives cost ratio %v", ratio)
	}
	if a.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}

func TestAutoWithDeletions(t *testing.T) {
	psA, truec := testMixture(10, 1500)
	rng := rand.New(rand.NewSource(11))
	psB := workload.UniformBox(rng, 1500, 2, testDelta)
	a, err := NewAuto(Config{
		Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 14},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range psA {
		a.Insert(psA[i])
		a.Insert(psB[i])
	}
	for _, p := range psB {
		a.Delete(p)
	}
	cs, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(psA)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if ratio := core / full; ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("auto after deletions: cost ratio %v", ratio)
	}
}

func TestForkMergeEquivalentToSinglePass(t *testing.T) {
	ps, _ := testMixture(20, 2000)
	o := goodGuess(ps, 3)
	cfg := Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 21}}

	// Single pass over everything.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		ref.Insert(p)
	}

	// Two forks, each taking half (one of them also sees churn), merged.
	main, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fork := main.Fork()
	for i, p := range ps {
		if i%2 == 0 {
			main.Insert(p)
		} else {
			fork.Insert(p)
		}
	}
	fork.Insert(geo.Point{7, 7})
	fork.Delete(geo.Point{7, 7})
	main.Merge(fork)

	if main.N() != ref.N() {
		t.Fatalf("N: %d vs %d", main.N(), ref.N())
	}
	a, errA := ref.Result()
	b, errB := main.Result()
	if errA != nil || errB != nil {
		t.Fatalf("results: %v %v", errA, errB)
	}
	ma := map[string]float64{}
	for _, wp := range a.Points {
		ma[wp.P.String()] += wp.W
	}
	mb := map[string]float64{}
	for _, wp := range b.Points {
		mb[wp.P.String()] += wp.W
	}
	if len(ma) != len(mb) {
		t.Fatalf("coresets differ: %d vs %d points", len(ma), len(mb))
	}
	for k, v := range ma {
		if math.Abs(mb[k]-v) > 1e-9 {
			t.Fatalf("weight mismatch at %s", k)
		}
	}
}

func TestParallelShardedIngestion(t *testing.T) {
	// The intended Fork use: shard a huge stream across goroutines.
	ps, truec := testMixture(22, 3000)
	o := goodGuess(ps, 3)
	main, err := New(Config{Dim: 2, Delta: testDelta, O: o, Params: coreset.Params{K: 3, Seed: 23}})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	forks := make([]*Stream, shards)
	for i := range forks {
		forks[i] = main.Fork()
	}
	var wg sync.WaitGroup
	for si := 0; si < shards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for i := si; i < len(ps); i += shards {
				forks[si].Insert(ps[i])
			}
		}(si)
	}
	wg.Wait()
	for _, f := range forks {
		main.Merge(f)
	}
	cs, err := main.Result()
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if r := core / full; r < 0.7 || r > 1.3 {
		t.Fatalf("sharded ingestion cost ratio %v", r)
	}
}

func TestReservoirBasics(t *testing.T) {
	rv := NewReservoir(100, 1)
	for i := 0; i < 1000; i++ {
		rv.Insert(geo.Point{int64(i%32 + 1), 1})
	}
	if !rv.Clean() || rv.Seen() != 1000 || len(rv.Sample()) != 100 {
		t.Fatalf("clean=%v seen=%d sample=%d", rv.Clean(), rv.Seen(), len(rv.Sample()))
	}
	rv.Delete(geo.Point{1, 1})
	if rv.Clean() {
		t.Fatal("deletion must dirty the reservoir")
	}
}

func TestReservoirUniformish(t *testing.T) {
	// Insert 0..999; the sample mean index should be near 500.
	rv := NewReservoir(200, 2)
	for i := 0; i < 1000; i++ {
		rv.Insert(geo.Point{int64(i + 1), 1})
	}
	var sum float64
	for _, p := range rv.Sample() {
		sum += float64(p[0])
	}
	mean := sum / float64(len(rv.Sample()))
	if mean < 400 || mean > 600 {
		t.Fatalf("sample mean %v suggests bias", mean)
	}
}

func TestAutoEstimateGuessSelection(t *testing.T) {
	// Insert-only stream: the reservoir estimate should drive Auto to a
	// near-ideal guess (within the grid factor of the offline choice).
	ps, truec := testMixture(30, 2500)
	a, err := NewAuto(Config{
		Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 31},
		CellSparsity: 512, PointSparsity: 2048,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		a.Insert(p)
	}
	cs, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	ideal := goodGuess(ps, 3)
	if cs.O > ideal*16 || cs.O < ideal/64 {
		t.Fatalf("auto-selected o=%v far from the estimate-driven ideal %v", cs.O, ideal)
	}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if r := core / full; r < 0.7 || r > 1.3 {
		t.Fatalf("cost ratio %v", r)
	}
}

func TestStreamHigherDimension(t *testing.T) {
	// d = 4 smoke: the machinery is dimension-generic.
	rng := rand.New(rand.NewSource(40))
	ps, truec := workload.Mixture{N: 1500, D: 4, Delta: 256, K: 3, Spread: 5}.Generate(rng)
	est := solve.EstimateOPT(rng, geo.UnitWeights(ps), 3, 2, 256, 2)
	s, err := New(Config{
		Dim: 4, Delta: 256, O: math.Max(1, est/4),
		Params: coreset.Params{K: 3, Seed: 41},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	full := assign.UnconstrainedCost(geo.UnitWeights(ps), truec, 2)
	core := assign.UnconstrainedCost(cs.Points, truec, 2)
	if r := core / full; r < 0.7 || r > 1.3 {
		t.Fatalf("d=4 cost ratio %v", r)
	}
}

func TestStreamConservativeParams(t *testing.T) {
	// Conservative constants (λ = 4096-degree hashes, φ = 1 everywhere)
	// must work end to end on a small stream: the coreset is the entire
	// surviving multiset.
	ps, _ := testMixture(42, 300)
	o := goodGuess(ps, 3)
	s, err := New(Config{
		Dim: 2, Delta: testDelta, O: o,
		Params:        coreset.Params{K: 3, Seed: 43, Conservative: true},
		PointSparsity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		s.Insert(p)
	}
	cs, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cs.TotalWeight()-300) > 1e-9 {
		t.Fatalf("conservative stream must keep everything: weight %v", cs.TotalWeight())
	}
}
