package stream

import (
	"math/rand"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/workload"
)

// Ingest benchmarks: the per-op serial path vs the batched shared-key
// pipeline, for one guess instance and for the full guess enumeration.
// EXPERIMENTS.md records the reference numbers.

func benchIngestOps(n int) []Op {
	rng := rand.New(rand.NewSource(42))
	m := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: 4, Spread: 20, Skew: 2, NoiseFrac: 0.05}
	ps, _ := m.Generate(rng)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{P: ps[i]}
	}
	return ops
}

func benchAuto(b *testing.B) *Auto {
	b.Helper()
	a, err := NewAuto(Config{Dim: 2, Delta: 1 << 12, Params: coreset.Params{K: 4, Seed: 1},
		CellSparsity: 512, PointSparsity: 2048}, 4)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func reportOpsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkIngestAutoPerOp is the pre-batching reference: one op at a
// time, every guess instance fed serially.
func BenchmarkIngestAutoPerOp(b *testing.B) {
	ops := benchIngestOps(4096)
	a := benchAuto(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(ops[i%len(ops)].P)
	}
	reportOpsPerSec(b)
}

// BenchmarkIngestAutoApply is the batched shared-key pipeline over the
// same guess ensemble: key columns computed once per batch, sketch work
// sharded over (guess × level-range) units across the worker pool.
func BenchmarkIngestAutoApply(b *testing.B) {
	ops := benchIngestOps(4096)
	a := benchAuto(b)
	b.ResetTimer()
	for done := 0; done < b.N; done += len(ops) {
		n := b.N - done
		if n > len(ops) {
			n = len(ops)
		}
		a.Apply(ops[:n])
	}
	reportOpsPerSec(b)
}

// BenchmarkIngestAutoApplyUncoalesced is the same batched pipeline with
// the key-coalescing stage disabled — the A/B partner quantifying what
// coalescing buys on the Auto ensemble (bcbench records the same pair
// in BENCH_ingest.json).
func BenchmarkIngestAutoApplyUncoalesced(b *testing.B) {
	ops := benchIngestOps(4096)
	a := benchAuto(b)
	prev := SetCoalesce(false)
	defer SetCoalesce(prev)
	b.ResetTimer()
	for done := 0; done < b.N; done += len(ops) {
		n := b.N - done
		if n > len(ops) {
			n = len(ops)
		}
		a.Apply(ops[:n])
	}
	reportOpsPerSec(b)
}

func benchStream(b *testing.B) *Stream {
	b.Helper()
	s, err := New(Config{Dim: 2, Delta: 1 << 12, O: 1 << 16, Params: coreset.Params{K: 4, Seed: 1},
		CellSparsity: 512, PointSparsity: 2048})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkIngestStreamPerOp: single guess instance, per-op path.
func BenchmarkIngestStreamPerOp(b *testing.B) {
	ops := benchIngestOps(4096)
	s := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(ops[i%len(ops)].P)
	}
	reportOpsPerSec(b)
}

// BenchmarkIngestStreamApply: single guess instance, batched pipeline.
func BenchmarkIngestStreamApply(b *testing.B) {
	ops := benchIngestOps(4096)
	s := benchStream(b)
	b.ResetTimer()
	for done := 0; done < b.N; done += len(ops) {
		n := b.N - done
		if n > len(ops) {
			n = len(ops)
		}
		s.Apply(ops[:n])
	}
	reportOpsPerSec(b)
}
