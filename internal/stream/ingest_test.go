package stream

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

// shuffledChurnOps builds an insert+delete workload: every mixture point
// inserted, a junk set inserted and fully deleted, all in a fixed shuffled
// order.
func shuffledChurnOps(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: testDelta, K: 3, Spread: 8, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	junk := workload.UniformBox(rng, n/2, 2, testDelta)
	ops := make([]Op, 0, n+2*len(junk))
	for _, p := range ps {
		ops = append(ops, Op{P: p})
	}
	for _, p := range junk {
		ops = append(ops, Op{P: p})
	}
	// Deletions must trail the matching insertions to keep every prefix
	// valid; shuffle inserts and deletes separately.
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	dels := make([]Op, len(junk))
	for i, p := range junk {
		dels[i] = Op{P: p, Delete: true}
	}
	rng.Shuffle(len(dels), func(i, j int) { dels[i], dels[j] = dels[j], dels[i] })
	return append(ops, dels...)
}

func replayPerOp(t *testing.T, s *Stream, ops []Op) {
	t.Helper()
	for _, op := range ops {
		if op.Delete {
			s.Delete(op.P)
		} else {
			s.Insert(op.P)
		}
	}
}

func sameCoreset(t *testing.T, a, b *coreset.Coreset, errA, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("result errors differ: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	if a.Size() != b.Size() {
		t.Fatalf("coreset sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Points {
		if !a.Points[i].P.Equal(b.Points[i].P) || a.Points[i].W != b.Points[i].W {
			t.Fatalf("coreset point %d differs: %v/%v vs %v/%v",
				i, a.Points[i].P, a.Points[i].W, b.Points[i].P, b.Points[i].W)
		}
	}
}

// TestApplyMatchesPerOp: the batched pipeline must produce bit-identical
// sketch state — hence identical Bytes() and Result() — to per-op replay,
// for every batch size.
func TestApplyMatchesPerOp(t *testing.T) {
	ops := shuffledChurnOps(101, 1200)
	o := 1 << 12
	cfg := Config{Dim: 2, Delta: testDelta, O: float64(o), Params: coreset.Params{K: 3, Seed: 51}}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayPerOp(t, ref, ops)

	for _, chunk := range []int{1, 7, 64, len(ops)} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(ops); i += chunk {
			end := i + chunk
			if end > len(ops) {
				end = len(ops)
			}
			s.Apply(ops[i:end])
		}
		if s.N() != ref.N() {
			t.Fatalf("chunk %d: N %d vs %d", chunk, s.N(), ref.N())
		}
		if s.Bytes() != ref.Bytes() {
			t.Fatalf("chunk %d: Bytes %d vs %d", chunk, s.Bytes(), ref.Bytes())
		}
		if s.StateDigest() != ref.StateDigest() {
			t.Fatalf("chunk %d: sketch state diverged from per-op replay", chunk)
		}
		ca, errA := ref.Result()
		cb, errB := s.Result()
		sameCoreset(t, ca, cb, errA, errB)
	}
}

// TestAutoApplyMatchesPerOp: same bit-identical contract for the guess
// enumeration, whose Apply shards (guess × level-range) units across a
// worker pool. GOMAXPROCS is raised so the pool genuinely runs concurrent
// workers even on a single-core machine — under -race this validates that
// shards never touch overlapping sketch state.
func TestAutoApplyMatchesPerOp(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ops := shuffledChurnOps(202, 900)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 52},
		CellSparsity: 512, PointSparsity: 2048}

	ref, err := NewAuto(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Delete {
			ref.Delete(op.P)
		} else {
			ref.Insert(op.P)
		}
	}

	a, err := NewAuto(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 256
	for i := 0; i < len(ops); i += chunk {
		end := i + chunk
		if end > len(ops) {
			end = len(ops)
		}
		a.Apply(ops[i:end])
	}
	if a.StateDigest() != ref.StateDigest() {
		t.Fatal("batched Auto.Apply state diverged from per-op replay")
	}
	if a.Bytes() != ref.Bytes() {
		t.Fatalf("Bytes %d vs %d", a.Bytes(), ref.Bytes())
	}
	ca, errA := ref.Result()
	cb, errB := a.Result()
	sameCoreset(t, ca, cb, errA, errB)
}

// TestSharedGridAcrossGuesses: the guess instances of one Auto share one
// grid shift and one fingerprint — the invariant that makes one key column
// valid for the whole ensemble.
func TestSharedGridAcrossGuesses(t *testing.T) {
	a, err := NewAuto(Config{Dim: 2, Delta: 256, Params: coreset.Params{K: 2, Seed: 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{17, 200}
	for _, s := range a.streams {
		if s.g != a.g || s.fp != a.fp {
			t.Fatal("guess instance does not share the ensemble grid/fingerprint")
		}
		if s.fp.Key(p) != a.fp.Key(p) {
			t.Fatal("fingerprint keys differ across guesses")
		}
	}
}

// TestApplyEquivalenceWithDeleteOnlyBatch: a batch of pure deletions must
// cancel a batch of pure insertions exactly, leaving the digest of the
// empty stream.
func TestApplyEquivalenceWithDeleteOnlyBatch(t *testing.T) {
	ps, _ := testMixture(77, 400)
	cfg := Config{Dim: 2, Delta: testDelta, O: 1024, Params: coreset.Params{K: 3, Seed: 78}}
	empty, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]Op, len(ps))
	del := make([]Op, len(ps))
	for i, p := range ps {
		ins[i] = Op{P: p}
		del[i] = Op{P: p, Delete: true}
	}
	s.Apply(ins)
	if s.StateDigest() == empty.StateDigest() {
		t.Fatal("insertions left no trace in the sketches")
	}
	s.Apply(del)
	if s.StateDigest() != empty.StateDigest() {
		t.Fatal("deletions did not cancel insertions exactly")
	}
}

// TestAutoApplyWeightSanity: end-to-end quality through the batched path —
// the selected coreset still carries the right total weight.
func TestAutoApplyWeightSanity(t *testing.T) {
	ps, _ := testMixture(33, 2000)
	a, err := NewAuto(Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 34},
		CellSparsity: 512, PointSparsity: 2048}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, len(ps))
	for i, p := range ps {
		ops[i] = Op{P: p}
	}
	a.Apply(ops)
	cs, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 0.3*float64(len(ps)) {
		t.Fatalf("total weight %v vs n=%d", w, len(ps))
	}
}
