package stream

import (
	"runtime"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/sketch"
)

// TestShardedStreamMatchesSerial: sharded ingest + merge must be
// bit-identical (digest, Bytes, extraction Result incl. FAILs) to serial
// Apply of the same ops on a single-guess Stream, at every shard count.
// GOMAXPROCS is raised so the workers genuinely run concurrently even on
// a single-core machine; under -race this validates that shards share no
// sketch state.
func TestShardedStreamMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ops := shuffledChurnOps(303, 1200)
	cfg := Config{Dim: 2, Delta: testDelta, O: 1 << 12, Params: coreset.Params{K: 3, Seed: 61}}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Apply(ops)
	refDigest := ref.StateDigest()

	for _, shards := range []int{1, 2, 3, 4, 8} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := ShardStream(s, shards)
		const chunk = 97 // deliberately unaligned with the op count
		for i := 0; i < len(ops); i += chunk {
			end := i + chunk
			if end > len(ops) {
				end = len(ops)
			}
			sh.Apply(ops[i:end])
		}
		if sh.N() != ref.N() {
			t.Fatalf("shards=%d: N %d vs %d", shards, sh.N(), ref.N())
		}
		if got := sh.StateDigest(); got != refDigest {
			t.Fatalf("shards=%d: sharded state diverged from serial Apply", shards)
		}
		if s.Bytes() != ref.Bytes() {
			t.Fatalf("shards=%d: Bytes %d vs %d", shards, s.Bytes(), ref.Bytes())
		}
		ca, errA := ref.Result()
		cb, errB := sh.Result()
		sameCoreset(t, ca, cb, errA, errB)
		sh.Close()
		// The wrapped Stream holds everything after Close.
		if s.StateDigest() != refDigest {
			t.Fatalf("shards=%d: state lost across Close", shards)
		}
	}
}

// TestShardedAutoMatchesSerial: the same contract for the full guess
// enumeration, including guess selection — the dispatcher keeps the
// reservoir and cost bound in arrival order, so the selected guess and
// its coreset match the unsharded ensemble exactly. Queries are
// interleaved with ingest to exercise merge-accumulate across extraction
// cycles.
func TestShardedAutoMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ops := shuffledChurnOps(404, 900)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 62},
		CellSparsity: 512, PointSparsity: 2048, Shards: 4}

	ref, err := NewAuto(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Shards() != 4 {
		t.Fatalf("Shards() = %d, want the cfg.Shards knob (4)", sh.Shards())
	}

	const chunk = 128
	for i := 0; i < len(ops); i += chunk {
		end := i + chunk
		if end > len(ops) {
			end = len(ops)
		}
		ref.Apply(ops[i:end])
		sh.Apply(ops[i:end])
		if end == 512 { // mid-stream query: drain, extract, keep ingesting
			ca, errA := ref.Result()
			cb, errB := sh.Result()
			sameCoreset(t, ca, cb, errA, errB)
		}
	}
	if sh.N() != ref.n {
		t.Fatalf("N %d vs %d", sh.N(), ref.n)
	}
	if sh.StateDigest() != ref.StateDigest() {
		t.Fatal("sharded ensemble state diverged from serial Apply")
	}
	ca, errA := ref.Result()
	cb, errB := sh.Result()
	sameCoreset(t, ca, cb, errA, errB)
}

// TestShardedQuietDrainRidesCache: a drain with no new ops must merge
// nothing — target sketch epochs stay put, so a repeated extraction is
// answered entirely from the epoch-tagged decode caches.
func TestShardedQuietDrainRidesCache(t *testing.T) {
	ops := shuffledChurnOps(505, 800)
	s, err := New(Config{Dim: 2, Delta: testDelta, O: 1 << 12, Params: coreset.Params{K: 3, Seed: 63}})
	if err != nil {
		t.Fatal(err)
	}
	sh := ShardStream(s, 3)
	defer sh.Close()
	sh.Apply(ops)
	if _, err := sh.Result(); err != nil {
		t.Fatal(err)
	}

	epochs := make([]uint64, 0, 3*(s.g.L+1))
	stats := make([]sketch.CacheStats, 0, 3*(s.g.L+1))
	each := func(f func(st *sketch.Storing)) {
		for i := range s.hpStore {
			if s.hStore[i] != nil {
				f(s.hStore[i])
			}
			f(s.hpStore[i])
			f(s.hatStore[i])
		}
	}
	each(func(st *sketch.Storing) { epochs = append(epochs, st.Epoch()); stats = append(stats, st.CacheStats()) })

	if _, err := sh.Result(); err != nil {
		t.Fatal(err)
	}
	i := 0
	each(func(st *sketch.Storing) {
		if st.Epoch() != epochs[i] {
			t.Fatalf("quiet drain moved a sketch epoch (%d -> %d): merge was not skipped", epochs[i], st.Epoch())
		}
		after := st.CacheStats()
		if after.Misses != stats[i].Misses || after.Stale != stats[i].Stale || after.MergeDrops != stats[i].MergeDrops {
			t.Fatalf("quiet re-extraction re-decoded: %+v -> %+v", stats[i], after)
		}
		i++
	})

	// New ops re-dirty exactly the shards that received them; the next
	// drain merges again and the digest still matches a serial replay.
	sh.Apply(ops[:100])
	ref, err := New(Config{Dim: 2, Delta: testDelta, O: 1 << 12, Params: coreset.Params{K: 3, Seed: 63}})
	if err != nil {
		t.Fatal(err)
	}
	ref.Apply(ops)
	ref.Apply(ops[:100])
	if sh.StateDigest() != ref.StateDigest() {
		t.Fatal("post-quiet-period ingest diverged from serial replay")
	}
}

// TestShardedImbalance: the lifetime skew statistic is 1.0-ish for a
// hash-routed mixture and exactly 1 with a single shard.
func TestShardedImbalance(t *testing.T) {
	ops := shuffledChurnOps(606, 1000)
	for _, shards := range []int{1, 4} {
		s, err := New(Config{Dim: 2, Delta: testDelta, O: 1 << 12, Params: coreset.Params{K: 3, Seed: 64}})
		if err != nil {
			t.Fatal(err)
		}
		sh := ShardStream(s, shards)
		sh.Apply(ops)
		sh.Flush()
		if im := sh.Imbalance(); im < 1 || im > 2 {
			t.Fatalf("shards=%d: imbalance %v outside [1, 2]", shards, im)
		}
		sh.Close()
	}
}
