package stream

import (
	"math/rand"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
)

// FuzzShardMerge: random op sequences — interleaved insertions and
// deletions of previously-inserted points — split across random shard
// counts through the Sharded front-end must recombine to sketch state
// and extraction results bit-identical to a serial Apply of the same
// ops. The seed corpus doubles as the check-shard regression suite
// (plain `go test -run FuzzShardMerge` replays it).
func FuzzShardMerge(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(3), uint8(30), uint8(64))
	f.Add(int64(2), uint16(700), uint8(1), uint8(0), uint8(255))
	f.Add(int64(3), uint16(400), uint8(8), uint8(80), uint8(16))
	f.Add(int64(4), uint16(64), uint8(5), uint8(50), uint8(1))
	f.Add(int64(5), uint16(1000), uint8(2), uint8(10), uint8(128))

	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, shardsRaw, delPct, chunkRaw uint8) {
		n := int(nRaw)%1024 + 1
		shards := int(shardsRaw)%8 + 1
		chunk := int(chunkRaw) + 1
		rng := rand.New(rand.NewSource(seed))

		// Random dynamic stream: each step deletes a random live point
		// with probability delPct/256, else inserts a fresh uniform one.
		// Every prefix stays a valid stream (deletes only live points).
		const delta = 1 << 8
		var live []geo.Point
		ops := make([]Op, 0, n)
		for len(ops) < n {
			if len(live) > 0 && int(delPct) > rng.Intn(256) {
				j := rng.Intn(len(live))
				ops = append(ops, Op{P: live[j], Delete: true})
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			p := geo.Point{1 + rng.Int63n(delta), 1 + rng.Int63n(delta)}
			ops = append(ops, Op{P: p})
			live = append(live, p)
		}

		cfg := Config{Dim: 2, Delta: delta, O: 1 << 9,
			Params:       coreset.Params{K: 2, Seed: seed ^ 0x5a},
			CellSparsity: 64, PointSparsity: 128}
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref.Apply(ops)

		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := ShardStream(s, shards)
		defer sh.Close()
		for i := 0; i < len(ops); i += chunk {
			end := i + chunk
			if end > len(ops) {
				end = len(ops)
			}
			sh.Apply(ops[i:end])
		}

		if sh.N() != ref.N() {
			t.Fatalf("N %d vs %d (shards=%d chunk=%d)", sh.N(), ref.N(), shards, chunk)
		}
		if sh.StateDigest() != ref.StateDigest() {
			t.Fatalf("sharded state diverged from serial Apply (shards=%d chunk=%d)", shards, chunk)
		}
		// Result equality including the FAIL side: the tiny sketch budgets
		// make over-full decodes common in fuzzed inputs, and the sharded
		// path must FAIL exactly when the serial one does.
		ca, errA := ref.Result()
		cb, errB := sh.Result()
		sameCoreset(t, ca, cb, errA, errB)
	})
}
