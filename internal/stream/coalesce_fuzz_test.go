package stream

import (
	"math/rand"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
)

// FuzzCoalescedIngestMatchesSerial: random dynamic streams — interleaved
// insertions and deletions of live points, with a duplication knob that
// replays each op up to 8× to stress the coalescer — applied through the
// batched pipeline with key-coalescing ON must be bit-identical to both
// the per-op serial replay and the batched pipeline with coalescing OFF:
// same StateDigest, same Bytes, and the same Result including the FAIL
// side (the tiny sketch budgets make over-full decodes common here, and
// coalescing must FAIL exactly when the serial path does). The seed
// corpus doubles as the check-coalesce regression suite (plain
// `go test -race -run FuzzCoalescedIngestMatchesSerial` replays it).
func FuzzCoalescedIngestMatchesSerial(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(30), uint8(64), uint8(0))
	f.Add(int64(2), uint16(700), uint8(0), uint8(255), uint8(7))
	f.Add(int64(3), uint16(400), uint8(80), uint8(16), uint8(3))
	f.Add(int64(4), uint16(64), uint8(50), uint8(1), uint8(1))
	f.Add(int64(5), uint16(900), uint8(10), uint8(128), uint8(5))

	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, delPct, chunkRaw, dupRaw uint8) {
		n := int(nRaw)%1024 + 1
		chunk := int(chunkRaw) + 1
		dup := int(dupRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))

		// Random dynamic stream (every prefix valid: deletes only live
		// points), each op replayed dup times back to back so batches
		// carry heavy key duplication when dup > 1.
		const delta = 1 << 8
		var live []geo.Point
		ops := make([]Op, 0, n*dup)
		for len(ops) < n*dup {
			if len(live) > 0 && int(delPct) > rng.Intn(256) {
				j := rng.Intn(len(live))
				for r := 0; r < dup; r++ {
					ops = append(ops, Op{P: live[j], Delete: true})
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			p := geo.Point{1 + rng.Int63n(delta), 1 + rng.Int63n(delta)}
			for r := 0; r < dup; r++ {
				ops = append(ops, Op{P: p})
			}
			live = append(live, p)
		}
		// dup deletes of a point that was inserted dup times keep every
		// prefix a valid stream: net multiplicity stays in [0, dup].

		cfg := Config{Dim: 2, Delta: delta, O: 1 << 9,
			Params:       coreset.Params{K: 2, Seed: seed ^ 0x3c},
			CellSparsity: 64, PointSparsity: 128}

		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if op.Delete {
				ref.Delete(op.P)
			} else {
				ref.Insert(op.P)
			}
		}

		apply := func(coalesce bool) *Stream {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prev := SetCoalesce(coalesce)
			defer SetCoalesce(prev)
			for i := 0; i < len(ops); i += chunk {
				end := i + chunk
				if end > len(ops) {
					end = len(ops)
				}
				s.Apply(ops[i:end])
			}
			return s
		}
		on := apply(true)
		off := apply(false)

		for _, tc := range []struct {
			name string
			s    *Stream
		}{{"coalesced", on}, {"uncoalesced", off}} {
			if tc.s.N() != ref.N() {
				t.Fatalf("%s: N %d vs %d (chunk=%d dup=%d)", tc.name, tc.s.N(), ref.N(), chunk, dup)
			}
			if tc.s.Bytes() != ref.Bytes() {
				t.Fatalf("%s: Bytes %d vs %d", tc.name, tc.s.Bytes(), ref.Bytes())
			}
			if tc.s.StateDigest() != ref.StateDigest() {
				t.Fatalf("%s: state diverged from per-op replay (chunk=%d dup=%d)", tc.name, chunk, dup)
			}
			ca, errA := ref.Result()
			cb, errB := tc.s.Result()
			sameCoreset(t, ca, cb, errA, errB)
		}
	})
}
