package stream

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/workload"
)

func TestCostBoundUpperBoundsOPT(t *testing.T) {
	// The certified direction: UpperBound must exceed the true optimal
	// cost (estimated from above by the cost at the generative centers —
	// which itself upper-bounds OPT, so require UpperBound ≥ OPT via a
	// k-means++ lower-bound proxy: UpperBound ≥ cost at FITTED centers /
	// small constant would be circular; instead check UpperBound ≥
	// cost(truec)/4, generous but directional, plus the band below).
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps, truec := workload.Mixture{N: 3000, D: 2, Delta: 1 << 10, K: 3, Spread: 8, Skew: 2}.Generate(rng)
		g := grid.New(1<<10, 2, rng)
		cb := NewCostBound(rng, g, 2, 256)
		for _, p := range ps {
			cb.Insert(p)
		}
		var ref float64 // an upper bound on OPT (cost at true centers)
		for _, p := range ps {
			d, _ := geo.DistToSet(p, truec)
			ref += d * d
		}
		u, ok := cb.UpperBound(3, 0)
		if !ok {
			t.Fatalf("seed %d: no bound", seed)
		}
		// The bound is certified from above (OPT ≤ u) but can be loose by
		// (g/σ)^r. Sanity band: not below a quarter of the true-center
		// cost, not uselessly astronomical.
		if u < ref/4 {
			t.Fatalf("seed %d: bound %v below the true-center cost %v/4 — cannot upper-bound OPT", seed, u, ref)
		}
		if u > 1e6*ref {
			t.Fatalf("seed %d: bound %v uselessly loose vs %v", seed, u, ref)
		}
		if o := cb.Guess(3); o > u/4 {
			t.Fatalf("seed %d: guess %v above UpperBound/4 = %v", seed, o, u/4)
		}
	}
}

func TestCostBoundDeletions(t *testing.T) {
	// After deleting a far-away ghost cluster, the bound must contract to
	// the survivors' scale.
	rng := rand.New(rand.NewSource(7))
	g := grid.New(1<<10, 2, rng)
	cb := NewCostBound(rng, g, 2, 256)

	// One tight blob (cheap) + a ghost spread over the whole domain
	// (expensive), then remove the ghost.
	blob, _ := workload.TwoBlobs(rng, 2000, 1<<10, 1.0, 4)
	ghost := workload.UniformBox(rng, 2000, 2, 1<<10)
	for _, p := range blob {
		cb.Insert(p)
	}
	withBlobOnly, _ := NewCostBoundSnapshot(cb)
	for _, p := range ghost {
		cb.Insert(p)
	}
	withGhost, _ := cb.UpperBound(2, 0)
	for _, p := range ghost {
		cb.Delete(p)
	}
	afterDelete, _ := cb.UpperBound(2, 0)

	if withGhost <= withBlobOnly {
		t.Fatalf("ghost must raise the bound: %v vs %v", withGhost, withBlobOnly)
	}
	// Deletions must bring it back to the blob-only value exactly
	// (linear sketches, same state).
	if afterDelete != withBlobOnly {
		t.Fatalf("bound after deletions %v != blob-only %v", afterDelete, withBlobOnly)
	}
}

// NewCostBoundSnapshot evaluates the current bound (helper isolating the
// double evaluation in the deletion test).
func NewCostBoundSnapshot(cb *CostBound) (float64, bool) {
	return cb.UpperBound(2, 0)
}

func TestCostBoundEmptyAndTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := grid.New(1<<8, 2, rng)
	cb := NewCostBound(rng, g, 2, 64)
	if u, ok := cb.UpperBound(2, 0); !ok || u != 0 {
		t.Fatalf("empty: %v %v", u, ok)
	}
	if cb.Guess(2) != 1 {
		t.Fatal("empty guess must be 1")
	}
	// A single point: some level isolates it; the bound must collapse to
	// a fine level (cost ≈ cell diameter^r, tiny).
	cb.Insert(geo.Point{17, 33})
	u, ok := cb.UpperBound(2, 0)
	if !ok {
		t.Fatal("no bound for single point")
	}
	if u > 8 { // n=1 × (√2·1)² = 2 at the unit level
		t.Fatalf("single-point bound %v not at the unit level", u)
	}
}

func TestCostBoundBytesIndependentOfN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := grid.New(1<<10, 2, rng)
	cb := NewCostBound(rng, g, 2, 128)
	before := cb.Bytes()
	for i := 0; i < 20000; i++ {
		cb.Insert(geo.Point{1 + rng.Int63n(1<<10), 1 + rng.Int63n(1<<10)})
	}
	if cb.Bytes() != before {
		t.Fatal("cost bound state grew with the stream")
	}
	if cb.N() != 20000 {
		t.Fatalf("N = %d", cb.N())
	}
}
