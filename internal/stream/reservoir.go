package stream

import (
	"math/rand"

	"streambalance/internal/geo"
)

// Reservoir maintains a uniform sample of the points inserted so far
// (classic reservoir sampling). It is exact for insertion-only streams;
// any deletion marks it dirty, because a uniform sample of the survivors
// cannot be maintained in small space without ℓ₀-sampling machinery (the
// reason Theorem 4.5 invokes [HSYZ18] for the dynamic case). Auto uses a
// clean reservoir to pick the guess o the way the paper does — from a
// constant-factor OPT estimate — and falls back to FAIL/weight-based
// selection when the reservoir is dirty.
type Reservoir struct {
	size  int
	seen  int64
	items geo.PointSet
	rng   *rand.Rand
	dirty bool
}

// NewReservoir creates a reservoir holding up to size points.
func NewReservoir(size int, seed int64) *Reservoir {
	if size < 1 {
		size = 1
	}
	return &Reservoir{size: size, rng: rand.New(rand.NewSource(seed))}
}

// Insert offers a point.
func (rv *Reservoir) Insert(p geo.Point) {
	rv.seen++
	if len(rv.items) < rv.size {
		rv.items = append(rv.items, p.Clone())
		return
	}
	if j := rv.rng.Int63n(rv.seen); j < int64(rv.size) {
		rv.items[j] = p.Clone()
	}
}

// Delete marks the reservoir dirty (and removes the point if it happens
// to be present, limiting the bias for light churn).
func (rv *Reservoir) Delete(p geo.Point) {
	rv.dirty = true
	for i, q := range rv.items {
		if q.Equal(p) {
			rv.items[i] = rv.items[len(rv.items)-1]
			rv.items = rv.items[:len(rv.items)-1]
			return
		}
	}
}

// Clean reports whether the sample is an unbiased uniform sample (no
// deletions seen).
func (rv *Reservoir) Clean() bool { return !rv.dirty }

// Sample returns the current sample (shared backing; callers must not
// mutate).
func (rv *Reservoir) Sample() geo.PointSet { return rv.items }

// Seen returns the number of insertions offered.
func (rv *Reservoir) Seen() int64 { return rv.seen }
