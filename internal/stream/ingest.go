// Batched, shared-key ingestion pipeline (the fast path behind
// Stream.Apply and Auto.Apply).
//
// Every stream update fans out to 3 substreams × (L+1) grid levels — and,
// under guess enumeration, × G guess instances. The per-op inputs those
// fan-out targets need are all derivable from two quantities: the op's
// fingerprint key (sampling decisions and point identity) and its cell
// index per level (cell keys and cell payloads). A batch precomputes both
// as columns, once per op:
//
//   - fkey[t]            — fingerprint key of op t,
//   - baseIdx[t·d : …]   — the level-L cell index (p + shift, exactly),
//   - cellKey[t·(L+1)+i] — the level-i cell key, derived bottom-up: the
//     level-(i−1) index is the level-i index shifted right one bit
//     (grid.ParentIndex), so all L+1 keys take one fingerprint per level
//     instead of one CellIndex + KeyOf pair per level per sketch.
//
// Coarser cell indices are reconstructed from baseIdx by a bit shift at
// application time, only when a sampler actually selects the op, so the
// batch stores one index vector per op rather than L+1.
//
// Because every sketch is linear over GF(p) and int64 counters — both
// exact, commutative, associative — applying a batch level-by-level, or
// sharding levels across goroutines, yields bit-identical sketch state to
// replaying the ops one at a time in stream order. TestApplyMatchesPerOp
// enforces this.
package stream

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

// Coalesce-ratio telemetry (DESIGN.md §9/§12): per substream, how many
// sampled ops went into the key-coalescer and how many distinct-key rows
// came out. The ratio in/out is the slab-write fan-in the coalescer
// eliminated; it is largest at coarse grid levels, where a whole batch
// maps to a handful of cells. Tallies are accumulated locally per
// applyLevels call and added once per substream — nothing per op.
var (
	vCoalesceIn  = obs.CV("stream_coalesce_ops_in_total", "substream")
	vCoalesceOut = obs.CV("stream_coalesce_keys_out_total", "substream")

	mCoalesceIn = [3]*obs.Counter{
		vCoalesceIn.With("h"), vCoalesceIn.With("hp"), vCoalesceIn.With("hat"),
	}
	mCoalesceOut = [3]*obs.Counter{
		vCoalesceOut.With("h"), vCoalesceOut.With("hp"), vCoalesceOut.With("hat"),
	}
)

// coalesceOn gates the key-coalescing stage of applyLevels (on by
// default). Coalesced and un-coalesced application are bit-identical —
// the sketches are exact linear sums — so the knob exists only for perf
// A/B runs and the equivalence/fuzz suites. Do not flip it while a
// Sharded front-end has in-flight batches.
var coalesceOn = func() *atomic.Bool {
	var b atomic.Bool
	b.Store(true)
	return &b
}()

// SetCoalesce enables or disables ingest key-coalescing, returning the
// previous setting.
func SetCoalesce(on bool) bool { return coalesceOn.Swap(on) }

// batch holds the columnar precomputation for a slice of ops against one
// grid + fingerprint pair. Buffers are reused across builds.
type batch struct {
	ops     []Op
	pts     []geo.Point // point column (ops[t].P), input to grid.CellIndexN
	sign    []int64     // +1 insert, −1 delete, per op
	fkey    []uint64    // fingerprint key per op
	baseIdx []int64     // level-L cell index per op, Dim entries each
	cellKey []uint64    // cell key per op per level, L+1 entries each
}

// build fills the batch's columns for ops. The grid and fingerprint must
// be the ones every consuming Stream shares.
//
// The two field-arithmetic columns — fingerprint keys and per-level cell
// keys — run through the 4-lane kernels (hashing.Key4, grid.ParentKeys4):
// four ops' Rabin–Karp chains are interleaved per block, so the column
// build is bounded by multiplier throughput rather than the serial
// multiply latency of one chain. The ragged tail (< 4 ops) takes the
// scalar path; both paths are bit-identical, so batch boundaries cannot
// change any key.
func (b *batch) build(g *grid.Grid, fp *hashing.Fingerprint, ops []Op) {
	n, dim, L := len(ops), g.Dim, g.L
	b.ops = ops
	b.pts = growPts(b.pts, n)
	b.sign = growInt64(b.sign, n)
	b.fkey = growUint64(b.fkey, n)
	b.baseIdx = growInt64(b.baseIdx, n*dim)
	b.cellKey = growUint64(b.cellKey, n*(L+1))
	for t := range ops {
		if ops[t].Delete {
			b.sign[t] = -1
		} else {
			b.sign[t] = +1
		}
		b.pts[t] = ops[t].P
	}
	// Columnar cell indexing: level and destination bounds validated once
	// for the whole batch (grid.CellIndexN), not once per op.
	g.CellIndexN(b.baseIdx, b.pts, L)
	scratch := make([]int64, 4*dim)
	s0, s1, s2, s3 := scratch[0*dim:1*dim], scratch[1*dim:2*dim], scratch[2*dim:3*dim], scratch[3*dim:4*dim]
	ck := func(t int) []uint64 { return b.cellKey[t*(L+1) : (t+1)*(L+1)] }
	t := 0
	for ; t+4 <= n; t += 4 {
		b.fkey[t], b.fkey[t+1], b.fkey[t+2], b.fkey[t+3] =
			fp.Key4(ops[t].P, ops[t+1].P, ops[t+2].P, ops[t+3].P)
		copy(s0, b.baseIdx[(t+0)*dim:])
		copy(s1, b.baseIdx[(t+1)*dim:])
		copy(s2, b.baseIdx[(t+2)*dim:])
		copy(s3, b.baseIdx[(t+3)*dim:])
		g.ParentKeys4(ck(t), ck(t+1), ck(t+2), ck(t+3), s0, s1, s2, s3, L)
	}
	for ; t < n; t++ {
		b.fkey[t] = fp.Key(ops[t].P)
		copy(s0, b.baseIdx[t*dim:(t+1)*dim])
		g.ParentKeys(ck(t), s0, L)
	}
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growPts(s []geo.Point, n int) []geo.Point {
	if cap(s) < n {
		return make([]geo.Point, n)
	}
	return s[:n]
}

// applyScratch is the per-call working set of applyLevels: selection
// masks, gather columns and the key-coalescer. applyLevels runs
// concurrently on disjoint level ranges of the same Stream, so scratch
// cannot live on s; a sync.Pool keeps the allocations off the per-batch
// path instead.
type applyScratch struct {
	sel     []bool
	keys    []uint64
	payload []int64
	deltas  []int64
	co      coalescer
}

var applyScratchPool = sync.Pool{New: func() any { return new(applyScratch) }}

// applyLevels applies the batch to sketch levels lo..hi of s. Distinct
// level ranges of the same Stream touch disjoint sketch state (each level
// owns its sketches), so they may run concurrently; the net counter s.n is
// the caller's responsibility. Level-major order keeps one level's sketch
// slabs hot in cache across the whole batch.
//
// Per level the three samplers run over the whole fingerprint-key column
// through the 4-lane Bernoulli kernel (SampleN); each substream's
// selected ops are then COALESCED by key — deltas summed, payloads
// summed delta-scaled, one output row per distinct key — and fed to
// Storing.UpdateKeyedScaledN. At coarse levels a whole batch collapses
// to a handful of cell rows, so the sketch pays one slab visit and one
// row-hash evaluation per distinct cell instead of per op. Sketch state
// is an exact linear sum, so both the coalescing and the bucket-ordered
// write schedule behind UpdateScaledN are bit-identical to the per-op
// path (TestApplyMatchesPerOp, FuzzCoalescedIngestMatchesSerial,
// FuzzShardMerge).
func (s *Stream) applyLevels(b *batch, lo, hi int) {
	g := s.g
	L, dim := g.L, g.Dim
	n := len(b.ops)
	sc := applyScratchPool.Get().(*applyScratch)
	defer applyScratchPool.Put(sc)
	sel := growBool(sc.sel, 3*n)
	sc.sel = sel
	selH, selHp, selHat := sel[0:n], sel[n:2*n], sel[2*n:3*n]
	coalesce := coalesceOn.Load()
	var nSel int64           // sampled sketch updates; one atomic add per shard
	var coIn, coOut [3]int64 // coalesce tallies per substream (h, hp, hat)
	for i := lo; i <= hi; i++ {
		sh := uint(L - i)
		if i <= L-1 {
			s.hSamp[i].SampleN(selH, b.fkey)
			if coalesce {
				in := sc.co.coalesceCells(b, selH, i, L, dim, sh)
				s.hStore[i].UpdateKeyedScaledN(sc.co.keys, sc.co.scaled, nil, nil, sc.co.deltas)
				nSel += in
				coIn[0] += in
				coOut[0] += int64(len(sc.co.deltas))
			} else {
				sc.keys, sc.payload, sc.deltas = gatherCells(b, selH, i, L, dim, sh, sc.keys[:0], sc.payload[:0], sc.deltas[:0])
				s.hStore[i].UpdateKeyedN(sc.keys, sc.payload, nil, nil, sc.deltas)
				nSel += int64(len(sc.deltas))
			}
		}
		s.hpSamp[i].SampleN(selHp, b.fkey)
		if coalesce {
			in := sc.co.coalesceCells(b, selHp, i, L, dim, sh)
			s.hpStore[i].UpdateKeyedScaledN(sc.co.keys, sc.co.scaled, nil, nil, sc.co.deltas)
			nSel += in
			coIn[1] += in
			coOut[1] += int64(len(sc.co.deltas))
		} else {
			sc.keys, sc.payload, sc.deltas = gatherCells(b, selHp, i, L, dim, sh, sc.keys[:0], sc.payload[:0], sc.deltas[:0])
			s.hpStore[i].UpdateKeyedN(sc.keys, sc.payload, nil, nil, sc.deltas)
			nSel += int64(len(sc.deltas))
		}

		s.hatSamp[i].SampleN(selHat, b.fkey)
		if coalesce {
			in := sc.co.coalescePoints(b, selHat, dim)
			s.hatStore[i].UpdateKeyedScaledN(nil, nil, sc.co.keys, sc.co.scaled, sc.co.deltas)
			nSel += in
			coIn[2] += in
			coOut[2] += int64(len(sc.co.deltas))
		} else {
			sc.keys, sc.payload, sc.deltas = gatherPoints(b, selHat, sc.keys[:0], sc.payload[:0], sc.deltas[:0])
			s.hatStore[i].UpdateKeyedN(nil, nil, sc.keys, sc.payload, sc.deltas)
			nSel += int64(len(sc.deltas))
		}
	}
	mSketchUpdates.Add(nSel)
	if coalesce && obs.Enabled() {
		for k := 0; k < 3; k++ {
			mCoalesceIn[k].Add(coIn[k])
			mCoalesceOut[k].Add(coOut[k])
		}
	}
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// coalescer aggregates a substream's sampled (key, payload, delta) rows
// by key before they hit the sketch: deltas are summed and payloads are
// summed delta-scaled, exactly, so the output columns applied through
// UpdateKeyedScaledN reproduce the un-coalesced sketch state bit for
// bit. The table is open-addressed (linear probing at load ≤ 1/2) over
// generation-stamped slots, so resetting between substreams is one
// counter bump, not a memset; all buffers are reused across calls via
// the applyScratch pool.
type coalescer struct {
	gen     uint32
	slotGen []uint32 // stamp per table slot; != gen means empty
	slot    []int32  // table slot -> row index in the output columns
	mask    uint64

	keys   []uint64 // distinct keys, first-occurrence order
	scaled []int64  // delta-scaled payload sums, payload-dim words per row
	deltas []int64  // summed deltas per row
}

// reset prepares the coalescer for up to n input rows.
func (c *coalescer) reset(n int) {
	size := 8
	for size < 2*n {
		size <<= 1
	}
	if len(c.slot) < size {
		c.slot = make([]int32, size)
		c.slotGen = make([]uint32, size)
		c.gen = 0
	}
	c.gen++
	if c.gen == 0 { // generation wrapped: stamps are ambiguous, clear them
		clear(c.slotGen)
		c.gen = 1
	}
	c.mask = uint64(len(c.slot) - 1)
	c.keys = c.keys[:0]
	c.scaled = c.scaled[:0]
	c.deltas = c.deltas[:0]
}

// slotOf returns the output-row index for key, appending a fresh
// zeroed row (dim payload words) on first occurrence.
func (c *coalescer) slotOf(key uint64, dim int) int {
	h := hashing.Mix64(key) & c.mask
	for {
		if c.slotGen[h] != c.gen {
			si := int32(len(c.deltas))
			c.slotGen[h] = c.gen
			c.slot[h] = si
			c.keys = append(c.keys, key)
			c.deltas = append(c.deltas, 0)
			for j := 0; j < dim; j++ {
				c.scaled = append(c.scaled, 0)
			}
			return int(si)
		}
		if si := c.slot[h]; c.keys[si] == key {
			return int(si)
		}
		h = (h + 1) & c.mask
	}
}

// coalesceCells aggregates one level's selected cell updates: key is the
// precomputed level-i cell key, payload the level-i index (base index
// shifted down by sh), delta the op sign. Returns the number of ops
// consumed (the coalesce-ratio numerator).
func (c *coalescer) coalesceCells(b *batch, sel []bool, level, L, dim int, sh uint) int64 {
	c.reset(len(b.ops))
	var in int64
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		in++
		si := c.slotOf(b.cellKey[t*(L+1)+level], dim)
		sign := b.sign[t]
		c.deltas[si] += sign
		base := b.baseIdx[t*dim : (t+1)*dim]
		row := c.scaled[si*dim : (si+1)*dim]
		if sign > 0 {
			for j := 0; j < dim; j++ {
				row[j] += base[j] >> sh
			}
		} else {
			for j := 0; j < dim; j++ {
				row[j] -= base[j] >> sh
			}
		}
	}
	return in
}

// coalescePoints aggregates the selected point updates of the ĥ
// substream: key is the op's fingerprint key, payload its coordinates.
func (c *coalescer) coalescePoints(b *batch, sel []bool, dim int) int64 {
	c.reset(len(b.ops))
	var in int64
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		in++
		si := c.slotOf(b.fkey[t], dim)
		sign := b.sign[t]
		c.deltas[si] += sign
		p := b.ops[t].P
		row := c.scaled[si*dim : (si+1)*dim]
		if sign > 0 {
			for j := 0; j < dim; j++ {
				row[j] += p[j]
			}
		} else {
			for j := 0; j < dim; j++ {
				row[j] -= p[j]
			}
		}
	}
	return in
}

// gatherCells packs the cell-sketch update columns for one level out of
// the sampler's selection mask: the precomputed level-i cell key, the
// level-i index (base index shifted down), and the op sign.
func gatherCells(b *batch, sel []bool, level, L, dim int, sh uint, keys []uint64, payload []int64, deltas []int64) ([]uint64, []int64, []int64) {
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		keys = append(keys, b.cellKey[t*(L+1)+level])
		base := b.baseIdx[t*dim : (t+1)*dim]
		for j := 0; j < dim; j++ {
			payload = append(payload, base[j]>>sh)
		}
		deltas = append(deltas, b.sign[t])
	}
	return keys, payload, deltas
}

// gatherPoints packs the point-sketch update columns: fingerprint key,
// flattened coordinates, sign.
func gatherPoints(b *batch, sel []bool, keys []uint64, payload []int64, deltas []int64) ([]uint64, []int64, []int64) {
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		keys = append(keys, b.fkey[t])
		payload = append(payload, b.ops[t].P...)
		deltas = append(deltas, b.sign[t])
	}
	return keys, payload, deltas
}

// shard is one unit of parallel batch application: a level range of one
// guess instance.
type shard struct {
	s      *Stream
	lo, hi int
}

// applyShards applies the batch to every (stream × level-range) shard with
// a worker pool sized to the machine. Shards partition the sketch state —
// no two shards write the same sketch — so no synchronization beyond the
// final barrier is needed, and linearity makes the outcome independent of
// the schedule.
func applyShards(b *batch, shards []shard) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			sh.s.applyLevels(b, sh.lo, sh.hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				sh := shards[i]
				sh.s.applyLevels(b, sh.lo, sh.hi)
			}
		}()
	}
	wg.Wait()
}

// levelShards appends the shards for one stream, splitting its L+1 levels
// into chunks of at most chunk levels.
func levelShards(dst []shard, s *Stream, chunk int) []shard {
	for lo := 0; lo <= s.g.L; lo += chunk {
		hi := lo + chunk - 1
		if hi > s.g.L {
			hi = s.g.L
		}
		dst = append(dst, shard{s: s, lo: lo, hi: hi})
	}
	return dst
}
