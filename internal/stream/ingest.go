// Batched, shared-key ingestion pipeline (the fast path behind
// Stream.Apply and Auto.Apply).
//
// Every stream update fans out to 3 substreams × (L+1) grid levels — and,
// under guess enumeration, × G guess instances. The per-op inputs those
// fan-out targets need are all derivable from two quantities: the op's
// fingerprint key (sampling decisions and point identity) and its cell
// index per level (cell keys and cell payloads). A batch precomputes both
// as columns, once per op:
//
//   - fkey[t]            — fingerprint key of op t,
//   - baseIdx[t·d : …]   — the level-L cell index (p + shift, exactly),
//   - cellKey[t·(L+1)+i] — the level-i cell key, derived bottom-up: the
//     level-(i−1) index is the level-i index shifted right one bit
//     (grid.ParentIndex), so all L+1 keys take one fingerprint per level
//     instead of one CellIndex + KeyOf pair per level per sketch.
//
// Coarser cell indices are reconstructed from baseIdx by a bit shift at
// application time, only when a sampler actually selects the op, so the
// batch stores one index vector per op rather than L+1.
//
// Because every sketch is linear over GF(p) and int64 counters — both
// exact, commutative, associative — applying a batch level-by-level, or
// sharding levels across goroutines, yields bit-identical sketch state to
// replaying the ops one at a time in stream order. TestApplyMatchesPerOp
// enforces this.
package stream

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streambalance/internal/grid"
	"streambalance/internal/hashing"
)

// batch holds the columnar precomputation for a slice of ops against one
// grid + fingerprint pair. Buffers are reused across builds.
type batch struct {
	ops     []Op
	sign    []int64  // +1 insert, −1 delete, per op
	fkey    []uint64 // fingerprint key per op
	baseIdx []int64  // level-L cell index per op, Dim entries each
	cellKey []uint64 // cell key per op per level, L+1 entries each
}

// build fills the batch's columns for ops. The grid and fingerprint must
// be the ones every consuming Stream shares.
func (b *batch) build(g *grid.Grid, fp *hashing.Fingerprint, ops []Op) {
	n, dim, L := len(ops), g.Dim, g.L
	b.ops = ops
	b.sign = growInt64(b.sign, n)
	b.fkey = growUint64(b.fkey, n)
	b.baseIdx = growInt64(b.baseIdx, n*dim)
	b.cellKey = growUint64(b.cellKey, n*(L+1))
	scratch := make([]int64, dim)
	for t := range ops {
		p := ops[t].P
		if ops[t].Delete {
			b.sign[t] = -1
		} else {
			b.sign[t] = +1
		}
		b.fkey[t] = fp.Key(p)
		row := g.CellIndexInto(b.baseIdx[t*dim:t*dim], p, L)
		copy(scratch, row)
		g.ParentKeys(b.cellKey[t*(L+1):(t+1)*(L+1)], scratch, L)
	}
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// applyLevels applies the batch to sketch levels lo..hi of s. Distinct
// level ranges of the same Stream touch disjoint sketch state (each level
// owns its sketches), so they may run concurrently; the net counter s.n is
// the caller's responsibility. Level-major order keeps one level's sketch
// slabs hot in cache across the whole batch.
func (s *Stream) applyLevels(b *batch, lo, hi int) {
	g := s.g
	L, dim := g.L, g.Dim
	idx := make([]int64, dim)
	var nSel int64 // sketch updates applied; one atomic add per shard
	for i := lo; i <= hi; i++ {
		hS, hpS, hatS := s.hSamp[i], s.hpSamp[i], s.hatSamp[i]
		sh := uint(L - i)
		for t := range b.ops {
			key := b.fkey[t]
			hSel := i <= L-1 && hS.Sample(key)
			hpSel := hpS.Sample(key)
			hatSel := hatS.Sample(key)
			if !hSel && !hpSel && !hatSel {
				continue
			}
			if hSel || hpSel {
				base := b.baseIdx[t*dim : (t+1)*dim]
				for j := 0; j < dim; j++ {
					idx[j] = base[j] >> sh
				}
			}
			ck := b.cellKey[t*(L+1)+i]
			p, sign := b.ops[t].P, b.sign[t]
			if hSel {
				s.hStore[i].UpdateKeyed(ck, idx, key, p, sign)
				nSel++
			}
			if hpSel {
				s.hpStore[i].UpdateKeyed(ck, idx, key, p, sign)
				nSel++
			}
			if hatSel {
				s.hatStore[i].UpdateKeyed(ck, idx, key, p, sign)
				nSel++
			}
		}
	}
	mSketchUpdates.Add(nSel)
}

// shard is one unit of parallel batch application: a level range of one
// guess instance.
type shard struct {
	s      *Stream
	lo, hi int
}

// applyShards applies the batch to every (stream × level-range) shard with
// a worker pool sized to the machine. Shards partition the sketch state —
// no two shards write the same sketch — so no synchronization beyond the
// final barrier is needed, and linearity makes the outcome independent of
// the schedule.
func applyShards(b *batch, shards []shard) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			sh.s.applyLevels(b, sh.lo, sh.hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				sh := shards[i]
				sh.s.applyLevels(b, sh.lo, sh.hi)
			}
		}()
	}
	wg.Wait()
}

// levelShards appends the shards for one stream, splitting its L+1 levels
// into chunks of at most chunk levels.
func levelShards(dst []shard, s *Stream, chunk int) []shard {
	for lo := 0; lo <= s.g.L; lo += chunk {
		hi := lo + chunk - 1
		if hi > s.g.L {
			hi = s.g.L
		}
		dst = append(dst, shard{s: s, lo: lo, hi: hi})
	}
	return dst
}
