// Batched, shared-key ingestion pipeline (the fast path behind
// Stream.Apply and Auto.Apply).
//
// Every stream update fans out to 3 substreams × (L+1) grid levels — and,
// under guess enumeration, × G guess instances. The per-op inputs those
// fan-out targets need are all derivable from two quantities: the op's
// fingerprint key (sampling decisions and point identity) and its cell
// index per level (cell keys and cell payloads). A batch precomputes both
// as columns, once per op:
//
//   - fkey[t]            — fingerprint key of op t,
//   - baseIdx[t·d : …]   — the level-L cell index (p + shift, exactly),
//   - cellKey[t·(L+1)+i] — the level-i cell key, derived bottom-up: the
//     level-(i−1) index is the level-i index shifted right one bit
//     (grid.ParentIndex), so all L+1 keys take one fingerprint per level
//     instead of one CellIndex + KeyOf pair per level per sketch.
//
// Coarser cell indices are reconstructed from baseIdx by a bit shift at
// application time, only when a sampler actually selects the op, so the
// batch stores one index vector per op rather than L+1.
//
// Because every sketch is linear over GF(p) and int64 counters — both
// exact, commutative, associative — applying a batch level-by-level, or
// sharding levels across goroutines, yields bit-identical sketch state to
// replaying the ops one at a time in stream order. TestApplyMatchesPerOp
// enforces this.
package stream

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streambalance/internal/grid"
	"streambalance/internal/hashing"
)

// batch holds the columnar precomputation for a slice of ops against one
// grid + fingerprint pair. Buffers are reused across builds.
type batch struct {
	ops     []Op
	sign    []int64  // +1 insert, −1 delete, per op
	fkey    []uint64 // fingerprint key per op
	baseIdx []int64  // level-L cell index per op, Dim entries each
	cellKey []uint64 // cell key per op per level, L+1 entries each
}

// build fills the batch's columns for ops. The grid and fingerprint must
// be the ones every consuming Stream shares.
//
// The two field-arithmetic columns — fingerprint keys and per-level cell
// keys — run through the 4-lane kernels (hashing.Key4, grid.ParentKeys4):
// four ops' Rabin–Karp chains are interleaved per block, so the column
// build is bounded by multiplier throughput rather than the serial
// multiply latency of one chain. The ragged tail (< 4 ops) takes the
// scalar path; both paths are bit-identical, so batch boundaries cannot
// change any key.
func (b *batch) build(g *grid.Grid, fp *hashing.Fingerprint, ops []Op) {
	n, dim, L := len(ops), g.Dim, g.L
	b.ops = ops
	b.sign = growInt64(b.sign, n)
	b.fkey = growUint64(b.fkey, n)
	b.baseIdx = growInt64(b.baseIdx, n*dim)
	b.cellKey = growUint64(b.cellKey, n*(L+1))
	for t := range ops {
		if ops[t].Delete {
			b.sign[t] = -1
		} else {
			b.sign[t] = +1
		}
		g.CellIndexInto(b.baseIdx[t*dim:t*dim], ops[t].P, L)
	}
	scratch := make([]int64, 4*dim)
	s0, s1, s2, s3 := scratch[0*dim:1*dim], scratch[1*dim:2*dim], scratch[2*dim:3*dim], scratch[3*dim:4*dim]
	ck := func(t int) []uint64 { return b.cellKey[t*(L+1) : (t+1)*(L+1)] }
	t := 0
	for ; t+4 <= n; t += 4 {
		b.fkey[t], b.fkey[t+1], b.fkey[t+2], b.fkey[t+3] =
			fp.Key4(ops[t].P, ops[t+1].P, ops[t+2].P, ops[t+3].P)
		copy(s0, b.baseIdx[(t+0)*dim:])
		copy(s1, b.baseIdx[(t+1)*dim:])
		copy(s2, b.baseIdx[(t+2)*dim:])
		copy(s3, b.baseIdx[(t+3)*dim:])
		g.ParentKeys4(ck(t), ck(t+1), ck(t+2), ck(t+3), s0, s1, s2, s3, L)
	}
	for ; t < n; t++ {
		b.fkey[t] = fp.Key(ops[t].P)
		copy(s0, b.baseIdx[t*dim:(t+1)*dim])
		g.ParentKeys(ck(t), s0, L)
	}
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// applyLevels applies the batch to sketch levels lo..hi of s. Distinct
// level ranges of the same Stream touch disjoint sketch state (each level
// owns its sketches), so they may run concurrently; the net counter s.n is
// the caller's responsibility. Level-major order keeps one level's sketch
// slabs hot in cache across the whole batch.
//
// Per level the three samplers run over the whole fingerprint-key column
// through the 4-lane Bernoulli kernel (SampleN) — the degree-λ Horner
// chains of four ops overlap instead of serializing — and each
// substream's selected ops are gathered into contiguous key/payload/delta
// columns fed to Storing.UpdateKeyedN, which batches the sketch-side row
// and fingerprint hashing the same way. Sketch state is an exact sum, so
// the columnar application is bit-identical to the per-op path
// (TestApplyMatchesPerOp, FuzzShardMerge).
func (s *Stream) applyLevels(b *batch, lo, hi int) {
	g := s.g
	L, dim := g.L, g.Dim
	n := len(b.ops)
	// Scratch is per call: applyLevels runs concurrently on disjoint
	// level ranges of the same Stream, so it cannot live on s.
	sel := make([]bool, 3*n)
	selH, selHp, selHat := sel[0:n], sel[n:2*n], sel[2*n:3*n]
	keys := make([]uint64, 0, n)
	payload := make([]int64, 0, n*dim)
	deltas := make([]int64, 0, n)
	var nSel int64 // sketch updates applied; one atomic add per shard
	for i := lo; i <= hi; i++ {
		sh := uint(L - i)
		if i <= L-1 {
			s.hSamp[i].SampleN(selH, b.fkey)
			keys, payload, deltas = gatherCells(b, selH, i, L, dim, sh, keys[:0], payload[:0], deltas[:0])
			s.hStore[i].UpdateKeyedN(keys, payload, nil, nil, deltas)
			nSel += int64(len(deltas))
		}
		s.hpSamp[i].SampleN(selHp, b.fkey)
		keys, payload, deltas = gatherCells(b, selHp, i, L, dim, sh, keys[:0], payload[:0], deltas[:0])
		s.hpStore[i].UpdateKeyedN(keys, payload, nil, nil, deltas)
		nSel += int64(len(deltas))

		s.hatSamp[i].SampleN(selHat, b.fkey)
		keys, payload, deltas = gatherPoints(b, selHat, keys[:0], payload[:0], deltas[:0])
		s.hatStore[i].UpdateKeyedN(nil, nil, keys, payload, deltas)
		nSel += int64(len(deltas))
	}
	mSketchUpdates.Add(nSel)
}

// gatherCells packs the cell-sketch update columns for one level out of
// the sampler's selection mask: the precomputed level-i cell key, the
// level-i index (base index shifted down), and the op sign.
func gatherCells(b *batch, sel []bool, level, L, dim int, sh uint, keys []uint64, payload []int64, deltas []int64) ([]uint64, []int64, []int64) {
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		keys = append(keys, b.cellKey[t*(L+1)+level])
		base := b.baseIdx[t*dim : (t+1)*dim]
		for j := 0; j < dim; j++ {
			payload = append(payload, base[j]>>sh)
		}
		deltas = append(deltas, b.sign[t])
	}
	return keys, payload, deltas
}

// gatherPoints packs the point-sketch update columns: fingerprint key,
// flattened coordinates, sign.
func gatherPoints(b *batch, sel []bool, keys []uint64, payload []int64, deltas []int64) ([]uint64, []int64, []int64) {
	for t := range b.ops {
		if !sel[t] {
			continue
		}
		keys = append(keys, b.fkey[t])
		payload = append(payload, b.ops[t].P...)
		deltas = append(deltas, b.sign[t])
	}
	return keys, payload, deltas
}

// shard is one unit of parallel batch application: a level range of one
// guess instance.
type shard struct {
	s      *Stream
	lo, hi int
}

// applyShards applies the batch to every (stream × level-range) shard with
// a worker pool sized to the machine. Shards partition the sketch state —
// no two shards write the same sketch — so no synchronization beyond the
// final barrier is needed, and linearity makes the outcome independent of
// the schedule.
func applyShards(b *batch, shards []shard) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			sh.s.applyLevels(b, sh.lo, sh.hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				sh := shards[i]
				sh.s.applyLevels(b, sh.lo, sh.hi)
			}
		}()
	}
	wg.Wait()
}

// levelShards appends the shards for one stream, splitting its L+1 levels
// into chunks of at most chunk levels.
func levelShards(dst []shard, s *Stream, chunk int) []shard {
	for lo := 0; lo <= s.g.L; lo += chunk {
		hi := lo + chunk - 1
		if hi > s.g.L {
			hi = s.g.L
		}
		dst = append(dst, shard{s: s, lo: lo, hi: hi})
	}
	return dst
}
