package stream

import (
	"math/rand"
	"runtime"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/obs"
)

// dupHeavyOps repeats every op of a churn stream rep times back to back —
// the shape coalescing targets: each batch concentrates its slab traffic
// on a few distinct keys, and at coarse grid levels all copies of a point
// share one cell.
func dupHeavyOps(seed int64, n, rep int) []Op {
	base := shuffledChurnOps(seed, n)
	ops := make([]Op, 0, len(base)*rep)
	for _, op := range base {
		for r := 0; r < rep; r++ {
			ops = append(ops, op)
		}
	}
	return ops
}

// TestCoalescedApplyMatchesUncoalesced: key-coalescing must leave sketch
// state bit-identical to both the uncoalesced batched path and the per-op
// replay, for every chunk size — including a duplicate-heavy stream where
// the coalescer collapses nearly every batch.
func TestCoalescedApplyMatchesUncoalesced(t *testing.T) {
	for _, tc := range []struct {
		name string
		ops  []Op
	}{
		{"churn", shuffledChurnOps(301, 600)},
		{"dup16", dupHeavyOps(302, 60, 16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Dim: 2, Delta: testDelta, O: 1 << 12, Params: coreset.Params{K: 3, Seed: 61}}
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			replayPerOp(t, ref, tc.ops)

			for _, coalesce := range []bool{true, false} {
				for _, chunk := range []int{1, 7, 64, len(tc.ops)} {
					s, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					prev := SetCoalesce(coalesce)
					for i := 0; i < len(tc.ops); i += chunk {
						end := i + chunk
						if end > len(tc.ops) {
							end = len(tc.ops)
						}
						s.Apply(tc.ops[i:end])
					}
					SetCoalesce(prev)
					if s.StateDigest() != ref.StateDigest() {
						t.Fatalf("coalesce=%v chunk=%d: state diverged from per-op replay", coalesce, chunk)
					}
					ca, errA := ref.Result()
					cb, errB := s.Result()
					sameCoreset(t, ca, cb, errA, errB)
				}
			}
		})
	}
}

// TestCoalescedAutoApplyMatchesUncoalesced: same contract through the
// guess-enumerating Auto front-end, whose Apply shards (guess ×
// level-range) units across the worker pool — under -race this also
// checks the pooled applyScratch/coalescer never crosses goroutines.
func TestCoalescedAutoApplyMatchesUncoalesced(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ops := dupHeavyOps(303, 55, 16)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 62},
		CellSparsity: 512, PointSparsity: 2048}

	digest := func(coalesce bool) (uint64, *Auto) {
		a, err := NewAuto(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		prev := SetCoalesce(coalesce)
		defer SetCoalesce(prev)
		const chunk = 192
		for i := 0; i < len(ops); i += chunk {
			end := i + chunk
			if end > len(ops) {
				end = len(ops)
			}
			a.Apply(ops[i:end])
		}
		return a.StateDigest(), a
	}

	don, aOn := digest(true)
	doff, aOff := digest(false)
	if don != doff {
		t.Fatal("coalesced Auto state diverged from uncoalesced")
	}
	ca, errA := aOn.Result()
	cb, errB := aOff.Result()
	sameCoreset(t, ca, cb, errA, errB)
}

// TestCoalescedShardedMatchesSerial: the Sharded front-end's workers call
// applyLevels on private forks, so coalescing must flow through the
// multicore path unchanged.
func TestCoalescedShardedMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ops := dupHeavyOps(304, 50, 16)
	cfg := Config{Dim: 2, Delta: testDelta, O: 1 << 11, Params: coreset.Params{K: 3, Seed: 63}}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Apply(ops)

	for _, shards := range []int{1, 3} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := ShardStream(s, shards)
		const chunk = 128
		for i := 0; i < len(ops); i += chunk {
			end := i + chunk
			if end > len(ops) {
				end = len(ops)
			}
			sh.Apply(ops[i:end])
		}
		if sh.StateDigest() != ref.StateDigest() {
			t.Fatalf("shards=%d: coalesced sharded state diverged from serial", shards)
		}
		sh.Close()
	}
}

// TestCoalesceCounters: with telemetry enabled, a duplicate-heavy apply
// must report more sampled ops in than distinct keys out on the h
// substream (the level-0 cell batch collapses), and the counters must
// stay silent when coalescing is off.
func TestCoalesceCounters(t *testing.T) {
	ops := dupHeavyOps(305, 40, 16)
	cfg := Config{Dim: 2, Delta: testDelta, O: 1 << 11, Params: coreset.Params{K: 3, Seed: 64}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	obs.Enable()
	defer obs.Disable()
	in0 := [3]int64{mCoalesceIn[0].Load(), mCoalesceIn[1].Load(), mCoalesceIn[2].Load()}
	out0 := [3]int64{mCoalesceOut[0].Load(), mCoalesceOut[1].Load(), mCoalesceOut[2].Load()}
	s.Apply(ops)
	var inSum, outSum int64
	for i := 0; i < 3; i++ {
		dIn := mCoalesceIn[i].Load() - in0[i]
		dOut := mCoalesceOut[i].Load() - out0[i]
		if dOut > dIn {
			t.Fatalf("substream %d: keys out %d > ops in %d", i, dOut, dIn)
		}
		inSum += dIn
		outSum += dOut
	}
	if inSum == 0 {
		t.Fatal("coalesce counters did not advance on a duplicate-heavy apply")
	}
	if outSum >= inSum {
		t.Fatalf("duplicate-heavy apply coalesced nothing: in=%d out=%d", inSum, outSum)
	}
	if r := obs.Default.Ratio(`stream_coalesce_ops_in_total{substream="h"}`,
		`stream_coalesce_keys_out_total{substream="h"}`); r < 1 {
		t.Fatalf("h substream coalesce ratio %v < 1", r)
	}

	// Off: the counters must not move.
	in1 := mCoalesceIn[0].Load()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetCoalesce(false)
	s2.Apply(ops)
	SetCoalesce(prev)
	if mCoalesceIn[0].Load() != in1 {
		t.Fatal("coalesce counters advanced with coalescing disabled")
	}
}

// TestCoalescerTableReuse drives one coalescer through many reset/insert
// cycles with varying sizes — including enough resets to exercise the
// generation stamping — and checks it always produces exact first-
// occurrence-order aggregation.
func TestCoalescerTableReuse(t *testing.T) {
	var co coalescer
	rng := rand.New(rand.NewSource(71))
	const dim = 2
	for round := 0; round < 300; round++ {
		n := 1 + rng.Intn(64)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(8)) // few distinct keys → heavy duplication
		}
		co.reset(n)
		type agg struct {
			delta int64
			pay   [dim]int64
		}
		want := map[uint64]*agg{}
		var order []uint64
		for _, k := range keys {
			i := co.slotOf(k, dim)
			d := int64(rng.Intn(5)) - 2
			co.deltas[i] += d
			co.scaled[i*dim] += d * int64(k)
			co.scaled[i*dim+1] += d * 3
			a, ok := want[k]
			if !ok {
				a = &agg{}
				want[k] = a
				order = append(order, k)
			}
			a.delta += d
			a.pay[0] += d * int64(k)
			a.pay[1] += d * 3
		}
		if len(co.keys) != len(order) {
			t.Fatalf("round %d: %d rows, want %d", round, len(co.keys), len(order))
		}
		for i, k := range order {
			if co.keys[i] != k {
				t.Fatalf("round %d: row %d key %d, want %d (first-occurrence order)", round, i, co.keys[i], k)
			}
			a := want[k]
			if co.deltas[i] != a.delta || co.scaled[i*dim] != a.pay[0] || co.scaled[i*dim+1] != a.pay[1] {
				t.Fatalf("round %d key %d: got (%d,%d,%d), want (%d,%d,%d)", round, k,
					co.deltas[i], co.scaled[i*dim], co.scaled[i*dim+1], a.delta, a.pay[0], a.pay[1])
			}
		}
	}
}
