package stream

import (
	"testing"

	"streambalance/internal/sketch"
)

// benchIncrementalExtract times ONLY the query in the alternating
// small-batch-ingest / extract serving loop: the batch and the
// between-query pre-warm run with the timer stopped, so the measured
// cost is one extraction over a slightly dirty, otherwise warm
// ensemble — the case the differential decode targets. Toggling the
// incremental knob A/Bs the splice path against full re-peels of the
// dirty levels.
func benchIncrementalExtract(b *testing.B, incremental bool) {
	b.Helper()
	prev := sketch.SetIncremental(incremental)
	defer sketch.SetIncremental(prev)
	a := benchExtractAuto(b)
	ops := benchIngestOps(4096)
	const batch = 16
	a.WarmDecodeCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lo := (i * batch) % len(ops)
		hi := lo + batch
		if hi > len(ops) {
			hi = len(ops)
		}
		a.Apply(ops[lo:hi])
		b.StartTimer()
		if _, err := a.Result(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		a.WarmDecodeCache()
		b.StartTimer()
	}
}

func BenchmarkExtractAutoIncremental(b *testing.B) { benchIncrementalExtract(b, true) }

func BenchmarkExtractAutoIncrementalOff(b *testing.B) { benchIncrementalExtract(b, false) }
