// Sharded multicore ingest front-end.
//
// Every sketch in this package is LINEAR: the state after a stream is the
// sum of per-op contributions, and addition over int64 counters and
// GF(2⁶¹−1) elements is exact, commutative and associative. A single
// logical op stream can therefore be split across P independent ingest
// workers — each owning a private clone-sibling of every sketch — and
// recombined exactly by Storing.Merge at query time. This is the
// merge-and-reduce composition of Braverman et al. (arXiv:1706.03887)
// used as a THROUGHPUT architecture rather than a space argument: the
// partition of ops across workers is irrelevant to the merged state, so
// the front-end is free to hash-partition for balance and the result is
// bit-identical to a serial pass (StateDigest, extraction Result, FAIL
// sets) at any shard count. TestShardedAutoMatchesSerial and
// FuzzShardMerge enforce this under -race.
//
// Shape (DESIGN.md §10):
//
//	Apply (dispatcher)            workers (one goroutine each)
//	  order-sensitive bookkeeping   own batch column build
//	  hash-route ops by fp key  ──▶ bounded chan ──▶ applyLevels on
//	  (no locks, no atomics)        private forks (no shared state)
//
//	Result/StateDigest (drain)
//	  flush barrier ▶ merge DIRTY shards only ▶ reset shards ▶ query
//
// The hot path has no locks and no atomics: the dispatcher owns the
// routing buffers, each worker owns its forks, and the only
// synchronization is the bounded per-worker channel (backpressure) plus
// the flush barrier. Merging is lazy — it happens at extraction, not per
// batch — and epoch-aware: shards (and sketch levels within a shard)
// that saw no ops since the last merge are skipped, so a query after a
// quiet period rides the epoch-tagged decode cache exactly like the
// unsharded path.
package stream

import (
	"runtime"
	"strconv"
	"sync"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

// Telemetry (DESIGN.md §10). Per-shard handles are resolved once at
// construction so the dispatch path never touches the registry.
var (
	mShardWorkers   = obs.G("stream_shard_workers")
	mShardBatches   = obs.C("stream_shard_batches_total")
	mShardFlushes   = obs.C("stream_shard_flushes_total")
	mShardMerges    = obs.C("stream_shard_merges_total")
	mShardMergeNS   = obs.H("stream_shard_merge_ns")
	mShardImbalance = obs.G("stream_shard_imbalance")

	vShardOps   = obs.CV("stream_shard_ops_total", "shard")
	vShardDepth = obs.GV("stream_shard_queue_depth", "shard")
)

// shardQueueDepth bounds each worker's batch queue. A full queue blocks
// the dispatcher — backpressure, not buffering, is the overload story.
const shardQueueDepth = 8

// shardMsg is one unit of work on a worker queue: a routed sub-batch
// and/or a flush marker to acknowledge.
type shardMsg struct {
	ops []Op
	ack chan<- struct{}
}

// ingestWorker is one shard: a goroutine owning a private fork of every
// target Stream. Nothing outside the worker touches the forks between
// the construction and a drain barrier.
type ingestWorker struct {
	ch    chan shardMsg
	free  chan []Op // recycled op buffers, dispatcher ↔ worker
	forks []*Stream // one private clone-sibling per target stream
	ops   *obs.Counter
	depth *obs.Gauge
}

// Sharded is a multicore ingest front-end over a Stream or Auto: it
// hash-partitions each Apply batch across its workers and recombines the
// shards lazily when a query (Result, StateDigest, …) needs the merged
// state. It is single-dispatcher like Stream/Auto — Apply, Flush and the
// query methods must not be called concurrently — and must be Closed to
// release the worker goroutines.
type Sharded struct {
	a  *Auto     // nil when fronting a single-guess Stream
	ss []*Stream // merge targets: a's guess instances, or the one Stream
	g  *grid.Grid
	fp *hashing.Fingerprint

	workers []*ingestWorker
	wg      sync.WaitGroup
	acks    chan struct{}

	stage    [][]Op  // per-worker routing buffer for the current Apply
	routed   []int64 // ops routed per worker since its last merge
	totalOps []int64 // ops routed per worker over the lifetime (imbalance)
	closed   bool
}

// ShardAuto wraps a guess-enumeration ensemble in a sharded ingest
// front-end with the given worker count (≤ 0 selects GOMAXPROCS). The
// ensemble must not be fed directly once wrapped; query it through the
// front-end, or directly after Flush — the front-end keeps a's
// bookkeeping (N, reservoir, cost bound) current at dispatch time and
// its sketches current at every drain.
func ShardAuto(a *Auto, shards int) *Sharded {
	sh := &Sharded{a: a, ss: a.streams, g: a.g, fp: a.fp}
	sh.start(shards)
	return sh
}

// ShardStream wraps a single-guess Stream in a sharded ingest front-end
// with the given worker count (≤ 0 selects GOMAXPROCS).
func ShardStream(s *Stream, shards int) *Sharded {
	sh := &Sharded{ss: []*Stream{s}, g: s.g, fp: s.fp}
	sh.start(shards)
	return sh
}

// NewSharded builds the guess-enumeration ensemble of NewAuto and wraps
// it in a sharded ingest front-end with cfg.Shards workers.
func NewSharded(cfg Config, oFactor float64) (*Sharded, error) {
	a, err := NewAuto(cfg, oFactor)
	if err != nil {
		return nil, err
	}
	return ShardAuto(a, cfg.Shards), nil
}

func (sh *Sharded) start(shards int) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sh.workers = make([]*ingestWorker, shards)
	sh.acks = make(chan struct{}, shards)
	sh.stage = make([][]Op, shards)
	sh.routed = make([]int64, shards)
	sh.totalOps = make([]int64, shards)
	for w := range sh.workers {
		iw := &ingestWorker{
			ch:    make(chan shardMsg, shardQueueDepth),
			free:  make(chan []Op, shardQueueDepth+1),
			forks: make([]*Stream, len(sh.ss)),
			ops:   vShardOps.With(strconv.Itoa(w)),
			depth: vShardDepth.With(strconv.Itoa(w)),
		}
		for i, s := range sh.ss {
			iw.forks[i] = s.Fork()
		}
		sh.workers[w] = iw
		sh.wg.Add(1)
		go sh.run(iw)
	}
	mShardWorkers.SetInt(int64(shards))
}

// run is the worker loop: build the sub-batch's key columns, apply them
// to every private fork, recycle the buffer, acknowledge flush markers.
// The column build runs here — not on the dispatcher — so fingerprinting
// and cell-key derivation parallelize with the sketch updates.
func (sh *Sharded) run(w *ingestWorker) {
	defer sh.wg.Done()
	var b batch
	for msg := range w.ch {
		if len(msg.ops) > 0 {
			b.build(sh.g, sh.fp, msg.ops)
			for _, f := range w.forks {
				f.applyLevels(&b, 0, sh.g.L)
			}
			b.ops = nil // drop the reference before recycling the buffer
			select {
			case w.free <- msg.ops[:0]:
			default:
			}
			w.depth.SetInt(int64(len(w.ch)))
		}
		if msg.ack != nil {
			w.depth.SetInt(int64(len(w.ch)))
			msg.ack <- struct{}{}
		}
	}
}

// Apply hash-partitions a batch of updates across the ingest workers and
// returns once every sub-batch is enqueued (not applied — Flush or any
// query is the barrier). Ops are copied into worker-owned buffers, so
// the caller may reuse the slice immediately. Order-sensitive
// bookkeeping — N, and for Auto the guess-selection reservoir and cost
// bound — runs here on the dispatcher in arrival order, exactly as the
// unsharded Apply does, so sharding never changes guess selection.
func (sh *Sharded) Apply(ops []Op) {
	if sh.closed {
		panic("stream: Apply on a closed Sharded")
	}
	if len(ops) == 0 {
		return
	}
	countBatch(ops)
	var net int64
	if sh.a != nil {
		for i := range ops {
			if ops[i].Delete {
				net--
				sh.a.reservoir.Delete(ops[i].P)
				sh.a.costBound.Delete(ops[i].P)
			} else {
				net++
				sh.a.reservoir.Insert(ops[i].P)
				sh.a.costBound.Insert(ops[i].P)
			}
		}
		sh.a.n += net
	} else {
		for i := range ops {
			if ops[i].Delete {
				net--
			} else {
				net++
			}
		}
	}
	for _, s := range sh.ss {
		s.n += net
	}

	// Route by the op's point fingerprint: linearity makes ANY partition
	// recombine to the same state, so the hash only has to balance load —
	// and routing by point identity keeps an op and its later deletion on
	// one shard, so per-shard net counts stay meaningful.
	P := len(sh.workers)
	if P == 1 {
		buf := append(sh.workers[0].takeBuf(), ops...)
		sh.dispatch(0, buf)
		return
	}
	for i := range ops {
		w := int(hashing.Mix64(sh.fp.Key(ops[i].P)) % uint64(P))
		buf := sh.stage[w]
		if buf == nil {
			buf = sh.workers[w].takeBuf()
		}
		sh.stage[w] = append(buf, ops[i])
	}
	for w := range sh.stage {
		if len(sh.stage[w]) == 0 {
			continue
		}
		sh.dispatch(w, sh.stage[w])
		sh.stage[w] = nil
	}
}

// Insert feeds a single insertion (a one-op batch; prefer Apply).
func (sh *Sharded) Insert(p geo.Point) { sh.Apply([]Op{{P: p}}) }

// Delete feeds a single deletion (a one-op batch; prefer Apply).
func (sh *Sharded) Delete(p geo.Point) { sh.Apply([]Op{{P: p, Delete: true}}) }

func (w *ingestWorker) takeBuf() []Op {
	select {
	case b := <-w.free:
		return b
	default:
		return make([]Op, 0, 512)
	}
}

// dispatch enqueues one routed sub-batch, blocking when the worker's
// bounded queue is full (backpressure).
func (sh *Sharded) dispatch(w int, ops []Op) {
	iw := sh.workers[w]
	iw.ch <- shardMsg{ops: ops}
	sh.routed[w] += int64(len(ops))
	sh.totalOps[w] += int64(len(ops))
	mShardBatches.Inc()
	iw.ops.Add(int64(len(ops)))
	iw.depth.SetInt(int64(len(iw.ch)))
}

// Flush blocks until every enqueued sub-batch has been applied to its
// shard. It does NOT merge: the shards still hold their state, and the
// targets' sketches are only current after a query-driven drain.
func (sh *Sharded) Flush() {
	for _, w := range sh.workers {
		w.ch <- shardMsg{ack: sh.acks}
	}
	for range sh.workers {
		<-sh.acks
	}
	mShardFlushes.Inc()
}

// drain is the lazy recombination: flush, then fold every DIRTY shard
// into the target streams and reset it. Shards that saw no ops since
// their last merge are skipped entirely — and within a dirty shard,
// sketches whose fork epoch is still 0 are skipped too — so the epochs
// of untouched target sketches never move and their decode caches stay
// fresh across quiet extractions.
func (sh *Sharded) drain() {
	sh.Flush()
	for wi, w := range sh.workers {
		if sh.routed[wi] == 0 {
			continue
		}
		t0 := obs.NowNano()
		for si, s := range sh.ss {
			s.mergeFork(w.forks[si])
		}
		sh.routed[wi] = 0
		mShardMerges.Inc()
		mShardMergeNS.ObserveSince(t0)
	}
	if obs.Enabled() {
		mShardImbalance.Set(sh.Imbalance())
	}
}

// mergeFork folds a shard fork's sketch state into s and resets the fork
// in place for its next filling. Only sketches the fork actually updated
// (epoch > 0) are merged — merging an all-zero sibling adds nothing but
// would still invalidate s's decode cache for that level.
func (s *Stream) mergeFork(fork *Stream) {
	for i := range s.hStore {
		if s.hStore[i] != nil && fork.hStore[i].Epoch() != 0 {
			s.hStore[i].Merge(fork.hStore[i])
			fork.hStore[i].Reset()
		}
		if fork.hpStore[i].Epoch() != 0 {
			s.hpStore[i].Merge(fork.hpStore[i])
			fork.hpStore[i].Reset()
		}
		if fork.hatStore[i].Epoch() != 0 {
			s.hatStore[i].Merge(fork.hatStore[i])
			fork.hatStore[i].Reset()
		}
	}
	// fork.n stays 0 — the dispatcher credits net counts to the targets
	// at Apply time — so there is nothing to add here.
}

// Imbalance reports the lifetime routing skew: the busiest shard's op
// count over the ideal per-shard share (1.0 = perfectly balanced). Also
// exported as the stream_shard_imbalance gauge at every drain.
func (sh *Sharded) Imbalance() float64 {
	var max, total int64
	for _, c := range sh.totalOps {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(sh.totalOps)) / float64(total)
}

// Result drains the shards into the target state and extracts the
// coreset — Auto's guess selection, or the single Stream's extraction.
// Bit-identical to the unsharded path fed the same ops.
func (sh *Sharded) Result() (*coreset.Coreset, error) {
	sh.drain()
	if sh.a != nil {
		return sh.a.Result()
	}
	return sh.ss[0].Result()
}

// ResultSerial is Result through the single-worker extraction baseline.
func (sh *Sharded) ResultSerial() (*coreset.Coreset, error) {
	sh.drain()
	if sh.a != nil {
		return sh.a.ResultSerial()
	}
	return sh.ss[0].ResultSerial()
}

// StateDigest drains the shards and digests the merged sketch state —
// the sharded-vs-serial equivalence check.
func (sh *Sharded) StateDigest() uint64 {
	sh.drain()
	if sh.a != nil {
		return sh.a.StateDigest()
	}
	return sh.ss[0].StateDigest()
}

// N returns the exact net point count; current without a drain (the
// dispatcher maintains it at Apply time).
func (sh *Sharded) N() int64 {
	if sh.a != nil {
		return sh.a.n
	}
	return sh.ss[0].n
}

// Bytes reports the total sketch footprint of the front-end: the target
// state plus every worker shard's private clones — sharding trades a
// P+1 factor of Theorem 4.5's space for ingest parallelism.
func (sh *Sharded) Bytes() int64 {
	var b int64
	if sh.a != nil {
		b = sh.a.Bytes()
	} else {
		b = sh.ss[0].Bytes()
	}
	for _, w := range sh.workers {
		for _, f := range w.forks {
			b += f.Bytes()
		}
	}
	return b
}

// Guesses returns the guess grid when fronting an Auto, nil otherwise.
func (sh *Sharded) Guesses() []float64 {
	if sh.a != nil {
		return sh.a.Guesses()
	}
	return nil
}

// Shards returns the worker count.
func (sh *Sharded) Shards() int { return len(sh.workers) }

// Close drains outstanding work into the target state and stops the
// worker goroutines. The wrapped Stream/Auto remains fully usable (and
// holds everything ingested); the front-end itself must not be used
// again.
func (sh *Sharded) Close() {
	if sh.closed {
		return
	}
	sh.drain()
	sh.closed = true
	for _, w := range sh.workers {
		close(w.ch)
	}
	sh.wg.Wait()
}
