package stream

import (
	"strconv"
	"testing"

	"streambalance/internal/obs"
)

// TestGuessOutcomeVector: with telemetry on, one extraction records
// exactly one "selected" outcome under the accepted guess's label, and
// the per-guess attempt counts sum to the scalar aggregate's delta.
func TestGuessOutcomeVector(t *testing.T) {
	a := extractTestAuto(t, 57)
	a.Apply(mixedOps(56, 1500))

	obs.Enable()
	defer obs.Disable()

	att0 := mGuessAttempts.Load()
	vatt0 := make([]int64, len(a.guesses))
	vsel0 := make([]int64, len(a.guesses))
	lbl := func(o float64) string { return strconv.FormatFloat(o, 'g', -1, 64) }
	for i, o := range a.guesses {
		vatt0[i] = vGuessOutcome.With(lbl(o), "attempt").Load()
		vsel0[i] = vGuessOutcome.With(lbl(o), "selected").Load()
	}

	cs, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}

	sel := -1
	for i, o := range a.guesses {
		if o == cs.O {
			sel = i
		}
	}
	if sel < 0 {
		t.Fatalf("accepted guess %v not among the enumerated guesses", cs.O)
	}
	if d := vGuessOutcome.With(lbl(cs.O), "selected").Load() - vsel0[sel]; d != 1 {
		t.Fatalf("selected{guess=%s} advanced by %d, want 1", lbl(cs.O), d)
	}

	var vattSum int64
	for i, o := range a.guesses {
		vattSum += vGuessOutcome.With(lbl(o), "attempt").Load() - vatt0[i]
	}
	if scalar := mGuessAttempts.Load() - att0; vattSum != scalar {
		t.Fatalf("per-guess attempts %d != scalar stream_guess_attempts_total delta %d", vattSum, scalar)
	}
	if vattSum < 1 {
		t.Fatal("no attempt outcome recorded")
	}

	// Disabled: the vector must not intern or count.
	obs.Disable()
	before := vGuessOutcome.With(lbl(cs.O), "selected").Load()
	if _, err := a.Result(); err != nil {
		t.Fatal(err)
	}
	if got := vGuessOutcome.With(lbl(cs.O), "selected").Load(); got != before {
		t.Fatalf("selected outcome advanced while telemetry disabled: %d -> %d", before, got)
	}
}
