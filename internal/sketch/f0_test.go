package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestF0ExactWhenSmall(t *testing.T) {
	f := NewF0(rand.New(rand.NewSource(1)), 1<<20, 64, 0.01)
	for i := 0; i < 40; i++ {
		f.Update(uint64(i*7+1), 1)
		f.Update(uint64(i*7+1), 2) // duplicates must not inflate F0
	}
	got, ok := f.Estimate()
	if !ok || got != 40 {
		t.Fatalf("estimate %v ok=%v, want exactly 40", got, ok)
	}
}

func TestF0LargeApproximation(t *testing.T) {
	for _, n := range []int{5000, 50000} {
		f := NewF0(rand.New(rand.NewSource(2)), 1<<20, 256, 0.01)
		for i := 0; i < n; i++ {
			f.Update(uint64(i)*2654435761+17, 1)
		}
		got, ok := f.Estimate()
		if !ok {
			t.Fatalf("n=%d: estimate failed", n)
		}
		if math.Abs(got-float64(n)) > 0.25*float64(n) {
			t.Fatalf("n=%d: estimate %v off by more than 25%%", n, got)
		}
	}
}

func TestF0Deletions(t *testing.T) {
	f := NewF0(rand.New(rand.NewSource(3)), 1<<20, 128, 0.01)
	// Insert 20000 keys, delete all but 50.
	for i := 0; i < 20000; i++ {
		f.Update(uint64(i+1), 1)
	}
	for i := 50; i < 20000; i++ {
		f.Update(uint64(i+1), -1)
	}
	got, ok := f.Estimate()
	if !ok || got != 50 {
		t.Fatalf("after deletions: estimate %v ok=%v, want exactly 50", got, ok)
	}
}

func TestF0FullCancellation(t *testing.T) {
	f := NewF0(rand.New(rand.NewSource(4)), 1<<10, 32, 0.01)
	for i := 0; i < 500; i++ {
		f.Update(uint64(i+1), 1)
	}
	for i := 0; i < 500; i++ {
		f.Update(uint64(i+1), -1)
	}
	got, ok := f.Estimate()
	if !ok || got != 0 {
		t.Fatalf("cancelled stream: estimate %v ok=%v", got, ok)
	}
}

func TestF0UndersizedFails(t *testing.T) {
	// maxKeys sized for 64 keys; feed 100000.
	f := NewF0(rand.New(rand.NewSource(5)), 64, 16, 0.01)
	for i := 0; i < 100000; i++ {
		f.Update(uint64(i+1), 1)
	}
	if est, ok := f.Estimate(); ok && est < 50000 {
		t.Fatalf("undersized ladder returned a confident wrong answer: %v", est)
	}
}

func TestF0BytesBounded(t *testing.T) {
	f := NewF0(rand.New(rand.NewSource(6)), 1<<30, 128, 0.01)
	if f.Bytes() <= 0 || f.Bytes() > 32<<20 {
		t.Fatalf("bytes = %d", f.Bytes())
	}
}
