package sketch

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

func buildGrid(t *testing.T, delta int64, dim int, seed int64) *grid.Grid {
	t.Helper()
	return grid.New(delta, dim, rand.New(rand.NewSource(seed)))
}

func TestStoringCellCountsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildGrid(t, 64, 2, 1)
	st := NewStoring(rng, g, 3, 128, 0, 0.01)

	pts := make(geo.PointSet, 200)
	for i := range pts {
		pts[i] = geo.Point{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		st.Insert(pts[i])
	}
	want := map[uint64]int64{}
	for _, p := range pts {
		want[g.CellKey(p, 3)]++
	}
	res, ok := st.Result()
	if !ok {
		t.Fatal("Result FAILed on in-budget input")
	}
	if len(res.Cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(want))
	}
	for _, cc := range res.Cells {
		if want[cc.Key] != cc.Count {
			t.Fatalf("cell %d: count %d, want %d", cc.Key, cc.Count, want[cc.Key])
		}
		// Index payload must regenerate the same key.
		if g.KeyOf(3, cc.Index) != cc.Key {
			t.Fatal("recovered index does not regenerate the cell key")
		}
	}
}

func TestStoringPointRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := buildGrid(t, 32, 3, 2)
	st := NewStoring(rng, g, 2, 64, 32, 0.01)

	inserted := map[string]int64{}
	var pts geo.PointSet
	for i := 0; i < 20; i++ {
		p := geo.Point{1 + rng.Int63n(32), 1 + rng.Int63n(32), 1 + rng.Int63n(32)}
		pts = append(pts, p)
		inserted[p.String()]++
		st.Insert(p)
	}
	res, ok := st.Result()
	if !ok {
		t.Fatal("FAIL on 20 points with beta=32")
	}
	got := map[string]int64{}
	for _, pc := range res.Points {
		got[pc.P.String()] += pc.Count
	}
	if len(got) != len(inserted) {
		t.Fatalf("recovered %d distinct points, want %d", len(got), len(inserted))
	}
	for k, c := range inserted {
		if got[k] != c {
			t.Fatalf("point %s: count %d, want %d", k, got[k], c)
		}
	}
}

func TestStoringInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildGrid(t, 128, 2, 3)
	st := NewStoring(rng, g, 4, 32, 16, 0.01)

	// Heavy churn: insert 3000 points, delete all but 8.
	var all geo.PointSet
	for i := 0; i < 3000; i++ {
		p := geo.Point{1 + rng.Int63n(128), 1 + rng.Int63n(128)}
		all = append(all, p)
		st.Insert(p)
	}
	survivors := map[string]int64{}
	for i, p := range all {
		if i < len(all)-8 {
			st.Delete(p)
		} else {
			survivors[p.String()]++
		}
	}
	res, ok := st.Result()
	if !ok {
		t.Fatal("FAIL after churn restored sparsity")
	}
	got := map[string]int64{}
	var totalCells int64
	for _, pc := range res.Points {
		got[pc.P.String()] += pc.Count
	}
	for _, cc := range res.Cells {
		totalCells += cc.Count
	}
	if totalCells != 8 {
		t.Fatalf("cell counts sum to %d, want 8", totalCells)
	}
	for k, c := range survivors {
		if got[k] != c {
			t.Fatalf("survivor %s: got %d want %d", k, got[k], c)
		}
	}
	if st.NetUpdates() != 8 {
		t.Fatalf("NetUpdates = %d, want 8", st.NetUpdates())
	}
}

func TestStoringFailsWhenOverfull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := buildGrid(t, 1024, 2, 4)
	st := NewStoring(rng, g, 10, 4, 0, 0.01) // alpha=4 cells only
	for i := 0; i < 500; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(1024), 1 + rng.Int63n(1024)})
	}
	if _, ok := st.Result(); ok {
		t.Fatal("expected FAIL with alpha=4 and ~hundreds of non-empty fine cells")
	}
}

func TestStoringEmptyStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := buildGrid(t, 16, 2, 5)
	st := NewStoring(rng, g, 0, 8, 8, 0.01)
	res, ok := st.Result()
	if !ok || len(res.Cells) != 0 || len(res.Points) != 0 {
		t.Fatalf("empty stream: ok=%v cells=%d points=%d", ok, len(res.Cells), len(res.Points))
	}
}

func TestStoringFullCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := buildGrid(t, 64, 2, 6)
	st := NewStoring(rng, g, 1, 8, 8, 0.01)
	var pts geo.PointSet
	for i := 0; i < 100; i++ {
		p := geo.Point{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		pts = append(pts, p)
		st.Insert(p)
	}
	for _, p := range pts {
		st.Delete(p)
	}
	res, ok := st.Result()
	if !ok {
		t.Fatal("fully cancelled stream must decode")
	}
	if len(res.Cells) != 0 || len(res.Points) != 0 {
		t.Fatalf("fully cancelled stream must be empty: cells=%d points=%d", len(res.Cells), len(res.Points))
	}
}

func TestStoringLevelMinusOne(t *testing.T) {
	// The G_{-1} sketch sees a single cell holding everything.
	rng := rand.New(rand.NewSource(7))
	g := buildGrid(t, 32, 2, 7)
	st := NewStoring(rng, g, grid.MinLevel, 4, 0, 0.01)
	for i := 0; i < 50; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(32), 1 + rng.Int63n(32)})
	}
	res, ok := st.Result()
	if !ok || len(res.Cells) != 1 || res.Cells[0].Count != 50 {
		t.Fatalf("G_{-1}: ok=%v cells=%+v", ok, res.Cells)
	}
}

func TestStoringBytesIndependentOfStreamLength(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := buildGrid(t, 64, 2, 8)
	st := NewStoring(rng, g, 3, 32, 16, 0.01)
	before := st.Bytes()
	for i := 0; i < 10000; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(64), 1 + rng.Int63n(64)})
	}
	if st.Bytes() != before {
		t.Fatalf("sketch grew with the stream: %d -> %d", before, st.Bytes())
	}
}

func TestUpdateKeyedMatchesUpdate(t *testing.T) {
	// UpdateKeyed with caller-precomputed keys must leave bit-identical
	// state to the per-op Insert/Delete path — the contract the batched
	// ingestion pipeline depends on.
	g := buildGrid(t, 1<<8, 2, 61)
	mk := func() (*Storing, *Storing) {
		rngA := rand.New(rand.NewSource(62))
		rngB := rand.New(rand.NewSource(62))
		fpA := hashing.NewFingerprint(rand.New(rand.NewSource(63)))
		fpB := hashing.NewFingerprint(rand.New(rand.NewSource(63)))
		return NewStoringShared(rngA, g, 3, 32, 32, 0.01, fpA),
			NewStoringShared(rngB, g, 3, 32, 32, 0.01, fpB)
	}
	perOp, keyed := mk()
	rng := rand.New(rand.NewSource(64))
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Point{rng.Int63n(1 << 8), rng.Int63n(1 << 8)}
	}
	for i, p := range pts {
		delta := int64(1)
		if i%5 == 4 {
			delta = -1
		}
		if delta > 0 {
			perOp.Insert(p)
		} else {
			perOp.Delete(p)
		}
		idx := g.CellIndex(p, 3)
		keyed.UpdateKeyed(g.KeyOf(3, idx), idx, keyed.PointKey(p), p, delta)
	}
	if perOp.Digest() != keyed.Digest() {
		t.Fatal("UpdateKeyed state diverged from per-op Update")
	}
	if perOp.NetUpdates() != keyed.NetUpdates() {
		t.Fatalf("net updates %d vs %d", perOp.NetUpdates(), keyed.NetUpdates())
	}
}

func TestDigestDetectsDifference(t *testing.T) {
	g := buildGrid(t, 1<<6, 2, 65)
	rng := rand.New(rand.NewSource(66))
	st := NewStoring(rng, g, 2, 16, 16, 0.01)
	sib := st.CloneEmpty()
	if st.Digest() != sib.Digest() {
		t.Fatal("empty siblings must have equal digests")
	}
	st.Insert(geo.Point{5, 9})
	if st.Digest() == sib.Digest() {
		t.Fatal("digest must change after an update")
	}
	sib.Insert(geo.Point{5, 9})
	if st.Digest() != sib.Digest() {
		t.Fatal("identical update streams must give equal digests")
	}
	st.Delete(geo.Point{5, 9})
	sib.Delete(geo.Point{5, 9})
	if st.Digest() != sib.Digest() {
		t.Fatal("digests must track deletions identically")
	}
}

func TestStoringSharedFingerprintSharesPointKeys(t *testing.T) {
	g := buildGrid(t, 1<<6, 2, 67)
	fp := hashing.NewFingerprint(rand.New(rand.NewSource(68)))
	a := NewStoringShared(rand.New(rand.NewSource(69)), g, 1, 8, 8, 0.01, fp)
	b := NewStoringShared(rand.New(rand.NewSource(70)), g, 4, 8, 8, 0.01, fp)
	p := geo.Point{12, 34}
	if a.PointKey(p) != b.PointKey(p) {
		t.Fatal("instances sharing a fingerprint must agree on point keys")
	}
	if a.PointKey(p) != fp.Key(p) {
		t.Fatal("PointKey must be the shared fingerprint key")
	}
}

func TestStoringEpochAndDecodeCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildGrid(t, 64, 2, 7)
	st := NewStoring(rng, g, 2, 128, 64, 0.01)

	if st.Epoch() != 0 || st.CacheFresh() {
		t.Fatal("fresh sketch must have epoch 0 and no cache")
	}
	p := geo.Point{3, 5}
	st.Insert(p)
	st.Insert(geo.Point{9, 9})
	if st.Epoch() != 2 {
		t.Fatalf("epoch %d after 2 updates", st.Epoch())
	}

	bytes0, dig0 := st.Bytes(), st.Digest()
	res1, ok := st.Result()
	if !ok {
		t.Fatal("decode FAILed")
	}
	if !st.CacheFresh() {
		t.Fatal("Result must leave a fresh cache")
	}
	if st.CacheBytes() <= 0 {
		t.Fatal("cache bytes must be positive after a successful decode")
	}
	// The cache is derived state: space accounting and digest unchanged.
	if st.Bytes() != bytes0 || st.Digest() != dig0 {
		t.Fatal("Result changed Bytes or Digest")
	}
	res2, ok := st.Result() // cache hit
	if !ok || len(res2.Cells) != len(res1.Cells) || len(res2.Points) != len(res1.Points) {
		t.Fatal("cached decode differs from the original")
	}

	// A mutation invalidates: the next decode sees the new state.
	st.Delete(p)
	if st.CacheFresh() {
		t.Fatal("update must invalidate the cache")
	}
	res3, ok := st.Result()
	if !ok {
		t.Fatal("decode FAILed after delete")
	}
	if len(res3.Points) != len(res1.Points)-1 {
		t.Fatalf("stale decode: %d points, want %d", len(res3.Points), len(res1.Points)-1)
	}

	// Merge invalidates and bumps the epoch on the receiver.
	sib := st.CloneEmpty()
	sib.Insert(geo.Point{17, 23})
	st.Result()
	e := st.Epoch()
	st.Merge(sib)
	if st.Epoch() != e+1 || st.CacheFresh() {
		t.Fatal("Merge must bump the epoch and drop the cache")
	}

	// DropCache releases memory without touching sketch state.
	st.Result()
	st.DropCache()
	if st.CacheBytes() != 0 || st.CacheFresh() {
		t.Fatal("DropCache left state behind")
	}
	if st.Bytes() != bytes0 {
		t.Fatal("cache lifecycle changed Bytes")
	}
}

func TestStoringCachesFailedDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := buildGrid(t, 1024, 2, 8)
	st := NewStoring(rng, g, g.L, 2, 0, 0.01) // alpha=2: trivially over-full
	for i := 0; i < 64; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(1024), 1 + rng.Int63n(1024)})
	}
	if _, ok := st.Result(); ok {
		t.Fatal("64 cells in an alpha=2 sketch must FAIL")
	}
	if !st.CacheFresh() {
		t.Fatal("FAIL outcomes are deterministic and must be cached too")
	}
	if _, ok := st.Result(); ok {
		t.Fatal("cached FAIL must still FAIL")
	}
	// New state can flip a cached FAIL back to success.
	for i := 0; i < 64; i++ {
		// Note: deletes of unseen points would corrupt; instead verify the
		// cache invalidates and re-decodes (still FAIL, but freshly).
		st.Insert(geo.Point{1 + rng.Int63n(1024), 1 + rng.Int63n(1024)})
		if st.CacheFresh() {
			t.Fatal("insert must invalidate the cached FAIL")
		}
		break
	}
}

// TestStoringCacheStats pins the decode-cache accounting that DropCache
// decisions are made against: a cold Result is a miss, a repeated one a
// hit, an update in between makes the next Result a stale re-decode —
// answered differentially (a splice) when a base exists — DropCache
// counts as a drop (and a drop on an already-empty cache does not), a
// pristine-fork Merge is skipped outright, and a real Merge over a live
// base keeps it for the next splice instead of dropping.
func TestStoringCacheStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := buildGrid(t, 1024, 2, 11)
	st := NewStoring(rng, g, 4, 256, 0, 0.01)
	for i := 0; i < 32; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(1024), 1 + rng.Int63n(1024)})
	}

	want := func(s CacheStats) {
		t.Helper()
		if got := st.CacheStats(); got != s {
			t.Fatalf("CacheStats = %+v, want %+v", got, s)
		}
	}
	want(CacheStats{})

	st.Result() // cold decode
	want(CacheStats{Misses: 1})
	st.Result() // cached
	st.Result()
	want(CacheStats{Hits: 2, Misses: 1})

	st.Insert(geo.Point{5, 5}) // epoch bump invalidates
	st.Result()                // stale re-decode: spliced, not a cold miss
	want(CacheStats{Hits: 2, Misses: 1, Stale: 1, Splices: 1})

	st.DropCache()
	want(CacheStats{Hits: 2, Misses: 1, Stale: 1, Drops: 1, Splices: 1})
	st.DropCache() // nothing cached: not a drop
	want(CacheStats{Hits: 2, Misses: 1, Stale: 1, Drops: 1, Splices: 1})
	st.Result() // cold again after the drop (the drop cleared the base too)
	want(CacheStats{Hits: 2, Misses: 2, Stale: 1, Drops: 1, Splices: 1})

	// A pristine fork never updated anything: the merge is a no-op, the
	// cache stays fresh and only MergeSkips moves.
	st.Merge(st.CloneEmpty())
	want(CacheStats{Hits: 2, Misses: 2, Stale: 1, Drops: 1, Splices: 1, MergeSkips: 1})
	if !st.CacheFresh() {
		t.Fatal("pristine-fork Merge must leave the cache fresh")
	}

	// A real merge over a live base keeps it (MergeKeeps, no drop): the
	// next Result splices the merged-in delta instead of re-peeling.
	fork := st.CloneEmpty()
	fork.Insert(geo.Point{9, 9})
	st.Merge(fork)
	want(CacheStats{Hits: 2, Misses: 2, Stale: 1, Drops: 1, Splices: 1, MergeKeeps: 1, MergeSkips: 1})
	if st.CacheFresh() {
		t.Fatal("real Merge must leave the cache stale")
	}
	st.Result()
	want(CacheStats{Hits: 2, Misses: 2, Stale: 2, Drops: 1, Splices: 2, MergeKeeps: 1, MergeSkips: 1})
}

// TestStoringMergeDropCounter pins the obs counters behind CacheStats's
// merge fields: with incremental decode on, a Merge over a live base
// moves sketch_cache_merge_keeps_total and leaves the merge-drop counter
// alone; with incremental decode off, it discards the cached decode and
// moves sketch_cache_merge_drops_total exactly once — not on merges into
// an undecoded receiver, and not on explicit DropCache calls.
func TestStoringMergeDropCounter(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	drops := obs.C("sketch_cache_merge_drops_total")
	keeps := obs.C("sketch_cache_merge_keeps_total")

	rng := rand.New(rand.NewSource(12))
	g := buildGrid(t, 1024, 2, 12)
	st := NewStoring(rng, g, 4, 256, 0, 0.01)
	st.Insert(geo.Point{3, 3})

	fork := st.CloneEmpty()
	fork.Insert(geo.Point{7, 7})

	// No cached decode on the receiver: the merge invalidates nothing.
	before := drops.Load()
	st.Merge(fork)
	if got := drops.Load(); got != before {
		t.Fatalf("merge into undecoded receiver moved the counter: %d -> %d", before, got)
	}

	// A live base with incremental decode on: kept, not dropped.
	st.Result()
	keepsBefore := keeps.Load()
	fork2 := st.CloneEmpty()
	fork2.Insert(geo.Point{9, 9})
	st.Merge(fork2)
	if got := drops.Load(); got != before {
		t.Fatalf("merge over a spliceable base moved the drop counter: %d -> %d", before, got)
	}
	if got := keeps.Load(); got != keepsBefore+1 {
		t.Fatalf("merge over a spliceable base: keeps %d -> %d, want +1", keepsBefore, got)
	}
	if s := st.CacheStats(); s.MergeKeeps != 1 || s.MergeDrops != 0 {
		t.Fatalf("CacheStats = %+v, want MergeKeeps 1, MergeDrops 0", s)
	}

	// Incremental decode off: the PR-2 behaviour — a live cached decode
	// is discarded and counted as exactly one merge drop.
	prev := SetIncremental(false)
	defer SetIncremental(prev)
	st.DropCache()
	st.Result()
	fork3 := st.CloneEmpty()
	fork3.Insert(geo.Point{11, 11})
	st.Merge(fork3)
	if got := drops.Load(); got != before+1 {
		t.Fatalf("merge over a cached decode (incremental off): counter %d -> %d, want +1", before, got)
	}
	if s := st.CacheStats(); s.MergeDrops != 1 {
		t.Fatalf("CacheStats.MergeDrops = %d, want 1", s.MergeDrops)
	}

	// An explicit DropCache is a plain drop, never a merge drop.
	st.Result()
	st.DropCache()
	if got := drops.Load(); got != before+1 {
		t.Fatalf("DropCache moved the merge-drop counter: %d -> %d", before+1, got)
	}
}

// TestStoringReset: a Reset instance is state-identical to a newborn
// CloneEmpty sibling — equal digest, zero epoch and net updates, no
// cached decode — and sketches a fresh shard exactly like one.
func TestStoringReset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := buildGrid(t, 1024, 2, 13)
	st := NewStoring(rng, g, 4, 256, 8, 0.01)
	virgin := st.CloneEmpty()

	for i := 0; i < 20; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(1024), 1 + rng.Int63n(1024)})
	}
	st.Result() // populate the cache so Reset must discard it
	if st.Digest() == virgin.Digest() {
		t.Fatal("updates left no trace")
	}

	st.Reset()
	if st.Digest() != virgin.Digest() {
		t.Fatal("Reset digest differs from a newborn sibling")
	}
	if st.Epoch() != 0 || st.NetUpdates() != 0 {
		t.Fatalf("Reset left epoch=%d netUpdates=%d", st.Epoch(), st.NetUpdates())
	}
	if st.CacheFresh() {
		t.Fatal("Reset must discard the cached decode")
	}

	// Re-sketching after Reset matches a fresh sibling sketching the same
	// stream (the worker-shard recycling contract of the sharded ingest).
	p := geo.Point{5, 6}
	st.Insert(p)
	virgin.Insert(p)
	if st.Digest() != virgin.Digest() {
		t.Fatal("post-Reset sketching diverged from a fresh sibling")
	}
}
