package sketch

import (
	"math/rand"
	"testing"
)

// FuzzSparseRecoveryNeverWrong drives a sketch with an arbitrary update
// script and checks the cardinal invariant: Decode either FAILs or
// returns exactly the true vector. The script bytes encode (key, delta)
// pairs.
func FuzzSparseRecoveryNeverWrong(f *testing.F) {
	f.Add([]byte{1, 1, 2, 1, 3, 1})
	f.Add([]byte{1, 1, 1, 255, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{9, 200, 9, 56, 4, 4, 4, 252})
	f.Fuzz(func(t *testing.T, script []byte) {
		sr := NewSparseRecovery(rand.New(rand.NewSource(7)), 8, 0.01, 1)
		want := map[uint64]int64{}
		for i := 0; i+1 < len(script); i += 2 {
			key := uint64(script[i]%32) + 1
			delta := int64(int8(script[i+1]))
			if delta == 0 {
				continue
			}
			sr.Update(key, []int64{int64(key) * 3}, delta)
			want[key] += delta
			if want[key] == 0 {
				delete(want, key)
			}
		}
		items, ok := sr.Decode()
		if !ok {
			if len(want) <= 8 {
				t.Fatalf("spurious FAIL on %d-sparse vector", len(want))
			}
			return
		}
		got := map[uint64]int64{}
		for _, it := range items {
			got[it.Key] = it.Count
			if it.Payload[0] != int64(it.Key)*3 {
				t.Fatalf("payload corrupted for key %d", it.Key)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("got %d keys, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d: got %d want %d", k, got[k], v)
			}
		}
	})
}
