package sketch

import (
	"math/rand"
	"reflect"
	"testing"

	"streambalance/internal/geo"
)

// compareIncCold asserts digest + Bytes + Result (including FAIL
// verdicts) equality between the incremental instance and a cold full
// peel of its sibling.
func compareIncCold(t *testing.T, inc, cold *Storing) {
	t.Helper()
	if inc.Digest() != cold.Digest() {
		t.Fatal("digest diverged between incremental and cold instances")
	}
	if inc.Bytes() != cold.Bytes() {
		t.Fatal("Bytes diverged between incremental and cold instances")
	}
	ri, oki := inc.Result() // spliced when a base exists
	cold.DropCache()        // also clears the base: force a cold full peel
	rc, okc := cold.Result()
	if oki != okc {
		t.Fatalf("verdicts diverged: incremental ok=%v, cold ok=%v", oki, okc)
	}
	if oki && !reflect.DeepEqual(ri, rc) {
		t.Fatalf("results diverged:\nincremental %+v\ncold        %+v", ri, rc)
	}
}

// TestStoringSplicedDecodeMatchesCold drives one instance through
// success → over-full FAIL → success transitions with interleaved
// extraction, checking after every batch that the spliced decode is
// bit-identical to a cold peel of a mirrored sibling — the
// deterministic core of FuzzIncrementalDecodeMatchesCold.
func TestStoringSplicedDecodeMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := buildGrid(t, 256, 2, 21)
	inc := NewStoring(rng, g, 3, 8, 8, 0.01)
	cold := inc.CloneEmpty()

	var live []geo.Point
	apply := func(p geo.Point, delta int64) {
		if delta > 0 {
			inc.Insert(p)
			cold.Insert(p)
			live = append(live, p)
		} else {
			inc.Delete(p)
			cold.Delete(p)
		}
	}

	// Warm: a few points, extract (cold miss), then splice after a
	// one-point dirty batch.
	for i := 0; i < 5; i++ {
		apply(geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)}, +1)
	}
	compareIncCold(t, inc, cold)
	apply(geo.Point{7, 7}, +1)
	compareIncCold(t, inc, cold)
	if s := inc.CacheStats(); s.Splices == 0 {
		t.Fatal("one-point dirty batch did not splice")
	}

	// Over-full: push the support past beta=8, FAIL both ways.
	for i := 0; i < 16; i++ {
		apply(geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)}, +1)
	}
	compareIncCold(t, inc, cold)
	if _, ok := inc.Result(); ok {
		t.Fatal("over-full sketch must FAIL")
	}

	// Deletions shrink the support back under the budget: success again.
	for len(live) > 6 {
		apply(live[len(live)-1], -1)
		live = live[:len(live)-1]
	}
	compareIncCold(t, inc, cold)
	if _, ok := inc.Result(); !ok {
		t.Fatal("shrunken sketch must decode again")
	}

	// Merge path: a fork's delta splices onto the kept base.
	forkI, forkC := inc.CloneEmpty(), cold.CloneEmpty()
	forkI.Insert(geo.Point{9, 9})
	forkC.Insert(geo.Point{9, 9})
	inc.Merge(forkI)
	cold.Merge(forkC)
	compareIncCold(t, inc, cold)
	if s := inc.CacheStats(); s.MergeKeeps == 0 {
		t.Fatal("merge over a live base did not keep it")
	}
}

// FuzzIncrementalDecodeMatchesCold drives random insert / delete /
// fork-merge / extract interleavings — including unmatched deletions
// (negative-count FAILs) and over-full states — and asserts after every
// extraction that digest, Bytes and Result (success payloads and FAIL
// verdicts alike) are identical between the incremental instance and a
// cold full peel of a mirrored sibling. Run under -race by check-incr.
func FuzzIncrementalDecodeMatchesCold(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 0, 3, 0, 1, 3, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3})
	f.Add(int64(2), []byte{0, 3, 4, 0, 3, 1, 1, 1, 3, 2, 2, 3, 0, 4, 3})
	f.Add(int64(3), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 1, 1, 1, 1, 1, 1, 3, 2, 3})
	f.Add(int64(4), []byte{3, 4, 3, 0, 0, 2, 0, 3, 2, 3, 1, 3})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		rng := rand.New(rand.NewSource(seed))
		g := buildGrid(t, 256, 2, seed^0x5eed)
		inc := NewStoring(rng, g, 3, 8, 8, 0.01)
		cold := inc.CloneEmpty()

		var live []geo.Point
		randPoint := func() geo.Point {
			return geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)}
		}
		for _, b := range script {
			switch b % 5 {
			case 0: // insert
				p := randPoint()
				inc.Insert(p)
				cold.Insert(p)
				live = append(live, p)
			case 1: // delete: matched when possible, else an unmatched one
				var p geo.Point
				if len(live) > 0 {
					i := rng.Intn(len(live))
					p = live[i]
					live = append(live[:i], live[i+1:]...)
				} else {
					p = randPoint() // negative count: FAIL on both sides
				}
				inc.Delete(p)
				cold.Delete(p)
			case 2: // fork a sibling pair, update it, merge back
				forkI, forkC := inc.CloneEmpty(), cold.CloneEmpty()
				for k := rng.Intn(3); k > 0; k-- {
					p := randPoint()
					forkI.Insert(p)
					forkC.Insert(p)
					live = append(live, p)
				}
				inc.Merge(forkI) // k may be 0: the pristine-skip path
				cold.Merge(forkC)
			case 3: // extract and compare (incremental vs cold full peel)
				compareIncCold(t, inc, cold)
			case 4: // extra incremental extraction: more splice traffic
				inc.Result()
			}
		}
		compareIncCold(t, inc, cold)
	})
}

// TestSplicedResultNoArenaAliasing pins the arena-independence of
// spliced results: a result produced by the differential decode must
// stay intact while the same arena is churned by other decodes and the
// live slabs keep moving — i.e. it never aliases arena scratch or slab
// memory.
func TestSplicedResultNoArenaAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := buildGrid(t, 256, 2, 31)
	st := NewStoring(rng, g, 3, 16, 16, 0.01)
	arena := NewDecodeArena()

	for i := 0; i < 6; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)})
	}
	if _, ok := st.ResultArena(arena); !ok {
		t.Fatal("warm decode failed")
	}
	st.Insert(geo.Point{11, 12})
	res, ok := st.ResultArena(arena) // spliced
	if !ok {
		t.Fatal("spliced decode failed")
	}
	if st.CacheStats().Splices == 0 {
		t.Fatal("expected a spliced decode")
	}
	snap := deepCopyResult(res)

	// Churn the arena with decodes of an unrelated, larger sketch, and
	// keep mutating + splicing st itself.
	other := NewStoring(rand.New(rand.NewSource(32)), g, 5, 64, 64, 0.01)
	for i := 0; i < 40; i++ {
		other.Insert(geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)})
	}
	other.ResultArena(arena)
	st.Insert(geo.Point{13, 14})
	st.ResultArena(arena)
	other.DropCache()
	other.ResultArena(arena)

	if !reflect.DeepEqual(snap, deepCopyResult(res)) {
		t.Fatal("spliced result mutated by later arena use")
	}
}

func deepCopyResult(r StoringResult) StoringResult {
	cp := StoringResult{Level: r.Level}
	for _, c := range r.Cells {
		idx := append([]int64(nil), c.Index...)
		cp.Cells = append(cp.Cells, CellCount{Key: c.Key, Index: idx, Count: c.Count})
	}
	for _, p := range r.Points {
		cp.Points = append(cp.Points, PointCount{P: append(geo.Point(nil), p.P...), Count: p.Count})
	}
	return cp
}

// TestCacheBytesIncludesBase: the CacheBytes gauge must account for the
// differential base (slab snapshots + cached item lists) on top of the
// cached result, stay out of Bytes (the Theorem 4.5 space accounting),
// and return to zero on DropCache.
func TestCacheBytesIncludesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := buildGrid(t, 256, 2, 41)
	st := NewStoring(rng, g, 3, 16, 16, 0.01)
	for i := 0; i < 8; i++ {
		st.Insert(geo.Point{1 + rng.Int63n(255), 1 + rng.Int63n(255)})
	}
	bytes0 := st.Bytes()

	st.Result()
	// The base snapshots mirror both slabs, so the gauge must be at least
	// the sketch's own footprint while a base is live.
	if cb := st.CacheBytes(); cb < bytes0 {
		t.Fatalf("CacheBytes %d < Bytes %d: base snapshots unaccounted", cb, bytes0)
	}
	st.Insert(geo.Point{3, 4})
	st.Result() // spliced: base refreshed, still accounted
	if cb := st.CacheBytes(); cb < bytes0 {
		t.Fatalf("CacheBytes after splice %d < Bytes %d", cb, bytes0)
	}
	if st.Bytes() != bytes0 {
		t.Fatal("cache/base lifecycle changed Bytes")
	}
	st.DropCache()
	if cb := st.CacheBytes(); cb != 0 {
		t.Fatalf("DropCache left CacheBytes = %d, want 0", cb)
	}

	// With incremental decode off no snapshots are retained: the gauge
	// holds only the decoded lists, strictly below the slab footprint.
	prev := SetIncremental(false)
	defer SetIncremental(prev)
	st.Result()
	if cb := st.CacheBytes(); cb == 0 || cb >= bytes0 {
		t.Fatalf("CacheBytes with incremental off = %d, want in (0, %d)", cb, bytes0)
	}
	st.DropCache()
	if st.CacheBytes() != 0 {
		t.Fatal("DropCache (incremental off) left CacheBytes nonzero")
	}
}
