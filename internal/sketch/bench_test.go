package sketch

import (
	"math/rand"
	"testing"

	"streambalance/internal/testutil"
)

func BenchmarkSparseUpdate(b *testing.B) {
	for _, s := range []int{256, 4096} {
		b.Run(testutil.BenchName("s", s)+"/scalar", func(b *testing.B) {
			sr := NewSparseRecovery(rand.New(rand.NewSource(1)), s, 0.01, 2)
			payload := []int64{7, 9}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr.Update(uint64(i), payload, 1)
			}
		})
		b.Run(testutil.BenchName("s", s)+"/batch", func(b *testing.B) {
			sr := NewSparseRecovery(rand.New(rand.NewSource(1)), s, 0.01, 2)
			const chunk = 512
			keys := make([]uint64, chunk)
			payload := make([]int64, chunk*2)
			deltas := make([]int64, chunk)
			for i := 0; i < chunk; i++ {
				keys[i] = uint64(i) * 0x9e3779b97f4a7c15
				payload[2*i], payload[2*i+1] = 7, 9
				deltas[i] = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += chunk {
				n := chunk
				if rem := b.N - i; rem < n {
					n = rem
				}
				sr.UpdateN(keys[:n], payload[:n*2], deltas[:n])
			}
		})
	}
}

// benchSketch builds an s-sparse sketch loaded with exactly s items.
func benchSketch(s int) *SparseRecovery {
	rng := rand.New(rand.NewSource(2))
	sr := NewSparseRecovery(rng, s, 0.01, 2)
	for i := 0; i < s; i++ {
		sr.Update(uint64(rng.Int63()), []int64{1, 2}, 1)
	}
	return sr
}

func BenchmarkSparseDecode(b *testing.B) {
	for _, s := range []int{64, 1024} {
		b.Run(testutil.BenchName("s", s), func(b *testing.B) {
			sr := benchSketch(s)
			arena := NewDecodeArena()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sr.DecodeWith(arena); !ok {
					b.Fatal("decode failed")
				}
			}
		})
	}
}

// BenchmarkSparseDecodeReference times the retained round-based scan
// decoder — the baseline the worklist decoder's speedup is measured
// against.
func BenchmarkSparseDecodeReference(b *testing.B) {
	for _, s := range []int{64, 1024} {
		b.Run(testutil.BenchName("s", s), func(b *testing.B) {
			sr := benchSketch(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sr.DecodeReference(); !ok {
					b.Fatal("decode failed")
				}
			}
		})
	}
}
