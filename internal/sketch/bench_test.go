package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSparseUpdate(b *testing.B) {
	for _, s := range []int{256, 4096} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			sr := NewSparseRecovery(rand.New(rand.NewSource(1)), s, 0.01, 2)
			payload := []int64{7, 9}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr.Update(uint64(i), payload, 1)
			}
		})
	}
}

func BenchmarkSparseDecode(b *testing.B) {
	for _, s := range []int{64, 1024} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			sr := NewSparseRecovery(rng, s, 0.01, 2)
			for i := 0; i < s; i++ {
				sr.Update(uint64(rng.Int63()), []int64{1, 2}, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sr.Decode(); !ok {
					b.Fatal("decode failed")
				}
			}
		})
	}
}
