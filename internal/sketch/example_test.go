package sketch_test

import (
	"fmt"
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/sketch"
)

// ExampleStoring shows the Lemma 4.2 contract: after arbitrary
// insertions and deletions, the sketch reports the surviving cells,
// counts and points exactly — or FAILs, never lies.
func ExampleStoring() {
	rng := rand.New(rand.NewSource(1))
	g := grid.New(64, 2, rng)
	st := sketch.NewStoring(rng, g, 2, 32, 16, 0.01)

	st.Insert(geo.Point{10, 10})
	st.Insert(geo.Point{10, 11})
	st.Insert(geo.Point{50, 50})
	st.Delete(geo.Point{50, 50}) // cancelled exactly

	res, ok := st.Result()
	fmt.Println("decoded:", ok)
	fmt.Println("surviving points:", len(res.Points))
	var total int64
	for _, c := range res.Cells {
		total += c.Count
	}
	fmt.Println("cell mass:", total)
	// Output:
	// decoded: true
	// surviving points: 2
	// cell mass: 2
}

// ExampleSparseRecovery demonstrates the linear s-sparse recovery core.
func ExampleSparseRecovery() {
	rng := rand.New(rand.NewSource(2))
	sr := sketch.NewSparseRecovery(rng, 4, 0.01, 0)
	sr.Update(7, nil, 3)
	sr.Update(9, nil, 1)
	sr.Update(9, nil, -1) // key 9 vanishes

	items, ok := sr.Decode()
	fmt.Println("ok:", ok, "items:", len(items))
	fmt.Println("key:", items[0].Key, "count:", items[0].Count)
	// Output:
	// ok: true items: 1
	// key: 7 count: 3
}
