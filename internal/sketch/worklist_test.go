package sketch

import (
	"math/rand"
	"sort"
	"testing"

	"streambalance/internal/hashing"
)

// sortItems canonicalizes a decode result for comparison: keys are
// unique within a successful decode, so key order is a total order. The
// worklist and reference decoders extract the same item set but in
// different traversal orders.
func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
}

func itemsEqual(t *testing.T, ctx string, got, want []Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key != w.Key || g.Count != w.Count || len(g.Payload) != len(w.Payload) {
			t.Fatalf("%s item %d: got %+v want %+v", ctx, i, g, w)
		}
		for j := range g.Payload {
			if g.Payload[j] != w.Payload[j] {
				t.Fatalf("%s item %d payload %d: got %d want %d", ctx, i, j, g.Payload[j], w.Payload[j])
			}
		}
	}
}

// TestDecodeWorklistMatchesReference sweeps loads from empty through
// decodable to over-full and pins the worklist decoder to the retained
// reference: same ok-flag, same FAIL cases, same items.
func TestDecodeWorklistMatchesReference(t *testing.T) {
	arena := NewDecodeArena() // shared across all cases: reuse must not leak state
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Intn(24)
		pd := rng.Intn(3)
		sr := NewSparseRecovery(rng, s, 0.01, pd)
		n := rng.Intn(4 * s)
		for i := 0; i < n; i++ {
			k := uint64(rng.Int63n(int64(3*s) + 1))
			d := int64(rng.Intn(9) - 4)
			var payload []int64
			if pd > 0 {
				payload = make([]int64, pd)
				for j := range payload {
					payload[j] = int64(k)*7 + int64(j)
				}
			}
			sr.Update(k, payload, d)
		}
		want, wantOK := sr.DecodeReference()
		got, gotOK := sr.DecodeWith(arena)
		if gotOK != wantOK {
			t.Fatalf("seed %d: worklist ok=%v reference ok=%v", seed, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		sortItems(want)
		sortItems(got)
		itemsEqual(t, "worklist vs reference", got, want)
		// Decode must not have modified the sketch: both decoders again.
		if d2, ok2 := sr.Decode(); !ok2 || len(d2) != len(got) {
			t.Fatalf("seed %d: second decode diverged (ok=%v n=%d)", seed, ok2, len(d2))
		}
	}
}

// TestDecodeWorklistNegativeAndLargeCounts exercises the inverse-table
// boundary: counts inside the table, at its edge, beyond it (Fermat
// fallback) and negative.
func TestDecodeWorklistNegativeAndLargeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sr := NewSparseRecovery(rng, 8, 0.01, 1)
	counts := []int64{1, -3, invTabSize, invTabSize + 1, -(invTabSize + 5), 1 << 40}
	for i, c := range counts {
		sr.Update(uint64(i+1), []int64{int64(i) * 11}, c)
	}
	want, wantOK := sr.DecodeReference()
	got, gotOK := sr.Decode()
	if !wantOK || !gotOK {
		t.Fatalf("decode failed: ref=%v worklist=%v", wantOK, gotOK)
	}
	sortItems(want)
	sortItems(got)
	itemsEqual(t, "large/negative counts", got, want)
}

// TestInvCountField pins the table (and its negative/fallback branches)
// to the Fermat inverse it replaces.
func TestInvCountField(t *testing.T) {
	invTabOnce.Do(initInvTab)
	cases := []int64{1, 2, 3, 17, 999, invTabSize, invTabSize + 1, invTabSize * 3,
		-1, -2, -invTabSize, -(invTabSize + 1), 1 << 35, -(1 << 35)}
	for _, c := range cases {
		want := hashing.InvMod(hashing.ToField(c))
		if got := invCountField(c); got != want {
			t.Fatalf("invCountField(%d) = %d, want %d", c, got, want)
		}
		if p := hashing.MulMod(invCountField(c), hashing.ToField(c)); p != 1 {
			t.Fatalf("invCountField(%d) is not an inverse (product %d)", c, p)
		}
	}
}

// TestDecodeArenaReuseAcrossShapes checks one arena serving sketches of
// different rows/width/payload shapes back to back.
func TestDecodeArenaReuseAcrossShapes(t *testing.T) {
	arena := NewDecodeArena()
	rng := rand.New(rand.NewSource(5))
	big := NewSparseRecovery(rng, 64, 0.001, 3)
	small := NewSparseRecovery(rng, 2, 0.2, 0)
	for i := 0; i < 50; i++ {
		big.Update(uint64(i+1), []int64{int64(i), -int64(i), 7}, 2)
	}
	small.Update(9, nil, 5)
	for round := 0; round < 3; round++ {
		if items, ok := big.DecodeWith(arena); !ok || len(items) != 50 {
			t.Fatalf("round %d big: ok=%v n=%d", round, ok, len(items))
		}
		if items, ok := small.DecodeWith(arena); !ok || len(items) != 1 || items[0].Key != 9 {
			t.Fatalf("round %d small: ok=%v items=%v", round, ok, items)
		}
	}
}

// TestDecodeResultsOutliveArena pins the ownership rule: items returned
// by DecodeWith must stay intact after the arena is reused for another
// sketch (the Storing cache retains them indefinitely).
func TestDecodeResultsOutliveArena(t *testing.T) {
	arena := NewDecodeArena()
	rng := rand.New(rand.NewSource(6))
	a := NewSparseRecovery(rng, 4, 0.01, 2)
	a.Update(42, []int64{5, -6}, 3)
	got, ok := a.DecodeWith(arena)
	if !ok || len(got) != 1 {
		t.Fatalf("decode: ok=%v n=%d", ok, len(got))
	}
	// Churn the arena with a different decode.
	b := NewSparseRecovery(rng, 16, 0.01, 2)
	for i := 0; i < 16; i++ {
		b.Update(uint64(1000+i), []int64{int64(i), int64(i)}, 1)
	}
	if _, ok := b.DecodeWith(arena); !ok {
		t.Fatal("churn decode failed")
	}
	if got[0].Key != 42 || got[0].Count != 3 || got[0].Payload[0] != 5 || got[0].Payload[1] != -6 {
		t.Fatalf("item corrupted by arena reuse: %+v", got[0])
	}
}

// TestPureAtNoAllocOnImpureCandidate pins the satellite ordering fix:
// probing a bucket that fails fingerprint or divisibility verification
// must not allocate a payload slice, in both decoders' purity tests.
func TestPureAtNoAllocOnImpureCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sr := NewSparseRecovery(rng, 4, 0.01, 2)
	// Two colliding keys in every bucket they share: no bucket holding
	// both is pure.
	sr.Update(1, []int64{1, 2}, 1)
	sr.Update(2, []int64{3, 4}, 1)
	// Find an impure, non-empty bucket.
	var impure []int64
	for i := 0; i < len(sr.slab); i += sr.stride {
		b := sr.slab[i : i+sr.stride]
		if b[0] != 0 {
			if _, ok := sr.pureAt(b); !ok {
				impure = b
				break
			}
		}
	}
	if impure == nil {
		t.Skip("no impure bucket in this layout")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := sr.pureAt(impure); ok {
			t.Fatal("bucket became pure")
		}
	}); allocs != 0 {
		t.Fatalf("pureAt allocates %.1f objects on an impure candidate, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := sr.pureKeyAt(impure); ok {
			t.Fatal("bucket became pure")
		}
	}); allocs != 0 {
		t.Fatalf("pureKeyAt allocates %.1f objects, want 0", allocs)
	}
}

// TestUpdateNMatchesScalar pins the 4-lane batched sketch update to the
// scalar path: same keys/payloads/deltas, bit-identical slab digests,
// across ragged tails and zero deltas.
func TestUpdateNMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 127} {
		rng := rand.New(rand.NewSource(int64(n) + 1))
		ref := NewSparseRecovery(rng, 16, 0.01, 2)
		bat := ref.CloneEmpty()
		keys := make([]uint64, n)
		payload := make([]int64, 2*n)
		deltas := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = rng.Uint64()
			payload[2*i] = rng.Int63n(100) - 50
			payload[2*i+1] = rng.Int63n(100) - 50
			deltas[i] = int64(rng.Intn(7) - 3) // includes zeros
		}
		for i := 0; i < n; i++ {
			ref.Update(keys[i], payload[2*i:2*i+2], deltas[i])
		}
		bat.UpdateN(keys, payload, deltas)
		if ref.Digest() != bat.Digest() {
			t.Fatalf("n=%d: UpdateN digest %x != scalar %x", n, bat.Digest(), ref.Digest())
		}
	}
}

// TestStoringUpdateKeyedNMatchesScalar drives both a cell-recovery and
// a point-recovery Storing through the columnar entry point and checks
// digest equality with per-op UpdateKeyed.
func TestStoringUpdateKeyedNMatchesScalar(t *testing.T) {
	g := buildGrid(t, 64, 2, 11)
	mk := func(seed int64, alpha, beta int) (*Storing, *Storing) {
		rng := rand.New(rand.NewSource(seed))
		ref := NewStoring(rng, g, 2, alpha, beta, 0.01)
		return ref, ref.CloneEmpty()
	}
	const n = 33
	rng := rand.New(rand.NewSource(12))
	cellKeys := make([]uint64, n)
	cellIdx := make([]int64, n*g.Dim)
	pointKeys := make([]uint64, n)
	points := make([]int64, n*g.Dim)
	deltas := make([]int64, n)
	pts := make([][]int64, n)
	idxs := make([][]int64, n)
	for i := 0; i < n; i++ {
		p := []int64{rng.Int63n(64), rng.Int63n(64)}
		pts[i] = p
		copy(points[i*g.Dim:], p)
		idx := g.CellIndex(p, 2)
		idxs[i] = idx
		copy(cellIdx[i*g.Dim:], idx)
		cellKeys[i] = g.KeyOf(2, idx)
		if i%5 == 0 {
			deltas[i] = -1
		} else {
			deltas[i] = 1
		}
	}
	cellsRef, cellsBat := mk(1, 32, 0)
	ptsRef, ptsBat := mk(2, 0, 32)
	for i := 0; i < n; i++ {
		pointKeys[i] = ptsRef.PointKey(pts[i])
		cellsRef.UpdateKeyed(cellKeys[i], idxs[i], 0, pts[i], deltas[i])
		ptsRef.UpdateKeyed(0, idxs[i], pointKeys[i], pts[i], deltas[i])
	}
	cellsBat.UpdateKeyedN(cellKeys, cellIdx, nil, nil, deltas)
	ptsBat.UpdateKeyedN(nil, nil, pointKeys, points, deltas)
	if cellsRef.Digest() != cellsBat.Digest() {
		t.Fatal("cell-side UpdateKeyedN digest mismatch")
	}
	if ptsRef.Digest() != ptsBat.Digest() {
		t.Fatal("point-side UpdateKeyedN digest mismatch")
	}
	if cellsRef.NetUpdates() != cellsBat.NetUpdates() {
		t.Fatalf("netUpdates %d vs %d", cellsBat.NetUpdates(), cellsRef.NetUpdates())
	}
}

// FuzzDecodeWorklistMatchesReference drives random insert/delete
// multisets through one sketch and requires the worklist and reference
// decoders to agree exactly: ok-flag, FAIL cases, and (sorted) items.
func FuzzDecodeWorklistMatchesReference(f *testing.F) {
	f.Add(int64(1), []byte{1, 1, 2, 1, 3, 1})
	f.Add(int64(2), []byte{1, 1, 1, 255, 2, 3})
	f.Add(int64(3), []byte{})
	f.Add(int64(4), []byte{9, 200, 9, 56, 4, 4, 4, 252, 17, 1, 18, 1, 19, 1, 20, 1, 21, 1})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + int(uint(seed)%12)
		sr := NewSparseRecovery(rng, s, 0.01, 1)
		for i := 0; i+1 < len(script); i += 2 {
			key := uint64(script[i]%64) + 1
			delta := int64(int8(script[i+1]))
			sr.Update(key, []int64{int64(key) * 3}, delta)
		}
		want, wantOK := sr.DecodeReference()
		got, gotOK := sr.Decode()
		if gotOK != wantOK {
			t.Fatalf("worklist ok=%v, reference ok=%v", gotOK, wantOK)
		}
		if !gotOK {
			return
		}
		sortItems(want)
		sortItems(got)
		itemsEqual(t, "fuzz worklist vs reference", got, want)
	})
}
