package sketch

import (
	"math/rand"
	"testing"
)

// randBatch builds n (key, payload, delta) columns with nKeys distinct
// keys (duplicates guaranteed when n > nKeys) and deltas in [-3, 3]
// including zero.
func randBatch(rng *rand.Rand, n, nKeys, pd int) (keys []uint64, payload []int64, deltas []int64) {
	pool := make([]uint64, nKeys)
	for i := range pool {
		pool[i] = rng.Uint64()
	}
	keys = make([]uint64, n)
	deltas = make([]int64, n)
	if pd > 0 {
		payload = make([]int64, n*pd)
	}
	for t := 0; t < n; t++ {
		keys[t] = pool[rng.Intn(nKeys)]
		deltas[t] = int64(rng.Intn(7)) - 3
		for j := 0; j < pd; j++ {
			payload[t*pd+j] = int64(rng.Intn(2001)) - 1000
		}
	}
	return
}

// TestUpdateNOrderedMatchesScatter pins the bucket-ordered kernel against
// the per-op and 4-lane scatter paths: for batch sizes on both sides of
// the orderedMinRows threshold, payload dims 0 and 2, and deltas spanning
// negative and zero, all three write schedules must leave bit-identical
// slabs.
func TestUpdateNOrderedMatchesScatter(t *testing.T) {
	for _, pd := range []int{0, 2} {
		for _, n := range []int{1, 3, orderedMinRows - 1, orderedMinRows, 257, 1024} {
			rng := rand.New(rand.NewSource(int64(1000*pd + n)))
			base := NewSparseRecovery(rand.New(rand.NewSource(7)), 32, 0.01, pd)
			keys, payload, deltas := randBatch(rng, n, 5+rng.Intn(n+1), pd)

			perOp := base.CloneEmpty()
			for i := 0; i < n; i++ {
				var row []int64
				if pd > 0 {
					row = payload[i*pd : (i+1)*pd]
				}
				perOp.Update(keys[i], row, deltas[i])
			}

			ordered := base.CloneEmpty()
			prev := SetBucketOrder(true)
			ordered.UpdateN(keys, payload, deltas)
			SetBucketOrder(false)
			lanes := base.CloneEmpty()
			lanes.UpdateN(keys, payload, deltas)
			SetBucketOrder(prev)

			if d1, d2 := perOp.Digest(), ordered.Digest(); d1 != d2 {
				t.Fatalf("pd=%d n=%d: ordered digest %x != per-op %x", pd, n, d2, d1)
			}
			if d1, d2 := perOp.Digest(), lanes.Digest(); d1 != d2 {
				t.Fatalf("pd=%d n=%d: lanes digest %x != per-op %x", pd, n, d2, d1)
			}
		}
	}
}

// TestUpdateScaledNMatchesUpdateN verifies the pre-aggregated entry
// point: manually coalescing a batch by key (summing deltas and
// delta-scaled payload rows) and feeding the sums through UpdateScaledN
// must be bit-identical to the raw batch through UpdateN — including
// coalesced rows whose delta sum cancels to zero while the payload sum
// does not, the case a naive zero-delta skip would drop.
func TestUpdateScaledNMatchesUpdateN(t *testing.T) {
	const pd = 3
	for _, n := range []int{2, 16, orderedMinRows * 4} {
		rng := rand.New(rand.NewSource(int64(n)))
		base := NewSparseRecovery(rand.New(rand.NewSource(11)), 24, 0.01, pd)
		keys, payload, deltas := randBatch(rng, n, 1+n/4, pd)
		// Force a zero-sum key with non-cancelling payload: +1 with payload
		// p and -1 with payload q != p.
		keys = append(keys, 0xdeadbeef, 0xdeadbeef)
		payload = append(payload, 5, 6, 7, 1, 2, 3)
		deltas = append(deltas, 1, -1)

		raw := base.CloneEmpty()
		raw.UpdateN(keys, payload, deltas)

		// Coalesce by key in first-occurrence order, exactly as the ingest
		// coalescer does.
		idx := make(map[uint64]int)
		var cKeys []uint64
		var cScaled, cDeltas []int64
		for t := range keys {
			i, seen := idx[keys[t]]
			if !seen {
				i = len(cKeys)
				idx[keys[t]] = i
				cKeys = append(cKeys, keys[t])
				cScaled = append(cScaled, make([]int64, pd)...)
				cDeltas = append(cDeltas, 0)
			}
			cDeltas[i] += deltas[t]
			for j := 0; j < pd; j++ {
				cScaled[i*pd+j] += deltas[t] * payload[t*pd+j]
			}
		}

		for _, ordered := range []bool{true, false} {
			co := base.CloneEmpty()
			prev := SetBucketOrder(ordered)
			co.UpdateScaledN(cKeys, cScaled, cDeltas)
			SetBucketOrder(prev)
			if d1, d2 := raw.Digest(), co.Digest(); d1 != d2 {
				t.Fatalf("n=%d ordered=%v: coalesced digest %x != raw %x", n, ordered, d2, d1)
			}
		}
	}
}

// TestUpdateNDuplicateHeavyBatch is the dedicated duplicate-heavy
// equivalence case: a large batch concentrated on a handful of keys (the
// coarse-grid-level shape that motivates coalescing) must decode to the
// same items whether applied per-op, bucket-ordered, or via the scatter
// lanes — and the slabs must be bit-identical.
func TestUpdateNDuplicateHeavyBatch(t *testing.T) {
	const n, nKeys, pd = 4096, 7, 2
	rng := rand.New(rand.NewSource(99))
	base := NewSparseRecovery(rand.New(rand.NewSource(13)), 16, 0.001, pd)
	keys, payload, deltas := randBatch(rng, n, nKeys, pd)
	// Keep net counts nonzero so Decode has something to recover.
	for i := 0; i < nKeys; i++ {
		keys = append(keys, keys[i])
		payload = append(payload, int64(i), int64(-i))
		deltas = append(deltas, int64(100+i))
	}

	perOp := base.CloneEmpty()
	for i := range keys {
		perOp.Update(keys[i], payload[i*pd:(i+1)*pd], deltas[i])
	}
	wantItems, wantOK := perOp.Decode()

	for _, ordered := range []bool{true, false} {
		got := base.CloneEmpty()
		prev := SetBucketOrder(ordered)
		got.UpdateN(keys, payload, deltas)
		SetBucketOrder(prev)
		if d1, d2 := perOp.Digest(), got.Digest(); d1 != d2 {
			t.Fatalf("ordered=%v: digest %x != per-op %x", ordered, d2, d1)
		}
		items, ok := got.Decode()
		if ok != wantOK || len(items) != len(wantItems) {
			t.Fatalf("ordered=%v: decode ok=%v n=%d, want ok=%v n=%d",
				ordered, ok, len(items), wantOK, len(wantItems))
		}
	}
}

// TestUpdateNReusedScratchIndependent runs two different batches back to
// back through one sketch's ordered kernel and checks the reused scratch
// buffers leak nothing between calls (second batch smaller than first).
func TestUpdateNReusedScratchIndependent(t *testing.T) {
	const pd = 1
	base := NewSparseRecovery(rand.New(rand.NewSource(21)), 16, 0.01, pd)
	rng := rand.New(rand.NewSource(22))
	k1, p1, d1 := randBatch(rng, 512, 9, pd)
	k2, p2, d2 := randBatch(rng, orderedMinRows+5, 3, pd)

	seq := base.CloneEmpty()
	seq.UpdateN(k1, p1, d1)
	seq.UpdateN(k2, p2, d2)

	perOp := base.CloneEmpty()
	for i := range k1 {
		perOp.Update(k1[i], p1[i*pd:(i+1)*pd], d1[i])
	}
	for i := range k2 {
		perOp.Update(k2[i], p2[i*pd:(i+1)*pd], d2[i])
	}
	if a, b := seq.Digest(), perOp.Digest(); a != b {
		t.Fatalf("sequential batches digest %x != per-op %x", a, b)
	}
}
