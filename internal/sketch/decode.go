// Worklist peeling decoder for SparseRecovery.
//
// The reference decoder (DecodeReference) repeatedly rescans the whole
// rows×width slab until a round extracts nothing — O(rows·width) bucket
// probes per peeled item in the worst case, with a full slab clone and a
// payload allocation per candidate on top. The decoder here is the
// standard IBLT worklist formulation: a FIFO of candidate buckets seeded
// with every non-empty bucket, where peeling an item enqueues only the
// ≤ rows buckets its removal touched. Each bucket is probed O(1) times
// per state change, the ~120-multiply InvMod of every purity test is
// replaced by a precomputed small-integer inverse table (net counts are
// almost always tiny), and all scratch — working slab, queue, queued
// marks — lives in a reusable DecodeArena so repeated decodes allocate
// only the items they return.
//
// Peeling is confluent: the set of peelable items does not depend on the
// order buckets are processed (the unpeelable remainder is the unique
// 2-core of the bucket hypergraph), so the worklist decoder returns the
// same items, ok-flag and FAIL cases as the reference on every input.
// FuzzDecodeWorklistMatchesReference and TestDecodeWorklistMatchesReference
// pin that equivalence under -race.
package sketch

import (
	"sync"

	"streambalance/internal/hashing"
)

// invTabSize bounds the precomputed inverse table: ToField inverses for
// net counts with |count| ≤ invTabSize are a table load instead of a
// Fermat exponentiation. Net multiplicities in the streaming workloads
// are almost always single digits; 1024 covers heavy cells too.
const invTabSize = 1024

var (
	invTabOnce sync.Once
	invTab     [invTabSize + 1]uint64 // invTab[n] = InvMod(n), n in 1..invTabSize
)

// initInvTab fills the inverse table with one batched-inversion pass
// (Montgomery's trick): n products, one InvMod, n more products —
// instead of n full exponentiations.
func initInvTab() {
	prefix := make([]uint64, invTabSize+1)
	prefix[0] = 1
	for i := 1; i <= invTabSize; i++ {
		prefix[i] = hashing.MulMod(prefix[i-1], uint64(i))
	}
	inv := hashing.InvMod(prefix[invTabSize])
	for i := invTabSize; i >= 1; i-- {
		invTab[i] = hashing.MulMod(inv, prefix[i-1])
		inv = hashing.MulMod(inv, uint64(i))
	}
}

// invCountField returns InvMod(ToField(count)) for count ≢ 0 (mod p):
// a table load for |count| ≤ invTabSize (inverse of a negative count is
// the field negation of the positive inverse), the Fermat path beyond.
func invCountField(count int64) uint64 {
	n := count
	if n < 0 {
		n = -n
	}
	if n >= 1 && n <= invTabSize {
		if count < 0 {
			return hashing.MersennePrime61 - invTab[n]
		}
		return invTab[n]
	}
	return hashing.InvMod(hashing.ToField(count))
}

// DecodeArena holds the reusable scratch of the worklist decoder: the
// working slab copy, the candidate-bucket queue and its membership
// marks. Buffers grow to the largest sketch decoded and are reused
// across calls; one arena serves sketches of any shape. An arena must
// not be used from two goroutines at once — the extraction pipeline
// keeps one per decode worker.
type DecodeArena struct {
	slab  []int64
	queue []int32
	mark  []bool

	// Scratch of the sparse differential peel (peelSparse): a second
	// slab and mark buffer kept ALL-ZERO between uses — the sparse path
	// writes only the journaled buckets and re-zeroes exactly what it
	// wrote before returning, so a splice never pays an O(slab) clear or
	// copy. The full-peel buffers above can't be shared: a cold decode
	// leaves arbitrary junk in them.
	zslab []int64
	zmark []bool
	touch []int32 // write set of the sparse peel's drain
}

// NewDecodeArena returns an empty arena; buffers are allocated on first
// use and retained for reuse.
func NewDecodeArena() *DecodeArena { return &DecodeArena{} }

// grab sizes the arena for a sketch with slabLen slab words and buckets
// buckets, returning the working buffers (queue empty, marks cleared).
func (a *DecodeArena) grab(slabLen, buckets int) (slab []int64, mark []bool) {
	if cap(a.slab) < slabLen {
		a.slab = make([]int64, slabLen)
	}
	if cap(a.mark) < buckets {
		a.mark = make([]bool, buckets)
	}
	if cap(a.queue) < buckets {
		a.queue = make([]int32, 0, buckets)
	}
	slab = a.slab[:slabLen]
	mark = a.mark[:buckets]
	clear(mark)
	return slab, mark
}

// grabSparse returns the zero-invariant buffers of the sparse
// differential peel. Growth allocates fresh (zeroed) memory; shrinking
// reslices — the prefix is zero because every user restores the
// invariant before returning.
func (a *DecodeArena) grabSparse(slabLen, buckets int) (slab []int64, mark []bool) {
	if cap(a.zslab) < slabLen {
		a.zslab = make([]int64, slabLen)
	}
	if cap(a.zmark) < buckets {
		a.zmark = make([]bool, buckets)
	}
	if cap(a.queue) < buckets {
		a.queue = make([]int32, 0, buckets)
	}
	return a.zslab[:slabLen], a.zmark[:buckets]
}

// pureKeyAt is the worklist decoder's purity test on the bucket words b:
// if the bucket holds exactly one key it returns that key and its
// fingerprint hash (reused by the peel-out subtraction). It allocates
// nothing and never touches the payload words — payload divisibility is
// checked by the caller only after the fingerprint verifies.
func (sr *SparseRecovery) pureKeyAt(b []int64) (key, fpk uint64, ok bool) {
	count := b[0]
	if count == 0 {
		return 0, 0, false
	}
	cf := hashing.ToField(count)
	if cf == 0 {
		return 0, 0, false
	}
	key = hashing.MulMod(uint64(b[1]), invCountField(count))
	fpk = sr.fpHash.Eval(key)
	if hashing.MulMod(cf, fpk) != uint64(b[2]) {
		return 0, 0, false
	}
	return key, fpk, true
}

// Decode recovers the full vector if it is ≤ s sparse. On success it
// returns all nonzero items; on failure (over-full or an internal hash
// verification failed) ok is false and items must be ignored. Decode
// does not modify the sketch. Equivalent to DecodeWith with a private
// arena; callers decoding many sketches should pass a reused arena.
func (sr *SparseRecovery) Decode() (items []Item, ok bool) {
	return sr.DecodeWith(nil)
}

// DecodeWith is Decode running its scratch out of a (nil allocates a
// transient arena). The returned items and payloads are freshly
// allocated — they are safe to retain (the Storing decode cache does)
// and never alias arena memory. A non-nil arena makes DecodeWith unsafe
// to call concurrently with any other use of the same arena; the sketch
// itself is still not modified.
func (sr *SparseRecovery) DecodeWith(a *DecodeArena) (items []Item, ok bool) {
	return sr.peel(a, nil, sr.s)
}

// DecodeDeltaWith peels the difference between the current slab and a
// snapshot taken by SnapshotSlab at some earlier state. By linearity the
// residual cur − snap is itself a valid sketch of exactly the updates
// applied since the snapshot, so a successful peel returns the net
// per-key delta vector — the basis of the Storing differential decode
// (DESIGN.md §13). itemCap bounds the residual support to attempt: the
// caller combining a base of ≤ s items with a delta passes 2s, since a
// legal ≤ s-sparse current state can differ from a ≤ s-sparse base in up
// to 2s keys. ok is false when the residual is denser than itemCap or
// does not verify — the caller falls back to a cold decode, so a false
// here never changes any reported result.
func (sr *SparseRecovery) DecodeDeltaWith(a *DecodeArena, snap []int64, itemCap int) (items []Item, ok bool) {
	if len(snap) != len(sr.slab) {
		panic("sketch: DecodeDeltaWith snapshot length mismatch")
	}
	if sr.DirtySparse() {
		return sr.peelSparse(a, snap, itemCap)
	}
	return sr.peel(a, snap, itemCap)
}

// peel is the shared worklist core of DecodeWith and DecodeDeltaWith:
// with snap == nil the working slab is a copy of the current slab, with
// a snapshot it is the residual cur − snap (exact int64 subtraction for
// the count and payload words, GF(p) subtraction for keySum/fpSum).
// itemCap is the over-full bail threshold.
func (sr *SparseRecovery) peel(a *DecodeArena, snap []int64, itemCap int) (items []Item, ok bool) {
	if a == nil {
		a = NewDecodeArena()
	}
	stride := sr.stride
	buckets := sr.rows * sr.width
	slab, mark := a.grab(len(sr.slab), buckets)
	if snap == nil {
		copy(slab, sr.slab)
	} else {
		for i := 0; i < len(slab); i += stride {
			slab[i] = sr.slab[i] - snap[i]
			slab[i+1] = int64(hashing.SubMod(uint64(sr.slab[i+1]), uint64(snap[i+1])))
			slab[i+2] = int64(hashing.SubMod(uint64(sr.slab[i+2]), uint64(snap[i+2])))
			for j := 3; j < stride; j++ {
				slab[i+j] = sr.slab[i+j] - snap[i+j]
			}
		}
	}

	// Seed: every bucket with a nonzero count word is a candidate. A
	// bucket whose count is zero now can only become pure after a peel
	// touches it, which re-enqueues it below.
	queue := a.queue[:0]
	for bi := 0; bi < buckets; bi++ {
		if slab[bi*stride] != 0 {
			queue = append(queue, int32(bi))
			mark[bi] = true
		}
	}

	items, queue, _, ok = sr.drain(slab, mark, queue, itemCap, nil)
	a.queue = queue[:0] // keep any growth for the next decode
	if !ok {
		return nil, false
	}

	// Residual check: a fully peeled sketch must be all-zero in the
	// count and keySum words (the same verification the reference runs).
	for i := 0; i < len(slab); i += stride {
		if slab[i] != 0 || slab[i+1] != 0 {
			return nil, false
		}
	}
	return items, true
}

// drain is the worklist core shared by the full and sparse peels: pop
// candidate buckets, peel pure ones, re-enqueue the ≤ rows buckets each
// removal touched. It mutates slab in place and returns the final queue
// (for capacity reuse and mark cleanup). ok=false is the over-full
// bail: more than itemCap items peeled. Marks of processed entries are
// cleared as they pop; on the bail path the not-yet-popped tail keeps
// its marks — callers that need clean marks sweep the returned queue.
//
// With a non-nil touched, every bucket a peel-out subtraction writes is
// appended to it — the sparse peel needs the complete write set to
// verify and re-zero its zero-invariant slab, and the queue alone does
// not cover it (a subtraction that cancels a bucket's count to zero is
// written but never enqueued).
func (sr *SparseRecovery) drain(slab []int64, mark []bool, queue []int32, itemCap int, touched []int32) (items []Item, q, touchedOut []int32, ok bool) {
	stride := sr.stride
	// One payload slab for every item this decode can return: at most
	// itemCap+1 items are materialized before the over-full bail, so a
	// single allocation replaces the per-item make of the reference path.
	var payloadBuf []int64
	if sr.payloadDim > 0 {
		payloadBuf = make([]int64, (itemCap+1)*sr.payloadDim)
	}

	for qi := 0; qi < len(queue); qi++ {
		bi := int(queue[qi])
		mark[bi] = false
		b := slab[bi*stride : bi*stride+stride]
		key, fpk, pure := sr.pureKeyAt(b)
		if !pure {
			continue
		}
		count := b[0]
		var payload []int64
		if sr.payloadDim > 0 {
			divisible := true
			for j := 0; j < sr.payloadDim; j++ {
				if b[3+j]%count != 0 {
					divisible = false
					break
				}
			}
			if !divisible {
				continue
			}
			payload = payloadBuf[len(items)*sr.payloadDim:][:sr.payloadDim:sr.payloadDim]
			for j := range payload {
				payload[j] = b[3+j] / count
			}
		}
		items = append(items, Item{Key: key, Count: count, Payload: payload})
		if len(items) > itemCap {
			return nil, queue, touched, false
		}
		// Peel the item out of every row; only the ≤ rows touched
		// buckets can have changed purity, so only they are enqueued.
		cf := hashing.ToField(count)
		df := hashing.MersennePrime61 - cf // ToField(-count)
		dk := hashing.MulMod(df, key)
		dfp := hashing.MulMod(df, fpk)
		for r := 0; r < sr.rows; r++ {
			c := bucketOf(sr.rowHash[r].Eval(key), sr.width)
			ti := r*sr.width + c
			tb := slab[ti*stride : ti*stride+stride]
			tb[0] -= count
			tb[1] = int64(hashing.AddMod(uint64(tb[1]), dk))
			tb[2] = int64(hashing.AddMod(uint64(tb[2]), dfp))
			for j := 0; j < sr.payloadDim; j++ {
				tb[3+j] -= count * payload[j]
			}
			if touched != nil {
				touched = append(touched, int32(ti))
			}
			if tb[0] != 0 && !mark[ti] {
				queue = append(queue, int32(ti))
				mark[ti] = true
			}
		}
	}
	return items, queue, touched, true
}

// peelSparse is the journal-guided residual peel: with a live dirty
// journal, every bucket where cur differs from snap is journaled, so
// the residual is materialized, seeded, verified and re-zeroed over the
// journaled buckets only — O(dirty + delta support), with no O(slab)
// term at all. Correctness does not rest on the journal being minimal
// (duplicates and untouched entries are harmless), only on it being a
// superset of the changed buckets, which the update paths guarantee.
//
// The working buffers come from the arena's zero-invariant pair
// (grabSparse): every bucket this peel writes is journaled — peeling an
// item only touches its row buckets, and an item in the residual has
// all of them journaled — so sweeping the journal restores the
// invariant on every exit path.
func (sr *SparseRecovery) peelSparse(a *DecodeArena, snap []int64, itemCap int) (items []Item, ok bool) {
	if a == nil {
		a = NewDecodeArena()
	}
	stride := sr.stride
	buckets := sr.rows * sr.width
	slab, mark := a.grabSparse(len(sr.slab), buckets)
	dirty := sr.dirty

	for _, b32 := range dirty {
		off := int(b32) * stride
		slab[off] = sr.slab[off] - snap[off]
		slab[off+1] = int64(hashing.SubMod(uint64(sr.slab[off+1]), uint64(snap[off+1])))
		slab[off+2] = int64(hashing.SubMod(uint64(sr.slab[off+2]), uint64(snap[off+2])))
		for j := 3; j < stride; j++ {
			slab[off+j] = sr.slab[off+j] - snap[off+j]
		}
	}
	queue := a.queue[:0]
	for _, b32 := range dirty {
		bi := int(b32)
		if slab[bi*stride] != 0 && !mark[bi] {
			queue = append(queue, int32(bi))
			mark[bi] = true
		}
	}

	if a.touch == nil {
		a.touch = make([]int32, 0, 64)
	}
	var touched []int32
	items, queue, touched, ok = sr.drain(slab, mark, queue, itemCap, a.touch[:0])
	a.touch = touched[:0] // keep any growth for the next decode
	if ok {
		// Verify over journal ∪ write set: every other bucket is zero by
		// the invariant, so this equals peel's full residual check — the
		// write set matters because a (δ-rare) phantom peel can subtract
		// from buckets outside the journal.
		for _, b32 := range dirty {
			off := int(b32) * stride
			if slab[off] != 0 || slab[off+1] != 0 {
				ok = false
				break
			}
		}
		if ok {
			for _, b32 := range touched {
				off := int(b32) * stride
				if slab[off] != 0 || slab[off+1] != 0 {
					ok = false
					break
				}
			}
		}
	}

	// Restore the zero invariant: re-zero every bucket written — the
	// journaled fills and the drain's write set — and sweep the marks
	// the bail path may have left on the queued tail.
	for _, b32 := range dirty {
		off := int(b32) * stride
		for j := 0; j < stride; j++ {
			slab[off+j] = 0
		}
	}
	for _, b32 := range touched {
		off := int(b32) * stride
		for j := 0; j < stride; j++ {
			slab[off+j] = 0
		}
	}
	for _, bi := range queue {
		mark[bi] = false
	}
	if !ok {
		return nil, false
	}
	return items, true
}
