package sketch

import (
	"math"
	"math/rand"

	"streambalance/internal/hashing"
)

// F0 estimates the number of DISTINCT keys with nonzero net count in a
// dynamic stream (insertions and deletions), in small space. It keeps a
// geometric ladder of sparse-recovery sketches, level j subsampling keys
// with probability 2^{−j} (pairwise-independently): at decode time the
// finest level that decodes gives the distinct count scaled by 2^{j} —
// the classic sparse-recovery realization of F₀ estimation under
// deletions, the primitive the [HSYZ18] streaming cost estimator counts
// non-empty grid cells with.
type F0 struct {
	levels  []*SparseRecovery
	samp    []*hashing.KWise
	s       int // per-level sparsity
	maxKeys float64
}

// NewF0 creates an estimator able to handle up to maxKeys distinct keys
// with relative error ≈ 1/√s per ladder level.
func NewF0(rng *rand.Rand, maxKeys int64, s int, delta float64) *F0 {
	if s < 16 {
		s = 16
	}
	depth := 2
	for (int64(1)<<(depth-1))*int64(s)/4 < maxKeys {
		depth++
	}
	f := &F0{s: s, maxKeys: float64(maxKeys)}
	for j := 0; j < depth; j++ {
		f.levels = append(f.levels, NewSparseRecovery(rng, s, delta/float64(depth), 0))
		f.samp = append(f.samp, hashing.NewKWise(rng, 2))
	}
	return f
}

// Update applies a key-count delta.
func (f *F0) Update(key uint64, delta int64) {
	key = hashing.Reduce64(key)
	for j := range f.levels {
		if j > 0 {
			// Key survives to level j with probability 2^{−j}: its level-
			// assignment hash must fall in the lowest p/2^j band.
			h := f.samp[j].Eval(key)
			if h >= hashing.MersennePrime61>>uint(j) {
				continue
			}
		}
		f.levels[j].Update(key, nil, delta)
	}
}

// Estimate returns the estimated distinct-key count. ok is false when
// even the sparsest ladder level is over-full (maxKeys undersized).
func (f *F0) Estimate() (float64, bool) {
	for j := range f.levels {
		items, decoded := f.levels[j].Decode()
		if !decoded {
			continue
		}
		live := 0
		for _, it := range items {
			if it.Count != 0 {
				live++
			}
		}
		if j == 0 {
			return float64(live), true // exact when the full set fits
		}
		return float64(live) * math.Exp2(float64(j)), true
	}
	return 0, false
}

// Bytes reports the ladder's memory footprint.
func (f *F0) Bytes() int64 {
	var b int64
	for _, l := range f.levels {
		b += l.Bytes()
	}
	return b
}
