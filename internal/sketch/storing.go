package sketch

import (
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

// Telemetry (DESIGN.md §9). Handles are package vars so the hot paths
// never touch the registry; every bump is gated on obs.Enabled inside
// the metric itself. Per-level FAIL counters are created lazily on the
// (rare) FAIL path.
var (
	mCacheHits            = obs.C("sketch_cache_hits_total")
	mCacheMiss            = obs.C("sketch_cache_misses_total")
	mCacheStale           = obs.C("sketch_cache_stale_total")
	mCacheDrops           = obs.C("sketch_cache_drops_total")
	mCacheMergeDrops      = obs.C("sketch_cache_merge_drops_total")
	mCacheSplices         = obs.C("sketch_cache_splices_total")
	mCacheSpliceFallbacks = obs.C("sketch_cache_splice_fallbacks_total")
	mCacheMergeKeeps      = obs.C("sketch_cache_merge_keeps_total")
	mCacheMergeSkips      = obs.C("sketch_cache_merge_skips_total")
	mDecodeFail           = obs.C("sketch_decode_fail_total")
	vDecodeFail           = obs.CV("sketch_decode_fail_total", "level")
	mDecodeNS             = obs.H("sketch_decode_ns")
)

// incrementalOn gates the differential decode path of ResultArena (on by
// default). Both settings produce identical reported results — the
// spliced decode falls back to a cold peel whenever it cannot prove
// exactness — so the knob is a perf A/B switch for benchmarks and the
// incremental-vs-cold equivalence suite (DESIGN.md §13).
var incrementalOn = func() *atomic.Bool {
	var b atomic.Bool
	b.Store(true)
	return &b
}()

// SetIncremental enables or disables differential (spliced) decoding,
// returning the previous setting. Safe to call between queries.
func SetIncremental(on bool) bool { return incrementalOn.Swap(on) }

// Storing is the dynamic-streaming subroutine Storing(G_i, α, β, δ) of
// Lemma 4.2: over a stream of point insertions and deletions it maintains,
// in O(αβ·d·log) space, enough linear-sketch state to report at the end of
// the stream
//
//  1. the set C of all non-empty cells of grid level i,
//  2. the exact number of points f(C) in each cell C ∈ C, and
//  3. the set S of surviving points (with multiplicities),
//
// or FAIL. It never reports a wrong answer: if |C| ≤ α (and, when point
// recovery is enabled, at most β points survive in the substream) the
// report succeeds with high probability.
//
// β here bounds the total number of surviving points across the level
// rather than per cell. That is the regime Algorithm 4 actually operates
// the subroutine in: the β̂_i it passes is shown (Lemma 4.4) to bound the
// *total* sampled points of level i with high probability, so a flat
// β-sparse point recovery gives the same guarantee with the same FAIL
// semantics. Pass β = 0 to disable point recovery (the h and h′ substreams
// of Algorithm 4 only consume cell counts).
type Storing struct {
	g     *grid.Grid
	level int
	alpha int
	beta  int

	cells  *SparseRecovery // key: cell fingerprint; payload: cell index vector
	points *SparseRecovery // key: point fingerprint; payload: coordinates
	fp     *hashing.Fingerprint

	netUpdates int64 // net insertions − deletions, for sanity checks

	// epoch counts state mutations (Update/UpdateKeyed/Merge). Result
	// caches its decode tagged with the epoch it decoded at, so repeated
	// extraction over an unchanged sketch skips the slab peel entirely,
	// and a stale cache re-decodes differentially: the base below holds a
	// slab snapshot plus the sorted item list of the last successful
	// decode, so only the residual cur − snapshot is peeled and spliced
	// onto the base (DESIGN.md §13). Cache and base are derived state:
	// excluded from Bytes (see CacheBytes), absent from Digest. mu
	// serializes concurrent Result calls; updates must still not run
	// concurrently with anything else.
	epoch      uint64
	mu         sync.Mutex
	cache      StoringResult
	cacheOK    bool
	cacheEpoch uint64
	cacheValid bool
	stats      CacheStats // guarded by mu; always counted (query path only)

	// Differential-decode base: valid only after a fully successful
	// decode with incremental mode on. Each enabled side keeps the slab
	// snapshot taken at that decode and its exact sorted item list; a
	// later query peels only cur − snapshot and merges the delta in.
	baseValid  bool
	baseCells  sideBase
	basePoints sideBase
}

// sideBase is one substream's differential-decode base: the slab
// snapshot of the last successful decode and the items it decoded to,
// sorted by key. items is exactly the decode of snap, so splicing a
// verified residual delta onto it reproduces the cold decode of the
// current slab.
type sideBase struct {
	snap  []int64
	items []Item
}

// CacheStats reports how the decode cache behaved over this instance's
// lifetime; one Storing sketches one grid level, so these are the
// per-level hit/splice counters the stream layer aggregates. Hits are
// Result calls answered from the cache, Misses are decodes with no
// cached entry (cold), Stale are decodes forced because updates advanced
// the epoch past a cached entry (the invalidation count), Drops counts
// DropCache calls that actually discarded a cached decode (including
// Merge's internal drop). MergeDrops is the subset of Drops caused by
// Merge — the cache churn a sharded-ingest recombination inflicts on the
// query snapshot (DESIGN.md §10); each MergeDrop is also counted in
// Drops.
//
// The incremental-decode counters (DESIGN.md §13): Splices counts stale
// re-decodes answered differentially (residual peel + merge onto the
// cached base, including deterministic FAIL verdicts reached that way);
// SpliceFallbacks counts differential attempts that could not prove
// exactness and fell back to a cold peel. MergeSkips counts Merge calls
// skipped entirely because the incoming sibling was pristine (zero
// slab), leaving a fresh cache fresh; MergeKeeps counts merges of real
// state that kept the base for the next differential decode instead of
// dropping the cache.
//
// Counting happens on the query path only — never per stream update —
// so it is always on, independent of the obs.Enabled flag; the same
// events also feed the global sketch_cache_* counters.
type CacheStats struct {
	Hits, Misses, Stale, Drops, MergeDrops           int64
	Splices, SpliceFallbacks, MergeKeeps, MergeSkips int64
}

// CellCount is one recovered non-empty cell.
type CellCount struct {
	Key   uint64  // cell key as produced by grid.KeyOf(level, Index)
	Index []int64 // cell index vector at the sketch's level
	Count int64   // number of surviving points in the cell
}

// StoringResult is the end-of-stream report of a Storing instance.
type StoringResult struct {
	Level  int
	Cells  []CellCount
	Points []PointCount // empty when point recovery is disabled
}

// PointCount is a recovered surviving point with its multiplicity.
type PointCount struct {
	P     geo.Point
	Count int64
}

// NewStoring creates a Storing instance for grid level `level` of g. alpha
// bounds the number of distinct non-empty cells (0 disables cell
// recovery — a points-only sketch, as the ĥ-substream of Algorithm 4
// uses), beta the total number of surviving points to recover (0 disables
// point recovery), delta the failure probability.
func NewStoring(rng *rand.Rand, g *grid.Grid, level, alpha, beta int, delta float64) *Storing {
	return NewStoringShared(rng, g, level, alpha, beta, delta, nil)
}

// NewStoringShared is NewStoring with an externally supplied point
// fingerprint (nil draws a private one from rng). Sharing one fingerprint
// across the Storing instances of all levels — and, in the guess
// enumeration, all instances — lets a batched ingestion pipeline compute
// each point's key once and reuse it everywhere; the fingerprint collision
// bound is unchanged (it is per pair of distinct points, union-bounded the
// same way).
func NewStoringShared(rng *rand.Rand, g *grid.Grid, level, alpha, beta int, delta float64, fp *hashing.Fingerprint) *Storing {
	if fp == nil {
		fp = hashing.NewFingerprint(rng)
	}
	st := &Storing{
		g:     g,
		level: level,
		alpha: alpha,
		beta:  beta,
		fp:    fp,
	}
	if alpha > 0 {
		st.cells = NewSparseRecovery(rng, alpha, delta/2, g.Dim)
	}
	if beta > 0 {
		st.points = NewSparseRecovery(rng, beta, delta/2, g.Dim)
	}
	return st
}

// Insert processes the stream update (p, +).
func (st *Storing) Insert(p geo.Point) { st.update(p, +1) }

// Delete processes the stream update (p, −). The stream contract of
// Section 4.2 guarantees p is present; the sketch stays linear either way.
func (st *Storing) Delete(p geo.Point) { st.update(p, -1) }

func (st *Storing) update(p geo.Point, delta int64) {
	if st.cells != nil {
		idx := st.g.CellIndex(p, st.level)
		st.cells.Update(st.g.KeyOf(st.level, idx), idx, delta)
	}
	if st.points != nil {
		st.points.Update(st.fp.Key(p), p, delta)
	}
	st.netUpdates += delta
	st.epoch++
}

// UpdateKeyed applies one update with every derivable key supplied by the
// caller: cellKey/cellIdx must equal g.KeyOf(level, g.CellIndex(p, level))
// and pointKey must equal PointKey(p). The batched ingestion pipeline
// computes these once per op and reuses them across the h/h′/ĥ sketches of
// every level and guess instance; because the values are identical to what
// update would compute, the resulting sketch state is bit-identical to the
// per-op path.
func (st *Storing) UpdateKeyed(cellKey uint64, cellIdx []int64, pointKey uint64, p geo.Point, delta int64) {
	if st.cells != nil {
		st.cells.Update(cellKey, cellIdx, delta)
	}
	if st.points != nil {
		st.points.Update(pointKey, p, delta)
	}
	st.netUpdates += delta
	st.epoch++
}

// UpdateKeyedN is the columnar form of UpdateKeyed: it applies a batch
// of keyed updates through the 4-lane sketch kernels
// (SparseRecovery.UpdateN). cellKeys/cellIdx feed the cell sketch
// (cellIdx flat, Dim words per update); pointKeys/points feed the point
// sketch (flat, Dim words per update). A disabled side's columns may be
// nil; an enabled side's columns must be supplied — single-sided
// instances (the h/h′/ĥ substreams) pass nil for the other side. All
// supplied columns must have len(deltas) rows. Exactly-summed sketch
// state makes the result bit-identical to len(deltas) UpdateKeyed
// calls; the epoch advances once per non-empty batch.
func (st *Storing) UpdateKeyedN(cellKeys []uint64, cellIdx []int64, pointKeys []uint64, points []int64, deltas []int64) {
	if len(deltas) == 0 {
		return
	}
	if st.cells != nil {
		if cellKeys == nil {
			panic("sketch: UpdateKeyedN missing cell columns for a cell-recovery instance")
		}
		st.cells.UpdateN(cellKeys, cellIdx, deltas)
	}
	if st.points != nil {
		if pointKeys == nil {
			panic("sketch: UpdateKeyedN missing point columns for a point-recovery instance")
		}
		st.points.UpdateN(pointKeys, points, deltas)
	}
	for _, d := range deltas {
		st.netUpdates += d
	}
	st.epoch++
}

// UpdateKeyedScaledN is UpdateKeyedN for key-coalesced input: each row
// is one distinct key with its summed delta (Σ dᵢ) and delta-scaled
// payload sum (Σ dᵢ·payloadᵢ), as produced by the ingest coalescer.
// The columns route to SparseRecovery.UpdateScaledN, whose exact
// linear sums make the sketch state bit-identical to applying the
// constituent per-op updates individually — including zero-delta rows
// (an op and its deletion coalesced away), which must still be applied
// because their payload sums need not vanish when two distinct inputs
// share a fingerprint key. netUpdates advances by the delta sum and the
// epoch once per non-empty batch, exactly like UpdateKeyedN.
func (st *Storing) UpdateKeyedScaledN(cellKeys []uint64, cellScaled []int64, pointKeys []uint64, pointScaled []int64, deltas []int64) {
	if len(deltas) == 0 {
		return
	}
	if st.cells != nil {
		if cellKeys == nil {
			panic("sketch: UpdateKeyedScaledN missing cell columns for a cell-recovery instance")
		}
		st.cells.UpdateScaledN(cellKeys, cellScaled, deltas)
	}
	if st.points != nil {
		if pointKeys == nil {
			panic("sketch: UpdateKeyedScaledN missing point columns for a point-recovery instance")
		}
		st.points.UpdateScaledN(pointKeys, pointScaled, deltas)
	}
	for _, d := range deltas {
		st.netUpdates += d
	}
	st.epoch++
}

// PointKey returns the key UpdateKeyed expects for p — st's point
// fingerprint, shared across instances built with NewStoringShared.
func (st *Storing) PointKey(p geo.Point) uint64 { return st.fp.Key(p) }

// Digest folds the full sketch state into one 64-bit value; equal digests
// on hash-sharing siblings mean bit-identical state.
func (st *Storing) Digest() uint64 {
	d := hashing.Mix64(uint64(st.netUpdates))
	if st.cells != nil {
		d = hashing.Mix64(d ^ st.cells.Digest())
	}
	if st.points != nil {
		d = hashing.Mix64(d ^ st.points.Digest())
	}
	return d
}

// Result decodes the sketch. ok is false on FAIL (too many cells or
// points, or an internal verification failure); a false result carries no
// partial information, matching Lemma 4.2.
//
// Decoding is deterministic in the sketch state, so Result memoizes its
// outcome (success or FAIL) tagged with the current epoch and returns it
// until the next mutation — periodic extraction over a long stream pays
// only for levels that changed. The returned slices are shared with the
// cache and must be treated as read-only. Result is safe to call from
// concurrent goroutines on distinct or identical instances, but not
// concurrently with updates.
func (st *Storing) Result() (StoringResult, bool) { return st.ResultArena(nil) }

// ResultArena is Result running its sparse-recovery decodes out of the
// caller's DecodeArena (nil allocates transient scratch) — the
// extraction pipeline's decode pool keeps one arena per worker so cold
// decode rounds reuse one working slab instead of cloning per sketch.
// The cached result never aliases arena memory (DecodeWith returns
// freshly allocated items), so arenas and caches have independent
// lifetimes.
func (st *Storing) ResultArena(a *DecodeArena) (StoringResult, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cacheValid && st.cacheEpoch == st.epoch {
		st.stats.Hits++
		mCacheHits.Inc()
		return st.cache, st.cacheOK
	}
	if st.cacheValid {
		st.stats.Stale++
		mCacheStale.Inc()
	} else {
		st.stats.Misses++
		mCacheMiss.Inc()
	}
	t0 := obs.NowNano()
	res, ok := st.decode(a)
	mDecodeNS.ObserveSince(t0)
	if !ok && obs.Enabled() {
		mDecodeFail.Inc()
		vDecodeFail.Inc(strconv.Itoa(st.level))
	}
	st.cache, st.cacheOK = res, ok
	st.cacheEpoch, st.cacheValid = st.epoch, true
	return res, ok
}

// decode answers a cache miss or a stale query; mu must be held, a may
// be nil (transient scratch). With a valid differential base it first
// attempts the spliced decode — residual peel plus merge onto the base
// item lists — and falls back to the cold full peel only when the
// splice cannot prove exactness (residual denser than 2s, or a combine
// mismatch, both of which only occur under fingerprint collisions or
// genuinely large deltas).
func (st *Storing) decode(a *DecodeArena) (StoringResult, bool) {
	if incrementalOn.Load() && st.baseValid {
		res, ok, done := st.splice(a)
		if done {
			st.stats.Splices++
			mCacheSplices.Inc()
			return res, ok
		}
		st.stats.SpliceFallbacks++
		mCacheSpliceFallbacks.Inc()
	}
	return st.decodeCold(a)
}

// decodeCold runs the full sparse-recovery peel of both sides and
// refreshes (or clears) the differential base; mu must be held.
func (st *Storing) decodeCold(a *DecodeArena) (StoringResult, bool) {
	var cellItems, pointItems []Item
	if st.cells != nil {
		items, ok := st.cells.DecodeWith(a)
		if !ok {
			st.clearBase()
			return StoringResult{}, false
		}
		sortItemsByKey(items)
		cellItems = items
	}
	if st.points != nil {
		items, ok := st.points.DecodeWith(a)
		if !ok {
			st.clearBase()
			return StoringResult{}, false
		}
		sortItemsByKey(items)
		pointItems = items
	}
	res, ok := st.buildResult(cellItems, pointItems)
	if ok && incrementalOn.Load() {
		st.setBase(cellItems, pointItems)
	} else if !ok {
		st.clearBase()
	}
	return res, ok
}

// splice is the differential decode (DESIGN.md §13); mu must be held.
// For each enabled side it peels the residual cur − snapshot — by
// linearity, a valid sketch of exactly the updates applied since the
// base decode — and merges the verified delta onto the base item list.
// done=false means the splice could not prove exactness and the caller
// must fall back to a cold peel; done=true carries a definitive verdict:
// either the spliced success, or a deterministic FAIL (combined support
// past the sparsity budget, or a negative net count) that the cold peel
// would also reach. The residual item cap is 2s: a ≤ s-sparse base and a
// ≤ s-sparse current state can differ in at most 2s keys, so a denser
// residual proves nothing and falls back.
func (st *Storing) splice(a *DecodeArena) (res StoringResult, ok, done bool) {
	var cellItems, pointItems []Item
	if st.cells != nil {
		merged, mok, exact := spliceSide(st.cells, a, &st.baseCells)
		if !exact {
			return StoringResult{}, false, false
		}
		if !mok {
			return StoringResult{}, false, true
		}
		cellItems = merged
	}
	if st.points != nil {
		merged, mok, exact := spliceSide(st.points, a, &st.basePoints)
		if !exact {
			return StoringResult{}, false, false
		}
		if !mok {
			return StoringResult{}, false, true
		}
		pointItems = merged
	}
	res, rok := st.buildResult(cellItems, pointItems)
	if rok {
		// Refresh the base to the current state: snapshot the live slabs
		// and adopt the merged lists. On a FAIL verdict the old base stays
		// — it is still an exact decode of its snapshot, and deletions may
		// shrink the state back under the budget.
		st.setBase(cellItems, pointItems)
	}
	return res, rok, true
}

// spliceSide runs one side's residual peel + merge. exact=false means
// fall back to a cold decode; ok=false (with exact=true) means the
// combined support exceeds the sparsity budget — the deterministic FAIL
// a cold peel of an over-full sketch reports.
func spliceSide(sr *SparseRecovery, a *DecodeArena, base *sideBase) (merged []Item, ok, exact bool) {
	delta, pok := sr.DecodeDeltaWith(a, base.snap, 2*sr.Sparsity())
	if !pok {
		return nil, false, false
	}
	merged, mok := mergeDecodedItems(base.items, delta)
	if !mok {
		return nil, false, false
	}
	if len(merged) > sr.Sparsity() {
		return nil, false, true
	}
	return merged, true, true
}

// buildResult converts the decoded item lists into the reported
// StoringResult, FAILing on any negative net count (more deletions than
// insertions: corrupt stream). The lists are sorted by key, so repeated
// extraction — spliced or cold — reports cells and points in one
// canonical order.
func (st *Storing) buildResult(cellItems, pointItems []Item) (StoringResult, bool) {
	res := StoringResult{Level: st.level}
	if st.cells != nil {
		for _, it := range cellItems {
			if it.Count < 0 {
				return StoringResult{}, false
			}
			if it.Count == 0 {
				continue
			}
			res.Cells = append(res.Cells, CellCount{Key: it.Key, Index: it.Payload, Count: it.Count})
		}
	}
	if st.points != nil {
		for _, it := range pointItems {
			if it.Count < 0 {
				return StoringResult{}, false
			}
			if it.Count == 0 {
				continue
			}
			res.Points = append(res.Points, PointCount{P: geo.Point(it.Payload), Count: it.Count})
		}
	}
	return res, true
}

// setBase snapshots the live slabs and adopts the given sorted item
// lists as the differential base; mu must be held. The snapshots reuse
// the previous base's buffers — via the sparse journal-guided refresh
// when one is live, so steady-state splicing copies only the changed
// buckets and allocates only the delta items. Either way the sketches
// restart their dirty journals here: from this snapshot on, the
// journal enumerates exactly the buckets that diverge from it.
func (st *Storing) setBase(cellItems, pointItems []Item) {
	if st.cells != nil {
		st.baseCells.snap = st.cells.RefreshSnapshot(st.baseCells.snap)
		st.baseCells.items = cellItems
	}
	if st.points != nil {
		st.basePoints.snap = st.points.RefreshSnapshot(st.basePoints.snap)
		st.basePoints.items = pointItems
	}
	st.baseValid = true
}

// clearBase releases the differential base and the dirty journals that
// were tracking against its snapshots; mu must be held.
func (st *Storing) clearBase() {
	if st.cells != nil {
		st.cells.StopDirtyTracking()
	}
	if st.points != nil {
		st.points.StopDirtyTracking()
	}
	st.baseCells = sideBase{}
	st.basePoints = sideBase{}
	st.baseValid = false
}

// sortItemsByKey puts a decode's items into the canonical key order.
// Peel order depends on which buckets happened to be pure first; sorting
// makes cold and spliced decodes emit identical lists.
func sortItemsByKey(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
}

// mergeDecodedItems combines the base item list (sorted by key) with a
// residual delta decode, producing the sorted item list of the summed
// vector — exactly what a cold peel of the current slab returns, since
// cur = snapshot + residual by linearity. Keys whose net count cancels
// to zero vanish (as they do from a cold peel). A key present in both
// lists must carry a consistent payload: the combined payload sum
// pc·prevP + dc·deltaP must divide evenly by the combined count, and a
// mismatch (only possible under a fingerprint collision) returns
// ok=false so the caller falls back to the cold peel's own verdict.
func mergeDecodedItems(prev, delta []Item) ([]Item, bool) {
	if len(delta) == 0 {
		return prev, true
	}
	sortItemsByKey(delta)
	out := make([]Item, 0, len(prev)+len(delta))
	i, j := 0, 0
	for i < len(prev) || j < len(delta) {
		switch {
		case j >= len(delta) || (i < len(prev) && prev[i].Key < delta[j].Key):
			out = append(out, prev[i])
			i++
		case i >= len(prev) || delta[j].Key < prev[i].Key:
			out = append(out, delta[j])
			j++
		default: // same key on both sides
			pc, dc := prev[i].Count, delta[j].Count
			nc := pc + dc
			if nc != 0 {
				it := Item{Key: prev[i].Key, Count: nc}
				if pd := len(prev[i].Payload); pd > 0 {
					if len(delta[j].Payload) != pd {
						return nil, false
					}
					p := make([]int64, pd)
					for x := 0; x < pd; x++ {
						num := pc*prev[i].Payload[x] + dc*delta[j].Payload[x]
						if num%nc != 0 {
							return nil, false
						}
						p[x] = num / nc
					}
					it.Payload = p
				}
				out = append(out, it)
			}
			i++
			j++
		}
	}
	return out, true
}

// Merge adds another Storing instance's state into st. Both must have
// been created from the same random source position (identical hash
// functions) — i.e. be CloneEmpty siblings; Merge panics on shape
// mismatch. Linearity makes the merged sketch equivalent to one that saw
// both streams interleaved.
//
// A pristine sibling (epoch 0: never updated since birth or Reset) has
// an identically zero slab, so merging it is arithmetically a no-op —
// Merge skips the state mutation entirely and a fresh decode cache
// stays fresh. This is what keeps a fork that touched k levels from
// dirtying the other levels' caches on recombination: Stream.Merge
// calls down here for every level, but only the levels the fork
// actually wrote pay anything.
func (st *Storing) Merge(other *Storing) {
	if st.level != other.level || (st.cells == nil) != (other.cells == nil) ||
		(st.points == nil) != (other.points == nil) {
		panic("sketch: Storing merge shape mismatch")
	}
	if other.epoch == 0 {
		st.mu.Lock()
		st.stats.MergeSkips++
		mCacheMergeSkips.Inc()
		st.mu.Unlock()
		return
	}
	if st.cells != nil {
		st.cells.Merge(other.cells)
	}
	if st.points != nil {
		st.points.Merge(other.points)
	}
	st.netUpdates += other.netUpdates
	st.epoch++
	st.invalidateForMerge()
}

// invalidateForMerge is Merge's cache bookkeeping for a real (non-empty)
// merge. With a valid differential base the cache is merely left stale:
// the epoch moved, but by linearity the next query's residual
// cur − snapshot simply includes the merged-in state, so it splices
// instead of re-peeling from scratch (MergeKeeps). Without a base —
// incremental mode off, or the last decode FAILed — the cached decode is
// discarded as before; the discard counts both as a generic drop and
// under the merge-specific counters, so the cache churn of
// merge-at-extraction recombination stays separable from explicit
// DropCache calls.
func (st *Storing) invalidateForMerge() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if incrementalOn.Load() && st.baseValid {
		st.stats.MergeKeeps++
		mCacheMergeKeeps.Inc()
		return
	}
	if st.cacheValid {
		st.stats.Drops++
		st.stats.MergeDrops++
		mCacheDrops.Inc()
		mCacheMergeDrops.Inc()
	}
	st.cache, st.cacheOK, st.cacheEpoch, st.cacheValid = StoringResult{}, false, 0, false
}

// Reset zeroes the sketch in place — slabs, net-update counter, epoch and
// decode cache — keeping the hash functions and allocations: after Reset
// the instance is state-identical to a newborn CloneEmpty sibling (equal
// Digest, Epoch 0) but reuses its memory. The sharded ingest front-end
// resets worker shards after folding them into the query snapshot instead
// of reallocating fresh forks every merge cycle. Cache stats survive
// (discarding a live cached decode counts as a drop).
func (st *Storing) Reset() {
	st.DropCache()
	if st.cells != nil {
		st.cells.Reset()
	}
	if st.points != nil {
		st.points.Reset()
	}
	st.netUpdates = 0
	st.epoch = 0
}

// CloneEmpty returns a zeroed Storing sharing st's hash functions, so the
// clone can sketch a second stream and later be Merged back.
func (st *Storing) CloneEmpty() *Storing {
	cp := &Storing{g: st.g, level: st.level, alpha: st.alpha, beta: st.beta, fp: st.fp}
	if st.cells != nil {
		cp.cells = st.cells.CloneEmpty()
	}
	if st.points != nil {
		cp.points = st.points.CloneEmpty()
	}
	return cp
}

// Bytes reports the sketch's memory footprint — the streaming space
// accounted by Theorem 4.5.
func (st *Storing) Bytes() int64 {
	var b int64
	if st.cells != nil {
		b += st.cells.Bytes()
	}
	if st.points != nil {
		b += st.points.Bytes()
	}
	return b
}

// Epoch returns the update epoch: a counter bumped by every
// state-mutating operation (Update, UpdateKeyed, Merge). Result caches
// are tagged with it, so equal epochs mean the cached decode is current.
func (st *Storing) Epoch() uint64 { return st.epoch }

// CacheFresh reports whether a decode cached at the current epoch exists
// — i.e. whether the next Result call is free.
func (st *Storing) CacheFresh() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cacheValid && st.cacheEpoch == st.epoch
}

// DropCache discards the decode cache and the differential base
// (releasing their memory). Purely a performance knob: the next Result
// re-decodes cold from the slabs.
func (st *Storing) DropCache() {
	st.mu.Lock()
	if st.cacheValid {
		st.stats.Drops++
		mCacheDrops.Inc()
	}
	st.cache, st.cacheOK, st.cacheEpoch, st.cacheValid = StoringResult{}, false, 0, false
	st.clearBase()
	st.mu.Unlock()
}

// CacheStats returns this instance's decode-cache behaviour so far.
// Safe to call concurrently with Result.
func (st *Storing) CacheStats() CacheStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// CacheBytes reports the approximate memory held by the decode cache
// and the differential base: the cached result's cell/point lists, the
// per-level cached item lists, and the base slab snapshots. It is
// deliberately NOT part of Bytes (and never enters Digest): all of it
// is derived state, reconstructible from the slabs at any time, not
// sketch space — the streaming space bound of Theorem 4.5 is about what
// must be retained to answer future updates, and DropCache returns this
// gauge to zero while losing nothing. Payload slices shared between the
// result and the base item lists are counted once per holder; the gauge
// is an upper estimate, not an allocator census.
func (st *Storing) CacheBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var b int64
	if st.cacheValid {
		for i := range st.cache.Cells {
			b += 40 + int64(len(st.cache.Cells[i].Index))*8
		}
		for i := range st.cache.Points {
			b += 32 + int64(len(st.cache.Points[i].P))*8
		}
	}
	if st.baseValid {
		b += int64(len(st.baseCells.snap)+len(st.basePoints.snap)) * 8
		b += itemListBytes(st.baseCells.items)
		b += itemListBytes(st.basePoints.items)
		if st.cells != nil {
			b += st.cells.DirtyJournalBytes()
		}
		if st.points != nil {
			b += st.points.DirtyJournalBytes()
		}
	}
	return b
}

// itemListBytes estimates the memory of a cached decode item list: the
// Item headers (key + count + payload slice header) plus payload words.
func itemListBytes(items []Item) int64 {
	b := int64(len(items)) * 40
	for i := range items {
		b += int64(len(items[i].Payload)) * 8
	}
	return b
}

// Level returns the grid level this instance sketches.
func (st *Storing) Level() int { return st.level }

// NetUpdates returns the net number of surviving stream updates seen.
func (st *Storing) NetUpdates() int64 { return st.netUpdates }
