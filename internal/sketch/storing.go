package sketch

import (
	"math/rand"
	"strconv"
	"sync"

	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
)

// Telemetry (DESIGN.md §9). Handles are package vars so the hot paths
// never touch the registry; every bump is gated on obs.Enabled inside
// the metric itself. Per-level FAIL counters are created lazily on the
// (rare) FAIL path.
var (
	mCacheHits       = obs.C("sketch_cache_hits_total")
	mCacheMiss       = obs.C("sketch_cache_misses_total")
	mCacheStale      = obs.C("sketch_cache_stale_total")
	mCacheDrops      = obs.C("sketch_cache_drops_total")
	mCacheMergeDrops = obs.C("sketch_cache_merge_drops_total")
	mDecodeFail      = obs.C("sketch_decode_fail_total")
	mDecodeNS        = obs.H("sketch_decode_ns")
)

// Storing is the dynamic-streaming subroutine Storing(G_i, α, β, δ) of
// Lemma 4.2: over a stream of point insertions and deletions it maintains,
// in O(αβ·d·log) space, enough linear-sketch state to report at the end of
// the stream
//
//  1. the set C of all non-empty cells of grid level i,
//  2. the exact number of points f(C) in each cell C ∈ C, and
//  3. the set S of surviving points (with multiplicities),
//
// or FAIL. It never reports a wrong answer: if |C| ≤ α (and, when point
// recovery is enabled, at most β points survive in the substream) the
// report succeeds with high probability.
//
// β here bounds the total number of surviving points across the level
// rather than per cell. That is the regime Algorithm 4 actually operates
// the subroutine in: the β̂_i it passes is shown (Lemma 4.4) to bound the
// *total* sampled points of level i with high probability, so a flat
// β-sparse point recovery gives the same guarantee with the same FAIL
// semantics. Pass β = 0 to disable point recovery (the h and h′ substreams
// of Algorithm 4 only consume cell counts).
type Storing struct {
	g     *grid.Grid
	level int
	alpha int
	beta  int

	cells  *SparseRecovery // key: cell fingerprint; payload: cell index vector
	points *SparseRecovery // key: point fingerprint; payload: coordinates
	fp     *hashing.Fingerprint

	netUpdates int64 // net insertions − deletions, for sanity checks

	// epoch counts state mutations (Update/UpdateKeyed/Merge). Result
	// caches its decode tagged with the epoch it decoded at, so repeated
	// extraction over an unchanged sketch skips the slab peel entirely and
	// extraction during a long stream re-decodes only what changed. The
	// cache is derived state: it is excluded from Bytes (see CacheBytes)
	// and does not enter Digest. mu serializes concurrent Result calls;
	// updates must still not run concurrently with anything else.
	epoch      uint64
	mu         sync.Mutex
	cache      StoringResult
	cacheOK    bool
	cacheEpoch uint64
	cacheValid bool
	stats      CacheStats // guarded by mu; always counted (query path only)
}

// CacheStats reports how the decode cache behaved over this instance's
// lifetime. Hits are Result calls answered from the cache, Misses are
// decodes with no cached entry (cold), Stale are decodes forced because
// updates advanced the epoch past a cached entry (the invalidation
// count), Drops counts DropCache calls that actually discarded a cached
// decode (including Merge's internal drop). MergeDrops is the subset of
// Drops caused by Merge — the cache churn a sharded-ingest recombination
// inflicts on the query snapshot (DESIGN.md §10); each MergeDrop is also
// counted in Drops.
// Counting happens on the query path only — never per stream update —
// so it is always on, independent of the obs.Enabled flag; the same
// events also feed the global sketch_cache_* counters.
type CacheStats struct {
	Hits, Misses, Stale, Drops, MergeDrops int64
}

// CellCount is one recovered non-empty cell.
type CellCount struct {
	Key   uint64  // cell key as produced by grid.KeyOf(level, Index)
	Index []int64 // cell index vector at the sketch's level
	Count int64   // number of surviving points in the cell
}

// StoringResult is the end-of-stream report of a Storing instance.
type StoringResult struct {
	Level  int
	Cells  []CellCount
	Points []PointCount // empty when point recovery is disabled
}

// PointCount is a recovered surviving point with its multiplicity.
type PointCount struct {
	P     geo.Point
	Count int64
}

// NewStoring creates a Storing instance for grid level `level` of g. alpha
// bounds the number of distinct non-empty cells (0 disables cell
// recovery — a points-only sketch, as the ĥ-substream of Algorithm 4
// uses), beta the total number of surviving points to recover (0 disables
// point recovery), delta the failure probability.
func NewStoring(rng *rand.Rand, g *grid.Grid, level, alpha, beta int, delta float64) *Storing {
	return NewStoringShared(rng, g, level, alpha, beta, delta, nil)
}

// NewStoringShared is NewStoring with an externally supplied point
// fingerprint (nil draws a private one from rng). Sharing one fingerprint
// across the Storing instances of all levels — and, in the guess
// enumeration, all instances — lets a batched ingestion pipeline compute
// each point's key once and reuse it everywhere; the fingerprint collision
// bound is unchanged (it is per pair of distinct points, union-bounded the
// same way).
func NewStoringShared(rng *rand.Rand, g *grid.Grid, level, alpha, beta int, delta float64, fp *hashing.Fingerprint) *Storing {
	if fp == nil {
		fp = hashing.NewFingerprint(rng)
	}
	st := &Storing{
		g:     g,
		level: level,
		alpha: alpha,
		beta:  beta,
		fp:    fp,
	}
	if alpha > 0 {
		st.cells = NewSparseRecovery(rng, alpha, delta/2, g.Dim)
	}
	if beta > 0 {
		st.points = NewSparseRecovery(rng, beta, delta/2, g.Dim)
	}
	return st
}

// Insert processes the stream update (p, +).
func (st *Storing) Insert(p geo.Point) { st.update(p, +1) }

// Delete processes the stream update (p, −). The stream contract of
// Section 4.2 guarantees p is present; the sketch stays linear either way.
func (st *Storing) Delete(p geo.Point) { st.update(p, -1) }

func (st *Storing) update(p geo.Point, delta int64) {
	if st.cells != nil {
		idx := st.g.CellIndex(p, st.level)
		st.cells.Update(st.g.KeyOf(st.level, idx), idx, delta)
	}
	if st.points != nil {
		st.points.Update(st.fp.Key(p), p, delta)
	}
	st.netUpdates += delta
	st.epoch++
}

// UpdateKeyed applies one update with every derivable key supplied by the
// caller: cellKey/cellIdx must equal g.KeyOf(level, g.CellIndex(p, level))
// and pointKey must equal PointKey(p). The batched ingestion pipeline
// computes these once per op and reuses them across the h/h′/ĥ sketches of
// every level and guess instance; because the values are identical to what
// update would compute, the resulting sketch state is bit-identical to the
// per-op path.
func (st *Storing) UpdateKeyed(cellKey uint64, cellIdx []int64, pointKey uint64, p geo.Point, delta int64) {
	if st.cells != nil {
		st.cells.Update(cellKey, cellIdx, delta)
	}
	if st.points != nil {
		st.points.Update(pointKey, p, delta)
	}
	st.netUpdates += delta
	st.epoch++
}

// UpdateKeyedN is the columnar form of UpdateKeyed: it applies a batch
// of keyed updates through the 4-lane sketch kernels
// (SparseRecovery.UpdateN). cellKeys/cellIdx feed the cell sketch
// (cellIdx flat, Dim words per update); pointKeys/points feed the point
// sketch (flat, Dim words per update). A disabled side's columns may be
// nil; an enabled side's columns must be supplied — single-sided
// instances (the h/h′/ĥ substreams) pass nil for the other side. All
// supplied columns must have len(deltas) rows. Exactly-summed sketch
// state makes the result bit-identical to len(deltas) UpdateKeyed
// calls; the epoch advances once per non-empty batch.
func (st *Storing) UpdateKeyedN(cellKeys []uint64, cellIdx []int64, pointKeys []uint64, points []int64, deltas []int64) {
	if len(deltas) == 0 {
		return
	}
	if st.cells != nil {
		if cellKeys == nil {
			panic("sketch: UpdateKeyedN missing cell columns for a cell-recovery instance")
		}
		st.cells.UpdateN(cellKeys, cellIdx, deltas)
	}
	if st.points != nil {
		if pointKeys == nil {
			panic("sketch: UpdateKeyedN missing point columns for a point-recovery instance")
		}
		st.points.UpdateN(pointKeys, points, deltas)
	}
	for _, d := range deltas {
		st.netUpdates += d
	}
	st.epoch++
}

// UpdateKeyedScaledN is UpdateKeyedN for key-coalesced input: each row
// is one distinct key with its summed delta (Σ dᵢ) and delta-scaled
// payload sum (Σ dᵢ·payloadᵢ), as produced by the ingest coalescer.
// The columns route to SparseRecovery.UpdateScaledN, whose exact
// linear sums make the sketch state bit-identical to applying the
// constituent per-op updates individually — including zero-delta rows
// (an op and its deletion coalesced away), which must still be applied
// because their payload sums need not vanish when two distinct inputs
// share a fingerprint key. netUpdates advances by the delta sum and the
// epoch once per non-empty batch, exactly like UpdateKeyedN.
func (st *Storing) UpdateKeyedScaledN(cellKeys []uint64, cellScaled []int64, pointKeys []uint64, pointScaled []int64, deltas []int64) {
	if len(deltas) == 0 {
		return
	}
	if st.cells != nil {
		if cellKeys == nil {
			panic("sketch: UpdateKeyedScaledN missing cell columns for a cell-recovery instance")
		}
		st.cells.UpdateScaledN(cellKeys, cellScaled, deltas)
	}
	if st.points != nil {
		if pointKeys == nil {
			panic("sketch: UpdateKeyedScaledN missing point columns for a point-recovery instance")
		}
		st.points.UpdateScaledN(pointKeys, pointScaled, deltas)
	}
	for _, d := range deltas {
		st.netUpdates += d
	}
	st.epoch++
}

// PointKey returns the key UpdateKeyed expects for p — st's point
// fingerprint, shared across instances built with NewStoringShared.
func (st *Storing) PointKey(p geo.Point) uint64 { return st.fp.Key(p) }

// Digest folds the full sketch state into one 64-bit value; equal digests
// on hash-sharing siblings mean bit-identical state.
func (st *Storing) Digest() uint64 {
	d := hashing.Mix64(uint64(st.netUpdates))
	if st.cells != nil {
		d = hashing.Mix64(d ^ st.cells.Digest())
	}
	if st.points != nil {
		d = hashing.Mix64(d ^ st.points.Digest())
	}
	return d
}

// Result decodes the sketch. ok is false on FAIL (too many cells or
// points, or an internal verification failure); a false result carries no
// partial information, matching Lemma 4.2.
//
// Decoding is deterministic in the sketch state, so Result memoizes its
// outcome (success or FAIL) tagged with the current epoch and returns it
// until the next mutation — periodic extraction over a long stream pays
// only for levels that changed. The returned slices are shared with the
// cache and must be treated as read-only. Result is safe to call from
// concurrent goroutines on distinct or identical instances, but not
// concurrently with updates.
func (st *Storing) Result() (StoringResult, bool) { return st.ResultArena(nil) }

// ResultArena is Result running its sparse-recovery decodes out of the
// caller's DecodeArena (nil allocates transient scratch) — the
// extraction pipeline's decode pool keeps one arena per worker so cold
// decode rounds reuse one working slab instead of cloning per sketch.
// The cached result never aliases arena memory (DecodeWith returns
// freshly allocated items), so arenas and caches have independent
// lifetimes.
func (st *Storing) ResultArena(a *DecodeArena) (StoringResult, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cacheValid && st.cacheEpoch == st.epoch {
		st.stats.Hits++
		mCacheHits.Inc()
		return st.cache, st.cacheOK
	}
	if st.cacheValid {
		st.stats.Stale++
		mCacheStale.Inc()
	} else {
		st.stats.Misses++
		mCacheMiss.Inc()
	}
	t0 := obs.NowNano()
	res, ok := st.decode(a)
	mDecodeNS.ObserveSince(t0)
	if !ok && obs.Enabled() {
		mDecodeFail.Inc()
		obs.C(`sketch_decode_fail_total{level="` + strconv.Itoa(st.level) + `"}`).Inc()
	}
	st.cache, st.cacheOK = res, ok
	st.cacheEpoch, st.cacheValid = st.epoch, true
	return res, ok
}

// decode runs the actual sparse-recovery peel; mu must be held. a may
// be nil (transient scratch).
func (st *Storing) decode(a *DecodeArena) (StoringResult, bool) {
	res := StoringResult{Level: st.level}
	if st.cells != nil {
		items, ok := st.cells.DecodeWith(a)
		if !ok {
			return StoringResult{}, false
		}
		for _, it := range items {
			if it.Count < 0 {
				return StoringResult{}, false // more deletions than insertions: corrupt stream
			}
			if it.Count == 0 {
				continue
			}
			res.Cells = append(res.Cells, CellCount{Key: it.Key, Index: it.Payload, Count: it.Count})
		}
	}
	if st.points != nil {
		pitems, ok := st.points.DecodeWith(a)
		if !ok {
			return StoringResult{}, false
		}
		for _, it := range pitems {
			if it.Count < 0 {
				return StoringResult{}, false
			}
			if it.Count == 0 {
				continue
			}
			res.Points = append(res.Points, PointCount{P: geo.Point(it.Payload), Count: it.Count})
		}
	}
	return res, true
}

// Merge adds another Storing instance's state into st. Both must have
// been created from the same random source position (identical hash
// functions) — i.e. be CloneEmpty siblings; Merge panics on shape
// mismatch. Linearity makes the merged sketch equivalent to one that saw
// both streams interleaved.
func (st *Storing) Merge(other *Storing) {
	if st.level != other.level || (st.cells == nil) != (other.cells == nil) ||
		(st.points == nil) != (other.points == nil) {
		panic("sketch: Storing merge shape mismatch")
	}
	if st.cells != nil {
		st.cells.Merge(other.cells)
	}
	if st.points != nil {
		st.points.Merge(other.points)
	}
	st.netUpdates += other.netUpdates
	st.epoch++
	st.dropForMerge() // merged-in state invalidates any cached decode
}

// dropForMerge is Merge's cache invalidation. A discarded decode counts
// both as a generic drop and under the merge-specific counters, so the
// cache churn of merge-at-extraction recombination is separable from
// explicit DropCache calls.
func (st *Storing) dropForMerge() {
	st.mu.Lock()
	if st.cacheValid {
		st.stats.Drops++
		st.stats.MergeDrops++
		mCacheDrops.Inc()
		mCacheMergeDrops.Inc()
	}
	st.cache, st.cacheOK, st.cacheEpoch, st.cacheValid = StoringResult{}, false, 0, false
	st.mu.Unlock()
}

// Reset zeroes the sketch in place — slabs, net-update counter, epoch and
// decode cache — keeping the hash functions and allocations: after Reset
// the instance is state-identical to a newborn CloneEmpty sibling (equal
// Digest, Epoch 0) but reuses its memory. The sharded ingest front-end
// resets worker shards after folding them into the query snapshot instead
// of reallocating fresh forks every merge cycle. Cache stats survive
// (discarding a live cached decode counts as a drop).
func (st *Storing) Reset() {
	st.DropCache()
	if st.cells != nil {
		st.cells.Reset()
	}
	if st.points != nil {
		st.points.Reset()
	}
	st.netUpdates = 0
	st.epoch = 0
}

// CloneEmpty returns a zeroed Storing sharing st's hash functions, so the
// clone can sketch a second stream and later be Merged back.
func (st *Storing) CloneEmpty() *Storing {
	cp := &Storing{g: st.g, level: st.level, alpha: st.alpha, beta: st.beta, fp: st.fp}
	if st.cells != nil {
		cp.cells = st.cells.CloneEmpty()
	}
	if st.points != nil {
		cp.points = st.points.CloneEmpty()
	}
	return cp
}

// Bytes reports the sketch's memory footprint — the streaming space
// accounted by Theorem 4.5.
func (st *Storing) Bytes() int64 {
	var b int64
	if st.cells != nil {
		b += st.cells.Bytes()
	}
	if st.points != nil {
		b += st.points.Bytes()
	}
	return b
}

// Epoch returns the update epoch: a counter bumped by every
// state-mutating operation (Update, UpdateKeyed, Merge). Result caches
// are tagged with it, so equal epochs mean the cached decode is current.
func (st *Storing) Epoch() uint64 { return st.epoch }

// CacheFresh reports whether a decode cached at the current epoch exists
// — i.e. whether the next Result call is free.
func (st *Storing) CacheFresh() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cacheValid && st.cacheEpoch == st.epoch
}

// DropCache discards the decode cache (releasing its memory). Purely a
// performance knob: the next Result re-decodes from the slabs.
func (st *Storing) DropCache() {
	st.mu.Lock()
	if st.cacheValid {
		st.stats.Drops++
		mCacheDrops.Inc()
	}
	st.cache, st.cacheOK, st.cacheEpoch, st.cacheValid = StoringResult{}, false, 0, false
	st.mu.Unlock()
}

// CacheStats returns this instance's decode-cache behaviour so far.
// Safe to call concurrently with Result.
func (st *Storing) CacheStats() CacheStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// CacheBytes reports the approximate memory held by the decode cache.
// It is deliberately NOT part of Bytes: the cache is derived state,
// reconstructible from the slabs at any time, not sketch space — the
// streaming space bound of Theorem 4.5 is about what must be retained to
// answer future updates, and dropping the cache loses nothing.
func (st *Storing) CacheBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.cacheValid {
		return 0
	}
	var b int64
	for i := range st.cache.Cells {
		b += 40 + int64(len(st.cache.Cells[i].Index))*8
	}
	for i := range st.cache.Points {
		b += 32 + int64(len(st.cache.Points[i].P))*8
	}
	return b
}

// Level returns the grid level this instance sketches.
func (st *Storing) Level() int { return st.level }

// NetUpdates returns the net number of surviving stream updates seen.
func (st *Storing) NetUpdates() int64 { return st.netUpdates }
