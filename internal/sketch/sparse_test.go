package sketch

import (
	"math/rand"
	"testing"

	"streambalance/internal/hashing"
)

func TestSparseRecoveryEmpty(t *testing.T) {
	sr := NewSparseRecovery(rand.New(rand.NewSource(1)), 10, 0.01, 0)
	items, ok := sr.Decode()
	if !ok || len(items) != 0 {
		t.Fatalf("empty sketch: ok=%v items=%d", ok, len(items))
	}
}

func TestSparseRecoverySingle(t *testing.T) {
	sr := NewSparseRecovery(rand.New(rand.NewSource(2)), 4, 0.01, 2)
	sr.Update(12345, []int64{7, -3}, 5)
	items, ok := sr.Decode()
	if !ok || len(items) != 1 {
		t.Fatalf("decode: ok=%v n=%d", ok, len(items))
	}
	it := items[0]
	if it.Key != 12345 || it.Count != 5 || it.Payload[0] != 7 || it.Payload[1] != -3 {
		t.Fatalf("item = %+v", it)
	}
}

func TestSparseRecoveryExactlySparse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := 16
		sr := NewSparseRecovery(rng, s, 0.001, 1)
		want := make(map[uint64]int64)
		for i := 0; i < s; i++ {
			k := uint64(rng.Int63n(1 << 50))
			c := int64(rng.Intn(100) + 1)
			want[k] += c
			sr.Update(k, []int64{int64(k % 97)}, c)
		}
		items, ok := sr.Decode()
		if !ok {
			t.Fatalf("seed %d: decode failed on %d-sparse input", seed, len(want))
		}
		got := make(map[uint64]int64)
		for _, it := range items {
			got[it.Key] += it.Count
			if it.Payload[0] != int64(it.Key%97) {
				t.Fatalf("seed %d: wrong payload for key %d", seed, it.Key)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d keys, want %d", seed, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("seed %d: key %d count %d, want %d", seed, k, got[k], c)
			}
		}
	}
}

func TestSparseRecoveryDeletionsCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sr := NewSparseRecovery(rng, 8, 0.01, 1)
	// Insert a large batch, delete all but a handful: the sketch must be
	// oblivious to the intermediate density (linear sketching).
	for i := 0; i < 5000; i++ {
		sr.Update(uint64(i), []int64{int64(i)}, 1)
	}
	for i := 0; i < 5000; i++ {
		if i%1000 != 0 {
			sr.Update(uint64(i), []int64{int64(i)}, -1)
		}
	}
	items, ok := sr.Decode()
	if !ok {
		t.Fatal("decode failed after deletions restored sparsity")
	}
	if len(items) != 5 {
		t.Fatalf("got %d survivors, want 5", len(items))
	}
	for _, it := range items {
		if it.Key%1000 != 0 || it.Count != 1 || it.Payload[0] != int64(it.Key) {
			t.Fatalf("bad survivor %+v", it)
		}
	}
}

func TestSparseRecoveryOverfullFails(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sr := NewSparseRecovery(rng, 4, 0.01, 0)
	for i := 0; i < 1000; i++ {
		sr.Update(uint64(i*7+1), nil, 1)
	}
	if _, ok := sr.Decode(); ok {
		t.Fatal("decode must FAIL on a 1000-sparse vector with s=4")
	}
}

func TestSparseRecoveryNeverWrongUnderStress(t *testing.T) {
	// Whatever the load, a successful decode must be exactly correct.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Intn(12)
		n := rng.Intn(3 * s)
		sr := NewSparseRecovery(rng, s, 0.01, 0)
		want := make(map[uint64]int64)
		for i := 0; i < n; i++ {
			k := uint64(rng.Int63n(64) + 1)
			d := int64(rng.Intn(5) - 2)
			want[k] += d
			sr.Update(k, nil, d)
		}
		for k, c := range want {
			if c == 0 {
				delete(want, k)
			}
		}
		items, ok := sr.Decode()
		if !ok {
			if len(want) <= s {
				t.Fatalf("seed %d: spurious FAIL on %d-sparse (s=%d)", seed, len(want), s)
			}
			continue
		}
		got := make(map[uint64]int64)
		for _, it := range items {
			got[it.Key] = it.Count
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d keys want %d", seed, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("seed %d: key %d: got %d want %d", seed, k, got[k], c)
			}
		}
	}
}

func TestSparseRecoveryNegativeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sr := NewSparseRecovery(rng, 4, 0.01, 1)
	sr.Update(42, []int64{5}, -3) // net-negative entries are representable
	items, ok := sr.Decode()
	if !ok || len(items) != 1 {
		t.Fatalf("decode: ok=%v n=%d", ok, len(items))
	}
	if items[0].Count != -3 || items[0].Payload[0] != 5 {
		t.Fatalf("item = %+v", items[0])
	}
}

func TestSparseRecoveryMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := NewSparseRecovery(rng, 8, 0.01, 1)
	b := a.CloneEmpty()
	a.Update(1, []int64{10}, 2)
	a.Update(2, []int64{20}, 1)
	b.Update(2, []int64{20}, 3)
	b.Update(3, []int64{30}, 1)
	a.Merge(b)
	items, ok := a.Decode()
	if !ok {
		t.Fatal("merged decode failed")
	}
	got := map[uint64]int64{}
	for _, it := range items {
		got[it.Key] = it.Count
	}
	if got[1] != 2 || got[2] != 4 || got[3] != 1 {
		t.Fatalf("merged counts = %v", got)
	}
}

func TestSparseRecoveryMergeShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := NewSparseRecovery(rng, 8, 0.01, 1)
	b := NewSparseRecovery(rng, 4, 0.01, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestSparseRecoveryBytesScalesWithS(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	small := NewSparseRecovery(rng, 4, 0.01, 2)
	big := NewSparseRecovery(rng, 64, 0.01, 2)
	if small.Bytes() >= big.Bytes() {
		t.Fatalf("bytes: small=%d big=%d", small.Bytes(), big.Bytes())
	}
	if small.Bytes() <= 0 {
		t.Fatal("bytes must be positive")
	}
}

func TestSparseRecoveryDuplicateKeyAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sr := NewSparseRecovery(rng, 4, 0.01, 1)
	for i := 0; i < 10; i++ {
		sr.Update(99, []int64{4}, 1)
	}
	items, ok := sr.Decode()
	if !ok || len(items) != 1 || items[0].Count != 10 || items[0].Payload[0] != 4 {
		t.Fatalf("accumulation broken: ok=%v items=%+v", ok, items)
	}
}

func TestToFieldRoundTrip(t *testing.T) {
	// ToField(-v) must be the additive inverse of ToField(v).
	for _, v := range []int64{1, 2, 1 << 40, 12345} {
		s := hashing.AddMod(hashing.ToField(v), hashing.ToField(-v))
		if s != 0 {
			t.Fatalf("ToField(%d) + ToField(-%d) = %d", v, v, s)
		}
	}
}
