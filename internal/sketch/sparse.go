// Package sketch implements the linear sketches behind the dynamic
// streaming algorithm of Section 4: an s-sparse recovery structure over
// keyed integer vectors, and the Storing(G_i, α, β, δ) subroutine of
// Lemma 4.2 built on top of it.
//
// A sparse-recovery sketch maintains, under arbitrary interleaved
// insertions and deletions, a vector x indexed by 64-bit field keys. If at
// decode time x has at most s nonzero entries, Decode recovers all of them
// exactly (with their integer payload vectors, e.g. point coordinates or
// cell indices) with high probability; otherwise it reports failure —
// never a wrong answer, matching the FAIL contract of Lemma 4.2.
package sketch

import (
	"math"
	"math/bits"
	"math/rand"
	"sync/atomic"

	"streambalance/internal/hashing"
)

// Item is one recovered nonzero entry of the sketched vector.
type Item struct {
	Key     uint64  // field key identifying the entry
	Count   int64   // net multiplicity after all insertions/deletions
	Payload []int64 // payload vector (count-weighted sums divided out)
}

// SparseRecovery is an s-sparse recovery sketch with an optional integer
// payload of fixed dimension attached to every key. All operations are
// linear, so the structure supports deletions (negative updates) natively
// and two sketches over the same hash functions can be merged by addition.
//
// Bucket state lives in one flat slab of int64 words, stride words per
// bucket: [count, keySum, fpSum, payload...]. keySum = Σ count·key and
// fpSum = Σ count·fp(key) are GF(p) elements (p = 2^61 − 1 < 2^63, so they
// fit in the signed words); keeping the payload inline in the same slab
// means Update touches one contiguous run of memory per row — the sketch
// update is the ingest hot path, and the pointer-chasing bucket-of-slices
// layout this replaces paid roughly twice the cache misses per op.
type SparseRecovery struct {
	s          int // sparsity budget
	rows       int
	width      int
	payloadDim int
	stride     int // int64 words per bucket: 3 + payloadDim

	rowHash []*hashing.KWise // bucket placement, one per row
	fpHash  *hashing.KWise   // key fingerprint shared by all rows

	slab []int64 // rows × width buckets, stride words each

	// Dirty-bucket journal for the differential decode (DESIGN.md §13).
	// While track is set, every bucket whose words may have changed since
	// the last snapshot is appended to dirty (duplicates allowed — writes
	// are idempotent to replay). The journal lets DecodeDeltaWith fill,
	// peel, verify and re-zero only the changed buckets, and SnapshotInto
	// refresh only those buckets, making a splice O(dirty) instead of
	// O(slab). When the journal outgrows dirtyCap the sketch flips to
	// trackDense — "changed too much to enumerate" — and the splice falls
	// back to the full-residual peel. The journal is derived state: absent
	// from Bytes, Digest and clones.
	track      bool
	trackDense bool
	dirty      []int32

	scr *updScratch // lazily allocated batch-kernel scratch; never shared
}

// updScratch holds the reusable buffers of the bucket-ordered batch
// kernel (updateOrderedN). It is private to one SparseRecovery — updates
// must not run concurrently on one sketch (the Storing contract), and
// CloneEmpty/clone never share it — so no synchronization is needed.
type updScratch struct {
	rk   []uint64 // reduced keys
	fe   []uint64 // fingerprint evaluations
	dk   []uint64 // ToField(delta)·key terms
	dfp  []uint64 // ToField(delta)·fp(key) terms
	he   []uint64 // row-hash evaluations, one row at a time
	bkt  []int32  // bucket target per item for the current row
	perm []int32  // counting-sort permutation (bucket-ascending item order)
	cnt  []int32  // per-bucket counters / running positions, width entries
}

func (sr *SparseRecovery) scratch(n int) *updScratch {
	s := sr.scr
	if s == nil {
		s = new(updScratch)
		sr.scr = s
	}
	if cap(s.rk) < n {
		s.rk = make([]uint64, n)
		s.fe = make([]uint64, n)
		s.dk = make([]uint64, n)
		s.dfp = make([]uint64, n)
		s.he = make([]uint64, n)
		s.bkt = make([]int32, n)
		s.perm = make([]int32, n)
	}
	if cap(s.cnt) < sr.width {
		s.cnt = make([]int32, sr.width)
	}
	return s
}

// bucketOrderOn gates the bucket-ordered application mode of
// UpdateN/UpdateScaledN (on by default). Both modes are bit-identical —
// exact commutative sums make write order irrelevant — so the knob is
// purely a perf A/B switch for benchmarks and the equivalence tests.
var bucketOrderOn = func() *atomic.Bool {
	var b atomic.Bool
	b.Store(true)
	return &b
}()

// SetBucketOrder enables or disables bucket-ordered batch application,
// returning the previous setting. Safe to call between batches; both
// settings produce bit-identical sketch state.
func SetBucketOrder(on bool) bool { return bucketOrderOn.Swap(on) }

// orderedMinRows is the batch size below which the bucket-ordering
// pass (hash columns + per-row counting sort) costs more than the
// cache locality it buys; small batches take the 4-lane scatter path.
const orderedMinRows = 64

// useOrdered reports whether a batch of n updates should go through the
// bucket-ordered kernel: the batch must be large in absolute terms and
// relative to the bucket row (zeroing width counters per row has to
// amortize over the items).
func (sr *SparseRecovery) useOrdered(n int) bool {
	return n >= orderedMinRows && n*8 >= sr.width && bucketOrderOn.Load()
}

// NewSparseRecovery creates a sketch that recovers any vector with at most
// s nonzero keys with failure probability ≈ δ. payloadDim is the length of
// the payload vector attached to each key (0 for none).
func NewSparseRecovery(rng *rand.Rand, s int, delta float64, payloadDim int) *SparseRecovery {
	if s < 1 {
		s = 1
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	// Peeling over independent rows of 2s buckets is an IBLT-style
	// hypergraph core computation: at load factor 1/2 per row, 4 rows
	// decode an s-sparse vector with high probability, and each extra row
	// multiplies the failure probability by a constant < 1/4.
	rows := 4
	if extra := int(math.Ceil(math.Log2(0.01/delta) / 4)); extra > 0 {
		rows += extra
	}
	invTabOnce.Do(initInvTab) // purity tests use the small-count inverse table
	sr := &SparseRecovery{
		s:          s,
		rows:       rows,
		width:      2 * s,
		payloadDim: payloadDim,
		stride:     3 + payloadDim,
		rowHash:    make([]*hashing.KWise, rows),
		fpHash:     hashing.NewKWise(rng, 4),
	}
	for r := 0; r < rows; r++ {
		sr.rowHash[r] = hashing.NewKWise(rng, 2)
	}
	sr.slab = make([]int64, rows*sr.width*sr.stride)
	return sr
}

// Sparsity returns the sparsity budget s.
func (sr *SparseRecovery) Sparsity() int { return sr.s }

// dirtyCap bounds the journal: past a quarter of the buckets (plus a
// floor for tiny sketches) enumerating changes buys nothing over a full
// slab pass, so the sketch flips to densely-dirty instead.
func (sr *SparseRecovery) dirtyCap() int { return sr.rows*sr.width/4 + 64 }

// markDirty journals one changed bucket; callers guard on sr.track.
func (sr *SparseRecovery) markDirty(bi int) {
	if sr.trackDense {
		return
	}
	if len(sr.dirty) >= sr.dirtyCap() {
		sr.trackDense = true
		sr.dirty = sr.dirty[:0]
		return
	}
	sr.dirty = append(sr.dirty, int32(bi))
}

// StartDirtyTracking (re)starts the journal from the present state —
// called right after a snapshot, so that journal ⊇ {buckets differing
// from the snapshot} holds from here on.
func (sr *SparseRecovery) StartDirtyTracking() {
	sr.track, sr.trackDense, sr.dirty = true, false, sr.dirty[:0]
}

// StopDirtyTracking turns the journal off and releases it.
func (sr *SparseRecovery) StopDirtyTracking() {
	sr.track, sr.trackDense, sr.dirty = false, false, nil
}

// DirtySparse reports whether the journal is live and usable — i.e.
// the set of buckets changed since the last snapshot is exactly
// enumerated by it.
func (sr *SparseRecovery) DirtySparse() bool { return sr.track && !sr.trackDense }

// DirtyJournalBytes reports the journal's memory footprint (derived
// state, counted by Storing.CacheBytes alongside the snapshots).
func (sr *SparseRecovery) DirtyJournalBytes() int64 { return int64(cap(sr.dirty)) * 4 }

// bucketOf maps a row-hash value h ∈ [0, p) to a bucket in [0, width) with
// a Lemire multiply-shift instead of a 64-bit modulo — the modulo was a
// measurable slice of the per-update cost. Shifting h to the top of the
// 64-bit range first keeps the map near-uniform.
func bucketOf(h uint64, width int) int {
	hi, _ := bits.Mul64(h<<3, uint64(width))
	return int(hi)
}

// Update applies x[key] += delta, with the payload vector scaled by delta.
// payload must have length payloadDim (nil allowed when payloadDim == 0).
func (sr *SparseRecovery) Update(key uint64, payload []int64, delta int64) {
	if delta == 0 {
		return
	}
	key = hashing.Reduce64(key)
	df := hashing.ToField(delta)
	// delta·key and delta·fp(key) are row-independent; compute them once.
	dk := hashing.MulMod(df, key)
	dfp := hashing.MulMod(df, sr.fpHash.Eval(key))
	for r := 0; r < sr.rows; r++ {
		c := bucketOf(sr.rowHash[r].Eval(key), sr.width)
		if sr.track {
			sr.markDirty(r*sr.width + c)
		}
		b := sr.slab[(r*sr.width+c)*sr.stride:][:sr.stride:sr.stride]
		b[0] += delta
		b[1] = int64(hashing.AddMod(uint64(b[1]), dk))
		b[2] = int64(hashing.AddMod(uint64(b[2]), dfp))
		for j := 0; j < sr.payloadDim; j++ {
			b[3+j] += delta * payload[j]
		}
	}
}

// UpdateN applies a column of updates: x[keys[t]] += deltas[t] with the
// payload row payload[t*payloadDim:(t+1)*payloadDim] scaled by deltas[t]
// (payload may be nil when payloadDim == 0). Bucket state is a sum of
// exact field and integer terms, so the result is bit-identical to
// applying the updates one at a time in any order — which frees the
// implementation to pick its write schedule: large batches go through
// the bucket-ordered kernel (updateOrderedN), whose slab writes run
// row-major in bucket-sorted order instead of scattering, and small
// batches through the 4-lane scatter path (updateLanesN).
func (sr *SparseRecovery) UpdateN(keys []uint64, payload []int64, deltas []int64) {
	n := len(keys)
	if len(deltas) != n {
		panic("sketch: UpdateN column length mismatch")
	}
	if sr.payloadDim > 0 && len(payload) != n*sr.payloadDim {
		panic("sketch: UpdateN payload column length mismatch")
	}
	if sr.useOrdered(n) {
		sr.updateOrderedN(keys, payload, deltas, false)
		return
	}
	sr.updateLanesN(keys, payload, deltas, false)
}

// updateLanesN is the 4-lane scatter path of UpdateN and UpdateScaledN:
// full blocks batch the fingerprint and row-hash evaluations through the
// interleaved Horner kernels, breaking the per-key multiply dependency
// chain; the ragged tail runs the scalar Update/updateScaled. Slab
// writes land wherever the row hashes point — fine for small batches,
// cache-hostile for large ones (see updateOrderedN).
//
// scaled selects the UpdateScaledN write rule: payload words added
// verbatim and zero-delta rows applied; otherwise payload is scaled by
// delta and zero-delta rows are skipped, matching Update.
func (sr *SparseRecovery) updateLanesN(keys []uint64, payload []int64, deltas []int64, scaled bool) {
	n := len(keys)
	pd := sr.payloadDim
	t := 0
	for ; t+4 <= n; t += 4 {
		k0 := hashing.Reduce64(keys[t])
		k1 := hashing.Reduce64(keys[t+1])
		k2 := hashing.Reduce64(keys[t+2])
		k3 := hashing.Reduce64(keys[t+3])
		f0, f1, f2, f3 := sr.fpHash.Eval4(k0, k1, k2, k3)
		lk := [4]uint64{k0, k1, k2, k3}
		lf := [4]uint64{f0, f1, f2, f3}
		var ldk, ldfp [4]uint64
		for l := 0; l < 4; l++ {
			df := hashing.ToField(deltas[t+l])
			ldk[l] = hashing.MulMod(df, lk[l])
			ldfp[l] = hashing.MulMod(df, lf[l])
		}
		for r := 0; r < sr.rows; r++ {
			h0, h1, h2, h3 := sr.rowHash[r].Eval4(k0, k1, k2, k3)
			lc := [4]int{
				bucketOf(h0, sr.width), bucketOf(h1, sr.width),
				bucketOf(h2, sr.width), bucketOf(h3, sr.width),
			}
			// Sequential writes: two lanes may land in the same bucket,
			// and exact commutative sums make any write order identical.
			for l := 0; l < 4; l++ {
				delta := deltas[t+l]
				if delta == 0 && !scaled {
					continue
				}
				if sr.track {
					sr.markDirty(r*sr.width + lc[l])
				}
				b := sr.slab[(r*sr.width+lc[l])*sr.stride:][:sr.stride:sr.stride]
				b[0] += delta
				b[1] = int64(hashing.AddMod(uint64(b[1]), ldk[l]))
				b[2] = int64(hashing.AddMod(uint64(b[2]), ldfp[l]))
				if scaled {
					for j := 0; j < pd; j++ {
						b[3+j] += payload[(t+l)*pd+j]
					}
				} else {
					for j := 0; j < pd; j++ {
						b[3+j] += delta * payload[(t+l)*pd+j]
					}
				}
			}
		}
	}
	for ; t < n; t++ {
		var row []int64
		if pd > 0 {
			row = payload[t*pd : (t+1)*pd]
		}
		if scaled {
			sr.updateScaled(keys[t], row, deltas[t])
		} else {
			sr.Update(keys[t], row, deltas[t])
		}
	}
}

// UpdateScaledN is UpdateN for pre-aggregated input: payload rows are
// already delta-scaled sums (Σ dᵢ·payloadᵢ over the ops coalesced into
// the row) and deltas are the matching count sums (Σ dᵢ), as produced by
// the ingest key-coalescer. The slab writes add the payload words as
// given instead of multiplying by delta, and a zero-delta row is still
// applied — its field terms vanish (ToField(0)·x = 0) but its payload
// sum may not, exactly as the constituent per-op updates would have
// written it. Linearity over GF(p) and int64 makes the result
// bit-identical to applying the un-coalesced updates one at a time:
// ToField distributes over signed sums mod p, and every slab word is an
// exact commutative sum.
func (sr *SparseRecovery) UpdateScaledN(keys []uint64, scaled []int64, deltas []int64) {
	n := len(keys)
	if len(deltas) != n {
		panic("sketch: UpdateScaledN column length mismatch")
	}
	if sr.payloadDim > 0 && len(scaled) != n*sr.payloadDim {
		panic("sketch: UpdateScaledN payload column length mismatch")
	}
	if sr.useOrdered(n) {
		sr.updateOrderedN(keys, scaled, deltas, true)
		return
	}
	sr.updateLanesN(keys, scaled, deltas, true)
}

// updateScaled is the scalar form of UpdateScaledN: one pre-aggregated
// row, payload added verbatim.
func (sr *SparseRecovery) updateScaled(key uint64, scaled []int64, delta int64) {
	key = hashing.Reduce64(key)
	df := hashing.ToField(delta)
	dk := hashing.MulMod(df, key)
	dfp := hashing.MulMod(df, sr.fpHash.Eval(key))
	for r := 0; r < sr.rows; r++ {
		c := bucketOf(sr.rowHash[r].Eval(key), sr.width)
		if sr.track {
			sr.markDirty(r*sr.width + c)
		}
		b := sr.slab[(r*sr.width+c)*sr.stride:][:sr.stride:sr.stride]
		b[0] += delta
		b[1] = int64(hashing.AddMod(uint64(b[1]), dk))
		b[2] = int64(hashing.AddMod(uint64(b[2]), dfp))
		for j := 0; j < sr.payloadDim; j++ {
			b[3+j] += scaled[j]
		}
	}
}

// updateOrderedN applies a batch with bucket-ordered slab traffic. The
// hash columns — reduced keys, fingerprints, per-row bucket targets —
// are precomputed through the 4-lane EvalN kernels, then each row's
// writes are applied in bucket-ascending order via a counting-sort
// permutation: the slab is touched row-major, sequentially within each
// row, instead of one random bucket per (op × row). Duplicate keys in
// the batch land adjacently, so their bucket lines are written while
// still hot. Write order is irrelevant to the exact commutative sums in
// the slab, so the result is bit-identical to the scatter path
// (TestUpdateNOrderedMatchesScatter, FuzzCoalescedIngestMatchesSerial).
//
// scaled selects the UpdateScaledN write rule: payload words added
// verbatim and zero-delta rows applied; otherwise payload is scaled by
// delta and zero-delta rows are skipped, matching Update.
func (sr *SparseRecovery) updateOrderedN(keys []uint64, payload []int64, deltas []int64, scaled bool) {
	n := len(keys)
	s := sr.scratch(n)
	rk, fe := s.rk[:n], s.fe[:n]
	for t, k := range keys {
		rk[t] = hashing.Reduce64(k)
	}
	sr.fpHash.EvalN(fe, rk)
	dk, dfp := s.dk[:n], s.dfp[:n]
	for t := range rk {
		df := hashing.ToField(deltas[t])
		dk[t] = hashing.MulMod(df, rk[t])
		dfp[t] = hashing.MulMod(df, fe[t])
	}
	pd, stride, width := sr.payloadDim, sr.stride, sr.width
	he, bkt, perm, cnt := s.he[:n], s.bkt[:n], s.perm[:n], s.cnt[:width]
	for r := 0; r < sr.rows; r++ {
		sr.rowHash[r].EvalN(he, rk)
		for i := range cnt {
			cnt[i] = 0
		}
		for t := range he {
			c := int32(bucketOf(he[t], width))
			bkt[t] = c
			cnt[c]++
		}
		var pos int32
		for c := range cnt {
			k := cnt[c]
			cnt[c] = pos
			pos += k
		}
		for t := range bkt {
			c := bkt[t]
			perm[cnt[c]] = int32(t)
			cnt[c]++
		}
		row := sr.slab[r*width*stride : (r+1)*width*stride]
		lastDirty := int32(-1)
		for _, t32 := range perm {
			t := int(t32)
			delta := deltas[t]
			if !scaled && delta == 0 {
				continue
			}
			// perm is bucket-ascending, so duplicate keys journal once.
			if sr.track && bkt[t] != lastDirty {
				lastDirty = bkt[t]
				sr.markDirty(r*width + int(lastDirty))
			}
			b := row[int(bkt[t])*stride:][:stride:stride]
			b[0] += delta
			b[1] = int64(hashing.AddMod(uint64(b[1]), dk[t]))
			b[2] = int64(hashing.AddMod(uint64(b[2]), dfp[t]))
			if pd > 0 {
				src := payload[t*pd : (t+1)*pd]
				if scaled {
					for j := 0; j < pd; j++ {
						b[3+j] += src[j]
					}
				} else {
					for j := 0; j < pd; j++ {
						b[3+j] += delta * src[j]
					}
				}
			}
		}
	}
}

// Merge adds the state of other into sr. The two sketches must have been
// created with identical parameters and hash functions (i.e. other must be
// a Clone sibling); Merge panics on shape mismatch.
func (sr *SparseRecovery) Merge(other *SparseRecovery) {
	if sr.rows != other.rows || sr.width != other.width || sr.payloadDim != other.payloadDim {
		panic("sketch: merge shape mismatch")
	}
	for i := 0; i < len(sr.slab); i += sr.stride {
		a, b := sr.slab[i:i+sr.stride], other.slab[i:i+sr.stride]
		if sr.track {
			changed := false
			for j := 0; j < sr.stride; j++ {
				if b[j] != 0 {
					changed = true
					break
				}
			}
			if changed {
				sr.markDirty(i / sr.stride)
			}
		}
		a[0] += b[0]
		a[1] = int64(hashing.AddMod(uint64(a[1]), uint64(b[1])))
		a[2] = int64(hashing.AddMod(uint64(a[2]), uint64(b[2])))
		for j := 3; j < sr.stride; j++ {
			a[j] += b[j]
		}
	}
}

// CloneEmpty returns a fresh sketch sharing sr's hash functions with all
// buckets zeroed, suitable for later Merge.
func (sr *SparseRecovery) CloneEmpty() *SparseRecovery {
	cp := *sr
	cp.slab = make([]int64, len(sr.slab))
	cp.scr = nil // batch scratch is per-instance; clones run on other goroutines
	cp.track, cp.trackDense, cp.dirty = false, false, nil
	return &cp
}

// Reset zeroes the bucket state in place, keeping the hash functions —
// the memory-recycling analogue of CloneEmpty. Any dirty journal dies
// with the state it was tracking.
func (sr *SparseRecovery) Reset() {
	clear(sr.slab)
	sr.StopDirtyTracking()
}

// SnapshotSlab copies the current bucket slab into dst (grown if
// needed) and returns it. A snapshot is the base of a later
// DecodeDeltaWith: by linearity, cur − snapshot sketches exactly the
// updates applied in between. The snapshot is plain memory — it never
// aliases the live slab, so subsequent updates leave it untouched.
func (sr *SparseRecovery) SnapshotSlab(dst []int64) []int64 {
	if cap(dst) < len(sr.slab) {
		dst = make([]int64, len(sr.slab))
	}
	dst = dst[:len(sr.slab)]
	copy(dst, sr.slab)
	return dst
}

// RefreshSnapshot brings a snapshot previously taken by SnapshotSlab up
// to the current state and restarts the journal. With a live sparse
// journal only the journaled buckets are copied — every other bucket is
// unchanged since the snapshot by the journal invariant, O(dirty)
// instead of O(slab); otherwise it falls back to the full copy. Either
// way the returned snapshot equals the current slab verbatim.
func (sr *SparseRecovery) RefreshSnapshot(dst []int64) []int64 {
	if sr.DirtySparse() && len(dst) == len(sr.slab) {
		stride := sr.stride
		for _, b32 := range sr.dirty {
			off := int(b32) * stride
			copy(dst[off:off+stride], sr.slab[off:off+stride])
		}
		sr.StartDirtyTracking()
		return dst
	}
	dst = sr.SnapshotSlab(dst)
	sr.StartDirtyTracking()
	return dst
}

// clone deep-copies the bucket state (hash functions shared).
func (sr *SparseRecovery) clone() *SparseRecovery {
	cp := sr.CloneEmpty()
	copy(cp.slab, sr.slab)
	return cp
}

// pureAt checks whether the bucket slab words b hold exactly one key and,
// if so, extracts it. Every verification — fingerprint, then payload
// divisibility — runs before the payload slice is materialized, so an
// impure candidate costs no allocation (the worklist decoder's pureKeyAt
// keeps the same ordering).
func (sr *SparseRecovery) pureAt(b []int64) (Item, bool) {
	count := b[0]
	if count == 0 {
		return Item{}, false
	}
	cf := hashing.ToField(count)
	if cf == 0 {
		return Item{}, false
	}
	key := hashing.MulMod(uint64(b[1]), hashing.InvMod(cf))
	if hashing.MulMod(cf, sr.fpHash.Eval(key)) != uint64(b[2]) {
		return Item{}, false
	}
	for j := 0; j < sr.payloadDim; j++ {
		if b[3+j]%count != 0 {
			return Item{}, false
		}
	}
	var payload []int64
	if sr.payloadDim > 0 {
		payload = make([]int64, sr.payloadDim)
		for j := range payload {
			payload[j] = b[3+j] / count
		}
	}
	return Item{Key: key, Count: count, Payload: payload}, true
}

// DecodeReference is the retained scalar reference decoder: full-slab
// rescan rounds over a cloned working copy, one purity probe per bucket
// per round. It is the equivalence baseline the worklist decoder
// (decode.go) is pinned against — bit-identical items, ok-flag and FAIL
// cases — and is exercised by the check-hash suite and the decode bench;
// production paths use Decode.
func (sr *SparseRecovery) DecodeReference() (items []Item, ok bool) {
	w := sr.clone()
	for {
		progress := false
		for r := 0; r < w.rows && len(items) <= w.s; r++ {
			for c := 0; c < w.width; c++ {
				it, pure := w.pureAt(w.slab[(r*w.width+c)*w.stride:][:w.stride])
				if !pure {
					continue
				}
				items = append(items, it)
				w.Update(it.Key, it.Payload, -it.Count)
				progress = true
			}
		}
		if len(items) > w.s {
			return nil, false
		}
		if !progress {
			break
		}
	}
	for i := 0; i < len(w.slab); i += w.stride {
		if w.slab[i] != 0 || w.slab[i+1] != 0 {
			return nil, false
		}
	}
	return items, true
}

// Digest folds the full bucket state into one 64-bit value. Two sketches
// sharing hash functions have equal digests iff their slabs are
// bit-identical — the check the batched-ingestion equivalence tests use.
func (sr *SparseRecovery) Digest() uint64 {
	var d uint64
	for _, v := range sr.slab {
		d = hashing.Mix64(d ^ uint64(v))
	}
	return d
}

// Bytes reports the memory footprint of the bucket state in bytes — the
// quantity the streaming space accounting of Theorem 4.5 measures.
func (sr *SparseRecovery) Bytes() int64 {
	return int64(len(sr.slab)) * 8
}
