// Package sketch implements the linear sketches behind the dynamic
// streaming algorithm of Section 4: an s-sparse recovery structure over
// keyed integer vectors, and the Storing(G_i, α, β, δ) subroutine of
// Lemma 4.2 built on top of it.
//
// A sparse-recovery sketch maintains, under arbitrary interleaved
// insertions and deletions, a vector x indexed by 64-bit field keys. If at
// decode time x has at most s nonzero entries, Decode recovers all of them
// exactly (with their integer payload vectors, e.g. point coordinates or
// cell indices) with high probability; otherwise it reports failure —
// never a wrong answer, matching the FAIL contract of Lemma 4.2.
package sketch

import (
	"math"
	"math/rand"

	"streambalance/internal/hashing"
)

// Item is one recovered nonzero entry of the sketched vector.
type Item struct {
	Key     uint64  // field key identifying the entry
	Count   int64   // net multiplicity after all insertions/deletions
	Payload []int64 // payload vector (count-weighted sums divided out)
}

// bucket accumulates one cell of one hash row.
type bucket struct {
	count   int64
	keySum  uint64 // Σ count·key   (mod p)
	fpSum   uint64 // Σ count·fp(key) (mod p)
	payload []int64
}

// SparseRecovery is an s-sparse recovery sketch with an optional integer
// payload of fixed dimension attached to every key. All operations are
// linear, so the structure supports deletions (negative updates) natively
// and two sketches over the same hash functions can be merged by addition.
type SparseRecovery struct {
	s          int // sparsity budget
	rows       int
	width      int
	payloadDim int

	rowHash []*hashing.KWise // bucket placement, one per row
	fpHash  *hashing.KWise   // key fingerprint shared by all rows

	buckets [][]bucket
}

// NewSparseRecovery creates a sketch that recovers any vector with at most
// s nonzero keys with failure probability ≈ δ. payloadDim is the length of
// the payload vector attached to each key (0 for none).
func NewSparseRecovery(rng *rand.Rand, s int, delta float64, payloadDim int) *SparseRecovery {
	if s < 1 {
		s = 1
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	// Peeling over independent rows of 2s buckets is an IBLT-style
	// hypergraph core computation: at load factor 1/2 per row, 4 rows
	// decode an s-sparse vector with high probability, and each extra row
	// multiplies the failure probability by a constant < 1/4.
	rows := 4
	if extra := int(math.Ceil(math.Log2(0.01/delta) / 4)); extra > 0 {
		rows += extra
	}
	sr := &SparseRecovery{
		s:          s,
		rows:       rows,
		width:      2 * s,
		payloadDim: payloadDim,
		rowHash:    make([]*hashing.KWise, rows),
		fpHash:     hashing.NewKWise(rng, 4),
		buckets:    make([][]bucket, rows),
	}
	for r := 0; r < rows; r++ {
		sr.rowHash[r] = hashing.NewKWise(rng, 2)
		sr.buckets[r] = make([]bucket, sr.width)
		if payloadDim > 0 {
			for c := range sr.buckets[r] {
				sr.buckets[r][c].payload = make([]int64, payloadDim)
			}
		}
	}
	return sr
}

// Sparsity returns the sparsity budget s.
func (sr *SparseRecovery) Sparsity() int { return sr.s }

// Update applies x[key] += delta, with the payload vector scaled by delta.
// payload must have length payloadDim (nil allowed when payloadDim == 0).
func (sr *SparseRecovery) Update(key uint64, payload []int64, delta int64) {
	if delta == 0 {
		return
	}
	key = hashing.Reduce64(key)
	df := hashing.ToField(delta)
	fp := sr.fpHash.Eval(key)
	for r := 0; r < sr.rows; r++ {
		c := sr.rowHash[r].Eval(key) % uint64(sr.width)
		b := &sr.buckets[r][c]
		b.count += delta
		b.keySum = hashing.AddMod(b.keySum, hashing.MulMod(df, key))
		b.fpSum = hashing.AddMod(b.fpSum, hashing.MulMod(df, fp))
		for j := 0; j < sr.payloadDim; j++ {
			b.payload[j] += delta * payload[j]
		}
	}
}

// Merge adds the state of other into sr. The two sketches must have been
// created with identical parameters and hash functions (i.e. other must be
// a Clone sibling); Merge panics on shape mismatch.
func (sr *SparseRecovery) Merge(other *SparseRecovery) {
	if sr.rows != other.rows || sr.width != other.width || sr.payloadDim != other.payloadDim {
		panic("sketch: merge shape mismatch")
	}
	for r := range sr.buckets {
		for c := range sr.buckets[r] {
			a, b := &sr.buckets[r][c], &other.buckets[r][c]
			a.count += b.count
			a.keySum = hashing.AddMod(a.keySum, b.keySum)
			a.fpSum = hashing.AddMod(a.fpSum, b.fpSum)
			for j := 0; j < sr.payloadDim; j++ {
				a.payload[j] += b.payload[j]
			}
		}
	}
}

// CloneEmpty returns a fresh sketch sharing sr's hash functions with all
// buckets zeroed, suitable for later Merge.
func (sr *SparseRecovery) CloneEmpty() *SparseRecovery {
	cp := &SparseRecovery{
		s: sr.s, rows: sr.rows, width: sr.width, payloadDim: sr.payloadDim,
		rowHash: sr.rowHash, fpHash: sr.fpHash,
		buckets: make([][]bucket, sr.rows),
	}
	for r := 0; r < sr.rows; r++ {
		cp.buckets[r] = make([]bucket, sr.width)
		if sr.payloadDim > 0 {
			for c := range cp.buckets[r] {
				cp.buckets[r][c].payload = make([]int64, sr.payloadDim)
			}
		}
	}
	return cp
}

// clone deep-copies the bucket state (hash functions shared).
func (sr *SparseRecovery) clone() *SparseRecovery {
	cp := sr.CloneEmpty()
	for r := range sr.buckets {
		for c := range sr.buckets[r] {
			src, dst := &sr.buckets[r][c], &cp.buckets[r][c]
			dst.count = src.count
			dst.keySum = src.keySum
			dst.fpSum = src.fpSum
			copy(dst.payload, src.payload)
		}
	}
	return cp
}

// pure checks whether b holds exactly one key and, if so, extracts it.
func (sr *SparseRecovery) pure(b *bucket) (Item, bool) {
	if b.count == 0 {
		return Item{}, false
	}
	cf := hashing.ToField(b.count)
	if cf == 0 {
		return Item{}, false
	}
	key := hashing.MulMod(b.keySum, hashing.InvMod(cf))
	if hashing.MulMod(cf, sr.fpHash.Eval(key)) != b.fpSum {
		return Item{}, false
	}
	var payload []int64
	if sr.payloadDim > 0 {
		payload = make([]int64, sr.payloadDim)
		for j := range payload {
			if b.payload[j]%b.count != 0 {
				return Item{}, false
			}
			payload[j] = b.payload[j] / b.count
		}
	}
	return Item{Key: key, Count: b.count, Payload: payload}, true
}

// Decode recovers the full vector if it is ≤ s sparse. On success it
// returns all nonzero items; on failure (over-full or an internal hash
// verification failed) ok is false and items must be ignored. Decode does
// not modify the sketch.
func (sr *SparseRecovery) Decode() (items []Item, ok bool) {
	w := sr.clone()
	for {
		progress := false
		for r := 0; r < w.rows && len(items) <= w.s; r++ {
			for c := 0; c < w.width; c++ {
				it, pure := w.pure(&w.buckets[r][c])
				if !pure {
					continue
				}
				items = append(items, it)
				w.Update(it.Key, it.Payload, -it.Count)
				progress = true
			}
		}
		if len(items) > w.s {
			return nil, false
		}
		if !progress {
			break
		}
	}
	for r := range w.buckets {
		for c := range w.buckets[r] {
			if w.buckets[r][c].count != 0 || w.buckets[r][c].keySum != 0 {
				return nil, false
			}
		}
	}
	return items, true
}

// Bytes reports the memory footprint of the bucket state in bytes — the
// quantity the streaming space accounting of Theorem 4.5 measures.
func (sr *SparseRecovery) Bytes() int64 {
	perBucket := int64(8 * (3 + sr.payloadDim))
	return int64(sr.rows) * int64(sr.width) * perBucket
}
