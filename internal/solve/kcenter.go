package solve

import (
	"math"
	"math/rand"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
)

// GonzalezSeed picks k centers by farthest-point traversal — the classic
// 2-approximation seeding for (uncapacitated) k-center.
func GonzalezSeed(rng *rand.Rand, ps geo.PointSet, k int) []geo.Point {
	if len(ps) == 0 || k < 1 {
		panic("solve: empty input or k < 1")
	}
	centers := []geo.Point{ps[rng.Intn(len(ps))]}
	for len(centers) < k {
		far, best := 0, -1.0
		for i, p := range ps {
			if d, _ := geo.DistToSet(p, centers); d > best {
				best, far = d, i
			}
		}
		centers = append(centers, ps[far])
	}
	return centers
}

// CapacitatedKCenter solves capacitated k-center (the r = ∞ member of
// the paper's family): Gonzalez seeding, optimal capacitated bottleneck
// assignment (min-max distance under per-center capacity t), and
// single-swap local search on the bottleneck radius. The best of
// `restarts` runs is returned; ok is false when ⌊t⌋·k < n.
func CapacitatedKCenter(rng *rand.Rand, ps geo.PointSet, k int, t float64, restarts, swaps int) (Solution, bool) {
	if restarts < 1 {
		restarts = 1
	}
	best := Solution{Cost: math.Inf(1)}
	found := false
	for run := 0; run < restarts; run++ {
		centers := GonzalezSeed(rng, ps, k)
		res, ok := assign.OptimalBottleneck(ps, centers, t)
		if !ok {
			return Solution{}, false
		}
		cur := Solution{Centers: centers, Assign: res.Assign, Cost: res.Cost, Sizes: res.Sizes}
		for s := 0; s < swaps; s++ {
			improved := false
			for c := 0; c < 6 && !improved; c++ {
				cand := ps[rng.Intn(len(ps))]
				for j := 0; j < k && !improved; j++ {
					trial := make([]geo.Point, k)
					copy(trial, cur.Centers)
					trial[j] = cand
					r2, ok := assign.OptimalBottleneck(ps, trial, t)
					if ok && r2.Cost < cur.Cost*(1-1e-9) {
						cur = Solution{Centers: trial, Assign: r2.Assign, Cost: r2.Cost, Sizes: r2.Sizes}
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		if cur.Cost < best.Cost {
			best = cur
			found = true
		}
	}
	return best, found
}
