package solve

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

// seedKMeansPPRef is the pre-optimization quadratic implementation,
// kept verbatim as the reference the incremental O(nk) version is
// pinned against: identical rng call sequence, identical float values,
// identical centers.
func seedKMeansPPRef(rng *rand.Rand, ws []geo.Weighted, k int, r float64) []geo.Point {
	if len(ws) == 0 || k < 1 {
		panic("solve: empty input or k < 1")
	}
	centers := make([]geo.Point, 0, k)
	tot := geo.TotalWeight(ws)
	target := rng.Float64() * tot
	acc := 0.0
	for _, w := range ws {
		acc += w.W
		if acc >= target {
			centers = append(centers, w.P)
			break
		}
	}
	if len(centers) == 0 {
		centers = append(centers, ws[len(ws)-1].P)
	}
	d2 := make([]float64, len(ws))
	for len(centers) < k {
		sum := 0.0
		for i, w := range ws {
			dd, _ := geo.DistToSet(w.P, centers)
			d2[i] = w.W * geo.PowR(dd, r)
			sum += d2[i]
		}
		if sum == 0 {
			centers = append(centers, ws[rng.Intn(len(ws))].P)
			continue
		}
		target := rng.Float64() * sum
		acc := 0.0
		idx := len(ws) - 1
		for i := range ws {
			acc += d2[i]
			if acc >= target {
				idx = i
				break
			}
		}
		centers = append(centers, ws[idx].P)
	}
	return centers
}

func randWeighted(rng *rand.Rand, n, dim int, delta int64) []geo.Weighted {
	ws := make([]geo.Weighted, n)
	for i := range ws {
		p := make(geo.Point, dim)
		for j := range p {
			p[j] = rng.Int63n(delta)
		}
		ws[i] = geo.Weighted{P: p, W: 1 + rng.Float64()*5}
	}
	return ws
}

func TestSeedKMeansPPMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 50 + rng.Intn(400)
		k := 1 + rng.Intn(12)
		r := []float64{1, 2, 3}[rng.Intn(3)]
		ws := randWeighted(rng, n, 2+rng.Intn(3), 1<<10)

		got := SeedKMeansPP(rand.New(rand.NewSource(seed)), ws, k, r)
		want := seedKMeansPPRef(rand.New(rand.NewSource(seed)), ws, k, r)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d centers vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("seed %d: center %d is %v, reference %v", seed, i, got[i], want[i])
			}
		}
	}
}

// Duplicate-heavy inputs drive the sum == 0 branch (all mass on chosen
// centers), which must also consume the rng identically.
func TestSeedKMeansPPMatchesReferenceOnDuplicates(t *testing.T) {
	base := geo.Point{7, 7}
	ws := make([]geo.Weighted, 40)
	for i := range ws {
		ws[i] = geo.Weighted{P: base, W: 2}
	}
	ws = append(ws, geo.Weighted{P: geo.Point{1, 1}, W: 1})
	for seed := int64(0); seed < 10; seed++ {
		got := SeedKMeansPP(rand.New(rand.NewSource(seed)), ws, 6, 2)
		want := seedKMeansPPRef(rand.New(rand.NewSource(seed)), ws, 6, 2)
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("seed %d: center %d is %v, reference %v", seed, i, got[i], want[i])
			}
		}
	}
}

// EstimateOPT layers Lloyd on the seeding; its output must be untouched
// by the seeding optimization.
func TestEstimateOPTMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		ws := randWeighted(rng, 300, 2, 1<<10)
		got := EstimateOPT(rand.New(rand.NewSource(seed)), ws, 4, 2, 1<<10, 3)

		refRng := rand.New(rand.NewSource(seed))
		want := func() float64 {
			best := -1.0
			for t := 0; t < 3; t++ {
				sol := Lloyd(ws, seedKMeansPPRef(refRng, ws, 4, 2), 2, 1<<10, 10)
				if best < 0 || sol.Cost < best {
					best = sol.Cost
				}
			}
			return best
		}()
		if got != want {
			t.Fatalf("seed %d: EstimateOPT %v, reference %v", seed, got, want)
		}
	}
}
