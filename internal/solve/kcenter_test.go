package solve

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func TestGonzalezSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps, truec := workload.Mixture{N: 600, D: 2, Delta: 4096, K: 3, Spread: 5}.Generate(rng)
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		Z := GonzalezSeed(rng, ps, 3)
		used := map[int]bool{}
		for _, z := range Z {
			_, j := geo.DistToSet(z, truec)
			used[j] = true
		}
		if len(used) == 3 {
			hits++
		}
	}
	// Farthest-point traversal on well-separated clusters covers all of
	// them essentially always.
	if hits < trials-2 {
		t.Fatalf("Gonzalez covered all clusters only %d/%d times", hits, trials)
	}
}

func TestCapacitatedKCenterBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps, _ := workload.TwoBlobs(rng, 120, 1024, 0.8, 5)
	sol, ok := CapacitatedKCenter(rng, ps, 2, 66, 2, 2)
	if !ok {
		t.Fatal("infeasible")
	}
	for _, s := range sol.Sizes {
		if s > 66 {
			t.Fatalf("capacity violated: %v", sol.Sizes)
		}
	}
	// Reported radius consistent with the assignment.
	actual := 0.0
	for i, a := range sol.Assign {
		if d := geo.Dist(ps[i], sol.Centers[a]); d > actual {
			actual = d
		}
	}
	if math.Abs(actual-sol.Cost) > 1e-9 {
		t.Fatalf("radius %v vs actual %v", sol.Cost, actual)
	}
}

func TestCapacitatedKCenterTighterCapacityLargerRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, _ := workload.TwoBlobs(rng, 100, 1024, 0.85, 4)
	loose, ok := CapacitatedKCenter(rng, ps, 2, 90, 3, 2)
	if !ok {
		t.Fatal("infeasible loose")
	}
	tight, ok := CapacitatedKCenter(rng, ps, 2, 51, 3, 2)
	if !ok {
		t.Fatal("infeasible tight")
	}
	if tight.Cost < loose.Cost-1e-9 {
		t.Fatalf("tighter capacity cannot shrink the radius: %v vs %v", tight.Cost, loose.Cost)
	}
}

func TestCapacitatedKCenterInfeasible(t *testing.T) {
	ps := geo.PointSet{{1, 1}, {2, 2}, {3, 3}}
	rng := rand.New(rand.NewSource(4))
	if _, ok := CapacitatedKCenter(rng, ps, 1, 2, 1, 0); ok {
		t.Fatal("must be infeasible")
	}
}

func TestCapacitatedKCenterNearBruteForceOnTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := geo.PointSet{{1, 1}, {2, 1}, {3, 1}, {50, 1}, {51, 1}, {52, 1}}
	sol, ok := CapacitatedKCenter(rng, ps, 2, 3, 4, 3)
	if !ok {
		t.Fatal("infeasible")
	}
	// Optimal: one center per triplet, radius ≤ 1 (centers are input
	// points, so e.g. (2,1) and (51,1) give radius 1).
	if sol.Cost > 1+1e-9 {
		t.Fatalf("radius %v, optimum is 1", sol.Cost)
	}
	// Cross-check against the exact bottleneck oracle at those centers.
	res, ok := assign.OptimalBottleneck(ps, sol.Centers, 3)
	if !ok || math.Abs(res.Cost-sol.Cost) > 1e-9 {
		t.Fatalf("solver radius %v disagrees with oracle %v", sol.Cost, res.Cost)
	}
}
