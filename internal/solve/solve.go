// Package solve provides the clustering solvers the paper treats as black
// boxes: an (α, β)-style capacitated solver used to post-process the
// coreset (Fact 2.3 shows any such solver run on a strong coreset yields
// a (1+O(ε))α, (1+O(η))β solution on the original data), plus the
// uncapacitated baselines used to estimate OPT^{(r)}_{k-clus} (the guess
// o; Theorem 4.5 assumes a 2-approximation of OPT is available).
//
// The solvers are:
//
//   - SeedKMeansPP: D^r-sampling seeding (k-means++ generalized to ℓ_r),
//     giving an O(log k)-approximation in expectation for r = 2.
//   - Lloyd: uncapacitated Lloyd descent under ℓ_r (centroid recentering
//     for r = 2, coordinate-wise weighted median for r = 1).
//   - CapacitatedLloyd: alternates optimal capacitated assignment (via
//     min-cost flow, internal/assign) with recentering — the standard
//     practical stand-in for the [DL16]/[XHX+19] offline approximations,
//     which are LP-rounding constructions with no published
//     implementations.
//   - LocalSearchCapacitated: single-swap local search over center
//     candidates drawn from the input, the classic k-median heuristic,
//     with capacitated assignment as the evaluation oracle.
package solve

import (
	"math"
	"math/rand"
	"sort"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
)

// Solution is a clustering solution on a weighted point set.
type Solution struct {
	Centers []geo.Point
	Assign  []int     // center index per input point (−1 if never assigned)
	Cost    float64   // capacitated (or unconstrained) ℓ_r cost
	Sizes   []float64 // total weight per center
}

// SeedKMeansPP draws k centers from the weighted points by D^r sampling:
// the first uniformly by weight, each subsequent one with probability
// proportional to w(p)·dist^r(p, chosen). Centers are input points, so
// they lie on the grid.
func SeedKMeansPP(rng *rand.Rand, ws []geo.Weighted, k int, r float64) []geo.Point {
	if len(ws) == 0 || k < 1 {
		panic("solve: empty input or k < 1")
	}
	centers := make([]geo.Point, 0, k)
	// First center: weight-proportional.
	tot := geo.TotalWeight(ws)
	target := rng.Float64() * tot
	acc := 0.0
	for _, w := range ws {
		acc += w.W
		if acc >= target {
			centers = append(centers, w.P)
			break
		}
	}
	if len(centers) == 0 {
		centers = append(centers, ws[len(ws)-1].P)
	}
	// minSq[i] caches the squared distance from ws[i] to its nearest
	// chosen center; each round folds in only the centers appended since
	// the previous round, so seeding is O(nk) total instead of O(nk²).
	// √min(minSq) equals DistToSet's √ of the running min, so the sampled
	// centers are bit-identical to the quadratic version.
	minSq := make([]float64, len(ws))
	for i := range minSq {
		minSq[i] = math.Inf(1)
	}
	applied := 0
	d2 := make([]float64, len(ws))
	for len(centers) < k {
		for ; applied < len(centers); applied++ {
			c := centers[applied]
			for i, w := range ws {
				if sq := geo.DistSq(w.P, c); sq < minSq[i] {
					minSq[i] = sq
				}
			}
		}
		sum := 0.0
		for i, w := range ws {
			d2[i] = w.W * geo.PowR(math.Sqrt(minSq[i]), r)
			sum += d2[i]
		}
		if sum == 0 {
			// All mass sits on the chosen centers; duplicate arbitrarily.
			centers = append(centers, ws[rng.Intn(len(ws))].P)
			continue
		}
		target := rng.Float64() * sum
		acc := 0.0
		idx := len(ws) - 1
		for i := range ws {
			acc += d2[i]
			if acc >= target {
				idx = i
				break
			}
		}
		centers = append(centers, ws[idx].P)
	}
	return centers
}

// recenter computes a new grid center for a weighted cluster: the
// weighted centroid for r = 2 (and the general-r default), the
// coordinate-wise weighted median for r = 1.
func recenter(ws []geo.Weighted, members []int, r float64, delta int64, fallback geo.Point) geo.Point {
	if len(members) == 0 {
		return fallback
	}
	d := len(ws[members[0]].P)
	if r == 1 {
		out := make(geo.Point, d)
		for c := 0; c < d; c++ {
			type cw struct {
				v int64
				w float64
			}
			vals := make([]cw, 0, len(members))
			var tot float64
			for _, i := range members {
				vals = append(vals, cw{ws[i].P[c], ws[i].W})
				tot += ws[i].W
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
			acc := 0.0
			for _, v := range vals {
				acc += v.w
				if acc >= tot/2 {
					out[c] = v.v
					break
				}
			}
		}
		return out
	}
	sub := make([]geo.Weighted, len(members))
	for i, m := range members {
		sub[i] = ws[m]
	}
	return geo.RoundToGrid(geo.Centroid(sub), delta)
}

// Lloyd runs uncapacitated ℓ_r Lloyd descent from the given seed centers,
// returning the best solution found. delta bounds the grid for
// recentering.
func Lloyd(ws []geo.Weighted, centers []geo.Point, r float64, delta int64, iters int) Solution {
	k := len(centers)
	cur := make([]geo.Point, k)
	copy(cur, centers)
	best := evalUncapacitated(ws, cur, r)
	for it := 0; it < iters; it++ {
		members := make([][]int, k)
		for i, w := range ws {
			_, j := geo.DistToSet(w.P, cur)
			members[j] = append(members[j], i)
		}
		next := make([]geo.Point, k)
		for j := 0; j < k; j++ {
			next[j] = recenter(ws, members[j], r, delta, cur[j])
		}
		sol := evalUncapacitated(ws, next, r)
		if sol.Cost >= best.Cost-1e-12 {
			break
		}
		cur, best = next, sol
	}
	return best
}

func evalUncapacitated(ws []geo.Weighted, Z []geo.Point, r float64) Solution {
	sol := Solution{Centers: Z, Assign: make([]int, len(ws)), Sizes: make([]float64, len(Z))}
	for i, w := range ws {
		d, j := geo.DistToSet(w.P, Z)
		sol.Assign[i] = j
		sol.Sizes[j] += w.W
		sol.Cost += w.W * geo.PowR(d, r)
	}
	return sol
}

// EstimateOPT returns an upper bound on OPT^{(r)}_{k-clus} — the
// uncapacitated optimum — by k-means++ seeding followed by Lloyd descent,
// taking the best of `restarts` runs. Any feasible clustering's cost
// upper-bounds OPT, so the estimate is always valid as an upper bound;
// its tightness (O(log k) in expectation from the seeding) is what the
// guess-selection o = estimate/C relies on.
func EstimateOPT(rng *rand.Rand, ws []geo.Weighted, k int, r float64, delta int64, restarts int) float64 {
	if restarts < 1 {
		restarts = 1
	}
	best := math.Inf(1)
	for t := 0; t < restarts; t++ {
		seed := SeedKMeansPP(rng, ws, k, r)
		sol := Lloyd(ws, seed, r, delta, 10)
		if sol.Cost < best {
			best = sol.Cost
		}
	}
	return best
}

// CapacitatedLloyd alternates optimal capacitated assignment (min-cost
// flow) with recentering, starting from k-means++ seeds; the best of
// `restarts` runs is returned. ok is false when the capacity t is
// infeasible (t·k < total weight).
func CapacitatedLloyd(rng *rand.Rand, ws []geo.Weighted, k int, t float64, r float64,
	delta int64, iters, restarts int) (Solution, bool) {

	if restarts < 1 {
		restarts = 1
	}
	best := Solution{Cost: math.Inf(1)}
	found := false
	for run := 0; run < restarts; run++ {
		centers := SeedKMeansPP(rng, ws, k, r)
		var cur Solution
		okRun := false
		for it := 0; it < iters; it++ {
			res, ok := assign.Weighted(ws, centers, t, r)
			if !ok {
				break
			}
			sol := Solution{Centers: centers, Assign: res.Assign, Cost: res.Cost, Sizes: res.Sizes}
			if okRun && sol.Cost >= cur.Cost-1e-12 {
				break
			}
			cur, okRun = sol, true
			members := make([][]int, k)
			for i, a := range res.Assign {
				members[a] = append(members[a], i)
			}
			next := make([]geo.Point, k)
			for j := 0; j < k; j++ {
				next[j] = recenter(ws, members[j], r, delta, centers[j])
			}
			centers = next
		}
		if okRun && cur.Cost < best.Cost {
			best = cur
			found = true
		}
	}
	return best, found
}

// LocalSearchCapacitated improves a capacitated solution by single-swap
// local search: repeatedly try replacing one center with a candidate
// point (sampled from the input) and keep the swap if the optimal
// capacitated assignment cost drops. maxSwaps bounds the number of
// accepted swaps; candidates bounds the number of sampled candidates per
// round.
func LocalSearchCapacitated(rng *rand.Rand, ws []geo.Weighted, start Solution, t float64,
	r float64, maxSwaps, candidates int) Solution {

	cur := start
	k := len(cur.Centers)
	for swaps := 0; swaps < maxSwaps; swaps++ {
		improved := false
		for c := 0; c < candidates && !improved; c++ {
			cand := ws[rng.Intn(len(ws))].P
			for j := 0; j < k && !improved; j++ {
				trial := make([]geo.Point, k)
				copy(trial, cur.Centers)
				trial[j] = cand
				res, ok := assign.Weighted(ws, trial, t, r)
				if ok && res.Cost < cur.Cost*(1-1e-6) {
					cur = Solution{Centers: trial, Assign: res.Assign, Cost: res.Cost, Sizes: res.Sizes}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// BruteForceCapacitated finds the optimal capacitated k-clustering with
// centers restricted to the input points — exact for the discrete
// k-median-style formulation, exponential in k and meant for tiny test
// instances only.
func BruteForceCapacitated(ps geo.PointSet, k int, t float64, r float64) (Solution, bool) {
	n := len(ps)
	best := Solution{Cost: math.Inf(1)}
	found := false
	idx := make([]int, k)
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k {
			Z := make([]geo.Point, k)
			for i, id := range idx {
				Z[i] = ps[id]
			}
			res, ok := assign.Optimal(ps, Z, t, r)
			if ok && res.Cost < best.Cost {
				best = Solution{Centers: Z, Assign: res.Assign, Cost: res.Cost, Sizes: res.Sizes}
				found = true
			}
			return
		}
		for i := from; i < n; i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)
	return best, found
}
