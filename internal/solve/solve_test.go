package solve

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func TestSeedKMeansPPBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps, _ := workload.Mixture{N: 500, D: 2, Delta: 1024, K: 3, Spread: 5}.Generate(rng)
	ws := geo.UnitWeights(ps)
	Z := SeedKMeansPP(rng, ws, 3, 2)
	if len(Z) != 3 {
		t.Fatalf("got %d centers", len(Z))
	}
	// Seeds must be input points.
	for _, z := range Z {
		found := false
		for _, p := range ps {
			if z.Equal(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %v is not an input point", z)
		}
	}
}

func TestSeedKMeansPPSpreadsAcrossClusters(t *testing.T) {
	// On a well-separated mixture, D²-sampling should land one seed per
	// component most of the time.
	rng := rand.New(rand.NewSource(2))
	ps, centers := workload.Mixture{N: 900, D: 2, Delta: 8192, K: 3, Spread: 4}.Generate(rng)
	ws := geo.UnitWeights(ps)
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		Z := SeedKMeansPP(rng, ws, 3, 2)
		used := map[int]bool{}
		for _, z := range Z {
			_, j := geo.DistToSet(z, centers)
			used[j] = true
		}
		if len(used) == 3 {
			hits++
		}
	}
	if hits < trials*2/3 {
		t.Fatalf("seeding covered all clusters only %d/%d times", hits, trials)
	}
}

func TestLloydImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, _ := workload.Mixture{N: 600, D: 2, Delta: 4096, K: 3, Spread: 10}.Generate(rng)
	ws := geo.UnitWeights(ps)
	seed := SeedKMeansPP(rng, ws, 3, 2)
	seedCost := assign.UnconstrainedCost(ws, seed, 2)
	sol := Lloyd(ws, seed, 2, 4096, 20)
	if sol.Cost > seedCost+1e-9 {
		t.Fatalf("Lloyd worsened the cost: %v → %v", seedCost, sol.Cost)
	}
	// Verify the reported cost matches its assignment.
	recomputed := assign.CostOfAssignment(ws, sol.Centers, sol.Assign, 2)
	if math.Abs(recomputed-sol.Cost) > 1e-6*(1+sol.Cost) {
		t.Fatalf("cost bookkeeping: %v vs %v", recomputed, sol.Cost)
	}
}

func TestLloydMedianForR1(t *testing.T) {
	// For r=1 the coordinate-wise median minimizes the 1-center cost on a
	// line; verify recentring behaves accordingly on a skewed cluster.
	ws := []geo.Weighted{}
	for i := 0; i < 9; i++ {
		ws = append(ws, geo.Weighted{P: geo.Point{int64(i + 1), 1}, W: 1})
	}
	ws = append(ws, geo.Weighted{P: geo.Point{100, 1}, W: 1})
	sol := Lloyd(ws, []geo.Point{{50, 1}}, 1, 128, 10)
	// The median of {1..9, 100} is 5 or 6; the mean would be ≈ 14.5.
	if sol.Centers[0][0] > 10 {
		t.Fatalf("r=1 recenter did not move toward the median: %v", sol.Centers[0])
	}
}

func TestEstimateOPTUpperBoundsOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps, centers := workload.Mixture{N: 500, D: 2, Delta: 4096, K: 3, Spread: 6}.Generate(rng)
	ws := geo.UnitWeights(ps)
	est := EstimateOPT(rng, ws, 3, 2, 4096, 3)
	// OPT is at most the cost at the true centers; the estimate must be
	// positive and not wildly above that reference either (it is a local
	// optimum of a well-separated instance).
	ref := assign.UnconstrainedCost(ws, centers, 2)
	if est <= 0 {
		t.Fatal("estimate must be positive")
	}
	if est > 3*ref {
		t.Fatalf("estimate %v far above reference cost %v", est, ref)
	}
}

func TestCapacitatedLloydRespectsCapacitySlack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, _ := workload.TwoBlobs(rng, 200, 1024, 0.8, 6)
	ws := geo.UnitWeights(ps)
	tcap := 110.0 // force ~50 points to migrate
	sol, ok := CapacitatedLloyd(rng, ws, 2, tcap, 2, 1024, 8, 2)
	if !ok {
		t.Fatal("infeasible")
	}
	slack := 1.0 * float64(2-1) // (k−1)·max weight
	for _, s := range sol.Sizes {
		if s > tcap+slack+1e-6 {
			t.Fatalf("capacity violated: %v > %v", s, tcap+slack)
		}
	}
	var tot float64
	for _, s := range sol.Sizes {
		tot += s
	}
	if math.Abs(tot-200) > 1e-6 {
		t.Fatalf("sizes sum to %v, want 200", tot)
	}
}

func TestCapacitatedCostsMoreThanUncapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps, _ := workload.TwoBlobs(rng, 300, 1024, 0.85, 5)
	ws := geo.UnitWeights(ps)
	capSol, ok := CapacitatedLloyd(rng, ws, 2, 160, 2, 1024, 8, 3)
	if !ok {
		t.Fatal("infeasible")
	}
	est := EstimateOPT(rng, ws, 2, 2, 1024, 3)
	if capSol.Cost < est {
		t.Fatalf("balanced cost %v below the uncapacitated estimate %v — impossible for a correct assignment",
			capSol.Cost, est)
	}
	// The 85/15 blob split under capacity 160/300 must push mass across:
	// cost should be dominated by migration, far above the uncapacitated
	// optimum.
	if capSol.Cost < 2*est {
		t.Logf("note: migration cost %v vs uncapacitated %v (geometry-dependent)", capSol.Cost, est)
	}
}

func TestCapacitatedLloydInfeasible(t *testing.T) {
	ws := geo.UnitWeights(geo.PointSet{{1, 1}, {2, 2}, {3, 3}})
	if _, ok := CapacitatedLloyd(rand.New(rand.NewSource(1)), ws, 1, 2, 2, 16, 3, 1); ok {
		t.Fatal("t·k = 2 < 3 points must be infeasible")
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps, _ := workload.Mixture{N: 120, D: 2, Delta: 1024, K: 3, Spread: 8}.Generate(rng)
	ws := geo.UnitWeights(ps)
	start, ok := CapacitatedLloyd(rng, ws, 3, 50, 2, 1024, 5, 1)
	if !ok {
		t.Fatal("infeasible")
	}
	out := LocalSearchCapacitated(rng, ws, start, 50, 2, 4, 6)
	if out.Cost > start.Cost+1e-9 {
		t.Fatalf("local search worsened: %v → %v", start.Cost, out.Cost)
	}
}

func TestBruteForceTinyInstance(t *testing.T) {
	// 1-d-ish instance with an obvious balanced optimum.
	ps := geo.PointSet{{1, 1}, {2, 1}, {3, 1}, {101, 1}, {102, 1}, {103, 1}}
	sol, ok := BruteForceCapacitated(ps, 2, 3, 2)
	if !ok {
		t.Fatal("no feasible solution")
	}
	// Optimal: centers {2,1} and {102,1}, cost 2+2 = 4 (each side: 1+0+1).
	if sol.Cost != 4 {
		t.Fatalf("brute force cost = %v, want 4", sol.Cost)
	}
	if sol.Sizes[0] != 3 || sol.Sizes[1] != 3 {
		t.Fatalf("sizes = %v", sol.Sizes)
	}
}

func TestBruteForceAgreesWithCapacitatedLloydOnEasyInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps, _ := workload.Mixture{N: 12, D: 2, Delta: 256, K: 2, Spread: 3}.Generate(rng)
	want, ok := BruteForceCapacitated(ps, 2, 6, 2)
	if !ok {
		t.Fatal("infeasible")
	}
	got, gok := CapacitatedLloyd(rng, geo.UnitWeights(ps), 2, 6, 2, 256, 10, 5)
	if !gok {
		t.Fatal("lloyd infeasible")
	}
	// Lloyd recenters onto arbitrary grid points, so it can even beat the
	// input-restricted brute force; it must not be much worse.
	if got.Cost > 1.5*want.Cost+1e-9 {
		t.Fatalf("capacitated Lloyd %v far above discrete optimum %v", got.Cost, want.Cost)
	}
}
