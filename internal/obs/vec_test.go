package obs

import (
	"strconv"
	"sync"
	"testing"
)

func TestFormatLabeled(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		vals   []string
		want   string
	}{
		{"m", nil, nil, "m"},
		{"ops", []string{"shard"}, []string{"3"}, `ops{shard="3"}`},
		{"bits", []string{"phase", "round"}, []string{"round2-h", "1"}, `bits{phase="round2-h",round="1"}`},
		{"esc", []string{"l"}, []string{`a"b\c` + "\n"}, `esc{l="a\"b\\c\n"}`},
	}
	for _, c := range cases {
		if got := FormatLabeled(c.name, c.labels, c.vals); got != c.want {
			t.Errorf("FormatLabeled(%q, %v, %v) = %q, want %q", c.name, c.labels, c.vals, got, c.want)
		}
	}
}

// Vectors must be a pure front-end over the registry name space: a vector
// member and an ad-hoc obs-style lookup of the hand-built labeled name
// resolve to the same metric, so migrated call sites keep feeding the
// metrics existing dashboards scrape.
func TestVecSharesMetricWithAdHocName(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	cv := r.CounterVec("vt_shared_total", "shard")
	cv.With("7").Add(3)
	r.Counter(`vt_shared_total{shard="7"}`).Add(2)
	if got := cv.With("7").Load(); got != 5 {
		t.Fatalf("vector member and ad-hoc handle diverged: got %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap.Counters[`vt_shared_total{shard="7"}`] != 5 {
		t.Fatalf("snapshot missing canonical labeled name: %v", snap.Counters)
	}
}

func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vt_arity_total", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong label value count did not panic")
		}
	}()
	cv.With("only-one")
}

// Interning must survive growth well past the initial 8-slot table and
// keep every handle stable across the table swaps.
func TestVecGrowth(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	cv := r.CounterVec("vt_grow_total", "i")
	handles := make([]*Counter, 100)
	for i := range handles {
		handles[i] = cv.With(strconv.Itoa(i))
		handles[i].Add(int64(i))
	}
	for i, h := range handles {
		if again := cv.With(strconv.Itoa(i)); again != h {
			t.Fatalf("handle for i=%d changed identity after growth", i)
		}
		if h.Load() != int64(i) {
			t.Fatalf("handle for i=%d lost its value: %d", i, h.Load())
		}
	}
}

func TestGaugeAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)

	gv := r.GaugeVec("vt_depth", "shard")
	gv.SetInt(42, "0")
	if got := gv.With("0").Load(); got != 42 {
		t.Fatalf("gauge member = %v, want 42", got)
	}

	hv := r.HistogramVec("vt_lat_ns", "round")
	hv.Observe(100, "1")
	hv.Observe(200, "1")
	if c, s := hv.With("1").Count(), hv.With("1").Sum(); c != 2 || s != 300 {
		t.Fatalf("histogram member = (%d, %d), want (2, 300)", c, s)
	}
	snap := r.Snapshot()
	if _, ok := snap.Hists[`vt_lat_ns{round="1"}`]; !ok {
		t.Fatalf("histogram member missing from snapshot: %v", snap.Hists)
	}
}

// Disabled mutators must not intern: a process with telemetry off should
// not grow label tables (nor allocate) from hot-path Inc calls.
func TestVecDisabledDoesNotIntern(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Disable()
	cv := r.CounterVec("vt_off_total", "k")
	cv.Inc("a")
	cv.Add(5, "b")
	SetEnabled(prev)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("disabled Inc/Add interned %d members, want 0", n)
	}
}

// Concurrent first-use of overlapping label tuples exercises the
// lock-free read path against miss-path table swaps; run under -race via
// check-obs.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	cv := r.CounterVec("vt_conc_total", "w")

	const workers, perWorker, distinct = 8, 1000, 17
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cv.Inc(strconv.Itoa(i % distinct))
			}
		}()
	}
	wg.Wait()

	var total int64
	for i := 0; i < distinct; i++ {
		total += cv.With(strconv.Itoa(i)).Load()
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("concurrent increments lost: got %d, want %d", total, want)
	}
}
