package obs

import (
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in a Tracer's ring buffer. Start is
// nanoseconds since the tracer's epoch (process-relative, monotonic),
// Dur the span's duration in nanoseconds, Attrs a space-separated
// "key=value" list set via Span.Attr. Trace/Span/Parent are lowercase
// hex trace-context ids (W3C traceparent widths: 16-byte trace id,
// 8-byte span id); all three are empty for spans started with plain
// Start, so pre-context recordings and goldens are unchanged.
type Event struct {
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Attrs  string `json:"attrs,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// TraceContext identifies a span's position in a distributed trace:
// W3C-style 16-byte trace id shared by every span of one logical
// operation plus the 8-byte id of the span itself. It is a value type
// sized for wire headers — the dist codec carries it as an optional
// 24-byte frame prefix so machine- and link-side spans assemble into
// one tree at /debug/spans.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// Valid reports whether the context names a real span (both ids
// nonzero, mirroring the W3C invalid-id rule).
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// String renders "traceid-spanid" in lowercase hex, or "invalid" for
// the zero context.
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return "invalid"
	}
	return hex.EncodeToString(tc.TraceID[:]) + "-" + hex.EncodeToString(tc.SpanID[:])
}

// Tracer records phase spans into a fixed-capacity ring buffer — a
// flight recorder for the pipeline's coarse phases (extract, guess
// selection, protocol rounds), not a per-op profiler. Like the metric
// types it is built so instrumentation can be unconditional: when the
// tracer is disabled, Start is a nil-check plus one atomic load and
// returns an inert Span whose methods are nil-checks.
type Tracer struct {
	on     atomic.Bool
	epoch  time.Time
	idwalk atomic.Uint64 // splitmix64 state for default span/trace ids

	mu      sync.Mutex
	clock   func() int64  // test hook; nil = monotonic since epoch
	idsrc   func() uint64 // test hook; nil = splitmix64 walk
	ring    []Event
	head    int   // index of the oldest event once the ring has wrapped
	total   int64 // events ever recorded
	dropped int64 // events overwritten by the ring (total - len(ring))
}

// NewTracer returns a disabled tracer with the given ring capacity
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{epoch: time.Now(), ring: make([]Event, 0, capacity)}
	// Seed the id walk from the wall clock so concurrently started
	// processes mint distinct trace ids (required for multi-machine
	// trace assembly to not alias).
	t.idwalk.Store(uint64(time.Now().UnixNano()))
	return t
}

// Trace is the process-wide tracer (4096-span flight recorder),
// disabled by default.
var Trace = NewTracer(4096)

// Enable turns span recording on.
func (t *Tracer) Enable() { t.on.Store(true) }

// Disable turns span recording off; recorded spans are retained.
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// SetClock installs a deterministic clock returning nanoseconds since
// the epoch — for golden tests only.
func (t *Tracer) SetClock(f func() int64) {
	t.mu.Lock()
	t.clock = f
	t.mu.Unlock()
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	f := t.clock
	t.mu.Unlock()
	if f != nil {
		return f()
	}
	return int64(time.Since(t.epoch))
}

// SetIDSource installs a deterministic id generator — for golden tests.
// Each trace id consumes two values, each span id one.
func (t *Tracer) SetIDSource(f func() uint64) {
	t.mu.Lock()
	t.idsrc = f
	t.mu.Unlock()
}

// nextID returns a nonzero pseudo-random 64-bit id: a splitmix64 step
// over an atomic walk (lock-free, good dispersion), or the injected
// test source.
func (t *Tracer) nextID() uint64 {
	t.mu.Lock()
	f := t.idsrc
	t.mu.Unlock()
	if f != nil {
		if v := f(); v != 0 {
			return v
		}
		return 1
	}
	x := t.idwalk.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Start begins a span. When the tracer is nil or disabled the returned
// span is inert: Attr and End are nil-check no-ops.
func (t *Tracer) Start(name string) Span {
	if t == nil || !t.on.Load() {
		return Span{}
	}
	return Span{t: t, name: name, start: t.now()}
}

// StartSpan begins a span on the process-wide tracer.
func StartSpan(name string) Span { return Trace.Start(name) }

// StartRoot begins a span that roots a new distributed trace: it mints
// a fresh 16-byte trace id and an 8-byte span id, so children (local or
// across the dist wire) can parent onto it via StartChild. Inert when
// the tracer is nil or disabled.
func (t *Tracer) StartRoot(name string) Span {
	if t == nil || !t.on.Load() {
		return Span{}
	}
	sp := Span{t: t, name: name, start: t.now()}
	put64(sp.tc.TraceID[:8], t.nextID())
	put64(sp.tc.TraceID[8:], t.nextID())
	put64(sp.tc.SpanID[:], t.nextID())
	return sp
}

// StartChild begins a span inside the trace identified by parent —
// typically a context detached from a dist wire frame. It inherits the
// parent's trace id and records the parent span id; an invalid parent
// degrades to a plain untraced Start so callers need not special-case
// frames sent by pre-context peers.
func (t *Tracer) StartChild(parent TraceContext, name string) Span {
	if t == nil || !t.on.Load() {
		return Span{}
	}
	sp := Span{t: t, name: name, start: t.now()}
	if parent.Valid() {
		sp.tc.TraceID = parent.TraceID
		put64(sp.tc.SpanID[:], t.nextID())
		sp.parent = parent.SpanID
	}
	return sp
}

// mSpansDropped mirrors Tracer.Dropped for the process tracer on the
// metrics surface; it only moves while metrics are enabled, so the
// tracer-local count is authoritative.
var mSpansDropped = C("obs_spans_dropped_total")

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.head] = ev
		t.head++
		if t.head == cap(t.ring) {
			t.head = 0
		}
		t.dropped++
		if t == Trace {
			mSpansDropped.Inc()
		}
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the recorded spans, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Total returns how many spans were ever recorded (≥ len(Events());
// the excess was overwritten by the ring).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many recorded spans the ring has overwritten —
// spans Events() can no longer show. The process tracer also mirrors
// this as obs_spans_dropped_total.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans and the drop count.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head = 0
	t.total = 0
	t.dropped = 0
	t.mu.Unlock()
}

// WriteSpans writes the recorded spans oldest-first, one line per span:
//
//	<name>  start=<ns> dur=<ns>  <attrs>  [trace=<id> span=<id> [parent=<id>]]
//
// The format is stable (golden-tested); untraced spans render exactly
// as before trace contexts existed. Timestamps are deterministic only
// under SetClock.
func (t *Tracer) WriteSpans(w io.Writer) error {
	for _, ev := range t.Events() {
		line := fmt.Sprintf("%-28s start=%dns dur=%dns", ev.Name, ev.Start, ev.Dur)
		if ev.Attrs != "" {
			line += "  " + ev.Attrs
		}
		if ev.Trace != "" {
			line += "  trace=" + ev.Trace + " span=" + ev.Span
			if ev.Parent != "" {
				line += " parent=" + ev.Parent
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraces assembles the traced subset of the recorded spans into
// per-trace trees — children indented under their parent, timestamps as
// offsets from the trace's earliest span — so a multi-machine dist run
// whose frames carried trace contexts reads as one operation:
//
//	trace 0102..0f10 (3 spans)
//	  dist.run                   +0ns dur=900ns
//	    dist.machine             +40ns dur=300ns  machine=1
//
// Spans whose parent fell out of the ring (or ran in a process whose
// spans were never merged) render as additional roots of their trace.
// Traces appear in order of their earliest span; untraced spans are
// skipped (WriteSpans shows them).
func (t *Tracer) WriteTraces(w io.Writer) error {
	events := t.Events()
	byTrace := map[string][]Event{}
	var order []string
	for _, ev := range events {
		if ev.Trace == "" {
			continue
		}
		if _, seen := byTrace[ev.Trace]; !seen {
			order = append(order, ev.Trace)
		}
		byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
	}
	for _, id := range order {
		evs := byTrace[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		epoch := evs[0].Start
		present := make(map[string]bool, len(evs))
		for _, ev := range evs {
			present[ev.Span] = true
		}
		children := map[string][]Event{}
		var roots []Event
		for _, ev := range evs {
			if ev.Parent != "" && present[ev.Parent] {
				children[ev.Parent] = append(children[ev.Parent], ev)
			} else {
				roots = append(roots, ev)
			}
		}
		if _, err := fmt.Fprintf(w, "trace %s (%d spans)\n", id, len(evs)); err != nil {
			return err
		}
		var walk func(ev Event, depth int) error
		walk = func(ev Event, depth int) error {
			pad := strings.Repeat("  ", depth+1)
			line := fmt.Sprintf("%s%-*s +%dns dur=%dns", pad, 28-len(pad), ev.Name, ev.Start-epoch, ev.Dur)
			if ev.Attrs != "" {
				line += "  " + ev.Attrs
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			for _, c := range children[ev.Span] {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range roots {
			if err := walk(r, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// Span is one in-flight phase span. The zero Span (from a disabled
// tracer) is inert.
type Span struct {
	t      *Tracer
	name   string
	start  int64
	attrs  string
	tc     TraceContext // zero for plain Start spans
	parent [8]byte
}

// Active reports whether the span records anything — use it to gate
// attribute computation that is itself expensive.
func (sp *Span) Active() bool { return sp.t != nil }

// Context returns the span's trace context — attach it to outbound wire
// frames so the receiving process can StartChild under this span. The
// zero context (inert span, or one started with plain Start) is not
// Valid and attaches nothing.
func (sp *Span) Context() TraceContext { return sp.tc }

// Attr appends a key=value attribute to the span.
func (sp *Span) Attr(key, value string) {
	if sp.t == nil {
		return
	}
	if sp.attrs != "" {
		sp.attrs += " "
	}
	sp.attrs += key + "=" + value
}

// AttrInt appends an integer attribute.
func (sp *Span) AttrInt(key string, v int64) {
	if sp.t == nil {
		return
	}
	sp.Attr(key, strconv.FormatInt(v, 10))
}

// AttrFloat appends a float attribute (shortest round-trip formatting).
func (sp *Span) AttrFloat(key string, v float64) {
	if sp.t == nil {
		return
	}
	sp.Attr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// End completes the span and records it in the tracer's ring.
func (sp *Span) End() {
	if sp.t == nil {
		return
	}
	now := sp.t.now()
	ev := Event{Name: sp.name, Start: sp.start, Dur: now - sp.start, Attrs: sp.attrs}
	if sp.tc.Valid() {
		ev.Trace = hex.EncodeToString(sp.tc.TraceID[:])
		ev.Span = hex.EncodeToString(sp.tc.SpanID[:])
		if sp.parent != ([8]byte{}) {
			ev.Parent = hex.EncodeToString(sp.parent[:])
		}
	}
	sp.t.record(ev)
	sp.t = nil
}
