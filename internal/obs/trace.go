package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in a Tracer's ring buffer. Start is
// nanoseconds since the tracer's epoch (process-relative, monotonic),
// Dur the span's duration in nanoseconds, Attrs a space-separated
// "key=value" list set via Span.Attr.
type Event struct {
	Name  string `json:"name"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
	Attrs string `json:"attrs,omitempty"`
}

// Tracer records phase spans into a fixed-capacity ring buffer — a
// flight recorder for the pipeline's coarse phases (extract, guess
// selection, protocol rounds), not a per-op profiler. Like the metric
// types it is built so instrumentation can be unconditional: when the
// tracer is disabled, Start is a nil-check plus one atomic load and
// returns an inert Span whose methods are nil-checks.
type Tracer struct {
	on    atomic.Bool
	epoch time.Time

	mu    sync.Mutex
	clock func() int64 // test hook; nil = monotonic since epoch
	ring  []Event
	head  int   // index of the oldest event once the ring has wrapped
	total int64 // events ever recorded
}

// NewTracer returns a disabled tracer with the given ring capacity
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{epoch: time.Now(), ring: make([]Event, 0, capacity)}
}

// Trace is the process-wide tracer (4096-span flight recorder),
// disabled by default.
var Trace = NewTracer(4096)

// Enable turns span recording on.
func (t *Tracer) Enable() { t.on.Store(true) }

// Disable turns span recording off; recorded spans are retained.
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// SetClock installs a deterministic clock returning nanoseconds since
// the epoch — for golden tests only.
func (t *Tracer) SetClock(f func() int64) {
	t.mu.Lock()
	t.clock = f
	t.mu.Unlock()
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	f := t.clock
	t.mu.Unlock()
	if f != nil {
		return f()
	}
	return int64(time.Since(t.epoch))
}

// Start begins a span. When the tracer is nil or disabled the returned
// span is inert: Attr and End are nil-check no-ops.
func (t *Tracer) Start(name string) Span {
	if t == nil || !t.on.Load() {
		return Span{}
	}
	return Span{t: t, name: name, start: t.now()}
}

// StartSpan begins a span on the process-wide tracer.
func StartSpan(name string) Span { return Trace.Start(name) }

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.head] = ev
		t.head++
		if t.head == cap(t.ring) {
			t.head = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the recorded spans, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Total returns how many spans were ever recorded (≥ len(Events());
// the excess was overwritten by the ring).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head = 0
	t.total = 0
	t.mu.Unlock()
}

// WriteSpans writes the recorded spans oldest-first, one line per span:
//
//	<name>  start=<ns> dur=<ns>  <attrs>
//
// The format is stable (golden-tested); timestamps are deterministic
// only under SetClock.
func (t *Tracer) WriteSpans(w io.Writer) error {
	for _, ev := range t.Events() {
		line := fmt.Sprintf("%-28s start=%dns dur=%dns", ev.Name, ev.Start, ev.Dur)
		if ev.Attrs != "" {
			line += "  " + ev.Attrs
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Span is one in-flight phase span. The zero Span (from a disabled
// tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	start int64
	attrs string
}

// Active reports whether the span records anything — use it to gate
// attribute computation that is itself expensive.
func (sp *Span) Active() bool { return sp.t != nil }

// Attr appends a key=value attribute to the span.
func (sp *Span) Attr(key, value string) {
	if sp.t == nil {
		return
	}
	if sp.attrs != "" {
		sp.attrs += " "
	}
	sp.attrs += key + "=" + value
}

// AttrInt appends an integer attribute.
func (sp *Span) AttrInt(key string, v int64) {
	if sp.t == nil {
		return
	}
	sp.Attr(key, strconv.FormatInt(v, 10))
}

// AttrFloat appends a float attribute (shortest round-trip formatting).
func (sp *Span) AttrFloat(key string, v float64) {
	if sp.t == nil {
		return
	}
	sp.Attr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// End completes the span and records it in the tracer's ring.
func (sp *Span) End() {
	if sp.t == nil {
		return
	}
	now := sp.t.now()
	sp.t.record(Event{Name: sp.name, Start: sp.start, Dur: now - sp.start, Attrs: sp.attrs})
	sp.t = nil
}
