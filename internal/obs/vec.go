package obs

// Labeled metric vectors. A CounterVec/GaugeVec/HistogramVec is a family
// of metrics sharing one base name and a fixed label schema — shard id,
// substream, guess, protocol phase — each distinct label-value tuple
// resolving to its own Counter/Gauge/Histogram. The member metrics are
// registered in the backing Registry under the same canonical
// `name{l1="v1",...}` strings the instrumentation used to build by hand,
// so every read surface (Snapshot, WriteProm, WriteJSON, expvar) and the
// ad-hoc obs.C(`name{label="x"}`) handles stay byte-compatible: a vector
// is a fast lookup front-end, not a new metric kind.
//
// Resolution is a lock-free read over an open-addressed interning table:
// the label values are hashed (FNV-1a), probed against an immutable slot
// array reached through one atomic pointer load, and compared
// element-wise — no allocation, no mutex, no name formatting on the hit
// path. Only the first use of a tuple takes the vector mutex to format
// the canonical name, register the metric and publish a grown table.
// Entries are never deleted (label sets are bounded by construction:
// shards, substreams, levels, phases), which is what makes the
// immutable-table scheme sound.
//
// The mutating helpers (Inc/Add/Set/Observe with trailing label values)
// check the global enable flag before resolving, so the disabled path
// costs one atomic load like every other metric call — gated by
// TestDisabledVecOverheadBudget alongside the scalar budget. Hot loops
// that already hold their labels at construction time should resolve
// once via With and keep the returned handle, exactly like obs.C.

import (
	"strings"
	"sync"
	"sync/atomic"
)

// vecEntry is one interned (label values → metric) binding. Immutable
// after publication.
type vecEntry[M any] struct {
	hash uint64
	vals []string
	m    *M
}

// vecTable is an immutable open-addressed probe array. Readers reach it
// through one atomic pointer load; writers replace it wholesale on grow.
type vecTable[M any] struct {
	mask  uint64
	slots []atomic.Pointer[vecEntry[M]]
}

func (t *vecTable[M]) get(h uint64, vals []string) *M {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i].Load()
		if e == nil {
			return nil
		}
		if e.hash == h && valsEqual(e.vals, vals) {
			return e.m
		}
	}
}

func valsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashVals is FNV-1a over the label values with a 0xff fold between
// values so ["a","b"] and ["ab",""] hash apart. Collisions are
// harmless — lookup verifies element-wise equality — they only cost
// probe length.
func hashVals(vals []string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, v := range vals {
		for i := 0; i < len(v); i++ {
			h = (h ^ uint64(v[i])) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	return h
}

// vec is the shared implementation behind the three vector types.
type vec[M any] struct {
	name   string
	labels []string
	reg    *Registry
	lookup func(*Registry, string) *M // Registry.Counter / .Gauge / .Histogram

	mu    sync.Mutex
	count int
	tab   atomic.Pointer[vecTable[M]]
}

func initVec[M any](v *vec[M], r *Registry, name string, labels []string, lookup func(*Registry, string) *M) {
	if r == nil {
		r = Default
	}
	v.name, v.labels, v.reg, v.lookup = name, labels, r, lookup
	v.tab.Store(&vecTable[M]{mask: 7, slots: make([]atomic.Pointer[vecEntry[M]], 8)})
}

// with resolves the metric for one label-value tuple, interning it on
// first use. The hit path is lock-free and allocation-free.
func (v *vec[M]) with(vals []string) *M {
	if len(vals) != len(v.labels) {
		panic("obs: wrong label value count for vector " + v.name)
	}
	h := hashVals(vals)
	if m := v.tab.Load().get(h, vals); m != nil {
		return m
	}
	return v.miss(h, vals)
}

func (v *vec[M]) miss(h uint64, vals []string) *M {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := v.tab.Load()
	if m := t.get(h, vals); m != nil { // raced with another miss
		return m
	}
	m := v.lookup(v.reg, FormatLabeled(v.name, v.labels, vals))
	e := &vecEntry[M]{hash: h, vals: append([]string(nil), vals...), m: m}
	v.count++
	if uint64(v.count)*2 > t.mask+1 { // keep load factor ≤ 1/2
		nt := &vecTable[M]{mask: (t.mask+1)*2 - 1, slots: make([]atomic.Pointer[vecEntry[M]], (t.mask+1)*2)}
		for i := range t.slots {
			if old := t.slots[i].Load(); old != nil {
				nt.insert(old)
			}
		}
		nt.insert(e)
		v.tab.Store(nt)
		return m
	}
	t.insert(e)
	return m
}

// insert places an entry in the first free probe slot. Callers hold the
// vector mutex; the atomic store publishes the entry to lock-free
// readers.
func (t *vecTable[M]) insert(e *vecEntry[M]) {
	for i := e.hash & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i].Load() == nil {
			t.slots[i].Store(e)
			return
		}
	}
}

// FormatLabeled renders the canonical registry name of one member of a
// labeled family: `name{l1="v1",l2="v2"}` with Prometheus label-value
// escaping, or the bare name for an empty schema. It is the exact string
// the pre-vector instrumentation concatenated by hand, so vectors and
// ad-hoc obs.C lookups of the same labeled name share one metric.
func FormatLabeled(name string, labels, vals []string) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name) + 16*len(labels))
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		for j := 0; j < len(vals[i]); j++ {
			switch c := vals[i][j]; c {
			case '\\', '"':
				sb.WriteByte('\\')
				sb.WriteByte(c)
			case '\n':
				sb.WriteString(`\n`)
			default:
				sb.WriteByte(c)
			}
		}
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// CounterVec is a counter family keyed by a fixed label schema.
type CounterVec struct{ v vec[Counter] }

// CounterVec returns a counter family on this registry.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	c := &CounterVec{}
	initVec(&c.v, r, name, labels, (*Registry).Counter)
	return c
}

// CV returns a counter family on the Default registry.
func CV(name string, labels ...string) *CounterVec { return Default.CounterVec(name, labels...) }

// With resolves (interning on first use) the member counter for the
// given label values. Hot paths should call it once and keep the handle.
func (c *CounterVec) With(vals ...string) *Counter { return c.v.with(vals) }

// Inc increments the member counter when telemetry is enabled; disabled,
// it returns after one atomic load without resolving labels.
func (c *CounterVec) Inc(vals ...string) {
	if !enabled.Load() {
		return
	}
	c.v.with(vals).Inc()
}

// Add adds n to the member counter when telemetry is enabled.
func (c *CounterVec) Add(n int64, vals ...string) {
	if !enabled.Load() {
		return
	}
	c.v.with(vals).Add(n)
}

// GaugeVec is a gauge family keyed by a fixed label schema.
type GaugeVec struct{ v vec[Gauge] }

// GaugeVec returns a gauge family on this registry.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	g := &GaugeVec{}
	initVec(&g.v, r, name, labels, (*Registry).Gauge)
	return g
}

// GV returns a gauge family on the Default registry.
func GV(name string, labels ...string) *GaugeVec { return Default.GaugeVec(name, labels...) }

// With resolves the member gauge for the given label values.
func (g *GaugeVec) With(vals ...string) *Gauge { return g.v.with(vals) }

// Set stores v in the member gauge when telemetry is enabled.
func (g *GaugeVec) Set(val float64, vals ...string) {
	if !enabled.Load() {
		return
	}
	g.v.with(vals).Set(val)
}

// SetInt stores an integer value in the member gauge when telemetry is
// enabled.
func (g *GaugeVec) SetInt(val int64, vals ...string) { g.Set(float64(val), vals...) }

// HistogramVec is a histogram family keyed by a fixed label schema.
type HistogramVec struct{ v vec[Histogram] }

// HistogramVec returns a histogram family on this registry.
func (r *Registry) HistogramVec(name string, labels ...string) *HistogramVec {
	h := &HistogramVec{}
	initVec(&h.v, r, name, labels, (*Registry).Histogram)
	return h
}

// HV returns a histogram family on the Default registry.
func HV(name string, labels ...string) *HistogramVec { return Default.HistogramVec(name, labels...) }

// With resolves the member histogram for the given label values.
func (h *HistogramVec) With(vals ...string) *Histogram { return h.v.with(vals) }

// Observe records one value in the member histogram when telemetry is
// enabled.
func (h *HistogramVec) Observe(val int64, vals ...string) {
	if !enabled.Load() {
		return
	}
	h.v.with(vals).Observe(val)
}

// ObserveSince records the nanoseconds elapsed since a NowNano timestamp
// in the member histogram.
func (h *HistogramVec) ObserveSince(t0 int64, vals ...string) {
	if t0 == 0 || !enabled.Load() {
		return
	}
	h.v.with(vals).ObserveSince(t0)
}
