package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the Default registry in Prometheus text
// exposition format.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WriteProm(w)
	})
}

// SpansHandler serves the process tracer's recorded spans as text.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = Trace.WriteSpans(w)
	})
}

// DebugMux returns the debug surface the -debug-addr CLI flags serve:
//
//	/metrics          Prometheus text exposition of the Default registry
//	/debug/spans      the span flight recorder, oldest first
//	/debug/vars       expvar JSON (includes the published snapshot)
//	/debug/pprof/...  the standard net/http/pprof handlers
//
// It registers on a private mux, so importing this package never
// mutates http.DefaultServeMux.
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/spans", SpansHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug enables telemetry (metrics and spans), binds addr and
// serves DebugMux on it in a background goroutine. It returns the bound
// address (useful with ":0") or an error if the listen fails. The
// listener lives for the remaining life of the process — CLI debug
// surface, not a managed server.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	Enable()
	Trace.Enable()
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
