package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the Default registry in Prometheus text
// exposition format.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WriteProm(w)
	})
}

// SpansHandler serves the process tracer's recorded spans as text: a
// header with ring accounting (total recorded, how many the ring
// overwrote and can no longer show), the flat span list, then the
// assembled per-trace trees for spans that carried trace contexts.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# spans_total=%d spans_dropped=%d\n", Trace.Total(), Trace.Dropped())
		_ = Trace.WriteSpans(w)
		fmt.Fprintln(w)
		_ = Trace.WriteTraces(w)
	})
}

// SeriesHandler serves the DefaultSeries window — per-counter rates over
// the sampled window as JSON; ?points=1 appends the raw snapshots.
func SeriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = DefaultSeries.WriteJSON(w, r.URL.Query().Get("points") == "1")
	})
}

// DebugMux returns the debug surface the -debug-addr CLI flags serve:
//
//	/metrics          Prometheus text exposition of the Default registry
//	/debug/spans      the span flight recorder + assembled traces
//	/debug/series     windowed counter rates from the background sampler
//	/debug/vars       expvar JSON (includes the published snapshot)
//	/debug/pprof/...  the standard net/http/pprof handlers
//
// It registers on a private mux, so importing this package never
// mutates http.DefaultServeMux.
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/spans", SpansHandler())
	mux.Handle("/debug/series", SeriesHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug enables telemetry (metrics and spans), binds addr and
// serves DebugMux on it in a background goroutine. It returns the bound
// address (useful with ":0") or an error if the listen fails. The
// listener lives for the remaining life of the process — CLI debug
// surface, not a managed server.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	Enable()
	Trace.Enable()
	StartSampler(time.Second)
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
