package obs

import (
	"testing"
	"time"
)

// The disabled fast path is the contract that lets hot loops carry
// unconditional instrumentation: DESIGN.md §9 budgets it at <2 ns/op
// (one atomic flag load + a predictable branch). BenchmarkDisabled*
// measure it; TestDisabledOverheadBudget gates it in `make check-obs`
// with a deliberately loose ceiling so a loaded CI machine does not
// flake while a regression to, say, a mutex or a map lookup still
// fails loudly.

var benchCounter Counter
var benchHist Histogram
var benchSink int64

func BenchmarkDisabledCounter(b *testing.B) {
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchHist.Observe(int64(i))
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	prev := Trace.Enabled()
	Trace.Disable()
	defer func() {
		if prev {
			Trace.Enable()
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Trace.Start("bench")
		sp.End()
	}
}

var benchVec = CV("bench_vec_total", "shard")

func BenchmarkDisabledCounterVec(b *testing.B) {
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchVec.Inc("0")
	}
}

func BenchmarkEnabledCounterVec(b *testing.B) {
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchVec.Inc("0")
	}
	benchSink = benchVec.With("0").Load()
}

func BenchmarkEnabledCounter(b *testing.B) {
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
	benchSink = benchCounter.Load()
}

// TestDisabledOverheadBudget is the check-obs gate for the disabled
// fast path. The ceiling (25 ns/op) is ~10× the expected cost so shared
// CI hardware does not flake; a regression that adds a lock, a map
// lookup or an unconditional time.Now blows well past it. Run without
// -race: race instrumentation multiplies atomic-load cost by design.
func TestDisabledOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates atomic loads by design")
	}
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)

	const iters = 2_000_000
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			benchCounter.Inc()
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	perOp := float64(best.Nanoseconds()) / iters
	t.Logf("disabled counter fast path: %.2f ns/op (best of 5)", perOp)
	if perOp > 25 {
		t.Fatalf("disabled counter fast path costs %.1f ns/op, budget is 25 ns/op", perOp)
	}
}

// TestDisabledVecOverheadBudget holds labeled vectors to the same ceiling
// as scalar metrics: a disabled CounterVec.Inc must return on the flag
// load before touching label hashing or the interning table.
func TestDisabledVecOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates atomic loads by design")
	}
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)

	const iters = 2_000_000
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			benchVec.Inc("0")
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	perOp := float64(best.Nanoseconds()) / iters
	t.Logf("disabled counter-vec fast path: %.2f ns/op (best of 5)", perOp)
	if perOp > 25 {
		t.Fatalf("disabled counter-vec fast path costs %.1f ns/op, budget is 25 ns/op", perOp)
	}
}
