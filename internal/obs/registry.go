package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms.
// Metric names follow the Prometheus convention (snake_case, `_total`
// suffix on counters, optional `{label="value"}` suffix for bounded
// label sets such as per-level FAIL counters); the name string is the
// identity — two lookups of the same name return the same metric.
//
// Lookups take a mutex and are meant for initialization paths (package
// vars, struct fields), never per event. All read surfaces (Snapshot,
// WriteProm, WriteJSON) emit metrics in sorted name order, so output is
// deterministic for a given set of values and can be golden-tested.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry all package-level helpers use.
var Default = NewRegistry()

// C returns (creating if needed) the named counter of the Default
// registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns (creating if needed) the named gauge of the Default
// registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns (creating if needed) the named histogram of the Default
// registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Ratio returns the quotient of two registered counters, num/den, or 0
// when the denominator is zero or either counter is unregistered. It is
// the read-side helper for paired in/out counters — e.g. the ingest
// coalesce ratio stream_coalesce_ops_in_total{...} over
// stream_coalesce_keys_out_total{...} (DESIGN.md §12) — so CLI dumps and
// benches report the derived ratio without re-implementing the lookup.
func (r *Registry) Ratio(num, den string) float64 {
	r.mu.Lock()
	n, d := r.counters[num], r.counters[den]
	r.mu.Unlock()
	dv := d.Load()
	if dv == 0 {
		return 0
	}
	return float64(n.Load()) / float64(dv)
}

// Reset zeroes every registered metric (the metrics stay registered and
// previously returned handles stay valid). Tests and per-run CLI dumps
// use it to measure deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// HistBucket is one cumulative histogram bucket: Count observations had
// value ≤ Le.
type HistBucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON emits Le as a string: the terminal bucket's bound is
// +Inf, which encoding/json rejects as a float64 value (this also
// covers the expvar snapshot at /debug/vars, which marshals through
// encoding/json).
func (b HistBucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *HistBucket) UnmarshalJSON(data []byte) error {
	var aux struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Le == "+Inf" {
		b.Le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(aux.Le, 64)
		if err != nil {
			return err
		}
		b.Le = v
	}
	b.Count = aux.Count
	return nil
}

// HistSnapshot is a point-in-time copy of a histogram. Quantiles holds
// the standard p50/p95/p99 estimates (keys "0.5", "0.95", "0.99") when
// the histogram has observations.
type HistSnapshot struct {
	Count     int64              `json:"count"`
	Sum       int64              `json:"sum"`
	Buckets   []HistBucket       `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// promQuantiles is the fixed set WriteProm and snapshots expose, in
// emission order.
var promQuantiles = []struct {
	key string
	q   float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative
// log2 buckets by rank walk with linear interpolation inside the
// selected bucket. Resolution is bounded by the bucket width — an
// estimate is exact only up to a factor of 2 of the true value (the
// bucket covering it), which is the deliberate trade of the fixed
// 65-bucket layout. Returns 0 for an empty snapshot; values in the ≤0
// bucket estimate as 0.
func (hs HistSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var prev int64
	for _, b := range hs.Buckets {
		if float64(b.Count) < rank || b.Count == prev {
			prev = b.Count
			continue
		}
		if b.Le <= 0 {
			return 0
		}
		if math.IsInf(b.Le, 1) {
			// Unreachable with the fixed 65-bucket layout (the top
			// finite bucket already accumulates Count), kept for
			// snapshots deserialized from other sources.
			return hs.Buckets[len(hs.Buckets)-1].Le
		}
		lo := b.Le / 2
		frac := (rank - float64(prev)) / float64(b.Count-prev)
		if frac < 0 {
			frac = 0
		}
		return lo + frac*(b.Le-lo)
	}
	return 0
}

// Snapshot is a point-in-time copy of a registry. Map keys are metric
// names; encoding/json marshals map keys sorted, so a marshalled
// snapshot is deterministic for given values.
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. It is safe to call
// concurrently with writes: each individual value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Hists[name] = snapshotHist(h)
	}
	return s
}

// snapshotHist copies one histogram, converting the log2 buckets to
// cumulative counts up to the highest non-empty bucket plus +Inf.
func snapshotHist(h *Histogram) HistSnapshot {
	hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	raw := make([]int64, histBuckets)
	top := -1
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top < 0 {
		return hs
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += raw[i]
		le := 0.0
		if i > 0 {
			le = float64(uint64(1) << uint(i)) // bucket i: values < 2^i
		}
		hs.Buckets = append(hs.Buckets, HistBucket{Le: le, Count: cum})
	}
	hs.Buckets = append(hs.Buckets, HistBucket{Le: inf, Count: hs.Count})
	if hs.Count > 0 {
		hs.Quantiles = make(map[string]float64, len(promQuantiles))
		for _, pq := range promQuantiles {
			hs.Quantiles[pq.key] = hs.Quantile(pq.q)
		}
	}
	return hs
}

// Quantile estimates the q-quantile of the histogram's current
// observations; see HistSnapshot.Quantile for resolution semantics.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return snapshotHist(h).Quantile(q)
}

var inf = math.Inf(1)

// WriteProm writes the registry in the Prometheus text exposition
// format (untyped samples; histograms as cumulative _bucket/_sum/_count
// series), metrics sorted by name. The output for a fixed set of values
// is byte-deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", n, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := s.Gauges[n]; ok {
			if _, err := fmt.Fprintf(w, "%s %g\n", n, v); err != nil {
				return err
			}
			continue
		}
		h := s.Hists[n]
		// Exposition suffixes attach to the base name, inside any label
		// set embedded in the metric name: dist_round_ns{round="1"}
		// exposes as dist_round_ns_sum{round="1"}, not the reverse.
		base, labels := n, ""
		if i := strings.IndexByte(n, '{'); i >= 0 && strings.HasSuffix(n, "}") {
			base, labels = n[:i], n[i+1:len(n)-1]+","
		}
		// Summary-style quantile estimates first (skipped while empty,
		// like a Prometheus summary reporting NaN).
		for _, pq := range promQuantiles {
			if v, ok := h.Quantiles[pq.key]; ok {
				if _, err := fmt.Fprintf(w, "%s{%squantile=%q} %g\n", base, labels, pq.key, v); err != nil {
					return err
				}
			}
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if b.Le != inf {
				le = fmt.Sprintf("%g", b.Le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, le, b.Count); err != nil {
				return err
			}
		}
		sl := ""
		if labels != "" {
			sl = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", base, sl, h.Sum, base, sl, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON (map keys sorted by
// encoding/json, so deterministic for given values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

var expvarOnce sync.Once

// PublishExpvar publishes the Default registry's live snapshot under
// the expvar name "streambalance" (visible at /debug/vars). Safe to
// call more than once; only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("streambalance", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
