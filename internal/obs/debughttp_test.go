package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestServeDebugScrapeUnderWriters pins the debug endpoints' output
// format while metric writers run concurrently: /metrics stays valid
// Prometheus text exposition line by line and /debug/vars stays valid
// JSON throughout, and once the writers drain both surfaces show the
// exact totals. The -race run of this test is the concurrency
// assertion for the full scrape path (vectors → registry → snapshot →
// exposition).
func TestServeDebugScrapeUnderWriters(t *testing.T) {
	withEnabled(t, func() {
		addr, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		get := func(path string) string {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}

		cv := CV("scrape_ops_total", "w")
		hv := HV("scrape_lat_ns", "w")
		const workers, per = 4, 2000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					cv.Inc(id)
					hv.Observe(int64(i%1024+1), id)
				}
			}(string(rune('a' + w)))
		}

		// A Prometheus exposition line: name, optional {labels}, one
		// space, a number (or +Inf-free float). Scrape while writers run
		// and hold every line to it.
		lineRE := regexp.MustCompile(`^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9+.eE-]+(ns)?$`)
		for i := 0; i < 20; i++ {
			body := get("/metrics")
			for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
				if !lineRE.MatchString(line) {
					t.Fatalf("malformed exposition line under load: %q", line)
				}
			}
			var vars map[string]json.RawMessage
			if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
				t.Fatalf("/debug/vars invalid JSON under load: %v", err)
			}
			if _, ok := vars["streambalance"]; !ok {
				t.Fatal("/debug/vars missing streambalance snapshot")
			}
		}
		wg.Wait()

		// Drained: exact counts must appear verbatim on both surfaces.
		body := get("/metrics")
		for w := 0; w < workers; w++ {
			id := string(rune('a' + w))
			if want := `scrape_ops_total{w="` + id + `"} 2000`; !strings.Contains(body, want+"\n") {
				t.Fatalf("/metrics missing %q:\n%.400s", want, body)
			}
			if want := `scrape_lat_ns_count{w="` + id + `"} 2000`; !strings.Contains(body, want+"\n") {
				t.Fatalf("/metrics missing %q", want)
			}
			if want := `scrape_lat_ns{w="` + id + `",quantile="0.5"} `; !strings.Contains(body, want) {
				t.Fatalf("/metrics missing quantile line %q", want)
			}
		}
		var snap struct {
			Streambalance Snapshot `json:"streambalance"`
		}
		if err := json.Unmarshal([]byte(get("/debug/vars")), &snap); err != nil {
			t.Fatal(err)
		}
		if got := snap.Streambalance.Counters[`scrape_ops_total{w="a"}`]; got != per {
			t.Fatalf("/debug/vars counter = %d, want %d", got, per)
		}
		if body := get("/debug/series"); !strings.Contains(body, `"rate_per_sec"`) {
			t.Fatalf("/debug/series missing rates:\n%s", body)
		}
	})
}
