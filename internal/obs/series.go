package obs

// Series is a fixed-window time series over a Registry: a ring buffer of
// the last N snapshots, each stamped by an injectable clock. It is the
// primitive behind rate queries — counters are monotone, so the rate over
// the window is (newest − oldest) / Δt — and the SLO windows a serving
// deployment (ROADMAP item 1, bcserved) needs: keep one snapshot per
// scrape interval and any percentile-of-window or burn-rate question
// reduces to a walk over at most N samples. Recording is O(metrics) and
// takes only the registry's per-value atomic loads; readers copy the
// window under the series mutex.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SeriesPoint is one recorded snapshot with its timestamp (nanoseconds,
// from the series clock — wall UnixNano by default, deterministic under
// SetClock).
type SeriesPoint struct {
	AtNS int64    `json:"at_ns"`
	Snap Snapshot `json:"snapshot"`
}

// Series is a fixed-capacity ring of registry snapshots.
type Series struct {
	reg *Registry

	mu    sync.Mutex
	clock func() int64
	ring  []SeriesPoint
	head  int   // index of the oldest point once the ring has wrapped
	total int64 // points ever recorded
}

// NewSeries returns an empty series over r (Default when nil) holding
// the last capacity snapshots (minimum 2 — a rate needs two points).
func NewSeries(r *Registry, capacity int) *Series {
	if r == nil {
		r = Default
	}
	if capacity < 2 {
		capacity = 2
	}
	return &Series{reg: r, ring: make([]SeriesPoint, 0, capacity)}
}

// DefaultSeries is the process-wide series over the Default registry:
// 120 samples, which at the 1 s sampler interval ServeDebug starts is a
// two-minute rate window.
var DefaultSeries = NewSeries(nil, 120)

// SetClock installs a deterministic nanosecond clock — for tests.
func (s *Series) SetClock(f func() int64) {
	s.mu.Lock()
	s.clock = f
	s.mu.Unlock()
}

// Record snapshots the registry now and appends it to the window.
func (s *Series) Record() {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	at := time.Now().UnixNano()
	if s.clock != nil {
		at = s.clock()
	}
	p := SeriesPoint{AtNS: at, Snap: snap}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, p)
	} else {
		s.ring[s.head] = p
		s.head++
		if s.head == cap(s.ring) {
			s.head = 0
		}
	}
	s.total++
}

// Points returns the recorded window, oldest first.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesPoint, 0, len(s.ring))
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	return out
}

// Len returns how many points the window currently holds.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Reset discards the recorded window.
func (s *Series) Reset() {
	s.mu.Lock()
	s.ring = s.ring[:0]
	s.head = 0
	s.total = 0
	s.mu.Unlock()
}

// bounds returns the oldest and newest points, or ok=false with fewer
// than two points (no interval to rate over).
func (s *Series) bounds() (oldest, newest SeriesPoint, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < 2 {
		return SeriesPoint{}, SeriesPoint{}, false
	}
	oldest = s.ring[s.head]
	newest = s.ring[(s.head+len(s.ring)-1)%len(s.ring)]
	return oldest, newest, true
}

// Rate returns the named counter's per-second rate over the recorded
// window — (newest − oldest) / Δt — or 0 when the window holds fewer
// than two points, spans no time, or never saw the counter.
func (s *Series) Rate(name string) float64 {
	oldest, newest, ok := s.bounds()
	if !ok || newest.AtNS <= oldest.AtNS {
		return 0
	}
	dv := newest.Snap.Counters[name] - oldest.Snap.Counters[name]
	return float64(dv) / (float64(newest.AtNS-oldest.AtNS) / 1e9)
}

// Rates returns the per-second window rate of every counter present in
// the newest snapshot (zero-delta counters included, so the key set is
// stable across scrapes).
func (s *Series) Rates() map[string]float64 {
	oldest, newest, ok := s.bounds()
	if !ok || newest.AtNS <= oldest.AtNS {
		return map[string]float64{}
	}
	dt := float64(newest.AtNS-oldest.AtNS) / 1e9
	out := make(map[string]float64, len(newest.Snap.Counters))
	for name, v := range newest.Snap.Counters {
		out[name] = float64(v-oldest.Snap.Counters[name]) / dt
	}
	return out
}

// seriesView is the JSON shape WriteJSON / /debug/series serve.
type seriesView struct {
	Samples    int                `json:"samples"`
	Total      int64              `json:"total_recorded"`
	WindowSec  float64            `json:"window_sec"`
	RatePerSec map[string]float64 `json:"rate_per_sec"`
	Points     []SeriesPoint      `json:"points,omitempty"`
}

// WriteJSON writes the window summary — sample count, window span and
// per-counter rates — as indented JSON; withPoints appends the raw
// snapshots. Map keys marshal sorted, so output is deterministic for
// given values.
func (s *Series) WriteJSON(w io.Writer, withPoints bool) error {
	view := seriesView{RatePerSec: s.Rates()}
	if oldest, newest, ok := s.bounds(); ok {
		view.WindowSec = float64(newest.AtNS-oldest.AtNS) / 1e9
	}
	s.mu.Lock()
	view.Samples = len(s.ring)
	view.Total = s.total
	s.mu.Unlock()
	if withPoints {
		view.Points = s.Points()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(view)
}

var samplerOnce sync.Once

// StartSampler records DefaultSeries every interval in a background
// goroutine for the remaining life of the process (the debug-server
// pattern; ServeDebug calls it with 1 s). Only the first call starts a
// sampler; later calls are no-ops.
func StartSampler(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	samplerOnce.Do(func() {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for range t.C {
				DefaultSeries.Record()
			}
		}()
	})
}
