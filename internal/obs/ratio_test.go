package obs

import "testing"

func TestRegistryRatio(t *testing.T) {
	r := NewRegistry()
	if got := r.Ratio("in", "out"); got != 0 {
		t.Fatalf("ratio of unregistered counters = %v, want 0", got)
	}
	Enable()
	defer Disable()
	r.Counter("in").Add(12)
	if got := r.Ratio("in", "out"); got != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", got)
	}
	r.Counter("out").Add(4)
	if got := r.Ratio("in", "out"); got != 3 {
		t.Fatalf("ratio = %v, want 3", got)
	}
}
