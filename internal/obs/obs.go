// Package obs is the repository's zero-external-dependency telemetry
// layer: atomic counters, gauges and fixed-bucket histograms in a named
// Registry, plus a lightweight phase-span tracer (trace.go) and HTTP
// exposition surfaces (http.go). The paper's headline claims are resource
// claims — Theorem 4.5 bounds streaming space, Theorem 4.7 bounds
// coordinator communication — and this package makes those budgets (and
// the cache/FAIL/latency behaviour of the optimised pipelines)
// continuously observable instead of reconstructable from experiment
// tables. DESIGN.md §9 records the metric vocabulary.
//
// # Overhead contract
//
// Telemetry is globally disabled by default. The disabled fast path of
// every mutating call is a nil check plus one atomic load — small enough
// (<2 ns/op, see BenchmarkDisabledCounter) that hot loops (ingest Apply,
// SparseRecovery decode, flow pivots) are instrumented unconditionally
// rather than behind build tags. Instrumented code follows two rules:
//
//   - metric handles are looked up once (package var or struct field),
//     never per event — Registry lookups take a mutex;
//   - per-iteration work inside hot loops accumulates into a local and
//     is Add'ed once per batch/solve, so even the enabled path costs one
//     atomic per batch, not per element.
//
// All mutation is race-safe: counters are plain atomics, and Snapshot
// may run concurrently with writes (it sees each metric at some moment;
// it never tears an individual value).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// enabled is the global kill switch. Disabled (the default) every
// mutating telemetry call returns after one atomic load.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off; existing values are retained.
func Disable() { enabled.Store(false) }

// SetEnabled sets the global collection flag.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on. Instrumentation uses
// it to gate work beyond a counter bump (timestamping, fmt of label
// names on rare paths).
func Enabled() bool { return enabled.Load() }

// NowNano returns a monotonic-ish nanosecond timestamp when telemetry is
// enabled and 0 when disabled, so hot paths can write
//
//	t0 := obs.NowNano()
//	... work ...
//	hist.ObserveSince(t0)
//
// without paying for time.Now on the disabled path.
func NowNano() int64 {
	if !enabled.Load() {
		return 0
	}
	return time.Now().UnixNano()
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a valid no-op target.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when telemetry is enabled.
func (c *Counter) Inc() {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter (Registry.Reset).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic float64 last-value gauge. The zero value is ready
// to use; a nil *Gauge is a valid no-op target.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value when telemetry is enabled.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() { g.bits.Store(0) }

// histBuckets is the bucket count of a Histogram: bucket 0 holds values
// ≤ 0, bucket i (1 ≤ i ≤ 64) holds values v with 2^(i-1) ≤ v < 2^i —
// log2 buckets sized for nanosecond latencies and byte/bit volumes.
const histBuckets = 65

// Histogram is a fixed-bucket log2 histogram over int64 observations.
// The zero value is ready to use; a nil *Histogram is a valid no-op
// target. All fields are atomics, so Observe may race with Snapshot
// (the snapshot is per-field consistent, not cross-field).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value when telemetry is enabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// ObserveSince records the nanoseconds elapsed since a NowNano
// timestamp; t0 == 0 (telemetry was disabled at span start) is a no-op.
func (h *Histogram) ObserveSince(t0 int64) {
	if h == nil || t0 == 0 || !enabled.Load() {
		return
	}
	h.Observe(time.Now().UnixNano() - t0)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
