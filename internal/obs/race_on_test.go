//go:build race

package obs

// raceEnabled reports that this binary was built with -race, whose
// instrumentation multiplies atomic-load cost; timing gates skip.
const raceEnabled = true
