package obs

import (
	"strings"
	"testing"
)

// fakeClock returns a deterministic nanosecond clock advancing stepNS per
// Record.
func fakeClock(startNS, stepNS int64) func() int64 {
	t := startNS - stepNS
	return func() int64 {
		t += stepNS
		return t
	}
}

func TestSeriesRate(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)

	s := NewSeries(r, 10)
	s.SetClock(fakeClock(0, 1e9)) // one snapshot per second
	c := r.Counter("st_ops_total")

	s.Record() // t=0s, ops=0
	c.Add(100)
	s.Record() // t=1s, ops=100
	c.Add(300)
	s.Record() // t=2s, ops=400

	// (400-0) / 2s
	if got := s.Rate("st_ops_total"); got != 200 {
		t.Fatalf("Rate = %v, want 200", got)
	}
	if got := s.Rate("st_never_seen_total"); got != 0 {
		t.Fatalf("Rate of unseen counter = %v, want 0", got)
	}
	rates := s.Rates()
	if rates["st_ops_total"] != 200 {
		t.Fatalf("Rates = %v, want st_ops_total=200", rates)
	}
}

func TestSeriesWindowEviction(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)

	s := NewSeries(r, 3)
	s.SetClock(fakeClock(0, 1e9))
	c := r.Counter("st_win_total")

	for i := 0; i < 5; i++ {
		c.Add(10)
		s.Record()
	}
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("window holds %d points, capacity 3", len(pts))
	}
	// Records happened at t=0..4s holding 10..50; the window keeps the
	// last three (t=2,3,4 with 30,40,50) oldest first.
	wantAt := []int64{2e9, 3e9, 4e9}
	wantV := []int64{30, 40, 50}
	for i, p := range pts {
		if p.AtNS != wantAt[i] || p.Snap.Counters["st_win_total"] != wantV[i] {
			t.Fatalf("point %d = (t=%d, v=%d), want (t=%d, v=%d)",
				i, p.AtNS, p.Snap.Counters["st_win_total"], wantAt[i], wantV[i])
		}
	}
	// Rate over the retained window: (50-30)/2s.
	if got := s.Rate("st_win_total"); got != 10 {
		t.Fatalf("Rate over evicted window = %v, want 10", got)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	r := NewRegistry()
	s := NewSeries(r, 0) // clamped to 2
	if got := s.Rate("anything"); got != 0 {
		t.Fatalf("Rate on empty series = %v, want 0", got)
	}
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	s.SetClock(fakeClock(5, 0)) // zero-width window
	s.Record()
	s.Record()
	if got := s.Rate("anything"); got != 0 {
		t.Fatalf("Rate over zero-width window = %v, want 0", got)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", s.Len())
	}
}

func TestSeriesWriteJSON(t *testing.T) {
	r := NewRegistry()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)

	s := NewSeries(r, 4)
	s.SetClock(fakeClock(0, 1e9))
	c := r.Counter("st_json_total")
	s.Record()
	c.Add(7)
	s.Record()

	var sb strings.Builder
	if err := s.WriteJSON(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"samples": 2`,
		`"total_recorded": 2`,
		`"window_sec": 1`,
		`"st_json_total": 7`,
		`"points"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteJSON output missing %q:\n%s", want, out)
		}
	}
}
