package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with telemetry forced on, restoring the previous
// state afterwards. Tests in this package must not run in parallel with
// each other: the flag is process-global.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	Enable()
	defer SetEnabled(prev)
	f()
}

func TestCounterParallel(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("test_parallel_total")
		const workers, per = 8, 10000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != workers*per {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
	})
}

// TestSnapshotDuringWrite exercises Snapshot and WriteProm racing with
// concurrent metric writes — the -race run is the real assertion.
func TestSnapshotDuringWrite(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("race_total")
		g := r.Gauge("race_gauge")
		h := r.Histogram("race_ns")
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-done:
					return
				default:
				}
				c.Inc()
				g.SetInt(i)
				h.Observe(i)
			}
		}()
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if s.Counters["race_total"] < 0 {
				t.Fatal("negative counter in snapshot")
			}
			if err := r.WriteProm(io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		close(done)
		wg.Wait()
	})
}

func TestDisabledMetricsStayZero(t *testing.T) {
	prev := Enabled()
	Disable()
	defer SetEnabled(prev)
	r := NewRegistry()
	c := r.Counter("off_total")
	g := r.Gauge("off_gauge")
	h := r.Histogram("off_ns")
	c.Add(5)
	c.Inc()
	g.Set(3.5)
	h.Observe(42)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics mutated: c=%d g=%g h=%d", c.Load(), g.Load(), h.Count())
	}
	if NowNano() != 0 {
		t.Fatal("NowNano() != 0 while disabled")
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	withEnabled(t, func() {
		var c *Counter
		var g *Gauge
		var h *Histogram
		c.Add(1)
		c.Inc()
		g.Set(1)
		h.Observe(1)
		h.ObserveSince(1)
		if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatal("nil metrics returned nonzero")
		}
	})
}

// TestWritePromGolden pins the exposition format byte for byte: sorted
// names, counters and gauges as bare samples, histograms as cumulative
// _bucket/_sum/_count series with power-of-two bounds.
func TestWritePromGolden(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("zz_last_total").Add(7)
		r.Counter(`aa_first_total{level="3"}`).Add(2)
		r.Gauge("mid_gauge").Set(1.5)
		h := r.Histogram("lat_ns")
		h.Observe(0) // bucket ≤0
		h.Observe(1) // < 2
		h.Observe(3) // < 4
		h.Observe(3)
		// A label set embedded in a histogram name moves inside the
		// exposition suffixes: _bucket merges with le, _sum/_count keep
		// the label set after the suffix.
		lh := r.Histogram(`round_ns{round="2"}`)
		lh.Observe(3)

		var sb strings.Builder
		if err := r.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		want := `aa_first_total{level="3"} 2
lat_ns{quantile="0.5"} 2
lat_ns{quantile="0.95"} 3.8
lat_ns{quantile="0.99"} 3.96
lat_ns_bucket{le="0"} 1
lat_ns_bucket{le="2"} 2
lat_ns_bucket{le="4"} 4
lat_ns_bucket{le="+Inf"} 4
lat_ns_sum 7
lat_ns_count 4
mid_gauge 1.5
round_ns{round="2",quantile="0.5"} 3
round_ns{round="2",quantile="0.95"} 3.9
round_ns{round="2",quantile="0.99"} 3.98
round_ns_bucket{round="2",le="0"} 0
round_ns_bucket{round="2",le="2"} 0
round_ns_bucket{round="2",le="4"} 1
round_ns_bucket{round="2",le="+Inf"} 1
round_ns_sum{round="2"} 3
round_ns_count{round="2"} 1
zz_last_total 7
`
		if got := sb.String(); got != want {
			t.Fatalf("WriteProm output:\n%s\nwant:\n%s", got, want)
		}
	})
}

func TestWriteJSONDeterministic(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("g").Set(4)
		// A populated histogram carries a +Inf bucket bound, which must
		// round-trip as a string ("le": "+Inf") — a bare float64 +Inf is
		// a json.Marshal error (it broke -metrics json and /debug/vars).
		r.Histogram("h_ns").Observe(5)
		var one, two strings.Builder
		if err := r.WriteJSON(&one); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&two); err != nil {
			t.Fatal(err)
		}
		if one.String() != two.String() {
			t.Fatal("WriteJSON not deterministic across calls")
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(one.String()), &s); err != nil {
			t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
		}
		if s.Counters["a_total"] != 1 || s.Counters["b_total"] != 2 || s.Gauges["g"] != 4 {
			t.Fatalf("round-tripped snapshot wrong: %+v", s)
		}
	})
}

func TestRegistryReset(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("r_total")
		c.Add(3)
		h := r.Histogram("r_ns")
		h.Observe(9)
		r.Reset()
		if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatal("Reset left values behind")
		}
		c.Inc() // handle still live after Reset
		if c.Load() != 1 {
			t.Fatal("handle dead after Reset")
		}
	})
}

func TestDebugMuxServesMetricsAndPprof(t *testing.T) {
	withEnabled(t, func() {
		C("http_smoke_total").Inc()
		addr, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		get := func(path string) string {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		if body := get("/metrics"); !strings.Contains(body, "http_smoke_total ") {
			t.Fatalf("/metrics missing smoke counter:\n%s", body)
		}
		if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
			t.Fatal("/debug/pprof/ index missing profiles")
		}
		if body := get("/debug/vars"); !strings.Contains(body, "streambalance") {
			t.Fatal("/debug/vars missing published snapshot")
		}
	})
}
