package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestTracerGolden pins WriteSpans' format with a deterministic clock.
func TestTracerGolden(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	var tick int64
	tr.SetClock(func() int64 { tick += 100; return tick })

	sp := tr.Start("stream.extract")
	sp.AttrInt("decodes", 12)
	sp.Attr("mode", "cold")
	sp.End()
	sp2 := tr.Start("dist.round2")
	sp2.AttrFloat("o", 256)
	sp2.End()

	var sb strings.Builder
	if err := tr.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}
	want := "stream.extract               start=100ns dur=100ns  decodes=12 mode=cold\n" +
		"dist.round2                  start=300ns dur=100ns  o=256\n"
	if got := sb.String(); got != want {
		t.Fatalf("WriteSpans:\n%q\nwant:\n%q", got, want)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	var tick int64
	tr.SetClock(func() int64 { tick++; return tick })
	for i := 0; i < 10; i++ {
		sp := tr.Start("s")
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	// Oldest-first: starts must be strictly increasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Start <= evs[i-1].Start {
			t.Fatalf("events out of order: %v", evs)
		}
	}
}

func TestDisabledTracerInert(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("x")
	sp.Attr("k", "v")
	sp.AttrInt("n", 1)
	sp.End()
	if sp.Active() {
		t.Fatal("span from disabled tracer is active")
	}
	if len(tr.Events()) != 0 {
		t.Fatal("disabled tracer recorded a span")
	}
	var nilTr *Tracer
	nsp := nilTr.Start("y")
	nsp.End() // must not panic
}

// TestTracerParallel drives spans from many goroutines under -race.
func TestTracerParallel(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("p")
				sp.AttrInt("i", int64(i))
				sp.End()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tr.Events()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500)
	}
}
