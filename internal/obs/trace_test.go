package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestTracerGolden pins WriteSpans' format with a deterministic clock.
func TestTracerGolden(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	var tick int64
	tr.SetClock(func() int64 { tick += 100; return tick })

	sp := tr.Start("stream.extract")
	sp.AttrInt("decodes", 12)
	sp.Attr("mode", "cold")
	sp.End()
	sp2 := tr.Start("dist.round2")
	sp2.AttrFloat("o", 256)
	sp2.End()

	var sb strings.Builder
	if err := tr.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}
	want := "stream.extract               start=100ns dur=100ns  decodes=12 mode=cold\n" +
		"dist.round2                  start=300ns dur=100ns  o=256\n"
	if got := sb.String(); got != want {
		t.Fatalf("WriteSpans:\n%q\nwant:\n%q", got, want)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	var tick int64
	tr.SetClock(func() int64 { tick++; return tick })
	for i := 0; i < 10; i++ {
		sp := tr.Start("s")
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	// Oldest-first: starts must be strictly increasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Start <= evs[i-1].Start {
			t.Fatalf("events out of order: %v", evs)
		}
	}
}

func TestDisabledTracerInert(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("x")
	sp.Attr("k", "v")
	sp.AttrInt("n", 1)
	sp.End()
	if sp.Active() {
		t.Fatal("span from disabled tracer is active")
	}
	if len(tr.Events()) != 0 {
		t.Fatal("disabled tracer recorded a span")
	}
	var nilTr *Tracer
	nsp := nilTr.Start("y")
	nsp.End() // must not panic
}

// seqIDs returns a deterministic id source: 1, 2, 3, ...
func seqIDs() func() uint64 {
	var n uint64
	return func() uint64 { n++; return n }
}

// TestTraceContextPropagation walks the full cross-process choreography
// locally: a root span, a child parented through an extracted
// TraceContext (as the dist wire does), and a grandchild — then pins
// both the flat WriteSpans suffixes and the WriteTraces tree with
// deterministic ids and clock.
func TestTraceContextPropagation(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	var tick int64
	tr.SetClock(func() int64 { tick += 100; return tick })
	tr.SetIDSource(seqIDs())

	root := tr.StartRoot("dist.run") // trace id = 1,2; span id = 3
	rc := root.Context()
	if !rc.Valid() {
		t.Fatal("root context invalid")
	}
	child := tr.StartChild(rc, "dist.machine") // span id = 4
	child.AttrInt("machine", 1)
	grand := tr.StartChild(child.Context(), "dist.link") // span id = 5
	grand.End()
	child.End()
	root.End()

	if child.Context().TraceID != rc.TraceID {
		t.Fatal("child did not inherit trace id")
	}
	var spans strings.Builder
	if err := tr.WriteSpans(&spans); err != nil {
		t.Fatal(err)
	}
	wantSpans := "dist.link                    start=300ns dur=100ns  trace=00000000000000010000000000000002 span=0000000000000005 parent=0000000000000004\n" +
		"dist.machine                 start=200ns dur=300ns  machine=1  trace=00000000000000010000000000000002 span=0000000000000004 parent=0000000000000003\n" +
		"dist.run                     start=100ns dur=500ns  trace=00000000000000010000000000000002 span=0000000000000003\n"
	if got := spans.String(); got != wantSpans {
		t.Fatalf("WriteSpans:\n%q\nwant:\n%q", got, wantSpans)
	}

	var tree strings.Builder
	if err := tr.WriteTraces(&tree); err != nil {
		t.Fatal(err)
	}
	wantTree := "trace 00000000000000010000000000000002 (3 spans)\n" +
		"  dist.run                   +0ns dur=500ns\n" +
		"    dist.machine             +100ns dur=300ns  machine=1\n" +
		"      dist.link              +200ns dur=100ns\n"
	if got := tree.String(); got != wantTree {
		t.Fatalf("WriteTraces:\n%q\nwant:\n%q", got, wantTree)
	}
}

func TestStartChildInvalidParent(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	sp := tr.StartChild(TraceContext{}, "orphan")
	if sp.Context().Valid() {
		t.Fatal("child of invalid parent got a context")
	}
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Trace != "" || evs[0].Parent != "" {
		t.Fatalf("orphan span carries trace fields: %+v", evs)
	}
}

// TestOrphanSpanRendersAsRoot: a child whose parent span fell out of
// the ring (or lives in an unmerged process) must still render under
// its trace, as a root.
func TestOrphanSpanRendersAsRoot(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	tr.SetIDSource(seqIDs())
	parent := TraceContext{}
	parent.TraceID[15] = 9
	parent.SpanID[7] = 9 // never recorded locally
	sp := tr.StartChild(parent, "remote.child")
	sp.End()
	var sb strings.Builder
	if err := tr.WriteTraces(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "remote.child") {
		t.Fatalf("orphaned child missing from WriteTraces:\n%s", out)
	}
}

// TestSpansDroppedAccounting overflows the ring and checks the drop
// counter — the regression test for overflow being silent.
func TestSpansDroppedAccounting(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	for i := 0; i < 10; i++ {
		sp := tr.Start("s")
		sp.End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6 (10 recorded, ring of 4)", got)
	}
	tr.Reset()
	if tr.Dropped() != 0 {
		t.Fatal("Reset did not clear drop count")
	}
}

// TestProcessTracerDropCounter pins the metric mirror on the process
// tracer and its surfacing in the /debug/spans header.
func TestProcessTracerDropCounter(t *testing.T) {
	withEnabled(t, func() {
		prevOn := Trace.Enabled()
		Trace.Enable()
		defer func() {
			if !prevOn {
				Trace.Disable()
			}
		}()
		Trace.Reset()
		mSpansDropped.reset()

		overflow := cap(Trace.ring) + 50
		for i := 0; i < overflow; i++ {
			sp := Trace.Start("of")
			sp.End()
		}
		if got := Trace.Dropped(); got != 50 {
			t.Fatalf("process tracer Dropped = %d, want 50", got)
		}
		if got := mSpansDropped.Load(); got != 50 {
			t.Fatalf("obs_spans_dropped_total = %d, want 50", got)
		}
		rec := httptest.NewRecorder()
		SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
		if body := rec.Body.String(); !strings.Contains(body, "spans_dropped=50") {
			t.Fatalf("/debug/spans missing drop count header:\n%.200s", body)
		}
		Trace.Reset()
		mSpansDropped.reset()
	})
}

// TestTracerParallel drives spans from many goroutines under -race.
func TestTracerParallel(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("p")
				sp.AttrInt("i", int64(i))
				sp.End()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tr.Events()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500)
	}
}
