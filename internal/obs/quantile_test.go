package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// TestQuantileAgainstExact pins the log2-bucket estimator against exact
// quantiles on synthetic distributions. The estimator interpolates
// inside a power-of-two bucket, so the contract is relative: an
// estimate may be off by at most the bucket width — within a factor of
// 2 of the exact value — and must be monotone in q.
func TestQuantileAgainstExact(t *testing.T) {
	withEnabled(t, func() {
		rng := rand.New(rand.NewSource(42))
		dists := map[string]func() int64{
			"uniform_1e6":  func() int64 { return 1 + rng.Int63n(1_000_000) },
			"exponentialy": func() int64 { return int64(rng.ExpFloat64()*50_000) + 1 },
			"bimodal":      func() int64 { return []int64{100, 100_000}[rng.Intn(2)] + rng.Int63n(50) },
		}
		qs := []float64{0.5, 0.95, 0.99}
		for name, draw := range dists {
			r := NewRegistry()
			h := r.Histogram("q_ns")
			const n = 20_000
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = draw()
				h.Observe(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			prevEst := 0.0
			for _, q := range qs {
				exact := float64(vals[int(q*float64(n))-1])
				est := h.Quantile(q)
				if est < exact/2 || est > exact*2 {
					t.Errorf("%s q=%g: estimate %g outside [%g, %g] (exact %g)",
						name, q, est, exact/2, exact*2, exact)
				}
				if est < prevEst {
					t.Errorf("%s: estimator not monotone: q=%g gave %g after %g", name, q, est, prevEst)
				}
				prevEst = est
			}
		}
	})
}

func TestQuantileEdgeCases(t *testing.T) {
	withEnabled(t, func() {
		var empty *Histogram
		if got := empty.Quantile(0.5); got != 0 {
			t.Fatalf("nil histogram quantile = %g, want 0", got)
		}
		r := NewRegistry()
		h := r.Histogram("edge_ns")
		if got := h.Quantile(0.99); got != 0 {
			t.Fatalf("empty histogram quantile = %g, want 0", got)
		}
		// All observations non-positive land in the ≤0 bucket and
		// estimate as 0.
		h.Observe(0)
		h.Observe(-5)
		if got := h.Quantile(0.99); got != 0 {
			t.Fatalf("non-positive histogram quantile = %g, want 0", got)
		}
		// Out-of-range q clamps instead of panicking.
		h2 := r.Histogram("edge2_ns")
		h2.Observe(8)
		if lo, hi := h2.Quantile(-1), h2.Quantile(2); lo < 0 || hi > 16 {
			t.Fatalf("clamped quantiles out of bucket range: %g, %g", lo, hi)
		}
	})
}

// TestSnapshotCarriesQuantiles pins that Snapshot (and therefore
// /debug/vars and WriteJSON) exposes the fixed p50/p95/p99 set.
func TestSnapshotCarriesQuantiles(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Histogram("sq_ns").Observe(100)
		hs := r.Snapshot().Hists["sq_ns"]
		for _, key := range []string{"0.5", "0.95", "0.99"} {
			v, ok := hs.Quantiles[key]
			if !ok {
				t.Fatalf("snapshot quantiles missing %q: %v", key, hs.Quantiles)
			}
			if v < 64 || v > 128 {
				t.Fatalf("quantile %q = %g, want within bucket [64, 128]", key, v)
			}
		}
		r.Histogram("sq_empty_ns") // registered, never observed
		if empty := r.Snapshot().Hists["sq_empty_ns"]; empty.Quantiles != nil {
			t.Fatalf("empty hist produced quantiles: %v", empty.Quantiles)
		}
	})
}
