package grid

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func newTestGrid(t *testing.T, delta int64, dim int, seed int64) *Grid {
	t.Helper()
	return New(delta, dim, rand.New(rand.NewSource(seed)))
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []int64{0, 3, 6, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("delta=%d: expected panic", bad)
				}
			}()
			New(bad, 2, rand.New(rand.NewSource(1)))
		}()
	}
	g := newTestGrid(t, 16, 3, 1)
	if g.L != 4 {
		t.Fatalf("L = %d, want 4", g.L)
	}
	if g.Levels() != 5 {
		t.Fatalf("Levels = %d, want 5", g.Levels())
	}
}

func TestSideLengths(t *testing.T) {
	g := newTestGrid(t, 16, 2, 2)
	want := map[int]int64{-1: 32, 0: 16, 1: 8, 2: 4, 3: 2, 4: 1}
	for level, w := range want {
		if got := g.SideLen(level); got != w {
			t.Fatalf("SideLen(%d) = %d, want %d", level, got, w)
		}
	}
}

func TestLevelMinusOneSingleCell(t *testing.T) {
	// The unique cell of G_{-1} must contain every point of [Δ]^d.
	for seed := int64(0); seed < 20; seed++ {
		g := newTestGrid(t, 8, 2, seed)
		ref := g.CellKey(geo.Point{1, 1}, MinLevel)
		for x := int64(1); x <= 8; x++ {
			for y := int64(1); y <= 8; y++ {
				if g.CellKey(geo.Point{x, y}, MinLevel) != ref {
					t.Fatalf("seed %d: point (%d,%d) escapes the G_{-1} cell", seed, x, y)
				}
			}
		}
	}
}

func TestNestingParentIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(1024, 4, rng)
	for i := 0; i < 500; i++ {
		p := randPoint(rng, 4, 1024)
		for level := 0; level <= g.L; level++ {
			idx := g.CellIndex(p, level)
			parent := ParentIndex(idx)
			want := g.CellIndex(p, level-1)
			for j := range want {
				if parent[j] != want[j] {
					t.Fatalf("nesting broken at level %d: %v vs %v", level, parent, want)
				}
			}
		}
	}
}

func TestSameCellConsistentWithIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := New(256, 3, rng)
	for i := 0; i < 300; i++ {
		p := randPoint(rng, 3, 256)
		q := randPoint(rng, 3, 256)
		for level := MinLevel; level <= g.L; level++ {
			ip := g.CellIndex(p, level)
			iq := g.CellIndex(q, level)
			same := true
			for j := range ip {
				if ip[j] != iq[j] {
					same = false
				}
			}
			if got := g.SameCell(p, q, level); got != same {
				t.Fatalf("SameCell disagrees with indices at level %d", level)
			}
			if same != (g.CellKey(p, level) == g.CellKey(q, level)) {
				t.Fatalf("CellKey disagrees with indices at level %d", level)
			}
		}
	}
}

func TestCellDiameterBound(t *testing.T) {
	// Any two points sharing a level-i cell are within √d · g_i.
	rng := rand.New(rand.NewSource(5))
	g := New(64, 2, rng)
	pts := make(geo.PointSet, 400)
	for i := range pts {
		pts[i] = randPoint(rng, 2, 64)
	}
	for level := 0; level <= g.L; level++ {
		diam := g.Diameter(level)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if g.SameCell(pts[i], pts[j], level) {
					if d := geo.Dist(pts[i], pts[j]); d > diam+1e-9 {
						t.Fatalf("level %d: same-cell points at distance %v > diameter %v", level, d, diam)
					}
				}
			}
		}
	}
}

func TestUnitCellsIsolateDistinctPoints(t *testing.T) {
	// At level L (side 1), two distinct points never share a cell.
	g := newTestGrid(t, 32, 2, 6)
	for x := int64(1); x <= 32; x += 3 {
		for y := int64(1); y <= 32; y += 3 {
			p := geo.Point{x, y}
			q := geo.Point{x, y + 1}
			if y+1 <= 32 && g.SameCell(p, q, g.L) {
				t.Fatalf("distinct points share a unit cell: %v %v", p, q)
			}
			if !g.SameCell(p, p.Clone(), g.L) {
				t.Fatal("identical points must share every cell")
			}
		}
	}
}

func TestKeysDifferAcrossLevels(t *testing.T) {
	g := newTestGrid(t, 16, 2, 7)
	p := geo.Point{5, 5}
	seen := make(map[uint64]int)
	for level := MinLevel; level <= g.L; level++ {
		k := g.CellKey(p, level)
		if prev, ok := seen[k]; ok {
			t.Fatalf("levels %d and %d share a cell key", prev, level)
		}
		seen[k] = level
	}
}

func TestShiftChangesPartition(t *testing.T) {
	// With different random shifts, the mid-level partition of a fixed
	// pair should differ for at least one seed — sanity that the shift is
	// actually applied.
	p := geo.Point{8, 8}
	q := geo.Point{9, 9}
	varies := false
	first := newTestGrid(t, 16, 2, 0).SameCell(p, q, 2)
	for seed := int64(1); seed < 30; seed++ {
		if newTestGrid(t, 16, 2, seed).SameCell(p, q, 2) != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("random shift appears to have no effect")
	}
}

func TestRandomShiftSeparationProbability(t *testing.T) {
	// Classic shifted-grid property: points at distance δ are split at
	// level with side g with probability ≤ d·δ/g (we check a loose bound
	// empirically).
	p := geo.Point{100, 100}
	q := geo.Point{102, 100} // distance 2
	split := 0
	const trials = 2000
	for seed := int64(0); seed < trials; seed++ {
		g := New(256, 2, rand.New(rand.NewSource(seed)))
		if !g.SameCell(p, q, 3) { // side 32
			split++
		}
	}
	frac := float64(split) / trials
	// Expected ≈ δ/g = 2/32 = 0.0625 per axis; only one axis differs.
	if frac > 0.15 {
		t.Fatalf("split fraction %v too high (expect ≈ 0.0625)", frac)
	}
	if frac == 0 {
		t.Fatal("split fraction 0 — shift not effective")
	}
}

func TestDiameterValue(t *testing.T) {
	g := newTestGrid(t, 8, 4, 9)
	want := math.Sqrt(4) * 8
	if got := g.Diameter(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Diameter(0) = %v, want %v", got, want)
	}
}

func TestPanicsOnBadLevelAndDim(t *testing.T) {
	g := newTestGrid(t, 8, 2, 10)
	mustPanic(t, func() { g.SideLen(g.L + 1) })
	mustPanic(t, func() { g.SideLen(-2) })
	mustPanic(t, func() { g.CellIndex(geo.Point{1}, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func randPoint(rng *rand.Rand, d int, delta int64) geo.Point {
	p := make(geo.Point, d)
	for i := range p {
		p[i] = 1 + rng.Int63n(delta)
	}
	return p
}

func TestCellIndexIntoMatchesCellIndex(t *testing.T) {
	g := newTestGrid(t, 1<<10, 3, 21)
	rng := rand.New(rand.NewSource(22))
	dst := make([]int64, 0, g.Dim)
	for i := 0; i < 200; i++ {
		p := geo.Point{rng.Int63n(1 << 10), rng.Int63n(1 << 10), rng.Int63n(1 << 10)}
		level := rng.Intn(g.L+2) - 1
		want := g.CellIndex(p, level)
		dst = g.CellIndexInto(dst[:0], p, level)
		if len(dst) != len(want) {
			t.Fatalf("length %d vs %d", len(dst), len(want))
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("level %d: index %v vs %v", level, dst, want)
			}
		}
	}
}

func TestParentKeysMatchCellKeys(t *testing.T) {
	g := newTestGrid(t, 1<<8, 2, 23)
	rng := rand.New(rand.NewSource(24))
	keys := make([]uint64, g.L+1)
	for i := 0; i < 100; i++ {
		p := geo.Point{rng.Int63n(1 << 8), rng.Int63n(1 << 8)}
		idx := g.CellIndex(p, g.L)
		g.ParentKeys(keys, idx, g.L)
		for level := 0; level <= g.L; level++ {
			if keys[level] != g.CellKey(p, level) {
				t.Fatalf("level %d: ParentKeys %d vs CellKey %d", level, keys[level], g.CellKey(p, level))
			}
		}
		// idx is consumed down to the level-0 ancestor.
		for j, v := range g.CellIndex(p, 0) {
			if idx[j] != v {
				t.Fatalf("consumed idx %v is not the level-0 index", idx)
			}
		}
	}
}

func TestCellKeyPipelineAllocFree(t *testing.T) {
	// The batched ingestion pipeline relies on the CellIndexInto →
	// ParentKeys → KeyOf chain allocating nothing per op.
	g := newTestGrid(t, 1<<12, 4, 25)
	p := geo.Point{11, 222, 3333, 404}
	dst := make([]int64, 0, g.Dim)
	keys := make([]uint64, g.L+1)
	allocs := testing.AllocsPerRun(100, func() {
		dst = g.CellIndexInto(dst[:0], p, g.L)
		g.ParentKeys(keys, dst, g.L)
	})
	if allocs != 0 {
		t.Fatalf("cell key pipeline allocates %.1f objects/op, want 0", allocs)
	}
}

func TestParentKeys4MatchesScalar(t *testing.T) {
	// The 4-lane key column kernel must be bit-identical to four scalar
	// ParentKeys walks, including the consumed-index postcondition.
	g := newTestGrid(t, 1<<10, 3, 31)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		var pts [4]geo.Point
		var want [4][]uint64
		var idx [4][]int64
		var got [4][]uint64
		for l := 0; l < 4; l++ {
			pts[l] = geo.Point{rng.Int63n(1 << 10), rng.Int63n(1 << 10), rng.Int63n(1 << 10)}
			want[l] = make([]uint64, g.L+1)
			scratch := g.CellIndexInto(nil, pts[l], g.L)
			g.ParentKeys(want[l], scratch, g.L)
			idx[l] = g.CellIndexInto(nil, pts[l], g.L)
			got[l] = make([]uint64, g.L+1)
		}
		g.ParentKeys4(got[0], got[1], got[2], got[3], idx[0], idx[1], idx[2], idx[3], g.L)
		for l := 0; l < 4; l++ {
			for i := 0; i <= g.L; i++ {
				if got[l][i] != want[l][i] {
					t.Fatalf("lane %d level %d: ParentKeys4 %d vs ParentKeys %d", l, i, got[l][i], want[l][i])
				}
			}
			for j, v := range g.CellIndex(pts[l], 0) {
				if idx[l][j] != v {
					t.Fatalf("lane %d: consumed idx %v is not the level-0 index", l, idx[l])
				}
			}
		}
	}
}
