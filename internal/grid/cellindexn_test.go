package grid

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func TestCellIndexNMatchesScalar(t *testing.T) {
	g := newTestGrid(t, 1<<10, 3, 41)
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 256} {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{rng.Int63n(1 << 10), rng.Int63n(1 << 10), rng.Int63n(1 << 10)}
		}
		dst := make([]int64, n*g.Dim)
		for level := -1; level <= g.L; level++ {
			g.CellIndexN(dst, pts, level)
			for i, p := range pts {
				want := g.CellIndex(p, level)
				for j := range want {
					if dst[i*g.Dim+j] != want[j] {
						t.Fatalf("n=%d level=%d point %d: column %v vs scalar %v",
							n, level, i, dst[i*g.Dim:(i+1)*g.Dim], want)
					}
				}
			}
		}
	}
}

func TestCellIndexNPanics(t *testing.T) {
	g := newTestGrid(t, 1<<6, 2, 43)
	pts := []geo.Point{{1, 2}, {3, 4}}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("short dst", func() { g.CellIndexN(make([]int64, 3), pts, 0) })
	mustPanic("bad level", func() { g.CellIndexN(make([]int64, 4), pts, g.L+1) })
	mustPanic("bad dim", func() { g.CellIndexN(make([]int64, 4), []geo.Point{{1, 2, 3}}, 0) })
}

// TestCellIndexNNoAlloc pins both the retained checked scalar API
// (CellIndexInto with pre-capacity dst) and the columnar CellIndexN at
// 0 allocs/op — the satellite contract for hoisting the per-call
// validation out of the hot loop without changing external callers.
func TestCellIndexNNoAlloc(t *testing.T) {
	g := newTestGrid(t, 1<<12, 4, 44)
	pts := make([]geo.Point, 64)
	rng := rand.New(rand.NewSource(45))
	for i := range pts {
		pts[i] = geo.Point{rng.Int63n(1 << 12), rng.Int63n(1 << 12), rng.Int63n(1 << 12), rng.Int63n(1 << 12)}
	}
	dst := make([]int64, len(pts)*g.Dim)
	scalar := make([]int64, 0, g.Dim)
	if allocs := testing.AllocsPerRun(100, func() {
		scalar = g.CellIndexInto(scalar[:0], pts[0], g.L)
	}); allocs != 0 {
		t.Fatalf("CellIndexInto allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		g.CellIndexN(dst, pts, g.L)
	}); allocs != 0 {
		t.Fatalf("CellIndexN allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkCellIndexN measures the columnar kernel against the scalar
// loop it replaced in batch.build (BenchmarkCellIndexNScalarLoop).
func BenchmarkCellIndexN(b *testing.B) {
	g := New(1<<16, 4, rand.New(rand.NewSource(46)))
	rng := rand.New(rand.NewSource(47))
	pts := make([]geo.Point, 4096)
	for i := range pts {
		pts[i] = geo.Point{rng.Int63n(1 << 16), rng.Int63n(1 << 16), rng.Int63n(1 << 16), rng.Int63n(1 << 16)}
	}
	dst := make([]int64, len(pts)*g.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CellIndexN(dst, pts, g.L)
	}
}

func BenchmarkCellIndexNScalarLoop(b *testing.B) {
	g := New(1<<16, 4, rand.New(rand.NewSource(46)))
	rng := rand.New(rand.NewSource(47))
	pts := make([]geo.Point, 4096)
	for i := range pts {
		pts[i] = geo.Point{rng.Int63n(1 << 16), rng.Int63n(1 << 16), rng.Int63n(1 << 16), rng.Int63n(1 << 16)}
	}
	dst := make([]int64, 0, len(pts)*g.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, p := range pts {
			dst = g.CellIndexInto(dst, p, g.L)
		}
	}
}
