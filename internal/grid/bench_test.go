package grid

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func BenchmarkCellKey(b *testing.B) {
	g := New(1<<16, 4, rand.New(rand.NewSource(1)))
	p := geo.Point{12345, 54321, 11111, 65535}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= g.CellKey(p, i%(g.L+1))
	}
	_ = sink
}

func BenchmarkAllLevelsOfPoint(b *testing.B) {
	// The per-update cost pattern of the streaming algorithm: one cell
	// key per level.
	g := New(1<<16, 2, rand.New(rand.NewSource(2)))
	p := geo.Point{40000, 20000}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for level := 0; level <= g.L; level++ {
			sink ^= g.CellKey(p, level)
		}
	}
	_ = sink
}
