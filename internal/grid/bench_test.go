package grid

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
)

func BenchmarkCellKey(b *testing.B) {
	g := New(1<<16, 4, rand.New(rand.NewSource(1)))
	p := geo.Point{12345, 54321, 11111, 65535}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= g.CellKey(p, i%(g.L+1))
	}
	_ = sink
}

func BenchmarkAllLevelsOfPoint(b *testing.B) {
	// The per-update cost pattern of the streaming algorithm: one cell
	// key per level.
	g := New(1<<16, 2, rand.New(rand.NewSource(2)))
	p := geo.Point{40000, 20000}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for level := 0; level <= g.L; level++ {
			sink ^= g.CellKey(p, level)
		}
	}
	_ = sink
}

// BenchmarkCellIndexInto: the no-alloc variant must report 0 allocs/op.
func BenchmarkCellIndexInto(b *testing.B) {
	g := New(1<<16, 4, rand.New(rand.NewSource(3)))
	p := geo.Point{12345, 54321, 11111, 65535}
	dst := make([]int64, 0, g.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		dst = g.CellIndexInto(dst[:0], p, i%(g.L+1))
		sink ^= dst[0]
	}
	_ = sink
}

// BenchmarkParentKeys: all L+1 cell keys of one point via the incremental
// parent derivation — the per-op cost of the ingestion pipeline's key
// column, also 0 allocs/op.
func BenchmarkParentKeys(b *testing.B) {
	g := New(1<<16, 2, rand.New(rand.NewSource(4)))
	p := geo.Point{40000, 20000}
	dst := make([]int64, 0, g.Dim)
	keys := make([]uint64, g.L+1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		dst = g.CellIndexInto(dst[:0], p, g.L)
		g.ParentKeys(keys, dst, g.L)
		sink ^= keys[0]
	}
	_ = sink
}
