// Package grid implements the randomly shifted hierarchical grids
// G_{-1}, G_0, ..., G_L of Section 3.1. Grid G_i partitions space into
// axis-aligned cells of side length g_i = Δ/2^i; G_{-1} has side 2Δ so a
// single cell contains all of [Δ]^d; G_L has unit cells, so each cell of
// G_L holds at most one distinct location.
//
// The paper shifts the grid by a uniform real vector v ∈ [0,Δ]^d. Because
// all inputs live on the integer grid, shifting by an integer vector
// v ∈ {0,...,Δ−1}^d is distributionally equivalent for every event the
// analysis uses (which cell a point falls in only depends on ⌊v⌋ when
// points are integral); it is also exactly representable, so cell
// membership is computed with pure integer arithmetic.
package grid

import (
	"fmt"
	"math"
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/hashing"
)

// MinLevel is the coarsest grid level, G_{-1}, whose single cell covers
// the whole domain.
const MinLevel = -1

// Grid is a hierarchy of randomly shifted grids over [Δ]^d.
type Grid struct {
	Delta int64   // domain bound; power of two
	L     int     // Δ = 2^L
	Dim   int     // dimension d
	Shift []int64 // integer shift, one entry per coordinate, in [0, Δ)

	fp *hashing.Fingerprint
}

// New creates a grid hierarchy over [delta]^dim with a random shift drawn
// from rng. delta must be a power of two (use geo.MaxCoordRange to round
// up).
func New(delta int64, dim int, rng *rand.Rand) *Grid {
	if delta < 1 || delta&(delta-1) != 0 {
		panic(fmt.Sprintf("grid: delta %d is not a positive power of two", delta))
	}
	if dim < 1 {
		panic("grid: dimension must be >= 1")
	}
	l := 0
	for int64(1)<<l < delta {
		l++
	}
	shift := make([]int64, dim)
	for i := range shift {
		shift[i] = rng.Int63n(delta)
	}
	return &Grid{Delta: delta, L: l, Dim: dim, Shift: shift, fp: hashing.NewFingerprint(rng)}
}

// SideLen returns g_i = Δ/2^i, the side length of cells at level i
// (level −1 yields 2Δ).
func (g *Grid) SideLen(level int) int64 { return g.SideLenInt(level) }

// shiftBits returns log2(g_i) = L − i.
func (g *Grid) shiftBits(level int) uint {
	return uint(g.L - level)
}

// CellIndex returns the integer index vector of the level-i cell that
// contains p: index_j = (p_j + shift_j) >> (L − i).
func (g *Grid) CellIndex(p geo.Point, level int) []int64 {
	return g.CellIndexInto(make([]int64, 0, g.Dim), p, level)
}

// CellIndexInto appends the level-i cell index of p to dst and returns the
// extended slice — the allocation-free form of CellIndex for callers that
// reuse a scratch buffer (the batched ingestion pipeline computes one cell
// index per op per level this way).
func (g *Grid) CellIndexInto(dst []int64, p geo.Point, level int) []int64 {
	g.checkLevel(level)
	if len(p) != g.Dim {
		panic(fmt.Sprintf("grid: point dim %d != grid dim %d", len(p), g.Dim))
	}
	b := g.shiftBits(level)
	for j := range p {
		dst = append(dst, (p[j]+g.Shift[j])>>b)
	}
	return dst
}

// CellIndexN fills dst[t*Dim : (t+1)*Dim] with the level-i cell index of
// pts[t] for every point — the columnar form of CellIndexInto for the
// batched ingestion pipeline. The level range and the destination length
// are validated once per batch instead of once per point, and the inner
// loop is pure shift-add arithmetic; per-point dimension mismatches
// still panic (the check is a single compare). Bit-identical to
// len(pts) CellIndexInto calls, with the checked scalar API retained
// for external callers (TestCellIndexNNoAlloc pins both at 0 allocs).
func (g *Grid) CellIndexN(dst []int64, pts []geo.Point, level int) {
	g.checkLevel(level)
	d := g.Dim
	if len(dst) < len(pts)*d {
		panic(fmt.Sprintf("grid: CellIndexN dst length %d < %d points × dim %d", len(dst), len(pts), d))
	}
	b := g.shiftBits(level)
	shift := g.Shift
	for t, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("grid: point dim %d != grid dim %d", len(p), d))
		}
		o := t * d
		for j := 0; j < d; j++ {
			dst[o+j] = (p[j] + shift[j]) >> b
		}
	}
}

// ParentIndex maps a level-i cell index to its level-(i−1) parent index.
func ParentIndex(idx []int64) []int64 {
	out := make([]int64, len(idx))
	for j, v := range idx {
		out[j] = v >> 1
	}
	return out
}

// ParentKeys fills keys[i] for i = level..0 with the cell key of the
// level-i ancestor of the cell idx, deriving each coarser index from the
// finer one by a one-bit shift (the ParentIndex relation) instead of
// recomputing every level from the point. idx is consumed: on return it
// holds the level-0 ancestor index. len(keys) must be at least level+1.
func (g *Grid) ParentKeys(keys []uint64, idx []int64, level int) {
	g.checkLevel(level)
	for i := level; i >= 0; i-- {
		keys[i] = g.KeyOf(i, idx)
		if i > 0 {
			for j := range idx {
				idx[j] >>= 1
			}
		}
	}
}

// ParentKeys4 is ParentKeys over four index vectors at once: per level
// it derives the four cell keys through the 4-lane tagged fingerprint
// kernel (hashing.KeyTagged4), so the four ops' Rabin–Karp chains — the
// serial-multiply bottleneck of the key column — overlap instead of
// running back to back. All index vectors are consumed like ParentKeys'
// idx; k0..k3 must each have length at least level+1. Bit-identical to
// four ParentKeys calls.
func (g *Grid) ParentKeys4(k0, k1, k2, k3 []uint64, i0, i1, i2, i3 []int64, level int) {
	g.checkLevel(level)
	for i := level; i >= 0; i-- {
		k0[i], k1[i], k2[i], k3[i] = g.fp.KeyTagged4(int64(i)+2, i0, i1, i2, i3)
		if i > 0 {
			for j := range i0 {
				i0[j] >>= 1
				i1[j] >>= 1
				i2[j] >>= 1
				i3[j] >>= 1
			}
		}
	}
}

// CellKey returns a 64-bit fingerprint key identifying the level-i cell
// containing p. Keys are unique across levels (the level is folded into
// the fingerprint) up to the fingerprint collision bound.
func (g *Grid) CellKey(p geo.Point, level int) uint64 {
	return g.KeyOf(level, g.CellIndex(p, level))
}

// KeyOf fingerprints an explicit (level, index) pair. It allocates
// nothing: the level tag (offset by 2 so level −1 is representable as a
// positive value) is folded into the fingerprint directly.
func (g *Grid) KeyOf(level int, idx []int64) uint64 {
	return g.fp.KeyTagged(int64(level)+2, idx)
}

// Diameter returns the diameter bound √d·g_i for cells at level i: any
// two points in the same level-i cell are within this distance.
func (g *Grid) Diameter(level int) float64 {
	return math.Sqrt(float64(g.Dim)) * float64(g.SideLenInt(level))
}

// SideLenInt returns g_i exactly as an int64.
func (g *Grid) SideLenInt(level int) int64 {
	g.checkLevel(level)
	return int64(1) << g.shiftBits(level)
}

// Levels returns the number of levels 0..L (i.e. L+1); callers iterate
// level = 0 ... L and may additionally use level −1.
func (g *Grid) Levels() int { return g.L + 1 }

func (g *Grid) checkLevel(level int) {
	if level < MinLevel || level > g.L {
		panic(fmt.Sprintf("grid: level %d out of range [%d, %d]", level, MinLevel, g.L))
	}
}

// SameCell reports whether p and q fall in the same level-i cell.
func (g *Grid) SameCell(p, q geo.Point, level int) bool {
	b := g.shiftBits(level)
	for j := range p {
		if (p[j]+g.Shift[j])>>b != (q[j]+g.Shift[j])>>b {
			return false
		}
	}
	return true
}
