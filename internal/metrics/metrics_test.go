package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("E0", "demo", "a", "bb", "ccc")
	tb.Note = "interpretation"
	tb.Add("1", "2", "3")
	tb.Add("10", "20", "30")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E0", "demo", "interpretation", "bb", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the same prefix width for col 0.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := New("E0", "demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Add("only-one")
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		3.14159:  "3.142",
		1e9:      "1e+09",
		0.000001: "1e-06",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Fatalf("F(%v) = %q, want %q", v, got, want)
		}
	}
	if F(math.Inf(1)) != "inf" || F(math.NaN()) != "nan" {
		t.Fatal("special values")
	}
}

func TestBytes(t *testing.T) {
	if Bytes(512) != "512B" {
		t.Fatal(Bytes(512))
	}
	if Bytes(2048) != "2.00KiB" {
		t.Fatal(Bytes(2048))
	}
	if Bytes(3<<20) != "3.00MiB" {
		t.Fatal(Bytes(3 << 20))
	}
	if Bytes(5<<30) != "5.00GiB" {
		t.Fatal(Bytes(5 << 30))
	}
}

func TestPctAndI(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Fatal(Pct(0.1234))
	}
	if I(42) != "42" {
		t.Fatal(I(42))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.Median != 2 || s.N != 3 {
		t.Fatalf("summary %+v", s)
	}
	s = Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Fatalf("even median %v", s.Median)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty")
		}
	}()
	Summarize(nil)
}
