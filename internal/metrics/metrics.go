// Package metrics provides the small reporting toolkit the experiment
// harness uses: aligned text tables (one per reproduced table/figure) and
// basic summary statistics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is one experiment's result table, rendered as aligned text by the
// bench harness and cmd/bcbench.
type Table struct {
	ID     string // experiment id, e.g. "E1"
	Title  string
	Note   string // one-line interpretation aid
	Header []string
	Rows   [][]string
}

// New creates a table.
func New(id, title string, header ...string) *Table {
	return &Table{ID: id, Title: title, Header: header}
}

// Add appends a row; cells beyond the header length panic.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// F formats a float compactly: integers plainly, small values with 3
// significant digits, large ones in scientific notation.
func F(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// I formats an integer.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Bytes formats a byte count human-readably.
func Bytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Summary holds basic order statistics.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
}

// Summarize computes summary statistics; it panics on empty input.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		panic("metrics: Summarize of empty slice")
	}
	s := Summary{N: len(vs), Min: math.Inf(1), Max: math.Inf(-1)}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(vs))
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}
