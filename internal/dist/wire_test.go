package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"streambalance/internal/geo"
)

func randPoint(rng *rand.Rand, dim int, delta int64) geo.Point {
	p := make(geo.Point, dim)
	for j := range p {
		p[j] = rng.Int63n(delta)
	}
	return p
}

func TestSampleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 200} {
		m := sampleMsg{LocalN: int64(n) * 10}
		for i := 0; i < n; i++ {
			m.Pts = append(m.Pts, randPoint(rng, 3, 1<<10))
		}
		frame := encodeSample(m) // sorts m.Pts in place
		got, err := decodeSample(frame, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.LocalN != m.LocalN || !reflect.DeepEqual(got.Pts, m.Pts) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestBroadcastRoundTrip(t *testing.T) {
	m := broadcastMsg{O: 1234.5, Seed: -99, Shift: []int64{3, -511, 0, 1 << 20}}
	got, err := decodeBroadcast(encodeBroadcast(m), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.O != m.O || got.Seed != m.Seed || !reflect.DeepEqual(got.Shift, m.Shift) {
		t.Fatalf("got %+v want %+v", got, m)
	}
	if _, err := decodeBroadcast(encodeBroadcast(m), 3); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestCellsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := cellsMsg{Level: 5}
	seen := map[string]bool{}
	for len(m.Cells) < 300 {
		idx := []int64(randPoint(rng, 2, 1<<9))
		if k := geo.Point(idx).String(); !seen[k] {
			seen[k] = true
			m.Cells = append(m.Cells, wireCell{Idx: idx, Count: rng.Int63n(1000) + 1})
		}
	}
	frame := encodeCells(frameCellsH, m) // sorts in place
	got, err := decodeCells(frame, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 5 || got.Fail || !reflect.DeepEqual(got.Cells, m.Cells) {
		t.Fatal("cells round trip mismatch")
	}
	// Sorted dense indices must beat the formula's fixed-width cells.
	if measured := int64(len(frame)) * 8; measured >= int64(len(m.Cells))*cellBits(2, 1<<9) {
		t.Fatalf("measured %d bits >= formula %d", measured, int64(len(m.Cells))*cellBits(2, 1<<9))
	}

	fail := cellsMsg{Level: 3, Fail: true}
	gotF, err := decodeCells(encodeCells(frameCellsHP, fail), 2, 10)
	if err != nil || !gotF.Fail || gotF.Level != 3 {
		t.Fatalf("FAIL round trip: %+v err=%v", gotF, err)
	}
	if _, err := decodeCells(encodeCells(frameCellsH, cellsMsg{Level: 11}), 2, 10); err == nil {
		t.Fatal("level beyond maxLevel must error")
	}
}

func TestHatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := hatMsg{Level: 2}
	seen := map[string]bool{}
	for len(m.Pts) < 100 {
		p := randPoint(rng, 3, 1<<8)
		if k := p.String(); !seen[k] {
			seen[k] = true
			m.Pts = append(m.Pts, wirePoint{P: p, Mult: rng.Int63n(9) + 1})
		}
	}
	got, err := decodeHat(encodeHat(m), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 2 || got.Fail || !reflect.DeepEqual(got.Pts, m.Pts) {
		t.Fatal("hat round trip mismatch")
	}

	gotF, err := decodeHat(encodeHat(hatMsg{Level: 1, Fail: true}), 3, 5)
	if err != nil || !gotF.Fail {
		t.Fatalf("FAIL round trip: %+v err=%v", gotF, err)
	}
}

// Decoders must reject garbage with an error, never panic or accept.
func TestDecodersRejectMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{frameSample},
		{frameBroadcast, 1, 2, 3},
		{frameCellsH, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		{frameHat, 0, 0, 5},
		append(encodeSample(sampleMsg{LocalN: 1}), 0xee), // trailing byte
		{frameCellsH, 0, 0, 1, 0, 0, 0},                  // count 0 cell
	}
	for i, frame := range cases {
		if _, err := decodeSample(frame, 2); err == nil && frameType(frame) == frameSample {
			t.Fatalf("case %d: sample decode accepted garbage", i)
		}
		if _, err := decodeBroadcast(frame, 2); err == nil && frameType(frame) == frameBroadcast {
			t.Fatalf("case %d: broadcast decode accepted garbage", i)
		}
		if _, err := decodeCells(frame, 2, 10); err == nil && (frameType(frame) == frameCellsH || frameType(frame) == frameCellsHP) {
			t.Fatalf("case %d: cells decode accepted garbage", i)
		}
		if _, err := decodeHat(frame, 2, 10); err == nil && frameType(frame) == frameHat {
			t.Fatalf("case %d: hat decode accepted garbage", i)
		}
	}
}
