// Package dist implements the distributed coreset protocol of Theorem 4.7
// in the coordinator model of [KVW14, WZ16, ...]: s machines each hold a
// subset of the input; communication flows only between machines and the
// coordinator; the goal is a strong capacitated-clustering coreset at the
// coordinator with total communication s·poly(ε⁻¹η⁻¹kd log Δ) bits.
//
// The protocol simulates Algorithm 4 (Lemma 4.6 replaces the Storing
// sketches with exact local computation):
//
//	Round 1 (up):   each machine sends its exact local size and a small
//	                uniform sample of its local points — the coordinator's
//	                stand-in for the distributed 2-approximation of OPT the
//	                paper cites ([FL11, BFL+17, HSYZ18]); see DESIGN.md §1.
//	Round 1 (down): the coordinator broadcasts the guess o, the random
//	                grid shift, and the shared-randomness seed from which
//	                every machine reconstructs the identical grids, cell
//	                fingerprints and sampling hashes.
//	Round 2 (up):   per level, each machine sends its local non-empty-cell
//	                counts for the h and h′ substreams and its locally
//	                ĥ-sampled points — or a FAIL when a local cap is
//	                exceeded (Lemma 4.6's contract). The coordinator merges
//	                counts exactly, runs Algorithms 1–2 (consulting only
//	                levels that can matter), and assembles the coreset.
//
// Since the wire-codec rewrite the subsystem is a real message-passing
// system: machines and the coordinator exchange framed, compactly encoded
// messages over a Transport (transport.go), the codec lives in wire.go,
// and the concurrent pipelined driver plus the single-goroutine reference
// RunSerial live in driver.go. Report.Bits is the measured length of the
// encoded frames; Report.FormulaBits retains the closed-form
// pointBits/cellBits accounting the package used before the codec, so the
// two can be compared rather than silently swapped.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/obs"
	"streambalance/internal/partition"
	"streambalance/internal/solve"
)

// Telemetry (DESIGN.md §9). The wire counters mirror Report.Bits /
// Report.FormulaBits cumulatively across runs, so a live scrape of
// /metrics cross-checks the E5 table without re-running it; FAIL
// frames (Lemma 4.6's per-machine caps) are queryable per kind.
var (
	mRuns        = obs.C("dist_runs_total")
	mFrames      = obs.C("dist_frames_total")
	mWireBits    = obs.C("dist_wire_bits_total")
	mFormulaBits = obs.C("dist_formula_bits_total")
	mFailCells   = obs.C("dist_fail_cells_total")
	mFailPoints  = obs.C("dist_fail_points_total")

	// Per-phase wire bits; the phase set is the protocol's, fixed. The
	// vector interns each phase on first charge under the same
	// dist_wire_bits_total{phase="..."} names the package used to build
	// by hand.
	vPhaseBits = obs.CV("dist_wire_bits_total", "phase")

	vRoundNS   = obs.HV("dist_round_ns", "round")
	mRound1NS  = vRoundNS.With("1")
	mRound2NS  = vRoundNS.With("2")
	mComputeNS = obs.H("dist_machine_compute_ns")
)

// Config configures the distributed protocol.
type Config struct {
	Delta  int64
	Dim    int
	Params coreset.Params

	O float64 // optional: fixed guess; 0 = estimate in round 1

	// Per-machine, per-level caps (Lemma 4.6's α and β): a machine whose
	// local message would exceed a cap sends FAIL for that level instead.
	CellCap  int // default 4096
	PointCap int // default 8192

	// Sampling calibration, identical to the streaming instance.
	CountRate float64 // default 256
	PartRate  float64 // default 64

	SampleSize int // round-1 per-machine sample for the OPT estimate (default 200)

	// Workers bounds how many machines compute concurrently in Run
	// (0 = one goroutine per machine, fully concurrent). The assembled
	// coreset is bit-identical at every worker count and to RunSerial.
	Workers int

	// Transport carries the protocol's framed messages; nil selects the
	// in-memory ChanTransport. PipeTransport runs every frame through
	// loopback net.Conn pairs instead.
	Transport Transport
}

func (c Config) withDefaults() (Config, error) {
	var err error
	c.Params, err = c.Params.Resolve()
	if err != nil {
		return c, err
	}
	if c.Dim < 1 {
		return c, errors.New("dist: Dim must be >= 1")
	}
	if c.Delta < 1 {
		return c, errors.New("dist: Delta must be >= 1")
	}
	d := int64(1)
	for d < c.Delta {
		d <<= 1
	}
	c.Delta = d
	if c.CellCap == 0 {
		c.CellCap = 4096
	}
	if c.PointCap == 0 {
		c.PointCap = 8192
	}
	if c.CountRate == 0 {
		c.CountRate = 256
	}
	if c.PartRate == 0 {
		c.PartRate = 64
	}
	if c.SampleSize == 0 {
		c.SampleSize = 200
	}
	return c, nil
}

// Report is the outcome of a protocol run.
type Report struct {
	Coreset *coreset.Coreset
	Bits    int64            // measured communication: Σ 8·len(frame) over the wire
	ByPhase map[string]int64 // measured bits per protocol phase

	// FormulaBits is what the same messages would have been charged under
	// the closed-form pointBits/cellBits accounting that predated the wire
	// codec — kept so measured-vs-formula is reported, not silently
	// swapped.
	FormulaBits    int64
	FormulaByPhase map[string]int64

	Rounds int     // communication rounds (2)
	O      float64 // the guess used
}

// bit costs of the formula accounting.
func pointBits(dim int, delta int64) int64 {
	return int64(dim) * int64(math.Ceil(math.Log2(float64(delta)+1)))
}

func cellBits(dim int, delta int64) int64 {
	// cell index (one per coordinate, range < 2Δ) + a 32-bit count
	return int64(dim)*int64(math.Ceil(math.Log2(float64(2*delta)+1))) + 32
}

// mixSeed derives independent per-role seeds from the configured seed
// (splitmix64 finalizer): salt 0 is the broadcast shared randomness,
// salt 1 the coordinator's OPT-estimate rng, salt j+2 machine j's
// round-1 sample rng.
func mixSeed(seed, salt int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shared is the state both sides reconstruct from the round-1 broadcast:
// the shifted grid hierarchy, the point fingerprint and the per-level
// samplers, all drawn deterministically from the broadcast seed.
type shared struct {
	g              *grid.Grid
	fp             *hashing.Fingerprint
	lambda         int
	psi, psiP, phi []float64
	hSamp          []*hashing.Bernoulli
	hpSamp         []*hashing.Bernoulli
	hatSamp        []*hashing.Bernoulli
}

func newShared(cfg Config, o float64, seed int64) *shared {
	p := cfg.Params
	rng := rand.New(rand.NewSource(seed))
	g := grid.New(cfg.Delta, cfg.Dim, rng)
	L := g.L
	gamma := p.Gamma(g.Dim, L)
	lambda := p.Lambda(g.Dim, L)
	sh := &shared{
		g: g, fp: hashing.NewFingerprint(rng), lambda: lambda,
		psi: make([]float64, L+1), psiP: make([]float64, L+1), phi: make([]float64, L+1),
		hSamp: make([]*hashing.Bernoulli, L+1), hpSamp: make([]*hashing.Bernoulli, L+1),
		hatSamp: make([]*hashing.Bernoulli, L+1),
	}
	for i := 0; i <= L; i++ {
		T := partition.ThresholdT(g, i, o, p.R)
		sh.psi[i] = math.Min(1, cfg.CountRate/T)
		sh.psiP[i] = math.Min(1, cfg.PartRate/(gamma*T))
		sh.phi[i] = p.Phi(T, g.Dim, L)
		sh.hSamp[i] = hashing.NewBernoulli(rng, lambda, sh.psi[i])
		sh.hpSamp[i] = hashing.NewBernoulli(rng, lambda, sh.psiP[i])
		sh.hatSamp[i] = hashing.NewBernoulli(rng, lambda, sh.phi[i])
	}
	return sh
}

func shiftEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- machine side ----

// machineSample draws machine j's round-1 message: its exact local size
// and a uniform sample from its machine-local rng.
func machineSample(j int, m geo.PointSet, cfg Config) sampleMsg {
	rng := rand.New(rand.NewSource(mixSeed(cfg.Params.Seed, int64(j)+2)))
	k := cfg.SampleSize
	if k > len(m) {
		k = len(m)
	}
	perm := rng.Perm(len(m))
	pts := make([]geo.Point, k)
	for i := 0; i < k; i++ {
		pts[i] = m[perm[i]]
	}
	return sampleMsg{LocalN: int64(len(m)), Pts: pts}
}

// machineCtx is one machine's round-2 compute state: its points, their
// fingerprint keys (evaluated once and shared across all 3(L+1)
// substreams), and the reconstructed shared randomness.
type machineCtx struct {
	cfg  Config
	env  *shared
	pts  geo.PointSet
	keys []uint64
}

func newMachineCtx(cfg Config, env *shared, pts geo.PointSet) *machineCtx {
	mc := &machineCtx{cfg: cfg, env: env, pts: pts, keys: make([]uint64, len(pts))}
	for i, q := range pts {
		mc.keys[i] = env.fp.Key(q)
	}
	return mc
}

// cellsAt computes the machine's level-i non-empty-cell counts under the
// given sampler, FAILing when the distinct-cell cap is exceeded.
func (mc *machineCtx) cellsAt(level int, samp *hashing.Bernoulli) cellsMsg {
	g := mc.env.g
	pos := map[uint64]int{}
	var list []wireCell
	idx := make([]int64, 0, g.Dim)
	for i, q := range mc.pts {
		if !samp.Sample(mc.keys[i]) {
			continue
		}
		idx = g.CellIndexInto(idx[:0], q, level)
		key := g.KeyOf(level, idx)
		if at, ok := pos[key]; ok {
			list[at].Count++
			continue
		}
		if len(list) >= mc.cfg.CellCap {
			return cellsMsg{Level: level, Fail: true}
		}
		pos[key] = len(list)
		list = append(list, wireCell{Idx: append([]int64(nil), idx...), Count: 1})
	}
	return cellsMsg{Level: level, Cells: list}
}

// hatAt computes the machine's level-i ĥ point payload (distinct points
// with multiplicities), FAILing when total sampled occurrences exceed the
// point cap.
func (mc *machineCtx) hatAt(level int) hatMsg {
	samp := mc.env.hatSamp[level]
	pos := map[uint64]int{}
	var list []wirePoint
	occ := 0
	for i, q := range mc.pts {
		if !samp.Sample(mc.keys[i]) {
			continue
		}
		occ++
		if occ > mc.cfg.PointCap {
			return hatMsg{Level: level, Fail: true}
		}
		if at, ok := pos[mc.keys[i]]; ok {
			list[at].Mult++
			continue
		}
		pos[mc.keys[i]] = len(list)
		list = append(list, wirePoint{P: q, Mult: 1})
	}
	return hatMsg{Level: level, Pts: list}
}

// ---- coordinator side ----

// mcell and mpoint are merged round-2 state: exact integer counts, so the
// merge is order-independent and the pipelined driver's arrival-order
// merging is bit-identical to the serial machine-major merge.
type mcell struct {
	idx   []int64
	count int64
}

type mpoint struct {
	p    geo.Point
	mult int64
}

type levelAgg struct {
	reported int
	failed   bool
	cells    map[uint64]*mcell
	final    map[uint64]partition.CellTau // built once, on first consult
}

type hatAgg struct {
	reported      int
	failed        bool
	failedMachine int
	pts           map[uint64]*mpoint
}

// coordinator holds the coordinator's merge state, shared by the serial
// and pipelined drivers. All mutation goes through the mutex; count
// sources and assembly wait on cond until the levels they consult are
// complete (trivially so in RunSerial, streamingly in Run).
type coordinator struct {
	cfg Config
	s   int

	mu   sync.Mutex
	cond *sync.Cond
	rep  *Report
	err  error // first protocol error; aborts all waits

	samples []sampleMsg
	total   int64
	o       float64
	env     *shared
	root    map[uint64]partition.CellTau

	failFrames int64 // round-2 FAIL frames seen (span attribute)

	hAgg   []*levelAgg // levels 0..L-1
	hpAgg  []*levelAgg // levels 0..L
	hatAgg []*hatAgg   // levels 0..L
}

func newCoordinator(cfg Config, s int) *coordinator {
	co := &coordinator{
		cfg: cfg, s: s,
		rep:     &Report{ByPhase: map[string]int64{}, FormulaByPhase: map[string]int64{}, Rounds: 2},
		samples: make([]sampleMsg, s),
	}
	co.cond = sync.NewCond(&co.mu)
	return co
}

func (co *coordinator) chargeLocked(phase string, frameBytes int) {
	bits := int64(frameBytes) * 8
	co.rep.ByPhase[phase] += bits
	co.rep.Bits += bits
	mFrames.Inc()
	mWireBits.Add(bits)
	vPhaseBits.Add(bits, phase)
}

func (co *coordinator) formulaLocked(phase string, bits int64) {
	co.rep.FormulaByPhase[phase] += bits
	co.rep.FormulaBits += bits
	mFormulaBits.Add(bits)
}

// abort records the first protocol error and wakes every waiter.
func (co *coordinator) abort(err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err == nil && err != nil {
		co.err = err
	}
	co.cond.Broadcast()
}

func (co *coordinator) firstErr() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

func (co *coordinator) aborted() bool { return co.firstErr() != nil }

// addSample decodes and meters machine j's round-1 frame.
func (co *coordinator) addSample(j int, frame []byte) {
	m, err := decodeSample(frame, co.cfg.Dim)
	if err != nil {
		co.abort(fmt.Errorf("dist: machine %d sample: %w", j, err))
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.samples[j] = m
	co.chargeLocked("round1-sample", len(frame))
	co.formulaLocked("round1-sample", int64(len(m.Pts))*pointBits(co.cfg.Dim, co.cfg.Delta)+64)
}

// chargeBroadcast meters one machine's share of the round-1 broadcast.
func (co *coordinator) chargeBroadcast(frameBytes int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.chargeLocked("round1-broadcast", frameBytes)
}

// finishRound1 totals the samples, fixes the guess o, builds the shared
// randomness and returns the encoded broadcast frame.
func (co *coordinator) finishRound1() ([]byte, error) {
	p := co.cfg.Params
	var sample geo.PointSet
	co.total = 0
	for _, m := range co.samples {
		co.total += m.LocalN
		sample = append(sample, m.Pts...)
	}
	if co.total == 0 {
		return nil, errors.New("dist: empty input")
	}
	o := co.cfg.O
	if o <= 0 {
		rng := rand.New(rand.NewSource(mixSeed(p.Seed, 1)))
		est := solve.EstimateOPT(rng, geo.UnitWeights(sample), p.K, p.R, co.cfg.Delta, 2) *
			float64(co.total) / float64(len(sample))
		o = est / 4
		if o < 1 {
			o = 1
		}
		o = math.Exp2(math.Floor(math.Log2(o)))
	}
	co.o = o
	co.rep.O = o

	seed := mixSeed(p.Seed, 0)
	co.env = newShared(co.cfg, o, seed)
	g := co.env.g
	L := g.L
	rootIdx := make([]int64, g.Dim)
	co.root = map[uint64]partition.CellTau{
		g.KeyOf(-1, rootIdx): {Index: rootIdx, Tau: float64(co.total)},
	}
	co.hAgg = make([]*levelAgg, L+1)
	co.hpAgg = make([]*levelAgg, L+1)
	co.hatAgg = make([]*hatAgg, L+1)
	for i := 0; i <= L; i++ {
		co.hAgg[i] = &levelAgg{cells: map[uint64]*mcell{}}
		co.hpAgg[i] = &levelAgg{cells: map[uint64]*mcell{}}
		co.hatAgg[i] = &hatAgg{pts: map[uint64]*mpoint{}, failedMachine: -1}
	}

	// Formula accounting for the broadcast (shift + 3(L+1) hash seeds of λ
	// field coefficients each + o, per machine) and the exact local sizes.
	seedBits := int64(co.cfg.Dim)*int64(L) + int64(3*(L+1)*co.env.lambda)*61 + 64
	co.mu.Lock()
	co.formulaLocked("round1-broadcast", seedBits*int64(co.s))
	co.formulaLocked("round2-count", 64*int64(co.s))
	co.mu.Unlock()

	return encodeBroadcast(broadcastMsg{O: o, Seed: seed, Shift: g.Shift}), nil
}

// handleFrame decodes, meters and merges one round-2 frame from machine
// j, stripping any trace-context header first — metering always charges
// the inner frame, so traced runs report the same Bits as untraced ones.
func (co *coordinator) handleFrame(j int, frame []byte) error {
	_, frame, err := detachTrace(frame)
	if err != nil {
		return err
	}
	g := co.env.g
	switch frameType(frame) {
	case frameCellsH:
		m, err := decodeCells(frame, co.cfg.Dim, g.L-1)
		if err != nil {
			return err
		}
		return co.addCells(co.hAgg, "round2-h", m, len(frame))
	case frameCellsHP:
		m, err := decodeCells(frame, co.cfg.Dim, g.L)
		if err != nil {
			return err
		}
		return co.addCells(co.hpAgg, "round2-hp", m, len(frame))
	case frameHat:
		m, err := decodeHat(frame, co.cfg.Dim, g.L)
		if err != nil {
			return err
		}
		return co.addHat(j, m, len(frame))
	default:
		return fmt.Errorf("dist: unexpected frame type %d in round 2", frameType(frame))
	}
}

func (co *coordinator) addCells(aggs []*levelAgg, phase string, m cellsMsg, frameBytes int) error {
	g := co.env.g
	co.mu.Lock()
	defer co.mu.Unlock()
	agg := aggs[m.Level]
	if agg.reported >= co.s {
		return fmt.Errorf("dist: duplicate %s frame for level %d", phase, m.Level)
	}
	co.chargeLocked(phase, frameBytes)
	if m.Fail {
		co.formulaLocked(phase, 1)
		agg.failed = true
		co.failFrames++
		mFailCells.Inc()
	} else {
		co.formulaLocked(phase, int64(len(m.Cells))*cellBits(co.cfg.Dim, co.cfg.Delta)+1)
		for _, c := range m.Cells {
			key := g.KeyOf(m.Level, c.Idx)
			if cur, ok := agg.cells[key]; ok {
				cur.count += c.Count
			} else {
				agg.cells[key] = &mcell{idx: c.Idx, count: c.Count}
			}
		}
	}
	agg.reported++
	if agg.reported == co.s || agg.failed {
		co.cond.Broadcast()
	}
	return nil
}

func (co *coordinator) addHat(j int, m hatMsg, frameBytes int) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	agg := co.hatAgg[m.Level]
	if agg.reported >= co.s {
		return fmt.Errorf("dist: duplicate hat frame for level %d", m.Level)
	}
	co.chargeLocked("round2-hat", frameBytes)
	if m.Fail {
		co.formulaLocked("round2-hat", 1)
		co.failFrames++
		mFailPoints.Inc()
		if !agg.failed {
			agg.failed = true
			agg.failedMachine = j
		}
	} else {
		var occ int64
		for _, wp := range m.Pts {
			occ += wp.Mult
			key := co.env.fp.Key(wp.P)
			if cur, ok := agg.pts[key]; ok {
				cur.mult += wp.Mult
			} else {
				agg.pts[key] = &mpoint{p: wp.P, mult: wp.Mult}
			}
		}
		co.formulaLocked("round2-hat", occ*pointBits(co.cfg.Dim, co.cfg.Delta)+1)
	}
	agg.reported++
	if agg.reported == co.s || agg.failed {
		co.cond.Broadcast()
	}
	return nil
}

// waitCells blocks until every machine's frame for (aggs, level) has been
// merged (or a FAIL/abort), then returns the rate-corrected CellTau map.
func (co *coordinator) waitCells(aggs []*levelAgg, level int, rate float64) (map[uint64]partition.CellTau, bool) {
	if level == -1 {
		return co.root, true
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	agg := aggs[level]
	for agg.reported < co.s && !agg.failed && co.err == nil {
		co.cond.Wait()
	}
	if agg.failed || co.err != nil {
		return nil, false
	}
	if agg.final == nil {
		agg.final = make(map[uint64]partition.CellTau, len(agg.cells))
		for key, c := range agg.cells {
			agg.final[key] = partition.CellTau{Index: c.idx, Tau: float64(c.count) / rate}
		}
	}
	return agg.final, true
}

func (co *coordinator) counts(level int) (map[uint64]partition.CellTau, bool) {
	var rate float64
	if level >= 0 {
		rate = co.env.psi[level]
	}
	return co.waitCells(co.hAgg, level, rate)
}

func (co *coordinator) partCounts(level int) (map[uint64]partition.CellTau, bool) {
	var rate float64
	if level >= 0 {
		rate = co.env.psiP[level]
	}
	return co.waitCells(co.hpAgg, level, rate)
}

// waitHat blocks until level's ĥ payloads are fully merged, returning the
// merged multiplicity map (nil + machine index on FAIL, nil + -1 on
// abort).
func (co *coordinator) waitHat(level int) (map[uint64]*mpoint, int, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	agg := co.hatAgg[level]
	for agg.reported < co.s && !agg.failed && co.err == nil {
		co.cond.Wait()
	}
	if agg.failed {
		return nil, agg.failedMachine, false
	}
	if co.err != nil {
		return nil, -1, false
	}
	return agg.pts, -1, true
}

// buildCoreset runs Algorithms 1–2 over the (possibly still streaming)
// merged counts and assembles the coreset in deterministic point order.
func (co *coordinator) buildCoreset() (*coreset.Coreset, error) {
	p := co.cfg.Params
	part, err := partition.BuildLazy(co.env.g, p.R, co.o, co.counts, co.partCounts)
	if err != nil {
		if ce := co.firstErr(); ce != nil {
			return nil, ce
		}
		return nil, fmt.Errorf("dist: %w (a machine exceeded its level cap)", err)
	}
	pl := coreset.BuildPlan(part, p)
	if pl.Failed() {
		return nil, fmt.Errorf("dist: plan FAILed: %s", pl.FailWhy)
	}

	L := co.env.g.L
	needLevel := make([]bool, L+1)
	for id := range pl.Included {
		needLevel[id.Level] = true
	}
	cs := &coreset.Coreset{O: co.o, Grid: co.env.g, Part: part, Plan: pl, Params: p}
	for i := 0; i <= L; i++ {
		if !needLevel[i] {
			continue
		}
		agg, failedMachine, ok := co.waitHat(i)
		if !ok {
			if ce := co.firstErr(); ce != nil {
				return nil, ce
			}
			return nil, fmt.Errorf("dist: machine %d exceeded point cap at level %d", failedMachine, i)
		}
		// Deterministic assembly: merged points visited in alphabetical
		// order, so the coreset's point order (and every downstream float
		// sum over it) is identical at any worker count.
		pts := make([]*mpoint, 0, len(agg))
		for _, e := range agg {
			pts = append(pts, e)
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].p.Less(pts[b].p) })
		for _, e := range pts {
			id, ok := part.PartOf(e.p)
			if !ok || id.Level != i || !pl.Included[id] {
				continue
			}
			cs.Points = append(cs.Points, geo.Weighted{P: e.p, W: float64(e.mult) / co.env.phi[i]})
			cs.Levels = append(cs.Levels, i)
		}
	}
	return cs, nil
}
