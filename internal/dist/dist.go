// Package dist implements the distributed coreset protocol of Theorem 4.7
// in the coordinator model of [KVW14, WZ16, ...]: s machines each hold a
// subset of the input; communication flows only between machines and the
// coordinator; the goal is a strong capacitated-clustering coreset at the
// coordinator with total communication s·poly(ε⁻¹η⁻¹kd log Δ) bits.
//
// The protocol simulates Algorithm 4 (Lemma 4.6 replaces the Storing
// sketches with exact local computation):
//
//	Round 1 (up):   each machine sends a small uniform sample of its local
//	                points — the coordinator's stand-in for the distributed
//	                2-approximation of OPT the paper cites ([FL11, BFL+17,
//	                HSYZ18]); see DESIGN.md §1.
//	Round 1 (down): the coordinator broadcasts the guess o, the random
//	                grid shift, and the hash seeds, so all machines sample
//	                the identical substreams.
//	Round 2 (up):   per level, each machine sends its local non-empty-cell
//	                counts for the h and h′ substreams and its locally
//	                ĥ-sampled points — or a 1-bit FAIL when a local cap is
//	                exceeded (Lemma 4.6's contract). The coordinator merges
//	                counts exactly, runs Algorithms 1–2 (consulting only
//	                levels that can matter), and assembles the coreset.
//
// Every message is metered in bits; Report carries the totals.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/grid"
	"streambalance/internal/hashing"
	"streambalance/internal/partition"
	"streambalance/internal/solve"
)

// Config configures the distributed protocol.
type Config struct {
	Delta  int64
	Dim    int
	Params coreset.Params

	O float64 // optional: fixed guess; 0 = estimate in round 1

	// Per-machine, per-level caps (Lemma 4.6's α and β): a machine whose
	// local message would exceed a cap sends FAIL for that level instead.
	CellCap  int // default 4096
	PointCap int // default 8192

	// Sampling calibration, identical to the streaming instance.
	CountRate float64 // default 256
	PartRate  float64 // default 64

	SampleSize int // round-1 per-machine sample for the OPT estimate (default 200)
}

func (c Config) withDefaults() (Config, error) {
	var err error
	c.Params, err = c.Params.Resolve()
	if err != nil {
		return c, err
	}
	if c.Dim < 1 {
		return c, errors.New("dist: Dim must be >= 1")
	}
	if c.Delta < 1 {
		return c, errors.New("dist: Delta must be >= 1")
	}
	d := int64(1)
	for d < c.Delta {
		d <<= 1
	}
	c.Delta = d
	if c.CellCap == 0 {
		c.CellCap = 4096
	}
	if c.PointCap == 0 {
		c.PointCap = 8192
	}
	if c.CountRate == 0 {
		c.CountRate = 256
	}
	if c.PartRate == 0 {
		c.PartRate = 64
	}
	if c.SampleSize == 0 {
		c.SampleSize = 200
	}
	return c, nil
}

// Report is the outcome of a protocol run.
type Report struct {
	Coreset *coreset.Coreset
	Bits    int64            // total communication in bits
	ByPhase map[string]int64 // bits per protocol phase
	Rounds  int              // communication rounds (2)
	O       float64          // the guess used
}

// bit costs
func pointBits(dim int, delta int64) int64 {
	return int64(dim) * int64(math.Ceil(math.Log2(float64(delta)+1)))
}

func cellBits(dim int, delta int64) int64 {
	// cell index (one per coordinate, range < 2Δ) + a 32-bit count
	return int64(dim)*int64(math.Ceil(math.Log2(float64(2*delta)+1))) + 32
}

// levelMsg is one machine's per-level, per-substream message.
type levelMsg struct {
	fail  bool
	cells map[uint64]partition.CellTau // merged key → (index, local count)
}

// pointsMsg is one machine's per-level ĥ message.
type pointsMsg struct {
	fail bool
	pts  []geo.Point // locally sampled points (with multiplicity as repeats)
}

// Run executes the protocol over the machines' local point sets.
func Run(machines []geo.PointSet, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(machines) == 0 {
		return nil, errors.New("dist: no machines")
	}
	p := cfg.Params
	rep := &Report{ByPhase: map[string]int64{}, Rounds: 2}
	charge := func(phase string, bits int64) {
		rep.ByPhase[phase] += bits
		rep.Bits += bits
	}

	// ---- Round 1 up: per-machine samples for the OPT estimate. ----
	rng := rand.New(rand.NewSource(p.Seed))
	var sample geo.PointSet
	var total int64
	for _, m := range machines {
		total += int64(len(m))
		k := cfg.SampleSize
		if k > len(m) {
			k = len(m)
		}
		perm := rng.Perm(len(m))
		for i := 0; i < k; i++ {
			sample = append(sample, m[perm[i]])
		}
		charge("round1-sample", int64(k)*pointBits(cfg.Dim, cfg.Delta)+64)
	}
	if total == 0 {
		return nil, errors.New("dist: empty input")
	}

	o := cfg.O
	if o <= 0 {
		est := solve.EstimateOPT(rng, geo.UnitWeights(sample), p.K, p.R, cfg.Delta, 2) *
			float64(total) / float64(len(sample))
		o = est / 4
		if o < 1 {
			o = 1
		}
		o = math.Exp2(math.Floor(math.Log2(o)))
	}
	rep.O = o

	// ---- Round 1 down: broadcast shift, seeds, o. ----
	g := grid.New(cfg.Delta, cfg.Dim, rng)
	L := g.L
	gamma := p.Gamma(g.Dim, L)
	lambda := p.Lambda(g.Dim, L)
	fp := hashing.NewFingerprint(rng)
	psi := make([]float64, L+1)
	psiP := make([]float64, L+1)
	phi := make([]float64, L+1)
	hSamp := make([]*hashing.Bernoulli, L+1)
	hpSamp := make([]*hashing.Bernoulli, L+1)
	hatSamp := make([]*hashing.Bernoulli, L+1)
	for i := 0; i <= L; i++ {
		T := partition.ThresholdT(g, i, o, p.R)
		psi[i] = math.Min(1, cfg.CountRate/T)
		psiP[i] = math.Min(1, cfg.PartRate/(gamma*T))
		phi[i] = p.Phi(T, g.Dim, L)
		hSamp[i] = hashing.NewBernoulli(rng, lambda, psi[i])
		hpSamp[i] = hashing.NewBernoulli(rng, lambda, psiP[i])
		hatSamp[i] = hashing.NewBernoulli(rng, lambda, phi[i])
	}
	// Shift (d·logΔ bits) + 3(L+1) hash seeds (λ coefficients each) + o,
	// broadcast to every machine.
	seedBits := int64(cfg.Dim)*int64(g.L) + int64(3*(L+1)*lambda)*61 + 64
	charge("round1-broadcast", seedBits*int64(len(machines)))

	// ---- Round 2 up: per-machine local summaries. ----
	collect := func(m geo.PointSet, samp []*hashing.Bernoulli, level int, rate float64) levelMsg {
		cells := map[uint64]partition.CellTau{}
		for _, q := range m {
			if rate < 1 && !samp[level].Sample(fp.Key(q)) {
				continue
			}
			key := g.CellKey(q, level)
			ct, ok := cells[key]
			if !ok {
				ct = partition.CellTau{Index: g.CellIndex(q, level)}
			}
			ct.Tau++
			cells[key] = ct
			if len(cells) > cfg.CellCap {
				return levelMsg{fail: true}
			}
		}
		return levelMsg{cells: cells}
	}

	// The machines compute their local summaries independently — run them
	// on separate goroutines (this is exactly the parallelism the
	// coordinator model grants for free); the coordinator then meters the
	// messages serially.
	hMsgs := make([][]levelMsg, len(machines))    // [machine][level]
	hpMsgs := make([][]levelMsg, len(machines))   // [machine][level]
	hatMsgs := make([][]pointsMsg, len(machines)) // [machine][level]
	var wg sync.WaitGroup
	for mi := range machines {
		wg.Add(1)
		go func(mi int, m geo.PointSet) {
			defer wg.Done()
			hMsgs[mi] = make([]levelMsg, L+1)
			hpMsgs[mi] = make([]levelMsg, L+1)
			hatMsgs[mi] = make([]pointsMsg, L+1)
			for i := 0; i <= L; i++ {
				if i <= L-1 {
					hMsgs[mi][i] = collect(m, hSamp, i, psi[i])
				}
				hpMsgs[mi][i] = collect(m, hpSamp, i, psiP[i])
				var pm pointsMsg
				for _, q := range m {
					if phi[i] < 1 && !hatSamp[i].Sample(fp.Key(q)) {
						continue
					}
					pm.pts = append(pm.pts, q)
					if len(pm.pts) > cfg.PointCap {
						pm = pointsMsg{fail: true}
						break
					}
				}
				hatMsgs[mi][i] = pm
			}
		}(mi, machines[mi])
	}
	wg.Wait()
	for mi := range machines {
		for i := 0; i <= L; i++ {
			if i <= L-1 {
				if hMsgs[mi][i].fail {
					charge("round2-h", 1)
				} else {
					charge("round2-h", int64(len(hMsgs[mi][i].cells))*cellBits(cfg.Dim, cfg.Delta)+1)
				}
			}
			if hpMsgs[mi][i].fail {
				charge("round2-hp", 1)
			} else {
				charge("round2-hp", int64(len(hpMsgs[mi][i].cells))*cellBits(cfg.Dim, cfg.Delta)+1)
			}
			if hatMsgs[mi][i].fail {
				charge("round2-hat", 1)
			} else {
				charge("round2-hat", int64(len(hatMsgs[mi][i].pts))*pointBits(cfg.Dim, cfg.Delta)+1)
			}
		}
		charge("round2-count", 64) // local |Q^{(j)}| for the exact total
	}

	// ---- Coordinator: merge and run Algorithms 1–2. ----
	merge := func(msgs [][]levelMsg, level int, rate float64) (map[uint64]partition.CellTau, bool) {
		out := map[uint64]partition.CellTau{}
		for mi := range msgs {
			lm := msgs[mi][level]
			if lm.fail {
				return nil, false
			}
			for key, ct := range lm.cells {
				cur, ok := out[key]
				if !ok {
					cur = partition.CellTau{Index: ct.Index}
				}
				cur.Tau += ct.Tau
				out[key] = cur
			}
		}
		for key, ct := range out {
			ct.Tau /= rate
			out[key] = ct
		}
		return out, true
	}

	rootCell := partition.CellTau{Index: make([]int64, g.Dim), Tau: float64(total)}
	root := map[uint64]partition.CellTau{g.KeyOf(-1, rootCell.Index): rootCell}
	counts := func(level int) (map[uint64]partition.CellTau, bool) {
		if level == -1 {
			return root, true
		}
		return merge(hMsgs, level, psi[level])
	}
	partCounts := func(level int) (map[uint64]partition.CellTau, bool) {
		if level == -1 {
			return root, true
		}
		return merge(hpMsgs, level, psiP[level])
	}
	part, err := partition.BuildLazy(g, p.R, o, counts, partCounts)
	if err != nil {
		return nil, fmt.Errorf("dist: %w (a machine exceeded its level cap)", err)
	}
	pl := coreset.BuildPlan(part, p)
	if pl.Failed() {
		return nil, fmt.Errorf("dist: plan FAILed: %s", pl.FailWhy)
	}

	needLevel := make([]bool, L+1)
	for id := range pl.Included {
		needLevel[id.Level] = true
	}
	cs := &coreset.Coreset{O: o, Grid: g, Part: part, Plan: pl, Params: p}
	for i := 0; i <= L; i++ {
		if !needLevel[i] {
			continue
		}
		// Merge ĥ points of level i (with multiplicity).
		agg := map[string]struct {
			p geo.Point
			m int64
		}{}
		for mi := range hatMsgs {
			pm := hatMsgs[mi][i]
			if pm.fail {
				return nil, fmt.Errorf("dist: machine %d exceeded point cap at level %d", mi, i)
			}
			for _, q := range pm.pts {
				e := agg[q.String()]
				e.p, e.m = q, e.m+1
				agg[q.String()] = e
			}
		}
		for _, e := range agg {
			id, ok := part.PartOf(e.p)
			if !ok || id.Level != i || !pl.Included[id] {
				continue
			}
			cs.Points = append(cs.Points, geo.Weighted{P: e.p, W: float64(e.m) / phi[i]})
			cs.Levels = append(cs.Levels, i)
		}
	}
	rep.Coreset = cs
	return rep, nil
}
