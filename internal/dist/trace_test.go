package dist

import (
	"bytes"
	"math/rand"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/obs"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	inner := []byte{frameHat, 7, 0, 3}
	var tc obs.TraceContext
	tc.TraceID[0], tc.TraceID[15] = 0xab, 0xcd
	tc.SpanID[7] = 0xef

	framed := attachTrace(inner, tc)
	if len(framed) != traceHeaderLen+len(inner) {
		t.Fatalf("framed length %d, want %d", len(framed), traceHeaderLen+len(inner))
	}
	got, payload, err := detachTrace(framed)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("context round-trip: %v vs %v", got, tc)
	}
	if !bytes.Equal(payload, inner) {
		t.Fatalf("payload round-trip: %v vs %v", payload, inner)
	}

	// Invalid context attaches nothing — the disabled-tracing wire image.
	if out := attachTrace(inner, obs.TraceContext{}); !bytes.Equal(out, inner) {
		t.Fatal("zero context changed the frame")
	}
	// Headerless (old-format) frames pass through untouched.
	ptc, payload, err := detachTrace(inner)
	if err != nil || ptc.Valid() || !bytes.Equal(payload, inner) {
		t.Fatalf("plain frame not passed through: tc=%v payload=%v err=%v", ptc, payload, err)
	}
	// Truncated header and unknown version are errors, not silent skips.
	if _, _, err := detachTrace(framed[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := append([]byte(nil), framed...)
	bad[1] = 9
	if _, _, err := detachTrace(bad); err == nil {
		t.Fatal("unknown header version accepted")
	}
}

// withTracing runs f with metrics and span recording forced on, on a
// clean process-tracer ring, restoring both afterwards.
func withTracing(t *testing.T, f func()) {
	t.Helper()
	prevM, prevT := obs.Enabled(), obs.Trace.Enabled()
	obs.Enable()
	obs.Trace.Enable()
	obs.Trace.Reset()
	defer func() {
		obs.SetEnabled(prevM)
		if !prevT {
			obs.Trace.Disable()
		}
		obs.Trace.Reset()
	}()
	f()
}

// TestTracedRunBitIdentical is the write-only contract of trace
// propagation: with tracing on, every broadcast and round-2 frame
// carries a 26-byte context header, yet the Report — measured bits,
// phase split, coreset — must be bit-identical to the untraced run,
// serial and pipelined alike, because metering charges the inner frame.
func TestTracedRunBitIdentical(t *testing.T) {
	ps, _ := testMixture(31, 3000)
	rng := rand.New(rand.NewSource(32))
	machines := splitAcross(ps, 5, rng)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 33}}

	ref, err := RunSerial(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withTracing(t, func() {
		serial, err := RunSerial(machines, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportEqual(t, "traced-serial", ref, serial)
		piped, err := Run(machines, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportEqual(t, "traced-pipelined", ref, piped)

		pipeCfg := cfg
		pipeCfg.Transport = PipeTransport{}
		overPipe, err := Run(machines, pipeCfg)
		if err != nil {
			t.Fatal(err)
		}
		reportEqual(t, "traced-pipe-transport", ref, overPipe)
	})
}

// TestTraceAssembly pins the cross-process span tree a traced run
// records: one dist.run root, a dist.machine child per machine parented
// on the root (the context crossed the wire in the broadcast), and a
// dist.link child per machine parented on that machine's span (the
// context crossed back in the round-2 frames).
func TestTraceAssembly(t *testing.T) {
	ps, _ := testMixture(34, 1500)
	rng := rand.New(rand.NewSource(35))
	const s = 3
	machines := splitAcross(ps, s, rng)
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 36}}

	withTracing(t, func() {
		if _, err := Run(machines, cfg); err != nil {
			t.Fatal(err)
		}
		var root obs.Event
		bySpan := map[string]obs.Event{}
		var machinesSeen, linksSeen int
		for _, ev := range obs.Trace.Events() {
			switch ev.Name {
			case "dist.run":
				root = ev
			case "dist.machine":
				machinesSeen++
			case "dist.link":
				linksSeen++
			}
			if ev.Span != "" {
				bySpan[ev.Span] = ev
			}
		}
		if root.Span == "" || root.Trace == "" {
			t.Fatal("no traced dist.run root span recorded")
		}
		if machinesSeen != s || linksSeen != s {
			t.Fatalf("recorded %d machine and %d link spans, want %d each", machinesSeen, linksSeen, s)
		}
		for _, ev := range obs.Trace.Events() {
			switch ev.Name {
			case "dist.machine":
				if ev.Trace != root.Trace || ev.Parent != root.Span {
					t.Fatalf("machine span not parented on run root: %+v", ev)
				}
			case "dist.link":
				parent, ok := bySpan[ev.Parent]
				if ev.Trace != root.Trace || !ok || parent.Name != "dist.machine" {
					t.Fatalf("link span not parented on a machine span: %+v", ev)
				}
			}
		}
	})
}
