package dist

import (
	"math"
	"math/rand"
	"testing"

	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/geo"
	"streambalance/internal/solve"
	"streambalance/internal/workload"
)

const testDelta = 1 << 10

func splitAcross(ps geo.PointSet, s int, rng *rand.Rand) []geo.PointSet {
	machines := make([]geo.PointSet, s)
	for _, p := range ps {
		j := rng.Intn(s)
		machines[j] = append(machines[j], p)
	}
	return machines
}

func testMixture(seed int64, n int) (geo.PointSet, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	m := workload.Mixture{N: n, D: 2, Delta: testDelta, K: 3, Spread: 8, Skew: 2, NoiseFrac: 0.05}
	return m.Generate(rng)
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run([]geo.PointSet{{geo.Point{1, 1}}}, Config{Dim: 0, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("Dim=0 must error")
	}
	if _, err := Run(nil, Config{Dim: 2, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("no machines must error")
	}
	if _, err := Run([]geo.PointSet{{}}, Config{Dim: 2, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestDistributedCoresetQuality(t *testing.T) {
	ps, truec := testMixture(1, 4000)
	rng := rand.New(rand.NewSource(2))
	machines := splitAcross(ps, 4, rng)
	rep, err := Run(machines, Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Coreset
	if cs.Size() == 0 || cs.Size() >= len(ps) {
		t.Fatalf("coreset size %d of n=%d", cs.Size(), len(ps))
	}
	if w := cs.TotalWeight(); math.Abs(w-float64(len(ps))) > 0.15*float64(len(ps)) {
		t.Fatalf("total weight %v vs n=%d", w, len(ps))
	}
	ws := geo.UnitWeights(ps)
	rng2 := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		Z := truec
		if trial > 0 {
			Z = solve.SeedKMeansPP(rng2, ws, 3, 2)
		}
		full := assign.UnconstrainedCost(ws, Z, 2)
		core := assign.UnconstrainedCost(cs.Points, Z, 2)
		if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("trial %d: cost ratio %v", trial, ratio)
		}
	}
}

func TestCommunicationAccounting(t *testing.T) {
	ps, _ := testMixture(4, 3000)
	rng := rand.New(rand.NewSource(5))
	machines := splitAcross(ps, 3, rng)
	rep, err := Run(machines, Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bits <= 0 {
		t.Fatal("bits must be positive")
	}
	if rep.Rounds != 2 {
		t.Fatalf("rounds = %d", rep.Rounds)
	}
	var sum int64
	for _, b := range rep.ByPhase {
		sum += b
	}
	if sum != rep.Bits {
		t.Fatalf("phase bits %d != total %d", sum, rep.Bits)
	}
	for _, phase := range []string{"round1-sample", "round1-broadcast", "round2-h", "round2-hp", "round2-hat"} {
		if rep.ByPhase[phase] <= 0 {
			t.Fatalf("phase %s has no accounted bits", phase)
		}
	}
}

func TestCommunicationScalesWithMachinesNotN(t *testing.T) {
	// Theorem 4.7: communication is s·poly(kd log Δ), independent of n.
	// Growing n by 4× must grow the bits far less than 4× (the sampling
	// rates fall as 1/T_i(o) ∝ 1/n); growing s grows bits at most
	// linearly (the broadcast term).
	rng := rand.New(rand.NewSource(8))
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 9}}

	psSmall, _ := testMixture(7, 4000)
	psBig, _ := testMixture(7, 16000)
	repSmall, err := Run(splitAcross(psSmall, 4, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	repBig, err := Run(splitAcross(psBig, 4, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if growth := float64(repBig.Bits) / float64(repSmall.Bits); growth > 3.2 {
		t.Fatalf("communication grew %.2f× for a 4× larger input (%d → %d bits)",
			growth, repSmall.Bits, repBig.Bits)
	}

	rep2, err := Run(splitAcross(psSmall, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(splitAcross(psSmall, 8, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep8.Bits <= rep2.Bits {
		t.Fatalf("more machines should cost more broadcast bits: s=2 %d vs s=8 %d", rep2.Bits, rep8.Bits)
	}
	if rep8.Bits > rep2.Bits*8 {
		t.Fatalf("communication grew superlinearly in s: %d → %d", rep2.Bits, rep8.Bits)
	}
}

func TestSingleMachineMatchesQualityOfMany(t *testing.T) {
	ps, truec := testMixture(10, 2500)
	rng := rand.New(rand.NewSource(11))
	cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 12}}
	rep1, err := Run([]geo.PointSet{ps}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep6, err := Run(splitAcross(ps, 6, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, truec, 2)
	for name, rep := range map[string]*Report{"s=1": rep1, "s=6": rep6} {
		core := assign.UnconstrainedCost(rep.Coreset.Points, truec, 2)
		if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("%s: cost ratio %v", name, ratio)
		}
	}
}

func TestFixedOMatchesEstimatedO(t *testing.T) {
	ps, _ := testMixture(13, 2000)
	rng := rand.New(rand.NewSource(14))
	machines := splitAcross(ps, 3, rng)
	repAuto, err := Run(machines, Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 15}})
	if err != nil {
		t.Fatal(err)
	}
	repFixed, err := Run(machines, Config{Dim: 2, Delta: testDelta, O: repAuto.O, Params: coreset.Params{K: 3, Seed: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if repFixed.O != repAuto.O {
		t.Fatalf("fixed O not honored: %v vs %v", repFixed.O, repAuto.O)
	}
}

func TestTightCapsFailCleanly(t *testing.T) {
	ps, _ := testMixture(16, 3000)
	rng := rand.New(rand.NewSource(17))
	machines := splitAcross(ps, 2, rng)
	_, err := Run(machines, Config{
		Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 18},
		CellCap: 2, PointCap: 2,
	})
	if err == nil {
		t.Fatal("starved caps must FAIL, not fabricate a coreset")
	}
}

func TestSkewedMachineSplit(t *testing.T) {
	// One machine holds 90% of the data; quality must not degrade.
	ps, truec := testMixture(19, 3000)
	machines := []geo.PointSet{ps[:2700], ps[2700:]}
	rep, err := Run(machines, Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 20}})
	if err != nil {
		t.Fatal(err)
	}
	ws := geo.UnitWeights(ps)
	full := assign.UnconstrainedCost(ws, truec, 2)
	core := assign.UnconstrainedCost(rep.Coreset.Points, truec, 2)
	if ratio := core / full; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("skewed split: cost ratio %v", ratio)
	}
}
