package dist

// Wire codec for the coordinator protocol. Every message crossing a Link
// is one framed byte string; Report.Bits is the measured length of these
// frames, replacing the closed-form pointBits/cellBits accounting (which
// Report.FormulaBits still carries for comparison).
//
// Frame layout: a one-byte type tag followed by a type-specific payload.
// All integers are LEB128 varints; signed values are zigzag-folded
// (internal/streamfmt). Cell indices and points are sorted
// lexicographically and delta-encoded coordinate-wise against the
// previous vector, so dense level summaries cost ~1 byte per coordinate
// instead of the log₂(2Δ)-bit fixed width of the formula accounting.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"streambalance/internal/geo"
	"streambalance/internal/obs"
	"streambalance/internal/streamfmt"
)

// Frame type tags.
const (
	frameSample    byte = 1 // machine → coordinator, round 1 up
	frameBroadcast byte = 2 // coordinator → machine, round 1 down
	frameCellsH    byte = 3 // machine → coordinator, round 2: h cell counts
	frameCellsHP   byte = 4 // machine → coordinator, round 2: h′ cell counts
	frameHat       byte = 5 // machine → coordinator, round 2: ĥ point payload

	// frameTraceTag prefixes an optional trace-context header in front of
	// any frame: [0x80][version][16-byte trace id][8-byte span id][frame].
	// The tag sits outside the 1–5 payload range, so a receiver that
	// detaches before dispatching decodes old (headerless) frames
	// unchanged, and the header is version-gated for future growth.
	// The header is observability-only: Report.Bits charges the inner
	// frame, never the header, so traced and untraced runs report
	// bit-identical communication.
	frameTraceTag byte = 0x80
	traceHeaderV1 byte = 1
)

// traceHeaderLen is the full prefix length: tag + version + ids.
const traceHeaderLen = 2 + 16 + 8

var errTruncated = errors.New("dist: truncated or malformed frame")

// attachTrace prefixes frame with tc's trace-context header. An invalid
// (zero) context — tracing disabled, or an untraced span — returns the
// frame unchanged, which is what keeps disabled-telemetry runs byte-
// identical on the wire.
func attachTrace(frame []byte, tc obs.TraceContext) []byte {
	if !tc.Valid() {
		return frame
	}
	out := make([]byte, 0, traceHeaderLen+len(frame))
	out = append(out, frameTraceTag, traceHeaderV1)
	out = append(out, tc.TraceID[:]...)
	out = append(out, tc.SpanID[:]...)
	return append(out, frame...)
}

// detachTrace splits an optional trace-context header off a frame. A
// headerless frame passes through untouched with a zero context; an
// unknown header version is an error (the header is version-gated, not
// silently skipped, since its length may change).
func detachTrace(frame []byte) (obs.TraceContext, []byte, error) {
	if len(frame) == 0 || frame[0] != frameTraceTag {
		return obs.TraceContext{}, frame, nil
	}
	if len(frame) < traceHeaderLen {
		return obs.TraceContext{}, nil, errTruncated
	}
	if frame[1] != traceHeaderV1 {
		return obs.TraceContext{}, nil, fmt.Errorf("dist: unknown trace header version %d", frame[1])
	}
	var tc obs.TraceContext
	copy(tc.TraceID[:], frame[2:18])
	copy(tc.SpanID[:], frame[18:26])
	return tc, frame[traceHeaderLen:], nil
}

// wireCell is one non-empty cell in a round-2 count message: its level-i
// index vector and the machine's local (integer) point count.
type wireCell struct {
	Idx   []int64
	Count int64
}

// wirePoint is one distinct sampled point with its local multiplicity.
type wirePoint struct {
	P    geo.Point
	Mult int64
}

// sampleMsg is round 1 up: the machine's exact local size and a small
// uniform sample for the coordinator's OPT estimate.
type sampleMsg struct {
	LocalN int64
	Pts    []geo.Point
}

// broadcastMsg is round 1 down: the accepted guess o, the shared-
// randomness seed from which every machine reconstructs the identical
// grid shift, fingerprint and sampling hashes, and the shift itself (the
// machine cross-checks its reconstruction against it).
type broadcastMsg struct {
	O     float64
	Seed  int64
	Shift []int64
}

// cellsMsg is one machine's per-level h or h′ summary; Fail is Lemma
// 4.6's 1-bit FAIL (the local cell cap was exceeded).
type cellsMsg struct {
	Level int
	Fail  bool
	Cells []wireCell // sorted by Idx, unique
}

// hatMsg is one machine's per-level ĥ point payload.
type hatMsg struct {
	Level int
	Fail  bool
	Pts   []wirePoint // sorted by P, unique, Mult >= 1
}

// frameType returns the type tag of a frame (0 if empty).
func frameType(frame []byte) byte {
	if len(frame) == 0 {
		return 0
	}
	return frame[0]
}

// reader is a cursor over a frame payload that latches the first error.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) uvarint() uint64 {
	v, n := streamfmt.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *reader) deltaVec(prev []int64) {
	n, ok := streamfmt.DeltaVec(r.b[r.off:], prev)
	if !ok {
		r.bad = true
		return
	}
	r.off += n
}

func (r *reader) fixed64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.b[r.off+i]) << (8 * i)
	}
	r.off += 8
	return v
}

func (r *reader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) done() error {
	if r.bad {
		return errTruncated
	}
	if r.off != len(r.b) {
		return fmt.Errorf("dist: %d trailing bytes in frame", len(r.b)-r.off)
	}
	return nil
}

func appendFixed64(dst []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// sortPoints orders a point multiset lexicographically in place — the
// canonical frame order the delta coder needs.
func sortPoints(pts []geo.Point) {
	sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
}

func lessVec(a, b []int64) bool {
	for j := range a {
		if a[j] != b[j] {
			return a[j] < b[j]
		}
	}
	return false
}

// encodeSample frames a round-1 sample message, sorting Pts in place.
func encodeSample(m sampleMsg) []byte {
	sortPoints(m.Pts)
	dim := 0
	if len(m.Pts) > 0 {
		dim = len(m.Pts[0])
	}
	dst := append(make([]byte, 0, 8+len(m.Pts)*(dim+1)), frameSample)
	dst = streamfmt.AppendUvarint(dst, uint64(m.LocalN))
	dst = streamfmt.AppendUvarint(dst, uint64(len(m.Pts)))
	prev := make([]int64, dim)
	for _, p := range m.Pts {
		dst = streamfmt.AppendDeltaVec(dst, prev, p)
	}
	return dst
}

func decodeSample(frame []byte, dim int) (sampleMsg, error) {
	if frameType(frame) != frameSample {
		return sampleMsg{}, fmt.Errorf("dist: expected sample frame, got type %d", frameType(frame))
	}
	r := &reader{b: frame, off: 1}
	m := sampleMsg{LocalN: int64(r.uvarint())}
	n := r.uvarint()
	if r.bad || m.LocalN < 0 || n > uint64(len(frame))/uint64(dim) {
		return sampleMsg{}, errTruncated
	}
	prev := make([]int64, dim)
	if n > 0 {
		m.Pts = make([]geo.Point, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		r.deltaVec(prev)
		if r.bad {
			return sampleMsg{}, errTruncated
		}
		m.Pts = append(m.Pts, geo.Point(append([]int64(nil), prev...)))
	}
	if err := r.done(); err != nil {
		return sampleMsg{}, err
	}
	return m, nil
}

func encodeBroadcast(m broadcastMsg) []byte {
	dst := append(make([]byte, 0, 24+len(m.Shift)*2), frameBroadcast)
	dst = appendFixed64(dst, math.Float64bits(m.O))
	dst = appendFixed64(dst, uint64(m.Seed))
	dst = streamfmt.AppendUvarint(dst, uint64(len(m.Shift)))
	for _, v := range m.Shift {
		dst = streamfmt.AppendZigzag(dst, v)
	}
	return dst
}

func decodeBroadcast(frame []byte, dim int) (broadcastMsg, error) {
	if frameType(frame) != frameBroadcast {
		return broadcastMsg{}, fmt.Errorf("dist: expected broadcast frame, got type %d", frameType(frame))
	}
	r := &reader{b: frame, off: 1}
	m := broadcastMsg{O: math.Float64frombits(r.fixed64()), Seed: int64(r.fixed64())}
	d := r.uvarint()
	if r.bad || d != uint64(dim) {
		return broadcastMsg{}, errTruncated
	}
	m.Shift = make([]int64, dim)
	r.deltaVec(m.Shift) // deltas against zero = absolute zigzag values
	if err := r.done(); err != nil {
		return broadcastMsg{}, err
	}
	return m, nil
}

// encodeCells frames a round-2 count message (typ selects h vs h′),
// sorting Cells in place.
func encodeCells(typ byte, m cellsMsg) []byte {
	sort.Slice(m.Cells, func(a, b int) bool { return lessVec(m.Cells[a].Idx, m.Cells[b].Idx) })
	dim := 0
	if len(m.Cells) > 0 {
		dim = len(m.Cells[0].Idx)
	}
	dst := append(make([]byte, 0, 4+len(m.Cells)*(dim+2)), typ)
	dst = streamfmt.AppendUvarint(dst, uint64(m.Level))
	if m.Fail {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	dst = streamfmt.AppendUvarint(dst, uint64(len(m.Cells)))
	prev := make([]int64, dim)
	for _, c := range m.Cells {
		dst = streamfmt.AppendDeltaVec(dst, prev, c.Idx)
		dst = streamfmt.AppendUvarint(dst, uint64(c.Count))
	}
	return dst
}

func decodeCells(frame []byte, dim, maxLevel int) (cellsMsg, error) {
	if t := frameType(frame); t != frameCellsH && t != frameCellsHP {
		return cellsMsg{}, fmt.Errorf("dist: expected cells frame, got type %d", t)
	}
	r := &reader{b: frame, off: 1}
	m := cellsMsg{Level: int(r.uvarint())}
	if r.bad || m.Level > maxLevel {
		return cellsMsg{}, errTruncated
	}
	if r.byte() != 0 {
		m.Fail = true
		if err := r.done(); err != nil {
			return cellsMsg{}, err
		}
		return m, nil
	}
	n := r.uvarint()
	if r.bad || n > uint64(len(frame))/uint64(dim+1) {
		return cellsMsg{}, errTruncated
	}
	prev := make([]int64, dim)
	if n > 0 {
		m.Cells = make([]wireCell, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		r.deltaVec(prev)
		count := r.uvarint()
		if r.bad || count < 1 {
			return cellsMsg{}, errTruncated
		}
		m.Cells = append(m.Cells, wireCell{Idx: append([]int64(nil), prev...), Count: int64(count)})
	}
	if err := r.done(); err != nil {
		return cellsMsg{}, err
	}
	return m, nil
}

// encodeHat frames a round-2 ĥ point payload, sorting Pts in place.
func encodeHat(m hatMsg) []byte {
	sort.Slice(m.Pts, func(a, b int) bool { return m.Pts[a].P.Less(m.Pts[b].P) })
	dim := 0
	if len(m.Pts) > 0 {
		dim = len(m.Pts[0].P)
	}
	dst := append(make([]byte, 0, 4+len(m.Pts)*(dim+2)), frameHat)
	dst = streamfmt.AppendUvarint(dst, uint64(m.Level))
	if m.Fail {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	dst = streamfmt.AppendUvarint(dst, uint64(len(m.Pts)))
	prev := make([]int64, dim)
	for _, p := range m.Pts {
		dst = streamfmt.AppendDeltaVec(dst, prev, p.P)
		dst = streamfmt.AppendUvarint(dst, uint64(p.Mult))
	}
	return dst
}

func decodeHat(frame []byte, dim, maxLevel int) (hatMsg, error) {
	if frameType(frame) != frameHat {
		return hatMsg{}, fmt.Errorf("dist: expected hat frame, got type %d", frameType(frame))
	}
	r := &reader{b: frame, off: 1}
	m := hatMsg{Level: int(r.uvarint())}
	if r.bad || m.Level > maxLevel {
		return hatMsg{}, errTruncated
	}
	if r.byte() != 0 {
		m.Fail = true
		if err := r.done(); err != nil {
			return hatMsg{}, err
		}
		return m, nil
	}
	n := r.uvarint()
	if r.bad || n > uint64(len(frame))/uint64(dim+1) {
		return hatMsg{}, errTruncated
	}
	prev := make([]int64, dim)
	if n > 0 {
		m.Pts = make([]wirePoint, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		r.deltaVec(prev)
		mult := r.uvarint()
		if r.bad || mult < 1 {
			return hatMsg{}, errTruncated
		}
		m.Pts = append(m.Pts, wirePoint{P: geo.Point(append([]int64(nil), prev...)), Mult: int64(mult)})
	}
	if err := r.done(); err != nil {
		return hatMsg{}, err
	}
	return m, nil
}
