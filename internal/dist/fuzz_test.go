package dist

import (
	"reflect"
	"testing"

	"streambalance/internal/geo"
)

// FuzzWireRoundTrip drives the codec both ways: arbitrary bytes are
// interpreted (a) as a structured message that must survive
// encode→decode exactly, and (b) as a raw frame that every decoder must
// reject or accept without panicking.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(encodeSample(sampleMsg{LocalN: 3, Pts: []geo.Point{{1, 2}, {3, 4}}}))
	f.Add(encodeBroadcast(broadcastMsg{O: 8, Seed: 7, Shift: []int64{1, -2}}))
	f.Add(encodeCells(frameCellsH, cellsMsg{Level: 1, Cells: []wireCell{{Idx: []int64{0, 1}, Count: 2}}}))
	f.Add(encodeHat(hatMsg{Level: 0, Pts: []wirePoint{{P: geo.Point{5, 6}, Mult: 1}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) structured round trip: derive a message from the bytes.
		cur := &reader{b: data}
		next := func(mod int64) int64 {
			v := int64(cur.uvarint())
			if mod > 0 {
				v %= mod
			}
			return v
		}
		const dim = 2
		var pts []geo.Point
		seen := map[string]bool{}
		for !cur.bad && len(pts) < 64 {
			p := geo.Point{next(1 << 16), next(1 << 16)}
			if cur.bad {
				break
			}
			if k := p.String(); !seen[k] {
				seen[k] = true
				pts = append(pts, p)
			}
		}
		sm := sampleMsg{LocalN: int64(len(pts)) + 1, Pts: append([]geo.Point(nil), pts...)}
		got, err := decodeSample(encodeSample(sm), dim)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if got.LocalN != sm.LocalN || !reflect.DeepEqual(got.Pts, sm.Pts) {
			t.Fatal("sample round trip mismatch")
		}

		cm := cellsMsg{Level: int(sm.LocalN % 8)}
		hm := hatMsg{Level: cm.Level}
		for i, p := range pts {
			cm.Cells = append(cm.Cells, wireCell{Idx: append([]int64(nil), p...), Count: int64(i) + 1})
			hm.Pts = append(hm.Pts, wirePoint{P: p, Mult: int64(i)%5 + 1})
		}
		gc, err := decodeCells(encodeCells(frameCellsHP, cm), dim, 8)
		if err != nil {
			t.Fatalf("cells: %v", err)
		}
		if gc.Level != cm.Level || !reflect.DeepEqual(gc.Cells, cm.Cells) {
			t.Fatal("cells round trip mismatch")
		}
		gh, err := decodeHat(encodeHat(hm), dim, 8)
		if err != nil {
			t.Fatalf("hat: %v", err)
		}
		if gh.Level != hm.Level || !reflect.DeepEqual(gh.Pts, hm.Pts) {
			t.Fatal("hat round trip mismatch")
		}

		// (b) raw decode: must never panic on arbitrary frames.
		decodeSample(data, dim)
		decodeBroadcast(data, dim)
		decodeCells(data, dim, 16)
		decodeHat(data, dim, 16)
	})
}
