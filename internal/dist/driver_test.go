package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"streambalance/internal/coreset"
	"streambalance/internal/geo"
)

// reportEqual asserts two protocol runs are bit-identical: same guess,
// same measured and formula accounting, and the same coreset point for
// point, weight for weight.
func reportEqual(t *testing.T, tag string, a, b *Report) {
	t.Helper()
	if a.O != b.O {
		t.Fatalf("%s: O %v vs %v", tag, a.O, b.O)
	}
	if a.Bits != b.Bits || !reflect.DeepEqual(a.ByPhase, b.ByPhase) {
		t.Fatalf("%s: measured bits %d %v vs %d %v", tag, a.Bits, a.ByPhase, b.Bits, b.ByPhase)
	}
	if a.FormulaBits != b.FormulaBits || !reflect.DeepEqual(a.FormulaByPhase, b.FormulaByPhase) {
		t.Fatalf("%s: formula bits %d vs %d", tag, a.FormulaBits, b.FormulaBits)
	}
	ca, cb := a.Coreset, b.Coreset
	if ca.Size() != cb.Size() {
		t.Fatalf("%s: coreset size %d vs %d", tag, ca.Size(), cb.Size())
	}
	if !reflect.DeepEqual(ca.Levels, cb.Levels) {
		t.Fatalf("%s: coreset levels differ", tag)
	}
	for i := range ca.Points {
		if !ca.Points[i].P.Equal(cb.Points[i].P) || ca.Points[i].W != cb.Points[i].W {
			t.Fatalf("%s: coreset point %d: %v w=%v vs %v w=%v",
				tag, i, ca.Points[i].P, ca.Points[i].W, cb.Points[i].P, cb.Points[i].W)
		}
	}
}

// The pipelined driver must be bit-identical to the serial reference at
// every worker count — the determinism contract of the whole rewrite.
func TestPipelinedMatchesSerialBitwise(t *testing.T) {
	ps, _ := testMixture(11, 4000)
	rng := rand.New(rand.NewSource(12))
	machines := splitAcross(ps, 6, rng)
	base := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 13}}

	ref, err := RunSerial(machines, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Coreset.Size() == 0 {
		t.Fatal("reference coreset is empty")
	}
	for _, workers := range []int{0, 1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		rep, err := Run(machines, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reportEqual(t, "workers", ref, rep)
	}
}

// The same must hold when every frame travels through real loopback
// net.Conn byte pipes instead of in-memory channels.
func TestPipeTransportMatchesSerial(t *testing.T) {
	ps, _ := testMixture(14, 2500)
	rng := rand.New(rand.NewSource(15))
	machines := splitAcross(ps, 4, rng)
	base := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 16}}

	ref, err := RunSerial(machines, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Transport = PipeTransport{}
	cfg.Workers = 3
	rep, err := Run(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportEqual(t, "pipe", ref, rep)

	cfg.Transport = ChanTransport{Buf: 1} // maximal backpressure
	rep, err = Run(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportEqual(t, "chan-buf1", ref, rep)
}

// Cap failures must surface as errors from the concurrent driver — no
// panic, no deadlock, machines drained cleanly.
func TestTightCapsFailAcrossDrivers(t *testing.T) {
	ps, _ := testMixture(17, 2000)
	rng := rand.New(rand.NewSource(18))
	machines := splitAcross(ps, 3, rng)
	for _, tr := range []Transport{nil, PipeTransport{}} {
		cfg := Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 19},
			CellCap: 2, PointCap: 2, Transport: tr}
		if _, err := Run(machines, cfg); err == nil {
			t.Fatalf("transport %T: tight caps must fail", tr)
		}
		if _, err := RunSerial(machines, cfg); err == nil {
			t.Fatalf("transport %T: serial tight caps must fail", tr)
		}
	}
}

// RunSerial must reject the same invalid configs Run does.
func TestRunSerialValidation(t *testing.T) {
	if _, err := RunSerial(nil, Config{Dim: 2, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("no machines must error")
	}
	if _, err := RunSerial([]geo.PointSet{{}}, Config{Dim: 2, Delta: 16, Params: coreset.Params{K: 2}}); err == nil {
		t.Fatal("empty input must error")
	}
}

// Measured wire bits must not exceed the closed-form formula accounting
// on realistic inputs — the codec's whole point.
func TestMeasuredBitsBeatFormula(t *testing.T) {
	ps, _ := testMixture(20, 3000)
	rng := rand.New(rand.NewSource(21))
	for _, s := range []int{2, 8} {
		machines := splitAcross(ps, s, rng)
		rep, err := Run(machines, Config{Dim: 2, Delta: testDelta, Params: coreset.Params{K: 3, Seed: 22}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bits >= rep.FormulaBits {
			t.Fatalf("s=%d: measured %d bits >= formula %d bits", s, rep.Bits, rep.FormulaBits)
		}
	}
}
