package dist

// Protocol drivers. Run executes the protocol concurrently: every machine
// computes in its own goroutine (bounded by Config.Workers) and streams
// its round-2 frames level by level, while per-link coordinator readers
// merge counts as they arrive and the coordinator's partition build
// (Algorithms 1–2) runs pipelined against the still-incoming levels —
// a count source blocks only until the specific level it consults is
// complete. RunSerial is the single-goroutine reference: the same frames,
// metered and merged machine-major, with no concurrency anywhere. Both
// produce bit-identical Reports (see dist_test.go), because machine
// compute is deterministic, merges sum exact integers (arrival-order
// independent), and assembly sorts merged points.

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"streambalance/internal/geo"
	"streambalance/internal/obs"
)

// finishSpan stamps the run span with the coordinator's final wire
// accounting and FAIL count. Called after every worker goroutine has
// been joined, but reads under the mutex anyway — it is not a hot path.
func (co *coordinator) finishSpan(sp *obs.Span) {
	if !sp.Active() {
		return
	}
	co.mu.Lock()
	bits, formula, fails, o := co.rep.Bits, co.rep.FormulaBits, co.failFrames, co.o
	co.mu.Unlock()
	sp.AttrFloat("o", o)
	sp.AttrInt("wire_bits", bits)
	sp.AttrInt("formula_bits", formula)
	sp.AttrInt("fail_frames", fails)
	sp.End()
}

func validate(machines []geo.PointSet, cfg Config) (Config, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return cfg, err
	}
	if len(machines) == 0 {
		return cfg, errors.New("dist: no machines")
	}
	return cfg, nil
}

// Run executes the protocol with the pipelined concurrent driver over
// cfg.Transport (ChanTransport by default).
func Run(machines []geo.PointSet, cfg Config) (*Report, error) {
	cfg, err := validate(machines, cfg)
	if err != nil {
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		tr = ChanTransport{}
	}
	links, err := tr.Links(len(machines))
	if err != nil {
		return nil, err
	}
	s := len(machines)
	co := newCoordinator(cfg, s)

	workers := cfg.Workers
	if workers <= 0 || workers > s {
		workers = s
	}
	sem := make(chan struct{}, workers)

	mRuns.Inc()
	// The run span roots a distributed trace; its context rides the
	// broadcast frame so machine and link spans parent onto it even when
	// the "machines" are remote processes.
	sp := obs.Trace.StartRoot("dist.run")
	sp.AttrInt("machines", int64(s))
	sp.AttrInt("workers", int64(workers))
	defer co.finishSpan(&sp)
	rootCtx := sp.Context()
	tRound1 := obs.NowNano()

	var mwg sync.WaitGroup
	for j := range machines {
		mwg.Add(1)
		go func(j int) {
			defer mwg.Done()
			runMachine(links[j].Machine, j, machines[j], cfg, sem)
		}(j)
	}

	// Round 1 up: one reader per link collects the sample frame.
	var rwg sync.WaitGroup
	for j := range links {
		rwg.Add(1)
		go func(j int) {
			defer rwg.Done()
			f, err := links[j].Coord.Recv()
			if err != nil {
				co.abort(fmt.Errorf("dist: machine %d round 1: %w", j, err))
				return
			}
			co.addSample(j, f)
		}(j)
	}
	rwg.Wait()

	fail := func(err error) (*Report, error) {
		for _, l := range links {
			l.Coord.Close()
		}
		mwg.Wait()
		return nil, err
	}
	if err := co.firstErr(); err != nil {
		return fail(err)
	}
	bframe, err := co.finishRound1()
	if err != nil {
		return fail(err)
	}
	mRound1NS.ObserveSince(tRound1)
	tRound2 := obs.NowNano()

	// Round 1 down + round 2 up: per-link readers merge frames as they
	// arrive, waking any count source blocked on the level they complete.
	var r2wg sync.WaitGroup
	for j := range links {
		r2wg.Add(1)
		go func(j int) {
			defer r2wg.Done()
			// The broadcast carries the run span's context; the charge is
			// the plain frame (the header is never metered).
			if err := links[j].Coord.Send(attachTrace(bframe, rootCtx)); err != nil {
				co.abort(fmt.Errorf("dist: broadcast to machine %d: %w", j, err))
				return
			}
			co.chargeBroadcast(len(bframe))
			co.readRound2(j, links[j].Coord)
		}(j)
	}

	// The coordinator's own build runs concurrently with the readers,
	// blocking per consulted level rather than per round.
	cs, buildErr := co.buildCoreset()

	r2wg.Wait()
	mwg.Wait()
	mRound2NS.ObserveSince(tRound2)
	for _, l := range links {
		l.Coord.Close()
	}
	if buildErr != nil {
		return nil, buildErr
	}
	if err := co.firstErr(); err != nil {
		return nil, err
	}
	co.rep.Coreset = cs
	return co.rep, nil
}

// readRound2 drains machine j's round-2 frames into the merge state. It
// always reads to EOF — even after an abort — so a machine blocked on a
// full link can finish and exit. The first traced frame opens a
// dist.link span parented on the sender's machine span (a cross-process
// parent when the transport is real), closed at EOF with per-link frame
// and byte totals.
func (co *coordinator) readRound2(j int, c Conn) {
	expected := 3*co.env.g.L + 2
	seen := 0
	var linkSp obs.Span
	var linkBytes int64
	defer func() {
		if linkSp.Active() {
			linkSp.AttrInt("frames", int64(seen))
			linkSp.AttrInt("bytes", linkBytes)
			linkSp.End()
		}
	}()
	for {
		f, err := c.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			co.abort(fmt.Errorf("dist: machine %d round 2: %w", j, err))
			return
		}
		if tc, payload, derr := detachTrace(f); derr == nil {
			if tc.Valid() && !linkSp.Active() {
				linkSp = obs.Trace.StartChild(tc, "dist.link")
				linkSp.AttrInt("machine", int64(j))
			}
			linkBytes += int64(len(payload))
		}
		if co.aborted() {
			continue // drain without merging
		}
		if err := co.handleFrame(j, f); err != nil {
			co.abort(fmt.Errorf("dist: machine %d: %w", j, err))
			continue
		}
		seen++
	}
	if seen != expected && !co.aborted() {
		co.abort(fmt.Errorf("dist: machine %d closed after %d of %d round-2 frames", j, seen, expected))
	}
}

// runMachine is one machine's side of the protocol. The semaphore bounds
// how many machines compute at once (Config.Workers); waiting on the
// network is never counted against it.
func runMachine(c Conn, j int, pts geo.PointSet, cfg Config, sem chan struct{}) {
	defer c.Close()

	sem <- struct{}{}
	t0 := obs.NowNano()
	frame := encodeSample(machineSample(j, pts, cfg))
	mComputeNS.ObserveSince(t0)
	<-sem
	if c.Send(frame) != nil {
		return
	}

	bf, err := c.Recv()
	if err != nil {
		return
	}
	ptc, bf, err := detachTrace(bf)
	if err != nil {
		return
	}
	bc, err := decodeBroadcast(bf, cfg.Dim)
	if err != nil {
		return // coordinator sees the early close and aborts
	}

	// The machine's round-2 work runs under a span parented on the
	// coordinator's run span (carried by the broadcast header); its own
	// context rides every round-2 frame so the coordinator's link span
	// parents onto it in turn. With tracing off both contexts are zero
	// and every frame is sent headerless.
	msp := obs.Trace.StartChild(ptc, "dist.machine")
	msp.AttrInt("machine", int64(j))
	defer msp.End()
	mtc := msp.Context()

	sem <- struct{}{}
	defer func() { <-sem }()
	t1 := obs.NowNano()
	defer func() { mComputeNS.ObserveSince(t1) }()
	env := newShared(cfg, bc.O, bc.Seed)
	if !shiftEqual(env.g.Shift, bc.Shift) {
		return // shared-randomness reconstruction mismatch
	}
	mc := newMachineCtx(cfg, env, pts)
	for level := 0; level <= env.g.L; level++ {
		if level < env.g.L {
			if c.Send(attachTrace(encodeCells(frameCellsH, mc.cellsAt(level, env.hSamp[level])), mtc)) != nil {
				return
			}
		}
		if c.Send(attachTrace(encodeCells(frameCellsHP, mc.cellsAt(level, env.hpSamp[level])), mtc)) != nil {
			return
		}
		if c.Send(attachTrace(encodeHat(mc.hatAt(level)), mtc)) != nil {
			return
		}
	}
}

// RunSerial executes the identical protocol with no goroutines: every
// frame is encoded, metered and decoded machine-major in a single thread.
// It is the reference Run is pinned against — same Report bits, same
// coreset, bit for bit.
func RunSerial(machines []geo.PointSet, cfg Config) (*Report, error) {
	cfg, err := validate(machines, cfg)
	if err != nil {
		return nil, err
	}
	s := len(machines)
	co := newCoordinator(cfg, s)

	mRuns.Inc()
	sp := obs.Trace.StartRoot("dist.run_serial")
	sp.AttrInt("machines", int64(s))
	defer co.finishSpan(&sp)

	for j, m := range machines {
		co.addSample(j, encodeSample(machineSample(j, m, cfg)))
	}
	if err := co.firstErr(); err != nil {
		return nil, err
	}
	bframe, err := co.finishRound1()
	if err != nil {
		return nil, err
	}

	for j, m := range machines {
		co.chargeBroadcast(len(bframe))
		// Same frame choreography as the pipelined driver, inline: the
		// broadcast carries the run context, the machine span's context
		// rides every round-2 frame, handleFrame strips it before
		// metering — so serial and pipelined Reports stay bit-identical
		// with tracing on or off.
		ptc, pbf, err := detachTrace(attachTrace(bframe, sp.Context()))
		if err != nil {
			return nil, err
		}
		bc, err := decodeBroadcast(pbf, cfg.Dim)
		if err != nil {
			return nil, err
		}
		env := newShared(cfg, bc.O, bc.Seed)
		if !shiftEqual(env.g.Shift, bc.Shift) {
			return nil, fmt.Errorf("dist: machine %d shared-randomness mismatch", j)
		}
		msp := obs.Trace.StartChild(ptc, "dist.machine")
		msp.AttrInt("machine", int64(j))
		mtc := msp.Context()
		mc := newMachineCtx(cfg, env, m)
		for level := 0; level <= env.g.L; level++ {
			if level < env.g.L {
				if err := co.handleFrame(j, attachTrace(encodeCells(frameCellsH, mc.cellsAt(level, env.hSamp[level])), mtc)); err != nil {
					msp.End()
					return nil, err
				}
			}
			if err := co.handleFrame(j, attachTrace(encodeCells(frameCellsHP, mc.cellsAt(level, env.hpSamp[level])), mtc)); err != nil {
				msp.End()
				return nil, err
			}
			if err := co.handleFrame(j, attachTrace(encodeHat(mc.hatAt(level)), mtc)); err != nil {
				msp.End()
				return nil, err
			}
		}
		msp.End()
	}

	cs, err := co.buildCoreset()
	if err != nil {
		return nil, err
	}
	co.rep.Coreset = cs
	return co.rep, nil
}
