package dist

// Transport abstraction for the coordinator protocol: machines and the
// coordinator exchange framed messages over per-machine bidirectional
// Links. Two implementations ship: ChanTransport (buffered in-process
// channels — the default, giving the pipelined driver cheap asynchrony)
// and PipeTransport (length-prefixed frames over loopback net.Conn pairs
// from net.Pipe — every frame actually serialized through a synchronous
// byte pipe, the closest in-process stand-in for a real network).

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"

	"streambalance/internal/streamfmt"
)

// Conn is one endpoint of a machine↔coordinator link. Send transfers one
// frame to the peer; Recv returns the next frame, or io.EOF once the peer
// has closed and every in-flight frame has been delivered. A Conn is safe
// for one sender and one receiver goroutine (the protocol's shape); Close
// may race with either.
type Conn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Link is a bidirectional machine↔coordinator connection.
type Link struct {
	Coord   Conn // the coordinator's endpoint
	Machine Conn // the machine's endpoint
}

// Transport produces the links of one protocol instance.
type Transport interface {
	Links(machines int) ([]Link, error)
}

// errClosed is returned by operations on a locally closed Conn.
var errClosed = errors.New("dist: connection closed")

// ChanTransport links each machine to the coordinator through a pair of
// buffered frame channels. Buf bounds the in-flight frames per direction
// (0 selects a default deep enough that a machine never blocks on the
// coordinator within one level's burst).
type ChanTransport struct {
	Buf int
}

func (t ChanTransport) Links(machines int) ([]Link, error) {
	buf := t.Buf
	if buf <= 0 {
		buf = 64
	}
	links := make([]Link, machines)
	for i := range links {
		a, b := newChanPair(buf)
		links[i] = Link{Coord: a, Machine: b}
	}
	return links, nil
}

type chanConn struct {
	out, in             chan []byte
	localDone, peerDone chan struct{}
	once                sync.Once
}

func newChanPair(buf int) (a, b *chanConn) {
	ab := make(chan []byte, buf)
	ba := make(chan []byte, buf)
	da := make(chan struct{})
	db := make(chan struct{})
	a = &chanConn{out: ab, in: ba, localDone: da, peerDone: db}
	b = &chanConn{out: ba, in: ab, localDone: db, peerDone: da}
	return a, b
}

func (c *chanConn) Send(frame []byte) error {
	select {
	case <-c.localDone:
		return errClosed
	case <-c.peerDone:
		return io.ErrClosedPipe
	default:
	}
	select {
	case c.out <- frame:
		return nil
	case <-c.localDone:
		return errClosed
	case <-c.peerDone:
		return io.ErrClosedPipe
	}
}

func (c *chanConn) Recv() ([]byte, error) {
	// Buffered frames are delivered even after either side closes: a
	// machine closes its endpoint as soon as its last level is sent, and
	// those frames must still reach the coordinator.
	select {
	case f := <-c.in:
		return f, nil
	default:
	}
	select {
	case f := <-c.in:
		return f, nil
	case <-c.localDone:
		return nil, errClosed
	case <-c.peerDone:
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.localDone) })
	return nil
}

// PipeTransport carries frames over synchronous loopback net.Conn pairs
// (net.Pipe), each frame length-prefixed with a varint. It exists to pin
// the protocol against a real byte-stream transport: nothing is shared
// between endpoints but serialized bytes.
type PipeTransport struct{}

func (PipeTransport) Links(machines int) ([]Link, error) {
	links := make([]Link, machines)
	for i := range links {
		cc, mc := net.Pipe()
		links[i] = Link{Coord: newPipeConn(cc), Machine: newPipeConn(mc)}
	}
	return links, nil
}

type pipeConn struct {
	c  net.Conn
	br *bufio.Reader
	wm sync.Mutex
}

func newPipeConn(c net.Conn) *pipeConn {
	return &pipeConn{c: c, br: bufio.NewReader(c)}
}

func (p *pipeConn) Send(frame []byte) error {
	buf := streamfmt.AppendUvarint(make([]byte, 0, len(frame)+streamfmt.MaxVarintLen), uint64(len(frame)))
	buf = append(buf, frame...)
	p.wm.Lock()
	defer p.wm.Unlock()
	_, err := p.c.Write(buf)
	return err
}

func (p *pipeConn) Recv() ([]byte, error) {
	n, err := readUvarint(p.br)
	if err != nil {
		if errors.Is(err, io.ErrClosedPipe) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(p.br, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func (p *pipeConn) Close() error { return p.c.Close() }

func readUvarint(br *bufio.Reader) (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errTruncated
}
