package dist

import (
	"errors"
	"io"
	"sync"
	"testing"
)

func transports() map[string]Transport {
	return map[string]Transport{
		"chan":      ChanTransport{},
		"chan-buf1": ChanTransport{Buf: 1},
		"pipe":      PipeTransport{},
	}
}

// Frames sent before the sender closes must all arrive, in order,
// followed by io.EOF.
func TestTransportDeliveryAndEOF(t *testing.T) {
	for name, tr := range transports() {
		t.Run(name, func(t *testing.T) {
			links, err := tr.Links(1)
			if err != nil {
				t.Fatal(err)
			}
			l := links[0]
			const n = 100
			go func() {
				for i := 0; i < n; i++ {
					if err := l.Machine.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
						t.Error(err)
						return
					}
				}
				l.Machine.Close()
			}()
			for i := 0; i < n; i++ {
				f, err := l.Coord.Recv()
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if len(f) != 2 || f[0] != byte(i) || f[1] != byte(i>>8) {
					t.Fatalf("frame %d corrupted: %v", i, f)
				}
			}
			if _, err := l.Coord.Recv(); !errors.Is(err, io.EOF) {
				t.Fatalf("after close: %v, want io.EOF", err)
			}
		})
	}
}

// Both directions of a link must work concurrently (round 1's
// sample-up / broadcast-down overlap).
func TestTransportBidirectional(t *testing.T) {
	for name, tr := range transports() {
		t.Run(name, func(t *testing.T) {
			links, _ := tr.Links(1)
			l := links[0]
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				l.Machine.Send([]byte("up"))
				if f, err := l.Machine.Recv(); err != nil || string(f) != "down" {
					t.Errorf("machine recv: %q %v", f, err)
				}
			}()
			go func() {
				defer wg.Done()
				if f, err := l.Coord.Recv(); err != nil || string(f) != "up" {
					t.Errorf("coord recv: %q %v", f, err)
				}
				l.Coord.Send([]byte("down"))
			}()
			wg.Wait()
		})
	}
}

// Sending to a peer that already closed must return an error, not panic
// or hang — the abort path relies on it.
func TestTransportSendAfterPeerClose(t *testing.T) {
	for name, tr := range transports() {
		t.Run(name, func(t *testing.T) {
			links, _ := tr.Links(1)
			l := links[0]
			l.Coord.Close()
			var err error
			for i := 0; i < 200 && err == nil; i++ {
				err = l.Machine.Send(make([]byte, 1024))
			}
			if err == nil {
				t.Fatal("send to closed peer never errored")
			}
		})
	}
}

// Double Close must be safe (driver and machine both close defensively).
func TestTransportDoubleClose(t *testing.T) {
	for name, tr := range transports() {
		t.Run(name, func(t *testing.T) {
			links, _ := tr.Links(1)
			links[0].Coord.Close()
			links[0].Coord.Close()
			links[0].Machine.Close()
			links[0].Machine.Close()
		})
	}
}
