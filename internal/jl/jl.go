// Package jl implements the dimension-reduction front end the paper
// invokes for high-dimensional inputs (Section 1: "if d is much larger
// than k/ε, we can apply [MMR19] to reduce the dimension to poly(k/ε);
// then our streaming algorithm only needs d·poly(k log Δ) space").
//
// [MMR19] (Makarychev–Makarychev–Razenshteyn) proves that a standard
// Johnson–Lindenstrauss projection to m = O(ε⁻²·log(k/ε)) dimensions
// preserves the cost of EVERY k-means/k-median clustering (not just
// pairwise distances) to 1±ε. This package provides the classic Gaussian
// JL transform together with the re-quantization onto an integer grid
// that the coreset machinery requires, and the lift that turns a
// clustering of the reduced points back into original-space centers
// (assign in the reduced space, recenter in the original space — the
// standard way to consume a dimension-reduced clustering).
package jl

import (
	"errors"
	"math"
	"math/rand"

	"streambalance/internal/geo"
)

// Transform is a Gaussian JL projection R^d → R^m composed with an
// affine quantization onto the integer grid [1, Δ']^m.
type Transform struct {
	D, M  int
	Delta int64 // target grid bound Δ'

	mat    [][]float64 // m × d, entries N(0, 1/m)
	offset []float64   // per-output-coordinate shift
	scale  float64     // uniform scale into the grid
}

// TargetDim returns the [MMR19] dimension m = ⌈C·log(k/ε+2)/ε²⌉ with a
// small practical constant, clamped to [4, d].
func TargetDim(k int, eps float64, d int) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.5
	}
	m := int(math.Ceil(4 * math.Log(float64(k)/eps+2) / (eps * eps)))
	if m < 4 {
		m = 4
	}
	if m > d {
		m = d
	}
	return m
}

// Fit draws a projection and calibrates the quantization so that the
// projections of ps fill [1, delta]^m. The same Transform must be used
// for every subsequent point (centers, stream updates) so that all
// geometry lives in one coordinate frame.
func Fit(rng *rand.Rand, ps geo.PointSet, m int, delta int64) (*Transform, error) {
	if len(ps) == 0 {
		return nil, errors.New("jl: empty input")
	}
	d := ps.Dim()
	if m < 1 || m > d {
		return nil, errors.New("jl: target dimension out of range")
	}
	if delta < 4 {
		return nil, errors.New("jl: target grid too small")
	}
	t := &Transform{D: d, M: m, Delta: delta}
	t.mat = make([][]float64, m)
	inv := 1 / math.Sqrt(float64(m))
	for i := range t.mat {
		t.mat[i] = make([]float64, d)
		for j := range t.mat[i] {
			t.mat[i][j] = rng.NormFloat64() * inv
		}
	}
	// Calibrate offset/scale from the projected bounding box, with 5%
	// margin so near-boundary points (and centers between them) stay
	// on-grid.
	lo := make([]float64, m)
	hi := make([]float64, m)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	buf := make([]float64, m)
	for _, p := range ps {
		t.project(p, buf)
		for i, v := range buf {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	maxRange := 0.0
	for i := range lo {
		if r := hi[i] - lo[i]; r > maxRange {
			maxRange = r
		}
	}
	if maxRange == 0 {
		maxRange = 1
	}
	margin := 0.05 * maxRange
	t.offset = make([]float64, m)
	for i := range t.offset {
		t.offset[i] = lo[i] - margin
	}
	// One uniform scale for all coordinates keeps the projection a
	// similarity (distances scale by a single factor), which is what
	// cost comparisons need.
	t.scale = float64(delta-1) / (maxRange + 2*margin)
	return t, nil
}

func (t *Transform) project(p geo.Point, out []float64) {
	for i := 0; i < t.M; i++ {
		var s float64
		row := t.mat[i]
		for j, c := range p {
			s += row[j] * float64(c)
		}
		out[i] = s
	}
}

// Apply maps an original point to the reduced grid. Points far outside
// the fitted range are clamped to the grid boundary.
func (t *Transform) Apply(p geo.Point) geo.Point {
	if len(p) != t.D {
		panic("jl: wrong input dimension")
	}
	buf := make([]float64, t.M)
	t.project(p, buf)
	out := make(geo.Point, t.M)
	for i, v := range buf {
		q := int64(math.Round((v-t.offset[i])*t.scale)) + 1
		if q < 1 {
			q = 1
		}
		if q > t.Delta {
			q = t.Delta
		}
		out[i] = q
	}
	return out
}

// ApplyAll maps a whole point set.
func (t *Transform) ApplyAll(ps geo.PointSet) geo.PointSet {
	out := make(geo.PointSet, len(ps))
	for i, p := range ps {
		out[i] = t.Apply(p)
	}
	return out
}

// Scale returns the multiplicative factor by which the transform scales
// distances (original-space distances map to ≈ Scale × themselves in the
// reduced grid, up to the 1±ε JL distortion).
func (t *Transform) Scale() float64 { return t.scale }

// LiftCenters converts a clustering of reduced points back to
// original-space centers: every original point is assigned to the
// cluster of its reduced image, and each cluster is recentered in the
// original space (weighted centroid for r = 2). [MMR19] guarantees the
// resulting original-space clustering costs within 1±ε of the reduced
// one, which is exactly how a dimension-reduced coreset is consumed.
func LiftCenters(t *Transform, original geo.PointSet, reducedCenters []geo.Point, delta int64) []geo.Point {
	k := len(reducedCenters)
	sums := make([][]float64, k)
	counts := make([]float64, k)
	d := original.Dim()
	for i := range sums {
		sums[i] = make([]float64, d)
	}
	for _, p := range original {
		img := t.Apply(p)
		_, j := geo.DistToSet(img, reducedCenters)
		for c := 0; c < d; c++ {
			sums[j][c] += float64(p[c])
		}
		counts[j]++
	}
	out := make([]geo.Point, k)
	for j := range out {
		if counts[j] == 0 {
			// Empty cluster: fall back to the preimage-free best effort —
			// the grid center.
			mid := make(geo.Point, d)
			for c := range mid {
				mid[c] = delta / 2
			}
			out[j] = mid
			continue
		}
		c := make([]float64, d)
		for i := range c {
			c[i] = sums[j][i] / counts[j]
		}
		out[j] = geo.RoundToGrid(c, delta)
	}
	return out
}
