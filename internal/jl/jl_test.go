package jl

import (
	"math/rand"
	"testing"

	"streambalance/internal/geo"
	"streambalance/internal/workload"
)

func highDimMixture(seed int64, n, d int) (geo.PointSet, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	m := workload.Mixture{N: n, D: d, Delta: 1 << 10, K: 3, Spread: 10}
	return m.Generate(rng)
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Fit(rng, nil, 4, 256); err == nil {
		t.Fatal("empty input must error")
	}
	ps, _ := highDimMixture(1, 50, 16)
	if _, err := Fit(rng, ps, 0, 256); err == nil {
		t.Fatal("m=0 must error")
	}
	if _, err := Fit(rng, ps, 17, 256); err == nil {
		t.Fatal("m>d must error")
	}
	if _, err := Fit(rng, ps, 4, 2); err == nil {
		t.Fatal("tiny delta must error")
	}
}

func TestTargetDim(t *testing.T) {
	if m := TargetDim(10, 0.5, 1000); m < 4 || m > 1000 {
		t.Fatalf("m = %d", m)
	}
	// Tighter ε ⇒ more dimensions.
	if TargetDim(10, 0.2, 1000) <= TargetDim(10, 0.5, 1000) {
		t.Fatal("target dim must grow as ε shrinks")
	}
	// Clamp at d.
	if TargetDim(10, 0.05, 8) != 8 {
		t.Fatal("must clamp at d")
	}
	// Garbage ε handled.
	if TargetDim(10, -1, 100) < 4 {
		t.Fatal("bad eps must fall back")
	}
}

func TestOutputOnGrid(t *testing.T) {
	ps, _ := highDimMixture(2, 400, 32)
	tr, err := Fit(rand.New(rand.NewSource(2)), ps, 6, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.ApplyAll(ps) {
		if len(p) != 6 {
			t.Fatalf("wrong output dim %d", len(p))
		}
		if !p.InRange(512) {
			t.Fatalf("off-grid point %v", p)
		}
	}
}

func TestDistancePreservation(t *testing.T) {
	// JL with m=16 preserves pairwise distances of a 64-dim set to
	// moderate distortion; check the empirical distortion band after
	// unscaling.
	ps, _ := highDimMixture(3, 300, 64)
	tr, err := Fit(rand.New(rand.NewSource(3)), ps, 16, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	red := tr.ApplyAll(ps)
	var ratios []float64
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(len(ps)), rng.Intn(len(ps))
		dOrig := geo.Dist(ps[i], ps[j])
		if dOrig < 20 {
			continue // quantization noise dominates tiny distances
		}
		dRed := geo.Dist(red[i], red[j]) / tr.Scale()
		ratios = append(ratios, dRed/dOrig)
	}
	if len(ratios) < 100 {
		t.Fatal("too few usable pairs")
	}
	var sum float64
	within := 0
	for _, r := range ratios {
		sum += r
		if r > 0.7 && r < 1.3 {
			within++
		}
	}
	mean := sum / float64(len(ratios))
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("mean distortion %v", mean)
	}
	// With m = 16 the per-pair distortion std is ≈ 1/√(2m) ≈ 0.18; the
	// bulk must concentrate while rare tails are expected.
	if frac := float64(within) / float64(len(ratios)); frac < 0.85 {
		t.Fatalf("only %.1f%% of pairs within 30%% distortion", 100*frac)
	}
}

func TestClusterStructureSurvives(t *testing.T) {
	// The [MMR19] use case: clusters separated in 64 dimensions stay
	// separated after projecting to 8.
	ps, truec := highDimMixture(5, 900, 64)
	tr, err := Fit(rand.New(rand.NewSource(5)), ps, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	red := tr.ApplyAll(ps)
	redCenters := tr.ApplyAll(geo.PointSet(truec))
	// Nearest-center assignment must agree before and after projection
	// for the overwhelming majority of points.
	agree := 0
	for i, p := range ps {
		_, a := geo.DistToSet(p, truec)
		_, b := geo.DistToSet(red[i], redCenters)
		if a == b {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ps)); frac < 0.97 {
		t.Fatalf("cluster memberships survive for only %.1f%%", 100*frac)
	}
}

func TestLiftCenters(t *testing.T) {
	ps, truec := highDimMixture(6, 600, 48)
	tr, err := Fit(rand.New(rand.NewSource(6)), ps, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	redCenters := tr.ApplyAll(geo.PointSet(truec))
	lifted := LiftCenters(tr, ps, redCenters, 1<<10)
	if len(lifted) != len(truec) {
		t.Fatalf("lifted %d centers", len(lifted))
	}
	// Each lifted center must land near its true counterpart (same
	// cluster's centroid ≈ mean ≈ true center for tight mixtures).
	for j, z := range lifted {
		if len(z) != 48 {
			t.Fatalf("lifted center dim %d", len(z))
		}
		d := geo.Dist(z, truec[j])
		if d > 30 { // spread is 10; centroid error ≪ spread·√d
			t.Fatalf("lifted center %d is %v away from truth", j, d)
		}
	}
}

func TestApplyDimensionPanic(t *testing.T) {
	ps, _ := highDimMixture(7, 50, 16)
	tr, err := Fit(rand.New(rand.NewSource(7)), ps, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Apply(geo.Point{1, 2, 3})
}

func TestDeterministicBySeed(t *testing.T) {
	ps, _ := highDimMixture(8, 100, 24)
	a, _ := Fit(rand.New(rand.NewSource(9)), ps, 6, 512)
	b, _ := Fit(rand.New(rand.NewSource(9)), ps, 6, 512)
	for i, p := range ps {
		if !a.Apply(p).Equal(b.Apply(p)) {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
