// Package hashing implements the limited-independence hash families the
// paper's algorithms rely on: λ-wise independent hash functions realized
// as random polynomials of degree λ−1 over GF(p) with p = 2^61 − 1, plus
// Bernoulli(φ) samplers built on top of them (used by Algorithm 2 line 10,
// Algorithm 3, and Algorithm 4 step 2), and point fingerprints that embed
// [Δ]^d into the 64-bit key universe.
//
// The paper needs λ-wise independence (λ = poly(k d log Δ)) so that the
// Bellare–Rompel moment bound (Lemma 3.13) applies; full independence
// would require storing the random bits for every point, breaking the
// space bound. A degree-(λ−1) polynomial stores exactly λ field elements.
package hashing

import (
	"math/bits"
	"math/rand"
)

// MersennePrime61 is the field modulus p = 2^61 − 1.
const MersennePrime61 uint64 = (1 << 61) - 1

// mulMod returns a*b mod p for a, b < p, using the Mersenne structure of
// p = 2^61 − 1 to reduce the 122-bit product without division.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = (hi*8)*2^61 + lo, and 2^61 ≡ 1 (mod p).
	s := (lo & MersennePrime61) + ((hi << 3) | (lo >> 61))
	s = (s & MersennePrime61) + (s >> 61)
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// addMod returns a+b mod p for a, b < p.
func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// KWise is a λ-wise independent hash function h : {0,...,p−1} → {0,...,p−1},
// realized as a uniformly random polynomial of degree λ−1 over GF(p).
type KWise struct {
	coeffs []uint64 // degree = len(coeffs)-1; coeffs[0] is the constant term
}

// NewKWise draws a λ-wise independent hash function using rng. λ must be
// at least 1; λ = 2 gives the classic pairwise-independent family.
func NewKWise(rng *rand.Rand, lambda int) *KWise {
	if lambda < 1 {
		panic("hashing: lambda must be >= 1")
	}
	c := make([]uint64, lambda)
	for i := range c {
		c[i] = randField(rng)
	}
	return &KWise{coeffs: c}
}

// randField returns a uniform element of GF(p).
func randField(rng *rand.Rand) uint64 {
	for {
		v := rng.Uint64() & ((1 << 61) - 1)
		if v < MersennePrime61 {
			return v
		}
	}
}

// Degree returns λ, the independence of the family.
func (h *KWise) Degree() int { return len(h.coeffs) }

// Eval computes h(x) by Horner's rule. Keys ≥ p are first reduced mod p;
// callers that need injectivity must keep keys below p (Fingerprint does).
func (h *KWise) Eval(x uint64) uint64 {
	if x >= MersennePrime61 {
		x -= MersennePrime61 // keys are < 2^61 in all callers
	}
	// Seed the accumulator with the leading coefficient instead of 0: the
	// first Horner step would be addMod(mulMod(0, x), c) = c, so skipping
	// it saves one field multiplication — a quarter of the work for the
	// degree-3 sketch fingerprints and half for the pairwise row hashes.
	acc := h.coeffs[len(h.coeffs)-1]
	for i := len(h.coeffs) - 2; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), h.coeffs[i])
	}
	return acc
}

// Bernoulli is a λ-wise independent sampler h : keys → {0,1} with
// Pr[h(x) = 1] = φ (up to 1/p quantization), as required by Algorithm 2
// line 10 and Algorithm 3 steps 2 and 4.
type Bernoulli struct {
	h         *KWise
	threshold uint64
	phi       float64
}

// NewBernoulli draws a λ-wise independent Bernoulli(φ) sampler. φ is
// clamped to [0, 1].
func NewBernoulli(rng *rand.Rand, lambda int, phi float64) *Bernoulli {
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	return &Bernoulli{
		h:         NewKWise(rng, lambda),
		threshold: uint64(phi * float64(MersennePrime61)),
		phi:       phi,
	}
}

// Sample reports whether key x is selected. Rate-1 and rate-0 samplers
// short-circuit before the degree-λ Horner evaluation: the streaming
// calibration ψ_i = min(1, ·) pins many levels at φ = 1 (and a zero
// threshold can never select), so the boundary cases are hot paths, not
// corner cases.
func (b *Bernoulli) Sample(x uint64) bool {
	if b.phi >= 1 {
		return true
	}
	if b.threshold == 0 {
		return false
	}
	return b.h.Eval(x) < b.threshold
}

// Phi returns the configured sampling probability.
func (b *Bernoulli) Phi() float64 { return b.phi }

// Fingerprint maps points of [Δ]^d to keys in GF(p) by evaluating the
// Rabin–Karp polynomial Σ coord_i · x^i at a random field element x. Two
// distinct points collide with probability at most d/p ≤ d/2^61 − an error
// folded into the algorithm's 0.1 failure budget. The same construction
// fingerprints grid cells.
type Fingerprint struct {
	base uint64
}

// NewFingerprint draws a random fingerprint function.
func NewFingerprint(rng *rand.Rand) *Fingerprint {
	return &Fingerprint{base: randField(rng)}
}

// reduce64 maps an arbitrary 64-bit value into GF(p) using the Mersenne
// fold 2^61 ≡ 1 (mod p).
func reduce64(x uint64) uint64 {
	v := (x & MersennePrime61) + (x >> 61)
	if v >= MersennePrime61 {
		v -= MersennePrime61
	}
	return v
}

// Key returns the fingerprint of the coordinate vector.
func (f *Fingerprint) Key(coords []int64) uint64 {
	var acc uint64
	for i := len(coords) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, f.base), reduce64(uint64(coords[i])))
	}
	// Offset by 1 so the all-zero vector does not map to key 0, which some
	// sketches reserve as "empty".
	return addMod(acc, 1)
}

// Key2 fingerprints a pair (tag, key) — used to key (cell, point) pairs in
// the two-level sketches of Section 4.
func (f *Fingerprint) Key2(tag, key uint64) uint64 {
	return addMod(addMod(mulMod(reduce64(tag), f.base), reduce64(key)), 1)
}

// KeyTagged returns Key applied to the virtual vector (tag, coords...)
// without materializing it — the allocation-free form of the cell-key
// computation (grid.KeyOf), which prefixes the level tag to the cell
// index vector.
func (f *Fingerprint) KeyTagged(tag int64, coords []int64) uint64 {
	var acc uint64
	for i := len(coords) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, f.base), reduce64(uint64(coords[i])))
	}
	acc = addMod(mulMod(acc, f.base), reduce64(uint64(tag)))
	return addMod(acc, 1)
}

// Mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixer used
// for non-cryptographic key scrambling where limited independence is not
// required (bucket placement inside sketches combines this with KWise).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
