// Lane-batched GF(p) kernels, p = 2^61 − 1.
//
// Every scalar evaluation in this package — Horner polynomial hashing,
// Bernoulli thresholding, Rabin–Karp fingerprinting — is a chain of
// dependent field multiplies: step i cannot start before step i−1
// retires, so a single evaluation runs at the *latency* of mulMod, not
// its throughput. The kernels here evaluate four independent inputs at
// once, interleaving four accumulator chains in one loop (the blocked
// DistRMatrix trick from the assignment engine, applied to field
// arithmetic): the out-of-order core overlaps the four multiply chains
// and the shared coefficient load is paid once per step instead of four
// times.
//
// Everything below is pinned bit-identical to its scalar counterpart —
// addMod/mulMod are exact functions of their inputs, so lane order
// cannot change a single output bit. FuzzEvalLanesMatchScalar and the
// lanes_test.go suite enforce this under -race.
package hashing

// Eval4 computes h(x0), h(x1), h(x2), h(x3) by four interleaved Horner
// chains. Bit-identical to four Eval calls, ~2–3× the throughput on one
// core (BenchmarkKWiseEval */batch).
func (h *KWise) Eval4(x0, x1, x2, x3 uint64) (y0, y1, y2, y3 uint64) {
	if x0 >= MersennePrime61 {
		x0 -= MersennePrime61
	}
	if x1 >= MersennePrime61 {
		x1 -= MersennePrime61
	}
	if x2 >= MersennePrime61 {
		x2 -= MersennePrime61
	}
	if x3 >= MersennePrime61 {
		x3 -= MersennePrime61
	}
	c := h.coeffs
	// Same leading-coefficient seeding as Eval: the first Horner step is
	// skipped, saving one multiply per lane.
	top := c[len(c)-1]
	a0, a1, a2, a3 := top, top, top, top
	for i := len(c) - 2; i >= 0; i-- {
		ci := c[i]
		a0 = addMod(mulMod(a0, x0), ci)
		a1 = addMod(mulMod(a1, x1), ci)
		a2 = addMod(mulMod(a2, x2), ci)
		a3 = addMod(mulMod(a3, x3), ci)
	}
	return a0, a1, a2, a3
}

// EvalN fills dst[i] = h.Eval(keys[i]) for every key, running full
// 4-lane blocks through Eval4 and the ragged tail through the scalar
// path. len(dst) must be at least len(keys).
func (h *KWise) EvalN(dst, keys []uint64) {
	if len(dst) < len(keys) {
		panic("hashing: EvalN dst shorter than keys")
	}
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		dst[i], dst[i+1], dst[i+2], dst[i+3] = h.Eval4(keys[i], keys[i+1], keys[i+2], keys[i+3])
	}
	for ; i < len(keys); i++ {
		dst[i] = h.Eval(keys[i])
	}
}

// SampleN fills dst[i] = b.Sample(keys[i]). The rate-1 and rate-0
// short-circuits of Sample become whole-column fills; everything else
// goes through the 4-lane Horner kernel. len(dst) must be at least
// len(keys).
func (b *Bernoulli) SampleN(dst []bool, keys []uint64) {
	if len(dst) < len(keys) {
		panic("hashing: SampleN dst shorter than keys")
	}
	if b.phi >= 1 {
		for i := range keys {
			dst[i] = true
		}
		return
	}
	if b.threshold == 0 {
		for i := range keys {
			dst[i] = false
		}
		return
	}
	th := b.threshold
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		y0, y1, y2, y3 := b.h.Eval4(keys[i], keys[i+1], keys[i+2], keys[i+3])
		dst[i] = y0 < th
		dst[i+1] = y1 < th
		dst[i+2] = y2 < th
		dst[i+3] = y3 < th
	}
	for ; i < len(keys); i++ {
		dst[i] = b.h.Eval(keys[i]) < th
	}
}

// Key4 fingerprints four coordinate vectors of equal length at once —
// four interleaved Rabin–Karp chains over the shared base point.
// Bit-identical to four Key calls.
func (f *Fingerprint) Key4(p0, p1, p2, p3 []int64) (k0, k1, k2, k3 uint64) {
	n := len(p0)
	if len(p1) != n || len(p2) != n || len(p3) != n {
		panic("hashing: Key4 vectors must have equal length")
	}
	base := f.base
	var a0, a1, a2, a3 uint64
	for i := n - 1; i >= 0; i-- {
		a0 = addMod(mulMod(a0, base), reduce64(uint64(p0[i])))
		a1 = addMod(mulMod(a1, base), reduce64(uint64(p1[i])))
		a2 = addMod(mulMod(a2, base), reduce64(uint64(p2[i])))
		a3 = addMod(mulMod(a3, base), reduce64(uint64(p3[i])))
	}
	return addMod(a0, 1), addMod(a1, 1), addMod(a2, 1), addMod(a3, 1)
}

// KeyN fills dst[t] = f.Key(pts[t]). All vectors must have the same
// length (the batched ingestion pipeline fingerprints fixed-dimension
// points); full 4-lane blocks run through Key4, the tail through Key.
// len(dst) must be at least len(pts).
func (f *Fingerprint) KeyN(dst []uint64, pts [][]int64) {
	if len(dst) < len(pts) {
		panic("hashing: KeyN dst shorter than pts")
	}
	t := 0
	for ; t+4 <= len(pts); t += 4 {
		dst[t], dst[t+1], dst[t+2], dst[t+3] = f.Key4(pts[t], pts[t+1], pts[t+2], pts[t+3])
	}
	for ; t < len(pts); t++ {
		dst[t] = f.Key(pts[t])
	}
}

// KeyTagged4 is KeyTagged over four index vectors of equal length with a
// shared tag — the kernel behind grid.ParentKeys4, which derives the
// cell keys of four stream ops per level in one pass.
func (f *Fingerprint) KeyTagged4(tag int64, i0, i1, i2, i3 []int64) (k0, k1, k2, k3 uint64) {
	n := len(i0)
	if len(i1) != n || len(i2) != n || len(i3) != n {
		panic("hashing: KeyTagged4 vectors must have equal length")
	}
	base := f.base
	var a0, a1, a2, a3 uint64
	for i := n - 1; i >= 0; i-- {
		a0 = addMod(mulMod(a0, base), reduce64(uint64(i0[i])))
		a1 = addMod(mulMod(a1, base), reduce64(uint64(i1[i])))
		a2 = addMod(mulMod(a2, base), reduce64(uint64(i2[i])))
		a3 = addMod(mulMod(a3, base), reduce64(uint64(i3[i])))
	}
	tg := reduce64(uint64(tag))
	a0 = addMod(mulMod(a0, base), tg)
	a1 = addMod(mulMod(a1, base), tg)
	a2 = addMod(mulMod(a2, base), tg)
	a3 = addMod(mulMod(a3, base), tg)
	return addMod(a0, 1), addMod(a1, 1), addMod(a2, 1), addMod(a3, 1)
}
