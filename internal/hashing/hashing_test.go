package hashing

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := new(big.Int).SetUint64(MersennePrime61)
	for i := 0; i < 2000; i++ {
		a := randField(rng)
		b := randField(rng)
		got := mulMod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if want.Uint64() != got {
			t.Fatalf("mulMod(%d,%d) = %d, want %s", a, b, got, want)
		}
	}
}

func TestMulModEdgeCases(t *testing.T) {
	pm1 := MersennePrime61 - 1
	cases := []struct{ a, b uint64 }{
		{0, 0}, {0, pm1}, {1, pm1}, {pm1, pm1}, {pm1, 1},
		{MersennePrime61 / 2, 2}, {MersennePrime61/2 + 1, 2},
	}
	p := new(big.Int).SetUint64(MersennePrime61)
	for _, c := range cases {
		got := mulMod(c.a, c.b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(c.a), new(big.Int).SetUint64(c.b))
		want.Mod(want, p)
		if want.Uint64() != got {
			t.Fatalf("mulMod(%d,%d) = %d, want %s", c.a, c.b, got, want)
		}
	}
}

func TestAddModStaysInField(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		s := addMod(a, b)
		return s < MersennePrime61 && s == (a+b)%MersennePrime61
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKWiseDeterministic(t *testing.T) {
	h1 := NewKWise(rand.New(rand.NewSource(42)), 5)
	h2 := NewKWise(rand.New(rand.NewSource(42)), 5)
	for x := uint64(0); x < 100; x++ {
		if h1.Eval(x) != h2.Eval(x) {
			t.Fatal("same seed must give same hash")
		}
	}
	h3 := NewKWise(rand.New(rand.NewSource(43)), 5)
	same := 0
	for x := uint64(0); x < 100; x++ {
		if h1.Eval(x) == h3.Eval(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds nearly identical: %d/100 equal", same)
	}
}

func TestKWiseDegree(t *testing.T) {
	h := NewKWise(rand.New(rand.NewSource(1)), 7)
	if h.Degree() != 7 {
		t.Fatalf("Degree = %d", h.Degree())
	}
}

func TestKWiseConstantPolynomialIsConstant(t *testing.T) {
	h := &KWise{coeffs: []uint64{12345}}
	for x := uint64(0); x < 50; x++ {
		if h.Eval(x) != 12345 {
			t.Fatal("degree-0 polynomial must be constant")
		}
	}
}

func TestKWiseLinearPolynomial(t *testing.T) {
	// h(x) = 3x + 7 mod p.
	h := &KWise{coeffs: []uint64{7, 3}}
	for x := uint64(0); x < 100; x++ {
		want := (3*x + 7) % MersennePrime61
		if h.Eval(x) != want {
			t.Fatalf("Eval(%d) = %d, want %d", x, h.Eval(x), want)
		}
	}
}

func TestKWiseUniformityRough(t *testing.T) {
	h := NewKWise(rand.New(rand.NewSource(9)), 4)
	const n = 20000
	half := 0
	for x := uint64(0); x < n; x++ {
		if h.Eval(x) < MersennePrime61/2 {
			half++
		}
	}
	if half < n*45/100 || half > n*55/100 {
		t.Fatalf("poor uniformity: %d/%d below median", half, n)
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9} {
		b := NewBernoulli(rand.New(rand.NewSource(int64(phi*1000))), 8, phi)
		const n = 50000
		hits := 0
		for x := uint64(0); x < n; x++ {
			if b.Sample(x) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < phi-0.02 || got > phi+0.02 {
			t.Fatalf("phi=%v: empirical rate %v", phi, got)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	b := NewBernoulli(rand.New(rand.NewSource(1)), 4, 1.0)
	for x := uint64(0); x < 100; x++ {
		if !b.Sample(x) {
			t.Fatal("phi=1 must always sample")
		}
	}
	b0 := NewBernoulli(rand.New(rand.NewSource(1)), 4, 0)
	for x := uint64(0); x < 100; x++ {
		if b0.Sample(x) {
			t.Fatal("phi=0 must never sample")
		}
	}
	bc := NewBernoulli(rand.New(rand.NewSource(1)), 4, 2.5) // clamped
	if bc.Phi() != 1 {
		t.Fatal("phi must clamp to 1")
	}
}

func TestBernoulliPairwiseIndependenceRough(t *testing.T) {
	// For a pairwise-independent Bernoulli(1/2), Pr[h(x)=h(y)=1] ≈ 1/4.
	b := NewBernoulli(rand.New(rand.NewSource(3)), 2, 0.5)
	const n = 300
	both, tot := 0, 0
	for x := uint64(0); x < n; x++ {
		for y := x + 1; y < n; y++ {
			tot++
			if b.Sample(x) && b.Sample(y) {
				both++
			}
		}
	}
	got := float64(both) / float64(tot)
	if got < 0.18 || got > 0.32 {
		t.Fatalf("pairwise joint rate %v, want ≈ 0.25", got)
	}
}

func TestFingerprintNoCollisionsOnSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := NewFingerprint(rng)
	seen := make(map[uint64][]int64)
	for i := 0; i < 50000; i++ {
		coords := []int64{rng.Int63n(1 << 20), rng.Int63n(1 << 20), rng.Int63n(1 << 20)}
		k := f.Key(coords)
		if prev, ok := seen[k]; ok {
			if prev[0] != coords[0] || prev[1] != coords[1] || prev[2] != coords[2] {
				t.Fatalf("fingerprint collision: %v vs %v", prev, coords)
			}
		}
		seen[k] = coords
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	f := NewFingerprint(rand.New(rand.NewSource(5)))
	a := f.Key([]int64{1, 2})
	b := f.Key([]int64{2, 1})
	if a == b {
		t.Fatal("fingerprint must be order sensitive")
	}
	if f.Key([]int64{1, 2}) != a {
		t.Fatal("fingerprint must be deterministic")
	}
}

func TestFingerprintKeysBelowPrime(t *testing.T) {
	f := NewFingerprint(rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		coords := []int64{rng.Int63(), rng.Int63()}
		if k := f.Key(coords); k >= MersennePrime61 {
			t.Fatalf("key %d out of field", k)
		}
		if k2 := f.Key2(uint64(rng.Int63()), uint64(rng.Int63())); k2 >= MersennePrime61 {
			t.Fatalf("key2 %d out of field", k2)
		}
	}
}

func TestKey2DistinguishesTagAndKey(t *testing.T) {
	f := NewFingerprint(rand.New(rand.NewSource(5)))
	if f.Key2(1, 2) == f.Key2(2, 1) {
		t.Fatal("Key2 must distinguish (1,2) from (2,1)")
	}
	if f.Key2(1, 2) == f.Key2(1, 3) {
		t.Fatal("Key2 must distinguish keys")
	}
}

func TestMix64Bijectivity(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for x := uint64(0); x < 10000; x++ {
		v := Mix64(x)
		if seen[v] {
			t.Fatal("Mix64 collision on small range — not a permutation?")
		}
		seen[v] = true
	}
}

func TestBernoulliBoundaryFastPaths(t *testing.T) {
	// Sample short-circuits φ ≥ 1 and φ ≤ 0 before the Horner evaluation;
	// the fast path must agree with the general threshold comparison
	// h(x) < ⌊φ·p⌋ at both boundaries.
	rng := rand.New(rand.NewSource(7))
	one := NewBernoulli(rng, 16, 1)
	zero := NewBernoulli(rng, 16, 0)
	mid := NewBernoulli(rng, 16, 0.5)
	for i := 0; i < 1000; i++ {
		x := uint64(rng.Int63())
		// φ = 1 → threshold = p, and Eval < p always: fast path and
		// general path both select.
		if !one.Sample(x) {
			t.Fatalf("phi=1 must always sample (x=%d)", x)
		}
		if got, want := one.Sample(x), one.h.Eval(x) < one.threshold; got != want {
			t.Fatalf("phi=1 fast path disagrees with general path at x=%d", x)
		}
		// φ = 0 → threshold = 0, nothing is below it.
		if zero.Sample(x) {
			t.Fatalf("phi=0 must never sample (x=%d)", x)
		}
		if got, want := zero.Sample(x), zero.h.Eval(x) < zero.threshold; got != want {
			t.Fatalf("phi=0 fast path disagrees with general path at x=%d", x)
		}
		// Interior φ takes the general path by construction.
		if got, want := mid.Sample(x), mid.h.Eval(x) < mid.threshold; got != want {
			t.Fatalf("phi=0.5 disagrees with threshold comparison at x=%d", x)
		}
	}
	// Clamping: out-of-range φ behaves exactly like the boundary.
	if !NewBernoulli(rng, 4, 2.5).Sample(42) {
		t.Fatal("phi>1 clamps to 1")
	}
	if NewBernoulli(rng, 4, -0.5).Sample(42) {
		t.Fatal("phi<0 clamps to 0")
	}
}

func TestKeyTaggedMatchesKey(t *testing.T) {
	f := NewFingerprint(rand.New(rand.NewSource(11)))
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		tag := rng.Int63n(64) - 1
		coords := make([]int64, 1+rng.Intn(5))
		for j := range coords {
			coords[j] = rng.Int63()
		}
		buf := append([]int64{tag}, coords...)
		if f.KeyTagged(tag, coords) != f.Key(buf) {
			t.Fatalf("KeyTagged(%d, %v) != Key of the materialized vector", tag, coords)
		}
	}
}
