package hashing

// Exported GF(p) arithmetic, p = 2^61 − 1, used by the sparse-recovery
// sketches (internal/sketch) to maintain key and fingerprint sums under
// insertions and deletions.

// AddMod returns a+b mod p for a, b < p.
func AddMod(a, b uint64) uint64 { return addMod(a, b) }

// SubMod returns a−b mod p for a, b < p.
func SubMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + MersennePrime61 - b
}

// MulMod returns a·b mod p for a, b < p.
func MulMod(a, b uint64) uint64 { return mulMod(a, b) }

// PowMod returns a^e mod p by binary exponentiation.
func PowMod(a, e uint64) uint64 {
	var r uint64 = 1
	a = reduce64(a)
	for e > 0 {
		if e&1 == 1 {
			r = mulMod(r, a)
		}
		a = mulMod(a, a)
		e >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a (a ≠ 0 mod p) via
// Fermat's little theorem.
func InvMod(a uint64) uint64 { return PowMod(a, MersennePrime61-2) }

// ToField maps a signed count into GF(p): negative values become p − |v|.
func ToField(v int64) uint64 {
	if v >= 0 {
		return reduce64(uint64(v))
	}
	m := reduce64(uint64(-v))
	if m == 0 {
		return 0
	}
	return MersennePrime61 - m
}

// Reduce64 maps an arbitrary 64-bit value into GF(p).
func Reduce64(x uint64) uint64 { return reduce64(x) }
