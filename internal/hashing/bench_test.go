package hashing

import (
	"math/rand"
	"testing"
)

func BenchmarkKWiseEval(b *testing.B) {
	for _, lambda := range []int{2, 16, 256} {
		b.Run(benchName("lambda", lambda), func(b *testing.B) {
			h := NewKWise(rand.New(rand.NewSource(1)), lambda)
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= h.Eval(uint64(i))
			}
			_ = sink
		})
	}
}

func BenchmarkBernoulliSample(b *testing.B) {
	s := NewBernoulli(rand.New(rand.NewSource(2)), 16, 0.1)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Sample(uint64(i)) {
			n++
		}
	}
	_ = n
}

func BenchmarkFingerprintKey(b *testing.B) {
	f := NewFingerprint(rand.New(rand.NewSource(3)))
	coords := []int64{123456, 654321, 111111, 999999}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		coords[0] = int64(i)
		sink ^= f.Key(coords)
	}
	_ = sink
}

func BenchmarkMulMod(b *testing.B) {
	var sink uint64 = 12345
	for i := 0; i < b.N; i++ {
		sink = mulMod(sink, 0x1234567890ab)
	}
	_ = sink
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
