package hashing

import (
	"math/rand"
	"testing"

	"streambalance/internal/testutil"
)

// benchChunk is the column length the batch benchmarks feed the lane
// kernels per timed step; per-op numbers stay per key/point.
const benchChunk = 512

func BenchmarkKWiseEval(b *testing.B) {
	for _, lambda := range []int{2, 16, 256} {
		h := NewKWise(rand.New(rand.NewSource(1)), lambda)
		b.Run(testutil.BenchName("lambda", lambda)+"/scalar", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= h.Eval(uint64(i))
			}
			_ = sink
		})
		b.Run(testutil.BenchName("lambda", lambda)+"/batch", func(b *testing.B) {
			keys := make([]uint64, benchChunk)
			dst := make([]uint64, benchChunk)
			for i := range keys {
				keys[i] = uint64(i) * 0x9e3779b97f4a7c15
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += benchChunk {
				n := benchChunk
				if rem := b.N - i; rem < n {
					n = rem
				}
				h.EvalN(dst[:n], keys[:n])
			}
		})
	}
}

func BenchmarkBernoulliSample(b *testing.B) {
	s := NewBernoulli(rand.New(rand.NewSource(2)), 16, 0.1)
	b.Run("scalar", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if s.Sample(uint64(i)) {
				n++
			}
		}
		_ = n
	})
	b.Run("batch", func(b *testing.B) {
		keys := make([]uint64, benchChunk)
		dst := make([]bool, benchChunk)
		for i := range keys {
			keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		}
		b.ResetTimer()
		for i := 0; i < b.N; i += benchChunk {
			n := benchChunk
			if rem := b.N - i; rem < n {
				n = rem
			}
			s.SampleN(dst[:n], keys[:n])
		}
	})
}

func BenchmarkFingerprintKey(b *testing.B) {
	f := NewFingerprint(rand.New(rand.NewSource(3)))
	b.Run("scalar", func(b *testing.B) {
		coords := []int64{123456, 654321, 111111, 999999}
		var sink uint64
		for i := 0; i < b.N; i++ {
			coords[0] = int64(i)
			sink ^= f.Key(coords)
		}
		_ = sink
	})
	b.Run("batch", func(b *testing.B) {
		pts := make([][]int64, benchChunk)
		for i := range pts {
			pts[i] = []int64{int64(i), 654321, 111111, 999999}
		}
		dst := make([]uint64, benchChunk)
		b.ResetTimer()
		for i := 0; i < b.N; i += benchChunk {
			n := benchChunk
			if rem := b.N - i; rem < n {
				n = rem
			}
			f.KeyN(dst[:n], pts[:n])
		}
	})
}

func BenchmarkMulMod(b *testing.B) {
	var sink uint64 = 12345
	for i := 0; i < b.N; i++ {
		sink = mulMod(sink, 0x1234567890ab)
	}
	_ = sink
}
