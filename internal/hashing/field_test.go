package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubModInverseOfAddMod(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		return SubMod(AddMod(a, b), b) == a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPowModBasics(t *testing.T) {
	if PowMod(2, 10) != 1024 {
		t.Fatalf("2^10 = %d", PowMod(2, 10))
	}
	if PowMod(7, 0) != 1 {
		t.Fatal("x^0 must be 1")
	}
	if PowMod(0, 5) != 0 {
		t.Fatal("0^5 must be 0")
	}
	// Fermat: a^{p−1} ≡ 1 for a ≠ 0.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := randField(rng)
		if a == 0 {
			continue
		}
		if PowMod(a, MersennePrime61-1) != 1 {
			t.Fatalf("Fermat fails for %d", a)
		}
	}
}

func TestInvModIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := randField(rng)
		if a == 0 {
			continue
		}
		if MulMod(a, InvMod(a)) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for %d", a)
		}
	}
}

func TestToFieldRange(t *testing.T) {
	err := quick.Check(func(v int64) bool {
		f := ToField(v)
		if f >= MersennePrime61 {
			return false
		}
		// ToField(v) + ToField(-v) ≡ 0 unless v overflows negation.
		if v == -v {
			return true
		}
		return AddMod(f, ToField(-v)) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduce64Idempotent(t *testing.T) {
	err := quick.Check(func(x uint64) bool {
		r := Reduce64(x)
		return r < MersennePrime61 && Reduce64(r) == r
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulModDistributes(t *testing.T) {
	// a·(b+c) = a·b + a·c in GF(p).
	err := quick.Check(func(a, b, c uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		c %= MersennePrime61
		return MulMod(a, AddMod(b, c)) == AddMod(MulMod(a, b), MulMod(a, c))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
