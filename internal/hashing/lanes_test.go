package hashing

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestEval4MatchesScalar pins the 4-lane Horner kernel to the scalar
// path across degrees, including the key-reduction branch (x ≥ p).
func TestEval4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []int{1, 2, 3, 4, 16, 64} {
		h := NewKWise(rng, lambda)
		for trial := 0; trial < 64; trial++ {
			var x [4]uint64
			for i := range x {
				x[i] = rng.Uint64() & ((1 << 62) - 1) // exercises x ≥ p too
			}
			y0, y1, y2, y3 := h.Eval4(x[0], x[1], x[2], x[3])
			got := [4]uint64{y0, y1, y2, y3}
			for i := range x {
				if want := h.Eval(x[i]); got[i] != want {
					t.Fatalf("lambda=%d lane %d: Eval4=%d Eval=%d (x=%d)", lambda, i, got[i], want, x[i])
				}
			}
		}
	}
}

// TestEvalNMatchesScalar covers every tail length 0..7 around the
// 4-lane blocking.
func TestEvalNMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewKWise(rng, 8)
	for n := 0; n <= 23; n++ {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() & ((1 << 62) - 1)
		}
		dst := make([]uint64, n)
		h.EvalN(dst, keys)
		for i, k := range keys {
			if want := h.Eval(k); dst[i] != want {
				t.Fatalf("n=%d i=%d: EvalN=%d Eval=%d", n, i, dst[i], want)
			}
		}
	}
}

// TestSampleNMatchesScalar covers the interior rate plus both
// short-circuit boundaries (φ = 0 and φ = 1), which the streaming
// calibration pins at many levels.
func TestSampleNMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, phi := range []float64{0, 1e-9, 0.1, 0.5, 0.999, 1} {
		b := NewBernoulli(rng, 16, phi)
		keys := make([]uint64, 37)
		for i := range keys {
			keys[i] = rng.Uint64() & (MersennePrime61 - 1)
		}
		dst := make([]bool, len(keys))
		// Poison dst so whole-column fills are actually verified.
		for i := range dst {
			dst[i] = i%2 == 0
		}
		b.SampleN(dst, keys)
		for i, k := range keys {
			if want := b.Sample(k); dst[i] != want {
				t.Fatalf("phi=%g i=%d: SampleN=%v Sample=%v", phi, i, dst[i], want)
			}
		}
	}
}

// TestKey4MatchesScalar pins the 4-lane fingerprint, including negative
// coordinates (the cell-index payloads can hold shifted negatives).
func TestKey4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewFingerprint(rng)
	for _, dim := range []int{1, 2, 3, 8} {
		var p [4][]int64
		for i := range p {
			p[i] = make([]int64, dim)
			for j := range p[i] {
				p[i][j] = rng.Int63() - rng.Int63()
			}
		}
		k0, k1, k2, k3 := f.Key4(p[0], p[1], p[2], p[3])
		got := [4]uint64{k0, k1, k2, k3}
		for i := range p {
			if want := f.Key(p[i]); got[i] != want {
				t.Fatalf("dim=%d lane %d: Key4=%d Key=%d", dim, i, got[i], want)
			}
		}
	}
}

// TestKeyNMatchesScalar covers ragged tails of the blocked fingerprint.
func TestKeyNMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFingerprint(rng)
	for n := 0; n <= 11; n++ {
		pts := make([][]int64, n)
		for t := range pts {
			pts[t] = []int64{rng.Int63n(1 << 20), rng.Int63n(1 << 20)}
		}
		dst := make([]uint64, n)
		f.KeyN(dst, pts)
		for t2, p := range pts {
			if want := f.Key(p); dst[t2] != want {
				t.Fatalf("n=%d t=%d: KeyN=%d Key=%d", n, t2, dst[t2], want)
			}
		}
	}
}

// TestKeyTagged4MatchesScalar pins the tagged 4-lane fingerprint (the
// cell-key kernel) to KeyTagged, across tags including the level −1
// encoding (tag 1).
func TestKeyTagged4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewFingerprint(rng)
	for _, tag := range []int64{1, 2, 7, 1 << 40} {
		var idx [4][]int64
		for i := range idx {
			idx[i] = []int64{rng.Int63n(1 << 30), rng.Int63n(1 << 30), rng.Int63n(1 << 30)}
		}
		k0, k1, k2, k3 := f.KeyTagged4(tag, idx[0], idx[1], idx[2], idx[3])
		got := [4]uint64{k0, k1, k2, k3}
		for i := range idx {
			if want := f.KeyTagged(tag, idx[i]); got[i] != want {
				t.Fatalf("tag=%d lane %d: KeyTagged4=%d KeyTagged=%d", tag, i, got[i], want)
			}
		}
	}
}

// TestLaneKernelsPanicOnShapeMismatch pins the defensive checks: ragged
// lane vectors and short dst buffers must panic, not corrupt.
func TestLaneKernelsPanicOnShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewFingerprint(rng)
	h := NewKWise(rng, 4)
	for name, fn := range map[string]func(){
		"Key4":       func() { f.Key4([]int64{1, 2}, []int64{1}, []int64{1, 2}, []int64{1, 2}) },
		"KeyTagged4": func() { f.KeyTagged4(2, []int64{1}, []int64{1, 2}, []int64{1}, []int64{1}) },
		"EvalN":      func() { h.EvalN(make([]uint64, 2), make([]uint64, 3)) },
		"KeyN":       func() { f.KeyN(make([]uint64, 1), [][]int64{{1}, {2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzEvalLanesMatchScalar drives the lane kernels with arbitrary
// coefficient seeds and key bytes and checks bit-identity with the
// scalar paths — the equivalence contract of the batched hot path.
func FuzzEvalLanesMatchScalar(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(42), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Add(int64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		rng := rand.New(rand.NewSource(seed))
		lambda := 1 + int(uint(seed)%9)
		h := NewKWise(rng, lambda)
		b := NewBernoulli(rng, lambda, float64(uint16(seed))/65535)
		fp := NewFingerprint(rng)

		keys := make([]uint64, 0, len(raw)/8+1)
		for i := 0; i+8 <= len(raw); i += 8 {
			keys = append(keys, binary.LittleEndian.Uint64(raw[i:]))
		}
		if len(raw)%8 != 0 {
			keys = append(keys, uint64(raw[len(raw)-1]))
		}

		dst := make([]uint64, len(keys))
		h.EvalN(dst, keys)
		sel := make([]bool, len(keys))
		b.SampleN(sel, keys)
		pts := make([][]int64, len(keys))
		for i, k := range keys {
			pts[i] = []int64{int64(k), int64(k >> 7), -int64(k & 0xffff)}
		}
		fkeys := make([]uint64, len(pts))
		fp.KeyN(fkeys, pts)

		for i, k := range keys {
			if want := h.Eval(k); dst[i] != want {
				t.Fatalf("EvalN[%d]=%d, scalar %d", i, dst[i], want)
			}
			if want := b.Sample(k); sel[i] != want {
				t.Fatalf("SampleN[%d]=%v, scalar %v", i, sel[i], want)
			}
			if want := fp.Key(pts[i]); fkeys[i] != want {
				t.Fatalf("KeyN[%d]=%d, scalar %d", i, fkeys[i], want)
			}
		}
	})
}
