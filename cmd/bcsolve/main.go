// Command bcsolve solves capacitated k-clustering on a weighted coreset
// read from stdin or a file (the format cmd/bcstream emits: "w x,y,..."
// per line) and prints the centers with their assigned weights.
//
// Usage:
//
//	bcgen -n 100000 | bcstream -k 4 | bcsolve -k 4 -t 27500
//
// -t is the per-center capacity on the ORIGINAL point scale (the coreset
// weights sum to ≈ n, so capacities transfer directly); 0 means
// 1.1 × (total weight)/k. The solver grants itself the (1+η) slack the
// coreset guarantee allows (default η = 0.25, flag -eta).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"streambalance"
	"streambalance/internal/streamfmt"
)

func main() {
	k := flag.Int("k", 4, "number of clusters")
	t := flag.Float64("t", 0, "per-center capacity (0 = 1.1·W/k)")
	eta := flag.Float64("eta", 0.25, "capacity slack granted to the coreset side")
	r := flag.Float64("r", 2, "lr exponent (1 = k-median, 2 = k-means)")
	seed := flag.Int64("seed", 1, "random seed")
	in := flag.String("in", "-", "coreset file (- = stdin)")
	flag.Parse()

	var src *os.File
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	ws, err := streamfmt.ReadWeighted(src, 0)
	if err != nil {
		fatal(err)
	}
	if len(ws) == 0 {
		fatal(fmt.Errorf("no coreset points read"))
	}

	var total float64
	for _, w := range ws {
		total += w.W
	}
	if *t == 0 {
		*t = 1.1 * total / float64(*k)
	}

	sol, ok := streambalance.SolveCapacitated(ws, *k, *t*(1+*eta),
		streambalance.SolveOptions{R: *r, Seed: *seed})
	if !ok {
		fatal(fmt.Errorf("infeasible: k·t(1+η) = %.0f < total weight %.0f", float64(*k)**t*(1+*eta), total))
	}

	fmt.Printf("# capacitated %d-clustering (r=%g) of %d coreset points, weight %.1f\n",
		*k, *r, len(ws), total)
	fmt.Printf("# capacity %.1f per center (×%.2f slack), solution cost %.6g\n", *t, 1+*eta, sol.Cost)
	for j, z := range sol.Centers {
		cells := make([]string, len(z))
		for i, c := range z {
			cells[i] = strconv.FormatInt(c, 10)
		}
		fmt.Printf("center %d  %s  weight %.1f (%.0f%% of capacity)\n",
			j, strings.Join(cells, ","), sol.Sizes[j], 100*sol.Sizes[j]/(*t))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcsolve:", err)
	os.Exit(1)
}
