// Command bcstream maintains a capacitated-clustering coreset over a
// dynamic stream read from stdin or a file (the format cmd/bcgen emits:
// "+ x,y,..." inserts, "- x,y,..." deletes) and writes the weighted
// coreset to stdout as "w x,y,..." lines, with a summary on stderr.
//
// By default the full guess enumeration of Theorem 4.5 runs (one sketch
// ensemble per guess o); pass -guess to run a single-guess instance when
// an estimate of the optimal clustering cost is known.
//
// Telemetry (README "Observability"): -debug-addr serves /metrics,
// /debug/pprof/ and /debug/vars while the stream runs; -metrics dumps a
// final counter snapshot to stderr after the coreset is written.
//
// Usage:
//
//	bcgen -n 10000 -pattern churn | bcstream -k 4 -delta 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streambalance"
	"streambalance/internal/obs"
	"streambalance/internal/streamfmt"
)

func main() {
	k := flag.Int("k", 4, "number of clusters")
	dim := flag.Int("d", 2, "dimension")
	delta := flag.Int64("delta", 1<<12, "coordinate range [1,delta]")
	r := flag.Float64("r", 2, "lr exponent (1 = k-median, 2 = k-means)")
	guess := flag.Float64("guess", 0, "fixed guess o of the optimal cost (0 = enumerate all guesses)")
	seed := flag.Int64("seed", 1, "random seed")
	in := flag.String("in", "-", "input stream file (- = stdin)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/pprof/ and /debug/vars on this address (e.g. :6060) while running")
	metricsDump := flag.String("metrics", "", "dump a final telemetry snapshot to stderr: text (Prometheus exposition) or json")
	hold := flag.Duration("hold", 0, "with -debug-addr, keep the debug server up this long after the run (0 = exit immediately)")
	flag.Parse()

	switch *metricsDump {
	case "", "text", "json":
	default:
		fatal(fmt.Errorf("-metrics must be text or json, got %q", *metricsDump))
	}
	if *metricsDump != "" {
		obs.Enable()
		obs.Trace.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bcstream: debug server on http://%s (/metrics, /debug/pprof/, /debug/vars, /debug/spans)\n", addr)
	}

	var src *os.File
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	params := streambalance.Params{K: *k, R: *r, Seed: *seed}
	cfg := streambalance.StreamConfig{Dim: *dim, Delta: *delta, Params: params}

	type sink interface {
		Insert(streambalance.Point)
		Delete(streambalance.Point)
		Bytes() int64
		Result() (*streambalance.Coreset, error)
	}
	var s sink
	var err error
	if *guess > 0 {
		cfg.O = *guess
		s, err = streambalance.NewStream(cfg)
	} else {
		cfg.CellSparsity = 512
		cfg.PointSparsity = 2048
		s, err = streambalance.NewAutoStream(cfg, 8)
	}
	if err != nil {
		fatal(err)
	}

	var updates int64
	err = streamfmt.ReadUpdates(src, *dim, func(u streamfmt.Update) error {
		if u.Delete {
			s.Delete(u.P)
		} else {
			s.Insert(u.P)
		}
		updates++
		return nil
	})
	if err != nil {
		fatal(err)
	}

	cs, err := s.Result()
	if err != nil {
		fatal(err)
	}
	if err := streamfmt.WriteWeighted(os.Stdout, cs.Points); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"bcstream: %d updates, coreset %d points (total weight %.1f), sketch state %d bytes, accepted o=%.3g\n",
		updates, cs.Size(), cs.TotalWeight(), s.Bytes(), cs.O)

	switch *metricsDump {
	case "text":
		if err := obs.Default.WriteProm(os.Stderr); err != nil {
			fatal(err)
		}
	case "json":
		if err := obs.Default.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *debugAddr != "" && *hold > 0 {
		fmt.Fprintf(os.Stderr, "bcstream: holding debug server for %s\n", *hold)
		time.Sleep(*hold)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcstream:", err)
	os.Exit(1)
}
