// Command bcinspect materializes the survivors of a dynamic stream file
// (cmd/bcgen format), builds a coreset offline, and prints the per-level
// construction diagnostics — the view to consult when tuning sketch
// budgets or sampling rates (which levels hold the mass, where φ
// saturates at 1, which parts were excluded).
//
// Usage:
//
//	bcgen -n 50000 -pattern churn | bcinspect -k 4
package main

import (
	"flag"
	"fmt"
	"os"

	"streambalance"
	"streambalance/internal/streamfmt"
)

func main() {
	k := flag.Int("k", 4, "number of clusters")
	dim := flag.Int("d", 2, "dimension")
	r := flag.Float64("r", 2, "lr exponent")
	spp := flag.Float64("spp", 0, "SamplesPerPart override (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	in := flag.String("in", "-", "input stream file (- = stdin)")
	flag.Parse()

	var src *os.File
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	// Materialize survivors (bcinspect is an offline diagnostic; the
	// streaming path never stores the points).
	counts := map[string]int{}
	order := map[string]streambalance.Point{}
	err := streamfmt.ReadUpdates(src, *dim, func(u streamfmt.Update) error {
		key := u.P.String()
		if u.Delete {
			counts[key]--
		} else {
			counts[key]++
			order[key] = u.P
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	var survivors []streambalance.Point
	for key, c := range counts {
		if c < 0 {
			fatal(fmt.Errorf("stream deletes %s more often than it inserts it", key))
		}
		for i := 0; i < c; i++ {
			survivors = append(survivors, order[key])
		}
	}
	if len(survivors) == 0 {
		fatal(fmt.Errorf("no surviving points"))
	}

	cs, err := streambalance.BuildCoreset(survivors, streambalance.Params{
		K: *k, R: *r, Seed: *seed, SamplesPerPart: *spp,
	})
	if err != nil {
		fatal(err)
	}
	diag, err := cs.Diagnostics()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("survivors: %d   coreset: %d points, total weight %.1f\n\n",
		len(survivors), cs.Size(), cs.TotalWeight())
	fmt.Print(diag.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcinspect:", err)
	os.Exit(1)
}
