// Command bcgen generates synthetic workloads as dynamic-stream files for
// cmd/bcstream: one update per line, "+ x,y,..." for an insertion and
// "- x,y,..." for a deletion.
//
// Patterns:
//
//	insert  — insertions only (a static point set)
//	churn   — the mixture interleaved with uniform junk that is later deleted
//	retract — the mixture plus a ghost cluster that appears and then vanishes
//
// Usage:
//
//	bcgen -n 10000 -k 4 -pattern churn > stream.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"streambalance/internal/geo"
	"streambalance/internal/streamfmt"
	"streambalance/internal/workload"
)

func main() {
	n := flag.Int("n", 10000, "number of surviving points")
	d := flag.Int("d", 2, "dimension")
	delta := flag.Int64("delta", 1<<12, "coordinate range [1,delta]")
	k := flag.Int("k", 4, "mixture components")
	spread := flag.Float64("spread", 0, "component stddev (0 = delta/270)")
	skew := flag.Float64("skew", 2, "component size skew (1 = balanced)")
	noise := flag.Float64("noise", 0.05, "uniform noise fraction")
	pattern := flag.String("pattern", "insert", "insert | churn | retract")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *spread == 0 {
		*spread = float64(*delta) / 270
		if *spread < 3 {
			*spread = 3
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	m := workload.Mixture{N: *n, D: *d, Delta: *delta, K: *k, Spread: *spread, Skew: *skew, NoiseFrac: *noise}
	base, _ := m.Generate(rng)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	emit := func(op byte, p geo.Point) {
		fmt.Fprintln(w, streamfmt.FormatUpdate(streamfmt.Update{P: p, Delete: op == '-'}))
	}

	switch *pattern {
	case "insert":
		for _, p := range base {
			emit('+', p)
		}
	case "churn":
		junk := workload.UniformBox(rng, *n, *d, *delta)
		for i := range base {
			emit('+', base[i])
			emit('+', junk[i])
		}
		for _, i := range rng.Perm(len(junk)) {
			emit('-', junk[i])
		}
	case "retract":
		ghost := workload.UniformBox(rng, *n/2, *d, *delta)
		for _, p := range base {
			emit('+', p)
		}
		for _, p := range ghost {
			emit('+', p)
		}
		for _, p := range ghost {
			emit('-', p)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
}
