// Benchmark regression gate: `bcbench -diff old.json new.json` compares
// two BENCH_*.json records metric by metric and exits non-zero when a
// gated metric regressed beyond the tolerance.
//
// The record schema is free-form (each bench writes whatever map it
// likes), so the gate classifies metrics by key shape instead of a
// hand-maintained list:
//
//	higher-is-better: keys containing "per_sec" or "speedup",
//	lower-is-better:  keys containing "ns_per", ending in "_ns" or
//	                  "_bits", or "sec_*" wall-clock seconds,
//	informational:    everything else (config echoes, seeds, ratios) —
//	                  reported when changed, never gated.
//
// A gated metric regresses when its better-direction ratio drops below
// the tolerance: new/old < tol for higher-is-better, old/new < tol for
// lower-is-better. The default tol 0.6 trips on a 2x regression
// (ratio 0.5) while riding out the ±20-30% wall-clock noise a shared CI
// host produces. The "meta" block is never compared.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// flattenBench walks a decoded BENCH record and collects every numeric
// leaf under a dotted path ("hash.0.ns_per_op_scalar"). Array elements
// flatten under their index. "meta" subtrees are dropped wholesale.
func flattenBench(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			if k == "meta" {
				continue
			}
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenBench(p, sub, out)
		}
	case []any:
		for i, sub := range x {
			flattenBench(fmt.Sprintf("%s.%d", prefix, i), sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

// metricDirection classifies a flattened key: +1 higher-is-better,
// -1 lower-is-better, 0 informational (never gated).
func metricDirection(key string) int {
	last := key
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		last = key[i+1:]
	}
	switch {
	case strings.Contains(key, "per_sec"), strings.Contains(key, "speedup"):
		return 1
	case strings.Contains(key, "ns_per"),
		strings.HasSuffix(key, "_ns"),
		strings.HasSuffix(key, "_bits"),
		strings.HasPrefix(last, "sec_"):
		return -1
	default:
		return 0
	}
}

func loadBench(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec any
	if err := json.Unmarshal(buf, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flattenBench("", rec, out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics found", path)
	}
	return out, nil
}

// diffBench compares two flattened records and writes a report. It
// returns the number of gated metrics that regressed beyond tol.
func diffBench(w io.Writer, oldM, newM map[string]float64, tol float64) int {
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Fprintf(w, "  %-52s %14s %14s %8s  %s\n", "metric", "old", "new", "ratio", "status")
	for _, k := range keys {
		dir := metricDirection(k)
		ov := oldM[k]
		nv, ok := newM[k]
		if !ok {
			if dir != 0 {
				fmt.Fprintf(w, "  %-52s %14.4g %14s %8s  missing in new\n", k, ov, "-", "-")
			}
			continue
		}
		if dir == 0 {
			continue
		}
		// better-direction ratio: >1 improved, <1 regressed.
		var ratio float64
		switch {
		case ov == 0 && nv == 0:
			ratio = 1
		case ov == 0 || nv == 0:
			ratio = 0
		case dir > 0:
			ratio = nv / ov
		default:
			ratio = ov / nv
		}
		status := "ok"
		if ratio < tol {
			status = "REGRESSION"
			regressions++
		} else if ratio > 1/tol {
			status = "improved"
		}
		fmt.Fprintf(w, "  %-52s %14.4g %14.4g %8.3f  %s\n", k, ov, nv, ratio, status)
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok && metricDirection(k) != 0 {
			fmt.Fprintf(w, "  %-52s %14s %14.4g %8s  new metric\n", k, "-", newM[k], "-")
		}
	}
	return regressions
}

// runDiff is the -diff entry point: load, compare, report. Returns the
// regression count.
func runDiff(w io.Writer, oldPath, newPath string, tol float64) (int, error) {
	if tol <= 0 || tol >= 1 {
		return 0, fmt.Errorf("-tol must be in (0, 1), got %g", tol)
	}
	oldM, err := loadBench(oldPath)
	if err != nil {
		return 0, err
	}
	newM, err := loadBench(newPath)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "bench diff  %s -> %s  (tol %.2f: gated metrics fail below %.2fx of old)\n",
		oldPath, newPath, tol, tol)
	regs := diffBench(w, oldM, newM, tol)
	if regs > 0 {
		fmt.Fprintf(w, "  %d regression(s) beyond tolerance\n", regs)
	} else {
		fmt.Fprintln(w, "  no regressions beyond tolerance")
	}
	return regs, nil
}
