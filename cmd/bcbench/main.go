// Command bcbench runs the experiment suite of DESIGN.md §3 and prints
// one table per experiment — the rows EXPERIMENTS.md records.
//
// Usage:
//
//	bcbench [-scale 1.0] [-seed 1] [-only E1,E5] [-bench] [-outdir DIR]
//	bcbench -diff [-tol 0.6] old.json new.json
//
// -scale multiplies every instance size (use 2–4 for slower, tighter
// runs); -only restricts to a comma-separated subset of experiment ids.
// -diff compares two BENCH_*.json records and exits non-zero when a
// throughput or latency metric regressed beyond the tolerance (see
// diff.go) — the CI benchmark gate. -outdir redirects the -bench
// record files so a fresh run can be diffed against the committed ones.
// -bench skips the experiment suite and instead measures the field-kernel
// and decoder hot paths (scalar vs 4-lane batched hashing, reference vs
// worklist peeling decode), dynamic-stream
// ingest throughput (batched shared-key pipeline vs per-op replay),
// coreset-extraction throughput (cold parallel decode vs serial vs
// epoch-cache warm), capacitated-assignment throughput (per-call
// fresh-graph vs arena-reuse vs warm-started capacity sweeps) and
// distributed-protocol throughput (serial reference vs the pipelined
// driver at 1/4/8 workers, plus measured wire bytes vs the closed-form
// accounting) and sharded multicore ingest (the worker×GOMAXPROCS grid
// of the Sharded front-end, re-run at each setting of the -procs
// matrix), writing the numbers to BENCH_hash.json, BENCH_ingest.json,
// BENCH_extract.json, BENCH_assign.json, BENCH_dist.json and
// BENCH_shard.json for trajectory tracking.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"streambalance"
	"streambalance/internal/assign"
	"streambalance/internal/coreset"
	"streambalance/internal/dist"
	"streambalance/internal/experiments"
	"streambalance/internal/geo"
	"streambalance/internal/hashing"
	"streambalance/internal/metrics"
	"streambalance/internal/obs"
	"streambalance/internal/sketch"
	"streambalance/internal/solve"
	"streambalance/internal/stream"
	"streambalance/internal/workload"
)

// runMeta identifies the run that produced a BENCH_*.json: without the
// machine and revision a throughput number cannot be compared against a
// past one. The git revision comes from the binary's embedded build info
// (present when built inside a work tree with VCS stamping; "unknown"
// under -buildvcs=false or `go run` from a tarball).
//
// procsMatrix lists every GOMAXPROCS setting the bench exercised (nil
// means just the current one). The meta block refuses to stamp a run as
// "parallel" unless it both ran with GOMAXPROCS > 1 AND had more than
// one CPU to run on — the historical trajectory files were all recorded
// in a 1-CPU container, where worker-pool speedups read ~1.0× no matter
// what the code does, and a consumer comparing files must be able to
// tell those runs apart from real multicore ones.
// buildRevision and buildDirty are stamped by the Makefile bench/bcbench
// targets via -ldflags "-X main.buildRevision=... -X main.buildDirty=...".
// `go build` embeds vcs.* build settings only for package main of the
// containing module root, and test binaries / direct `go run` invocations
// often report nothing — the explicit stamp makes BENCH_*.json meta
// blocks identify their commit regardless of how the binary was built,
// with ReadBuildInfo retained as the fallback.
var (
	buildRevision string
	buildDirty    string
)

// benchOutDir is the -outdir flag: where writeBench places BENCH_*.json
// records ("" = current directory, the committed trajectory files).
var benchOutDir string

// writeBench records one bench result, shared by every bench function.
func writeBench(name string, rec map[string]any) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := name
	if benchOutDir != "" {
		path = filepath.Join(benchOutDir, name)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// gcMeta reads the effective GOGC percent and memory limit once — both
// shift allocation-heavy numbers enough that comparing records across
// different GC settings is meaningless, so the meta block pins them.
// SetGCPercent(-1) is the only way to read GOGC; the value is restored
// immediately and cached so the probe runs at most once per process.
var (
	gcMetaOnce sync.Once
	gcPercent  int
	gcMemLimit int64
)

func gcMeta() (int, int64) {
	gcMetaOnce.Do(func() {
		gcPercent = debug.SetGCPercent(-1)
		debug.SetGCPercent(gcPercent)
		gcMemLimit = debug.SetMemoryLimit(-1)
	})
	return gcPercent, gcMemLimit
}

func runMeta(procsMatrix []int, wallStart time.Time) map[string]any {
	rev, dirty := "unknown", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if buildRevision != "" {
		rev = buildRevision
	}
	if buildDirty != "" {
		dirty = buildDirty == "true"
	}
	if len(procsMatrix) == 0 {
		procsMatrix = []int{runtime.GOMAXPROCS(0)}
	}
	maxProcs := 0
	for _, p := range procsMatrix {
		if p > maxProcs {
			maxProcs = p
		}
	}
	parallel := maxProcs > 1 && runtime.NumCPU() > 1
	gogc, memLimit := gcMeta()
	m := map[string]any{
		"git_revision":     rev,
		"git_dirty":        dirty,
		"go_version":       runtime.Version(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"num_cpu":          runtime.NumCPU(),
		"goos":             runtime.GOOS,
		"goarch":           runtime.GOARCH,
		"gogc":             gogc,
		"gomemlimit_bytes": memLimit,
		"timestamp":        time.Now().UTC().Format(time.RFC3339),
		"wall_clock_sec":   time.Since(wallStart).Seconds(),
		"procs_matrix":     procsMatrix,
		"parallel":         parallel,
	}
	if !parallel {
		m["parallel_caveat"] = "recorded with a single effective CPU (GOMAXPROCS or NumCPU = 1); " +
			"concurrency speedups in this file read ~1.0x and reflect algorithmic wins only"
	}
	return m
}

// benchHash measures the GF(2^61−1) kernel and decoder hot paths: the
// scalar per-key field routines against their 4-lane batched
// counterparts (KWise.Eval vs EvalN, Bernoulli.Sample vs SampleN,
// Fingerprint.Key vs KeyN), and the round-based reference peeling
// decoder against the worklist decoder with a reused arena. Scalar and
// batched passes are timed round-robin over the same columns (the
// lane kernels are bit-identical to the scalar routines, so both sides
// do exactly the same arithmetic). Prints a short report and records it
// as BENCH_hash.json.
func benchHash(seed int64) error {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	const cols = 1 << 15
	const lambda = 16
	keys := make([]uint64, cols)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	dst := make([]uint64, cols)
	sel := make([]bool, cols)
	pts := make([][]int64, cols)
	for i := range pts {
		pts[i] = []int64{rng.Int63n(1 << 20), rng.Int63n(1 << 20), rng.Int63n(1 << 20), rng.Int63n(1 << 20)}
	}
	kw := hashing.NewKWise(rng, lambda)
	bern := hashing.NewBernoulli(rng, lambda, 0.1)
	fp := hashing.NewFingerprint(rng)

	// timeBoth runs the two closures round-robin so machine-noise phases
	// spread over both sides, returning ns/op over rounds×cols ops each.
	timeBoth := func(rounds int, a, b func()) (nsA, nsB float64) {
		var ea, eb time.Duration
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			a()
			ea += time.Since(t0)
			t0 = time.Now()
			b()
			eb += time.Since(t0)
		}
		ops := float64(rounds) * cols
		return ea.Seconds() * 1e9 / ops, eb.Seconds() * 1e9 / ops
	}

	var sink uint64
	evalS, evalB := timeBoth(30,
		func() {
			for _, k := range keys {
				sink ^= kw.Eval(k)
			}
		},
		func() { kw.EvalN(dst, keys) })
	sampS, sampB := timeBoth(30,
		func() {
			for i, k := range keys {
				sel[i] = bern.Sample(k)
			}
		},
		func() { bern.SampleN(sel, keys) })
	keyS, keyB := timeBoth(10,
		func() {
			for _, p := range pts {
				sink ^= fp.Key(p)
			}
		},
		func() { fp.KeyN(dst, pts) })
	_ = sink

	kernel := func(name string, s, b float64) map[string]any {
		return map[string]any{
			"kernel":            name,
			"ns_per_op_scalar":  s,
			"ns_per_op_batched": b,
			"speedup":           s / b,
		}
	}
	hashRows := []map[string]any{
		kernel("kwise_eval_lambda16", evalS, evalB),
		kernel("bernoulli_sample_lambda16", sampS, sampB),
		kernel("fingerprint_key_dim4", keyS, keyB),
	}

	// Decode suite: sketches loaded to exactly their sparsity budget, the
	// regime every successful extraction decode runs in.
	var decodeRows []map[string]any
	arena := sketch.NewDecodeArena()
	for _, s := range []int{64, 1024} {
		srng := rand.New(rand.NewSource(seed + int64(s)))
		sr := sketch.NewSparseRecovery(srng, s, 0.01, 2)
		for i := 0; i < s; i++ {
			sr.Update(uint64(srng.Int63()), []int64{int64(i), 2}, 1)
		}
		rounds := 4096 / s
		var eRef, eWork time.Duration
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if _, ok := sr.DecodeReference(); !ok {
				return fmt.Errorf("reference decode failed at s=%d", s)
			}
			eRef += time.Since(t0)
			t0 = time.Now()
			if _, ok := sr.DecodeWith(arena); !ok {
				return fmt.Errorf("worklist decode failed at s=%d", s)
			}
			eWork += time.Since(t0)
		}
		refNS := eRef.Seconds() * 1e9 / float64(rounds)
		workNS := eWork.Seconds() * 1e9 / float64(rounds)
		decodeRows = append(decodeRows, map[string]any{
			"s":                      s,
			"ns_per_decode_ref":      refNS,
			"ns_per_decode_worklist": workNS,
			"speedup":                refNS / workNS,
		})
	}

	rec := map[string]any{
		"meta":       runMeta(nil, start),
		"bench":      "hash_decode",
		"column_len": cols,
		"lambda":     lambda,
		"seed":       seed,
		"hash":       hashRows,
		"decode":     decodeRows,
	}
	fmt.Printf("hash kernels   (column=%d keys, lambda=%d, GOMAXPROCS=%d)\n", cols, lambda, runtime.GOMAXPROCS(0))
	for _, r := range hashRows {
		fmt.Printf("  %-26s: %7.2f ns/op scalar  %7.2f ns/op batched  (%.2fx)\n",
			r["kernel"], r["ns_per_op_scalar"], r["ns_per_op_batched"], r["speedup"])
	}
	for _, r := range decodeRows {
		fmt.Printf("  decode s=%-4d             : %9.0f ns ref  %9.0f ns worklist  (%.2fx)\n",
			r["s"], r["ns_per_decode_ref"], r["ns_per_decode_worklist"], r["speedup"])
	}
	return writeBench("BENCH_hash.json", rec)
}

// benchIngest measures ingest ops/sec of the guess-enumeration ensemble
// through the batched pipeline and the serial per-op path, prints a short
// report and records it as BENCH_ingest.json.
func benchIngest(scale float64, seed int64) error {
	start := time.Now()
	n := int(16384 * scale)
	if n < 1024 {
		n = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: 4, Spread: 20, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	cfg := streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12,
		Params:       streambalance.Params{K: 4, Seed: seed},
		CellSparsity: 512, PointSparsity: 2048,
	}
	newAuto := func() *streambalance.AutoStream {
		a, err := streambalance.NewAutoStream(cfg, 4)
		if err != nil {
			panic(err)
		}
		return a
	}

	serial := newAuto()
	t0 := time.Now()
	for _, p := range ps {
		serial.Insert(p)
	}
	perOpSec := float64(n) / time.Since(t0).Seconds()

	ops := make([]streambalance.Op, n)
	for i, p := range ps {
		ops[i] = streambalance.Op{P: p}
	}
	const batchSize = 4096
	applyBatched := func(ops []streambalance.Op) float64 {
		a := newAuto()
		t0 := time.Now()
		for i := 0; i < len(ops); i += batchSize {
			end := i + batchSize
			if end > len(ops) {
				end = len(ops)
			}
			a.Apply(ops[i:end])
		}
		return float64(len(ops)) / time.Since(t0).Seconds()
	}

	// A/B over the key-coalescing stage (bit-identical paths; the knob
	// only changes the write schedule).
	batchedSec := applyBatched(ops)
	prevCo := stream.SetCoalesce(false)
	uncoalescedSec := applyBatched(ops)
	stream.SetCoalesce(prevCo)

	// Duplicate-heavy variant: every op replayed 8× back to back — the
	// coarse-level shape where coalescing collapses whole batches.
	dup8 := make([]streambalance.Op, 0, 8*len(ops))
	for _, op := range ops {
		for r := 0; r < 8; r++ {
			dup8 = append(dup8, op)
		}
	}
	dup8Sec := applyBatched(dup8)
	prevCo = stream.SetCoalesce(false)
	dup8UncoalescedSec := applyBatched(dup8)
	stream.SetCoalesce(prevCo)

	// Coalesce ratios, measured in a separate untimed pass so the timed
	// runs above never pay for telemetry.
	obs.Default.Reset()
	obs.Enable()
	applyBatched(ops)
	ratios := map[string]float64{}
	for _, sub := range []string{"h", "hp", "hat"} {
		ratios[sub] = obs.Default.Ratio(
			`stream_coalesce_ops_in_total{substream="`+sub+`"}`,
			`stream_coalesce_keys_out_total{substream="`+sub+`"}`)
	}
	obs.Disable()

	scatterSec, orderedSec := benchSketchUpdateN(seed)

	rec := map[string]any{
		"meta":                            runMeta(nil, start),
		"bench":                           "stream_ingest",
		"n_ops":                           n,
		"guesses":                         len(serial.Guesses()),
		"gomaxprocs":                      runtime.GOMAXPROCS(0),
		"seed":                            seed,
		"ops_per_sec_per_op":              perOpSec,
		"ops_per_sec_batched":             batchedSec,
		"ops_per_sec_batched_uncoalesced": uncoalescedSec,
		"ops_per_sec_dup8":                dup8Sec,
		"ops_per_sec_dup8_uncoalesced":    dup8UncoalescedSec,
		"speedup":                         batchedSec / perOpSec,
		"coalesce_speedup":                batchedSec / uncoalescedSec,
		"coalesce_ratio":                  ratios,
		"sketch_updates_per_sec_scatter":  scatterSec,
		"sketch_updates_per_sec_ordered":  orderedSec,
	}
	fmt.Printf("stream ingest  (n=%d ops, %d guesses, GOMAXPROCS=%d)\n", n, len(serial.Guesses()), runtime.GOMAXPROCS(0))
	fmt.Printf("  per-op            : %12.0f ops/sec\n", perOpSec)
	fmt.Printf("  batched           : %12.0f ops/sec  (%.2fx)\n", batchedSec, batchedSec/perOpSec)
	fmt.Printf("  batched, no-coal  : %12.0f ops/sec  (coalesce %.2fx)\n", uncoalescedSec, batchedSec/uncoalescedSec)
	fmt.Printf("  dup8              : %12.0f ops/sec  (vs %.0f uncoalesced, %.2fx)\n",
		dup8Sec, dup8UncoalescedSec, dup8Sec/dup8UncoalescedSec)
	fmt.Printf("  coalesce ratio    : h=%.1f hp=%.1f hat=%.1f (ops in / keys out)\n",
		ratios["h"], ratios["hp"], ratios["hat"])
	fmt.Printf("  sketch UpdateN    : %12.0f upd/sec scatter, %.0f ordered (%.2fx)\n",
		scatterSec, orderedSec, orderedSec/scatterSec)
	return writeBench("BENCH_ingest.json", rec)
}

// benchSketchUpdateN isolates the sketch-level write schedule: an
// ensemble of s-sparse recovery sketches (s=2048, payload dim 2 — the
// point-sketch shape of the ingest bench config, whose ~650 KB slabs
// dominate the ensemble's slab bytes) fed 4096-row batches through
// UpdateN with bucket-ordered application off (4-lane scatter) and on.
// The batch round-robins across the ensemble so every slab visit starts
// cold, like the real ingest fan-out over ~25 guess instances × levels ×
// substreams — hammering one hot slab would hide exactly the misses the
// ordered schedule removes. Both schedules are bit-identical; the delta
// is pure slab cache locality. Returns updates/sec for (scatter,
// ordered).
func benchSketchUpdateN(seed int64) (scatterSec, orderedSec float64) {
	const s, pd, n, sketches, rounds = 2048, 2, 4096, 64, 3
	rng := rand.New(rand.NewSource(seed))
	ens := make([]*sketch.SparseRecovery, sketches)
	for i := range ens {
		ens[i] = sketch.NewSparseRecovery(rng, s, 0.01, pd)
	}
	keys := make([]uint64, n)
	payload := make([]int64, n*pd)
	deltas := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		deltas[i] = 1
		payload[i*pd] = rng.Int63n(1 << 12)
		payload[i*pd+1] = rng.Int63n(1 << 12)
	}
	run := func(ordered bool) float64 {
		prev := sketch.SetBucketOrder(ordered)
		defer sketch.SetBucketOrder(prev)
		for _, sr := range ens {
			sr.Reset()
		}
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for _, sr := range ens {
				sr.UpdateN(keys, payload, deltas)
			}
		}
		return float64(n*sketches*rounds) / time.Since(t0).Seconds()
	}
	run(false) // warm the page tables and scratch allocations
	scatterSec = run(false)
	orderedSec = run(true)
	return
}

// benchExtract measures coreset-extraction throughput over the guess
// ensemble: cold (decode caches dropped before every extraction, decoded
// across the worker pool), serial cold (single-worker lazy baseline),
// warm (epoch-cache hits only) and incremental (alternating small-batch
// ingest and extraction: the query splices the dirty levels onto their
// cached decode bases instead of re-peeling the whole ensemble). Prints
// a short report and records it as BENCH_extract.json.
func benchExtract(scale float64, seed int64) error {
	start := time.Now()
	n := int(4096 * scale)
	if n < 1024 {
		n = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: 4, Spread: 20, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	a, err := streambalance.NewAutoStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12,
		Params:       streambalance.Params{K: 4, Seed: seed},
		CellSparsity: 512, PointSparsity: 4 * 4096,
	}, 4)
	if err != nil {
		return err
	}
	ops := make([]streambalance.Op, n)
	for i, p := range ps {
		ops[i] = streambalance.Op{P: p}
	}
	a.Apply(ops)
	if _, err := a.Result(); err != nil {
		return fmt.Errorf("extraction failed on the bench ensemble: %w", err)
	}

	// The modes are timed round-robin — one cold, one serial, one warm
	// round per pass — so machine-noise phases (GC, CPU steal on shared
	// hosts) are spread over all three instead of biasing whichever block
	// ran during them. At GOMAXPROCS=1 cold and serial run the same code
	// path and should measure about the same.
	const rounds = 10
	modes := []struct {
		name string
		prep func() error // untimed setup for the round
		f    func() error // the timed extraction
	}{
		{"cold", nil, func() error {
			a.DropDecodeCache()
			_, err := a.Result()
			return err
		}},
		{"serial", nil, func() error {
			a.DropDecodeCache()
			_, err := a.ResultSerial()
			return err
		}},
		// The serial round just dropped the caches; re-warm untimed so the
		// timed call measures pure cache-hit extraction.
		{"warm", func() error { _, err := a.Result(); return err }, func() error {
			_, err := a.Result()
			return err
		}},
	}
	elapsed := make([]time.Duration, len(modes))
	for i := 0; i < rounds; i++ {
		for m, mode := range modes {
			if mode.prep != nil {
				if err := mode.prep(); err != nil {
					return fmt.Errorf("%s extraction: %w", mode.name, err)
				}
			}
			t0 := time.Now()
			if err := mode.f(); err != nil {
				return fmt.Errorf("%s extraction: %w", mode.name, err)
			}
			elapsed[m] += time.Since(t0)
		}
	}
	coldSec := rounds / elapsed[0].Seconds()
	serialSec := rounds / elapsed[1].Seconds()
	warmSec := rounds / elapsed[2].Seconds()

	// Mixed ingest + query — the serving pattern the differential decode
	// targets. Each round re-ingests a small batch of the original ops
	// (same keys, so the sketch support never grows and every level stays
	// decodable), samples how many decode units the batch dirtied, then
	// times only the extraction, which splices the dirty levels onto
	// their cached bases instead of re-peeling the ensemble. The pre-warm
	// between rounds is untimed: a serving deployment keeps the ensemble
	// warm between queries.
	const incrBatch = 16
	const incrRounds = 30
	a.WarmDecodeCache()
	var incrElapsed time.Duration
	var dirtySum, totalSum int
	for i := 0; i < incrRounds; i++ {
		lo := (i * incrBatch) % n
		hi := lo + incrBatch
		if hi > n {
			hi = n
		}
		a.Apply(ops[lo:hi])
		d, tot := a.DirtyLevels()
		dirtySum += d
		totalSum += tot
		// Collect the churn of the untimed scaffolding (batch ingest +
		// pre-warm) before starting the clock: the ensemble's live heap is
		// large at this geometry, so a concurrent GC cycle triggered by
		// scaffolding garbage spans several rounds and its mark assists
		// would otherwise tax allocations inside the ~15 ms timed query,
		// inflating it 3-4×.
		runtime.GC()
		t0 := time.Now()
		if _, err := a.Result(); err != nil {
			return fmt.Errorf("incremental extraction: %w", err)
		}
		incrElapsed += time.Since(t0)
		a.WarmDecodeCache()
	}
	incrSec := incrRounds / incrElapsed.Seconds()
	dirtyRatio := float64(dirtySum) / float64(totalSum)

	rec := map[string]any{
		"meta":                     runMeta(nil, start),
		"bench":                    "stream_extract",
		"n_points":                 n,
		"guesses":                  len(a.Guesses()),
		"gomaxprocs":               runtime.GOMAXPROCS(0),
		"seed":                     seed,
		"extracts_per_sec_cold":    coldSec,
		"extracts_per_sec_serial":  serialSec,
		"extracts_per_sec_warm":    warmSec,
		"warm_speedup_over_cold":   warmSec / coldSec,
		"cold_speedup_over_serial": coldSec / serialSec,

		"extracts_per_sec_incremental":  incrSec,
		"incremental_speedup_over_cold": incrSec / coldSec,
		"incremental_batch_ops":         incrBatch,
		"dirty_level_ratio":             dirtyRatio,
	}
	fmt.Printf("stream extract (n=%d points, %d guesses, GOMAXPROCS=%d)\n", n, len(a.Guesses()), runtime.GOMAXPROCS(0))
	fmt.Printf("  cold    : %12.2f extracts/sec  (%.2fx over serial)\n", coldSec, coldSec/serialSec)
	fmt.Printf("  serial  : %12.2f extracts/sec\n", serialSec)
	fmt.Printf("  warm    : %12.2f extracts/sec  (%.2fx over cold)\n", warmSec, warmSec/coldSec)
	fmt.Printf("  incr    : %12.2f extracts/sec  (%.2fx over cold; batch=%d ops, %.4f dirty-level ratio)\n",
		incrSec, incrSec/coldSec, incrBatch, dirtyRatio)
	return writeBench("BENCH_extract.json", rec)
}

// benchAssign measures capacitated-assignment throughput on the
// E1-shaped workload — one fixed point set, many center sets, an
// ascending capacity sweep per center set — in three modes: fresh (the
// historical per-call FractionalCost, graph and distances rebuilt every
// solve), arena (one assign.Solver reused cold: skeleton and distance
// block amortized per center set) and warm (the same engine with
// warm-started sweeps). Prints a short report and records it as
// BENCH_assign.json. Modes are timed round-robin like benchExtract so
// machine-noise phases spread over all three.
func benchAssign(scale float64, seed int64) error {
	start := time.Now()
	n := int(512 * scale)
	if n < 64 {
		n = 64
	}
	const k = 4
	const centerSets = 25
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: k, Spread: 20, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	ws := geo.UnitWeights(ps)
	zs := make([][]geo.Point, centerSets)
	for i := range zs {
		zs[i] = solve.SeedKMeansPP(rng, ws, k, 2)
	}
	base := geo.TotalWeight(ws) / k
	caps := []float64{1.02 * base, 1.05 * base, 1.1 * base, 1.2 * base, 1.4 * base, 1.8 * base, 2.5 * base, 4 * base}
	solves := centerSets * len(caps)

	run := func(f func(Z []geo.Point, t float64) float64) float64 {
		var sink float64
		for _, Z := range zs {
			for _, t := range caps {
				sink += f(Z, t)
			}
		}
		return sink
	}
	arena := assign.NewSolver()
	arena.SetWarmStart(false)
	arena.Bind(ws, 2)
	warm := assign.NewSolver()
	warm.Bind(ws, 2)
	modes := []struct {
		name string
		f    func() float64
	}{
		{"fresh", func() float64 {
			return run(func(Z []geo.Point, t float64) float64 {
				c, _, _ := assign.FractionalCost(ws, Z, t, 2)
				return c
			})
		}},
		{"arena", func() float64 {
			var sink float64
			for _, Z := range zs {
				arena.SetCenters(Z)
				for _, t := range caps {
					c, _ := arena.Fractional(t)
					sink += c
				}
			}
			return sink
		}},
		{"warm", func() float64 {
			var sink float64
			for _, Z := range zs {
				warm.SetCenters(Z)
				for _, t := range caps {
					c, _ := warm.Fractional(t)
					sink += c
				}
			}
			return sink
		}},
	}

	const rounds = 3
	elapsed := make([]time.Duration, len(modes))
	for i := 0; i < rounds; i++ {
		for m, mode := range modes {
			t0 := time.Now()
			mode.f()
			elapsed[m] += time.Since(t0)
		}
	}
	freshSec := float64(rounds*solves) / elapsed[0].Seconds()
	arenaSec := float64(rounds*solves) / elapsed[1].Seconds()
	warmSec := float64(rounds*solves) / elapsed[2].Seconds()

	rec := map[string]any{
		"meta":                  runMeta(nil, start),
		"bench":                 "assign_sweep",
		"n_points":              n,
		"k":                     k,
		"center_sets":           centerSets,
		"caps_per_set":          len(caps),
		"gomaxprocs":            runtime.GOMAXPROCS(0),
		"seed":                  seed,
		"solves_per_sec_fresh":  freshSec,
		"solves_per_sec_arena":  arenaSec,
		"solves_per_sec_warm":   warmSec,
		"arena_speedup":         arenaSec / freshSec,
		"warm_speedup":          warmSec / freshSec,
		"warm_speedup_vs_arena": warmSec / arenaSec,
	}
	fmt.Printf("assign sweep   (n=%d points, k=%d, %d center sets × %d caps, GOMAXPROCS=%d)\n",
		n, k, centerSets, len(caps), runtime.GOMAXPROCS(0))
	fmt.Printf("  fresh   : %12.2f solves/sec\n", freshSec)
	fmt.Printf("  arena   : %12.2f solves/sec  (%.2fx over fresh)\n", arenaSec, arenaSec/freshSec)
	fmt.Printf("  warm    : %12.2f solves/sec  (%.2fx over fresh)\n", warmSec, warmSec/freshSec)
	return writeBench("BENCH_assign.json", rec)
}

// benchDist measures distributed-protocol wall-clock on a fixed 8-machine
// split: the serial reference driver vs the pipelined concurrent driver at
// 1, 4 and 8 workers, all over the default in-memory transport. It also
// records the measured wire bits against the closed-form formula
// accounting. Modes are timed round-robin like benchExtract; every run is
// checked to produce the serial run's exact bit count (the drivers are
// bit-identical by contract). Prints a short report and records it as
// BENCH_dist.json.
func benchDist(scale float64, seed int64) error {
	start := time.Now()
	n := int(16384 * scale)
	if n < 2048 {
		n = 2048
	}
	const k, s = 4, 8
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: k, Spread: 20, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	machines := make([]geo.PointSet, s)
	for i, p := range ps {
		machines[i%s] = append(machines[i%s], p)
	}
	cfg := dist.Config{Dim: 2, Delta: 1 << 12, Params: coreset.Params{K: k, Seed: seed}}

	ref, err := dist.RunSerial(machines, cfg)
	if err != nil {
		return err
	}
	modes := []struct {
		name string
		f    func() (*dist.Report, error)
	}{
		{"serial", func() (*dist.Report, error) { return dist.RunSerial(machines, cfg) }},
		{"workers1", func() (*dist.Report, error) {
			c := cfg
			c.Workers = 1
			return dist.Run(machines, c)
		}},
		{"workers4", func() (*dist.Report, error) {
			c := cfg
			c.Workers = 4
			return dist.Run(machines, c)
		}},
		{"workers8", func() (*dist.Report, error) {
			c := cfg
			c.Workers = 8
			return dist.Run(machines, c)
		}},
	}
	const rounds = 5
	elapsed := make([]time.Duration, len(modes))
	for i := 0; i < rounds; i++ {
		for m, mode := range modes {
			t0 := time.Now()
			rep, err := mode.f()
			elapsed[m] += time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s protocol run: %w", mode.name, err)
			}
			if rep.Bits != ref.Bits || rep.Coreset.Size() != ref.Coreset.Size() {
				return fmt.Errorf("%s protocol run diverged from the serial reference", mode.name)
			}
		}
	}
	secs := make([]float64, len(modes))
	for m := range modes {
		secs[m] = elapsed[m].Seconds() / rounds
	}

	rec := map[string]any{
		"meta":              runMeta(nil, start),
		"bench":             "dist_protocol",
		"n_points":          n,
		"machines":          s,
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"seed":              seed,
		"wire_bits":         ref.Bits,
		"formula_bits":      ref.FormulaBits,
		"wire_over_formula": float64(ref.Bits) / float64(ref.FormulaBits),
		"sec_serial":        secs[0],
		"sec_workers1":      secs[1],
		"sec_workers4":      secs[2],
		"sec_workers8":      secs[3],
		"speedup_workers4":  secs[0] / secs[2],
		"speedup_workers8":  secs[0] / secs[3],
	}
	fmt.Printf("dist protocol  (n=%d points, s=%d machines, GOMAXPROCS=%d)\n", n, s, runtime.GOMAXPROCS(0))
	fmt.Printf("  wire    : %12d bits  (%.3fx of the %d-bit formula accounting)\n",
		ref.Bits, float64(ref.Bits)/float64(ref.FormulaBits), ref.FormulaBits)
	fmt.Printf("  serial  : %12.1f ms\n", secs[0]*1e3)
	for m := 1; m < len(modes); m++ {
		fmt.Printf("  %-8s: %12.1f ms  (%.2fx over serial)\n", modes[m].name, secs[m]*1e3, secs[0]/secs[m])
	}
	return writeBench("BENCH_dist.json", rec)
}

// benchShard measures the sharded multicore ingest front-end: for every
// GOMAXPROCS setting in the -procs matrix it re-runs the ingest ladder —
// the unsharded batched pipeline as the baseline, then the Sharded
// front-end at 1/2/4/8 workers — and records the worker×proc ops/sec
// grid in BENCH_shard.json. Every configuration is digest-checked
// against a serial reference: sharded ingest followed by merge must be
// bit-identical to serial Apply of the same ops (the timed window covers
// Apply+Flush; the merge runs inside the untimed digest check, its
// latency captured by the stream_shard_merge_ns histogram).
func benchShard(scale float64, seed int64, procs []int) error {
	start := time.Now()
	n := int(16384 * scale)
	if n < 1024 {
		n = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	ps, _ := workload.Mixture{N: n, D: 2, Delta: 1 << 12, K: 4, Spread: 20, Skew: 2, NoiseFrac: 0.05}.Generate(rng)
	cfg := streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 12,
		Params:       streambalance.Params{K: 4, Seed: seed},
		CellSparsity: 512, PointSparsity: 2048,
	}
	ops := make([]streambalance.Op, n)
	for i, p := range ps {
		ops[i] = streambalance.Op{P: p}
	}
	const batchSize = 4096
	newAuto := func() *streambalance.AutoStream {
		a, err := streambalance.NewAutoStream(cfg, 4)
		if err != nil {
			panic(err)
		}
		return a
	}
	applyBatches := func(apply func([]streambalance.Op)) {
		for i := 0; i < n; i += batchSize {
			end := i + batchSize
			if end > n {
				end = n
			}
			apply(ops[i:end])
		}
	}

	// Serial reference digest, computed once: every grid cell must
	// recombine to exactly this state.
	ref := newAuto()
	applyBatches(ref.Apply)
	refDigest := ref.StateDigest()
	guesses := len(ref.Guesses())
	ref = nil

	workersLadder := []int{1, 2, 4, 8}
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	fmt.Printf("sharded ingest (n=%d ops, %d guesses, NumCPU=%d)\n", n, guesses, runtime.NumCPU())
	type cell struct{ procs, workers int }
	grid := make(map[cell]float64)
	var rows []map[string]any
	for _, p := range procs {
		runtime.GOMAXPROCS(p)

		batched := newAuto()
		t0 := time.Now()
		applyBatches(batched.Apply)
		batchedSec := float64(n) / time.Since(t0).Seconds()
		if batched.StateDigest() != refDigest {
			return fmt.Errorf("procs=%d: batched pipeline diverged from the serial reference", p)
		}
		batched = nil

		shardCols := map[string]any{}
		for _, w := range workersLadder {
			sh := streambalance.ShardAutoStream(newAuto(), w)
			t0 := time.Now()
			applyBatches(sh.Apply)
			sh.Flush()
			sec := float64(n) / time.Since(t0).Seconds()
			if sh.StateDigest() != refDigest {
				return fmt.Errorf("procs=%d workers=%d: sharded ingest diverged from the serial reference", p, w)
			}
			sh.Close()
			grid[cell{p, w}] = sec
			shardCols[fmt.Sprintf("%d", w)] = sec
		}
		rows = append(rows, map[string]any{
			"procs":                 p,
			"ops_per_sec_batched":   batchedSec,
			"ops_per_sec_by_shards": shardCols,
		})
		fmt.Printf("  procs=%d  batched: %9.0f ops/sec   shards:", p, batchedSec)
		for _, w := range workersLadder {
			fmt.Printf("  %dw %9.0f", w, grid[cell{p, w}])
		}
		fmt.Println()
	}
	runtime.GOMAXPROCS(origProcs)

	maxP := procs[len(procs)-1]
	baseline := grid[cell{procs[0], 1}]
	best := grid[cell{maxP, workersLadder[len(workersLadder)-1]}]
	rec := map[string]any{
		"meta":    runMeta(procs, start),
		"bench":   "stream_shard",
		"n_ops":   n,
		"guesses": guesses,
		"seed":    seed,
		"workers": workersLadder,
		"procs":   procs,
		"grid":    rows,
		"aggregate_speedup_8w_maxprocs_over_1w_minprocs": best / baseline,
	}
	fmt.Printf("  aggregate: %dw@%dprocs %.2fx over 1w@%dprocs\n", workersLadder[len(workersLadder)-1], maxP, best/baseline, procs[0])
	return writeBench("BENCH_shard.json", rec)
}

// parseProcs parses the -procs flag: a comma-separated ascending list of
// GOMAXPROCS settings for the shard matrix.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var p int
		if _, err := fmt.Sscanf(f, "%d", &p); err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", f)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, errors.New("-procs is empty")
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			return nil, fmt.Errorf("-procs must be ascending, got %v", out)
		}
	}
	return out, nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "instance size multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
	bench := flag.Bool("bench", false, "measure ingest and extraction throughput, writing BENCH_ingest.json and BENCH_extract.json")
	procs := flag.String("procs", "1,2,4,8", "comma-separated ascending GOMAXPROCS matrix for the sharded-ingest bench")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/pprof/ and /debug/vars on this address (e.g. :6060) while running")
	metricsDump := flag.String("metrics", "", "dump a final telemetry snapshot to stderr: text (Prometheus exposition) or json")
	diffMode := flag.Bool("diff", false, "compare two BENCH_*.json records (bcbench -diff old.json new.json) and exit 1 on regression")
	tol := flag.Float64("tol", 0.6, "regression tolerance for -diff: gated metrics fail below this fraction of the old value")
	outdir := flag.String("outdir", "", "directory for -bench BENCH_*.json output (default: current directory)")
	flag.Parse()
	benchOutDir = *outdir

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bcbench -diff [-tol 0.6] old.json new.json")
			os.Exit(2)
		}
		regs, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *tol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regs > 0 {
			os.Exit(1)
		}
		return
	}

	switch *metricsDump {
	case "", "text", "json":
	default:
		fmt.Fprintf(os.Stderr, "-metrics must be text or json, got %q\n", *metricsDump)
		os.Exit(2)
	}
	if *metricsDump != "" {
		obs.Enable()
		obs.Trace.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bcbench: debug server on http://%s (/metrics, /debug/pprof/, /debug/vars, /debug/spans)\n", addr)
	}
	dumpMetrics := func() {
		var err error
		switch *metricsDump {
		case "text":
			err = obs.Default.WriteProm(os.Stderr)
		case "json":
			err = obs.Default.WriteJSON(os.Stderr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *bench {
		if err := benchHash(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchIngest(*scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchExtract(*scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchAssign(*scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchDist(*scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		procsMatrix, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := benchShard(*scale, *seed, procsMatrix); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dumpMetrics()
		return
	}

	cfg := experiments.Cfg{Seed: *seed, Scale: *scale}
	runners := map[string]func(experiments.Cfg) *metrics.Table{
		"E1":  experiments.E1CoresetQuality,
		"E2":  experiments.E2CoresetSize,
		"E3":  experiments.E3StreamingSpace,
		"E4":  experiments.E4Deletions,
		"E5":  experiments.E5Distributed,
		"E6":  experiments.E6EndToEnd,
		"E7":  experiments.E7Baselines,
		"E8":  experiments.E8BuildTime,
		"E9":  experiments.E9Separation,
		"E10": experiments.E10Ablation,
		"E11": experiments.E11HighDim,
		"E12": experiments.E12GuessSelection,
		"E13": experiments.E13AssignmentCounting,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

	var ids []string
	if *only == "" {
		ids = order
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if runners[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(order, ","))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("streambalance experiment suite  (scale=%.2g seed=%d)\n\n", *scale, *seed)
	for _, id := range ids {
		t0 := time.Now()
		tb := runners[id](cfg)
		tb.Render(os.Stdout)
		fmt.Printf("   [%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	dumpMetrics()
}
