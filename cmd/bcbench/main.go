// Command bcbench runs the experiment suite of DESIGN.md §3 and prints
// one table per experiment — the rows EXPERIMENTS.md records.
//
// Usage:
//
//	bcbench [-scale 1.0] [-seed 1] [-only E1,E5]
//
// -scale multiplies every instance size (use 2–4 for slower, tighter
// runs); -only restricts to a comma-separated subset of experiment ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streambalance/internal/experiments"
	"streambalance/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "instance size multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
	flag.Parse()

	cfg := experiments.Cfg{Seed: *seed, Scale: *scale}
	runners := map[string]func(experiments.Cfg) *metrics.Table{
		"E1":  experiments.E1CoresetQuality,
		"E2":  experiments.E2CoresetSize,
		"E3":  experiments.E3StreamingSpace,
		"E4":  experiments.E4Deletions,
		"E5":  experiments.E5Distributed,
		"E6":  experiments.E6EndToEnd,
		"E7":  experiments.E7Baselines,
		"E8":  experiments.E8BuildTime,
		"E9":  experiments.E9Separation,
		"E10": experiments.E10Ablation,
		"E11": experiments.E11HighDim,
		"E12": experiments.E12GuessSelection,
		"E13": experiments.E13AssignmentCounting,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

	var ids []string
	if *only == "" {
		ids = order
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if runners[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(order, ","))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("streambalance experiment suite  (scale=%.2g seed=%d)\n\n", *scale, *seed)
	for _, id := range ids {
		t0 := time.Now()
		tb := runners[id](cfg)
		tb.Render(os.Stdout)
		fmt.Printf("   [%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
