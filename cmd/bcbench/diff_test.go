package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchFixture is a miniature BENCH record with every key-shape class
// the gate knows: higher-is-better rates and speedups (top-level and
// nested under arrays), lower-is-better latencies and bit counts, and
// informational config echoes that must never gate.
const benchFixture = `{
  "meta": {"git_revision": "abc", "wall_clock_sec": 12.5},
  "bench": "fixture",
  "n_ops": 16384,
  "seed": 1,
  "ops_per_sec_batched": 100000,
  "speedup": 4.0,
  "sec_serial": 0.5,
  "wire_bits": 81920,
  "hash": [
    {"kernel": "kwise", "ns_per_op_scalar": 40.0, "ns_per_op_batched": 10.0}
  ]
}`

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffNoRegressionOnIdenticalRecords(t *testing.T) {
	old := writeFixture(t, "old.json", benchFixture)
	nw := writeFixture(t, "new.json", benchFixture)
	var sb strings.Builder
	regs, err := runDiff(&sb, old, nw, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Fatalf("identical records reported %d regressions:\n%s", regs, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Fatalf("missing all-clear line:\n%s", sb.String())
	}
}

// TestDiffDetectsTwofoldRegression: the acceptance scenario — a
// synthetic 2x regression on each metric class must trip the default
// tolerance, whichever direction "worse" is for that key.
func TestDiffDetectsTwofoldRegression(t *testing.T) {
	old := writeFixture(t, "old.json", benchFixture)
	regressed := strings.NewReplacer(
		`"ops_per_sec_batched": 100000`, `"ops_per_sec_batched": 50000`, // rate halved
		`"sec_serial": 0.5`, `"sec_serial": 1.0`, // wall-clock doubled
		`"ns_per_op_scalar": 40.0`, `"ns_per_op_scalar": 80.0`, // latency doubled
	).Replace(benchFixture)
	nw := writeFixture(t, "new.json", regressed)

	var sb strings.Builder
	regs, err := runDiff(&sb, old, nw, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 3 {
		t.Fatalf("want 3 regressions, got %d:\n%s", regs, sb.String())
	}
	out := sb.String()
	for _, key := range []string{"ops_per_sec_batched", "sec_serial", "hash.0.ns_per_op_scalar"} {
		line := findLine(out, key)
		if !strings.Contains(line, "REGRESSION") {
			t.Fatalf("%s not flagged:\n%s", key, out)
		}
	}
	// The untouched metrics stay ok; config echoes never appear as gated.
	if l := findLine(out, "speedup"); !strings.Contains(l, "ok") {
		t.Fatalf("unchanged speedup flagged:\n%s", out)
	}
	if l := findLine(out, "n_ops"); l != "" {
		t.Fatalf("informational key n_ops gated:\n%s", out)
	}
}

func TestDiffToleranceBoundary(t *testing.T) {
	old := writeFixture(t, "old.json", benchFixture)
	// 30% rate drop: ratio 0.7 — inside the default 0.6 tolerance, outside
	// a strict 0.8 one.
	nw := writeFixture(t, "new.json", strings.Replace(benchFixture,
		`"ops_per_sec_batched": 100000`, `"ops_per_sec_batched": 70000`, 1))

	if regs, err := runDiff(&strings.Builder{}, old, nw, 0.6); err != nil || regs != 0 {
		t.Fatalf("tol 0.6: regs=%d err=%v, want 0 regressions", regs, err)
	}
	if regs, err := runDiff(&strings.Builder{}, old, nw, 0.8); err != nil || regs != 1 {
		t.Fatalf("tol 0.8: regs=%d err=%v, want 1 regression", regs, err)
	}
	if _, err := runDiff(&strings.Builder{}, old, nw, 1.5); err == nil {
		t.Fatal("tol outside (0,1) accepted")
	}
}

// TestDiffSchemaDrift: metrics present on only one side are reported but
// never counted as regressions — record schemas evolve across commits.
func TestDiffSchemaDrift(t *testing.T) {
	old := writeFixture(t, "old.json", benchFixture)
	drifted := strings.Replace(benchFixture,
		`"ops_per_sec_batched": 100000`, `"ops_per_sec_renamed": 100000`, 1)
	nw := writeFixture(t, "new.json", drifted)

	var sb strings.Builder
	regs, err := runDiff(&sb, old, nw, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Fatalf("schema drift counted as regression:\n%s", sb.String())
	}
	out := sb.String()
	if l := findLine(out, "ops_per_sec_batched"); !strings.Contains(l, "missing in new") {
		t.Fatalf("dropped metric not reported:\n%s", out)
	}
	if l := findLine(out, "ops_per_sec_renamed"); !strings.Contains(l, "new metric") {
		t.Fatalf("added metric not reported:\n%s", out)
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"ops_per_sec_batched":            1,
		"extracts_per_sec_cold":          1,
		"speedup_workers8":               1,
		"grid.0.ops_per_sec_by_shards.4": 1,
		"hash.0.ns_per_op_scalar":        -1,
		"decode.1.ns_per_decode_ref":     -1,
		"sec_serial":                     -1,
		"wire_bits":                      -1,
		"n_ops":                          0,
		"seed":                           0,
		"coalesce_ratio.h":               0,
		"dirty_level_ratio":              0,
	}
	for key, want := range cases {
		if got := metricDirection(key); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", key, got, want)
		}
	}
}

// findLine returns the first report line containing key, "" if none.
func findLine(out, key string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, key) {
			return l
		}
	}
	return ""
}
