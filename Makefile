.PHONY: check check-assign test bench vet

# Full correctness gate: vet, build everything, then the whole test
# suite under the race detector — the batched-ingest, parallel-extraction
# and assignment-engine equivalence tests only mean something with -race
# on. CI runs check-assign first (fast fail), then this.
check:
	go vet ./...
	go build ./...
	go test -race ./...

# Fast assignment-engine equivalence pass: pins the graph arena, the
# blocked distance kernel, warm-started sweeps and the parallel solve
# loops to the fresh-graph baseline, under -race. Runs in seconds; CI
# runs it before the full suite so engine regressions fail fast.
check-assign:
	go test -short -race -run 'Assign|DistRMatrix' ./internal/flow ./internal/geo ./internal/assign ./internal/experiments

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# Ingest-, extraction- and assignment-throughput benchmarks
# (EXPERIMENTS.md records the reference runs).
bench:
	go test -run xxx -bench 'Ingest|Extract|AssignSweep' -benchmem ./internal/stream/ .
