.PHONY: check check-assign check-dist check-hash check-obs check-shard test bench vet

# Full correctness gate: vet, build everything, then the whole test
# suite under the race detector — the batched-ingest, parallel-extraction
# and assignment-engine equivalence tests only mean something with -race
# on. CI runs check-assign first (fast fail), then this.
check:
	go vet ./...
	go build ./...
	go test -race ./...

# Fast assignment-engine equivalence pass: pins the graph arena, the
# blocked distance kernel, warm-started sweeps and the parallel solve
# loops to the fresh-graph baseline, under -race. Runs in seconds; CI
# runs it before the full suite so engine regressions fail fast.
check-assign:
	go test -short -race -run 'Assign|DistRMatrix' ./internal/flow ./internal/geo ./internal/assign ./internal/experiments

# Fast distributed-protocol pass: vet the protocol packages and pin the
# wire codec, both transports, the pipelined driver's bit-identity with
# the serial reference and the seeding optimization, under -race. Runs in
# seconds; CI runs it before the full suite so protocol regressions fail
# fast.
check-dist:
	go vet ./internal/dist ./internal/streamfmt ./internal/solve
	go test -short -race ./internal/dist ./internal/streamfmt
	go test -short -race -run 'SeedKMeansPP|EstimateOPT' ./internal/solve

# Fast telemetry pass: vet the obs package, run its concurrency tests
# under -race, then gate the disabled-path overhead without -race (race
# instrumentation inflates atomic loads by design, so the ns/op budget
# only means something in a plain build; see bench_test.go). CI runs it
# before the full suite so a hot-path telemetry regression fails fast.
check-obs:
	go vet ./internal/obs
	go test -race ./internal/obs
	go test -run DisabledOverheadBudget ./internal/obs
	go test -run xxx -bench 'Disabled' -benchtime 100000x ./internal/obs

# Fast field-kernel/decoder pass: vet the hashing/sketch/grid layers, pin
# the 4-lane batched kernels (Eval4/EvalN, SampleN, Key4/KeyN,
# ParentKeys4, UpdateN) and the worklist peeling decoder to their scalar
# references bit-for-bit under -race, then replay the lane-kernel and
# decoder fuzz seed corpora. Runs in seconds; CI runs it before the full
# suite so hot-path kernel regressions fail fast.
check-hash:
	go vet ./internal/hashing ./internal/sketch ./internal/grid
	go test -race -run 'MatchesScalar|MatchesReference|Worklist|InvCountField|DecodeArena|DecodeResults|PureAt|LaneKernels' ./internal/hashing ./internal/sketch ./internal/grid
	go test -race -run 'FuzzEvalLanesMatchScalar' ./internal/hashing
	go test -race -run 'FuzzDecodeWorklistMatchesReference' ./internal/sketch

# Fast sharded-ingest pass: vet the sharding packages, pin the Sharded
# front-end's bit-identity with serial Apply (every shard count, the
# quiet-drain cache ride, the merge-drop counter and sketch Reset) under
# -race, then replay the FuzzShardMerge seed corpus. Runs in a couple of
# minutes; CI runs it before the full suite so sharding regressions fail
# fast.
check-shard:
	go vet ./internal/stream ./internal/sketch
	go test -race -run 'Sharded|ShardMerge|StoringCacheStats|StoringMergeDrop|StoringReset' ./internal/stream ./internal/sketch
	go test -race -run FuzzShardMerge ./internal/stream

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# Ingest-, extraction- and assignment-throughput benchmarks
# (EXPERIMENTS.md records the reference runs).
bench:
	go test -run xxx -bench 'Ingest|Extract|AssignSweep' -benchmem ./internal/stream/ .
