.PHONY: check check-assign check-coalesce check-dist check-hash check-incr check-obs check-shard test bench bench-diff bench-json bcbench profile-extract profile-ingest vet

# Revision stamp for benchmark binaries: BENCH_*.json meta blocks must
# identify the commit that produced them, and ReadBuildInfo's vcs.*
# settings are absent from test binaries and some build modes — so the
# bench/bcbench targets pass the revision explicitly via -ldflags -X
# (cmd/bcbench falls back to ReadBuildInfo when built without these).
GIT_REV   := $(shell git -C $(CURDIR) rev-parse HEAD 2>/dev/null || echo unknown)
GIT_DIRTY := $(shell test -n "$$(git -C $(CURDIR) status --porcelain 2>/dev/null)" && echo true || echo false)
STAMP_LDFLAGS := -X main.buildRevision=$(GIT_REV) -X main.buildDirty=$(GIT_DIRTY)

# Full correctness gate: vet, build everything, then the whole test
# suite under the race detector — the batched-ingest, parallel-extraction
# and assignment-engine equivalence tests only mean something with -race
# on. CI runs check-assign first (fast fail), then this.
check: check-coalesce check-incr
	go vet ./...
	go build ./...
	go test -race ./...

# Fast assignment-engine equivalence pass: pins the graph arena, the
# blocked distance kernel, warm-started sweeps and the parallel solve
# loops to the fresh-graph baseline, under -race. Runs in seconds; CI
# runs it before the full suite so engine regressions fail fast.
check-assign:
	go test -short -race -run 'Assign|DistRMatrix' ./internal/flow ./internal/geo ./internal/assign ./internal/experiments

# Fast ingest-coalescing pass: vet the ingest stack, pin the key
# coalescer and the bucket-ordered UpdateN/UpdateScaledN kernels to the
# per-op scatter path bit-for-bit under -race (including the
# duplicate-heavy batch shapes and the columnar CellIndexN), then replay
# the FuzzCoalescedIngestMatchesSerial seed corpus. Runs in a couple of
# minutes; CI runs it before the full suite so ingest-write-path
# regressions fail fast.
check-coalesce:
	go vet ./internal/stream ./internal/sketch ./internal/grid
	go test -race -run 'Coalesce|Scaled|Ordered|CellIndexN|DuplicateHeavy' ./internal/stream ./internal/sketch ./internal/grid
	go test -race -run 'FuzzCoalescedIngestMatchesSerial' ./internal/stream

# Fast distributed-protocol pass: vet the protocol packages and pin the
# wire codec, both transports, the pipelined driver's bit-identity with
# the serial reference and the seeding optimization, under -race. Runs in
# seconds; CI runs it before the full suite so protocol regressions fail
# fast.
check-dist:
	go vet ./internal/dist ./internal/streamfmt ./internal/solve
	go test -short -race ./internal/dist ./internal/streamfmt
	go test -short -race -run 'SeedKMeansPP|EstimateOPT' ./internal/solve

# Fast incremental-extraction pass: vet the decode stack, pin the
# differential (spliced) decode to the cold full peel bit-for-bit —
# single-sketch success/FAIL transitions, the arena-aliasing guard, the
# CacheBytes base accounting, fine-grained merge invalidation and the
# alternating ingest/extract ensemble equivalence — under -race, then
# replay the FuzzIncrementalDecodeMatchesCold seed corpus. Runs in a
# couple of minutes; CI runs it before the full suite so differential-
# decode regressions fail fast.
check-incr:
	go vet ./internal/sketch ./internal/stream
	go test -race -run 'Incremental|Spliced|MergeFineGrained|CacheBytesIncludesBase|StoringCacheStats|StoringMergeDrop' ./internal/sketch ./internal/stream
	go test -race -run 'FuzzIncrementalDecodeMatchesCold' ./internal/sketch

# Fast telemetry pass: vet the obs package and the bench/diff CLI, run
# their tests under -race (vectors, series, trace propagation, the
# /debug endpoints under concurrent writers, the -diff gate), then gate
# the disabled-path overhead — scalar and labeled-vector — without -race
# (race instrumentation inflates atomic loads by design, so the ns/op
# budget only means something in a plain build; see bench_test.go). CI
# runs it before the full suite so a hot-path telemetry regression fails
# fast.
check-obs:
	go vet ./internal/obs ./cmd/bcbench
	go test -race ./internal/obs ./cmd/bcbench
	go test -run OverheadBudget ./internal/obs
	go test -run xxx -bench 'Disabled' -benchtime 100000x ./internal/obs

# Fast field-kernel/decoder pass: vet the hashing/sketch/grid layers, pin
# the 4-lane batched kernels (Eval4/EvalN, SampleN, Key4/KeyN,
# ParentKeys4, UpdateN) and the worklist peeling decoder to their scalar
# references bit-for-bit under -race, then replay the lane-kernel and
# decoder fuzz seed corpora. Runs in seconds; CI runs it before the full
# suite so hot-path kernel regressions fail fast.
check-hash:
	go vet ./internal/hashing ./internal/sketch ./internal/grid
	go test -race -run 'MatchesScalar|MatchesReference|Worklist|InvCountField|DecodeArena|DecodeResults|PureAt|LaneKernels' ./internal/hashing ./internal/sketch ./internal/grid
	go test -race -run 'FuzzEvalLanesMatchScalar' ./internal/hashing
	go test -race -run 'FuzzDecodeWorklistMatchesReference' ./internal/sketch

# Fast sharded-ingest pass: vet the sharding packages, pin the Sharded
# front-end's bit-identity with serial Apply (every shard count, the
# quiet-drain cache ride, the merge-drop counter and sketch Reset) under
# -race, then replay the FuzzShardMerge seed corpus. Runs in a couple of
# minutes; CI runs it before the full suite so sharding regressions fail
# fast.
check-shard:
	go vet ./internal/stream ./internal/sketch
	go test -race -run 'Sharded|ShardMerge|StoringCacheStats|StoringMergeDrop|StoringReset' ./internal/stream ./internal/sketch
	go test -race -run FuzzShardMerge ./internal/stream

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# Ingest-, extraction- and assignment-throughput benchmarks
# (EXPERIMENTS.md records the reference runs).
bench:
	go test -run xxx -bench 'Ingest|Extract|AssignSweep' -benchmem ./internal/stream/ .

# Revision-stamped bcbench binary (see STAMP_LDFLAGS above).
bcbench:
	go build -ldflags "$(STAMP_LDFLAGS)" -o bin/bcbench ./cmd/bcbench

# Regenerate every BENCH_*.json with a stamped binary, so the meta block
# records the producing commit instead of "unknown".
bench-json: bcbench
	./bin/bcbench -bench

# Benchmark regression gate: re-run the bench suite at the same default
# geometry into BENCH_DIFF_DIR, then diff every committed BENCH_*.json
# against the fresh record. bcbench -diff exits non-zero when a gated
# (per_sec / speedup / ns_per / sec_* / _bits) metric falls below
# BENCH_DIFF_TOL of its committed value; the default 0.35 is loose on
# purpose — shared CI hosts jitter ±30% and the gate is after 2x-class
# regressions, not single-digit drift (tighten locally with
# BENCH_DIFF_TOL=0.6 on quiet hardware).
BENCH_DIFF_DIR ?= /tmp/bcbench-diff
BENCH_DIFF_TOL ?= 0.35
bench-diff: bcbench
	mkdir -p $(BENCH_DIFF_DIR)
	./bin/bcbench -bench -outdir $(BENCH_DIFF_DIR)
	@for f in BENCH_*.json; do \
		./bin/bcbench -diff -tol $(BENCH_DIFF_TOL) $$f $(BENCH_DIFF_DIR)/$$f || exit 1; \
	done

# CPU profile of the batched ingest benchmark, for the next pprof-driven
# optimisation round: `go tool pprof ingest_cpu.pprof`.
profile-ingest:
	go test -run xxx -bench 'IngestAutoApply$$' -benchtime 30x -cpuprofile $(CURDIR)/ingest_cpu.pprof ./internal/stream

# CPU profile of the periodic (mixed ingest + extraction) benchmark —
# the serving pattern the differential decode targets — for the next
# pprof-driven optimisation round: `go tool pprof extract_cpu.pprof`.
profile-extract:
	go test -run xxx -bench 'ExtractAutoPeriodic$$' -benchtime 30x -cpuprofile $(CURDIR)/extract_cpu.pprof ./internal/stream
