.PHONY: check test bench vet

# Fast correctness gate for the ingestion-critical packages: vet plus
# the race-enabled equivalence tests (batched Apply vs per-op replay).
check:
	go vet ./...
	go test -race ./internal/stream/... ./internal/sketch/... ./internal/hashing/...

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# Ingest-throughput benchmarks (EXPERIMENTS.md records the reference run).
bench:
	go test -run xxx -bench 'Ingest' -benchmem ./internal/stream/ .
