.PHONY: check test bench vet

# Full correctness gate (CI runs exactly this): vet, build everything,
# then the whole test suite under the race detector — the batched-ingest
# and parallel-extraction equivalence tests only mean something with
# -race on.
check:
	go vet ./...
	go build ./...
	go test -race ./...

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# Ingest- and extraction-throughput benchmarks (EXPERIMENTS.md records
# the reference runs).
bench:
	go test -run xxx -bench 'Ingest|Extract' -benchmem ./internal/stream/ .
