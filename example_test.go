package streambalance_test

import (
	"fmt"
	"math/rand"

	"streambalance"
	"streambalance/internal/workload"
)

// ExampleBuildCoreset builds a strong coreset offline and solves balanced
// clustering on it.
func ExampleBuildCoreset() {
	rng := rand.New(rand.NewSource(1))
	points, _ := workload.Mixture{N: 4000, D: 2, Delta: 1 << 10, K: 3, Spread: 8}.Generate(rng)

	cs, err := streambalance.BuildCoreset(points, streambalance.Params{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("compresses:", cs.Size() < len(points))
	fmt.Println("weight tracks n:", cs.TotalWeight() > 0.9*float64(len(points)) &&
		cs.TotalWeight() < 1.1*float64(len(points)))

	capacity := 1.2 * float64(len(points)) / 3
	sol, ok := streambalance.SolveCapacitated(cs.Points, 3, capacity*1.3, streambalance.SolveOptions{Seed: 2})
	fmt.Println("solved:", ok && len(sol.Centers) == 3)
	// Output:
	// compresses: true
	// weight tracks n: true
	// solved: true
}

// ExampleNewStream maintains a coreset over a dynamic stream with
// deletions.
func ExampleNewStream() {
	rng := rand.New(rand.NewSource(2))
	points, _ := workload.Mixture{N: 2000, D: 2, Delta: 1 << 10, K: 3, Spread: 8}.Generate(rng)

	est, _ := streambalance.EstimateOPT(points, 3, 2, 3)
	s, err := streambalance.NewStream(streambalance.StreamConfig{
		Dim: 2, Delta: 1 << 10,
		O:      streambalance.GuessFromEstimate(est),
		Params: streambalance.Params{K: 3, Seed: 4},
	})
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		s.Insert(p)
	}
	// Churn: insert then delete a transient point — it leaves no trace.
	ghost := streambalance.Point{500, 500}
	s.Insert(ghost)
	s.Delete(ghost)

	cs, err := s.Result()
	fmt.Println("one pass ok:", err == nil)
	fmt.Println("survivors:", s.N())
	fmt.Println("coreset nonempty:", cs.Size() > 0)
	// Output:
	// one pass ok: true
	// survivors: 2000
	// coreset nonempty: true
}

// ExampleDistributedCoreset runs the coordinator protocol over sharded
// data and reports the exact communication cost.
func ExampleDistributedCoreset() {
	rng := rand.New(rand.NewSource(3))
	points, _ := workload.Mixture{N: 3000, D: 2, Delta: 1 << 10, K: 3, Spread: 8}.Generate(rng)
	shards := make([][]streambalance.Point, 4)
	for i, p := range points {
		shards[i%4] = append(shards[i%4], p)
	}
	rep, err := streambalance.DistributedCoreset(shards, streambalance.DistConfig{
		Dim: 2, Delta: 1 << 10, Params: streambalance.Params{K: 3, Seed: 5},
	})
	fmt.Println("protocol ok:", err == nil)
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("communication metered:", rep.Bits > 0)
	// Output:
	// protocol ok: true
	// rounds: 2
	// communication metered: true
}
